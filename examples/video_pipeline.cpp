// video_pipeline.cpp — a three-stage video pipeline on the batch runtime.
//
// Each simulated frame flows through the classic encoder front end:
//
//   RGB -> YCbCr color conversion  ->  3x3 2D convolution (filtering)
//                                  ->  16x16 SAD motion estimation
//
// Every stage is a registry kernel, so the whole pipeline is just three
// KernelJobs per frame pushed through one BatchEngine. The interesting
// economics: the three stages are re-orchestrated exactly once for the
// whole stream (the OrchestrationCache serves every later frame), and the
// engine overlaps stages and frames freely across its workers — in the
// simulator each kernel owns its deterministic workload, so stages carry
// no data dependence; a real pipeline would chain each stage's output
// buffer into the next and submit a frame's stages as they become ready.
//
// Usage: video_pipeline [num_frames] [num_workers]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/batch_engine.h"

using namespace subword;

namespace {

struct Stage {
  const char* kernel;
  kernels::SpuMode mode;
};

constexpr Stage kStages[] = {
    {"Color Convert", kernels::SpuMode::Manual},
    {"2D Convolution", kernels::SpuMode::Manual},
    {"Motion Estimation", kernels::SpuMode::Manual},
};

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 48;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  runtime::BatchEngine engine({.workers = workers, .cache = nullptr});
  std::printf("video_pipeline: %d frames, 3 stages/frame, %d workers\n\n",
              frames, engine.workers());

  struct PerStage {
    uint64_t cycles = 0;
    uint64_t routed = 0;
    uint64_t hits = 0;
    uint64_t jobs = 0;
  };
  PerStage per[3];
  int failures = 0;

  // Submit the whole stream up front; the workers drain it concurrently.
  std::vector<std::future<runtime::JobResult>> inflight;
  inflight.reserve(static_cast<size_t>(frames) * 3);
  for (int f = 0; f < frames; ++f) {
    for (int s = 0; s < 3; ++s) {
      runtime::KernelJob job;
      job.kernel = kStages[s].kernel;
      job.repeats = 1;
      job.use_spu = true;
      job.mode = kStages[s].mode;
      job.cfg = core::kConfigD;  // the cheapest realizable configuration
      inflight.push_back(engine.submit(std::move(job)));
    }
  }
  for (size_t i = 0; i < inflight.size(); ++i) {
    const int f = static_cast<int>(i) / 3;
    const int s = static_cast<int>(i) % 3;
    auto r = inflight[i].get();
    if (!r.ok || !r.run.verified) {
      ++failures;
      std::fprintf(stderr, "frame %d stage %s failed: %s\n", f,
                   kStages[s].kernel, r.error.c_str());
      continue;
    }
    per[s].cycles += r.run.stats.cycles;
    per[s].routed += r.run.stats.spu_routed_ops;
    per[s].hits += r.cache_hit ? 1 : 0;
    ++per[s].jobs;
  }
  engine.shutdown();

  std::printf("%-20s %8s %14s %14s %12s\n", "stage", "frames", "sim cycles",
              "routed opnds", "cache hits");
  for (int s = 0; s < 3; ++s) {
    std::printf("%-20s %8llu %14llu %14llu %12llu\n", kStages[s].kernel,
                static_cast<unsigned long long>(per[s].jobs),
                static_cast<unsigned long long>(per[s].cycles),
                static_cast<unsigned long long>(per[s].routed),
                static_cast<unsigned long long>(per[s].hits));
  }

  const auto st = engine.stats();
  std::printf(
      "\ntotals: %llu stage executions, cache %llu hits / %llu misses "
      "(%.1f%% hit rate)\neach stage was prepared once for the whole "
      "stream; every other frame replayed it.\n",
      static_cast<unsigned long long>(st.jobs_completed),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      100.0 * st.cache.hit_rate());
  return failures == 0 ? 0 : 1;
}
