// video_pipeline.cpp — a three-stage video pipeline on the api:: facade,
// with REAL data flowing between the stages.
//
// Each frame flows through the classic encoder front end:
//
//   RGB frame -> [Color Convert] -> Y plane -> [2D Convolution] -> filtered
//             tile -> [Motion Estimation] -> 16 SAD scores
//
// Unlike the earlier incarnation of this example (three unrelated
// synthetic runs), the pipeline passes each stage's output buffer into the
// next stage's input: the convolution filters the luma the color stage
// produced, and motion estimation scores the filtered tile. Every stage is
// verified bit-exactly against its scalar reference *for the data it
// actually received*, and on top of that the final SAD scores are checked
// against the host-side composition ref_color ∘ ref_conv2d ∘ ref_sad —
// end-to-end bit-exactness, per frame.
//
// The orchestration economics survive the rewrite: frame data changes
// every frame but the prepared programs do not, so the three stages are
// orchestrated exactly once for the whole stream and every later frame
// replays the cache.
//
// Usage: video_pipeline [num_frames] [num_workers] [--backend=sim|native]
//                       [--plan] [--tiles=N]
//
// --backend=native runs every stage on the native-SWAR trace executor
// (src/backend): same bytes, no cycle statistics, an order of magnitude
// faster — the end-to-end composed-reference check still applies per
// frame, so the flag doubles as a differential smoke test.
//
// --plan hands the per-stage {config, mode, backend} decision to the
// cost-model planner (docs/PLANNER.md) instead of hard-coding config D:
// each stage is planned once (the decision is cached with the prepared
// programs) and the chosen orchestration is printed per stage. Combining
// --plan with --backend pins that backend and plans only config/mode.
//
// --tiles=N streams each frame through the pipeline tile by tile
// (Pipeline::tile() + submit()): the RGB frame is N base frames
// concatenated, the tiler cuts it along the first stage's tile geometry,
// and stage S+1 starts tile k as soon as stage S finishes it — the three
// stages overlap across tiles instead of running frame-at-a-time. Every
// tile's 16 SAD scores are still checked against the composed scalar
// reference of that tile's RGB window.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "api/session.h"
#include "kernels/motion_est.h"
#include "kernels/video_pipeline_ref.h"
#include "ref/workload.h"

using namespace subword;

namespace {

constexpr uint64_t kFrameSeed = 0x56494452;  // per-frame RGB generator

}  // namespace

int main(int argc, char** argv) {
  int frames = 48;
  int workers = 4;
  auto backend = api::ExecBackend::kSimulator;
  bool backend_explicit = false;
  bool plan = false;
  int tiles = 1;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--backend=native") == 0) {
      backend = api::ExecBackend::kNativeSwar;
      backend_explicit = true;
    } else if (std::strcmp(argv[i], "--backend=sim") == 0) {
      backend = api::ExecBackend::kSimulator;
      backend_explicit = true;
    } else if (std::strcmp(argv[i], "--plan") == 0) {
      plan = true;
    } else if (std::strncmp(argv[i], "--tiles=", 8) == 0) {
      tiles = std::atoi(argv[i] + 8);
      if (tiles < 1) {
        std::fprintf(stderr, "--tiles needs a positive count, got '%s'\n",
                     argv[i] + 8);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // A typo'd flag must not fall through to atoi (frames=0 would make
      // the smoke run pass vacuously).
      std::fprintf(stderr,
                   "unknown option '%s'\nusage: video_pipeline [frames] "
                   "[workers] [--backend=sim|native] [--plan] [--tiles=N]\n",
                   argv[i]);
      return 2;
    } else if (positional == 0) {
      frames = std::atoi(argv[i]);
      ++positional;
    } else if (positional == 1) {
      workers = std::atoi(argv[i]);
      ++positional;
    }
    // Further positional arguments are ignored, as before the flag parser.
  }

  api::Session session({.workers = workers, .cache = nullptr});
  std::printf(
      "video_pipeline: %d frames through color->conv2d->SAD, %d workers, "
      "%s backend%s\n(real data flows between stages; every frame is "
      "checked against the composed\nscalar reference end-to-end)\n",
      frames, session.workers(),
      plan && !backend_explicit ? "planner-chosen"
                                : kernels::to_string(backend),
      plan ? ", planner-driven stages" : "");
  if (tiles > 1) {
    std::printf(
        "streamed tiling: each frame is %d tiles; stage S+1 starts tile k "
        "as soon as\nstage S finishes it (Pipeline::tile + submit)\n",
        tiles);
  }
  std::printf("\n");

  // One stage request, either hard-coded (config D, the pre-planner
  // convention) or handed to the cost-model planner.
  auto stage_request = [&](const char* kernel) {
    auto r = session.request(kernel);
    if (plan) {
      r.auto_plan();
      if (backend_explicit) r.backend(backend);
    } else {
      r.spu(core::kConfigD).backend(backend);
    }
    return r;
  };

  struct PerStage {
    uint64_t cycles = 0;
    uint64_t routed = 0;
    uint64_t hits = 0;
    uint64_t runs = 0;
    std::string plan_choice;  // planner decision (--plan only)
  };
  PerStage per[3];
  const char* stage_names[3] = {"Color Convert", "2D Convolution",
                                "Motion Estimation"};
  std::atomic<int> failures{0};
  std::atomic<int> next_frame{0};
  std::mutex agg_mu;  // guards per[] and stderr

  // Stages within a frame are data-dependent (serialized by the pipeline),
  // but frames are independent — overlap them across driver threads so the
  // Session's workers stay busy.
  const int drivers = std::max(1, std::min(workers, frames));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(drivers));
  for (int t = 0; t < drivers; ++t) {
    threads.emplace_back([&] {
      for (int f = next_frame.fetch_add(1); f < frames;
           f = next_frame.fetch_add(1)) {
        // A fresh frame every time — the data plane changes, the control
        // plane (prepared programs) is reused. With --tiles=N the frame is
        // N base frames back to back; Pipeline::tile() cuts it along the
        // first stage's tile geometry.
        const size_t base_pixels = 3 * 256;
        const auto rgb = ref::make_pixels(
            base_pixels * static_cast<size_t>(tiles),
            kFrameSeed + static_cast<uint64_t>(f));
        std::vector<int16_t> sads(kernels::MotionEstKernel::kCandidates *
                                      static_cast<size_t>(tiles),
                                  0);

        auto pipe = session.pipeline()
                        .then(stage_request("Color Convert"))
                        .then(stage_request("2D Convolution"))
                        .then(stage_request("Motion Estimation"))
                        .input(std::span<const int16_t>(rgb))
                        .output(std::span<int16_t>(sads));
        api::Result<api::PipelineRun> run = [&] {
          if (tiles == 1) return pipe.run();
          // Streamed: submit() returns immediately, the driver thread
          // overlaps stages across tiles, wait() joins and gathers.
          auto submitted = pipe.tile().submit();
          if (!submitted.ok()) {
            return api::Result<api::PipelineRun>(submitted.error());
          }
          return submitted->wait();
        }();
        if (!run.ok()) {
          std::lock_guard lock(agg_mu);
          ++failures;
          std::fprintf(stderr, "frame %d failed: %s\n", f,
                       run.error().to_string().c_str());
          continue;
        }
        // Compose the reference outside the lock — it is per-frame work.
        // Each tile must match the composed reference of its own RGB
        // window, independently of its neighbours.
        std::vector<int16_t> want;
        want.reserve(sads.size());
        for (int k = 0; k < tiles; ++k) {
          const auto tile_want = kernels::composed_video_pipeline_ref(
              std::span<const int16_t>(rgb).subspan(
                  static_cast<size_t>(k) * base_pixels, base_pixels));
          want.insert(want.end(), tile_want.begin(), tile_want.end());
        }
        std::lock_guard lock(agg_mu);
        if (want != sads) {
          ++failures;
          std::fprintf(stderr,
                       "frame %d: composed scalar reference mismatch "
                       "(got %d %d ... want %d %d ...)\n",
                       f, sads[0], sads[1], want[0], want[1]);
          continue;
        }
        for (size_t s = 0; s < run->stages.size(); ++s) {
          const auto& resp = run->stages[s].response;
          per[s].cycles += resp.cycles().value_or(0);
          per[s].routed += resp.run.stats.spu_routed_ops;
          per[s].hits += resp.cache_hit ? 1 : 0;
          ++per[s].runs;
          if (resp.plan != nullptr && per[s].plan_choice.empty()) {
            per[s].plan_choice =
                resp.plan->choice_label() + " on " +
                kernels::to_string(resp.plan->backend) + " — " +
                resp.plan->reason;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("%-20s %8s %14s %14s %12s\n", "stage", "frames", "sim cycles",
              "routed opnds", "cache hits");
  for (int s = 0; s < 3; ++s) {
    std::printf("%-20s %8llu %14llu %14llu %12llu\n", stage_names[s],
                static_cast<unsigned long long>(per[s].runs),
                static_cast<unsigned long long>(per[s].cycles),
                static_cast<unsigned long long>(per[s].routed),
                static_cast<unsigned long long>(per[s].hits));
  }
  if (plan) {
    std::printf("\nplanner decisions (one per stage, cached for the whole "
                "stream):\n");
    for (int s = 0; s < 3; ++s) {
      std::printf("  %-20s %s\n", stage_names[s],
                  per[s].plan_choice.c_str());
    }
  }

  const auto st = session.stats();
  std::printf(
      "\ntotals: %llu stage executions, cache %llu hits / %llu misses "
      "(%.1f%% hit rate)\neach stage was prepared once for the whole "
      "stream; every frame's data was new,\nbut the prepared programs — "
      "and the paper's amortization economy — were not.\n%d/%d frames "
      "bit-exact against the composed scalar reference.\n",
      static_cast<unsigned long long>(st.jobs_completed),
      static_cast<unsigned long long>(st.cache.hits),
      static_cast<unsigned long long>(st.cache.misses),
      100.0 * st.cache.hit_rate(), frames - failures.load(), frames);
  return failures == 0 ? 0 : 1;
}
