// kernel_table.cpp — generates the README's kernel table from the registry.
//
// The README must never go stale against the code: this tool prints one
// markdown row per registered kernel (name, workload, which layers it
// implements, where it is tested and benched), and CI greps its `--names`
// output against README.md so a kernel registered without documentation
// fails the docs job.
//
// Usage: kernel_table            # markdown table (paste into README.md)
//        kernel_table --names    # one kernel name per line (CI check)
#include <cstdio>
#include <cstring>
#include <string>

#include "kernels/registry.h"
#include "runtime/history.h"
#include "runtime/planner.h"

using namespace subword;

namespace {

// The "Tileable?" cell: how (and whether) runtime/tiling.h may cut a
// frame-sized request into base-tile jobs for this kernel.
std::string tileable_cell(const kernels::BufferSpec& spec) {
  if (!spec.supported() || !spec.tileable) return "—";
  if (spec.tile_input_halo_bytes != 0) {
    return "halo " + std::to_string(spec.tile_input_halo_bytes) + " B";
  }
  if (spec.tile_unit_input_bytes != 0) {
    return std::to_string(spec.tile_unit_input_bytes) + " B units";
  }
  return "whole tiles";
}

// The pick auto_plan() converges to under sustained traffic: every
// feasible candidate shape measured once (the simulator is deterministic,
// so one run topped up to kHistoryFullSamples equals repeated traffic),
// then re-planned against that history (docs/PLANNER.md, feedback loop).
runtime::Plan warmed_plan(const std::string& name, int repeats) {
  const auto k = kernels::make_kernel(name);
  runtime::HistoryTable history;
  const auto cold = runtime::plan_kernel(*k, repeats);
  for (const auto& c : cold.summary.candidates) {
    if (!c.feasible) continue;
    const auto run = c.use_spu
                         ? kernels::run_spu(*k, repeats, c.cfg, c.mode)
                         : kernels::run_baseline(*k, repeats);
    const auto key = runtime::HistoryKey::from_shape(
        name, repeats, c.use_spu, c.mode, c.cfg,
        kernels::ExecBackend::kSimulator);
    for (uint64_t i = 0; i < runtime::kHistoryFullSamples; ++i) {
      history.record(key, static_cast<double>(run.stats.cycles));
    }
  }
  runtime::PlanOptions opts;
  opts.history = &history;
  return runtime::plan_kernel(*k, repeats, opts);
}

}  // namespace

int main(int argc, char** argv) {
  const bool names_only = argc > 1 && std::strcmp(argv[1], "--names") == 0;

  if (names_only) {
    // Names need no capability probing — skip kernel_infos() so the CI
    // docs check does not pay the registry's manual/native probe walks.
    for (const auto& k : kernels::all_kernels()) {
      std::printf("%s\n", k->name().c_str());
    }
    return 0;
  }

  const auto& infos = kernels::kernel_infos();

  std::printf(
      "| Kernel | Workload | Layers | Suite | Backends | Tileable? | "
      "Planned? | Tested by | Benched by |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& info : infos) {
    // The cost-model planner's pick at repeats=8 (full search space) —
    // what `auto_plan()` resolves to for a mid-size request on cold
    // history — and, where measurement flips the decision, the warmed
    // pick the feedback loop converges to.
    const auto cold = runtime::plan_kernel(info.name, 8);
    const auto warm = warmed_plan(info.name, 8);
    const std::string cold_label = cold.summary.choice_label();
    const std::string warm_label = warm.summary.choice_label();
    char planned[96];
    if (warm_label == cold_label) {
      std::snprintf(planned, sizeof planned, "`%s`", cold_label.c_str());
    } else {
      std::snprintf(planned, sizeof planned, "`%s` → `%s`",
                    cold_label.c_str(), warm_label.c_str());
    }
    std::printf(
        "| %s | %s | ref, MMX%s, auto | %s | %s | %s | %s | "
        "`test_kernels{,_spu}`, `test_registry_property` | `%s` |\n",
        info.name.c_str(), info.description.c_str(),
        info.has_manual_spu() ? ", SPU" : "",
        info.paper_suite ? "paper (Fig. 9)" : "extended",
        info.native_backend() ? "sim, native" : "sim",
        tileable_cell(info.buffers).c_str(), planned,
        info.paper_suite ? "fig9_cycles" : "ablation_new_workloads");
  }
  std::printf(
      "\n*Planned?* is what the cost-model planner (`auto_plan()`, "
      "[docs/PLANNER.md](docs/PLANNER.md)) chooses at repeats=8 on cold "
      "history: the cheapest configuration whose removed permutations "
      "outweigh its startup cost, or `baseline` when nothing is removable. "
      "A `cold` → `warmed` arrow marks kernels where measured execution "
      "history flips that decision once the feedback loop has "
      "kHistoryFullSamples per candidate (the planner then scores with "
      "observed cycles instead of the Table-1 estimate). *Tileable?* "
      "is the kernel's frame-tiling geometry ([docs/API.md](docs/API.md)): "
      "the input overlap between consecutive tiles (`halo`), the "
      "granularity a partial tail tile may round to (`units`), or `whole "
      "tiles` when a frame must be an exact multiple of the base tile.\n");
  return 0;
}
