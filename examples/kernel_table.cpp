// kernel_table.cpp — generates the README's kernel table from the registry.
//
// The README must never go stale against the code: this tool prints one
// markdown row per registered kernel (name, workload, which layers it
// implements, where it is tested and benched), and CI greps its `--names`
// output against README.md so a kernel registered without documentation
// fails the docs job.
//
// Usage: kernel_table            # markdown table (paste into README.md)
//        kernel_table --names    # one kernel name per line (CI check)
#include <cstdio>
#include <cstring>

#include "kernels/registry.h"

using namespace subword;

int main(int argc, char** argv) {
  const bool names_only = argc > 1 && std::strcmp(argv[1], "--names") == 0;
  const auto kernels = kernels::all_kernels();

  if (names_only) {
    for (const auto& k : kernels) std::printf("%s\n", k->name().c_str());
    return 0;
  }

  std::printf(
      "| Kernel | Workload | Layers | Suite | Tested by | Benched by |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = kernels[i];
    const bool paper = i < kernels::kPaperSuiteSize;
    const bool manual_spu = k->build_spu(core::kConfigA, 1).has_value();
    std::printf(
        "| %s | %s | ref, MMX%s, auto | %s | `test_kernels{,_spu}`, "
        "`test_registry_property` | `%s` |\n",
        k->name().c_str(), k->description().c_str(),
        manual_spu ? ", SPU" : "",
        paper ? "paper (Fig. 9)" : "extended",
        paper ? "fig9_cycles" : "ablation_new_workloads");
  }
  return 0;
}
