// fir_filter — filtering an audio-like block through the FIR12 kernel,
// baseline vs SPU, printing a few samples and the performance split.
//
// Build & run:  ./fir_filter
#include <cstdio>

#include "kernels/kernel.h"
#include "kernels/registry.h"
#include "kernels/runner.h"
#include "profile/report.h"
#include "sim/machine.h"

using namespace subword;

int main() {
  const auto k = kernels::make_kernel("FIR12");
  std::printf("workload: %s\n\n", k->description().c_str());

  // Run once and show the filtered signal actually landing in memory.
  sim::Machine m(k->build_mmx(1), kernels::kMemBytes);
  k->init_memory(m.memory());
  m.run();
  std::printf("first filtered samples (Q15 >> 15 accumulation):\n  ");
  for (int i = 0; i < 8; ++i) {
    std::printf("%6d ", static_cast<int16_t>(m.memory().read16(
                            kernels::kOutputAddr + 2 * static_cast<uint64_t>(i))));
  }
  std::printf("\n\n");

  const auto base = kernels::run_baseline(*k, 32);
  const auto spu =
      kernels::run_spu(*k, 32, core::kConfigD, kernels::SpuMode::Manual);
  std::printf("%s\n", prof::run_report("MMX baseline", base.stats).c_str());
  std::printf("%s\n", prof::run_report("MMX+SPU", spu.stats).c_str());

  if (!base.verified || !spu.verified) {
    std::printf("VERIFICATION FAILED\n");
    return 1;
  }
  const auto s = prof::summarize(base.stats, spu.stats);
  std::printf("speedup: %.1f%%\n", (s.speedup - 1.0) * 100.0);
  std::printf(
      "\nNote the modest gain relative to the matrix kernels: the IPP-style\n"
      "FIR already avoids most realignment by keeping reversed coefficient\n"
      "copies register-resident (at the cost of register pressure), exactly\n"
      "as §5.2.2 of the paper describes.\n");
  return 0;
}
