// quickstart — the paper's Figure 5 walk-through as runnable code.
//
// We want a*c, e*g, b*d, f*h from packed vectors [a b c d] and [e f g h].
// On plain MMX that takes two unpack instructions per loop iteration to
// align the sub-words; with the SPU, the orchestrator deletes them and
// routes the multiplier's operands through the crossbar instead.
//
// Build & run:  ./quickstart
#include <cstdio>

#include "core/orchestrator.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "profile/report.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;

namespace {

Program dot_product_loop(int iterations) {
  Assembler a;
  a.li(R1, iterations);
  a.li(R2, 0x1000);  // [a b c d] vectors
  a.li(R3, 0x2000);  // [e f g h] vectors
  a.li(R4, 0x3000);  // outputs
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R3, 0);
  a.movq(MM2, MM0);
  a.punpckhwd(MM2, MM1);  // [a e b f]   <- alignment work
  a.movq(MM3, MM0);
  a.punpcklwd(MM3, MM1);  // [c g d h]   <- alignment work
  a.pmulhw(MM2, MM3);     // high halves of a*c, e*g, b*d, f*h
  a.movq_store(R4, 0, MM2);
  a.saddi(R2, 8);
  a.saddi(R3, 8);
  a.saddi(R4, 8);
  a.loopnz(R1, "loop");
  a.halt();
  return a.take();
}

void fill_inputs(sim::Machine& m, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    for (int lane = 0; lane < 4; ++lane) {
      m.memory().write16(0x1000 + 8 * static_cast<uint64_t>(i) + 2 * static_cast<uint64_t>(lane),
                         static_cast<uint16_t>(1000 * (lane + 1) + i));
      m.memory().write16(0x2000 + 8 * static_cast<uint64_t>(i) + 2 * static_cast<uint64_t>(lane),
                         static_cast<uint16_t>(2000 * (lane + 1) - i));
    }
  }
}

}  // namespace

int main() {
  constexpr int kIters = 64;
  const auto program = dot_product_loop(kIters);

  std::printf("== The MMX loop (paper Figure 5) ==\n%s\n",
              disassemble(program).c_str());

  // --- plain MMX run ---------------------------------------------------------
  sim::Machine baseline(program, 1 << 16);
  fill_inputs(baseline, kIters);
  baseline.run();
  std::printf("%s\n",
              prof::run_report("MMX only", baseline.stats()).c_str());

  // --- orchestrate: delete the unpacks, program the SPU -----------------------
  core::OrchestratorOptions opts;  // configuration A, defaults
  core::Orchestrator orch(opts);
  const auto result = orch.run(program);
  std::printf("Orchestrator removed %d permutation instruction(s); "
              "programming prologue: %d instructions\n\n",
              result.removed_static, result.prologue_instructions);
  std::printf("== The transformed loop ==\n%s\n",
              disassemble(result.program).c_str());

  sim::PipelineConfig pc;
  pc.extra_spu_stage = true;
  sim::Machine spu_machine(result.program, 1 << 16, pc);
  auto spu = core::attach_spu(spu_machine, result, opts);
  fill_inputs(spu_machine, kIters);
  spu_machine.run();
  std::printf("%s\n",
              prof::run_report("MMX + SPU", spu_machine.stats()).c_str());

  // --- results must be identical ----------------------------------------------
  bool equal = true;
  for (uint64_t i = 0; i < kIters * 8; ++i) {
    if (baseline.memory().read8(0x3000 + i) !=
        spu_machine.memory().read8(0x3000 + i)) {
      equal = false;
    }
  }
  const auto s = prof::summarize(baseline.stats(), spu_machine.stats());
  std::printf("outputs identical: %s\n", equal ? "yes" : "NO (bug!)");
  std::printf("speedup: %.1f%%  (permutation off-load %.0f%%)\n",
              (s.speedup - 1.0) * 100.0, s.permute_offload * 100.0);
  return equal ? 0 : 1;
}
