// quickstart — first contact with the subword::api facade.
//
// One Session is the whole setup: it owns the worker pool and the
// orchestration cache. Requests are fluent builders; everything fallible
// comes back as a Result<T>. Three things are shown here:
//
//   1. the paper's headline effect — the automatic orchestrator deletes a
//      kernel's permutation instructions and routes the operands through
//      the SPU crossbar instead (baseline vs auto-orchestrated FIR12);
//   2. that every run is verified bit-exactly against the scalar
//      reference as part of the response;
//   3. user-owned buffers — the caller supplies the input samples and
//      receives the outputs in its own memory instead of the kernel
//      synthesizing a workload internally.
//
// Build & run:  ./quickstart
#include <cstdio>
#include <vector>

#include "api/session.h"

using namespace subword;

int main() {
  api::Session session;

  // -- the registry is enumerable through the session ------------------------
  std::printf("== Registered kernels ==\n");
  for (const auto& info : session.kernels()) {
    std::printf("  %-18s %-34s %s\n", info.name.c_str(),
                info.description.c_str(),
                info.paper_suite ? "[paper Fig. 9]" : "[extended]");
  }

  // -- baseline MMX vs hand-written SPU vs automatic orchestration -----------
  constexpr int kRepeats = 8;
  auto base = session.request("fir22").repeats(kRepeats).baseline().run();
  auto manual = session.request("fir22")
                    .repeats(kRepeats)
                    .spu(core::kConfigA)
                    .manual_spu()
                    .run();
  auto autod = session.request("fir22")
                   .repeats(kRepeats)
                   .spu(core::kConfigA)
                   .auto_orchestrate()
                   .run();
  if (!base.ok() || !manual.ok() || !autod.ok()) {
    const auto& bad = !base.ok() ? base : (!manual.ok() ? manual : autod);
    std::fprintf(stderr, "request failed: %s\n",
                 bad.error().to_string().c_str());
    return 1;
  }

  const auto speedup = [&](const api::Response& r) {
    return 100.0 * (static_cast<double>(base->run.stats.cycles) /
                        static_cast<double>(r.run.stats.cycles) -
                    1.0);
  };
  // An ok() Response is always bit-exact against the scalar reference —
  // a diverging run comes back as ErrorCode::kVerificationFailed instead.
  const auto& orch = autod->run.orchestration;
  std::printf(
      "\n== FIR22 x%d (every run verified bit-exact vs the scalar "
      "reference) ==\n"
      "baseline MMX:          %7llu cycles\n"
      "MMX + SPU (manual):    %7llu cycles (%+.1f%%)\n"
      "MMX + SPU (auto):      %7llu cycles (%+.1f%%)\n"
      "the orchestrator removed %d permutation instruction(s) and routed "
      "%llu operand\nfetches through the crossbar (programming prologue: "
      "%d instructions)\n",
      kRepeats, static_cast<unsigned long long>(base->run.stats.cycles),
      static_cast<unsigned long long>(manual->run.stats.cycles),
      speedup(*manual),
      static_cast<unsigned long long>(autod->run.stats.cycles),
      speedup(*autod), orch ? orch->removed_static : 0,
      static_cast<unsigned long long>(autod->run.stats.spu_routed_ops),
      orch ? orch->prologue_instructions : 0);

  // -- user-owned buffers ----------------------------------------------------
  // The caller owns both sides: a ramp of samples in, filtered samples out.
  const auto spec = session.kernel("fir12")->buffers;
  std::vector<int16_t> samples(spec.input_bytes / 2);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<int16_t>(100 * (i % 32));
  }
  std::vector<int16_t> filtered(spec.output_bytes / 2, 0);
  auto bound = session.request("fir12")
                   .spu(core::kConfigA)
                   .auto_orchestrate()
                   .input(std::span<const int16_t>(samples))
                   .output(std::span<int16_t>(filtered))
                   .run();
  if (!bound.ok()) {
    std::fprintf(stderr, "buffer run failed: %s\n",
                 bound.error().to_string().c_str());
    return 1;
  }
  std::printf(
      "\n== User-owned buffers ==\n"
      "%zu caller samples in, %zu filtered samples out, verified against "
      "the scalar\nreference computed over the caller's data\n"
      "first outputs: %d %d %d %d\n",
      samples.size(), filtered.size(), filtered[0], filtered[1],
      filtered[2], filtered[3]);

  // A size mismatch is a typed error, not an exception:
  auto bad = session.request("fir12")
                 .input(std::span<const int16_t>(samples).first(10))
                 .run();
  std::printf("short input buffer -> %s\n",
              bad.ok() ? "unexpectedly ok?!"
                       : bad.error().to_string().c_str());

  return bad.ok() ? 1 : 0;  // the four ok() responses above imply verified
}
