// image_dct — 2-D DCT over a synthetic 8x128 image strip (16 blocks),
// the paper's flagship inter-word workload, with an energy-compaction
// readout to show the transform doing real signal-processing work.
//
// Build & run:  ./image_dct
#include <cmath>
#include <cstdio>

#include "kernels/kernel.h"
#include "kernels/registry.h"
#include "kernels/runner.h"
#include "profile/report.h"
#include "sim/machine.h"

using namespace subword;

int main() {
  const auto k = kernels::make_kernel("DCT");
  std::printf("workload: %s over 16 blocks\n\n", k->description().c_str());

  // One verified run; inspect coefficient energy compaction per block.
  sim::Machine m(k->build_mmx(1), kernels::kMemBytes);
  k->init_memory(m.memory());
  m.run();

  double dc_energy = 0, total_energy = 0;
  for (int blk = 0; blk < 16; ++blk) {
    for (int i = 0; i < 64; ++i) {
      const auto c = static_cast<int16_t>(m.memory().read16(
          kernels::kOutputAddr + static_cast<uint64_t>(blk) * 128 +
          2 * static_cast<uint64_t>(i)));
      const double e = static_cast<double>(c) * c;
      total_energy += e;
      if (i % 8 < 2 && i / 8 < 2) dc_energy += e;  // low-frequency 2x2
    }
  }
  std::printf("low-frequency (2x2 of 8x8) energy share: %.1f%%\n",
              100.0 * dc_energy / total_energy);
  std::printf("(random-noise inputs have no spatial correlation, so this "
              "is the\n uncompacted floor; real images concentrate far "
              "more)\n\n");

  const auto base = kernels::run_baseline(*k, 4);
  const auto spu =
      kernels::run_spu(*k, 4, core::kConfigD, kernels::SpuMode::Manual);
  if (!base.verified || !spu.verified) {
    std::printf("VERIFICATION FAILED\n");
    return 1;
  }
  std::printf("%s\n", prof::run_report("MMX baseline", base.stats).c_str());
  std::printf("%s\n", prof::run_report("MMX+SPU (config D)", spu.stats).c_str());
  const auto s = prof::summarize(base.stats, spu.stats);
  std::printf("speedup: %.1f%%  — the row-pass reductions and both\n"
              "transposes ride the crossbar.\n",
              (s.speedup - 1.0) * 100.0);
  return 0;
}
