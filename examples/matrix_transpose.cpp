// matrix_transpose — the paper's Figure 3 inter-word restriction demo.
//
// A 4x4 16-bit transpose takes eight unpack instructions on the MMX
// because a column's sub-words live in four different registers but a
// computational instruction can only name two. The SPU's unified register
// view gathers a whole column per instruction: four routed MOVQs.
//
// Build & run:  ./matrix_transpose
#include <cstdio>

#include "kernels/registry.h"
#include "kernels/runner.h"
#include "profile/report.h"

using namespace subword;

int main() {
  const auto k = kernels::make_kernel("Matrix Transpose");
  std::printf("workload: %s\n\n", k->description().c_str());

  const auto base = kernels::run_baseline(*k, 8);
  std::printf("%s\n", prof::run_report("MMX (Figure 3: 8 merges + 4 copies "
                                       "per 4x4 block)",
                                       base.stats)
                          .c_str());

  const auto spu = kernels::run_spu(*k, 8, core::kConfigD,
                                    kernels::SpuMode::Manual);
  std::printf("%s\n",
              prof::run_report("MMX+SPU (4 column gathers per block, "
                               "configuration D)",
                               spu.stats)
                  .c_str());

  if (!base.verified || !spu.verified) {
    std::printf("VERIFICATION FAILED\n");
    return 1;
  }
  const auto s = prof::summarize(base.stats, spu.stats);
  std::printf("both runs verified bit-exact against the scalar reference\n");
  std::printf("speedup: %.1f%%   permutations removed: %.0f%%\n",
              (s.speedup - 1.0) * 100.0, s.permute_offload * 100.0);
  std::printf(
      "\nThe paper's point: 8 instructions -> 4 per block, because the\n"
      "inter-word restriction (sub-words reachable only two registers at\n"
      "a time) disappears behind the crossbar.\n");
  return 0;
}
