// batch_service.cpp — a toy media service built on the api:: facade.
//
// Simulates a request stream: clients ask for kernels by name with a
// problem size and a crossbar configuration, drawn from a small hot set
// with a deterministic pseudo-random mixer (the shape of real traffic:
// many requests, few distinct configurations). The Session fans the
// stream across its workers; the shared orchestration cache means the
// orchestrator's analysis runs once per distinct configuration, no matter
// the volume — every outcome arrives as a Result, never an exception.
//
// Usage: batch_service [num_requests] [num_workers]
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "api/session.h"

using namespace subword;

int main(int argc, char** argv) {
  const int requests = argc > 1 ? std::atoi(argv[1]) : 200;
  const int workers = argc > 2 ? std::atoi(argv[2]) : 4;

  // The service's hot set: name, size knob, crossbar shape.
  struct Entry {
    const char* kernel;
    int repeats;
    core::CrossbarConfig cfg;
  };
  const std::vector<Entry> hot_set = {
      {"FIR12", 2, core::kConfigA},  {"FIR22", 1, core::kConfigA},
      {"DCT", 1, core::kConfigD},    {"Matrix Transpose", 2, core::kConfigB},
      {"IIR", 1, core::kConfigA},    {"FFT128", 1, core::kConfigC},
  };

  api::Session session({.workers = workers, .cache = nullptr});
  std::printf("batch_service: %d requests over %d workers, hot set of %zu "
              "configurations\n\n",
              requests, session.workers(), hot_set.size());

  // Deterministic LCG so runs are reproducible.
  uint64_t seed = 0x5DEECE66Dull;
  std::vector<std::pair<size_t, api::Submitted>> inflight;
  inflight.reserve(static_cast<size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const size_t pick = static_cast<size_t>((seed >> 33) % hot_set.size());
    const auto& e = hot_set[pick];
    auto submitted = session.request(e.kernel)
                         .repeats(e.repeats)
                         .spu(e.cfg)
                         .auto_orchestrate()
                         .submit();
    if (!submitted.ok()) {
      std::fprintf(stderr, "submit %d failed: %s\n", i,
                   submitted.error().to_string().c_str());
      return 1;
    }
    inflight.emplace_back(pick, std::move(*submitted));
  }

  struct PerConfig {
    uint64_t count = 0;
    uint64_t cycles = 0;
    uint64_t hits = 0;
    uint64_t prepare_ns = 0;
  };
  std::map<std::string, PerConfig> per;
  int failures = 0;
  for (size_t i = 0; i < inflight.size(); ++i) {
    const auto& e = hot_set[inflight[i].first];
    auto r = inflight[i].second.wait();
    if (!r.ok()) {  // ok() implies bit-exact verification
      ++failures;
      std::fprintf(stderr, "request %zu (%s) failed: %s\n", i, e.kernel,
                   r.error().to_string().c_str());
      continue;
    }
    auto& p = per[std::string(e.kernel) + "/" + std::string(e.cfg.name)];
    ++p.count;
    p.cycles += r->run.stats.cycles;
    if (r->cache_hit) ++p.hits;
    p.prepare_ns += r->prepare_ns;
  }

  std::printf("%-28s %8s %12s %10s %14s\n", "kernel/config", "requests",
              "sim cycles", "cache hits", "prepare spent");
  for (const auto& [name, p] : per) {
    std::printf("%-28s %8llu %12llu %10llu %11.2f ms\n", name.c_str(),
                static_cast<unsigned long long>(p.count),
                static_cast<unsigned long long>(p.cycles),
                static_cast<unsigned long long>(p.hits),
                static_cast<double>(p.prepare_ns) / 1e6);
  }

  const auto s = session.stats();
  std::printf(
      "\ntotals: %llu jobs, %llu simulated cycles, cache %llu hits / %llu "
      "misses (%.1f%% hit rate)\n",
      static_cast<unsigned long long>(s.jobs_completed),
      static_cast<unsigned long long>(s.cycles_simulated),
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses),
      100.0 * s.cache.hit_rate());
  std::printf(
      "every distinct configuration was orchestrated exactly once; the "
      "other %llu requests\nreplayed the cached program (the paper's "
      "setup-amortization economy at service level).\n",
      static_cast<unsigned long long>(s.cache.hits));
  return failures == 0 ? 0 : 1;
}
