// service_client.cpp — the serving layer end to end in one page: connect
// to a subword::service server over TCP, submit a color-convert frame with
// real pixel bytes, and check the returned plane bit-for-bit against the
// scalar reference path.
//
// With no arguments the example is self-contained: it boots an in-process
// Server on an ephemeral loopback port and talks to it over a real socket
// — the same frames, the same admission path as a remote client. Pass a
// port number to talk to an already-running server instead
// (`service_driver serve` prints one).
//
// Usage: service_client [port]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <vector>

#include "api/session.h"
#include "kernels/registry.h"
#include "service/client.h"
#include "service/server.h"

using namespace subword;

int main(int argc, char** argv) {
  // A server to talk to: theirs (argv[1]) or ours.
  std::unique_ptr<service::Server> local;
  uint16_t port = 0;
  if (argc > 1) {
    port = static_cast<uint16_t>(std::atoi(argv[1]));
  } else {
    local = std::make_unique<service::Server>();
    std::string err;
    if (!local->start(&err)) {
      std::fprintf(stderr, "server start failed: %s\n", err.c_str());
      return 1;
    }
    port = local->port();
    std::printf("booted an in-process server on 127.0.0.1:%u\n", port);
  }

  // One frame of interleaved RGB, i16 lanes in [0, 255] (the kernel's
  // pixel contract), patterned so every run is reproducible.
  const auto* info = kernels::find_kernel_info("Color Convert");
  if (info == nullptr || !info->buffers.supported()) {
    std::fprintf(stderr, "Color Convert has no buffer contract?\n");
    return 1;
  }
  std::vector<uint8_t> frame(info->buffers.input_bytes, 0);
  for (size_t i = 0; i + 1 < frame.size(); i += 2) {
    frame[i] = static_cast<uint8_t>((i / 2 * 13 + 5) & 0xFF);
  }

  // The host-side reference: the same knobs through a local Session. The
  // wire response must reproduce these bytes exactly.
  std::vector<uint8_t> expected(info->buffers.output_bytes);
  {
    api::Session session;
    auto ref = session.request("Color Convert")
                   .baseline()
                   .input(std::span<const uint8_t>(frame))
                   .output(std::span<uint8_t>(expected))
                   .run();
    if (!ref.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n",
                   ref.error().to_string().c_str());
      return 1;
    }
  }

  // The wire round trip: encode, send, decode — every outcome typed.
  service::ServiceClient client;
  std::string err;
  if (!client.connect(port, &err)) {
    std::fprintf(stderr, "connect failed: %s\n", err.c_str());
    return 1;
  }
  service::WireRequest req;
  req.request_id = 1;
  req.kernel = "Color Convert";
  req.mode = service::WireMode::kBaseline;
  req.input = frame;
  const auto r = client.call(req);
  if (!r.transport_ok) {
    std::fprintf(stderr, "transport failed: %s\n", r.transport_error.c_str());
    return 1;
  }
  if (r.response.status != service::WireStatus::kOk) {
    std::fprintf(stderr, "server answered an error: %s\n",
                 r.response.message.c_str());
    return 1;
  }

  std::printf("sent %zu RGB bytes, got %zu Y-plane bytes back "
              "(%llu instructions%s)\n",
              frame.size(), r.response.output.size(),
              static_cast<unsigned long long>(r.response.stats.instructions),
              r.response.stats.cache_hit ? ", cache hit" : "");
  if (r.response.output != expected) {
    std::fprintf(stderr, "FAILED: wire bytes diverge from the local "
                 "reference\n");
    return 1;
  }
  std::printf("wire output matches the host-side reference bit-for-bit\n");
  return 0;
}
