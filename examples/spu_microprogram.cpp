// spu_microprogram — hand-authoring the decoupled controller (Figures 6/7).
//
// Programs the SPU the way a systems programmer would: build the
// horizontal micro-words, pour them through the memory-mapped window with
// ordinary stores, flip GO, and watch the controller walk its states in
// lock-step with the instruction stream.
//
// Build & run:  ./spu_microprogram
#include <cstdio>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;

int main() {
  // --- Figure 7: a three-state loop, CNTR0 = trips x states ----------------
  // state0 routes the multiplier's first operand, state1 the second
  // multiply, state2 is "straight" for the loop branch.
  core::MicroBuilder mb(core::kConfigA);
  {
    core::Route r;  // byte positions of a,e,b,f: word gather from MM0/MM1
    std::array<uint8_t, 8> srcs{{4, 5, 12, 13, 6, 7, 14, 15}};
    r.set_operand_both_pipes(0, srcs);
    mb.add_state(r);
  }
  {
    core::Route r;  // byte positions of c,g,d,h
    std::array<uint8_t, 8> srcs{{0, 1, 8, 9, 2, 3, 10, 11}};
    r.set_operand_both_pipes(0, srcs);
    mb.add_state(r);
  }
  mb.add_straight_state();  // the jump
  constexpr uint32_t kTrips = 10;
  mb.seal_simple_loop(kTrips);

  std::printf("Figure 7 controller image:\n");
  std::printf("  states: %d, CNTR0 reload: %u (= %u trips x 3 states)\n",
              mb.state_count(), mb.program().reload[0], kTrips);
  for (int s = 0; s < mb.state_count(); ++s) {
    const auto& st = mb.program().states[static_cast<size_t>(s)];
    std::printf("  state%d: CNTR%d  Next0=%d(IDLE)  Next1=%d  %s\n", s,
                st.cntr_sel, st.next0, st.next1,
                st.route.is_straight() ? "straight" : "routed");
  }

  // --- program it through the MMIO window and run the loop -------------------
  Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  core::emit_spu_stop(a, 0);
  core::emit_spu_words(a, mb.mmio_words());
  a.li(R1, kTrips);
  a.li(R2, 0x1000);
  a.li(R3, 0x2000);
  core::emit_spu_go(a, 0);
  a.label("loop");
  a.pmulhw(MM2, MM3);          // operands arrive via the crossbar
  a.pmullw(MM4, MM3);
  a.loopnz(R1, "loop");
  a.halt();

  sim::Machine m(a.take(), 1 << 16);
  core::Spu spu(core::kConfigA);
  core::SpuMmio mmio(&spu);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  // Seed MM0/MM1 through memory-independent register init: use loads.
  m.mmx().write(MM0, swar::Vec64{0x4444333322221111ull});  // [a b c d]
  m.mmx().write(MM1, swar::Vec64{0x8888777766665555ull});  // [e f g h]
  m.mmx().write(MM3, swar::Vec64{0x0010001000100010ull});
  m.run();

  std::printf("\nafter run: SPU %s, controller state %d, CNTR0 %u\n",
              spu.active() ? "ACTIVE (bug)" : "idle (auto-disabled)",
              spu.current_state(), spu.counter(0));
  std::printf("controller steps taken: %llu (3 per iteration x %u + GO "
              "store skip)\n",
              static_cast<unsigned long long>(spu.run_stats().steps),
              kTrips);
  std::printf("routed operand fetches: %llu\n",
              static_cast<unsigned long long>(
                  spu.run_stats().routed_operands));
  std::printf("MMIO programming stores executed: %llu\n",
              static_cast<unsigned long long>(m.stats().spu_mmio_stores));
  return spu.active() ? 1 : 0;
}
