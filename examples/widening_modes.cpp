// widening_modes — the paper's §6 extension in action.
//
// "The SPU implemented in this study is relatively simple, allowing only
// equal sub-word access to all sub-words. However, additional modes could
// be added to the SPU, like sign extension, negation, or even more
// complex operations."
//
// This example enables the mode-capable crossbar and uses zero-fill and
// sign-fill route bytes to widen packed 8-bit pixels to 16-bit lanes as
// they travel to the ALU — the classic unpack-widen idiom (MOVQ copy +
// PUNPCKLBW + PSRAW) collapses into the consuming instruction itself.
//
// Build & run:  ./widening_modes
#include <cstdio>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "profile/report.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;

namespace {

// Brighten 8-bit pixels by a signed 16-bit bias with word precision, then
// pack back — per 4 pixels. Baseline widens with the 3-instruction idiom.
isa::Program baseline(int iterations) {
  Assembler a;
  a.li(R1, iterations);
  a.li(R2, 0x1000);
  a.li(R3, 0x2000);
  a.li(R4, 0x3000);
  a.movq_load(MM1, R3, 0);  // the bias vector (4 words)
  a.label("loop");
  a.movd_load(MM0, R2, 0);   // 4 packed pixels
  a.movq(MM2, MM0);
  a.punpcklbw(MM2, MM2);     // [p0 p0 p1 p1 ...]
  a.psraw(MM2, 8);           // sign-extended words
  a.paddsw(MM2, MM1);
  a.packsswb(MM2, MM2);
  a.movd_store(R4, 0, MM2);
  a.saddi(R2, 4);
  a.saddi(R4, 4);
  a.loopnz(R1, "loop");
  a.halt();
  return a.take();
}

isa::Program with_modes(int iterations, core::MicroBuilder& mb) {
  // Route: paddsw's first operand is the widened pixel vector.
  core::Route r;
  std::array<uint8_t, 8> srcs{{0, core::Route::kSignExtend, 1,
                               core::Route::kSignExtend, 2,
                               core::Route::kSignExtend, 3,
                               core::Route::kSignExtend}};
  r.set_operand_both_pipes(0, srcs);
  mb.add_straight_state();  // movd_load
  mb.add_state(r);          // paddsw (widening happens in the crossbar)
  for (int i = 0; i < 5; ++i) mb.add_straight_state();  // pack..loopnz
  mb.seal_simple_loop(static_cast<uint32_t>(iterations));

  Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  core::emit_spu_stop(a, 0);
  core::emit_spu_words(a, mb.mmio_words());
  a.li(R1, iterations);
  a.li(R2, 0x1000);
  a.li(R3, 0x2000);
  a.li(R4, 0x3000);
  a.movq_load(MM1, R3, 0);
  core::emit_spu_go(a, 0);
  a.label("loop");
  a.movd_load(MM0, R2, 0);
  a.paddsw(MM2, MM1);        // operand a arrives widened via the crossbar
  a.packsswb(MM2, MM2);
  a.movd_store(R4, 0, MM2);
  a.saddi(R2, 4);
  a.saddi(R4, 4);
  a.loopnz(R1, "loop");
  a.halt();
  return a.take();
}

void fill(sim::Machine& m, int iterations) {
  for (int i = 0; i < 4 * iterations; ++i) {
    m.memory().write8(0x1000 + static_cast<uint64_t>(i),
                      static_cast<uint8_t>(17 * i + 3));
  }
  for (int w = 0; w < 4; ++w) {
    m.memory().write16(0x2000 + 2 * static_cast<uint64_t>(w),
                       static_cast<uint16_t>(int16_t{20} - 10 * w));
  }
}

}  // namespace

int main() {
  constexpr int kIters = 128;
  sim::Machine base(baseline(kIters), 1 << 16);
  fill(base, kIters);
  base.run();
  std::printf("%s\n", prof::run_report("MMX (unpack-widen idiom)",
                                       base.stats())
                          .c_str());

  const auto cfg = core::with_modes(core::kConfigA);
  core::MicroBuilder mb(cfg);
  sim::PipelineConfig pc;
  pc.extra_spu_stage = true;
  sim::Machine ext(with_modes(kIters, mb), 1 << 16, pc);
  core::Spu spu(cfg);
  core::SpuMmio mmio(&spu);
  ext.memory().map_device(core::SpuMmio::kDefaultBase,
                          core::SpuMmio::kWindowSize, &mmio);
  ext.set_router(&spu);
  fill(ext, kIters);
  ext.run();
  std::printf("%s\n",
              prof::run_report("MMX + SPU with widening modes",
                               ext.stats())
                  .c_str());

  bool equal = true;
  for (uint64_t i = 0; i < 4 * kIters; ++i) {
    if (base.memory().read8(0x3000 + i) != ext.memory().read8(0x3000 + i)) {
      equal = false;
    }
  }
  const auto s = prof::summarize(base.stats(), ext.stats());
  std::printf("outputs identical: %s\n", equal ? "yes" : "NO (bug!)");
  std::printf("speedup from widening modes: %.1f%%\n",
              (s.speedup - 1.0) * 100.0);
  return equal ? 0 : 1;
}
