#!/usr/bin/env python3
"""Gate the perf trajectory: compare BENCH_*.json against checked-in baselines.

Usage:
    check_bench_regression.py <baseline_dir> <current_dir> [--summary FILE]

Every BENCH_*.json present in <baseline_dir> must exist in <current_dir>;
records are matched by their identity fields (kind/kernel/backend/...).
Metrics fall into two classes:

  * deterministic — simulated cycle counts, instruction counts, cache
    hit/miss counts and anything derived purely from them. These are
    bit-reproducible across machines, so any regression beyond the
    threshold FAILS the job.
  * wall-clock — *_ms, *_us latency percentiles, jobs_per_s, throughput,
    wall/execute speedups. Host-dependent, so regressions only WARN (they
    still land in the trajectory table).

A metric "regresses" when it is worse than baseline by more than
--threshold (default 15%), in the metric's own good direction (cycles:
lower is better; hit rate: higher is better; ...).

Optional-cycles schema: backends without a cycle model report cycle
metrics as JSON null (or omit them). The gate tolerates null-vs-null, but
a deterministic metric that *vanishes* (baseline numeric, current
null/missing) FAILS, and a deterministic lower-is-better metric that
*appears* against a zero baseline FAILS too — a zero baseline must never
mask a real regression or divide the delta into nonsense.

The trajectory table is printed to stdout and appended to --summary when
given (pass $GITHUB_STEP_SUMMARY to surface it in the job summary).
"""

import argparse
import json
import os
import sys

# Fields that identify a record rather than measure it.
ID_KEYS = {"kind", "kernel", "backend", "workers", "jobs", "repeats"}

# (substring, deterministic, higher_is_better) — first match wins.
METRIC_RULES = [
    ("hit_rate", True, True),
    ("cache_hits", True, True),
    ("cache_misses", True, False),
    ("speedup_pct", True, True),   # fig9: derived from cycle counts
    ("cycles", True, False),
    ("busy", True, False),
    ("routed", True, True),        # routed operands replace permutations
    ("instructions", True, False),
    # Service soak: admission / divergence counts are deterministic for a
    # fixed (connections, requests, probes) invocation and gate hard;
    # latency percentiles and throughput are wall-clock like every *_ms.
    ("ok_responses", True, True),
    ("divergent", True, False),
    ("transport_failures", True, False),
    ("not_shed", True, False),     # must precede the shed_responses rule
    ("shed_responses", True, False),
    ("occupier_completed", True, True),
    ("jobs_per_s", False, True),
    ("speedup", False, True),      # wall-derived speedups
    ("cold_over_warm", False, True),
    ("_ms", False, False),
    ("_us", False, False),
    ("_rps", False, True),
]


def classify(name):
    for sub, deterministic, higher in METRIC_RULES:
        if sub in name:
            return deterministic, higher
    return False, False  # unknown: warn-only, lower-better


def record_id(rec):
    parts = []
    for key, val in rec.items():
        if key in ID_KEYS or isinstance(val, str):
            parts.append(f"{key}={val}")
    return " ".join(parts) or "<record>"


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def compare_file(name, base, cur, threshold, rows):
    failures = []
    cur_by_id = {}
    for rec in cur.get("records", []):
        cur_by_id.setdefault(record_id(rec), rec)
    for rec in base.get("records", []):
        rid = record_id(rec)
        crec = cur_by_id.get(rid)
        if crec is None:
            failures.append(f"{name}: record '{rid}' missing from current run")
            rows.append((name, rid, "<record>", "-", "missing", "-", "FAIL"))
            continue
        for key, bval in rec.items():
            if key in ID_KEYS or isinstance(bval, str):
                continue
            cval = crec.get(key)
            deterministic, higher = classify(key)
            if not isinstance(bval, (int, float)):
                # Baseline has no measurement (optional metric, e.g. cycle
                # stats on a cycle-less backend): nothing to regress from.
                continue
            if not isinstance(cval, (int, float)):
                # Baseline measured it, current run lost it. For a
                # deterministic metric that is a gate failure, not a skip —
                # silently dropping cycle counts is exactly how a backend
                # mix-up would try to sneak past the gate.
                status = "FAIL" if deterministic else "warn"
                if status == "FAIL":
                    failures.append(
                        f"{name}: {rid} {key} vanished "
                        f"(baseline {bval:g}, current null/missing)")
                rows.append((name, rid, key, f"{bval:g}", "null", "-",
                             status))
                continue
            if bval == 0:
                if cval == 0:
                    status, delta = "ok", "-"
                elif deterministic and not higher:
                    # A lower-is-better metric appearing against a zero
                    # baseline is an unbounded regression, not "new"
                    # (reported through the shared FAIL path below).
                    status, delta = "FAIL", "+inf%"
                else:
                    status, delta = "new", "-"
            else:
                rel = (cval - bval) / abs(bval)
                delta = f"{100.0 * rel:+.1f}%"
                worse = rel < -threshold if higher else rel > threshold
                improved = rel > threshold if higher else rel < -threshold
                if worse:
                    status = "FAIL" if deterministic else "warn"
                elif improved:
                    status = "improved"
                else:
                    status = "ok"
            if status == "FAIL":
                failures.append(
                    f"{name}: {rid} {key} regressed {delta} "
                    f"(baseline {bval:g}, current {cval:g})")
            if status != "ok":
                rows.append((name, rid, key, f"{bval:g}", f"{cval:g}", delta,
                             status))
    return failures


def render(rows):
    lines = ["### Perf trajectory vs checked-in baselines", ""]
    if not rows:
        lines.append("All tracked metrics within threshold of baseline.")
        return "\n".join(lines) + "\n"
    lines.append("| bench | record | metric | baseline | current | delta "
                 "| status |")
    lines.append("|---|---|---|---|---|---|---|")
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines) + "\n"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--summary", help="markdown file to append the table to")
    args = ap.parse_args()

    baselines = sorted(f for f in os.listdir(args.baseline_dir)
                       if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 1

    rows = []
    failures = []
    for name in baselines:
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            failures.append(f"{name}: not produced by the current run")
            rows.append((name, "-", "-", "-", "missing", "-", "FAIL"))
            continue
        failures += compare_file(name, load(os.path.join(args.baseline_dir,
                                                         name)),
                                 load(cur_path), args.threshold, rows)

    table = render(rows)
    print(table)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(table + "\n")

    if failures:
        print("Deterministic perf regressions beyond threshold:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"checked {len(baselines)} bench file(s): "
          "no deterministic regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
