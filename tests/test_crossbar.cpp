// Crossbar tests: configuration arithmetic (Table 1 / Figure 6 widths),
// route validity rules, and byte gathering.
#include <gtest/gtest.h>

#include "core/crossbar.h"

using namespace subword::core;
using subword::sim::MmxRegFile;
using subword::sim::Pipe;
using subword::swar::Vec64;

TEST(CrossbarConfig, Figure6FieldWidths) {
  // Configuration A: 32 output ports x log2(64) bits = the 192-bit
  // interconnect field shown in Figure 6.
  EXPECT_EQ(kConfigA.sel_bits(), 6);
  EXPECT_EQ(kConfigA.route_field_bits(), 192);
  // CNTRx(1) + NextState0(7) + NextState1(7) = 15 bits of control.
  EXPECT_EQ(kConfigA.control_word_bits(), 15 + 192);
}

TEST(CrossbarConfig, TableOneGeometry) {
  EXPECT_EQ(kConfigA.input_bytes(), 64);
  EXPECT_EQ(kConfigA.output_bytes(), 32);
  EXPECT_EQ(kConfigB.input_bytes(), 32);
  EXPECT_EQ(kConfigC.input_bytes(), 64);
  EXPECT_EQ(kConfigC.output_bytes(), 32);
  EXPECT_EQ(kConfigD.input_bytes(), 32);
  EXPECT_EQ(kConfigA.crosspoints(), 2048);
  EXPECT_EQ(kConfigD.crosspoints(), 256);
}

TEST(Route, DefaultIsStraight) {
  Route r;
  EXPECT_TRUE(r.is_straight());
  EXPECT_FALSE(r.routes_operand(Pipe::U, 0));
}

TEST(Route, OperandSliceAddressing) {
  Route r;
  std::array<uint8_t, 8> srcs{};
  for (int i = 0; i < 8; ++i) srcs[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  r.set_operand(Pipe::V, 1, srcs);
  EXPECT_FALSE(r.routes_operand(Pipe::U, 0));
  EXPECT_FALSE(r.routes_operand(Pipe::U, 1));
  EXPECT_FALSE(r.routes_operand(Pipe::V, 0));
  EXPECT_TRUE(r.routes_operand(Pipe::V, 1));
  EXPECT_EQ(r.sel[24], 0);  // V src1 slice starts at byte 24
}

TEST(RouteValidity, InputWindow) {
  Route r;
  std::array<uint8_t, 8> srcs{};
  srcs.fill(40);  // byte 40 = MM5
  r.set_operand(Pipe::U, 0, srcs);
  EXPECT_TRUE(route_valid(r, kConfigA));   // 64-byte window
  EXPECT_FALSE(route_valid(r, kConfigB));  // 32-byte window
  EXPECT_FALSE(route_valid(r, kConfigD));
  EXPECT_NE(route_violation(r, kConfigB).find("input window"),
            std::string::npos);
}

TEST(RouteValidity, HalfWordAlignmentFor16BitPorts) {
  // Odd-byte route: fine at byte granularity, invalid on 16-bit ports.
  Route r;
  std::array<uint8_t, 8> srcs{{1, 2, 9, 10, 17, 18, 25, 26}};
  r.set_operand(Pipe::U, 0, srcs);
  EXPECT_TRUE(route_valid(r, kConfigA));
  EXPECT_FALSE(route_valid(r, kConfigC));
  EXPECT_FALSE(route_valid(r, kConfigD));

  // Aligned half-words pass on all configurations (within window).
  Route ok;
  std::array<uint8_t, 8> wsrcs{{0, 1, 8, 9, 16, 17, 24, 25}};
  ok.set_operand(Pipe::U, 0, wsrcs);
  EXPECT_TRUE(route_valid(ok, kConfigA));
  EXPECT_TRUE(route_valid(ok, kConfigC));
  EXPECT_TRUE(route_valid(ok, kConfigD));
}

TEST(RouteValidity, MixedRoutedStraightHalfWordRejected) {
  Route r;
  r.sel[0] = 4;  // routed low byte, straight high byte of the half-word
  EXPECT_TRUE(route_valid(r, kConfigA));
  EXPECT_FALSE(route_valid(r, kConfigD));
}

TEST(ApplyRoute, GathersBytesAcrossRegisters) {
  MmxRegFile regs;
  regs.write(0, Vec64{0x0706050403020100ull});
  regs.write(1, Vec64{0x1716151413121110ull});
  regs.write(2, Vec64{0x2726252423222120ull});
  regs.write(3, Vec64{0x3736353433323130ull});

  // Gather word 1 of MM0..MM3 (the transpose column gather):
  // bytes [02 03 | 12 13 | 22 23 | 32 33] LSB-first.
  Route r;
  std::array<uint8_t, 8> srcs{{2, 3, 10, 11, 18, 19, 26, 27}};
  r.set_operand(Pipe::U, 1, srcs);
  const auto out =
      apply_route(r, Pipe::U, 1, regs, Vec64{0xDEADBEEFDEADBEEFull});
  EXPECT_EQ(out.bits(), 0x3332232213120302ull);
}

TEST(ApplyRoute, StraightBytesComeFromFallback) {
  MmxRegFile regs;
  regs.write(0, Vec64{0x00000000000000AAull});
  Route r;
  r.sel[0] = 0;  // only byte 0 of U src0 routed
  const auto out = apply_route(r, Pipe::U, 0, regs, Vec64{~0ull});
  EXPECT_EQ(out.bits(), 0xFFFFFFFFFFFFFFAAull);
}

TEST(ApplyRoute, ReplicationIsAllowed) {
  // The crossbar can broadcast one source byte to many outputs.
  MmxRegFile regs;
  regs.write(1, Vec64{0x00000000000000BBull});
  Route r;
  std::array<uint8_t, 8> srcs{};
  srcs.fill(8);  // byte 0 of MM1, replicated
  r.set_operand(Pipe::U, 0, srcs);
  const auto out = apply_route(r, Pipe::U, 0, regs, Vec64{});
  EXPECT_EQ(out.bits(), 0xBBBBBBBBBBBBBBBBull);
}
