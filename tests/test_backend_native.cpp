// test_backend_native.cpp — differential verification of the native-SWAR
// execution backend against the cycle-level simulator.
//
// The backend's whole contract is bit-exactness: replaying a lowered trace
// must leave the memory arena and the MMX register file byte-identical to
// simulating the program it was lowered from. The suite checks that for
// every lowerable registry kernel across baseline / manual SPU / auto-
// orchestrated preparations under crossbar configs A and D, with both
// synthetic and caller-bound buffers, at the runner, engine (cache) and
// facade (Request/Pipeline) levels — plus the lowering walker's rejection
// paths for programs that genuinely cannot be lowered.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/session.h"
#include "backend/lowering.h"
#include "backend/native.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "core/spu.h"
#include "isa/assembler.h"
#include "kernels/registry.h"
#include "kernels/runner.h"
#include "kernels/video_pipeline_ref.h"
#include "ref/workload.h"
#include "sim/machine.h"

namespace subword {
namespace {

using kernels::ExecBackend;
using kernels::MediaKernel;
using kernels::PreparedProgram;
using kernels::SpuMode;

// Simulate a prepared program on a fresh machine (the runner's attach
// logic, kept local so the test can inspect the machine afterwards).
struct SimResult {
  std::vector<uint8_t> arena;
  sim::MmxRegFile regs;
  bool verified = false;
};

SimResult simulate(const MediaKernel& k, const PreparedProgram& p) {
  sim::Machine m(p.program, kernels::kMemBytes, p.pc);
  std::optional<core::Spu> spu;
  std::optional<core::SpuMmio> mmio;
  if (p.use_spu) {
    spu.emplace(p.cfg, p.num_contexts);
    mmio.emplace(&*spu);
    m.memory().map_device(p.mmio_base, core::SpuMmio::kWindowSize, &*mmio);
    m.set_router(&*spu);
  }
  k.init_memory(m.memory());
  m.run();
  SimResult r;
  r.arena = m.memory().read_vector<uint8_t>(0, kernels::kMemBytes);
  r.regs = m.mmx();
  r.verified = k.verify(m.memory());
  return r;
}

// Replay the same preparation natively and compare arena + register file.
void expect_bitexact(const MediaKernel& k, PreparedProgram p,
                     const std::string& what) {
  SCOPED_TRACE(what);
  const SimResult sim = simulate(k, p);
  ASSERT_TRUE(sim.verified) << "simulator run failed verification";

  ASSERT_NO_THROW(kernels::lower_native(k, p));
  sim::Memory mem(kernels::kMemBytes);
  k.init_memory(mem);
  backend::NativeState st;
  st.mem = &mem;
  backend::run_trace(*p.native, st);

  EXPECT_TRUE(k.verify(mem)) << "native run failed verification";
  const auto native_arena = mem.read_vector<uint8_t>(0, kernels::kMemBytes);
  ASSERT_EQ(sim.arena.size(), native_arena.size());
  // Whole-arena comparison: every byte the program touched — outputs,
  // scratch, everything — must match, not just the verified region.
  size_t mismatches = 0;
  for (size_t i = 0; i < sim.arena.size(); ++i) {
    if (sim.arena[i] != native_arena[i] && ++mismatches <= 4) {
      ADD_FAILURE() << "arena byte " << i << ": sim "
                    << static_cast<int>(sim.arena[i]) << " native "
                    << static_cast<int>(native_arena[i]);
    }
  }
  EXPECT_EQ(mismatches, 0u) << "total arena mismatches";
  for (int r = 0; r < isa::kNumMmxRegs; ++r) {
    EXPECT_EQ(sim.regs.read(static_cast<uint8_t>(r)).bits(),
              st.regs.read(static_cast<uint8_t>(r)).bits())
        << "MM" << r;
  }
}

// Every lowerable registry kernel, every preparation shape the facade can
// produce, configs A and D, with loop re-entry (repeats=2).
TEST(BackendNativeDifferential, EveryLowerableKernelEveryPreparation) {
  constexpr int kRepeats = 2;
  for (const auto& info : kernels::kernel_infos()) {
    if (!info.native_backend()) continue;
    const auto k = kernels::make_kernel(info.name);
    expect_bitexact(*k, kernels::prepare_baseline(*k, kRepeats),
                    info.name + "/baseline");
    for (const auto& cfg : {core::kConfigA, core::kConfigD}) {
      const std::string cfg_name(cfg.name);
      if (info.has_manual_spu()) {
        try {
          auto manual =
              kernels::prepare_spu(*k, kRepeats, cfg, SpuMode::Manual);
          expect_bitexact(*k, std::move(manual),
                          info.name + "/manual/" + cfg_name);
        } catch (const std::logic_error&) {
          // Manual variant not realizable under this geometry; the
          // simulator cannot run it either.
        }
      }
      expect_bitexact(*k,
                      kernels::prepare_spu(*k, kRepeats, cfg, SpuMode::Auto),
                      info.name + "/auto/" + cfg_name);
    }
  }
}

// The whole registry lowers today — lock that in so a kernel change that
// silently loses native support fails loudly here instead of falling back.
TEST(BackendNativeDifferential, WholeRegistryIsLowerable) {
  for (const auto& info : kernels::kernel_infos()) {
    EXPECT_TRUE(info.native_backend()) << info.name;
  }
}

// Caller-bound buffers: the native path must honor bind_input/verify_bound
// and produce the same output bytes the simulator produces for the same
// input, end to end through one Session.
TEST(BackendNativeDifferential, BoundBuffersMatchSimulatorThroughFacade) {
  api::Session session({.workers = 2, .cache = nullptr});
  for (const auto& info : session.kernels()) {
    if (!info.native_backend() || !info.buffers.supported()) continue;
    SCOPED_TRACE(info.name);
    // In-contract input: the kernel's own synthetic workload bytes.
    sim::Memory staging(kernels::kMemBytes);
    kernels::make_kernel(info.name)->init_memory(staging);
    const auto input = staging.read_vector<uint8_t>(
        info.buffers.input_addr, info.buffers.input_bytes);

    std::vector<uint8_t> sim_out(info.buffers.output_bytes, 0xAA);
    std::vector<uint8_t> native_out(info.buffers.output_bytes, 0x55);
    auto sim_resp = session.request(info.name)
                        .spu(core::kConfigD)
                        .auto_orchestrate()
                        .input(std::span<const uint8_t>(input))
                        .output(std::span<uint8_t>(sim_out))
                        .run();
    ASSERT_TRUE(sim_resp.ok()) << sim_resp.error().to_string();
    auto native_resp = session.request(info.name)
                           .spu(core::kConfigD)
                           .auto_orchestrate()
                           .backend(ExecBackend::kNativeSwar)
                           .input(std::span<const uint8_t>(input))
                           .output(std::span<uint8_t>(native_out))
                           .run();
    ASSERT_TRUE(native_resp.ok()) << native_resp.error().to_string();
    EXPECT_EQ(sim_out, native_out);
  }
}

// Regression (cache keying): one Session, the same kernel/config under
// both backends — exactly one cache entry and one miss per (kernel, cfg,
// backend) key; replays hit.
TEST(BackendNative, OneCacheEntryPerBackendKey) {
  api::Session session({.workers = 2, .cache = nullptr});
  for (int round = 0; round < 2; ++round) {
    for (const auto backend :
         {ExecBackend::kSimulator, ExecBackend::kNativeSwar}) {
      auto resp = session.request("fir12")
                      .repeats(2)
                      .spu(core::kConfigA)
                      .auto_orchestrate()
                      .backend(backend)
                      .run();
      ASSERT_TRUE(resp.ok()) << resp.error().to_string();
      EXPECT_EQ(resp->cache_hit, round > 0);
    }
  }
  const auto stats = session.stats();
  EXPECT_EQ(stats.cache.entries, 2u);
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_EQ(stats.cache.hits, 2u);
}

// The native backend runs no cycle model: stats report the dynamic
// instruction count of the replaced stream and zero cycles.
TEST(BackendNative, StatsReportInstructionsNotCycles) {
  api::Session session({.workers = 1, .cache = nullptr});
  auto sim_resp = session.request("fir12").repeats(2).run();
  ASSERT_TRUE(sim_resp.ok()) << sim_resp.error().to_string();
  auto native_resp = session.request("fir12")
                         .repeats(2)
                         .backend(ExecBackend::kNativeSwar)
                         .run();
  ASSERT_TRUE(native_resp.ok()) << native_resp.error().to_string();
  EXPECT_EQ(native_resp->run.stats.cycles, 0u);
  EXPECT_EQ(native_resp->run.stats.instructions,
            sim_resp->run.stats.instructions);
}

// Pipeline-level differential: the whole video path executed on the native
// backend matches the composed scalar reference and the simulator-backend
// pipeline, frame for frame.
TEST(BackendNativeDifferential, VideoPipelineFullyNative) {
  api::Session session({.workers = 2, .cache = nullptr});
  for (uint64_t frame = 0; frame < 3; ++frame) {
    SCOPED_TRACE("frame " + std::to_string(frame));
    const auto rgb = ref::make_pixels(3 * 256, 0x56494452 + frame);
    auto build = [&](ExecBackend backend) {
      return session.pipeline()
          .then(session.request("Color Convert")
                    .spu(core::kConfigD)
                    .backend(backend))
          .then(session.request("2D Convolution")
                    .spu(core::kConfigD)
                    .backend(backend))
          .then(session.request("Motion Estimation")
                    .spu(core::kConfigD)
                    .backend(backend))
          .input(std::span<const int16_t>(rgb))
          .run();
    };
    auto sim_run = build(ExecBackend::kSimulator);
    ASSERT_TRUE(sim_run.ok()) << sim_run.error().to_string();
    auto native_run = build(ExecBackend::kNativeSwar);
    ASSERT_TRUE(native_run.ok()) << native_run.error().to_string();
    EXPECT_EQ(sim_run->output, native_run->output);

    const auto want = kernels::composed_video_pipeline_ref(rgb);
    const auto got = kernels::bytes_as_i16(native_run->output);
    EXPECT_EQ(want, got);
  }
}

// -- Lowering rejection paths ------------------------------------------------

backend::LoweringSpec plain_spec() {
  backend::LoweringSpec spec;
  spec.mem_bytes = kernels::kMemBytes;
  return spec;
}

TEST(BackendLowering, RejectsDataDependentBranch) {
  isa::Assembler a;
  a.li(isa::R1, 5);
  a.movd_to_mmx(isa::MM0, isa::R1);
  a.movd_from_mmx(isa::R2, isa::MM0);  // R2 is data from here on
  a.label("loop");
  a.nop();
  a.loopnz(isa::R2, "loop");  // data-dependent trip count
  a.halt();
  EXPECT_THROW((void)backend::lower(a.take(), plain_spec()),
               backend::LoweringError);
}

TEST(BackendLowering, RejectsDataDependentAddress) {
  isa::Assembler a;
  a.li(isa::R1, 0x1000);
  a.movd_to_mmx(isa::MM0, isa::R1);
  a.movd_from_mmx(isa::R2, isa::MM0);
  a.movq_load(isa::MM1, isa::R2, 0);  // base register carries data
  a.halt();
  EXPECT_THROW((void)backend::lower(a.take(), plain_spec()),
               backend::LoweringError);
}

TEST(BackendLowering, RejectsDataDependentSpuProgramming) {
  isa::Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  a.li(isa::R1, 7);
  a.movd_to_mmx(isa::MM0, isa::R1);
  a.movd_from_mmx(isa::R2, isa::MM0);
  a.st32(core::kSpuBaseReg, 0, isa::R2);  // CONFIG <- data
  a.halt();
  auto spec = plain_spec();
  spec.use_spu = true;
  EXPECT_THROW((void)backend::lower(a.take(), spec), backend::LoweringError);
}

TEST(BackendLowering, RejectsRunawayStreams) {
  isa::Assembler a;
  a.li(isa::R1, 1 << 20);
  a.label("spin");
  a.nop();
  a.loopnz(isa::R1, "spin");
  a.halt();
  auto spec = plain_spec();
  spec.max_ops = 1024;
  EXPECT_THROW((void)backend::lower(a.take(), spec), backend::LoweringError);
}

// Data may flow through the scalar pipe — the walker defers those
// instructions as native GP ops instead of bailing. Exercise the
// mechanism in isolation (the IIR/SAD kernels exercise it at scale):
// MMX data spilled to GP, shifted, mixed with a constant, stored, and
// moved back into MMX; the replay must match the simulator byte for byte.
TEST(BackendLowering, DefersDataDependentScalarComputation) {
  isa::Assembler a;
  a.li(isa::R1, 0x7BCD);
  a.movd_to_mmx(isa::MM0, isa::R1);
  a.paddw(isa::MM0, isa::MM0);         // MM0 now counts as data
  a.movd_from_mmx(isa::R2, isa::MM0);  // deferred from here on
  a.sshli(isa::R2, 3);
  a.saddi(isa::R2, 17);
  a.li(isa::R4, 21);
  a.smul(isa::R2, isa::R4);            // deferred x concrete
  a.li(isa::R3, 0x2000);
  a.st32(isa::R3, 0, isa::R2);
  a.st16(isa::R3, 8, isa::R2);
  a.movd_to_mmx(isa::MM1, isa::R2);
  a.halt();
  const isa::Program prog = a.take();

  sim::Machine m(prog, kernels::kMemBytes);
  m.run();

  const auto trace = backend::lower(prog, plain_spec());
  sim::Memory mem(kernels::kMemBytes);
  backend::NativeState st;
  st.mem = &mem;
  backend::run_trace(trace, st);

  EXPECT_EQ(m.memory().read_vector<uint8_t>(0x2000, 16),
            mem.read_vector<uint8_t>(0x2000, 16));
  EXPECT_EQ(m.mmx().read(isa::MM1).bits(), st.regs.read(isa::MM1).bits());
}

}  // namespace
}  // namespace subword
