// Tests for the ISA layer: opcode metadata, assembler label handling,
// instruction classification, read/write set extraction, disassembly.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/opcodes.h"

using namespace subword::isa;

TEST(Opcodes, TableCoversEveryOp) {
  for (int i = 0; i < kOpCount; ++i) {
    const auto& info = op_info(static_cast<Op>(i));
    EXPECT_EQ(info.op, static_cast<Op>(i));
    EXPECT_FALSE(info.name.empty());
  }
}

TEST(Opcodes, ClassificationMatchesPaper) {
  // Multiplies have 3-cycle latency, everything else MMX is single cycle.
  EXPECT_EQ(op_info(Op::Pmullw).latency, 3);
  EXPECT_EQ(op_info(Op::Pmaddwd).latency, 3);
  EXPECT_EQ(op_info(Op::Paddw).latency, 1);
  // Pack/unpack/reg-moves are the data-alignment instructions.
  EXPECT_TRUE(is_permutation_op(Op::Punpckhwd));
  EXPECT_TRUE(is_permutation_op(Op::Packssdw));
  EXPECT_TRUE(is_permutation_op(Op::MovqRR));
  EXPECT_FALSE(is_permutation_op(Op::Paddw));
  EXPECT_FALSE(is_permutation_op(Op::MovqLoad));
  // Shift/pack share the single shifter unit.
  EXPECT_EQ(op_info(Op::Psllw).cls, ExecClass::MmxShift);
  EXPECT_EQ(op_info(Op::Packsswb).cls, ExecClass::MmxShift);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a;
  a.li(R1, 3);
  a.label("top");
  a.jmp("bottom");   // forward reference
  a.nop();
  a.label("bottom");
  a.loopnz(R1, "top");  // backward reference
  a.halt();
  const auto p = a.take();
  EXPECT_EQ(p.at(1).target, 3);  // jmp -> "bottom"
  EXPECT_EQ(p.at(3).target, 1);  // loopnz -> "top"
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a;
  a.jmp("nowhere");
  EXPECT_THROW((void)a.take(), std::logic_error);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a;
  a.label("x");
  EXPECT_THROW(a.label("x"), std::logic_error);
}

TEST(Assembler, RegisterRangeChecked) {
  Assembler a;
  EXPECT_THROW(a.paddw(8, 0), std::logic_error);   // MMX regs are 0..7
  EXPECT_THROW(a.li(16, 0), std::logic_error);     // GP regs are 0..15
}

TEST(Program, StaticCounts) {
  Assembler a;
  a.li(R1, 10);
  a.label("l");
  a.movq_load(MM0, R2, 0);
  a.punpcklwd(MM0, MM1);
  a.pmaddwd(MM0, MM2);
  a.loopnz(R1, "l");
  a.halt();
  const auto c = a.take().static_counts();
  EXPECT_EQ(c.total, 6);
  EXPECT_EQ(c.mmx, 3);
  EXPECT_EQ(c.permutation, 1);
  EXPECT_EQ(c.branches, 1);
}

TEST(MmxReads, ArithmeticReadsBothOperands) {
  Inst in;
  in.op = Op::Paddw;
  in.dst = MM2;
  in.src = MM5;
  const auto rs = mmx_reads(in);
  ASSERT_EQ(rs.count, 2);
  EXPECT_EQ(rs.regs[0], MM2);
  EXPECT_EQ(rs.regs[1], MM5);
}

TEST(MmxReads, LoadReadsNoMmxRegs) {
  Inst in;
  in.op = Op::MovqLoad;
  in.dst = MM2;
  EXPECT_EQ(mmx_reads(in).count, 0);
  uint8_t w = 0;
  EXPECT_TRUE(mmx_writes(in, &w));
  EXPECT_EQ(w, MM2);
}

TEST(MmxReads, ShiftImmediateReadsOnlyDst) {
  Inst in;
  in.op = Op::Psraw;
  in.dst = MM3;
  in.src_is_imm = true;
  in.imm8 = 4;
  EXPECT_EQ(mmx_reads(in).count, 1);
}

TEST(MmxWrites, StoreWritesNothing) {
  Inst in;
  in.op = Op::MovqStore;
  in.src = MM1;
  uint8_t w = 0;
  EXPECT_FALSE(mmx_writes(in, &w));
}

TEST(Disasm, RendersCommonForms) {
  Assembler a;
  a.paddw(MM0, MM1);
  a.movq_load(MM2, R3, 16);
  a.movq_store(R3, -8, MM4);
  a.psraw(MM5, 7);
  a.li(R1, 42);
  a.label("x");
  a.loopnz(R1, "x");
  const auto p = a.take();
  EXPECT_EQ(disassemble(p.at(0)), "paddw mm0, mm1");
  EXPECT_EQ(disassemble(p.at(1)), "movq mm2, [r3+16]");
  EXPECT_EQ(disassemble(p.at(2)), "movq [r3-8], mm4");
  EXPECT_EQ(disassemble(p.at(3)), "psraw mm5, 7");
  EXPECT_EQ(disassemble(p.at(4)), "li r1, 42");
  EXPECT_EQ(disassemble(p.at(5)), "loopnz r1, @5");
  // Full listing contains the label.
  EXPECT_NE(disassemble(p).find("x:"), std::string::npos);
}
