// Tests for the ISA layer: opcode metadata, assembler label handling,
// instruction classification, read/write set extraction, disassembly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fuzz/generator.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/opcodes.h"
#include "isa/parse.h"

using namespace subword::isa;

TEST(Opcodes, TableCoversEveryOp) {
  for (int i = 0; i < kOpCount; ++i) {
    const auto& info = op_info(static_cast<Op>(i));
    EXPECT_EQ(info.op, static_cast<Op>(i));
    EXPECT_FALSE(info.name.empty());
  }
}

TEST(Opcodes, ClassificationMatchesPaper) {
  // Multiplies have 3-cycle latency, everything else MMX is single cycle.
  EXPECT_EQ(op_info(Op::Pmullw).latency, 3);
  EXPECT_EQ(op_info(Op::Pmaddwd).latency, 3);
  EXPECT_EQ(op_info(Op::Paddw).latency, 1);
  // Pack/unpack/reg-moves are the data-alignment instructions.
  EXPECT_TRUE(is_permutation_op(Op::Punpckhwd));
  EXPECT_TRUE(is_permutation_op(Op::Packssdw));
  EXPECT_TRUE(is_permutation_op(Op::MovqRR));
  EXPECT_FALSE(is_permutation_op(Op::Paddw));
  EXPECT_FALSE(is_permutation_op(Op::MovqLoad));
  // Shift/pack share the single shifter unit.
  EXPECT_EQ(op_info(Op::Psllw).cls, ExecClass::MmxShift);
  EXPECT_EQ(op_info(Op::Packsswb).cls, ExecClass::MmxShift);
}

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a;
  a.li(R1, 3);
  a.label("top");
  a.jmp("bottom");   // forward reference
  a.nop();
  a.label("bottom");
  a.loopnz(R1, "top");  // backward reference
  a.halt();
  const auto p = a.take();
  EXPECT_EQ(p.at(1).target, 3);  // jmp -> "bottom"
  EXPECT_EQ(p.at(3).target, 1);  // loopnz -> "top"
}

TEST(Assembler, UndefinedLabelThrows) {
  Assembler a;
  a.jmp("nowhere");
  EXPECT_THROW((void)a.take(), std::logic_error);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a;
  a.label("x");
  EXPECT_THROW(a.label("x"), std::logic_error);
}

TEST(Assembler, RegisterRangeChecked) {
  Assembler a;
  EXPECT_THROW(a.paddw(8, 0), std::logic_error);   // MMX regs are 0..7
  EXPECT_THROW(a.li(16, 0), std::logic_error);     // GP regs are 0..15
}

TEST(Program, StaticCounts) {
  Assembler a;
  a.li(R1, 10);
  a.label("l");
  a.movq_load(MM0, R2, 0);
  a.punpcklwd(MM0, MM1);
  a.pmaddwd(MM0, MM2);
  a.loopnz(R1, "l");
  a.halt();
  const auto c = a.take().static_counts();
  EXPECT_EQ(c.total, 6);
  EXPECT_EQ(c.mmx, 3);
  EXPECT_EQ(c.permutation, 1);
  EXPECT_EQ(c.branches, 1);
}

TEST(MmxReads, ArithmeticReadsBothOperands) {
  Inst in;
  in.op = Op::Paddw;
  in.dst = MM2;
  in.src = MM5;
  const auto rs = mmx_reads(in);
  ASSERT_EQ(rs.count, 2);
  EXPECT_EQ(rs.regs[0], MM2);
  EXPECT_EQ(rs.regs[1], MM5);
}

TEST(MmxReads, LoadReadsNoMmxRegs) {
  Inst in;
  in.op = Op::MovqLoad;
  in.dst = MM2;
  EXPECT_EQ(mmx_reads(in).count, 0);
  uint8_t w = 0;
  EXPECT_TRUE(mmx_writes(in, &w));
  EXPECT_EQ(w, MM2);
}

TEST(MmxReads, ShiftImmediateReadsOnlyDst) {
  Inst in;
  in.op = Op::Psraw;
  in.dst = MM3;
  in.src_is_imm = true;
  in.imm8 = 4;
  EXPECT_EQ(mmx_reads(in).count, 1);
}

TEST(MmxWrites, StoreWritesNothing) {
  Inst in;
  in.op = Op::MovqStore;
  in.src = MM1;
  uint8_t w = 0;
  EXPECT_FALSE(mmx_writes(in, &w));
}

TEST(Disasm, RendersCommonForms) {
  Assembler a;
  a.paddw(MM0, MM1);
  a.movq_load(MM2, R3, 16);
  a.movq_store(R3, -8, MM4);
  a.psraw(MM5, 7);
  a.li(R1, 42);
  a.label("x");
  a.loopnz(R1, "x");
  const auto p = a.take();
  EXPECT_EQ(disassemble(p.at(0)), "paddw mm0, mm1");
  EXPECT_EQ(disassemble(p.at(1)), "movq mm2, [r3+16]");
  EXPECT_EQ(disassemble(p.at(2)), "movq [r3-8], mm4");
  EXPECT_EQ(disassemble(p.at(3)), "psraw mm5, 7");
  EXPECT_EQ(disassemble(p.at(4)), "li r1, 42");
  EXPECT_EQ(disassemble(p.at(5)), "loopnz r1, @5");
  // Full listing contains the label.
  EXPECT_NE(disassemble(p).find("x:"), std::string::npos);
}

// --- disassemble -> parse round-trip (the reproducer-file contract) ---------
//
// parse.h promises that the parser is the exact inverse of the
// disassembler: fuzz reproducers store programs as listings, so any
// formatting drift between the two would corrupt replays silently.

namespace {

// A representative instruction of every opcode, with distinctive field
// values so a dropped or swapped field cannot round-trip by accident.
Inst canonical(Op op) {
  Inst in;
  in.op = op;
  switch (op) {
    case Op::MovqLoad:
    case Op::MovdLoad:
    case Op::SLoad16:
    case Op::SLoad32:
    case Op::SLoad64:
      in.dst = 2;
      in.base = 4;
      in.disp = 24;
      break;
    case Op::MovqStore:
    case Op::MovdStore:
    case Op::SStore16:
    case Op::SStore32:
    case Op::SStore64:
      in.base = 4;
      in.disp = -8;
      in.src = 3;
      break;
    case Op::Emms:
    case Op::Nop:
    case Op::Halt:
      break;
    case Op::Li:
    case Op::SAddi:
    case Op::SSubi:
      in.dst = 6;
      in.disp = -12345;
      break;
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
      in.dst = 6;
      in.imm8 = 9;
      break;
    case Op::Jmp:
      in.target = 3;
      break;
    case Op::Jnz:
    case Op::Jz:
    case Op::Loopnz:
      in.src = 1;
      in.target = 2;
      break;
    default:
      // Two-operand forms (MMX data ops, register-count shifts, scalar rr,
      // the movd bridges).
      in.dst = 3;
      in.src = 5;
      break;
  }
  return in;
}

void expect_same_inst(const Inst& a, const Inst& b, const std::string& ctx) {
  EXPECT_EQ(a.op, b.op) << ctx;
  EXPECT_EQ(a.dst, b.dst) << ctx;
  EXPECT_EQ(a.src, b.src) << ctx;
  EXPECT_EQ(a.base, b.base) << ctx;
  EXPECT_EQ(a.imm8, b.imm8) << ctx;
  EXPECT_EQ(a.src_is_imm, b.src_is_imm) << ctx;
  EXPECT_EQ(a.disp, b.disp) << ctx;
  EXPECT_EQ(a.target, b.target) << ctx;
}

}  // namespace

TEST(ParseRoundTrip, EveryOpcodeRoundTrips) {
  for (int i = 0; i < kOpCount; ++i) {
    const Inst in = canonical(static_cast<Op>(i));
    const std::string text = disassemble(in);
    const Inst back = parse_inst(text);
    expect_same_inst(in, back, text);
  }
  // The immediate-count shift form is a distinct rendering of the same
  // opcodes; round-trip it separately.
  for (const Op op : {Op::Psllw, Op::Pslld, Op::Psllq, Op::Psrlw, Op::Psrld,
                      Op::Psrlq, Op::Psraw, Op::Psrad}) {
    Inst in;
    in.op = op;
    in.dst = 6;
    in.src_is_imm = true;
    in.imm8 = 11;
    const std::string text = disassemble(in);
    expect_same_inst(in, parse_inst(text), text);
  }
}

TEST(ParseRoundTrip, GeneratedCorpusRoundTripsExactly) {
  // 1000 generator-seeded programs (media-shaped op mixes, loops, SPU
  // prologues, labels): parse_program(disassemble(p)) must reproduce the
  // instruction vector and the label placement bit-for-bit.
  for (uint64_t seed = 1; seed <= 1000; ++seed) {
    subword::fuzz::GeneratorOptions g;
    g.seed = seed;
    g.cfg = subword::core::kAllConfigs[seed % 4];
    g.spu_rate = 0.4;
    g.reject_rate = 0.2;
    const Program p = subword::fuzz::generate(g).program;
    const std::string listing = disassemble(p);
    Program back;
    try {
      back = parse_program(listing);
    } catch (const ParseError& e) {
      FAIL() << "seed " << seed << ": " << e.what() << "\nlisting:\n"
             << listing;
    }
    ASSERT_EQ(back.size(), p.size()) << "seed " << seed;
    for (size_t i = 0; i < p.size(); ++i) {
      expect_same_inst(p.at(i), back.at(i),
                       "seed " + std::to_string(seed) + " inst " +
                           std::to_string(i));
    }
    EXPECT_EQ(back.labels(), p.labels()) << "seed " << seed;
  }
}

TEST(ParseRoundTrip, AcceptsBareListingsWithoutIndexPrefixes)  {
  const Program p = parse_program(
      "li r2, 4096\n"
      "top:\n"
      "movq mm0, [r2+8]\n"
      "paddsw mm0, mm1\n"
      "loopnz r1, @1\n"
      "halt\n");
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p.at(0).op, Op::Li);
  EXPECT_EQ(p.at(2).op, Op::Paddsw);
  EXPECT_EQ(p.at(3).target, 1);
  ASSERT_TRUE(p.labels().contains("top"));
  EXPECT_EQ(p.labels().at("top"), 1);
}
