// Runtime tests: the batch engine must be a pure parallelization of the
// sequential runner — bit-identical stats — while the orchestration cache
// guarantees exactly one preparation per unique configuration, and
// shutdown is graceful with jobs in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "kernels/registry.h"
#include "kernels/runner.h"
#include "runtime/batch_engine.h"
#include "runtime/orchestration_cache.h"

using namespace subword;
using namespace subword::runtime;
using kernels::KernelRun;
using kernels::SpuMode;

namespace {

// The simulation is deterministic, so a batch run must reproduce the
// sequential runner exactly, field by field.
void expect_same_stats(const sim::RunStats& a, const sim::RunStats& b,
                       const std::string& what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.mmx_instructions, b.mmx_instructions) << what;
  EXPECT_EQ(a.mmx_compute, b.mmx_compute) << what;
  EXPECT_EQ(a.mmx_permutation, b.mmx_permutation) << what;
  EXPECT_EQ(a.mmx_memory, b.mmx_memory) << what;
  EXPECT_EQ(a.scalar_instructions, b.scalar_instructions) << what;
  EXPECT_EQ(a.branches, b.branches) << what;
  EXPECT_EQ(a.branch_mispredicts, b.branch_mispredicts) << what;
  EXPECT_EQ(a.stall_cycles, b.stall_cycles) << what;
  EXPECT_EQ(a.spu_routed_ops, b.spu_routed_ops) << what;
  EXPECT_EQ(a.spu_mmio_stores, b.spu_mmio_stores) << what;
}

KernelJob baseline_job(const std::string& name, int repeats) {
  KernelJob j;
  j.kernel = name;
  j.repeats = repeats;
  j.use_spu = false;
  return j;
}

KernelJob auto_job(const std::string& name, int repeats,
                   const core::CrossbarConfig& cfg = core::kConfigA) {
  KernelJob j;
  j.kernel = name;
  j.repeats = repeats;
  j.use_spu = true;
  j.mode = SpuMode::Auto;
  j.cfg = cfg;
  return j;
}

}  // namespace

TEST(PreparedProgram, ExecuteMatchesRunSpu) {
  const auto k = kernels::make_kernel("FIR12");
  const auto direct = kernels::run_spu(*k, 2, core::kConfigA, SpuMode::Auto);
  const auto prepared =
      kernels::prepare_spu(*k, 2, core::kConfigA, SpuMode::Auto);
  const auto replay1 = kernels::execute_prepared(*k, prepared);
  const auto replay2 = kernels::execute_prepared(*k, prepared);
  EXPECT_TRUE(direct.verified);
  EXPECT_TRUE(replay1.verified);
  expect_same_stats(direct.stats, replay1.stats, "prepare+execute vs run_spu");
  expect_same_stats(replay1.stats, replay2.stats, "replay determinism");
  EXPECT_EQ(replay1.spu.activations, direct.spu.activations);
  EXPECT_EQ(replay1.spu.routed_operands, direct.spu.routed_operands);
}

TEST(PreparedProgram, ScratchMachineReuseIsExact) {
  const auto k = kernels::make_kernel("DCT");
  const auto prepared =
      kernels::prepare_spu(*k, 1, core::kConfigA, SpuMode::Auto);
  const auto fresh = kernels::execute_prepared(*k, prepared);

  sim::Machine scratch(prepared.program, kernels::kMemBytes, prepared.pc);
  // Dirty the machine with an unrelated kernel first, then reuse it.
  const auto other = kernels::make_kernel("IIR");
  const auto other_prep = kernels::prepare_baseline(*other, 1);
  (void)kernels::execute_prepared(*other, other_prep, &scratch);
  const auto reused = kernels::execute_prepared(*k, prepared, &scratch);

  EXPECT_TRUE(reused.verified);
  expect_same_stats(fresh.stats, reused.stats, "scratch reuse");
}

TEST(PreparedProgram, CustomMmioBaseExecutes) {
  // The MMIO prologue is generated against opts.mmio_base; execution must
  // map the SPU window at the same address the program stores to.
  const auto k = kernels::make_kernel("FIR22");
  core::OrchestratorOptions opts;
  opts.mmio_base = 0xE0000000ull;
  const auto moved = kernels::prepare_spu(*k, 1, core::kConfigA,
                                          SpuMode::Auto, {}, &opts);
  EXPECT_EQ(moved.mmio_base, 0xE0000000ull);
  const auto run = kernels::execute_prepared(*k, moved);
  EXPECT_TRUE(run.verified);
  const auto def = kernels::run_spu(*k, 1, core::kConfigA, SpuMode::Auto);
  expect_same_stats(def.stats, run.stats, "relocated MMIO window");
}

TEST(PreparedProgram, ScratchIsDetachedEvenWhenExecutionThrows) {
  const auto k = kernels::make_kernel("FIR12");
  sim::PipelineConfig tiny;
  tiny.max_cycles = 10;  // force a cycle-limit throw mid-run
  const auto doomed =
      kernels::prepare_spu(*k, 1, core::kConfigA, SpuMode::Auto, tiny);
  sim::Machine scratch(doomed.program, kernels::kMemBytes, doomed.pc);
  EXPECT_THROW((void)kernels::execute_prepared(*k, doomed, &scratch),
               std::runtime_error);
  // The stack-local Spu/SpuMmio are gone; the scratch machine must not
  // retain a mapping to them.
  EXPECT_FALSE(scratch.memory().in_device_window(core::SpuMmio::kDefaultBase));
  // And the machine is still serviceable for the next job.
  const auto good = kernels::prepare_spu(*k, 1, core::kConfigA, SpuMode::Auto);
  const auto run = kernels::execute_prepared(*k, good, &scratch);
  EXPECT_TRUE(run.verified);
}

TEST(OrchestrationCache, KeysNormalizeFieldsThatCannotAffectPreparation) {
  core::OrchestratorOptions opts;
  sim::PipelineConfig pc;
  // Baseline jobs ignore crossbar, mode, and orchestrator options.
  const auto b1 = make_key("FIR12", 1, SpuMode::Auto, /*use_spu=*/false,
                           core::kConfigA, opts, pc);
  const auto b2 = make_key("FIR12", 1, SpuMode::Manual, /*use_spu=*/false,
                           core::kConfigD, opts, pc);
  EXPECT_TRUE(b1 == b2);
  // Manual SPU programs ignore the orchestrator options.
  core::OrchestratorOptions other;
  other.max_contexts = 4;
  other.mmio_base = 0xE0000000ull;
  const auto m1 = make_key("FIR12", 1, SpuMode::Manual, true, core::kConfigA,
                           opts, pc);
  const auto m2 = make_key("FIR12", 1, SpuMode::Manual, true, core::kConfigA,
                           other, pc);
  EXPECT_TRUE(m1 == m2);
  // ...but Auto preparations do depend on them.
  const auto a1 = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA,
                           opts, pc);
  const auto a2 = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA,
                           other, pc);
  EXPECT_FALSE(a1 == a2);
}

TEST(BatchEngine, BitIdenticalToSequentialRunner) {
  const std::vector<std::string> names = {"FIR12", "IIR", "DCT",
                                          "Matrix Transpose"};
  std::vector<KernelJob> jobs;
  for (const auto& n : names) {
    jobs.push_back(baseline_job(n, 2));
    jobs.push_back(auto_job(n, 2));
  }

  BatchEngine engine({.workers = 4, .cache = nullptr});
  const auto results = engine.run_batch(jobs);
  ASSERT_EQ(results.size(), jobs.size());

  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(results[i].ok) << jobs[i].kernel << ": " << results[i].error;
    EXPECT_TRUE(results[i].run.verified) << jobs[i].kernel;
    const auto k = kernels::make_kernel(jobs[i].kernel);
    const KernelRun seq =
        jobs[i].use_spu
            ? kernels::run_spu(*k, jobs[i].repeats, jobs[i].cfg, jobs[i].mode)
            : kernels::run_baseline(*k, jobs[i].repeats);
    expect_same_stats(seq.stats, results[i].run.stats, jobs[i].kernel);
    EXPECT_EQ(seq.spu.routed_operands, results[i].run.spu.routed_operands)
        << jobs[i].kernel;
  }
}

TEST(BatchEngine, UnknownKernelFailsTheJobNotTheEngine) {
  BatchEngine engine({.workers = 2, .cache = nullptr});
  auto bad = engine.submit(baseline_job("NoSuchKernel", 1));
  auto good = engine.submit(baseline_job("FIR12", 1));
  const auto bad_r = bad.get();
  const auto good_r = good.get();
  EXPECT_FALSE(bad_r.ok);
  EXPECT_FALSE(bad_r.error.empty());
  EXPECT_TRUE(good_r.ok) << good_r.error;
}

TEST(OrchestrationCache, ExactlyOnePreparationPerKeyUnderContention) {
  OrchestrationCache cache;
  const auto k = kernels::make_kernel("FIR12");

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 25;
  constexpr int kUniqueKeys = 5;  // repeats 1..5

  std::atomic<int> factory_calls{0};
  std::vector<std::thread> threads;
  std::atomic<bool> start{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < kCallsPerThread; ++i) {
        const int repeats = 1 + (i + t) % kUniqueKeys;
        core::OrchestratorOptions opts;
        const auto key =
            make_key("FIR12", repeats, SpuMode::Auto, /*use_spu=*/true,
                     core::kConfigA, opts, sim::PipelineConfig{});
        const auto prepared = cache.get_or_prepare(key, [&] {
          ++factory_calls;
          return kernels::prepare_spu(*k, repeats, core::kConfigA,
                                      SpuMode::Auto);
        });
        ASSERT_NE(prepared, nullptr);
        ASSERT_NE(prepared->program, nullptr);
        EXPECT_EQ(prepared->repeats, repeats);
      }
    });
  }
  start.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(factory_calls.load(), kUniqueKeys);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, static_cast<uint64_t>(kUniqueKeys));
  EXPECT_EQ(s.misses, static_cast<uint64_t>(kUniqueKeys));
  EXPECT_EQ(s.hits + s.misses,
            static_cast<uint64_t>(kThreads * kCallsPerThread));
}

TEST(OrchestrationCache, DistinctConfigurationsAreDistinctKeys) {
  core::OrchestratorOptions opts;
  sim::PipelineConfig pc;
  const auto base = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA,
                             opts, pc);
  auto k2 = base;
  EXPECT_TRUE(base == k2);
  k2 = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigB, opts, pc);
  EXPECT_FALSE(base == k2);
  k2 = make_key("FIR12", 1, SpuMode::Auto, true,
                core::with_modes(core::kConfigA), opts, pc);
  EXPECT_FALSE(base == k2);
  k2 = make_key("FIR12", 2, SpuMode::Auto, true, core::kConfigA, opts, pc);
  EXPECT_FALSE(base == k2);
  k2 = make_key("FIR12", 1, SpuMode::Manual, true, core::kConfigA, opts, pc);
  EXPECT_FALSE(base == k2);
  sim::PipelineConfig scalar;
  scalar.dual_issue = false;
  k2 = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA, opts, scalar);
  EXPECT_FALSE(base == k2);
  sim::PipelineConfig spu_stage;
  spu_stage.extra_spu_stage = true;
  // SPU preparations force the extra stage on, so the incoming value is
  // normalized away for them — but it distinguishes baseline keys.
  k2 = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA, opts,
                spu_stage);
  EXPECT_TRUE(base == k2);
  const auto base_off = make_key("FIR12", 1, SpuMode::Auto, false,
                                 core::kConfigA, opts, pc);
  const auto base_on = make_key("FIR12", 1, SpuMode::Auto, false,
                                core::kConfigA, opts, spu_stage);
  EXPECT_FALSE(base_off == base_on);
}

TEST(OrchestrationCache, FailedPreparationIsRetriable) {
  OrchestrationCache cache;
  core::OrchestratorOptions opts;
  const auto key = make_key("FIR12", 1, SpuMode::Auto, true, core::kConfigA,
                            opts, sim::PipelineConfig{});
  EXPECT_THROW(
      (void)cache.get_or_prepare(
          key, []() -> kernels::PreparedProgram {
            throw std::runtime_error("boom");
          }),
      std::runtime_error);
  // The poisoned entry must not stick: a later call retries and succeeds.
  const auto k = kernels::make_kernel("FIR12");
  const auto prepared = cache.get_or_prepare(key, [&] {
    return kernels::prepare_spu(*k, 1, core::kConfigA, SpuMode::Auto);
  });
  ASSERT_NE(prepared, nullptr);
  EXPECT_NE(prepared->program, nullptr);
}

TEST(BatchEngine, CacheHitRateOnRepeatedConfigs) {
  BatchEngine engine({.workers = 4, .cache = nullptr});
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 40; ++i) jobs.push_back(auto_job("FIR12", 1));
  const auto results = engine.run_batch(jobs);
  int hits = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    if (r.cache_hit) ++hits;
  }
  EXPECT_EQ(hits, 39);  // exactly one miss for the unique config
  const auto s = engine.stats();
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.cache.hits, 39u);
  EXPECT_GT(s.cache.hit_rate(), 0.9);
}

TEST(BatchEngine, SharedCacheAcrossEngines) {
  auto cache = std::make_shared<OrchestrationCache>();
  {
    BatchEngine a({.workers = 2, .cache = cache});
    ASSERT_TRUE(a.run_batch({auto_job("DCT", 1)})[0].ok);
  }
  {
    BatchEngine b({.workers = 2, .cache = cache});
    const auto r = b.run_batch({auto_job("DCT", 1)});
    ASSERT_TRUE(r[0].ok);
    EXPECT_TRUE(r[0].cache_hit);  // prepared by engine `a`
  }
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);
}

TEST(BatchEngine, GracefulShutdownFinishesInFlightAndQueuedJobs) {
  std::vector<std::future<JobResult>> futures;
  {
    BatchEngine engine({.workers = 2, .cache = nullptr});
    for (int i = 0; i < 12; ++i) {
      futures.push_back(engine.submit(auto_job("FIR12", 1 + i % 3)));
    }
    engine.shutdown();  // must drain everything already accepted
    auto rejected = engine.submit(baseline_job("FIR12", 1));
    const auto rr = rejected.get();
    EXPECT_FALSE(rr.ok);
    EXPECT_EQ(rr.kind, JobErrorKind::kRejected);
    const auto s = engine.stats();
    EXPECT_EQ(s.jobs_submitted, 12u);
    EXPECT_EQ(s.jobs_completed, 12u);
    EXPECT_EQ(s.jobs_failed, 0u);
    EXPECT_EQ(s.jobs_rejected, 1u);
  }
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.run.verified);
  }
}

TEST(BatchEngine, DestructorDrainsWithoutExplicitShutdown) {
  std::vector<std::future<JobResult>> futures;
  {
    BatchEngine engine({.workers = 3, .cache = nullptr});
    for (int i = 0; i < 9; ++i) {
      futures.push_back(engine.submit(baseline_job("IIR", 1)));
    }
  }  // ~BatchEngine
  for (auto& f : futures) EXPECT_TRUE(f.get().ok);
}

TEST(BatchEngine, CancelResolvesQueuedJobsAsCancelled) {
  BatchEngine engine({.workers = 1, .cache = nullptr});
  std::vector<std::future<JobResult>> futures;
  // One slow-ish job to occupy the single worker, then a pile behind it.
  for (int i = 0; i < 20; ++i) {
    futures.push_back(engine.submit(auto_job("FFT128", 1)));
  }
  futures[0].wait();  // ensure at least one job ran before cancelling
  engine.cancel();
  int cancelled = 0;
  int completed = 0;
  for (auto& f : futures) {
    const auto r = f.get();
    if (r.ok) {
      EXPECT_EQ(r.kind, JobErrorKind::kNone);
      ++completed;
    } else {
      EXPECT_EQ(r.kind, JobErrorKind::kCancelled);
      EXPECT_EQ(r.error, "cancelled");
      ++cancelled;
    }
  }
  EXPECT_EQ(cancelled + completed, 20);
  EXPECT_GE(completed, 1);  // the in-flight job finishes, not aborted
  const auto s = engine.stats();
  EXPECT_EQ(s.jobs_completed, 20u);
  EXPECT_EQ(s.jobs_failed, static_cast<uint64_t>(cancelled));
}

// Regression for the submit-after-shutdown path: it used to throw
// std::runtime_error from the caller's thread; the contract now is a
// future resolved with kind=kRejected so the facade can surface it as an
// ApiError instead of an exception.
TEST(BatchEngine, SubmitAfterShutdownResolvesAsRejectedNotThrow) {
  BatchEngine engine({.workers = 2, .cache = nullptr});
  engine.shutdown();
  std::future<JobResult> fut;
  EXPECT_NO_THROW(fut = engine.submit(baseline_job("FIR12", 1)));
  ASSERT_TRUE(fut.valid());
  const auto r = fut.get();
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.kind, JobErrorKind::kRejected);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(engine.stats().jobs_rejected, 1u);
  EXPECT_EQ(engine.stats().jobs_submitted, 0u);
}

// Cancel-while-queued followed by submit: the engine must reject, not
// throw and not deadlock, and stats must distinguish the two outcomes.
TEST(BatchEngine, SubmitAfterCancelIsRejected) {
  BatchEngine engine({.workers = 1, .cache = nullptr});
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(auto_job("FFT128", 1)));
  }
  engine.cancel();
  const auto late = engine.submit(baseline_job("FIR12", 1)).get();
  EXPECT_FALSE(late.ok);
  EXPECT_EQ(late.kind, JobErrorKind::kRejected);
  uint64_t cancelled = 0;
  for (auto& f : futures) {
    if (f.get().kind == JobErrorKind::kCancelled) ++cancelled;
  }
  const auto s = engine.stats();
  EXPECT_EQ(s.jobs_rejected, 1u);
  EXPECT_EQ(s.jobs_failed, cancelled);
}
