// Tests for the §6 crossbar extension: zero and sign-fill injection modes
// ("additional modes could be added to the SPU, like sign extension").
//
// The headline use case: widening packed bytes to words used to take an
// unpack-with-zero (unsigned) or unpack + arithmetic-shift pair (signed);
// with modes, a single routed instruction receives the widened operand.
#include <gtest/gtest.h>

#include "core/crossbar.h"
#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "core/spu.h"
#include "isa/assembler.h"
#include "sim/exec.h"
#include "sim/machine.h"

using namespace subword::core;
using namespace subword::isa;
using subword::sim::MmxRegFile;
using subword::sim::Pipe;
using subword::swar::Vec64;

namespace {

const CrossbarConfig kModesA = with_modes(kConfigA);
const CrossbarConfig kModesD = with_modes(kConfigD);

}  // namespace

TEST(Modes, RequireCapability) {
  Route r;
  r.sel[0] = 0;
  r.sel[1] = Route::kZero;
  EXPECT_FALSE(route_valid(r, kConfigA));
  EXPECT_TRUE(route_valid(r, kModesA));
  EXPECT_NE(route_violation(r, kConfigA).find("mode"), std::string::npos);
}

TEST(Modes, ZeroInjection) {
  MmxRegFile regs;
  regs.write(0, Vec64{0x8877665544332211ull});
  // Widen low 4 bytes of MM0 to zero-extended words.
  Route r;
  std::array<uint8_t, 8> srcs{{0, Route::kZero, 1, Route::kZero, 2,
                               Route::kZero, 3, Route::kZero}};
  r.set_operand(Pipe::U, 0, srcs);
  ASSERT_TRUE(route_valid(r, kModesA));
  const auto out = apply_route(r, Pipe::U, 0, regs, Vec64{~0ull});
  EXPECT_EQ(out.bits(), 0x0044003300220011ull);
}

TEST(Modes, SignExtension) {
  MmxRegFile regs;
  regs.write(0, Vec64{0x00000000807F02F1ull});  // bytes F1 02 7F 80
  Route r;
  std::array<uint8_t, 8> srcs{{0, Route::kSignExtend, 1, Route::kSignExtend,
                               2, Route::kSignExtend, 3,
                               Route::kSignExtend}};
  r.set_operand(Pipe::U, 0, srcs);
  ASSERT_TRUE(route_valid(r, kModesA));
  const auto out = apply_route(r, Pipe::U, 0, regs, Vec64{});
  // Words: sext(F1)=FFF1, sext(02)=0002, sext(7F)=007F, sext(80)=FF80.
  EXPECT_EQ(out.lane<int16_t>(0), -15);
  EXPECT_EQ(out.lane<int16_t>(1), 2);
  EXPECT_EQ(out.lane<int16_t>(2), 127);
  EXPECT_EQ(out.lane<int16_t>(3), -128);
}

TEST(Modes, SignExtendChainsAcrossMultipleBytes) {
  MmxRegFile regs;
  regs.write(1, Vec64{0x00000000000000F0ull});
  // One byte widened to a full sign-extended dword.
  Route r;
  std::array<uint8_t, 8> srcs{{8, Route::kSignExtend, Route::kSignExtend,
                               Route::kSignExtend, Route::kZero,
                               Route::kZero, Route::kZero, Route::kZero}};
  r.set_operand(Pipe::U, 1, srcs);
  const auto out = apply_route(r, Pipe::U, 1, regs, Vec64{});
  EXPECT_EQ(out.lane<int32_t>(0), -16);
  EXPECT_EQ(out.lane<int32_t>(1), 0);
}

TEST(Modes, SignExtendAtOperandStartRejected) {
  Route r;
  r.sel[0] = Route::kSignExtend;  // no lower byte to take the sign from
  EXPECT_FALSE(route_valid(r, kModesA));
}

TEST(Modes, SixteenBitPortsAcceptWideningPairs) {
  // (routed byte, sign fill) and (routed byte, zero fill) make sense as
  // 16-bit output ports; arbitrary mode mixes do not.
  Route widen;
  widen.sel[0] = 4;
  widen.sel[1] = Route::kSignExtend;
  widen.sel[2] = 5;
  widen.sel[3] = Route::kZero;
  EXPECT_TRUE(route_valid(widen, kModesD));
  EXPECT_FALSE(route_valid(widen, kConfigD));  // no capability

  Route bad;
  bad.sel[0] = Route::kSignExtend;  // mode in the low byte
  bad.sel[1] = 4;
  EXPECT_FALSE(route_valid(bad, kModesD));
}

TEST(Modes, WideningReplacesUnpackShiftSequence) {
  // End-to-end: sign-extend packed bytes to words and add them, in one
  // routed PADDW — versus the classic 3-instruction MMX idiom
  // (movq copy, punpcklbw with self, psraw 8).
  Assembler a;
  a.li(R2, 0x1000);
  a.movq_load(MM0, R2, 0);   // packed signed bytes
  a.movq_load(MM1, R2, 8);   // word accumulators
  // Classic idiom for reference result in MM3:
  a.movq(MM2, MM0);
  a.punpcklbw(MM2, MM2);     // [b0 b0 b1 b1 ...] words with byte in high half
  a.psraw(MM2, 8);           // sign-extended words
  a.movq(MM3, MM1);
  a.paddw(MM3, MM2);
  a.halt();
  subword::sim::Machine m(a.take(), 1 << 16);
  m.memory().write64(0x1000, 0x00000000FE02807Full);
  m.memory().write64(0x1008, 0x0100010001000100ull);
  m.run();
  const auto classic = m.mmx().read(MM3);

  // Routed form: single paddw whose b-operand is the widened bytes.
  Spu spu(kModesA);
  MicroBuilder mb(kModesA);
  Route r;
  std::array<uint8_t, 8> srcs{{0, Route::kSignExtend, 1, Route::kSignExtend,
                               2, Route::kSignExtend, 3,
                               Route::kSignExtend}};
  r.set_operand_both_pipes(1, srcs);
  mb.add_state(r);
  mb.seal_simple_loop(1);
  spu.context(0) = mb.program();
  spu.go();

  MmxRegFile regs;
  regs.write(0, Vec64{0x00000000FE02807Full});
  Inst padd;
  padd.op = Op::Paddw;
  padd.dst = MM3;
  padd.src = MM0;
  Vec64 va{0x0100010001000100ull};  // accumulator value
  Vec64 vb{};
  ASSERT_TRUE(spu.route(padd, Pipe::U, regs, &va, &vb));
  const auto routed = subword::sim::mmx_alu(Op::Paddw, va, vb);
  EXPECT_EQ(routed.bits(), classic.bits());
}

TEST(Modes, MicroBuilderAcceptsModesOnlyWithCapability) {
  Route r;
  r.sel[0] = Route::kZero;
  MicroBuilder plain(kConfigA);
  EXPECT_THROW(plain.add_state(r), std::logic_error);
  MicroBuilder extended(kModesA);
  EXPECT_NO_THROW(extended.add_state(r));
}

TEST(Modes, MmioRoundTripsModeSelectors) {
  Spu spu(kModesA);
  SpuMmio mmio(&spu);
  const uint32_t base = SpuMmio::kStateBase;
  mmio.write32(base + 4, 0xFDFE00FFu);  // straight, 0, zero, sign-extend
  const auto& st = spu.context(0).states[0];
  EXPECT_EQ(st.route.sel[0], Route::kStraight);
  EXPECT_EQ(st.route.sel[1], 0);
  EXPECT_EQ(st.route.sel[2], Route::kZero);
  EXPECT_EQ(st.route.sel[3], Route::kSignExtend);
  EXPECT_EQ(mmio.read32(base + 4), 0xFDFE00FFu);
}
