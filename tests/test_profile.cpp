// Reporting/formatting tests: number formats, table rendering, speedup
// summaries — the benches' output layer must be stable and correct.
#include <gtest/gtest.h>

#include "profile/report.h"
#include "profile/table.h"

using namespace subword::prof;

TEST(Format, ScientificMatchesPaperStyle) {
  EXPECT_EQ(sci(1.51e10), "1.51E+10");
  EXPECT_EQ(sci(2.24e4), "2.24E+04");
  EXPECT_EQ(sci(0.0), "0.00E+00");
  EXPECT_EQ(sci(123456.0, 1), "1.2E+05");
}

TEST(Format, Percentages) {
  EXPECT_EQ(pct(0.00094), "0.094%");
  EXPECT_EQ(pct(0.2012, 2), "20.12%");
  EXPECT_EQ(pct(1.0, 0), "100%");
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(8.14), "8.14");
  EXPECT_EQ(fixed(0.95, 1), "0.9");  // printf rounding-to-even of 0.95
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "long header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide cell", "x", ""});
  const auto out = t.render();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // All lines the same width (aligned).
  size_t first_len = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Table, ShortRowsArePadded) {
  Table t({"x", "y"});
  t.add_row({"only-x"});
  EXPECT_NE(t.render().find("only-x"), std::string::npos);
}

TEST(Summarize, SpeedupAndSavings) {
  subword::sim::RunStats base, spu;
  base.cycles = 1200;
  spu.cycles = 1000;
  base.instructions = 1000;
  spu.instructions = 900;
  base.mmx_permutation = 100;
  spu.mmx_permutation = 25;
  base.mmx_busy_cycles = 600;
  spu.mmx_busy_cycles = 550;
  const auto s = summarize(base, spu);
  EXPECT_DOUBLE_EQ(s.speedup, 1.2);
  EXPECT_DOUBLE_EQ(s.cycles_saved, 200.0);
  EXPECT_DOUBLE_EQ(s.permute_offload, 0.75);
  EXPECT_DOUBLE_EQ(s.instr_savings, 0.1);
  EXPECT_DOUBLE_EQ(s.mmx_busy_baseline, 0.5);
}

TEST(Summarize, DegenerateInputsAreSafe) {
  subword::sim::RunStats zero;
  const auto s = summarize(zero, zero);
  EXPECT_EQ(s.speedup, 0.0);
  EXPECT_EQ(s.permute_offload, 0.0);
  EXPECT_EQ(s.instr_savings, 0.0);
}

TEST(RunReport, ContainsAllCategories) {
  subword::sim::RunStats st;
  st.instructions = 100;
  st.mmx_instructions = 60;
  st.mmx_compute = 40;
  st.mmx_permutation = 10;
  st.mmx_memory = 10;
  st.scalar_instructions = 40;
  st.branches = 5;
  st.branch_mispredicts = 1;
  st.cycles = 80;
  st.mmx_busy_cycles = 50;
  const auto rep = run_report("unit", st);
  for (const char* key :
       {"unit", "mmx permutation", "mispredicts", "cycles", "IPC",
        "MMX busy"}) {
    EXPECT_NE(rep.find(key), std::string::npos) << key;
  }
}

TEST(RunStats, AccumulationOperator) {
  subword::sim::RunStats a, b;
  a.cycles = 10;
  a.instructions = 5;
  b.cycles = 7;
  b.instructions = 3;
  b.spu_routed_ops = 2;
  a += b;
  EXPECT_EQ(a.cycles, 17u);
  EXPECT_EQ(a.instructions, 8u);
  EXPECT_EQ(a.spu_routed_ops, 2u);
}
