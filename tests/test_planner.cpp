// Planner tests: the registry's capability probes must be lazy (Session
// construction and enumeration trigger zero orchestrator runs), planning
// must be deterministic and cached (one planning miss per unique PlanKey
// no matter how many sessions race), planned execution must stay bit-exact
// against the scalar references for the whole registry, and the pure
// decision core must fall back to plain baseline whenever no candidate
// removes any permutation.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "hw/cost_model.h"
#include "runtime/planner.h"

using namespace subword;
using api::Session;

// -- Lazy capability probes (must run FIRST in this process: laziness is
// only observable before anything has consulted a capability) -------------

TEST(RegistryLaziness, SessionConstructionTriggersZeroOrchestratorRuns) {
  const uint64_t before = core::Orchestrator::total_runs();
  Session session({.workers = 2, .cache = nullptr});
  // Enumerating the registry reads identity fields only.
  const auto& infos = session.kernels();
  ASSERT_FALSE(infos.empty());
  for (const auto& info : infos) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
  }
  EXPECT_EQ(core::Orchestrator::total_runs(), before)
      << "constructing a Session (or listing kernels) must not pay for "
         "capability probes the caller never asked for";

  // Consulting a native capability is what triggers the (memoized) probe.
  EXPECT_TRUE(infos.front().native_backend());
  const uint64_t after_probe = core::Orchestrator::total_runs();
  EXPECT_GT(after_probe, before) << "the probe really runs the orchestrator";
  EXPECT_TRUE(infos.front().native_backend());
  EXPECT_EQ(core::Orchestrator::total_runs(), after_probe)
      << "the probe is memoized: asking twice costs nothing";
}

// -- Pure decision core ------------------------------------------------------

namespace {

runtime::PlanCandidate auto_candidate(const core::CrossbarConfig& cfg,
                                      int removed, int64_t benefit) {
  runtime::PlanCandidate c;
  c.use_spu = true;
  c.mode = kernels::SpuMode::Auto;
  c.cfg = cfg;
  c.removed_static = removed;
  c.est_benefit = benefit;
  c.score = benefit;  // what blend_with_history would set on cold history
  const auto cost = hw::estimate_cost(cfg);
  c.area_mm2 = cost.crossbar_area_mm2 + cost.control_mem_area_mm2;
  c.delay_ns = cost.crossbar_delay_ns;
  return c;
}

}  // namespace

TEST(PickPlan, ZeroRemovalEverywhereFallsBackToBaseline) {
  std::vector<runtime::PlanCandidate> cands;
  cands.push_back({});  // baseline
  for (const auto& cfg : core::kAllConfigs) {
    cands.push_back(auto_candidate(cfg, /*removed=*/0, /*benefit=*/0));
  }
  const auto plan = runtime::pick_plan("synthetic", 8, cands);
  EXPECT_FALSE(plan.use_spu);
  EXPECT_NE(plan.summary.reason.find("no configuration removes any"),
            std::string::npos)
      << plan.summary.reason;
}

TEST(PickPlan, NegativeNetBenefitFallsBackToBaseline) {
  // Removal exists but never outweighs startup (paper §4: orchestration is
  // only profitable when removals beat the MMIO cost).
  std::vector<runtime::PlanCandidate> cands;
  cands.push_back({});
  cands.push_back(auto_candidate(core::kConfigA, 4, -120));
  const auto plan = runtime::pick_plan("synthetic", 1, cands);
  EXPECT_FALSE(plan.use_spu);
  EXPECT_NE(plan.summary.reason.find("startup"), std::string::npos)
      << plan.summary.reason;
}

TEST(PickPlan, EqualBenefitPrefersCheapestSilicon) {
  std::vector<runtime::PlanCandidate> cands;
  cands.push_back({});
  for (const auto& cfg : core::kAllConfigs) {
    cands.push_back(auto_candidate(cfg, 6, 450));
  }
  const auto plan = runtime::pick_plan("synthetic", 1, cands);
  ASSERT_TRUE(plan.use_spu);
  EXPECT_EQ(std::string(plan.cfg.name), "D");  // cheapest Table-1 config
}

TEST(PickPlan, HigherBenefitBeatsCheaperSilicon) {
  std::vector<runtime::PlanCandidate> cands;
  cands.push_back({});
  cands.push_back(auto_candidate(core::kConfigA, 10, 900));
  cands.push_back(auto_candidate(core::kConfigD, 6, 450));
  const auto plan = runtime::pick_plan("synthetic", 1, cands);
  ASSERT_TRUE(plan.use_spu);
  EXPECT_EQ(std::string(plan.cfg.name), "A");
}

TEST(PickPlan, InfeasibleCandidatesNeverWin) {
  std::vector<runtime::PlanCandidate> cands;
  cands.push_back({});
  auto busted = auto_candidate(core::kConfigA, 10, 900);
  busted.feasible = false;
  cands.push_back(busted);
  const auto plan = runtime::pick_plan("synthetic", 1, cands);
  EXPECT_FALSE(plan.use_spu);
}

// -- Planner over the real registry -----------------------------------------

TEST(Planner, ZeroRemovalKernelsPlanBaselineInTheAutoOnlySpace) {
  // The PR-3 gotcha: these four auto-orchestrate to zero removed
  // permutations under every configuration. The planner must turn that
  // into a baseline decision, not pure overhead.
  const std::set<std::string> zero_removal = {"FIR12", "DCT",
                                              "Matrix Multiply",
                                              "Matrix Transpose"};
  runtime::PlanOptions auto_only;
  auto_only.allow_manual = false;
  for (const auto& k : kernels::all_kernels()) {
    const auto plan = runtime::plan_kernel(*k, 8, auto_only);
    bool any_removal = false;
    for (const auto& c : plan.summary.candidates) {
      if (c.use_spu && c.feasible && c.removed_static > 0) any_removal = true;
    }
    if (zero_removal.count(k->name()) > 0) {
      EXPECT_FALSE(any_removal) << k->name();
    }
    if (!any_removal) {
      EXPECT_FALSE(plan.use_spu)
          << k->name() << " removes nothing yet planned "
          << plan.summary.choice_label();
    }
  }
}

TEST(Planner, BudgetsConstrainTheSearch) {
  runtime::PlanOptions starved;
  starved.budget.area_mm2 = 1.0;  // below every Table-1 configuration
  const auto baseline_plan = runtime::plan_kernel("FIR22", 8, starved);
  EXPECT_FALSE(baseline_plan.use_spu);

  runtime::PlanOptions just_d;
  just_d.budget.area_mm2 = 3.0;  // admits exactly config D (2.86 mm^2)
  const auto d_plan = runtime::plan_kernel("FIR22", 8, just_d);
  ASSERT_TRUE(d_plan.use_spu);
  EXPECT_EQ(std::string(d_plan.cfg.name), "D");

  runtime::PlanOptions slow;
  slow.budget.delay_ns = 0.1;  // below every crossbar delay
  const auto slow_plan = runtime::plan_kernel("FIR22", 8, slow);
  EXPECT_FALSE(slow_plan.use_spu);
}

TEST(Planner, PlannedExecutionIsBitExactForTheWholeRegistry) {
  Session session({.workers = 2, .cache = nullptr});
  for (const auto& info : session.kernels()) {
    for (const int repeats : {1, 8}) {
      SCOPED_TRACE(info.name + " @ " + std::to_string(repeats));
      // Planner-chosen backend (native where it lowers) ...
      auto r = session.request(info.name).repeats(repeats).auto_plan().run();
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      EXPECT_TRUE(r->run.verified);
      ASSERT_NE(r->plan, nullptr);
      EXPECT_EQ(r->plan->repeats, repeats);
      EXPECT_FALSE(r->plan->reason.empty());
      // ... and pinned to the simulator, which must verify identically and
      // carry real cycle stats.
      auto sim = session.request(info.name)
                     .repeats(repeats)
                     .auto_plan()
                     .backend(api::ExecBackend::kSimulator)
                     .run();
      ASSERT_TRUE(sim.ok()) << sim.error().to_string();
      EXPECT_TRUE(sim->run.verified);
      ASSERT_TRUE(sim->cycles().has_value());
      EXPECT_GT(*sim->cycles(), 0u);
    }
  }
}

TEST(Planner, AutoPlanRejectsExplicitModeKnobs) {
  Session session({.workers = 1, .cache = nullptr});
  const auto r =
      session.request("FIR22").spu(core::kConfigD).auto_plan().run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, api::ErrorCode::kInvalidArgument);
}

TEST(Planner, NegativeBudgetIsATypedError) {
  Session session({.workers = 1, .cache = nullptr});
  const auto r = session.request("FIR22").area_budget_mm2(-1.0).run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, api::ErrorCode::kInvalidArgument);
}

// -- Determinism + cache behavior -------------------------------------------

TEST(PlannerCache, ConcurrentSessionsPlanOnceAndAgree) {
  const auto cache = std::make_shared<runtime::OrchestrationCache>();
  Session a({.workers = 2, .cache = cache});
  Session b({.workers = 2, .cache = cache});

  constexpr int kPerSession = 16;
  std::vector<api::Result<api::Response>> results;
  std::mutex mu;
  auto hammer = [&](Session& s) {
    for (int i = 0; i < kPerSession; ++i) {
      auto r = s.request("FIR22").repeats(8).auto_plan().run();
      std::lock_guard lock(mu);
      results.push_back(std::move(r));
    }
  };
  std::thread ta(hammer, std::ref(a));
  std::thread tb(hammer, std::ref(b));
  ta.join();
  tb.join();

  ASSERT_EQ(results.size(), 2u * kPerSession);
  std::set<std::string> choices;
  for (auto& r : results) {
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    ASSERT_NE(r->plan, nullptr);
    choices.insert(r->plan->choice_label() + "/" +
                   kernels::to_string(r->plan->backend));
  }
  EXPECT_EQ(choices.size(), 1u) << "identical PlanKeys must agree";

  // Every planned job records a measurement, and the history epoch bumps
  // when a key crosses the min/full sample thresholds (and on drift
  // invalidations, which wall-clock jitter can trigger on the native
  // backend) — each bump makes the next lookup replan. So misses are no
  // longer exactly 1: the initial plan, one per threshold crossing, plus
  // possibly a few drift-driven replans. They must stay rare, every
  // replan must reach the same choice (asserted above), and hits +
  // misses must account for every request against the single entry.
  const auto stats = cache->stats();
  EXPECT_GE(stats.plan_misses, 1u);
  EXPECT_LE(stats.plan_misses, 8u)
      << "replans should be rare: one per history-epoch bump";
  EXPECT_EQ(stats.plan_hits + stats.plan_misses, 2u * kPerSession);
  EXPECT_EQ(stats.plan_entries, 1u);

  // Different repeats or budgets are different PlanKeys: exactly one new
  // miss each (a single fresh sample can't cross a threshold, so no epoch
  // bump rides along).
  const auto misses_before = stats.plan_misses;
  auto r2 = a.request("FIR22").repeats(16).auto_plan().run();
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(cache->stats().plan_misses, misses_before + 1);
  auto r3 = a.request("FIR22").repeats(8).area_budget_mm2(3.0).run();
  ASSERT_TRUE(r3.ok()) << r3.error().to_string();
  EXPECT_EQ(cache->stats().plan_misses, misses_before + 2);
  EXPECT_EQ(cache->stats().plan_entries, 3u);
}

TEST(PlannerCache, PlannedJobsShareThePreparedProgramCache) {
  // A planned job and an explicitly-configured job with the same resolved
  // shape must land on the same OrchestrationKey entry.
  const auto cache = std::make_shared<runtime::OrchestrationCache>();
  Session session({.workers = 1, .cache = cache});

  auto planned = session.request("FIR22")
                     .repeats(8)
                     .auto_plan()
                     .backend(api::ExecBackend::kSimulator)
                     .run();
  ASSERT_TRUE(planned.ok()) << planned.error().to_string();
  ASSERT_NE(planned->plan, nullptr);
  ASSERT_TRUE(planned->plan->use_spu);

  const auto misses_before = cache->stats().misses;
  auto explicit_req = session.request("FIR22").repeats(8).spu(
      planned->plan->cfg);
  if (planned->plan->mode == kernels::SpuMode::Auto) {
    explicit_req.auto_orchestrate();
  } else {
    explicit_req.manual_spu();
  }
  auto fixed = explicit_req.run();
  ASSERT_TRUE(fixed.ok()) << fixed.error().to_string();
  EXPECT_TRUE(fixed->cache_hit);
  EXPECT_EQ(cache->stats().misses, misses_before)
      << "the explicit twin of a planned job must hit the same entry";
}

// -- Native-backend validation at build time ---------------------------------

TEST(RequestValidation, NativeBackendErrorsNameKernelAndConfig) {
  Session session({.workers = 1, .cache = nullptr});
  // A 2x2 half-word crossbar cannot carry any manual variant's routes, so
  // the probe rejects the shape — the error must surface at build() time
  // (typed, naming kernel and config), never from deep inside prepare.
  constexpr core::CrossbarConfig kTiny{"tiny2x2", 2, 2, 16};
  const auto r = session.request("FIR12")
                     .spu(kTiny)
                     .manual_spu()
                     .backend(api::ExecBackend::kNativeSwar)
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, api::ErrorCode::kBackendUnsupported);
  EXPECT_NE(r.error().message.find("FIR12"), std::string::npos);
  EXPECT_NE(r.error().message.find("tiny2x2"), std::string::npos);
}

TEST(RequestValidation, EveryRegistryShapeLowersToday) {
  // Lock in the current reality: all kernels x modes x configs pass the
  // per-shape lowering probe, so the build()-time rejection above is the
  // only gate a native caller can hit.
  for (const auto& info : kernels::kernel_infos()) {
    EXPECT_TRUE(info.native_supported(false, kernels::SpuMode::Auto,
                                      core::kConfigA))
        << info.name << " baseline";
    for (const auto& cfg : core::kAllConfigs) {
      EXPECT_TRUE(info.native_supported(true, kernels::SpuMode::Auto, cfg))
          << info.name << " auto " << cfg.name;
      EXPECT_TRUE(info.native_supported(true, kernels::SpuMode::Manual, cfg))
          << info.name << " manual " << cfg.name;
    }
  }
}
