// Machine-level execution semantics: every MMX data opcode is executed
// through the full pipeline (fetch, pairing, operand read, writeback) on
// random register images and compared against the SWAR library applied
// directly — catching operand-wiring mistakes the pure SWAR tests cannot.
#include <gtest/gtest.h>

#include <vector>

#include "isa/assembler.h"
#include "ref/workload.h"
#include "sim/exec.h"
#include "sim/machine.h"
#include "swar/swar.h"

using namespace subword;
using namespace subword::isa;
using ref::Rng;
using swar::Vec64;

namespace {

// All two-operand register-register MMX data ops.
const std::vector<Op> kRegRegOps = {
    Op::MovqRR,   Op::Paddb,    Op::Paddw,    Op::Paddd,    Op::Psubb,
    Op::Psubw,    Op::Psubd,    Op::Paddsb,   Op::Paddsw,   Op::Paddusb,
    Op::Paddusw,  Op::Psubsb,   Op::Psubsw,   Op::Psubusb,  Op::Psubusw,
    Op::Pmullw,   Op::Pmulhw,   Op::Pmaddwd,  Op::Pcmpeqb,  Op::Pcmpeqw,
    Op::Pcmpeqd,  Op::Pcmpgtb,  Op::Pcmpgtw,  Op::Pcmpgtd,  Op::Pand,
    Op::Pandn,    Op::Por,      Op::Pxor,     Op::Packsswb, Op::Packssdw,
    Op::Packuswb, Op::Punpcklbw, Op::Punpcklwd, Op::Punpckldq,
    Op::Punpckhbw, Op::Punpckhwd, Op::Punpckhdq,
};

const std::vector<Op> kShiftOps = {
    Op::Psllw, Op::Pslld, Op::Psllq, Op::Psrlw,
    Op::Psrld, Op::Psrlq, Op::Psraw, Op::Psrad,
};

class RegRegExec : public ::testing::TestWithParam<Op> {};

TEST_P(RegRegExec, MachineMatchesSwarOracle) {
  const Op op = GetParam();
  Rng rng(0xE0E0 + static_cast<uint64_t>(op));
  for (int iter = 0; iter < 200; ++iter) {
    const Vec64 a{rng.next()};
    const Vec64 b{rng.next()};

    Assembler as;
    Inst in;
    in.op = op;
    in.dst = MM2;
    in.src = MM5;
    as.emit(in);
    as.halt();
    sim::Machine m(as.take(), 64);
    m.mmx().write(MM2, a);
    m.mmx().write(MM5, b);
    m.run();

    const Vec64 want = sim::mmx_alu(op, a, b);
    ASSERT_EQ(m.mmx().read(MM2).bits(), want.bits())
        << op_name(op) << " a=" << swar::to_hex(a)
        << " b=" << swar::to_hex(b);
    // Source register untouched.
    ASSERT_EQ(m.mmx().read(MM5).bits(), b.bits());
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegReg, RegRegExec,
                         ::testing::ValuesIn(kRegRegOps),
                         [](const auto& info) {
                           return std::string(op_name(info.param)) +
                                  std::to_string(static_cast<int>(
                                      info.param));
                         });

class ShiftExec : public ::testing::TestWithParam<Op> {};

TEST_P(ShiftExec, ImmediateAndRegisterCounts) {
  const Op op = GetParam();
  Rng rng(0x5150 + static_cast<uint64_t>(op));
  for (uint8_t count : {0, 1, 7, 15, 16, 31, 32, 63, 64}) {
    const Vec64 a{rng.next()};
    // Immediate form.
    {
      Assembler as;
      Inst in;
      in.op = op;
      in.dst = MM1;
      in.src_is_imm = true;
      in.imm8 = count;
      as.emit(in);
      as.halt();
      sim::Machine m(as.take(), 64);
      m.mmx().write(MM1, a);
      m.run();
      const Vec64 want = sim::mmx_alu(op, a, Vec64{}, count);
      ASSERT_EQ(m.mmx().read(MM1).bits(), want.bits())
          << op_name(op) << " imm count " << static_cast<int>(count);
    }
    // Register-count form (count in the low bits of another register).
    {
      Assembler as;
      Inst in;
      in.op = op;
      in.dst = MM1;
      in.src = MM4;
      in.src_is_imm = false;
      as.emit(in);
      as.halt();
      sim::Machine m(as.take(), 64);
      m.mmx().write(MM1, a);
      m.mmx().write(MM4, Vec64{count});
      m.run();
      const Vec64 want = sim::mmx_alu(op, a, Vec64{count}, count);
      ASSERT_EQ(m.mmx().read(MM1).bits(), want.bits())
          << op_name(op) << " reg count " << static_cast<int>(count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllShifts, ShiftExec, ::testing::ValuesIn(kShiftOps),
                         [](const auto& info) {
                           return std::string(op_name(info.param)) +
                                  std::to_string(static_cast<int>(
                                      info.param));
                         });

TEST(ExecEdge, InPlaceOperandAliasing) {
  // dst == src must behave like two reads of the same value.
  for (const Op op : kRegRegOps) {
    Assembler as;
    Inst in;
    in.op = op;
    in.dst = MM3;
    in.src = MM3;
    as.emit(in);
    as.halt();
    sim::Machine m(as.take(), 64);
    const Vec64 a{0x8001FFFF7FFE1234ull};
    m.mmx().write(MM3, a);
    m.run();
    ASSERT_EQ(m.mmx().read(MM3).bits(), sim::mmx_alu(op, a, a).bits())
        << op_name(op);
  }
}

TEST(ExecEdge, EmmsIsANoOpForState) {
  Assembler as;
  as.emms();
  as.halt();
  sim::Machine m(as.take(), 64);
  m.mmx().write(MM0, Vec64{42});
  m.run();
  EXPECT_EQ(m.mmx().read(MM0).bits(), 42u);
}

TEST(ExecEdge, UnalignedMovqLoads) {
  // The FIR kernels rely on unaligned quadword loads (x86 permits them).
  Assembler as;
  as.li(R2, 0x100);
  as.movq_load(MM0, R2, 3);  // deliberately odd offset
  as.halt();
  sim::Machine m(as.take(), 1 << 12);
  m.memory().write64(0x100, 0x8877665544332211ull);
  m.memory().write64(0x108, 0xFFEEDDCCBBAA9988ull);
  m.run();
  // Bytes at 0x103..0x10A: 44 55 66 77 88 | 88 99 AA.
  EXPECT_EQ(m.mmx().read(MM0).bits(), 0xAA99888877665544ull);
}

TEST(ExecEdge, NegativeDisplacements) {
  Assembler as;
  as.li(R2, 0x100);
  as.movq_load(MM0, R2, -8);
  as.movq_store(R2, -16, MM0);
  as.halt();
  sim::Machine m(as.take(), 1 << 12);
  m.memory().write64(0xF8, 0x1122334455667788ull);
  m.run();
  EXPECT_EQ(m.memory().read64(0xF0), 0x1122334455667788ull);
}

TEST(ExecEdge, ScalarShiftAndMaskOps) {
  Assembler as;
  as.li(R1, -8);        // sign-extended
  as.smov(R2, R1);
  as.sshri(R2, 1);      // logical: huge positive
  as.smov(R3, R1);
  as.ssrai(R3, 1);      // arithmetic: -4
  as.li(R4, 0xFF);
  as.sand(R4, R1);
  as.li(R5, 1);
  as.sor(R5, R1);
  as.sxor(R1, R1);      // zero
  as.halt();
  sim::Machine m(as.take(), 64);
  m.run();
  EXPECT_EQ(m.gp().read(R2), 0xFFFFFFFFFFFFFFF8ull >> 1);
  EXPECT_EQ(static_cast<int64_t>(m.gp().read(R3)), -4);
  EXPECT_EQ(m.gp().read(R4), 0xF8u);
  EXPECT_EQ(m.gp().read(R5), 0xFFFFFFFFFFFFFFF9ull);
  EXPECT_EQ(m.gp().read(R1), 0u);
}

}  // namespace
