// Hardware cost model tests: Table 1 values, the 128*(15+W) control
// memory formula, model-vs-calibration agreement, die scaling (<1% claim).
#include <gtest/gtest.h>

#include "hw/cost_model.h"

using namespace subword::hw;
using namespace subword::core;

TEST(CostModel, Table1PublishedValues) {
  const auto a = estimate_cost(kConfigA);
  EXPECT_TRUE(a.calibrated);
  EXPECT_DOUBLE_EQ(a.crossbar_area_mm2, 8.14);
  EXPECT_DOUBLE_EQ(a.crossbar_delay_ns, 3.14);
  EXPECT_DOUBLE_EQ(a.control_mem_area_mm2, 1.35);

  const auto b = estimate_cost(kConfigB);
  EXPECT_DOUBLE_EQ(b.crossbar_area_mm2, 4.07);
  EXPECT_DOUBLE_EQ(b.crossbar_delay_ns, 2.29);
  EXPECT_DOUBLE_EQ(b.control_mem_area_mm2, 1.10);

  const auto c = estimate_cost(kConfigC);
  EXPECT_DOUBLE_EQ(c.crossbar_area_mm2, 4.72);
  EXPECT_DOUBLE_EQ(c.crossbar_delay_ns, 1.95);
  EXPECT_DOUBLE_EQ(c.control_mem_area_mm2, 0.60);

  const auto d = estimate_cost(kConfigD);
  EXPECT_DOUBLE_EQ(d.crossbar_area_mm2, 2.36);
  EXPECT_DOUBLE_EQ(d.crossbar_delay_ns, 0.95);
  EXPECT_DOUBLE_EQ(d.control_mem_area_mm2, 0.50);
}

TEST(CostModel, ControlMemoryFormula) {
  // 128*(15+W) bits with W the interconnect field width.
  EXPECT_EQ(estimate_cost(kConfigA).control_mem_bits, 128 * (15 + 192));
  EXPECT_EQ(estimate_cost(kConfigB).control_mem_bits, 128 * (15 + 32 * 5));
  EXPECT_EQ(estimate_cost(kConfigC).control_mem_bits, 128 * (15 + 16 * 5));
  EXPECT_EQ(estimate_cost(kConfigD).control_mem_bits, 128 * (15 + 16 * 4));
}

TEST(CostModel, AnalyticalModelTracksCalibration) {
  // The fitted model must reproduce the published areas closely (the
  // crosspoint coefficients were derived from these very points) and the
  // control memory within the paper's own rounding.
  for (const auto& cfg : kAllConfigs) {
    const auto cal = estimate_cost(cfg);
    const auto mod = model_cost(cfg);
    EXPECT_NEAR(mod.crossbar_area_mm2, cal.crossbar_area_mm2,
                0.01 * cal.crossbar_area_mm2)
        << cfg.name;
    EXPECT_NEAR(mod.control_mem_area_mm2, cal.control_mem_area_mm2,
                0.06)
        << cfg.name;
    // Delay is layout-noise dominated; the log-fit lands within ~15%.
    EXPECT_NEAR(mod.crossbar_delay_ns, cal.crossbar_delay_ns,
                0.15 * cal.crossbar_delay_ns)
        << cfg.name;
  }
}

TEST(CostModel, AreaMonotoneInCrosspoints) {
  const CrossbarConfig small{"S", 8, 8, 8};
  const CrossbarConfig big{"L", 64, 64, 8};
  EXPECT_LT(model_cost(small).crossbar_area_mm2,
            model_cost(big).crossbar_area_mm2);
  EXPECT_LT(model_cost(small).control_mem_bits,
            model_cost(big).control_mem_bits);
}

TEST(CostModel, DieFractionUnderOnePercent) {
  // §5.1.1: scaled to 0.18um/6LM, the SPU costs <1% of a Pentium III die.
  // Configuration D — the one the paper says suffices for every studied
  // application — is the configuration the claim is made for.
  const auto d = estimate_cost(kConfigD);
  const double scaled_d =
      scale_to_018um(d.crossbar_area_mm2 + d.control_mem_area_mm2);
  EXPECT_LT(pentium3_die_fraction(scaled_d), 0.01);
  // The mid-range configurations stay under 1.5%, full-byte A under 2.5%.
  for (const auto& cfg : {kConfigB, kConfigC}) {
    const auto c = estimate_cost(cfg);
    const double scaled =
        scale_to_018um(c.crossbar_area_mm2 + c.control_mem_area_mm2);
    EXPECT_LT(pentium3_die_fraction(scaled), 0.015) << cfg.name;
  }
  const auto a = estimate_cost(kConfigA);
  const double scaled_a =
      scale_to_018um(a.crossbar_area_mm2 + a.control_mem_area_mm2);
  EXPECT_LT(pentium3_die_fraction(scaled_a), 0.025);
}

TEST(CostModel, DelayFitsPipelineStage) {
  // Config D at 0.95ns fits a single added pipeline stage even at the
  // Pentium III's ~1GHz; A needs the pipelining discussed in §5.1.1.
  EXPECT_LT(estimate_cost(kConfigD).crossbar_delay_ns, 1.0);
  EXPECT_GT(estimate_cost(kConfigA).crossbar_delay_ns, 1.0);
}
