// Trace collection and pipeline rendering tests.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "profile/trace.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;

TEST(Trace, RecordsEveryRetiredInstruction) {
  Assembler a;
  a.li(R1, 3);
  a.label("l");
  a.nop();
  a.loopnz(R1, "l");
  a.halt();
  sim::Machine m(a.take(), 1 << 12);
  prof::Tracer tracer;
  m.set_trace(tracer.hook());
  m.run();
  EXPECT_EQ(tracer.records().size(), m.stats().instructions);
  EXPECT_FALSE(tracer.truncated());
}

TEST(Trace, RendersPairsOnOneLine) {
  Assembler a;
  a.paddw(MM0, MM1);
  a.psubw(MM2, MM3);  // pairs with the paddw
  a.halt();
  sim::Machine m(a.take(), 64);
  prof::Tracer tracer;
  m.set_trace(tracer.hook());
  m.run();
  const auto out = tracer.render();
  EXPECT_NE(out.find("U= paddw mm0, mm1"), std::string::npos);
  EXPECT_NE(out.find("| V= psubw mm2, mm3"), std::string::npos);
}

TEST(Trace, MarksMispredicts) {
  Assembler a;
  a.li(R1, 2);
  a.label("l");
  a.loopnz(R1, "l");
  a.halt();
  sim::Machine m(a.take(), 64);
  prof::Tracer tracer;
  m.set_trace(tracer.hook());
  m.run();
  EXPECT_NE(tracer.render().find("[MISPREDICT]"), std::string::npos);
}

TEST(Trace, ShowsStallBubbles) {
  Assembler a;
  a.pmullw(MM0, MM1);   // 3-cycle result
  a.paddw(MM2, MM0);    // stalls on it
  a.halt();
  sim::Machine m(a.take(), 64);
  prof::Tracer tracer;
  m.set_trace(tracer.hook());
  m.run();
  EXPECT_NE(tracer.render().find("(stall/bubble"), std::string::npos);
}

TEST(Trace, TruncatesAtCapacity) {
  Assembler a;
  a.li(R1, 100);
  a.label("l");
  a.nop();
  a.loopnz(R1, "l");
  a.halt();
  sim::Machine m(a.take(), 1 << 12);
  prof::Tracer tracer(10);
  m.set_trace(tracer.hook());
  m.run();
  EXPECT_EQ(tracer.records().size(), 10u);
  EXPECT_TRUE(tracer.truncated());
  EXPECT_NE(tracer.render().find("(trace truncated)"), std::string::npos);
}

TEST(Trace, ClearResets) {
  prof::Tracer tracer(4);
  Assembler a;
  a.nop();
  a.halt();
  sim::Machine m(a.take(), 64);
  m.set_trace(tracer.hook());
  m.run();
  EXPECT_FALSE(tracer.records().empty());
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
}
