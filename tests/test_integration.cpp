// Cross-module integration tests: auto-orchestration applied to real
// kernels, exception handling around an active SPU, and the end-to-end
// MMIO + router + machine plumbing under dual issue.
#include <gtest/gtest.h>

#include "core/orchestrator.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "kernels/registry.h"
#include "kernels/runner.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;
using core::kConfigA;
using kernels::SpuMode;

TEST(AutoOrchestration, FirKernelIsAutomaticallyOrchestrated) {
  // FIR22's horizontal reductions follow exactly the pattern the
  // provenance pass targets — the automatic path should fire and verify.
  const auto k = kernels::make_kernel("FIR22");
  const auto run = kernels::run_spu(*k, 2, kConfigA, SpuMode::Auto);
  EXPECT_TRUE(run.verified);
  ASSERT_TRUE(run.orchestration != nullptr);
  EXPECT_GT(run.orchestration->removed_static, 0);
}

TEST(AutoOrchestration, Fir12MergedReduceIsCorrectlyRejected) {
  // FIR12's merged reduce overwrites acc0 (PUNPCKHDQ MM0, MM1) between
  // the PUNPCKLDQ copy and its consumer — the pass must detect that the
  // source bytes are gone and keep the permutations rather than
  // mis-route them.
  const auto k = kernels::make_kernel("FIR12");
  const auto run = kernels::run_spu(*k, 2, kConfigA, SpuMode::Auto);
  EXPECT_TRUE(run.verified);  // soundness: never corrupts
  ASSERT_TRUE(run.orchestration != nullptr);
  EXPECT_EQ(run.orchestration->removed_static, 0);
}

TEST(AutoOrchestration, VerifiesOnEveryKernel) {
  // The automatic pass must at minimum be *sound* on every registry kernel —
  // whatever it fails to remove, it must never corrupt.
  for (const auto& k : kernels::all_kernels()) {
    const auto run = kernels::run_spu(*k, 1, kConfigA, SpuMode::Auto);
    EXPECT_TRUE(run.verified) << k->name();
  }
}

TEST(Exceptions, HandlerStopsAndResumesSpu) {
  // Run an SPU loop, interrupt mid-flight, disable the SPU via its control
  // register (the §4 exception discipline), confirm it is off, then
  // re-enable and let the program structure re-activate on the next pass.
  const auto k = kernels::make_kernel("Matrix Transpose");
  auto prog = k->build_spu(kConfigA, /*repeats=*/2);
  ASSERT_TRUE(prog.has_value());

  sim::PipelineConfig pc;
  pc.extra_spu_stage = true;
  sim::Machine m(std::move(*prog), kernels::kMemBytes, pc);
  core::Spu spu(kConfigA, 8);
  core::SpuMmio mmio(&spu);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  k->init_memory(m.memory());

  // Execute deep enough that the SPU has been activated at least once.
  m.run_for_instructions(400);
  ASSERT_FALSE(m.halted());

  // "Exception handler": save state, disable through the MMIO window.
  const bool was_active = spu.active();
  mmio.write32(core::SpuMmio::kConfigReg, 0);  // GO clear
  EXPECT_FALSE(spu.active());

  // Handler returns; a real handler would restart the interrupted loop
  // from its preamble. The kernel's outer structure re-activates the SPU
  // each block row, so the machine finishes cleanly either way.
  (void)was_active;
  m.run();
  EXPECT_TRUE(m.halted());
  EXPECT_GT(m.stats().spu_routed_ops, 0u);
}

TEST(Plumbing, RoutedOpsOnlyWhileActive) {
  // A program that never writes GO must never see routed operands even
  // with a fully programmed SPU attached.
  Assembler a;
  a.li(R2, 0x1000);
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.paddw(MM0, MM1);
  a.movq_store(R2, 16, MM0);
  a.halt();
  sim::Machine m(a.take(), 1 << 16);
  core::Spu spu(kConfigA);
  core::SpuMmio mmio(&spu);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  m.memory().write64(0x1000, 0x0001000100010001ull);
  m.memory().write64(0x1008, 0x0002000200020002ull);
  m.run();
  EXPECT_EQ(m.stats().spu_routed_ops, 0u);
  EXPECT_EQ(m.memory().read64(0x1010), 0x0003000300030003ull);
}

TEST(Plumbing, StatsRoutedOpsCountsSpuWork) {
  const auto k = kernels::make_kernel("Matrix Transpose");
  const auto spu_run = kernels::run_spu(*k, 1, kConfigA, SpuMode::Manual);
  // 4 routed gathers per 4x4 block, 16 blocks.
  EXPECT_EQ(spu_run.stats.spu_routed_ops, 64u);
}

TEST(Plumbing, OrchestratorAndManualAgreeOnSemantics) {
  // Both SPU paths and the baseline must produce identical outputs.
  const auto k = kernels::make_kernel("FIR22");
  const auto base = kernels::run_baseline(*k, 1);
  const auto man = kernels::run_spu(*k, 1, kConfigA, SpuMode::Manual);
  const auto aut = kernels::run_spu(*k, 1, kConfigA, SpuMode::Auto);
  EXPECT_TRUE(base.verified);
  EXPECT_TRUE(man.verified);
  EXPECT_TRUE(aut.verified);
}
