// Facade tests: the api:: layer must validate every knob at build time and
// report through Result/ApiError (never throw), the user-owned-buffer path
// must be bit-exact against the scalar references, pipelines must compose
// stage buffers end-to-end, and Sessions sharing a cache must prepare each
// unique configuration exactly once.
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "api/session.h"
#include "kernels/motion_est.h"
#include "kernels/video_pipeline_ref.h"
#include "ref/workload.h"

using namespace subword;
using api::ErrorCode;
using api::Session;
using kernels::composed_video_pipeline_ref;

// -- Registry enumeration ----------------------------------------------------

TEST(SessionKernels, EnumeratesTheFullRegistryWithDescriptors) {
  Session session({.workers = 1, .cache = nullptr});
  const auto& infos = session.kernels();
  ASSERT_EQ(infos.size(), kernels::all_kernels().size());
  EXPECT_EQ(infos.front().name, "FIR12");
  for (const auto& info : infos) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_FALSE(info.description.empty());
    // Every registry kernel today carries a hand-written SPU variant.
    EXPECT_TRUE(info.has_manual_spu()) << info.name;
  }
  // The buffer-capable subset advertises exact byte contracts.
  const auto fir = session.kernel("FIR12");
  ASSERT_TRUE(fir.ok());
  EXPECT_EQ(fir->buffers.input_bytes, 300u);
  EXPECT_EQ(fir->buffers.output_bytes, 300u);
  const auto dct = session.kernel("DCT");
  ASSERT_TRUE(dct.ok());
  EXPECT_FALSE(dct->buffers.supported());
}

TEST(SessionKernels, LookupIsCaseInsensitive) {
  Session session({.workers = 1, .cache = nullptr});
  EXPECT_TRUE(session.kernel("fir12").ok());
  EXPECT_TRUE(session.kernel("matrix transpose").ok());
  const auto missing = session.kernel("NoSuchKernel");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kUnknownKernel);
}

// -- Builder validation ------------------------------------------------------

TEST(RequestBuilder, UnknownKernelIsATypedError) {
  Session session({.workers = 1, .cache = nullptr});
  const auto r = session.request("NoSuchKernel").run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnknownKernel);
  EXPECT_NE(r.error().message.find("NoSuchKernel"), std::string::npos);
}

TEST(RequestBuilder, RepeatsMustBePositive) {
  Session session({.workers = 1, .cache = nullptr});
  const auto r = session.request("FIR12").repeats(0).run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(RequestBuilder, BuildResolvesCanonicalNameAndDefaults) {
  Session session({.workers = 1, .cache = nullptr});
  const auto job = session.request("fir12").repeats(3).build();
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->kernel, "FIR12");  // canonical registry spelling
  EXPECT_EQ(job->repeats, 3);
  EXPECT_FALSE(job->use_spu);  // default is the MMX baseline
}

TEST(RequestBuilder, BufferSizeMismatchIsCaughtBeforeSubmission) {
  Session session({.workers = 1, .cache = nullptr});
  std::vector<int16_t> ten(10, 0);
  const auto r = session.request("FIR12")
                     .input(std::span<const int16_t>(ten))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kBufferSizeMismatch);

  std::vector<int16_t> in(150, 0);
  std::vector<int16_t> out(7, 0);
  const auto r2 = session.request("FIR12")
                      .input(std::span<const int16_t>(in))
                      .output(std::span<int16_t>(out))
                      .run();
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.error().code, ErrorCode::kBufferSizeMismatch);
}

TEST(RequestBuilder, BuffersOnANonBufferKernelAreRejected) {
  Session session({.workers = 1, .cache = nullptr});
  std::vector<uint8_t> bytes(64, 0);
  const auto r = session.request("DCT")
                     .input(std::span<const uint8_t>(bytes))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kBuffersUnsupported);
}

TEST(Result, ValueOnErrorThrowsLogicError) {
  Session session({.workers = 1, .cache = nullptr});
  auto r = session.request("NoSuchKernel").run();
  ASSERT_FALSE(r.ok());
  EXPECT_THROW((void)r.value(), std::logic_error);
}

// -- Execution through the facade -------------------------------------------

TEST(RequestRun, BaselineManualAndAutoAllVerify) {
  Session session({.workers = 2, .cache = nullptr});
  const auto base = session.request("FIR22").repeats(2).baseline().run();
  ASSERT_TRUE(base.ok()) << base.error().to_string();
  EXPECT_TRUE(base->run.verified);

  const auto manual = session.request("FIR22")
                          .repeats(2)
                          .spu(core::kConfigA)
                          .manual_spu()
                          .run();
  ASSERT_TRUE(manual.ok()) << manual.error().to_string();
  EXPECT_TRUE(manual->run.verified);
  EXPECT_GT(manual->run.stats.spu_routed_ops, 0u);

  const auto autod = session.request("FIR22")
                         .repeats(2)
                         .spu(core::kConfigA)
                         .auto_orchestrate()
                         .run();
  ASSERT_TRUE(autod.ok()) << autod.error().to_string();
  EXPECT_TRUE(autod->run.verified);
  ASSERT_NE(autod->run.orchestration, nullptr);
  EXPECT_GT(autod->run.orchestration->removed_static, 0);
}

TEST(RequestRun, UserOwnedBuffersAreBitExactAgainstTheReference) {
  Session session({.workers = 2, .cache = nullptr});
  const auto spec = session.kernel("FIR12")->buffers;
  const auto x = ref::make_samples(spec.input_bytes / 2, 0xABCDEF);
  std::vector<int16_t> y(spec.output_bytes / 2, 0);
  const auto r = session.request("FIR12")
                     .spu(core::kConfigA)
                     .auto_orchestrate()
                     .input(std::span<const int16_t>(x))
                     .output(std::span<int16_t>(y))
                     .run();
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  // verify_bound checked the output region against ref::fir over the
  // caller's samples; the output span is read back from that same region,
  // so verified + a non-trivial readback is the bit-exactness check.
  EXPECT_TRUE(r->run.verified);
  bool nonzero = false;
  for (const auto v : y) nonzero = nonzero || v != 0;
  EXPECT_TRUE(nonzero);
}

TEST(RequestRun, OutOfContractInputIsAVerificationErrorNotSilentCorruption) {
  Session session({.workers = 1, .cache = nullptr});
  // 2D Convolution's bit-exactness contract requires pixel-range input;
  // amplitude-30000 lanes make the kernel's wrapping 16-bit accumulation
  // diverge from the scalar reference. The facade must refuse to hand the
  // divergent output back as a success.
  const auto spec = session.kernel("2D Convolution")->buffers;
  std::vector<int16_t> wild(spec.input_bytes / 2, 30000);
  std::vector<int16_t> out(spec.output_bytes / 2, 0);
  const auto r = session.request("2D Convolution")
                     .spu(core::kConfigD)
                     .input(std::span<const int16_t>(wild))
                     .output(std::span<int16_t>(out))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kVerificationFailed);
  // And the failed run must not have clobbered the caller's output buffer.
  for (const auto v : out) ASSERT_EQ(v, 0);
}

TEST(RequestRun, DoubleWaitIsATypedErrorNotAThrow) {
  Session session({.workers = 1, .cache = nullptr});
  auto submitted = session.request("FIR12").submit();
  ASSERT_TRUE(submitted.ok());
  const auto first = submitted->wait();
  EXPECT_TRUE(first.ok()) << first.error().to_string();
  const auto second = submitted->wait();  // must not throw std::future_error
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kInvalidArgument);
}

TEST(RequestRun, SubmitAfterShutdownIsASessionShutdownError) {
  Session session({.workers = 1, .cache = nullptr});
  session.shutdown();
  const auto r = session.request("FIR12").run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kSessionShutdown);
}

// -- Pipeline composition ----------------------------------------------------

TEST(Pipeline, EmptyPipelineIsInvalid) {
  Session session({.workers = 1, .cache = nullptr});
  const auto r = session.pipeline().run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(Pipeline, InputSizeMustMatchFirstStage) {
  Session session({.workers = 1, .cache = nullptr});
  std::vector<int16_t> tiny(8, 0);
  const auto r = session.pipeline()
                     .then(session.request("Color Convert"))
                     .input(std::span<const int16_t>(tiny))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kBufferSizeMismatch);
}

TEST(Pipeline, IncompatibleStageOrderIsAPipelineMismatch) {
  Session session({.workers = 1, .cache = nullptr});
  // SAD emits 32 bytes; Color Convert needs 1536 — unchainable.
  const auto cur = ref::make_bytes(kernels::MotionEstKernel::kBlockBytes, 1);
  const auto r = session.pipeline()
                     .then(session.request("Motion Estimation"))
                     .then(session.request("Color Convert"))
                     .input(std::span<const uint8_t>(cur))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kPipelineMismatch);
}

TEST(Pipeline, NonBufferKernelCannotBeAStage) {
  Session session({.workers = 1, .cache = nullptr});
  std::vector<uint8_t> in(1536, 0);
  const auto r = session.pipeline()
                     .then(session.request("Color Convert"))
                     .then(session.request("DCT"))
                     .input(std::span<const uint8_t>(in))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kBuffersUnsupported);
}

TEST(Pipeline, StagesMustNotBindTheirOwnBuffers) {
  Session session({.workers = 1, .cache = nullptr});
  std::vector<uint8_t> in(1536, 0);
  const auto r = session.pipeline()
                     .then(session.request("Color Convert")
                               .input(std::span<const uint8_t>(in)))
                     .input(std::span<const uint8_t>(in))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(Pipeline, StageFromAnotherSessionIsRejected) {
  Session a({.workers = 1, .cache = nullptr});
  Session b({.workers = 1, .cache = nullptr});
  std::vector<uint8_t> in(1536, 0);
  const auto r = a.pipeline()
                     .then(b.request("Color Convert"))
                     .input(std::span<const uint8_t>(in))
                     .run();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
}

TEST(Pipeline, ThreeStageVideoPipelineIsBitExactAgainstComposedRefs) {
  Session session({.workers = 2, .cache = nullptr});
  for (const uint64_t seed : {0x1ull, 0x22ull, 0x333ull}) {
    const auto rgb = ref::make_pixels(3 * 256, seed);
    auto run =
        session.pipeline()
            .then(session.request("Color Convert").spu(core::kConfigD))
            .then(session.request("2D Convolution").spu(core::kConfigD))
            .then(session.request("Motion Estimation").spu(core::kConfigD))
            .input(std::span<const int16_t>(rgb))
            .run();
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    ASSERT_EQ(run->stages.size(), 3u);
    for (const auto& st : run->stages) {
      EXPECT_TRUE(st.response.run.verified) << st.kernel;
    }
    // End-to-end: the final SADs equal ref_color ∘ ref_conv2d ∘ ref_sad.
    const auto want = composed_video_pipeline_ref(rgb);
    ASSERT_EQ(run->output.size(), want.size() * 2);
    std::vector<int16_t> got(want.size());
    std::memcpy(got.data(), run->output.data(), run->output.size());
    EXPECT_EQ(got, want) << "seed " << seed;
  }
}

TEST(Pipeline, AutoOrchestratedStagesMatchManualStages) {
  Session session({.workers = 2, .cache = nullptr});
  const auto rgb = ref::make_pixels(3 * 256, 0x77);
  auto manual =
      session.pipeline()
          .then(session.request("Color Convert").spu(core::kConfigD))
          .then(session.request("2D Convolution").spu(core::kConfigD))
          .then(session.request("Motion Estimation").spu(core::kConfigD))
          .input(std::span<const int16_t>(rgb))
          .run();
  auto autod = session.pipeline()
                   .then(session.request("Color Convert")
                             .spu(core::kConfigD)
                             .auto_orchestrate())
                   .then(session.request("2D Convolution")
                             .spu(core::kConfigD)
                             .auto_orchestrate())
                   .then(session.request("Motion Estimation")
                             .spu(core::kConfigD)
                             .auto_orchestrate())
                   .input(std::span<const int16_t>(rgb))
                   .run();
  ASSERT_TRUE(manual.ok()) << manual.error().to_string();
  ASSERT_TRUE(autod.ok()) << autod.error().to_string();
  EXPECT_EQ(manual->output, autod->output);
}

TEST(Pipeline, ReplayedPipelineHitsTheCacheWithFreshData) {
  Session session({.workers = 2, .cache = nullptr});
  for (int frame = 0; frame < 4; ++frame) {
    const auto rgb =
        ref::make_pixels(3 * 256, 0x9000 + static_cast<uint64_t>(frame));
    auto run =
        session.pipeline()
            .then(session.request("Color Convert").spu(core::kConfigD))
            .then(session.request("2D Convolution").spu(core::kConfigD))
            .then(session.request("Motion Estimation").spu(core::kConfigD))
            .input(std::span<const int16_t>(rgb))
            .run();
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    if (frame > 0) {
      EXPECT_TRUE(run->all_cache_hits) << "frame " << frame;
    }
  }
  const auto s = session.stats();
  EXPECT_EQ(s.cache.misses, 3u);  // one preparation per stage, ever
}

// -- Concurrency -------------------------------------------------------------

TEST(SessionSharing, ConcurrentSessionsShareOneCache) {
  auto cache = std::make_shared<runtime::OrchestrationCache>();
  constexpr int kSessions = 4;
  constexpr int kRequestsEach = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&] {
      Session session({.workers = 2, .cache = cache});
      for (int i = 0; i < kRequestsEach; ++i) {
        const auto r = session.request("DCT")
                           .spu(core::kConfigA)
                           .auto_orchestrate()
                           .run();
        if (!r.ok() || !r->run.verified) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every session replayed the same single preparation.
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits,
            static_cast<uint64_t>(kSessions * kRequestsEach - 1));
}

TEST(SessionSharing, ConcurrentPipelinesOnOneSessionStayExact) {
  Session session({.workers = 4, .cache = nullptr});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto rgb =
          ref::make_pixels(3 * 256, 0xC0FFEE + static_cast<uint64_t>(t));
      auto run =
          session.pipeline()
              .then(session.request("Color Convert").spu(core::kConfigD))
              .then(session.request("2D Convolution").spu(core::kConfigD))
              .then(session.request("Motion Estimation").spu(core::kConfigD))
              .input(std::span<const int16_t>(rgb))
              .run();
      if (!run.ok()) {
        ++failures;
        return;
      }
      const auto want = composed_video_pipeline_ref(rgb);
      std::vector<int16_t> got(want.size());
      std::memcpy(got.data(), run->output.data(), run->output.size());
      if (got != want) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}
