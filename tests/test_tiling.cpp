// Tiling tests: the scatter/gather layer must be byte-identical to running
// each tile as its own untiled request (the defining semantics of a tile),
// on both execution backends, including halo'd windows and zero-padded
// partial tail tiles; every tile of a fan-out must share one cached
// PreparedProgram; and the streamed pipeline must equal the per-tile
// composition of its stages while stages overlap across tiles.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "kernels/registry.h"
#include "kernels/video_pipeline_ref.h"
#include "ref/workload.h"
#include "runtime/tiling.h"

using namespace subword;
using api::ErrorCode;
using api::ExecBackend;
using api::Session;

namespace {

// In-contract frame bytes for a tileable kernel: pixels for the video
// kernels, bounded-amplitude samples for FIR, raw pixel bytes for SAD.
std::vector<uint8_t> make_frame(const kernels::KernelInfo& info, size_t bytes,
                                uint64_t seed) {
  if (info.name == "Motion Estimation") return ref::make_bytes(bytes, seed);
  const auto lanes = info.name == "FIR12"
                         ? ref::make_samples(bytes / 2, seed)
                         : ref::make_pixels(bytes / 2, seed);
  std::vector<uint8_t> out(bytes);
  std::memcpy(out.data(), lanes.data(), bytes);
  return out;
}

// The reference semantics of tiling: every tile run as its own ordinary
// untiled request over its window of the frame (zero-padded for the tail),
// outputs concatenated in tile order.
std::vector<uint8_t> per_tile_reference(Session& session,
                                        const kernels::KernelInfo& info,
                                        ExecBackend backend,
                                        std::span<const uint8_t> frame) {
  const auto geom = runtime::plan_tiles(info.buffers, frame.size());
  EXPECT_TRUE(geom.has_value());
  if (!geom) return {};
  std::vector<uint8_t> out(geom->frame_output_bytes, 0);
  const auto run_tile = [&](std::span<const uint8_t> in,
                            std::span<uint8_t> dst) {
    auto resp = session.request(info.name)
                    .spu(core::kConfigD)
                    .auto_orchestrate()
                    .backend(backend)
                    .input(in)
                    .output(dst)
                    .run();
    EXPECT_TRUE(resp.ok()) << info.name << ": " << resp.error().to_string();
  };
  for (size_t k = 0; k < geom->full_tiles; ++k) {
    run_tile(frame.subspan(k * geom->input_stride, geom->tile_input_bytes),
             std::span<uint8_t>(out).subspan(k * geom->tile_output_bytes,
                                             geom->tile_output_bytes));
  }
  if (geom->tail_units != 0) {
    std::vector<uint8_t> padded(geom->tile_input_bytes, 0);
    const auto rem = frame.subspan(geom->full_tiles * geom->input_stride);
    std::copy(rem.begin(), rem.end(), padded.begin());
    std::vector<uint8_t> tail_out(geom->tile_output_bytes, 0);
    run_tile(padded, tail_out);
    std::copy_n(tail_out.begin(), geom->tail_valid_output,
                out.begin() + static_cast<ptrdiff_t>(geom->full_tiles *
                                                     geom->tile_output_bytes));
  }
  return out;
}

}  // namespace

// -- Geometry planning -------------------------------------------------------

TEST(PlanTiles, HaloFreeUnitKernelAcceptsWholeUnitRemainders) {
  const auto* cc = kernels::find_kernel_info("Color Convert");
  ASSERT_NE(cc, nullptr);
  ASSERT_TRUE(cc->buffers.tileable);

  // Exact fit: 4 tiles, no tail.
  auto g = runtime::plan_tiles(cc->buffers, 4 * cc->buffers.input_bytes);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->tiles, 4u);
  EXPECT_EQ(g->full_tiles, 4u);
  EXPECT_EQ(g->tail_units, 0u);
  EXPECT_EQ(g->input_stride, cc->buffers.input_bytes);
  EXPECT_EQ(g->frame_output_bytes, 4 * cc->buffers.output_bytes);

  // One extra interleaved pixel (6 bytes) rides a zero-padded tail tile
  // contributing one 2-byte Y value.
  g = runtime::plan_tiles(cc->buffers, 4 * cc->buffers.input_bytes +
                                           cc->buffers.tile_unit_input_bytes);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->tiles, 5u);
  EXPECT_EQ(g->full_tiles, 4u);
  EXPECT_EQ(g->tail_units, 1u);
  EXPECT_EQ(g->tail_valid_output, cc->buffers.tile_unit_output_bytes);
  EXPECT_EQ(g->frame_output_bytes,
            4 * cc->buffers.output_bytes + cc->buffers.tile_unit_output_bytes);

  // A remainder that is not a whole unit cannot tile.
  std::string err;
  EXPECT_FALSE(runtime::plan_tiles(cc->buffers,
                                   4 * cc->buffers.input_bytes + 3, &err)
                   .has_value());
  EXPECT_NE(err.find("unit"), std::string::npos);
}

TEST(PlanTiles, HaloKernelOverlapsWindowsAndNeedsAnExactFit) {
  const auto* conv = kernels::find_kernel_info("2D Convolution");
  ASSERT_NE(conv, nullptr);
  ASSERT_TRUE(conv->buffers.tileable);
  ASSERT_GT(conv->buffers.tile_input_halo_bytes, 0u);
  const size_t stride =
      conv->buffers.input_bytes - conv->buffers.tile_input_halo_bytes;

  const auto g = runtime::plan_tiles(conv->buffers,
                                     conv->buffers.input_bytes + 2 * stride);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->tiles, 3u);
  EXPECT_EQ(g->input_stride, stride);
  EXPECT_EQ(g->tail_units, 0u);
  EXPECT_EQ(g->frame_output_bytes, 3 * conv->buffers.output_bytes);

  // Anything that is not base + k*stride would convolve against
  // fabricated zeros mid-frame.
  std::string err;
  EXPECT_FALSE(runtime::plan_tiles(conv->buffers,
                                   conv->buffers.input_bytes + 100, &err)
                   .has_value());
  EXPECT_NE(err.find("halo"), std::string::npos);
}

TEST(PlanTiles, RejectsNonTileableSpecsAndTinyFrames) {
  const auto* dct = kernels::find_kernel_info("DCT");
  ASSERT_NE(dct, nullptr);
  EXPECT_FALSE(runtime::plan_tiles(dct->buffers, 4096).has_value());

  const auto* fir = kernels::find_kernel_info("FIR12");
  ASSERT_NE(fir, nullptr);
  std::string err;
  EXPECT_FALSE(runtime::plan_tiles(fir->buffers,
                                   fir->buffers.input_bytes - 2, &err)
                   .has_value());
  EXPECT_NE(err.find("base tile"), std::string::npos);
}

// -- Tiled requests ----------------------------------------------------------

// The defining property: a tiled request is byte-identical to running each
// tile untiled, for every tileable kernel, on both backends, across tile
// counts including a non-divisible remainder where the kernel supports one.
TEST(TiledRequest, MatchesPerTileUntiledRunsOnBothBackends) {
  Session session({.workers = 2, .cache = nullptr});
  for (const auto& info : session.kernels()) {
    if (!info.buffers.tileable) continue;
    const size_t base = info.buffers.input_bytes;
    const size_t stride = base - info.buffers.tile_input_halo_bytes;
    std::vector<size_t> frames = {base, base + 2 * stride};
    if (info.buffers.tile_unit_input_bytes != 0) {
      frames.push_back(base + 2 * stride +
                       3 * info.buffers.tile_unit_input_bytes);
    }
    for (const auto backend :
         {ExecBackend::kSimulator, ExecBackend::kNativeSwar}) {
      for (const size_t frame_bytes : frames) {
        SCOPED_TRACE(info.name + " / " +
                     (backend == ExecBackend::kSimulator ? "sim" : "native") +
                     " / " + std::to_string(frame_bytes) + "B");
        const auto frame = make_frame(info, frame_bytes, 0x7117 + frame_bytes);
        const auto want =
            per_tile_reference(session, info, backend, frame);

        const auto geom = runtime::plan_tiles(info.buffers, frame.size());
        ASSERT_TRUE(geom.has_value());
        std::vector<uint8_t> got(geom->frame_output_bytes, 0xEE);
        auto resp = session.request(info.name)
                        .spu(core::kConfigD)
                        .auto_orchestrate()
                        .backend(backend)
                        .tile()
                        .input(std::span<const uint8_t>(frame))
                        .output(std::span<uint8_t>(got))
                        .run();
        ASSERT_TRUE(resp.ok()) << resp.error().to_string();
        EXPECT_EQ(got, want);
        EXPECT_TRUE(resp->run.verified);
        EXPECT_EQ(resp->jobs_fanned_out, geom->tiles);
        EXPECT_GE(resp->workers_used, 1);
        EXPECT_LE(resp->workers_used, 2);
        // The native backend has no cycle model; the aggregate must stay
        // poisoned, never a fabricated partial sum.
        EXPECT_EQ(resp->cycles().has_value(),
                  backend == ExecBackend::kSimulator);
      }
    }
  }
}

// All tiles of a fan-out share one OrchestrationKey: a cold frame costs
// exactly one preparation, every other tile replays it.
TEST(TiledRequest, TilesShareOnePreparedProgram) {
  Session session({.workers = 2, .cache = nullptr});
  const auto* cc = kernels::find_kernel_info("Color Convert");
  ASSERT_NE(cc, nullptr);
  const size_t kTiles = 8;
  const auto frame =
      make_frame(*cc, kTiles * cc->buffers.input_bytes, 0xA11CE);
  auto resp = session.request("Color Convert")
                  .spu(core::kConfigD)
                  .auto_orchestrate()
                  .tile()
                  .input(std::span<const uint8_t>(frame))
                  .run();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->jobs_fanned_out, kTiles);
  EXPECT_EQ(resp->tile_cache_hits, kTiles - 1);
  const auto stats = session.stats();
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits, kTiles - 1);
  EXPECT_EQ(stats.cache.entries, 1u);
  EXPECT_EQ(stats.jobs_submitted, kTiles);
}

TEST(TiledRequest, TypedErrorsForEveryMisuse) {
  Session session({.workers = 1, .cache = nullptr});

  // tile() needs a bound input frame to derive the geometry from.
  auto no_input = session.request("Color Convert").tile().run();
  ASSERT_FALSE(no_input.ok());
  EXPECT_EQ(no_input.error().code, ErrorCode::kInvalidArgument);

  // A kernel without a buffer contract cannot tile.
  std::vector<uint8_t> junk(4096, 1);
  auto no_buffers = session.request("DCT")
                        .tile()
                        .input(std::span<const uint8_t>(junk))
                        .run();
  ASSERT_FALSE(no_buffers.ok());
  EXPECT_EQ(no_buffers.error().code, ErrorCode::kBuffersUnsupported);

  // A halo'd kernel's frame must tile exactly.
  const auto* conv = kernels::find_kernel_info("2D Convolution");
  const auto odd = make_frame(*conv, conv->buffers.input_bytes + 100, 1);
  auto inexact = session.request("2D Convolution")
                     .tile()
                     .input(std::span<const uint8_t>(odd))
                     .run();
  ASSERT_FALSE(inexact.ok());
  EXPECT_EQ(inexact.error().code, ErrorCode::kTilingUnsupported);

  // The output must be the gathered frame size, not the base tile size.
  const auto* cc = kernels::find_kernel_info("Color Convert");
  const auto frame = make_frame(*cc, 2 * cc->buffers.input_bytes, 2);
  std::vector<uint8_t> small_out(cc->buffers.output_bytes);
  auto bad_out = session.request("Color Convert")
                     .tile()
                     .input(std::span<const uint8_t>(frame))
                     .output(std::span<uint8_t>(small_out))
                     .run();
  ASSERT_FALSE(bad_out.ok());
  EXPECT_EQ(bad_out.error().code, ErrorCode::kBufferSizeMismatch);
}

// -- Streamed tiled pipelines ------------------------------------------------

// A tiled pipeline equals running the untiled pipeline once per tile —
// which for the video chain is also the composed scalar reference per
// tile — while each stage's Response aggregates its tile fan-out.
TEST(TiledPipeline, StreamedVideoPipelineMatchesPerTileRuns) {
  Session session({.workers = 2, .cache = nullptr});
  const size_t kTiles = 4;
  std::vector<int16_t> rgb;
  for (size_t k = 0; k < kTiles; ++k) {
    const auto tile = ref::make_pixels(3 * 256, 0xF00D + k);
    rgb.insert(rgb.end(), tile.begin(), tile.end());
  }

  const auto build_stages = [&](api::Pipeline p) -> api::Pipeline {
    p.then(session.request("Color Convert").spu(core::kConfigD))
        .then(session.request("2D Convolution").spu(core::kConfigD))
        .then(session.request("Motion Estimation").spu(core::kConfigD));
    return p;
  };
  auto tiled = build_stages(session.pipeline())
                   .tile()
                   .input(std::span<const int16_t>(rgb))
                   .run();
  ASSERT_TRUE(tiled.ok()) << tiled.error().to_string();
  EXPECT_EQ(tiled->tiles, kTiles);
  ASSERT_EQ(tiled->stages.size(), 3u);
  for (const auto& st : tiled->stages) {
    EXPECT_EQ(st.response.jobs_fanned_out, kTiles) << st.kernel;
    EXPECT_TRUE(st.response.run.verified) << st.kernel;
  }

  std::vector<uint8_t> want;
  for (size_t k = 0; k < kTiles; ++k) {
    const std::span<const int16_t> window(rgb.data() + k * 3 * 256, 3 * 256);
    auto per_tile = build_stages(session.pipeline()).input(window).run();
    ASSERT_TRUE(per_tile.ok()) << per_tile.error().to_string();
    want.insert(want.end(), per_tile->output.begin(),
                per_tile->output.end());

    const auto ref_out = kernels::composed_video_pipeline_ref(
        std::vector<int16_t>(window.begin(), window.end()));
    const auto got_tile = kernels::bytes_as_i16(per_tile->output);
    EXPECT_EQ(ref_out, got_tile) << "tile " << k;
  }
  EXPECT_EQ(tiled->output, want);
}

TEST(TiledPipeline, PartialTailTileIsATypedError) {
  Session session({.workers = 1, .cache = nullptr});
  // 1.5 color-convert tiles: Request::tile() would accept the remainder,
  // but a streamed pipeline cannot feed a fragment downstream.
  const auto rgb = ref::make_pixels(3 * 256 + 3 * 128, 0xBAD);
  auto run = session.pipeline()
                 .then(session.request("Color Convert").spu(core::kConfigD))
                 .then(session.request("2D Convolution").spu(core::kConfigD))
                 .tile()
                 .input(std::span<const int16_t>(rgb))
                 .run();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, ErrorCode::kTilingUnsupported);
}

// submit() runs the same streamed pipeline on a driver thread; wait()
// resolves exactly once.
TEST(TiledPipeline, SubmitMatchesSyncRunAndConsumesOnce) {
  Session session({.workers = 2, .cache = nullptr});
  const size_t kTiles = 3;
  std::vector<int16_t> rgb;
  for (size_t k = 0; k < kTiles; ++k) {
    const auto tile = ref::make_pixels(3 * 256, 0x5EED + k);
    rgb.insert(rgb.end(), tile.begin(), tile.end());
  }
  const auto make = [&] {
    return session.pipeline()
        .then(session.request("Color Convert").spu(core::kConfigD))
        .then(session.request("2D Convolution").spu(core::kConfigD))
        .then(session.request("Motion Estimation").spu(core::kConfigD))
        .tile()
        .input(std::span<const int16_t>(rgb));
  };
  auto sync = make().run();
  ASSERT_TRUE(sync.ok()) << sync.error().to_string();

  auto submitted = make().submit();
  ASSERT_TRUE(submitted.ok()) << submitted.error().to_string();
  auto async = submitted->wait();
  ASSERT_TRUE(async.ok()) << async.error().to_string();
  EXPECT_EQ(async->output, sync->output);
  EXPECT_EQ(async->tiles, kTiles);

  auto again = submitted->wait();
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kInvalidArgument);
}

// Two sessions streaming tiled pipelines concurrently over one shared
// cache: both bit-exact, and each unique stage shape prepared exactly once
// across both (3 stages -> 3 misses, everything else hits).
TEST(TiledPipeline, ConcurrentStreamsShareOneCache) {
  auto cache = std::make_shared<runtime::OrchestrationCache>();
  Session a({.workers = 2, .cache = cache});
  Session b({.workers = 2, .cache = cache});
  const size_t kTiles = 3;

  const auto stream = [&](Session& s, uint64_t seed) {
    std::vector<int16_t> rgb;
    for (size_t k = 0; k < kTiles; ++k) {
      const auto tile = ref::make_pixels(3 * 256, seed + k);
      rgb.insert(rgb.end(), tile.begin(), tile.end());
    }
    auto run = s.pipeline()
                   .then(s.request("Color Convert").spu(core::kConfigD))
                   .then(s.request("2D Convolution").spu(core::kConfigD))
                   .then(s.request("Motion Estimation").spu(core::kConfigD))
                   .tile()
                   .input(std::span<const int16_t>(rgb))
                   .run();
    ASSERT_TRUE(run.ok()) << run.error().to_string();
    std::vector<uint8_t> want;
    for (size_t k = 0; k < kTiles; ++k) {
      const auto ref_out = kernels::composed_video_pipeline_ref(
          std::vector<int16_t>(rgb.begin() + static_cast<ptrdiff_t>(k * 768),
                               rgb.begin() +
                                   static_cast<ptrdiff_t>((k + 1) * 768)));
      const auto* p = reinterpret_cast<const uint8_t*>(ref_out.data());
      want.insert(want.end(), p, p + ref_out.size() * 2);
    }
    EXPECT_EQ(run->output, want);
  };

  std::thread ta([&] { stream(a, 0x1000); });
  std::thread tb([&] { stream(b, 0x2000); });
  ta.join();
  tb.join();

  const auto stats = cache->stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 3u);
  // 2 streams x 3 stages x kTiles jobs, minus the 3 preparations.
  EXPECT_EQ(stats.hits, 2 * 3 * kTiles - 3);
}

// -- Engine-level contention counters ----------------------------------------

TEST(SessionOptions, BoundedQueueAppliesBackpressure) {
  Session session(
      Session::Options{.workers = 1, .queue_capacity = 2, .cache = nullptr});
  const auto* cc = kernels::find_kernel_info("Color Convert");
  const size_t kTiles = 8;
  const auto frame =
      make_frame(*cc, kTiles * cc->buffers.input_bytes, 0xCAFE);
  auto resp = session.request("Color Convert")
                  .spu(core::kConfigD)
                  .auto_orchestrate()
                  .tile()
                  .input(std::span<const uint8_t>(frame))
                  .run();
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->jobs_fanned_out, kTiles);
  const auto stats = session.stats();
  EXPECT_EQ(stats.jobs_completed, kTiles);
  // The bound is a hard ceiling on queue depth, by construction.
  EXPECT_LE(stats.queue_peak_depth, 2u);
}

TEST(EngineCounters, ScratchAllocationsPlateauAtWorkerCount) {
  Session session({.workers = 2, .cache = nullptr});
  const auto* fir = kernels::find_kernel_info("FIR12");
  const auto frame = make_frame(*fir, 6 * fir->buffers.input_bytes, 0x5CA7);
  for (int round = 0; round < 3; ++round) {
    auto sim = session.request("FIR12")
                   .spu(core::kConfigD)
                   .auto_orchestrate()
                   .tile()
                   .input(std::span<const uint8_t>(frame))
                   .run();
    ASSERT_TRUE(sim.ok()) << sim.error().to_string();
    auto native = session.request("FIR12")
                      .spu(core::kConfigD)
                      .auto_orchestrate()
                      .backend(ExecBackend::kNativeSwar)
                      .tile()
                      .input(std::span<const uint8_t>(frame))
                      .run();
    ASSERT_TRUE(native.ok()) << native.error().to_string();
  }
  const auto stats = session.stats();
  // Reset-not-reallocate: one Machine and one arena per worker, ever,
  // regardless of how many jobs flowed through.
  EXPECT_LE(stats.scratch_machine_allocs, 2u);
  EXPECT_LE(stats.scratch_arena_allocs, 2u);
  EXPECT_GE(stats.scratch_machine_allocs, 1u);
  EXPECT_GE(stats.scratch_arena_allocs, 1u);
  // Lock-wait is accounted (possibly zero on an uncontended run, but the
  // counter must exist and be finite alongside the hit/miss economics).
  EXPECT_EQ(stats.cache.misses, 2u);
}
