// Property tests: the portable and SSE2 backends must agree lane-for-lane
// on random inputs for every operation, and both must match a third,
// independently written per-lane scalar oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "ref/workload.h"
#include "swar/swar.h"

namespace sw = subword::swar;
namespace port = subword::swar::portable;
using subword::ref::Rng;
using sw::Vec64;

namespace {

// Scalar oracle helpers (written independently of both backends).
template <typename T, typename F>
Vec64 lanewise(Vec64 a, Vec64 b, F&& f) {
  Vec64 r;
  for (int i = 0; i < sw::LaneTraits<T>::kCount; ++i) {
    r.set_lane<T>(i, f(a.lane<T>(i), b.lane<T>(i)));
  }
  return r;
}

struct BinOpCase {
  std::string name;
  std::function<Vec64(Vec64, Vec64)> portable_fn;
  std::function<Vec64(Vec64, Vec64)> sse2_fn;
  std::function<Vec64(Vec64, Vec64)> oracle;
};

template <typename T>
T oracle_sat_add(T a, T b) {
  const int64_t s = static_cast<int64_t>(a) + static_cast<int64_t>(b);
  if (s > std::numeric_limits<T>::max()) return std::numeric_limits<T>::max();
  if (s < std::numeric_limits<T>::min()) return std::numeric_limits<T>::min();
  return static_cast<T>(s);
}

template <typename T>
T oracle_sat_sub(T a, T b) {
  const int64_t s = static_cast<int64_t>(a) - static_cast<int64_t>(b);
  if (s > std::numeric_limits<T>::max()) return std::numeric_limits<T>::max();
  if (s < std::numeric_limits<T>::min()) return std::numeric_limits<T>::min();
  return static_cast<T>(s);
}

std::vector<BinOpCase> build_binop_cases() {
  std::vector<BinOpCase> cases;
  auto add_case = [&](std::string name, auto pfn, auto sfn, auto ofn) {
    cases.push_back({std::move(name), pfn, sfn, ofn});
  };

  add_case("paddb", port::add<uint8_t>, sw::sse2::add<uint8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint8_t>(a, b, [](uint8_t x, uint8_t y) {
               return static_cast<uint8_t>(x + y);
             });
           });
  add_case("paddw", port::add<uint16_t>, sw::sse2::add<uint16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, [](uint16_t x, uint16_t y) {
               return static_cast<uint16_t>(x + y);
             });
           });
  add_case("paddd", port::add<uint32_t>, sw::sse2::add<uint32_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint32_t>(a, b, [](uint32_t x, uint32_t y) {
               return static_cast<uint32_t>(x + y);
             });
           });
  add_case("psubb", port::sub<uint8_t>, sw::sse2::sub<uint8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint8_t>(a, b, [](uint8_t x, uint8_t y) {
               return static_cast<uint8_t>(x - y);
             });
           });
  add_case("psubw", port::sub<uint16_t>, sw::sse2::sub<uint16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, [](uint16_t x, uint16_t y) {
               return static_cast<uint16_t>(x - y);
             });
           });
  add_case("psubd", port::sub<uint32_t>, sw::sse2::sub<uint32_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint32_t>(a, b, [](uint32_t x, uint32_t y) {
               return static_cast<uint32_t>(x - y);
             });
           });

  add_case("paddsb", port::add_sat<int8_t>, sw::sse2::add_sat<int8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<int8_t>(a, b, oracle_sat_add<int8_t>);
           });
  add_case("paddsw", port::add_sat<int16_t>, sw::sse2::add_sat<int16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<int16_t>(a, b, oracle_sat_add<int16_t>);
           });
  add_case("paddusb", port::add_sat<uint8_t>, sw::sse2::add_sat<uint8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint8_t>(a, b, oracle_sat_add<uint8_t>);
           });
  add_case("paddusw", port::add_sat<uint16_t>, sw::sse2::add_sat<uint16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, oracle_sat_add<uint16_t>);
           });
  add_case("psubsb", port::sub_sat<int8_t>, sw::sse2::sub_sat<int8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<int8_t>(a, b, oracle_sat_sub<int8_t>);
           });
  add_case("psubsw", port::sub_sat<int16_t>, sw::sse2::sub_sat<int16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<int16_t>(a, b, oracle_sat_sub<int16_t>);
           });
  add_case("psubusb", port::sub_sat<uint8_t>, sw::sse2::sub_sat<uint8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint8_t>(a, b, oracle_sat_sub<uint8_t>);
           });
  add_case("psubusw", port::sub_sat<uint16_t>, sw::sse2::sub_sat<uint16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, oracle_sat_sub<uint16_t>);
           });

  add_case("pmullw", port::mullo16, sw::sse2::mullo16,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, [](uint16_t x, uint16_t y) {
               const int32_t p = static_cast<int16_t>(x) *
                                 static_cast<int16_t>(y);
               return static_cast<uint16_t>(p & 0xFFFF);
             });
           });
  add_case("pmulhw", port::mulhi16, sw::sse2::mulhi16,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, [](uint16_t x, uint16_t y) {
               const int32_t p = static_cast<int16_t>(x) *
                                 static_cast<int16_t>(y);
               return static_cast<uint16_t>((p >> 16) & 0xFFFF);
             });
           });
  add_case("pmaddwd", port::maddwd, sw::sse2::maddwd,
           [](Vec64 a, Vec64 b) {
             Vec64 r;
             for (int i = 0; i < 2; ++i) {
               const int32_t p0 = a.lane<int16_t>(2 * i) *
                                  b.lane<int16_t>(2 * i);
               const int32_t p1 = a.lane<int16_t>(2 * i + 1) *
                                  b.lane<int16_t>(2 * i + 1);
               r.set_lane<uint32_t>(i, static_cast<uint32_t>(p0) +
                                           static_cast<uint32_t>(p1));
             }
             return r;
           });

  add_case("pcmpeqb", port::cmpeq<uint8_t>, sw::sse2::cmpeq<uint8_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint8_t>(a, b, [](uint8_t x, uint8_t y) {
               return static_cast<uint8_t>(x == y ? 0xFF : 0);
             });
           });
  add_case("pcmpeqd", port::cmpeq<uint32_t>, sw::sse2::cmpeq<uint32_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint32_t>(a, b, [](uint32_t x, uint32_t y) {
               return x == y ? 0xFFFFFFFFu : 0u;
             });
           });
  add_case("pcmpgtw", port::cmpgt<int16_t>, sw::sse2::cmpgt<int16_t>,
           [](Vec64 a, Vec64 b) {
             return lanewise<uint16_t>(a, b, [](uint16_t x, uint16_t y) {
               return static_cast<uint16_t>(
                   static_cast<int16_t>(x) > static_cast<int16_t>(y) ? 0xFFFF
                                                                     : 0);
             });
           });

  add_case("pand", port::and_, sw::sse2::and_,
           [](Vec64 a, Vec64 b) { return Vec64{a.bits() & b.bits()}; });
  add_case("pandn", port::andn, sw::sse2::andn,
           [](Vec64 a, Vec64 b) { return Vec64{~a.bits() & b.bits()}; });
  add_case("por", port::or_, sw::sse2::or_,
           [](Vec64 a, Vec64 b) { return Vec64{a.bits() | b.bits()}; });
  add_case("pxor", port::xor_, sw::sse2::xor_,
           [](Vec64 a, Vec64 b) { return Vec64{a.bits() ^ b.bits()}; });

  add_case("packsswb", port::pack_sswb, sw::sse2::pack_sswb,
           [](Vec64 a, Vec64 b) {
             Vec64 r;
             auto clamp8 = [](int32_t v) {
               return static_cast<int8_t>(v > 127 ? 127
                                                  : (v < -128 ? -128 : v));
             };
             for (int i = 0; i < 4; ++i) {
               r.set_lane<int8_t>(i, clamp8(a.lane<int16_t>(i)));
               r.set_lane<int8_t>(i + 4, clamp8(b.lane<int16_t>(i)));
             }
             return r;
           });
  add_case("packssdw", port::pack_ssdw, sw::sse2::pack_ssdw,
           [](Vec64 a, Vec64 b) {
             Vec64 r;
             auto clamp16 = [](int64_t v) {
               return static_cast<int16_t>(
                   v > 32767 ? 32767 : (v < -32768 ? -32768 : v));
             };
             for (int i = 0; i < 2; ++i) {
               r.set_lane<int16_t>(i, clamp16(a.lane<int32_t>(i)));
               r.set_lane<int16_t>(i + 2, clamp16(b.lane<int32_t>(i)));
             }
             return r;
           });
  add_case("packuswb", port::pack_uswb, sw::sse2::pack_uswb,
           [](Vec64 a, Vec64 b) {
             Vec64 r;
             auto clampu8 = [](int32_t v) {
               return static_cast<uint8_t>(v > 255 ? 255 : (v < 0 ? 0 : v));
             };
             for (int i = 0; i < 4; ++i) {
               r.set_lane<uint8_t>(i, clampu8(a.lane<int16_t>(i)));
               r.set_lane<uint8_t>(i + 4, clampu8(b.lane<int16_t>(i)));
             }
             return r;
           });

  add_case("punpcklbw", port::unpack_lo<uint8_t>,
           sw::sse2::unpack_lo<uint8_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             for (int i = 0; i < 4; ++i) {
               r.set_lane<uint8_t>(2 * i, a.lane<uint8_t>(i));
               r.set_lane<uint8_t>(2 * i + 1, b.lane<uint8_t>(i));
             }
             return r;
           });
  add_case("punpckhbw", port::unpack_hi<uint8_t>,
           sw::sse2::unpack_hi<uint8_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             for (int i = 0; i < 4; ++i) {
               r.set_lane<uint8_t>(2 * i, a.lane<uint8_t>(4 + i));
               r.set_lane<uint8_t>(2 * i + 1, b.lane<uint8_t>(4 + i));
             }
             return r;
           });
  add_case("punpcklwd", port::unpack_lo<uint16_t>,
           sw::sse2::unpack_lo<uint16_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             for (int i = 0; i < 2; ++i) {
               r.set_lane<uint16_t>(2 * i, a.lane<uint16_t>(i));
               r.set_lane<uint16_t>(2 * i + 1, b.lane<uint16_t>(i));
             }
             return r;
           });
  add_case("punpckhwd", port::unpack_hi<uint16_t>,
           sw::sse2::unpack_hi<uint16_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             for (int i = 0; i < 2; ++i) {
               r.set_lane<uint16_t>(2 * i, a.lane<uint16_t>(2 + i));
               r.set_lane<uint16_t>(2 * i + 1, b.lane<uint16_t>(2 + i));
             }
             return r;
           });
  add_case("punpckldq", port::unpack_lo<uint32_t>,
           sw::sse2::unpack_lo<uint32_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             r.set_lane<uint32_t>(0, a.lane<uint32_t>(0));
             r.set_lane<uint32_t>(1, b.lane<uint32_t>(0));
             return r;
           });
  add_case("punpckhdq", port::unpack_hi<uint32_t>,
           sw::sse2::unpack_hi<uint32_t>, [](Vec64 a, Vec64 b) {
             Vec64 r;
             r.set_lane<uint32_t>(0, a.lane<uint32_t>(1));
             r.set_lane<uint32_t>(1, b.lane<uint32_t>(1));
             return r;
           });
  return cases;
}

// Built once: callers bind references into the returned vector (the
// ASan+UBSan job caught the by-value original dangling at exactly that
// use).
const std::vector<BinOpCase>& binop_cases() {
  static const std::vector<BinOpCase> cases = build_binop_cases();
  return cases;
}

class SwarBinOp : public ::testing::TestWithParam<size_t> {};

TEST_P(SwarBinOp, BackendsAgreeWithOracle) {
  const auto& c = binop_cases()[GetParam()];
  Rng rng(0xC0FFEE00 + GetParam());
  for (int iter = 0; iter < 2000; ++iter) {
    const Vec64 a{rng.next()};
    const Vec64 b{rng.next()};
    const Vec64 want = c.oracle(a, b);
    const Vec64 got_p = c.portable_fn(a, b);
    const Vec64 got_s = c.sse2_fn(a, b);
    ASSERT_EQ(got_p.bits(), want.bits())
        << c.name << " portable vs oracle, a=" << sw::to_hex(a)
        << " b=" << sw::to_hex(b);
    ASSERT_EQ(got_s.bits(), want.bits())
        << c.name << " sse2 vs oracle, a=" << sw::to_hex(a)
        << " b=" << sw::to_hex(b);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, SwarBinOp,
                         ::testing::Range<size_t>(0, binop_cases().size()),
                         [](const auto& info) {
                           return binop_cases()[info.param].name;
                         });

// Shifts take a count, not a second packed operand — separate sweep.
template <typename T>
void shift_sweep(uint64_t seed) {
  Rng rng(seed);
  for (int iter = 0; iter < 500; ++iter) {
    const Vec64 a{rng.next()};
    for (uint64_t count : {uint64_t{0}, uint64_t{1}, uint64_t{7},
                           uint64_t{15}, uint64_t{16}, uint64_t{31},
                           uint64_t{32}, uint64_t{63}, uint64_t{64},
                           uint64_t{1000}}) {
      ASSERT_EQ(port::shl<T>(a, count).bits(),
                sw::sse2::shl<T>(a, count).bits())
          << "shl width=" << sizeof(T) * 8 << " count=" << count;
      ASSERT_EQ(port::shr_logical<T>(a, count).bits(),
                sw::sse2::shr_logical<T>(a, count).bits())
          << "shr width=" << sizeof(T) * 8 << " count=" << count;
    }
  }
}

TEST(SwarShift, BackendsAgree16) { shift_sweep<uint16_t>(1); }
TEST(SwarShift, BackendsAgree32) { shift_sweep<uint32_t>(2); }
TEST(SwarShift, BackendsAgree64) { shift_sweep<uint64_t>(3); }

TEST(SwarShift, ArithBackendsAgree) {
  Rng rng(4);
  for (int iter = 0; iter < 500; ++iter) {
    const Vec64 a{rng.next()};
    for (uint64_t count : {uint64_t{0}, uint64_t{1}, uint64_t{15},
                           uint64_t{16}, uint64_t{31}, uint64_t{32},
                           uint64_t{100}}) {
      ASSERT_EQ(port::shr_arith<int16_t>(a, count).bits(),
                sw::sse2::shr_arith<int16_t>(a, count).bits());
      ASSERT_EQ(port::shr_arith<int32_t>(a, count).bits(),
                sw::sse2::shr_arith<int32_t>(a, count).bits());
    }
  }
}

}  // namespace
