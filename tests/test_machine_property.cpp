// Co-simulation property test: random straight-line MMX programs executed
// on the full machine must produce exactly the register file a direct
// evaluation of the SWAR semantics predicts — independent of pairing
// decisions, issue order and scoreboard timing.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "isa/assembler.h"
#include "ref/workload.h"
#include "sim/exec.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::isa;
using ref::Rng;
using swar::Vec64;

namespace {

const std::vector<Op> kOps = {
    Op::MovqRR,   Op::Paddb,   Op::Paddw,   Op::Paddd,   Op::Psubw,
    Op::Paddsw,   Op::Paddusb, Op::Psubsw,  Op::Psubusw, Op::Pmullw,
    Op::Pmulhw,   Op::Pmaddwd, Op::Pcmpeqw, Op::Pcmpgtb, Op::Pand,
    Op::Pandn,    Op::Por,     Op::Pxor,    Op::Packsswb, Op::Packssdw,
    Op::Punpcklbw, Op::Punpcklwd, Op::Punpckldq, Op::Punpckhbw,
    Op::Punpckhwd, Op::Punpckhdq, Op::Psllw, Op::Psrlq, Op::Psraw,
};

class MachineCosim : public ::testing::TestWithParam<int> {};

TEST_P(MachineCosim, RandomProgramsMatchDirectEvaluation) {
  Rng rng(0xC051 + static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 50; ++iter) {
    // Random initial register file.
    std::array<Vec64, kNumMmxRegs> regs;
    for (auto& r : regs) r = Vec64{rng.next()};

    // Random straight-line program over it.
    const int len = rng.range(1, 40);
    Assembler a;
    std::vector<Inst> insts;
    for (int i = 0; i < len; ++i) {
      Inst in;
      in.op = kOps[static_cast<size_t>(
          rng.range(0, static_cast<int>(kOps.size()) - 1))];
      in.dst = static_cast<uint8_t>(rng.range(0, 7));
      in.src = static_cast<uint8_t>(rng.range(0, 7));
      const auto& info = op_info(in.op);
      if (info.cls == ExecClass::MmxShift && !is_permutation_op(in.op)) {
        in.src_is_imm = rng.range(0, 1) == 0;
        in.imm8 = static_cast<uint8_t>(rng.range(0, 70));
      }
      insts.push_back(in);
      a.emit(in);
    }
    a.halt();

    // Direct evaluation of the SWAR semantics.
    auto model = regs;
    for (const auto& in : insts) {
      const Vec64 va = model[in.dst];
      const Vec64 vb = model[in.src];
      const uint64_t count = in.src_is_imm ? in.imm8 : vb.bits();
      model[in.dst] = sim::mmx_alu(in.op, va, vb, count);
    }

    // Full machine run.
    sim::Machine m(a.take(), 64);
    for (int r = 0; r < kNumMmxRegs; ++r) {
      m.mmx().write(static_cast<uint8_t>(r), regs[static_cast<size_t>(r)]);
    }
    m.run();

    for (int r = 0; r < kNumMmxRegs; ++r) {
      ASSERT_EQ(m.mmx().read(static_cast<uint8_t>(r)).bits(),
                model[static_cast<size_t>(r)].bits())
          << "reg " << r << " iter " << iter << " seed " << GetParam();
    }
    // Timing sanity: dual-issue never reorders; instruction count exact.
    EXPECT_EQ(m.stats().instructions, static_cast<uint64_t>(len) + 1);
    EXPECT_LE(m.stats().cycles, static_cast<uint64_t>(len) * 5 + 10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineCosim, ::testing::Range(0, 6));

}  // namespace
