// U/V pairing rule tests — each rule in the paper's §2 description.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/pairing.h"

using namespace subword::isa;
using subword::sim::can_pair;
using subword::sim::regs_read;
using subword::sim::regs_written;

namespace {

Inst mk(Op op, uint8_t dst = 0, uint8_t src = 0) {
  Inst in;
  in.op = op;
  in.dst = dst;
  in.src = src;
  return in;
}

}  // namespace

TEST(Pairing, IndependentAluOpsPair) {
  EXPECT_TRUE(can_pair(mk(Op::Paddw, MM0, MM1), mk(Op::Psubw, MM2, MM3)));
}

TEST(Pairing, TwoMultipliesConflict) {
  EXPECT_FALSE(can_pair(mk(Op::Pmullw, MM0, MM1), mk(Op::Pmulhw, MM2, MM3)));
  EXPECT_FALSE(can_pair(mk(Op::Pmaddwd, MM0, MM1), mk(Op::Pmullw, MM2, MM3)));
  // One multiply + one ALU is fine.
  EXPECT_TRUE(can_pair(mk(Op::Pmullw, MM0, MM1), mk(Op::Paddw, MM2, MM3)));
}

TEST(Pairing, TwoShifterOpsConflict) {
  // Shift + pack/unpack share the single shifter.
  Inst shl = mk(Op::Psllw, MM0);
  shl.src_is_imm = true;
  shl.imm8 = 2;
  EXPECT_FALSE(can_pair(shl, mk(Op::Punpcklwd, MM2, MM3)));
  EXPECT_FALSE(
      can_pair(mk(Op::Packssdw, MM0, MM1), mk(Op::Punpckhdq, MM2, MM3)));
  EXPECT_TRUE(can_pair(shl, mk(Op::Paddw, MM2, MM3)));
}

TEST(Pairing, MemoryOnlyInU) {
  Inst load = mk(Op::MovqLoad, MM0);
  load.base = R2;
  // Memory op can lead (U pipe)...
  EXPECT_TRUE(can_pair(load, mk(Op::Paddw, MM2, MM3)));
  // ...but not trail (V pipe).
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM2, MM3), load));
  Inst sst = mk(Op::SStore32);
  sst.base = R2;
  sst.src = R3;
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM2, MM3), sst));
}

TEST(Pairing, SameDestinationForbidden) {
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM0, MM1), mk(Op::Psubw, MM0, MM2)));
}

TEST(Pairing, RawDependenceForbidden) {
  // V reads what U writes.
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM0, MM1), mk(Op::Psubw, MM2, MM0)));
}

TEST(Pairing, WarDependenceForbidden) {
  // V writes what U reads.
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM0, MM1), mk(Op::MovqLoad, MM1)));
}

TEST(Pairing, BranchesOnlyInV) {
  Inst br = mk(Op::Loopnz);
  br.src = R1;
  br.target = 0;
  EXPECT_FALSE(can_pair(br, mk(Op::Paddw, MM0, MM1)));
  EXPECT_TRUE(can_pair(mk(Op::Paddw, MM0, MM1), br));
}

TEST(Pairing, ScalarAndMmxMix) {
  Inst addi = mk(Op::SAddi, R2);
  addi.disp = 8;
  EXPECT_TRUE(can_pair(mk(Op::Paddw, MM0, MM1), addi));
  EXPECT_TRUE(can_pair(addi, mk(Op::Paddw, MM0, MM1)));
}

TEST(Pairing, ControlOpsIssueAlone) {
  EXPECT_FALSE(can_pair(mk(Op::Nop), mk(Op::Nop)));
  EXPECT_FALSE(can_pair(mk(Op::Paddw, MM0, MM1), mk(Op::Halt)));
  EXPECT_FALSE(can_pair(mk(Op::Emms), mk(Op::Paddw, MM0, MM1)));
}

TEST(Pairing, ScalarDependencies) {
  Inst li = mk(Op::Li, R5);
  li.disp = 3;
  Inst use = mk(Op::SAdd, R6, R5);
  EXPECT_FALSE(can_pair(li, use));  // RAW through R5
  Inst other = mk(Op::SAdd, R7, R8);
  EXPECT_TRUE(can_pair(li, other));
}

TEST(RegSets, UnifiedIdsSeparateMmxAndGp) {
  Inst store = mk(Op::MovqStore);
  store.src = MM3;
  store.base = R2;
  const auto rs = regs_read(store);
  EXPECT_TRUE(rs.contains(MM3));                  // MMX id space
  EXPECT_TRUE(rs.contains(kNumMmxRegs + R2));     // GP id space
  EXPECT_EQ(regs_written(store).count, 0);
}

TEST(RegSets, LoopnzReadsAndWritesCounter) {
  Inst br = mk(Op::Loopnz);
  br.src = R1;
  EXPECT_TRUE(regs_read(br).contains(kNumMmxRegs + R1));
  EXPECT_TRUE(regs_written(br).contains(kNumMmxRegs + R1));
}
