// test_service.cpp — the serving layer end to end: pure protocol
// encode/decode (round trips and every typed decode error), live-server
// round trips on both backends, admission control (in-flight caps, payload
// limits, engine-level shedding), the graceful-drain race, and a seeded
// wire-format fuzz where every hostile frame must end in a typed response
// or a clean close — never a crash, never a hang.
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "fuzz/generator.h"
#include "kernels/registry.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"

namespace {

using namespace subword;
using service::ProtoCode;
using service::WireBackend;
using service::WireMode;
using service::WireRequest;
using service::WireResponse;
using service::WireStatus;

// i16 lanes within the kernels' pixel contract [0, 255].
std::vector<uint8_t> pixel_input(size_t bytes, uint8_t salt = 7) {
  std::vector<uint8_t> v(bytes, 0);
  for (size_t i = 0; i + 1 < bytes; i += 2) {
    v[i] = static_cast<uint8_t>((i / 2 * 31 + salt) & 0xFF);
  }
  return v;
}

std::vector<uint8_t> encode(const WireRequest& req) {
  std::vector<uint8_t> frame;
  service::encode_request(req, &frame);
  return frame;
}

// Decode a request frame the way the server does: strip the length
// prefix, hand the body to the decoder.
service::ProtoResult<WireRequest> decode_body(
    const std::vector<uint8_t>& frame, size_t max_payload = 0) {
  return service::decode_request(
      std::span<const uint8_t>(frame).subspan(4), max_payload);
}

// -- Protocol: round trips ----------------------------------------------------

TEST(Protocol, RequestRoundTripsEveryField) {
  WireRequest req;
  req.request_id = 0xDEADBEEFCAFEull;
  req.tenant = "video";
  req.kernel = "Color Convert";
  req.repeats = 96;
  req.mode = WireMode::kAutoOrchestrate;
  req.config = 3;
  req.backend = WireBackend::kNativeSwar;
  req.input = {1, 2, 3, 250, 0};

  const auto decoded = decode_body(encode(req));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->request_id, req.request_id);
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->kernel, req.kernel);
  EXPECT_EQ(decoded->repeats, req.repeats);
  EXPECT_EQ(decoded->mode, req.mode);
  EXPECT_EQ(decoded->config, req.config);
  EXPECT_EQ(decoded->backend, req.backend);
  EXPECT_FALSE(decoded->has_area_budget);
  EXPECT_FALSE(decoded->has_delay_budget);
  EXPECT_EQ(decoded->input, req.input);
}

TEST(Protocol, PlanRequestCarriesBudgets) {
  WireRequest req;
  req.kernel = "FIR12";
  req.mode = WireMode::kPlan;
  req.backend = WireBackend::kAuto;
  req.has_area_budget = true;
  req.area_budget_mm2 = 0.125;
  req.has_delay_budget = true;
  req.max_delay_ns = 2.5;

  const auto decoded = decode_body(encode(req));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_TRUE(decoded->has_area_budget);
  EXPECT_DOUBLE_EQ(decoded->area_budget_mm2, 0.125);
  EXPECT_TRUE(decoded->has_delay_budget);
  EXPECT_DOUBLE_EQ(decoded->max_delay_ns, 2.5);
  EXPECT_EQ(decoded->backend, WireBackend::kAuto);
}

TEST(Protocol, ResponseRoundTripsStatsPlanAndOutput) {
  WireResponse resp;
  resp.request_id = 77;
  resp.status = WireStatus::kOk;
  resp.stats.cache_hit = true;
  resp.stats.has_cycles = true;
  resp.stats.cycles = 123456;
  resp.stats.instructions = 999;
  resp.stats.prepare_ns = 1000;
  resp.stats.execute_ns = 2000;
  resp.has_plan = true;
  resp.plan.mode = WireMode::kManualSpu;
  resp.plan.config = 3;
  resp.plan.backend = WireBackend::kNativeSwar;
  resp.plan.score_source = 2;  // measured
  resp.plan.has_observed = true;
  resp.plan.observed_count = 12;
  resp.plan.observed_mean = 1234.5;
  resp.plan.observed_variance = 6.25;
  resp.explored = true;
  resp.output = {9, 8, 7};

  std::vector<uint8_t> frame;
  service::encode_response(resp, &frame);
  const auto decoded =
      service::decode_response(std::span<const uint8_t>(frame).subspan(4));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->request_id, 77u);
  EXPECT_EQ(decoded->status, WireStatus::kOk);
  EXPECT_TRUE(decoded->stats.cache_hit);
  EXPECT_TRUE(decoded->stats.has_cycles);
  EXPECT_EQ(decoded->stats.cycles, 123456u);
  EXPECT_EQ(decoded->stats.instructions, 999u);
  EXPECT_TRUE(decoded->has_plan);
  EXPECT_EQ(decoded->plan.mode, WireMode::kManualSpu);
  EXPECT_EQ(decoded->plan.config, 3);
  EXPECT_EQ(decoded->plan.backend, WireBackend::kNativeSwar);
  EXPECT_EQ(decoded->plan.score_source, 2);
  EXPECT_TRUE(decoded->plan.has_observed);
  EXPECT_EQ(decoded->plan.observed_count, 12u);
  EXPECT_DOUBLE_EQ(decoded->plan.observed_mean, 1234.5);
  EXPECT_DOUBLE_EQ(decoded->plan.observed_variance, 6.25);
  EXPECT_TRUE(decoded->explored);
  EXPECT_EQ(decoded->output, (std::vector<uint8_t>{9, 8, 7}));
}

TEST(Protocol, ResponseWithoutObservedStatsStaysMinimal) {
  // A cold-history plan carries no observed block — the flags byte must
  // say so and decoding must leave the observed fields zeroed.
  WireResponse resp;
  resp.request_id = 1;
  resp.status = WireStatus::kOk;
  resp.has_plan = true;
  resp.plan.mode = WireMode::kAutoOrchestrate;
  resp.plan.config = 0;
  resp.plan.backend = WireBackend::kSimulator;
  resp.plan.score_source = 0;  // model

  std::vector<uint8_t> frame;
  service::encode_response(resp, &frame);
  const auto decoded =
      service::decode_response(std::span<const uint8_t>(frame).subspan(4));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_TRUE(decoded->has_plan);
  EXPECT_EQ(decoded->plan.score_source, 0);
  EXPECT_FALSE(decoded->plan.has_observed);
  EXPECT_EQ(decoded->plan.observed_count, 0u);
  EXPECT_FALSE(decoded->explored);
}

TEST(Protocol, ResponseFlagAndScoreSourceValidationIsTyped) {
  WireResponse resp;
  resp.request_id = 5;
  resp.status = WireStatus::kOk;
  resp.has_plan = true;
  resp.plan.mode = WireMode::kAutoOrchestrate;
  resp.plan.backend = WireBackend::kSimulator;
  std::vector<uint8_t> good;
  service::encode_response(resp, &good);
  // Body layout up to the flags byte: header (7) + request_id u64 (8) +
  // status u8 (1) + stats (two u8 + four u64 = 34) = byte 50 of the body.
  constexpr size_t kFlagsOffset = 4 + 50;  // +4: frame length prefix
  ASSERT_EQ(good[kFlagsOffset], 1u) << "plan flag expected where assumed";

  {  // an unknown flag bit is kBadFlags, not silently ignored
    auto bad = good;
    bad[kFlagsOffset] |= 1u << 3;
    const auto r =
        service::decode_response(std::span<const uint8_t>(bad).subspan(4));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ProtoCode::kBadFlags);
  }
  {  // observed stats promised without a plan decision is kBadFlags
    auto bad = good;
    bad[kFlagsOffset] = 1u << 1;
    const auto r =
        service::decode_response(std::span<const uint8_t>(bad).subspan(4));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ProtoCode::kBadFlags);
  }
  {  // a score_source beyond the enum range is kBadEnum
    WireResponse out_of_range = resp;
    out_of_range.plan.score_source = service::kWireScoreSourceMax + 1;
    std::vector<uint8_t> frame;
    service::encode_response(out_of_range, &frame);
    const auto r =
        service::decode_response(std::span<const uint8_t>(frame).subspan(4));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ProtoCode::kBadEnum);
  }
}

TEST(Protocol, ErrorCodeWireMappingIsABijection) {
  const api::ErrorCode all[] = {
      api::ErrorCode::kUnknownKernel,      api::ErrorCode::kInvalidArgument,
      api::ErrorCode::kNoManualSpuVariant, api::ErrorCode::kBuffersUnsupported,
      api::ErrorCode::kBufferSizeMismatch, api::ErrorCode::kTilingUnsupported,
      api::ErrorCode::kPipelineMismatch,   api::ErrorCode::kBackendUnsupported,
      api::ErrorCode::kSessionShutdown,    api::ErrorCode::kOverloaded,
      api::ErrorCode::kCancelled,          api::ErrorCode::kExecutionFailed,
      api::ErrorCode::kVerificationFailed,
  };
  std::vector<uint8_t> seen;
  for (const auto code : all) {
    const uint8_t wire = service::error_code_to_wire(code);
    EXPECT_NE(wire, 255) << "unmapped code";
    for (const uint8_t s : seen) EXPECT_NE(s, wire) << "wire value collision";
    seen.push_back(wire);
    api::ErrorCode back;
    ASSERT_TRUE(service::error_code_from_wire(wire, &back));
    EXPECT_EQ(back, code);
  }
  api::ErrorCode unused;
  EXPECT_FALSE(service::error_code_from_wire(200, &unused));
}

// -- Protocol: every decode failure is typed ----------------------------------

TEST(Protocol, DecodeErrorsAreTyped) {
  WireRequest base;
  base.kernel = "FIR12";
  base.input = {1, 2, 3, 4};
  const std::vector<uint8_t> good = encode(base);

  struct Case {
    const char* name;
    std::vector<uint8_t> body;
    ProtoCode want;
  };
  std::vector<Case> cases;

  {  // body ends inside the header
    Case c{"truncated header",
           std::vector<uint8_t>(good.begin() + 4, good.begin() + 7),
           ProtoCode::kTruncated};
    cases.push_back(std::move(c));
  }
  {  // body ends inside a later field
    // Cutting 3 bytes lands inside the input byte-array: its declared u32
    // length now overruns what is left of the body.
    Case c{"truncated mid-body",
           std::vector<uint8_t>(good.begin() + 4, good.end() - 3),
           ProtoCode::kTruncated};
    cases.push_back(std::move(c));
  }
  {
    Case c{"bad magic", std::vector<uint8_t>(good.begin() + 4, good.end()),
           ProtoCode::kBadMagic};
    c.body[0] ^= 0xFF;
    cases.push_back(std::move(c));
  }
  {
    Case c{"bad version", std::vector<uint8_t>(good.begin() + 4, good.end()),
           ProtoCode::kBadVersion};
    c.body[4] = 0x7F;  // version u16 after the u32 magic
    cases.push_back(std::move(c));
  }
  {
    Case c{"bad frame type",
           std::vector<uint8_t>(good.begin() + 4, good.end()),
           ProtoCode::kBadType};
    c.body[6] = 9;  // type u8 after magic + version
    cases.push_back(std::move(c));
  }
  {
    Case c{"trailing garbage",
           std::vector<uint8_t>(good.begin() + 4, good.end()),
           ProtoCode::kTrailingBytes};
    c.body.push_back(0xAA);
    cases.push_back(std::move(c));
  }

  for (const auto& c : cases) {
    const auto r = service::decode_request(c.body);
    ASSERT_FALSE(r.ok()) << c.name << " decoded successfully";
    EXPECT_EQ(r.error().code, c.want)
        << c.name << ": got " << r.error().to_string();
  }
}

TEST(Protocol, BadEnumsAreTyped) {
  // Mutate single knobs of a known-good encoding and expect kBadEnum.
  struct Knob {
    WireMode mode = WireMode::kBaseline;
    uint8_t config = 0;
    WireBackend backend = WireBackend::kSimulator;
  };
  const Knob bad_knobs[] = {
      {static_cast<WireMode>(9), 0, WireBackend::kSimulator},
      {WireMode::kBaseline, 7, WireBackend::kSimulator},
      {WireMode::kBaseline, 0, static_cast<WireBackend>(5)},
      // kAuto backend is only meaningful under kPlan.
      {WireMode::kBaseline, 0, WireBackend::kAuto},
  };
  for (const auto& k : bad_knobs) {
    WireRequest req;
    req.kernel = "FIR12";
    req.mode = k.mode;
    req.config = k.config;
    req.backend = k.backend;
    const auto r = decode_body(encode(req));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ProtoCode::kBadEnum) << r.error().to_string();
  }
}

TEST(Protocol, OversizedPayloadIsTypedBeforeAllocation) {
  WireRequest req;
  req.kernel = "FIR12";
  req.input = pixel_input(4096);
  const auto r = decode_body(encode(req), /*max_payload=*/1024);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ProtoCode::kPayloadTooLarge);
}

TEST(Protocol, PeekFrameTypeClassifies) {
  const auto req_frame = encode(WireRequest{});
  const auto t = service::peek_frame_type(
      std::span<const uint8_t>(req_frame).subspan(4));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, service::FrameType::kRequest);

  const std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(service::peek_frame_type(junk).ok());
}

// -- Engine-level admission control (the runtime/api seam) --------------------

TEST(Shedding, QueueDepthThresholdShedsImmediately) {
  api::Session session({.workers = 1, .shed_queue_depth = 1, .cache = nullptr});
  // Occupy the single worker with a slow job; wait until it is executing
  // (submitted and no longer queued).
  auto slow = session.request("FIR12").repeats(512).submit();
  ASSERT_TRUE(slow.ok());
  while (session.queue_depth() != 0 || session.stats().jobs_submitted < 1) {
    std::this_thread::yield();
  }
  // Fill the queue to the threshold...
  auto queued = session.request("FIR12").repeats(1).submit();
  ASSERT_TRUE(queued.ok());
  while (session.queue_depth() < 1) std::this_thread::yield();
  // ...so the next submission must shed, synchronously and typed.
  auto shed = session.request("FIR12").repeats(1).run();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, api::ErrorCode::kOverloaded);
  EXPECT_GE(session.stats().jobs_shed, 1u);

  EXPECT_TRUE(slow->wait().ok());
  EXPECT_TRUE(queued->wait().ok());
  EXPECT_EQ(session.stats().jobs_shed, 1u);
}

TEST(Shedding, BoundedQueueBlockTimeoutSheds) {
  api::Session session(
      {.workers = 1, .queue_capacity = 1, .shed_max_block_ns = 1000000, .cache = nullptr});
  auto slow = session.request("FIR12").repeats(512).submit();
  ASSERT_TRUE(slow.ok());
  while (session.queue_depth() != 0 || session.stats().jobs_submitted < 1) {
    std::this_thread::yield();
  }
  auto queued = session.request("FIR12").repeats(1).submit();  // queue full
  ASSERT_TRUE(queued.ok());
  // The next submit blocks on backpressure, but only for ~1ms before it
  // resolves as shed instead of stalling its caller indefinitely.
  auto shed = session.request("FIR12").repeats(1).run();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, api::ErrorCode::kOverloaded);
  EXPECT_TRUE(slow->wait().ok());
  EXPECT_TRUE(queued->wait().ok());
}

TEST(Shedding, QueueDepthSnapshotTracksTheQueue) {
  api::Session session({.workers = 1, .cache = nullptr});
  EXPECT_EQ(session.queue_depth(), 0u);
  auto slow = session.request("FIR12").repeats(512).submit();
  ASSERT_TRUE(slow.ok());
  auto queued = session.request("FIR12").repeats(1).submit();
  ASSERT_TRUE(queued.ok());
  // Both jobs resolve; the snapshot returns to empty with them.
  EXPECT_TRUE(slow->wait().ok());
  EXPECT_TRUE(queued->wait().ok());
  EXPECT_EQ(session.queue_depth(), 0u);
}

// -- Live server --------------------------------------------------------------

class ServiceRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string err;
    server_ = std::make_unique<service::Server>(options());
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  virtual service::ServerOptions options() {
    service::ServerOptions opts;
    service::TenantOptions t;
    t.workers = 2;
    opts.tenants.push_back(t);
    return opts;
  }

  service::ServiceClient connect() {
    service::ServiceClient c;
    std::string err;
    EXPECT_TRUE(c.connect(server_->port(), &err)) << err;
    return c;
  }

  std::unique_ptr<service::Server> server_;
};

TEST_F(ServiceRoundTrip, BothBackendsBitExactAgainstLocalReference) {
  const auto* info = kernels::find_kernel_info("Color Convert");
  ASSERT_NE(info, nullptr);
  ASSERT_TRUE(info->buffers.supported());
  const auto input = pixel_input(info->buffers.input_bytes);

  for (const bool native : {false, true}) {
    if (native && !info->native_backend()) continue;

    std::vector<uint8_t> expected(info->buffers.output_bytes);
    {
      api::Session local;
      auto ref = local.request("Color Convert")
                     .baseline()
                     .backend(native ? api::ExecBackend::kNativeSwar
                                     : api::ExecBackend::kSimulator)
                     .input(std::span<const uint8_t>(input))
                     .output(std::span<uint8_t>(expected))
                     .run();
      ASSERT_TRUE(ref.ok()) << ref.error().to_string();
    }

    auto client = connect();
    WireRequest req;
    req.request_id = native ? 2 : 1;
    req.kernel = "Color Convert";
    req.mode = WireMode::kBaseline;
    req.backend =
        native ? WireBackend::kNativeSwar : WireBackend::kSimulator;
    req.input = input;
    const auto r = client.call(req);
    ASSERT_TRUE(r.transport_ok) << r.transport_error;
    ASSERT_EQ(r.response.status, WireStatus::kOk) << r.response.message;
    EXPECT_EQ(r.response.request_id, req.request_id);
    EXPECT_EQ(r.response.output, expected);
    // Cycle stats exist exactly when the simulator ran.
    EXPECT_EQ(r.response.stats.has_cycles, !native);
  }
}

TEST_F(ServiceRoundTrip, PlanModeReturnsTheDecision) {
  auto client = connect();
  WireRequest req;
  req.request_id = 3;
  req.kernel = "FIR12";
  req.repeats = 4;
  req.mode = WireMode::kPlan;
  req.backend = WireBackend::kAuto;
  const auto r = client.call(req);
  ASSERT_TRUE(r.transport_ok) << r.transport_error;
  ASSERT_EQ(r.response.status, WireStatus::kOk) << r.response.message;
  EXPECT_TRUE(r.response.has_plan);
  EXPECT_NE(r.response.plan.mode, WireMode::kPlan);
  EXPECT_NE(r.response.plan.backend, WireBackend::kAuto);
  // First-ever request against a fresh server: history is cold, so the
  // decision is model-sourced and carries no observed block, and a
  // default tenant (explore_rate 0) never marks a response explored.
  EXPECT_LE(r.response.plan.score_source, service::kWireScoreSourceMax);
  EXPECT_EQ(r.response.plan.score_source, 0) << "cold history is model-only";
  EXPECT_FALSE(r.response.plan.has_observed);
  EXPECT_FALSE(r.response.explored);

  // Once the executed shape accumulates samples, responses surface the
  // observed aggregate over the wire. Pin the simulator backend: only
  // cycle history (not native wall-ns) enters the planner's blend.
  req.backend = WireBackend::kSimulator;
  for (uint64_t id = 100; id < 110; ++id) {
    req.request_id = id;
    const auto again = client.call(req);
    ASSERT_TRUE(again.transport_ok) << again.transport_error;
    ASSERT_EQ(again.response.status, WireStatus::kOk);
  }
  req.request_id = 110;
  const auto warmed = client.call(req);
  ASSERT_TRUE(warmed.transport_ok) << warmed.transport_error;
  ASSERT_EQ(warmed.response.status, WireStatus::kOk);
  ASSERT_TRUE(warmed.response.has_plan);
  EXPECT_TRUE(warmed.response.plan.has_observed);
  EXPECT_GE(warmed.response.plan.observed_count, 3u);
  EXPECT_GT(warmed.response.plan.observed_mean, 0.0);
}

TEST_F(ServiceRoundTrip, ApiErrorsComeBackTyped) {
  auto client = connect();
  WireRequest req;
  req.request_id = 4;
  req.kernel = "no such kernel";
  const auto r = client.call(req);
  ASSERT_TRUE(r.transport_ok) << r.transport_error;
  ASSERT_EQ(r.response.status, WireStatus::kApiError);
  api::ErrorCode code;
  ASSERT_TRUE(service::error_code_from_wire(r.response.error_code, &code));
  EXPECT_EQ(code, api::ErrorCode::kUnknownKernel);

  // The connection survives a typed error: reuse it.
  req.kernel = "FIR12";
  req.request_id = 5;
  const auto r2 = client.call(req);
  ASSERT_TRUE(r2.transport_ok) << r2.transport_error;
  EXPECT_EQ(r2.response.status, WireStatus::kOk);
  EXPECT_EQ(r2.response.request_id, 5u);
}

TEST_F(ServiceRoundTrip, UnknownTenantAndRepeatsCapAreInvalidArgument) {
  auto client = connect();
  WireRequest req;
  req.kernel = "FIR12";
  req.tenant = "nobody";
  auto r = client.call(req);
  ASSERT_TRUE(r.transport_ok);
  ASSERT_EQ(r.response.status, WireStatus::kApiError);
  api::ErrorCode code;
  ASSERT_TRUE(service::error_code_from_wire(r.response.error_code, &code));
  EXPECT_EQ(code, api::ErrorCode::kInvalidArgument);

  req.tenant.clear();
  req.repeats = 1u << 20;  // over the default 4096 cap
  r = client.call(req);
  ASSERT_TRUE(r.transport_ok);
  ASSERT_EQ(r.response.status, WireStatus::kApiError);
  ASSERT_TRUE(service::error_code_from_wire(r.response.error_code, &code));
  EXPECT_EQ(code, api::ErrorCode::kInvalidArgument);
}

class ServicePayloadLimit : public ServiceRoundTrip {
 protected:
  service::ServerOptions options() override {
    auto opts = ServiceRoundTrip::options();
    opts.max_payload_bytes = 256;
    return opts;
  }
};

TEST_F(ServicePayloadLimit, OversizedPayloadTypedAndConnectionSurvives) {
  auto client = connect();
  WireRequest req;
  req.request_id = 6;
  req.kernel = "FIR12";
  req.input = pixel_input(1024);
  const auto r = client.call(req);
  ASSERT_TRUE(r.transport_ok) << r.transport_error;
  ASSERT_EQ(r.response.status, WireStatus::kProtoError);
  EXPECT_EQ(r.response.error_code,
            static_cast<uint8_t>(ProtoCode::kPayloadTooLarge));

  // Within-frame errors never cost the connection.
  req.input.clear();
  req.request_id = 7;
  const auto r2 = client.call(req);
  ASSERT_TRUE(r2.transport_ok) << r2.transport_error;
  EXPECT_EQ(r2.response.status, WireStatus::kOk);
}

TEST_F(ServiceRoundTrip, OversizedFrameAnsweredOnceThenClosed) {
  std::string err;
  service::Socket sock = service::connect_loopback(server_->port(), &err);
  ASSERT_TRUE(sock.valid()) << err;
  // A 4-byte prefix declaring more than the hard cap. No body follows —
  // the server must answer from the prefix alone.
  const uint32_t huge = service::kMaxFrameBytes + 1;
  std::vector<uint8_t> prefix(4);
  for (int b = 0; b < 4; ++b) {
    prefix[static_cast<size_t>(b)] = static_cast<uint8_t>(huge >> (8 * b));
  }
  ASSERT_TRUE(service::write_all(sock.fd(), prefix));

  const auto fr = service::read_frame(sock.fd());
  ASSERT_EQ(fr.status, service::IoStatus::kOk) << fr.error;
  const auto resp = service::decode_response(fr.body);
  ASSERT_TRUE(resp.ok()) << resp.error().to_string();
  EXPECT_EQ(resp->status, WireStatus::kProtoError);
  EXPECT_EQ(resp->error_code,
            static_cast<uint8_t>(ProtoCode::kOversizedFrame));

  // The framing was poisoned: the server hangs up after the response.
  const auto next = service::read_frame(sock.fd());
  EXPECT_EQ(next.status, service::IoStatus::kEof);
}

// -- Admission: the per-tenant in-flight cap ----------------------------------

TEST(ServiceAdmission, InflightCapShedsTyped) {
  service::ServerOptions opts;
  service::TenantOptions cap;
  cap.name = "cap1";
  cap.workers = 1;
  cap.max_inflight = 1;
  opts.tenants.push_back(cap);
  opts.max_repeats = 1 << 16;
  service::Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  std::atomic<bool> occupier_ok{false};
  std::thread occupier([&] {
    service::ServiceClient occ;
    if (!occ.connect(server.port())) return;
    WireRequest slow;
    slow.tenant = "cap1";
    slow.kernel = "FIR12";
    slow.repeats = 1 << 14;
    slow.backend = WireBackend::kSimulator;
    occupier_ok.store(occ.call(slow).ok());
  });
  // The slot is held from before the engine submit until the response;
  // once the tenant's session has seen the job, the window is open.
  api::Session* cap_session = server.tenant_session("cap1");
  ASSERT_NE(cap_session, nullptr);
  while (cap_session->stats().jobs_submitted < 1) std::this_thread::yield();

  service::ServiceClient prober;
  ASSERT_TRUE(prober.connect(server.port()));
  WireRequest probe;
  probe.tenant = "cap1";
  probe.kernel = "FIR12";
  for (int i = 0; i < 8; ++i) {
    const auto r = prober.call(probe);
    ASSERT_TRUE(r.transport_ok) << r.transport_error;
    ASSERT_EQ(r.response.status, WireStatus::kApiError);
    api::ErrorCode code;
    ASSERT_TRUE(service::error_code_from_wire(r.response.error_code, &code));
    EXPECT_EQ(code, api::ErrorCode::kOverloaded);
  }
  occupier.join();
  EXPECT_TRUE(occupier_ok.load());
  EXPECT_EQ(server.stats().requests_shed, 8u);
  server.shutdown();
}

// -- Graceful drain under racing clients --------------------------------------

TEST(ServiceDrain, ShutdownRacedBy64SubmittingClients) {
  service::ServerOptions opts;
  service::TenantOptions t;
  t.workers = 2;
  opts.tenants.push_back(t);
  service::Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  const uint16_t port = server.port();

  constexpr int kClients = 64;
  std::atomic<uint64_t> oks{0}, shutdown_errors{0}, other_errors{0},
      closes{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      service::ServiceClient client;
      if (!client.connect(port)) {
        closes.fetch_add(1);
        return;
      }
      WireRequest req;
      req.kernel = "FIR12";
      req.repeats = 2;
      for (int i = 0; i < 50; ++i) {
        req.request_id =
            static_cast<uint64_t>(c) * 1000 + static_cast<uint64_t>(i);
        const auto r = client.call(req);
        if (!r.transport_ok) {
          // The drain closed us — the only acceptable transport outcome.
          closes.fetch_add(1);
          return;
        }
        if (r.response.status == WireStatus::kOk) {
          if (r.response.request_id != req.request_id) {
            other_errors.fetch_add(1);
            return;
          }
          oks.fetch_add(1);
          continue;
        }
        api::ErrorCode code;
        if (r.response.status == WireStatus::kApiError &&
            service::error_code_from_wire(r.response.error_code, &code) &&
            code == api::ErrorCode::kSessionShutdown) {
          shutdown_errors.fetch_add(1);
        } else {
          other_errors.fetch_add(1);
          return;
        }
      }
    });
  }

  // Let the stampede get going, then drain under it.
  while (oks.load() < 32) std::this_thread::yield();
  server.shutdown();
  for (auto& th : clients) th.join();

  // Every request resolved as success, a typed shutdown error, or a clean
  // close — nothing hung and nothing came back malformed or misrouted.
  EXPECT_EQ(other_errors.load(), 0u);
  EXPECT_GE(oks.load(), 32u);

  // The drain is final: no new connections are accepted.
  service::ServiceClient late;
  EXPECT_FALSE(late.connect(port));
}

// -- Wire-format fuzz against a live server -----------------------------------

TEST(ServiceWireFuzz, HostileFramesAlwaysTypedOrClosedNeverHung) {
  service::ServerOptions opts;
  opts.max_payload_bytes = 1 << 14;
  service::Server server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  const uint16_t port = server.port();

  fuzz::Rng rng(0xF00D);
  int typed = 0, closed = 0;
  for (int i = 0; i < 120; ++i) {
    WireRequest req;
    req.request_id = rng.next();
    req.kernel = rng.chance(0.5) ? "FIR12" : "bogus";
    req.repeats = static_cast<uint32_t>(1 + rng.below(3));
    req.mode = static_cast<WireMode>(rng.below(4));
    req.config = static_cast<uint8_t>(rng.below(4));
    std::vector<uint8_t> frame = encode(req);

    switch (rng.below(5)) {
      case 0:
        break;  // valid
      case 1:  // bit flips, prefix included
        for (int f = 0, n = 1 + rng.below(6); f < n; ++f) {
          frame[static_cast<size_t>(
              rng.below(static_cast<int>(frame.size())))] ^=
              static_cast<uint8_t>(1 + rng.below(255));
        }
        break;
      case 2:  // truncation
        frame.resize(static_cast<size_t>(
            rng.below(static_cast<int>(frame.size()))));
        break;
      case 3: {  // lying length prefix
        const uint32_t lie = static_cast<uint32_t>(frame.size()) +
                             static_cast<uint32_t>(1 + rng.below(512));
        for (int b = 0; b < 4; ++b) {
          frame[static_cast<size_t>(b)] =
              static_cast<uint8_t>(lie >> (8 * b));
        }
        break;
      }
      case 4: {  // garbage with an honest prefix
        const uint32_t len = static_cast<uint32_t>(rng.below(96));
        frame.assign(4, 0);
        for (int b = 0; b < 4; ++b) {
          frame[static_cast<size_t>(b)] = static_cast<uint8_t>(len >> (8 * b));
        }
        for (uint32_t b = 0; b < len; ++b) {
          frame.push_back(static_cast<uint8_t>(rng.next()));
        }
        break;
      }
    }

    service::Socket sock = service::connect_loopback(port, &err);
    ASSERT_TRUE(sock.valid()) << "iter " << i << ": " << err;
    timeval tv{};
    tv.tv_sec = 30;  // hang backstop, far above any legitimate latency
    setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    if (!service::write_all(sock.fd(), frame)) {
      ++closed;
      continue;
    }
    sock.shutdown_write();  // no more bytes: lying prefixes see EOF, not us

    const auto fr = service::read_frame(sock.fd());
    if (fr.status == service::IoStatus::kOk) {
      const auto resp = service::decode_response(fr.body);
      ASSERT_TRUE(resp.ok())
          << "iter " << i << ": undecodable response: "
          << resp.error().to_string();
      ++typed;
    } else if (fr.status == service::IoStatus::kEof) {
      ++closed;
    } else {
      ASSERT_FALSE(errno == EAGAIN || errno == EWOULDBLOCK)
          << "iter " << i << ": server hung (no response, no close)";
      ++closed;  // reset during close — a clean outcome's race, not a hang
    }
  }
  EXPECT_GT(typed, 0);
  EXPECT_GT(closed, 0);

  // The server survived it all: a valid request still round trips.
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(port));
  WireRequest req;
  req.request_id = 99;
  req.kernel = "FIR12";
  const auto r = client.call(req);
  ASSERT_TRUE(r.transport_ok) << r.transport_error;
  EXPECT_EQ(r.response.status, WireStatus::kOk);
  EXPECT_EQ(r.response.request_id, 99u);
  server.shutdown();
}

}  // namespace
