// Tests for simulated memory: typed access, bounds, device windows.
#include <gtest/gtest.h>

#include "sim/memory.h"
#include "sim/regfile.h"
#include "swar/vec64.h"

using subword::sim::Device;
using subword::sim::Memory;

namespace {

class RecordingDevice final : public Device {
 public:
  void write32(uint64_t offset, uint32_t value) override {
    last_write = {offset, value};
    ++writes;
  }
  uint32_t read32(uint64_t offset) override {
    ++reads;
    return static_cast<uint32_t>(offset + 7);
  }
  std::pair<uint64_t, uint32_t> last_write{};
  int writes = 0;
  int reads = 0;
};

}  // namespace

TEST(Memory, ReadWriteWidths) {
  Memory m(4096);
  m.write8(10, 0xAB);
  EXPECT_EQ(m.read8(10), 0xAB);
  m.write16(100, 0xBEEF);
  EXPECT_EQ(m.read16(100), 0xBEEF);
  m.write32(200, 0xDEADBEEF);
  EXPECT_EQ(m.read32(200), 0xDEADBEEFu);
  m.write64(300, 0x0123456789ABCDEFull);
  EXPECT_EQ(m.read64(300), 0x0123456789ABCDEFull);
}

TEST(Memory, LittleEndianComposition) {
  Memory m(64);
  m.write8(0, 0x11);
  m.write8(1, 0x22);
  EXPECT_EQ(m.read16(0), 0x2211);
}

TEST(Memory, OutOfRangeThrows) {
  Memory m(64);
  EXPECT_THROW((void)m.read64(60), std::out_of_range);
  EXPECT_THROW(m.write8(64, 1), std::out_of_range);
  EXPECT_THROW((void)m.read8(~0ull), std::out_of_range);
}

TEST(Memory, SpanRoundTrip) {
  Memory m(1024);
  const std::vector<int16_t> v{-1, 2, -3, 4, 32767, -32768};
  m.write_span<int16_t>(16, v);
  EXPECT_EQ(m.read_vector<int16_t>(16, v.size()), v);
}

TEST(Memory, DeviceWindowInterceptsOnly32BitAccess) {
  Memory m(64);
  RecordingDevice dev;
  m.map_device(0xF0000000ull, 0x100, &dev);
  m.write32(0xF0000010ull, 77);
  EXPECT_EQ(dev.writes, 1);
  EXPECT_EQ(dev.last_write.first, 0x10u);
  EXPECT_EQ(dev.last_write.second, 77u);
  EXPECT_EQ(m.read32(0xF0000004ull), 4u + 7u);
  // Accesses outside the window still bounds-check against the arena.
  EXPECT_THROW(m.write32(0xF0001000ull, 1), std::out_of_range);
}

TEST(Memory, SecondDeviceRejected) {
  Memory m(64);
  RecordingDevice d1, d2;
  m.map_device(0x1000, 0x10, &d1);
  EXPECT_THROW(m.map_device(0x2000, 0x10, &d2), std::logic_error);
}

TEST(Memory, ReadVectorTypedWidths) {
  Memory m(256);
  m.write16(0, 0x8000);  // negative as int16
  m.write16(2, 0x7FFF);
  const auto v16 = m.read_vector<int16_t>(0, 2);
  EXPECT_EQ(v16[0], -32768);
  EXPECT_EQ(v16[1], 32767);
  m.write32(8, 0xDEADBEEF);
  EXPECT_EQ(m.read_vector<uint32_t>(8, 1)[0], 0xDEADBEEFu);
  m.write64(16, 0x0102030405060708ull);
  EXPECT_EQ(m.read_vector<uint64_t>(16, 1)[0], 0x0102030405060708ull);
  m.write8(24, 0xAB);
  EXPECT_EQ(m.read_vector<uint8_t>(24, 1)[0], 0xAB);
}

TEST(RegFile, ByteViewMatchesSpuAddressing) {
  // Byte b of MMn is SPU register address 8n+b — the crossbar's address
  // space (paper Figure 4: the 512x1 SPU register).
  subword::sim::MmxRegFile regs;
  regs.write(3, subword::swar::Vec64{0x1122334455667788ull});
  EXPECT_EQ(regs.byte(3 * 8 + 0), 0x88);
  EXPECT_EQ(regs.byte(3 * 8 + 7), 0x11);
  regs.write(0, subword::swar::Vec64{0xFF});
  EXPECT_EQ(regs.byte(0), 0xFF);
}
