// Decoupled controller tests: the Figure 7 dot-product walkthrough, counter
// auto-reload, nested loops, IDLE semantics, contexts, exception stop.
#include <gtest/gtest.h>

#include "core/micro_builder.h"
#include "core/spu.h"
#include "isa/inst.h"

using namespace subword::core;
using namespace subword::isa;
using subword::sim::MmxRegFile;
using subword::sim::Pipe;
using subword::swar::Vec64;

namespace {

Inst nop_inst() {
  Inst in;
  in.op = Op::Nop;
  return in;
}

// Route that gathers byte `b` of register `r` into every output byte of
// operand `slot`.
Route broadcast_route(int slot, int reg, int byte) {
  Route r;
  std::array<uint8_t, 8> srcs{};
  srcs.fill(static_cast<uint8_t>(reg * 8 + byte));
  r.set_operand_both_pipes(slot, srcs);
  return r;
}

}  // namespace

TEST(SpuController, Figure7DotProductSchedule) {
  // Three states (two routed multiplies + straight jump), ten iterations:
  // CNTR0 = 30, NextState0 = IDLE everywhere, NextState1 chains 0->1->2->0.
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_state(broadcast_route(0, 1, 0));
  mb.add_state(broadcast_route(0, 2, 0));
  mb.add_straight_state();
  mb.seal_simple_loop(10);
  EXPECT_EQ(mb.program().reload[0], 30u);
  spu.context(0) = mb.program();
  spu.go();

  EXPECT_TRUE(spu.active());
  EXPECT_EQ(spu.current_state(), 0);
  int steps = 0;
  while (spu.active()) {
    spu.retire(nop_inst());
    ++steps;
    ASSERT_LE(steps, 31);
  }
  // Exactly 30 dynamic instructions, then automatic IDLE.
  EXPECT_EQ(steps, 30);
  EXPECT_EQ(spu.current_state(), kIdleState);
  // Counter auto-restored to its programmed value.
  EXPECT_EQ(spu.counter(0), 30u);
  EXPECT_EQ(spu.run_stats().idles, 1u);
}

TEST(SpuController, StateSequenceAppliesRoutesInOrder) {
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_state(broadcast_route(1, 1, 0));  // state 0: operand b <- MM1.b0
  mb.add_state(broadcast_route(1, 2, 0));  // state 1: operand b <- MM2.b0
  mb.seal_simple_loop(1);
  spu.context(0) = mb.program();
  spu.go();

  MmxRegFile regs;
  regs.write(1, Vec64{0x11});
  regs.write(2, Vec64{0x22});

  Inst padd;
  padd.op = Op::Paddw;
  padd.dst = MM0;
  padd.src = MM3;
  Vec64 a{}, b{};
  EXPECT_TRUE(spu.route(padd, Pipe::U, regs, &a, &b));
  EXPECT_EQ(b.bits(), 0x1111111111111111ull);
  spu.retire(padd);
  b = Vec64{};
  EXPECT_TRUE(spu.route(padd, Pipe::U, regs, &a, &b));
  EXPECT_EQ(b.bits(), 0x2222222222222222ull);
}

TEST(SpuController, InactiveRoutesNothing) {
  Spu spu(kConfigA);
  MmxRegFile regs;
  Inst padd;
  padd.op = Op::Paddw;
  Vec64 a{1}, b{2};
  EXPECT_FALSE(spu.route(padd, Pipe::U, regs, &a, &b));
  EXPECT_EQ(a.bits(), 1u);
  EXPECT_EQ(b.bits(), 2u);
}

TEST(SpuController, NestedLoopsWithTwoCounters) {
  // Inner: states 0,1 on CNTR0 (3 iterations => 6); outer: state 2 on
  // CNTR1. Structure per outer iteration: 6 inner steps + 1 outer step.
  // Two outer iterations => CNTR1 = 2.
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_straight_state(0);
  mb.add_straight_state(0);
  mb.add_straight_state(1);
  // Chain: 0 -> 1; 1 -> 0 until CNTR0 dies, then to 2; 2 -> 0 until CNTR1
  // dies, then IDLE.
  mb.set_next(0, /*next0=*/1, /*next1=*/1);
  mb.set_next(1, /*next0=*/2, /*next1=*/0);
  mb.set_next(2, /*next0=*/kIdleState, /*next1=*/0);
  mb.set_cntr_reload(0, 6);
  mb.set_cntr_reload(1, 2);
  spu.context(0) = mb.program();
  spu.go();

  std::vector<uint8_t> visited;
  int guard = 0;
  while (spu.active() && guard++ < 100) {
    visited.push_back(spu.current_state());
    spu.retire(nop_inst());
  }
  // Expected: (0 1)x3 2 (0 1)x3 2 -> idle. 14 steps total.
  const std::vector<uint8_t> want = {0, 1, 0, 1, 0, 1, 2,
                                     0, 1, 0, 1, 0, 1, 2};
  EXPECT_EQ(visited, want);
  EXPECT_FALSE(spu.active());
  // Both counters restored for the next activation (zero-overhead reuse).
  EXPECT_EQ(spu.counter(0), 6u);
  EXPECT_EQ(spu.counter(1), 2u);
}

TEST(SpuController, ReactivationIsZeroOverhead) {
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.seal_simple_loop(3);
  spu.context(0) = mb.program();
  for (int round = 0; round < 4; ++round) {
    spu.go();
    int steps = 0;
    while (spu.active()) {
      spu.retire(nop_inst());
      ++steps;
      ASSERT_LE(steps, 4);
    }
    EXPECT_EQ(steps, 3) << "round " << round;
  }
  EXPECT_EQ(spu.run_stats().activations, 4u);
}

TEST(SpuController, ContextsAreIndependent) {
  Spu spu(kConfigA, /*num_contexts=*/2);
  MicroBuilder mb0(kConfigA);
  mb0.add_straight_state();
  mb0.seal_simple_loop(2);
  MicroBuilder mb1(kConfigA);
  mb1.add_straight_state();
  mb1.add_straight_state();
  mb1.seal_simple_loop(5);
  spu.context(0) = mb0.program();
  spu.context(1) = mb1.program();

  spu.select_context(1);
  spu.go();
  int steps = 0;
  while (spu.active()) {
    spu.retire(nop_inst());
    ++steps;
    ASSERT_LE(steps, 11);
  }
  EXPECT_EQ(steps, 10);

  spu.select_context(0);
  spu.go();
  steps = 0;
  while (spu.active()) {
    spu.retire(nop_inst());
    ++steps;
    ASSERT_LE(steps, 3);
  }
  EXPECT_EQ(steps, 2);
}

TEST(SpuController, StopDisablesImmediately) {
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.seal_simple_loop(100);
  spu.context(0) = mb.program();
  spu.go();
  spu.retire(nop_inst());
  EXPECT_TRUE(spu.active());
  spu.stop();  // the exception-handler path of §4
  EXPECT_FALSE(spu.active());
  EXPECT_EQ(spu.counter(0), 100u);  // reloaded
}

TEST(SpuController, ActivationSkipSuppressesOneStep) {
  Spu spu(kConfigA);
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.seal_simple_loop(2);
  spu.context(0) = mb.program();
  spu.go();
  spu.arm_activation_skip();
  spu.retire(nop_inst());  // the GO store itself: no transition
  EXPECT_EQ(spu.counter(0), 2u);
  spu.retire(nop_inst());
  EXPECT_EQ(spu.counter(0), 1u);
}

TEST(SpuController, GoValidatesRoutesAgainstConfig) {
  Spu spu(kConfigD);  // 16-bit ports, MM0..MM3 window
  MicroBuilder mb(kConfigA);
  mb.add_state(broadcast_route(0, 7, 3));  // byte 59: outside D's window
  mb.seal_simple_loop(1);
  spu.context(0) = mb.program();
  EXPECT_THROW(spu.go(), std::logic_error);
}

TEST(MicroBuilder, StateExhaustionThrows) {
  MicroBuilder mb(kConfigA);
  for (int i = 0; i < kNumStates - 1; ++i) mb.add_straight_state();
  EXPECT_THROW(mb.add_straight_state(), std::logic_error);
}

TEST(SpuProgram, ReachableStatesCountsLoop) {
  MicroBuilder mb(kConfigA);
  for (int i = 0; i < 5; ++i) mb.add_straight_state();
  mb.seal_simple_loop(2);
  EXPECT_EQ(mb.program().reachable_states(), 5);
}
