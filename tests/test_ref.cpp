// Golden reference sanity tests: the references must themselves behave
// like the DSP operations they specify (impulse responses, Parseval-ish
// energy checks, involution properties) — otherwise kernel "verification"
// would be meaningless.
#include <gtest/gtest.h>

#include <cmath>

#include "ref/ref_dct.h"
#include "ref/ref_fft.h"
#include "ref/ref_fir.h"
#include "ref/ref_iir.h"
#include "ref/ref_mat.h"
#include "ref/workload.h"

using namespace subword::ref;

TEST(Workload, RngIsDeterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng c(43);
  EXPECT_NE(Rng(42).next(), c.next());
}

TEST(Workload, SampleAmplitudeBounded) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto s = rng.sample_q15(12000);
    EXPECT_LE(std::abs(static_cast<int>(s)), 12000);
  }
}

TEST(RefFir, ImpulseResponseIsCoefficients) {
  // x = [1<<15, 0, 0, ...] with shift 15 reproduces the taps.
  std::vector<int16_t> x(32, 0);
  x[0] = 32767;
  const std::vector<int16_t> c{100, -200, 300, -400};
  const auto y = fir(x, c, 15);
  // 32767/32768 scaling loses at most 1 LSB per tap magnitude step.
  for (size_t k = 0; k < c.size(); ++k) {
    EXPECT_NEAR(y[k], c[k], std::abs(c[k]) / 256 + 1) << k;
  }
  for (size_t k = c.size(); k < x.size(); ++k) EXPECT_EQ(y[k], 0);
}

TEST(RefFir, LinearityInInput) {
  const auto c = make_coeffs(12, 1);
  auto x1 = make_samples(64, 2, 4000);
  std::vector<int16_t> x2(64);
  for (size_t i = 0; i < 64; ++i) x2[i] = static_cast<int16_t>(2 * x1[i]);
  const auto y1 = fir(x1, c, 15);
  const auto y2 = fir(x2, c, 15);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(y2[i], 2 * y1[i], 2) << i;  // rounding of >> only
  }
}

TEST(RefIir, ZeroFeedbackReducesToFir) {
  const auto x = make_samples(64, 3, 8000);
  const auto b = make_coeffs(5, 4);
  const std::vector<int16_t> a(5, 0);
  const auto y = iir(x, b, a, 14);
  // FIR with the same b and shift must agree exactly.
  const auto want = fir(x, b, 14);
  EXPECT_EQ(y, want);
}

TEST(RefIir, FeedbackDecays) {
  // Simple leaky integrator: y[n] = x[n] + (a1/2^14) y[n-1], a negative
  // a1 in our convention. Impulse input decays geometrically.
  std::vector<int16_t> x(32, 0);
  x[0] = 16384;
  const std::vector<int16_t> b{16384};           // unit gain at shift 14
  const std::vector<int16_t> a{-8192};           // y[n] += y[n-1]/2
  const auto y = iir(x, b, a, 14);
  EXPECT_EQ(y[0], 16384);
  EXPECT_NEAR(y[1], 8192, 1);
  EXPECT_NEAR(y[2], 4096, 1);
  EXPECT_GT(y[5], 0);
}

TEST(RefFft, DcInputConcentratesInBinZero) {
  const size_t n = 64;
  std::vector<int16_t> data(2 * n, 0);
  for (size_t i = 0; i < n; ++i) data[2 * i] = 6400;  // constant real
  const auto t = make_fft_tables(n);
  fft(data, t);
  // With >>1 per stage, bin0 = 6400 (sum/n), all other bins ~0.
  EXPECT_NEAR(data[0], 6400, 8);
  for (size_t k = 1; k < n; ++k) {
    EXPECT_NEAR(data[2 * k], 0, 8) << k;
    EXPECT_NEAR(data[2 * k + 1], 0, 8) << k;
  }
}

TEST(RefFft, SingleToneLandsInItsBin) {
  const size_t n = 128;
  constexpr double kPi = 3.14159265358979323846;
  std::vector<int16_t> data(2 * n, 0);
  const int bin = 5;
  for (size_t i = 0; i < n; ++i) {
    data[2 * i] = static_cast<int16_t>(
        std::lround(12000.0 * std::cos(2.0 * kPi * bin *
                                       static_cast<double>(i) / n)));
    data[2 * i + 1] = static_cast<int16_t>(
        std::lround(12000.0 * std::sin(2.0 * kPi * bin *
                                       static_cast<double>(i) / n)));
  }
  const auto t = make_fft_tables(n);
  fft(data, t);
  // Energy concentrates in `bin` (complex exponential -> one-sided).
  int16_t peak = 0;
  size_t peak_bin = 0;
  for (size_t k = 0; k < n; ++k) {
    const auto mag = static_cast<int16_t>(
        std::abs(data[2 * k]) + std::abs(data[2 * k + 1]));
    if (mag > peak) {
      peak = mag;
      peak_bin = k;
    }
  }
  EXPECT_EQ(peak_bin, static_cast<size_t>(bin));
  EXPECT_NEAR(data[2 * bin], 12000, 64);  // sum/n of the tone amplitude
}

TEST(RefFft, TablesAreWellFormed) {
  const auto t = make_fft_tables(256);
  EXPECT_EQ(t.n, 256u);
  EXPECT_EQ(t.bitrev.size(), 256u);
  // Entries for stages 2..8: 2+4+...+128 = 254 pairs.
  EXPECT_EQ(t.tw_re.size(), 2u * 254u);
  EXPECT_EQ(t.tw_im.size(), 2u * 254u);
  // Bit reversal is an involution.
  for (size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(
        t.bitrev[static_cast<size_t>(t.bitrev[i])],
        static_cast<int32_t>(i));
  }
  // First twiddle of every stage is W^0 = (1, 0).
  EXPECT_EQ(t.tw_re[0], 32767);
  EXPECT_EQ(t.tw_re[1], 0);
  EXPECT_EQ(t.tw_im[0], 0);
  EXPECT_EQ(t.tw_im[1], 32767);
}

TEST(RefDct, ConstantBlockConcentratesInDc) {
  Block8x8 in{};
  in.fill(1000);
  const auto basis = make_dct_basis();
  const auto out = dct2d(in, basis);
  EXPECT_GT(out[0], 5000);  // DC gain 8 * s0^2 = 8 * 1/8 => ~in * 8 scale
  for (int i = 1; i < 64; ++i) {
    EXPECT_NEAR(out[static_cast<size_t>(i)], 0, 24) << i;
  }
}

TEST(RefDct, TransposeIsInvolution) {
  Rng rng(9);
  Block8x8 in{};
  for (auto& v : in) v = static_cast<int16_t>(rng.range(-2000, 2000));
  EXPECT_EQ(transpose8(transpose8(in)), in);
}

TEST(RefMat, IdentityMultiply) {
  const size_t n = 16;
  std::vector<int16_t> ident(n * n, 0);
  // shift 8 => diagonal of 256 acts as identity.
  for (size_t i = 0; i < n; ++i) ident[i * n + i] = 256;
  const auto a = make_matrix(n, n, 11);
  const auto c = matmul(a, ident, n, 8);
  EXPECT_EQ(c, a);
}

TEST(RefMat, TransposeRoundTrip) {
  const auto m = make_matrix(16, 16, 12);
  const auto t = transpose(m, 16, 16);
  EXPECT_EQ(transpose(t, 16, 16), m);
  EXPECT_EQ(t[3 * 16 + 7], m[7 * 16 + 3]);
}
