// Registry-wide property tests: every registered kernel — present and
// future — must round-trip bit-exactly against its scalar reference on
// randomized problem sizes, through every execution path (baseline MMX,
// hand-written SPU, automatic orchestration). A kernel registered without
// a golden reference, or whose SPU variant diverges at some repeat count,
// fails here even if no kernel-specific test was written for it.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "kernels/registry.h"
#include "kernels/runner.h"
#include "ref/workload.h"

using namespace subword;
using namespace subword::kernels;
using subword::core::kConfigA;
using subword::core::kConfigD;

namespace {

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : all_kernels()) names.push_back(k->name());
  return names;
}

}  // namespace

class RegistryProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(RegistryProperty, RefVsSwarBitExactOnRandomSizes) {
  const auto k = make_kernel(GetParam());
  ref::Rng rng(0x52454749 ^ std::hash<std::string>{}(GetParam()));
  for (int draw = 0; draw < 3; ++draw) {
    const int repeats = rng.range(1, 5);
    const auto run = run_baseline(*k, repeats);
    EXPECT_TRUE(run.verified)
        << k->name() << " baseline diverges at repeats=" << repeats;
  }
}

TEST_P(RegistryProperty, SpuPathsBitExactOnRandomSizes) {
  const auto k = make_kernel(GetParam());
  ref::Rng rng(0x53505552 ^ std::hash<std::string>{}(GetParam()));
  const int repeats = rng.range(1, 4);
  const auto manual = run_spu(*k, repeats, kConfigA, SpuMode::Manual);
  EXPECT_TRUE(manual.verified)
      << k->name() << " manual SPU diverges at repeats=" << repeats;
  const auto manual_d = run_spu(*k, repeats, kConfigD, SpuMode::Manual);
  EXPECT_TRUE(manual_d.verified)
      << k->name() << " manual SPU (config D) diverges at repeats="
      << repeats;
  const auto aut = run_spu(*k, repeats, kConfigA, SpuMode::Auto);
  EXPECT_TRUE(aut.verified)
      << k->name() << " auto orchestration diverges at repeats=" << repeats;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, RegistryProperty,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == ' ') ch = '_';
                           }
                           return n;
                         });

TEST(RegistryProperty, NamesAreUniqueAndLookupRoundTrips) {
  const auto names = kernel_names();
  for (const auto& n : names) {
    EXPECT_EQ(make_kernel(n)->name(), n);
    EXPECT_EQ(std::count(names.begin(), names.end(), n), 1) << n;
  }
}
