// Branch predictor model tests: the 2-bit baseline and the P6-class
// two-level local-history predictor that underpins Table 2.
#include <gtest/gtest.h>

#include "sim/bpred.h"

using subword::sim::BranchPredictor;
using subword::sim::PredictorKind;

namespace {

// Mispredicts over `loops` executions of a trip-`n` loop (pattern
// T^(n-1) N), after a warmup period that is also counted.
int loop_mispredicts(BranchPredictor& bp, int trip, int loops) {
  int miss = 0;
  for (int l = 0; l < loops; ++l) {
    for (int i = 0; i < trip - 1; ++i) {
      if (!bp.update(7, true)) ++miss;
    }
    if (!bp.update(7, false)) ++miss;
  }
  return miss;
}

}  // namespace

TEST(TwoBit, WarmLoopPredictsTaken) {
  BranchPredictor bp(64, PredictorKind::TwoBit);
  for (int i = 0; i < 10; ++i) bp.update(5, true);
  EXPECT_TRUE(bp.predict(5));
}

TEST(TwoBit, MissesEveryLoopExit) {
  BranchPredictor bp(64, PredictorKind::TwoBit);
  const int miss = loop_mispredicts(bp, 10, 20);
  // One miss per exit (20), plus cold start.
  EXPECT_GE(miss, 20);
  EXPECT_LE(miss, 23);
}

TEST(TwoBit, HysteresisSurvivesSingleExit) {
  BranchPredictor bp(64, PredictorKind::TwoBit);
  for (int i = 0; i < 10; ++i) bp.update(3, true);
  bp.update(3, false);
  EXPECT_TRUE(bp.predict(3));
}

TEST(LocalHistory, LearnsShortLoopExits) {
  // Fixed-trip loops up to the history length are perfectly predicted
  // once warm — the P6 behaviour that keeps media kernels' missed-branch
  // rates near zero (paper Table 2: DCT / Matrix Multiply at 0.000%).
  for (int trip : {2, 3, 4, 8}) {
    BranchPredictor bp(64);
    loop_mispredicts(bp, trip, 16);  // warmup
    const int miss = loop_mispredicts(bp, trip, 100);
    EXPECT_EQ(miss, 0) << "trip " << trip;
  }
}

TEST(LocalHistory, LongLoopsMissOncePerExit) {
  BranchPredictor bp(64);
  loop_mispredicts(bp, 50, 4);  // warmup
  const int miss = loop_mispredicts(bp, 50, 20);
  // History (8 bits) cannot disambiguate the exit of a trip-50 loop.
  EXPECT_GE(miss, 19);
  EXPECT_LE(miss, 21);
}

TEST(LocalHistory, AlternatingPatternLearned) {
  BranchPredictor bp(64);
  for (int i = 0; i < 32; ++i) bp.update(9, (i % 2) == 0);  // warmup
  int miss = 0;
  for (int i = 0; i < 100; ++i) {
    if (!bp.update(9, (i % 2) == 0)) ++miss;
  }
  EXPECT_EQ(miss, 0);
}

TEST(Predictor, TableIndexWraps) {
  BranchPredictor bp(16, PredictorKind::TwoBit);
  for (int i = 0; i < 10; ++i) bp.update(0, true);
  EXPECT_TRUE(bp.predict(16));  // aliases entry 0
}

TEST(Predictor, NonPowerOfTwoRejected) {
  EXPECT_THROW(BranchPredictor(100), std::invalid_argument);
  EXPECT_THROW(BranchPredictor(100, PredictorKind::TwoBit),
               std::invalid_argument);
}

TEST(Predictor, ResetRestoresColdState) {
  for (auto kind : {PredictorKind::TwoBit, PredictorKind::LocalHistory}) {
    BranchPredictor bp(64, kind);
    for (int i = 0; i < 10; ++i) bp.update(7, true);
    bp.reset();
    EXPECT_FALSE(bp.predict(7));
  }
}

TEST(Predictor, KindIsReported) {
  EXPECT_EQ(BranchPredictor(64).kind(), PredictorKind::LocalHistory);
  EXPECT_EQ(BranchPredictor(64, PredictorKind::TwoBit).kind(),
            PredictorKind::TwoBit);
}
