// History-table tests: the measurement half of the feedback planner.
//
// The contracts pinned here are the ones the planner's blending and the
// cache's epoch-driven replanning lean on: aggregates must be exact and
// deterministic under a many-thread recording hammer (seqlock lookups may
// never observe a torn snapshot), equivalent execution shapes must fold
// into exactly one entry, injected skew must reset the aggregate to the
// recent window (drift invalidation), the epoch must advance exactly on
// threshold crossings and invalidations, and explore_rate == 0 must
// provably never deviate from the planned path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "runtime/batch_engine.h"
#include "runtime/history.h"
#include "runtime/orchestration_cache.h"

using namespace subword;
using runtime::BatchEngine;
using runtime::HistoryKey;
using runtime::HistoryTable;
using runtime::KernelJob;
using runtime::ScoreSource;

namespace {

HistoryKey sim_key(const std::string& kernel, int suffix) {
  HistoryKey k;
  k.kernel = kernel;
  k.repeats = suffix;
  k.use_spu = true;
  k.mode = kernels::SpuMode::Auto;
  k.backend = kernels::ExecBackend::kSimulator;
  k.input_ports = 4;
  k.output_ports = 2;
  k.port_bits = 128;
  return k;
}

KernelJob auto_job(const std::string& name, int repeats) {
  KernelJob j;
  j.kernel = name;
  j.repeats = repeats;
  j.use_spu = true;
  j.mode = kernels::SpuMode::Auto;
  j.cfg = core::kConfigA;
  return j;
}

KernelJob planned_job(const std::string& name, int repeats) {
  KernelJob j;
  j.kernel = name;
  j.repeats = repeats;
  j.plan = true;
  return j;
}

}  // namespace

// -- Aggregation --------------------------------------------------------------

TEST(History, WelfordAggregateMatchesDirectComputation) {
  HistoryTable t;
  const HistoryKey key = sim_key("FIR12", 1);
  for (int v = 1; v <= 10; ++v) t.record(key, static_cast<double>(v));

  const auto s = t.lookup(key);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 10u);
  EXPECT_DOUBLE_EQ(s->mean, 5.5);
  // Sample variance of 1..10: sum of squared deviations 82.5 over n-1 = 9.
  EXPECT_NEAR(s->variance, 82.5 / 9.0, 1e-12);
  EXPECT_EQ(s->invalidations, 0u);
  EXPECT_EQ(s->regime(), ScoreSource::kMeasured);
}

TEST(History, LookupOfUnknownKeyIsEmpty) {
  HistoryTable t;
  EXPECT_FALSE(t.lookup(sim_key("FIR12", 1)).has_value());
  EXPECT_EQ(t.size(), 0u);
}

TEST(History, RegimeFollowsSampleThresholds) {
  HistoryTable t;
  const HistoryKey key = sim_key("DCT", 2);
  for (uint64_t n = 1; n <= runtime::kHistoryFullSamples; ++n) {
    t.record(key, 100.0);
    const auto s = t.lookup(key);
    ASSERT_TRUE(s.has_value());
    const ScoreSource want = n >= runtime::kHistoryFullSamples
                                 ? ScoreSource::kMeasured
                             : n >= runtime::kHistoryMinSamples
                                 ? ScoreSource::kBlended
                                 : ScoreSource::kModel;
    EXPECT_EQ(s->regime(), want) << "after " << n << " samples";
  }
}

// -- Key identity -------------------------------------------------------------

TEST(History, BaselineShapesNormalizeToOneKey) {
  // from_shape zeroes mode and crossbar identity for baseline executions —
  // a baseline run is the same measurement no matter which SPU knobs the
  // job happened to carry.
  const auto a = HistoryKey::from_shape("FIR22", 8, /*use_spu=*/false,
                                        kernels::SpuMode::Auto, core::kConfigA,
                                        kernels::ExecBackend::kSimulator);
  const auto b = HistoryKey::from_shape("FIR22", 8, /*use_spu=*/false,
                                        kernels::SpuMode::Manual,
                                        core::kConfigD,
                                        kernels::ExecBackend::kSimulator);
  EXPECT_EQ(a, b);

  HistoryTable t;
  t.record(a, 50.0);
  t.record(b, 50.0);
  EXPECT_EQ(t.size(), 1u);
  const auto s = t.lookup(a);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 2u);
}

TEST(History, BackendsNeverShareAnEntry) {
  // Unit discipline: simulator entries aggregate cycles, native entries
  // wall-ns. One mean must never mix the two.
  auto sim = sim_key("IIR", 4);
  auto native = sim;
  native.backend = kernels::ExecBackend::kNativeSwar;
  HistoryTable t;
  t.record(sim, 1000.0);
  t.record(native, 7.0);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.lookup(sim)->mean, 1000.0);
  EXPECT_DOUBLE_EQ(t.lookup(native)->mean, 7.0);
}

// -- Concurrency --------------------------------------------------------------

TEST(History, ConcurrentHammerAggregatesExactlyAndReadsAreConsistent) {
  // kKeys keys, kThreads writers each folding kPerThread samples into every
  // key. All samples of one key share one value, so at every instant the
  // true mean IS that value and the true variance is zero — any deviation a
  // reader observes can only be a torn snapshot, which is exactly what the
  // seqlock must rule out.
  constexpr int kKeys = 4;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;

  HistoryTable t;
  std::vector<HistoryKey> keys;
  for (int k = 0; k < kKeys; ++k) keys.push_back(sim_key("FIR12", k + 1));
  auto value_of = [](int k) { return 1000.0 * (k + 1); };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> snapshots{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (int k = 0; k < kKeys; ++k) {
          const auto s = t.lookup(keys[k]);
          if (!s.has_value()) continue;
          snapshots.fetch_add(1, std::memory_order_relaxed);
          ASSERT_DOUBLE_EQ(s->mean, value_of(k));
          ASSERT_DOUBLE_EQ(s->variance, 0.0);
          ASSERT_LE(s->count,
                    static_cast<uint64_t>(kThreads) * kPerThread);
          ASSERT_EQ(s->invalidations, 0u);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        for (int k = 0; k < kKeys; ++k) t.record(keys[k], value_of(k));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  EXPECT_GT(snapshots.load(), 0u) << "readers must have raced the writers";
  EXPECT_EQ(t.size(), static_cast<size_t>(kKeys));
  for (int k = 0; k < kKeys; ++k) {
    const auto s = t.lookup(keys[k]);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->count, static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(s->mean, value_of(k));
    EXPECT_DOUBLE_EQ(s->variance, 0.0);
  }
  // Identical windows never drift, so the only epoch movement is the two
  // threshold crossings per key.
  EXPECT_EQ(t.invalidations(), 0u);
  EXPECT_EQ(t.epoch(), 2u * kKeys);
}

// -- Drift --------------------------------------------------------------------

TEST(History, DriftInvalidationResetsAggregateToRecentWindow) {
  HistoryTable t;
  const HistoryKey key = sim_key("DCT", 8);
  // Establish a stable regime (two full windows of 1000), then inject one
  // full window of 2000: the window mean deviates from the polluted
  // aggregate (16*1000 + 8*2000)/24 = 1333.3 by 50% — far past the 25%
  // tolerance — so the aggregate must reset to the window.
  for (int i = 0; i < 16; ++i) t.record(key, 1000.0);
  EXPECT_EQ(t.invalidations(), 0u);
  const uint64_t epoch_before = t.epoch();
  for (int i = 0; i < 8; ++i) t.record(key, 2000.0);

  EXPECT_EQ(t.invalidations(), 1u);
  EXPECT_GT(t.epoch(), epoch_before) << "drift must trigger replanning";
  const auto s = t.lookup(key);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 8u) << "aggregate reset to the recent window";
  EXPECT_DOUBLE_EQ(s->mean, 2000.0);
  EXPECT_DOUBLE_EQ(s->variance, 0.0);
  EXPECT_EQ(s->invalidations, 1u);
  EXPECT_GE(s->drift_watermark, runtime::kHistoryDriftTolerance);
}

TEST(History, StableSamplesNeverDrift) {
  HistoryTable t;
  const HistoryKey key = sim_key("IIR", 1);
  for (int i = 0; i < 64; ++i) t.record(key, 123.0);
  EXPECT_EQ(t.invalidations(), 0u);
  const auto s = t.lookup(key);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 64u);
  EXPECT_DOUBLE_EQ(s->drift_watermark, 0.0);
}

// -- Epoch semantics ----------------------------------------------------------

TEST(History, EpochAdvancesExactlyOnThresholdCrossings) {
  HistoryTable t;
  const HistoryKey key = sim_key("FIR22", 8);
  EXPECT_EQ(t.epoch(), 0u);
  uint64_t bumps = 0;
  for (uint64_t n = 1; n <= 24; ++n) {
    const uint64_t before = t.epoch();
    t.record(key, 500.0);
    if (t.epoch() != before) {
      ++bumps;
      EXPECT_TRUE(n == runtime::kHistoryMinSamples ||
                  n == runtime::kHistoryFullSamples)
          << "unexpected epoch bump at sample " << n;
    }
  }
  EXPECT_EQ(bumps, 2u);
}

TEST(History, ClearResetsEverythingButAdvancesTheEpoch) {
  HistoryTable t;
  const HistoryKey key = sim_key("FIR12", 2);
  for (int i = 0; i < 4; ++i) t.record(key, 10.0);
  const uint64_t epoch_before = t.epoch();
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.lookup(key).has_value());
  EXPECT_GT(t.epoch(), epoch_before)
      << "cached plans computed on the dropped history must be recomputed";
}

// -- Engine integration -------------------------------------------------------

TEST(HistoryEngine, FixedConfigJobsFoldIntoExactlyOneEntry) {
  BatchEngine engine({.workers = 4, .cache = nullptr});
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back(auto_job("FIR12", 1));
  const auto results = engine.run_batch(jobs);
  ASSERT_EQ(results.size(), 12u);
  for (const auto& r : results) ASSERT_TRUE(r.ok) << r.error;

  const auto& hist = engine.cache().history();
  EXPECT_EQ(hist.size(), 1u) << "identical shapes share one history entry";
  const auto key = HistoryKey::from_shape(
      "FIR12", 1, /*use_spu=*/true, kernels::SpuMode::Auto, core::kConfigA,
      kernels::ExecBackend::kSimulator);
  const auto s = hist.lookup(key);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->count, 12u);
  // The simulator is deterministic: twelve runs of one shape must report
  // one cycle count, so the aggregate is exact.
  ASSERT_TRUE(results[0].run.stats.has_cycles);
  EXPECT_DOUBLE_EQ(s->mean,
                   static_cast<double>(results[0].run.stats.cycles));
  EXPECT_DOUBLE_EQ(s->variance, 0.0);
  EXPECT_EQ(engine.stats().cache.history_entries, 1u);
}

// -- Exploration --------------------------------------------------------------

TEST(Explore, RateZeroNeverDeviatesFromThePlannedPath) {
  // The default engine must be provably plan-faithful: with
  // explore_rate == 0 no job may ever execute the runner-up shape, no
  // matter how much history accumulates or how many replans happen.
  BatchEngine engine({.workers = 2, .cache = nullptr});
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 24; ++i) jobs.push_back(planned_job("FIR22", 8));
  const auto results = engine.run_batch(jobs);
  ASSERT_EQ(results.size(), 24u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_NE(r.plan, nullptr);
    EXPECT_FALSE(r.explored);
  }
}

TEST(Explore, SessionSurfacesExploredAndDefaultsToNever) {
  api::Session session({.workers = 2, .cache = nullptr});
  for (int i = 0; i < 8; ++i) {
    auto r = session.request("FIR22").repeats(8).auto_plan().run();
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_FALSE(r->explored);
  }
}

TEST(Explore, RateOneAlwaysRunsTheRunnerUp) {
  // With a cold cache the FIR22 plan picks an SPU shape and nominates the
  // baseline as runner-up (the baseline anchors every future blend), so at
  // explore_rate == 1 every planned job must deviate — and still verify.
  BatchEngine engine({.workers = 1, .cache = nullptr, .explore_rate = 1.0});
  std::vector<KernelJob> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(planned_job("FIR22", 8));
  const auto results = engine.run_batch(jobs);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_NE(r.plan, nullptr);
    EXPECT_TRUE(r.explored);
    EXPECT_TRUE(r.run.verified) << "explored shapes stay bit-exact";
  }
}

TEST(Explore, SamplingIsDeterministicAcrossIdenticalEngines) {
  // The explore decision hashes a per-engine counter, not wall-clock
  // entropy: two engines fed the same sequential job stream must explore
  // the same subset.
  auto pattern_of = [] {
    BatchEngine engine(
        {.workers = 1, .cache = nullptr, .explore_rate = 0.5});
    std::vector<bool> pattern;
    for (int i = 0; i < 16; ++i) {
      auto r = engine.submit(planned_job("FIR22", 8)).get();
      EXPECT_TRUE(r.ok) << r.error;
      pattern.push_back(r.explored);
    }
    return pattern;
  };
  const auto a = pattern_of();
  const auto b = pattern_of();
  EXPECT_EQ(a, b);
}
