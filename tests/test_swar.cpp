// Unit tests for the SWAR library: every MMX data operation against
// hand-computed Intel SDM examples, plus edge cases (saturation bounds,
// carry isolation, shift counts >= lane width, PMADDWD's wrap case).
#include <gtest/gtest.h>

#include "swar/swar.h"

namespace sw = subword::swar;
namespace port = subword::swar::portable;
using sw::Vec64;

TEST(Vec64, LaneRoundTrip) {
  Vec64 v;
  v.set_lane<uint16_t>(0, 0x1111);
  v.set_lane<uint16_t>(1, 0x2222);
  v.set_lane<uint16_t>(2, 0x3333);
  v.set_lane<uint16_t>(3, 0x4444);
  EXPECT_EQ(v.bits(), 0x4444333322221111ull);
  EXPECT_EQ(v.lane<uint16_t>(2), 0x3333);
  EXPECT_EQ(v.byte(0), 0x11);
  EXPECT_EQ(v.byte(7), 0x44);
}

TEST(Vec64, SignedLanes) {
  Vec64 v;
  v.set_lane<int16_t>(1, -2);
  EXPECT_EQ(v.lane<int16_t>(1), -2);
  EXPECT_EQ(v.lane<uint16_t>(1), 0xFFFE);
}

TEST(Vec64, BroadcastAndToLanes) {
  const auto v = Vec64::broadcast<int16_t>(-1);
  EXPECT_EQ(v.bits(), ~0ull);
  const auto lanes = v.to_lanes<int16_t>();
  for (const auto l : lanes) EXPECT_EQ(l, -1);
}

TEST(Vec64, ToHex) {
  EXPECT_EQ(sw::to_hex(Vec64{0x0123456789ABCDEFull}), "0x0123456789abcdef");
}

// --- carry-chain isolation ---------------------------------------------------

TEST(PortableAdd, CarriesDoNotCrossLaneBoundaries) {
  // 0xFF + 1 in lane 0 must not carry into lane 1 (the hardware breaks the
  // carry chain at sub-word boundaries).
  Vec64 a, b;
  a.set_lane<uint8_t>(0, 0xFF);
  b.set_lane<uint8_t>(0, 0x01);
  a.set_lane<uint8_t>(1, 0x10);
  const auto r = port::add<uint8_t>(a, b);
  EXPECT_EQ(r.lane<uint8_t>(0), 0x00);
  EXPECT_EQ(r.lane<uint8_t>(1), 0x10);
}

TEST(PortableSub, BorrowsDoNotCrossLaneBoundaries) {
  Vec64 a, b;
  a.set_lane<uint16_t>(0, 0x0000);
  b.set_lane<uint16_t>(0, 0x0001);
  a.set_lane<uint16_t>(1, 0x5555);
  const auto r = port::sub<uint16_t>(a, b);
  EXPECT_EQ(r.lane<uint16_t>(0), 0xFFFF);
  EXPECT_EQ(r.lane<uint16_t>(1), 0x5555);
}

// --- saturation ---------------------------------------------------------------

TEST(Saturate, SignedAddBounds) {
  Vec64 a = Vec64::broadcast<int16_t>(32000);
  Vec64 b = Vec64::broadcast<int16_t>(2000);
  EXPECT_EQ(port::add_sat<int16_t>(a, b).lane<int16_t>(0), 32767);
  a = Vec64::broadcast<int16_t>(-32000);
  b = Vec64::broadcast<int16_t>(-2000);
  EXPECT_EQ(port::add_sat<int16_t>(a, b).lane<int16_t>(0), -32768);
}

TEST(Saturate, UnsignedSubClampsAtZero) {
  const auto a = Vec64::broadcast<uint8_t>(10);
  const auto b = Vec64::broadcast<uint8_t>(20);
  EXPECT_EQ(port::sub_sat<uint8_t>(a, b).lane<uint8_t>(0), 0);
}

TEST(Saturate, UnsignedAddClampsAtMax) {
  const auto a = Vec64::broadcast<uint16_t>(60000);
  const auto b = Vec64::broadcast<uint16_t>(60000);
  EXPECT_EQ(port::add_sat<uint16_t>(a, b).lane<uint16_t>(0), 65535);
}

// --- multiplies ----------------------------------------------------------------

TEST(Multiply, MulloMulhi) {
  const auto a = Vec64::broadcast<int16_t>(-3);
  const auto b = Vec64::broadcast<int16_t>(1000);
  EXPECT_EQ(port::mullo16(a, b).lane<int16_t>(0),
            static_cast<int16_t>(-3000));
  EXPECT_EQ(port::mulhi16(a, b).lane<int16_t>(0), -1);  // -3000 >> 16
}

TEST(Multiply, MaddwdPairsProducts) {
  Vec64 a, b;
  a.set_lane<int16_t>(0, 100);
  a.set_lane<int16_t>(1, -50);
  a.set_lane<int16_t>(2, 7);
  a.set_lane<int16_t>(3, 9);
  b.set_lane<int16_t>(0, 3);
  b.set_lane<int16_t>(1, 2);
  b.set_lane<int16_t>(2, -1);
  b.set_lane<int16_t>(3, 4);
  const auto r = port::maddwd(a, b);
  EXPECT_EQ(r.lane<int32_t>(0), 100 * 3 + (-50) * 2);
  EXPECT_EQ(r.lane<int32_t>(1), 7 * -1 + 9 * 4);
}

TEST(Multiply, MaddwdOverflowWrapsLikeHardware) {
  // (-32768 * -32768) * 2 = 0x80000000 on hardware (the documented wrap).
  const auto a = Vec64::broadcast<int16_t>(-32768);
  const auto r = port::maddwd(a, a);
  EXPECT_EQ(r.lane<uint32_t>(0), 0x80000000u);
}

// --- compares -------------------------------------------------------------------

TEST(Compare, EqAndGtMasks) {
  Vec64 a, b;
  a.set_lane<int16_t>(0, 5);
  b.set_lane<int16_t>(0, 5);
  a.set_lane<int16_t>(1, -1);
  b.set_lane<int16_t>(1, 1);
  const auto eq = port::cmpeq<uint16_t>(a, b);
  EXPECT_EQ(eq.lane<uint16_t>(0), 0xFFFF);
  EXPECT_EQ(eq.lane<uint16_t>(1), 0x0000);
  const auto gt = port::cmpgt<int16_t>(b, a);
  EXPECT_EQ(gt.lane<uint16_t>(1), 0xFFFF);  // 1 > -1 signed
  EXPECT_EQ(gt.lane<uint16_t>(0), 0x0000);
}

// --- logical ---------------------------------------------------------------------

TEST(Logical, AndnIsNotDstAndSrc) {
  const Vec64 a{0xF0F0F0F0F0F0F0F0ull};
  const Vec64 b{0xFFFFFFFFFFFFFFFFull};
  EXPECT_EQ(port::andn(a, b).bits(), 0x0F0F0F0F0F0F0F0Full);
}

// --- shifts ----------------------------------------------------------------------

TEST(Shift, PerLaneLogical) {
  const auto a = Vec64::broadcast<uint16_t>(0x8001);
  EXPECT_EQ(port::shl<uint16_t>(a, 1).lane<uint16_t>(0), 0x0002);
  EXPECT_EQ(port::shr_logical<uint16_t>(a, 1).lane<uint16_t>(0), 0x4000);
}

TEST(Shift, ArithmeticPreservesSign) {
  const auto a = Vec64::broadcast<int16_t>(-4);
  EXPECT_EQ(port::shr_arith<int16_t>(a, 1).lane<int16_t>(0), -2);
}

TEST(Shift, CountAtOrAboveWidth) {
  const auto a = Vec64::broadcast<uint16_t>(0xFFFF);
  EXPECT_EQ(port::shl<uint16_t>(a, 16).bits(), 0u);
  EXPECT_EQ(port::shr_logical<uint16_t>(a, 200).bits(), 0u);
  // Arithmetic right shift fills with the sign bit instead.
  const auto s = Vec64::broadcast<int16_t>(-1);
  EXPECT_EQ(port::shr_arith<int16_t>(s, 16).lane<int16_t>(0), -1);
  const auto p = Vec64::broadcast<int16_t>(12345);
  EXPECT_EQ(port::shr_arith<int16_t>(p, 99).lane<int16_t>(0), 0);
}

// --- pack / unpack ------------------------------------------------------------------

TEST(Pack, SswbSaturatesBothHalves) {
  Vec64 a, b;
  a.set_lane<int16_t>(0, 300);    // -> 127
  a.set_lane<int16_t>(1, -300);   // -> -128
  a.set_lane<int16_t>(2, 5);
  a.set_lane<int16_t>(3, -5);
  b.set_lane<int16_t>(0, 1);
  b.set_lane<int16_t>(1, 2);
  b.set_lane<int16_t>(2, 3);
  b.set_lane<int16_t>(3, 4);
  const auto r = port::pack_sswb(a, b);
  EXPECT_EQ(r.lane<int8_t>(0), 127);
  EXPECT_EQ(r.lane<int8_t>(1), -128);
  EXPECT_EQ(r.lane<int8_t>(2), 5);
  EXPECT_EQ(r.lane<int8_t>(3), -5);
  EXPECT_EQ(r.lane<int8_t>(4), 1);
  EXPECT_EQ(r.lane<int8_t>(7), 4);
}

TEST(Pack, UswbClampsNegativeToZero) {
  Vec64 a;
  a.set_lane<int16_t>(0, -5);
  a.set_lane<int16_t>(1, 300);
  const auto r = port::pack_uswb(a, a);
  EXPECT_EQ(r.lane<uint8_t>(0), 0);
  EXPECT_EQ(r.lane<uint8_t>(1), 255);
}

TEST(Unpack, WordInterleaveMatchesFigure2) {
  // Paper Figure 2: punpcklwd interleaves the low words of dst and src.
  Vec64 a, b;  // a = [A0 A1 A2 A3], b = [B0 B1 B2 B3]
  for (int i = 0; i < 4; ++i) {
    a.set_lane<uint16_t>(i, static_cast<uint16_t>(0xA0 + i));
    b.set_lane<uint16_t>(i, static_cast<uint16_t>(0xB0 + i));
  }
  const auto lo = port::unpack_lo<uint16_t>(a, b);
  EXPECT_EQ(lo.lane<uint16_t>(0), 0xA0);
  EXPECT_EQ(lo.lane<uint16_t>(1), 0xB0);
  EXPECT_EQ(lo.lane<uint16_t>(2), 0xA1);
  EXPECT_EQ(lo.lane<uint16_t>(3), 0xB1);
  const auto hi = port::unpack_hi<uint16_t>(a, b);
  EXPECT_EQ(hi.lane<uint16_t>(0), 0xA2);
  EXPECT_EQ(hi.lane<uint16_t>(1), 0xB2);
  EXPECT_EQ(hi.lane<uint16_t>(2), 0xA3);
  EXPECT_EQ(hi.lane<uint16_t>(3), 0xB3);
}

TEST(Unpack, ByteAndDwordForms) {
  Vec64 a{0x0807060504030201ull};
  Vec64 b{0xF8F7F6F5F4F3F2F1ull};
  EXPECT_EQ(port::unpack_lo<uint8_t>(a, b).bits(), 0xF404F303F202F101ull);
  EXPECT_EQ(port::unpack_hi<uint8_t>(a, b).bits(), 0xF808F707F606F505ull);
  EXPECT_EQ(port::unpack_lo<uint32_t>(a, b).bits(), 0xF4F3F2F104030201ull);
  EXPECT_EQ(port::unpack_hi<uint32_t>(a, b).bits(), 0xF8F7F6F508070605ull);
}
