// Tests for the SPU setup-code emitters and the end-to-end programming
// path at the default (high) window address.
#include <gtest/gtest.h>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "sim/machine.h"

using namespace subword;
using namespace subword::core;
using namespace subword::isa;

TEST(Setup, BaseRegisterLowAddress) {
  Assembler a;
  emit_spu_base(a, 0x1000);
  a.halt();
  sim::Machine m(a.take(), 1 << 12);
  m.run();
  EXPECT_EQ(m.gp().read(kSpuBaseReg), 0x1000u);
}

TEST(Setup, BaseRegisterHighAddressAssembledFromParts) {
  // 0xF0000000 does not fit a positive int32 immediate; the emitter
  // shifts it together.
  Assembler a;
  emit_spu_base(a, SpuMmio::kDefaultBase);
  a.halt();
  sim::Machine m(a.take(), 1 << 12);
  m.run();
  EXPECT_EQ(m.gp().read(kSpuBaseReg), SpuMmio::kDefaultBase);
}

TEST(Setup, WordsCostTwoInstructionsEach) {
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.seal_simple_loop(3);
  const auto words = mb.mmio_words();
  Assembler a;
  emit_spu_words(a, words);
  EXPECT_EQ(a.size(), setup_instruction_count(words.size()));
}

TEST(Setup, GoAndStopEncodeContextBits) {
  Assembler a;
  emit_spu_base(a, 0x1000);
  emit_spu_go(a, 3);
  emit_spu_stop(a, 3);
  a.halt();
  sim::Machine m(a.take(), 1 << 12);
  Spu spu(kConfigA, 4);
  // Context 3 needs a valid microprogram for GO to succeed.
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.seal_simple_loop(1);
  spu.context(3) = mb.program();
  SpuMmio mmio(&spu);
  m.memory().map_device(0x1000, SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  m.run();
  // GO selected context 3 and activated; the stop write deactivated.
  EXPECT_EQ(spu.selected_context(), 3);
  EXPECT_FALSE(spu.active());
  EXPECT_EQ(spu.run_stats().activations, 1u);
}

TEST(Setup, StraightWordSkippingShrinksTheStream) {
  MicroBuilder mb(kConfigA);
  Route r;
  std::array<uint8_t, 8> srcs{{0, 1, 2, 3, 4, 5, 6, 7}};
  r.set_operand(sim::Pipe::U, 0, srcs);  // only 2 of 8 route words non-FF
  mb.add_state(r);
  mb.add_straight_state();
  mb.seal_simple_loop(1);
  const auto sparse = mb.mmio_words(false);
  const auto full = mb.mmio_words(true);
  EXPECT_LT(sparse.size(), full.size());
  // Full stream: 2 counters + per state (1 control + 8 route words).
  EXPECT_EQ(full.size(), 2u + 2u * 9u);
}

TEST(Disasm, EveryOpcodeRendersNonEmpty) {
  for (int i = 0; i < kOpCount; ++i) {
    Inst in;
    in.op = static_cast<Op>(i);
    in.dst = 1;
    in.src = 2;
    in.base = 3;
    in.disp = 4;
    in.target = 5;
    const auto text = disassemble(in);
    EXPECT_FALSE(text.empty()) << i;
    EXPECT_NE(text.find(op_info(in.op).name), std::string::npos) << i;
  }
}
