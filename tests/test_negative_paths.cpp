// Negative paths: malformed programs must be rejected with *typed* errors
// at every entry point — simulator, native lowering, orchestrator, parser —
// never with an assert, UB, or silent misexecution. This is the adversarial
// counterpart of the fuzz corpus: each test hand-builds one specific
// malformation and pins down the exception type (and, for LoweringError,
// the attached context) at each boundary that sees it.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "backend/lowering.h"
#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/orchestrator.h"
#include "core/setup.h"
#include "core/spu.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "isa/parse.h"
#include "sim/machine.h"

namespace subword {
namespace {

constexpr size_t kMem = 1u << 16;

backend::LoweringSpec spec_for(core::CrossbarConfig cfg, bool use_spu) {
  backend::LoweringSpec spec;
  spec.cfg = cfg;
  spec.use_spu = use_spu;
  spec.mem_bytes = kMem;
  spec.max_ops = 1u << 16;
  return spec;
}

// --- unterminated control flow ----------------------------------------------

TEST(NegativePaths, UnterminatedLoopHitsTypedCycleLimit) {
  isa::Assembler a;
  a.label("spin");
  a.jmp("spin");
  const isa::Program p = a.take();

  sim::PipelineConfig cfg;
  cfg.max_cycles = 1u << 12;
  sim::Machine m(p, kMem, cfg);
  EXPECT_THROW(m.run(), std::runtime_error);

  // The native walker hits its own dynamic-stream guard, with context.
  try {
    (void)backend::lower(p, spec_for(core::kConfigA, false));
    FAIL() << "expected LoweringError";
  } catch (const backend::LoweringError& e) {
    EXPECT_GE(e.op_index(), 0);
    EXPECT_FALSE(e.instruction().empty());
    EXPECT_EQ(e.config(), "A");
  }
}

TEST(NegativePaths, MissingHaltRunsOffTheProgram) {
  isa::Assembler a;
  a.nop();
  a.nop();
  const isa::Program p = a.take();

  sim::Machine m(p, kMem);
  EXPECT_THROW(m.run(), std::runtime_error);
  EXPECT_THROW((void)backend::lower(p, spec_for(core::kConfigA, false)),
               backend::LoweringError);
}

TEST(NegativePaths, EmptyProgramIsRejectedAtConstruction) {
  const isa::Program p;
  EXPECT_THROW(sim::Machine(p, kMem), std::invalid_argument);
}

// --- out-of-range memory ----------------------------------------------------

TEST(NegativePaths, OutOfRangeAccessThrowsOutOfRange) {
  isa::Assembler a;
  a.li(isa::R2, 1 << 20);  // far beyond the 64 KiB arena
  a.movq_load(isa::MM0, isa::R2, 0);
  a.halt();
  const isa::Program p = a.take();

  sim::Machine m(p, kMem);
  EXPECT_THROW(m.run(), std::out_of_range);
  // The walker rejects the same access at lowering time.
  EXPECT_THROW((void)backend::lower(p, spec_for(core::kConfigA, false)),
               backend::LoweringError);
}

TEST(NegativePaths, NonWordAccessToMmioWindowIsTyped) {
  // A movq (64-bit) store into the SPU window: the device only speaks
  // 32-bit words. The simulator's memory rejects it (the window sits far
  // outside the arena), the lowering walker bails with context.
  isa::Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  a.movq_store(core::kSpuBaseReg, 0, isa::MM0);
  a.halt();
  const isa::Program p = a.take();

  core::Spu spu(core::kConfigA, 1);
  core::SpuMmio mmio(&spu);
  sim::Machine m(p, kMem);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  EXPECT_THROW(m.run(), std::out_of_range);

  try {
    (void)backend::lower(p, spec_for(core::kConfigA, true));
    FAIL() << "expected LoweringError";
  } catch (const backend::LoweringError& e) {
    EXPECT_GE(e.op_index(), 0);
    EXPECT_EQ(e.instruction(), isa::disassemble(p.at(2)));
  }
}

// --- crossbar / SPU malformations -------------------------------------------

// Route only the U pipe slice: legal per the crossbar configuration (the
// simulator models the executing pipe), but the native backend cannot — it
// must reject, not guess.
TEST(NegativePaths, AsymmetricUVRouteIsRejectedByLoweringOnly) {
  core::Route route;
  std::array<uint8_t, core::kOperandBytes> srcs{};
  for (int i = 0; i < core::kOperandBytes; ++i) {
    srcs[static_cast<size_t>(i)] = static_cast<uint8_t>(i);  // MM0's bytes
  }
  route.set_operand(sim::Pipe::U, 1, srcs);  // U only — V stays straight

  core::MicroBuilder mb(core::kConfigA);
  mb.add_state(route);   // body: paddw (routed)
  mb.add_straight_state();  // body: loopnz
  mb.seal_simple_loop(4);

  isa::Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  core::emit_spu_stop(a, 0);
  core::emit_spu_words(a, mb.mmio_words());
  a.li(isa::R0, 4);
  core::emit_spu_go(a, 0);
  a.label("loop");
  a.paddw(isa::MM2, isa::MM1);
  a.loopnz(isa::R0, "loop");
  a.halt();
  const isa::Program p = a.take();

  // The simulator executes it fine (the route is config-valid)...
  core::Spu spu(core::kConfigA, 1);
  core::SpuMmio mmio(&spu);
  sim::Machine m(p, kMem);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  EXPECT_NO_THROW(m.run());

  // ...while the native tier refuses with a typed, contextual error.
  try {
    (void)backend::lower(p, spec_for(core::kConfigA, true));
    FAIL() << "expected LoweringError";
  } catch (const backend::LoweringError& e) {
    EXPECT_GE(e.op_index(), 0);
    EXPECT_EQ(e.config(), "A");
  }
}

// Program a route byte addressing outside the configuration's input window
// through raw MMIO stores (MicroBuilder would refuse to build it). The GO
// write must throw a typed error in the simulator and a LoweringError in
// the native walker — never activate a corrupt microprogram.
TEST(NegativePaths, OutOfWindowCrossbarLaneIsRejectedAtGo) {
  isa::Assembler a;
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  core::emit_spu_stop(a, 0);
  // State 0, route word 0: selector 60 in byte 0 — config D's input window
  // is 32 bytes (MM0..MM3), so 60 is out of range.
  a.li(core::kSpuScratchReg, static_cast<int32_t>(0xFFFFFF3Cu));
  a.st32(core::kSpuBaseReg, core::SpuMmio::kStateBase + 4,
         core::kSpuScratchReg);
  core::emit_spu_go(a, 0);
  a.nop();
  a.halt();
  const isa::Program p = a.take();

  core::Spu spu(core::kConfigD, 1);
  core::SpuMmio mmio(&spu);
  sim::Machine m(p, kMem);
  m.memory().map_device(core::SpuMmio::kDefaultBase,
                        core::SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  EXPECT_THROW(m.run(), std::logic_error);

  try {
    (void)backend::lower(p, spec_for(core::kConfigD, true));
    FAIL() << "expected LoweringError";
  } catch (const backend::LoweringError& e) {
    EXPECT_GE(e.op_index(), 0);
    EXPECT_NE(std::string(e.what()).find("SPU"), std::string::npos)
        << e.what();
  }
}

TEST(NegativePaths, MicroBuilderRefusesConfigViolatingRoutes) {
  core::Route route;
  std::array<uint8_t, core::kOperandBytes> srcs{};
  srcs.fill(63);  // MM7's top byte — outside config B's MM0..MM3 window
  route.set_operand_both_pipes(1, srcs);
  core::MicroBuilder mb(core::kConfigB);
  EXPECT_THROW(mb.add_state(route), std::logic_error);
}

// --- orchestrator entry point -----------------------------------------------

TEST(NegativePaths, OrchestratorRejectsReservedRegisterUse) {
  for (const uint8_t reg : {core::kSpuBaseReg, core::kSpuScratchReg}) {
    isa::Assembler a;
    a.li(reg, 5);
    a.halt();
    const isa::Program p = a.take();
    core::Orchestrator orch;
    EXPECT_THROW((void)orch.run(p), std::logic_error) << int(reg);
  }
}

// --- parser entry point -----------------------------------------------------

TEST(NegativePaths, ParserRejectsMalformedTextWithTypedErrors) {
  EXPECT_THROW((void)isa::parse_inst("frobnicate mm0, mm1"),
               isa::ParseError);
  EXPECT_THROW((void)isa::parse_inst("paddw mm0"), isa::ParseError);
  EXPECT_THROW((void)isa::parse_inst("paddw r0, r1"), isa::ParseError);
  EXPECT_THROW((void)isa::parse_inst("movq mm0, [r99]"), isa::ParseError);
  EXPECT_THROW((void)isa::parse_inst("li r2, banana"), isa::ParseError);
  // Branch target past the end of the listing.
  EXPECT_THROW((void)isa::parse_program("jmp @7\nhalt\n"), isa::ParseError);
  // Duplicate label.
  EXPECT_THROW((void)isa::parse_program("x:\nnop\nx:\nhalt\n"),
               isa::ParseError);
  // Line numbers are attached for diagnostics.
  try {
    (void)isa::parse_program("nop\nbogus mm0\nhalt\n");
    FAIL() << "expected ParseError";
  } catch (const isa::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
  }
}

// --- assembler entry point --------------------------------------------------

TEST(NegativePaths, AssemblerRejectsUndefinedAndDuplicateLabels) {
  {
    isa::Assembler a;
    a.jmp("nowhere");
    a.halt();
    EXPECT_THROW((void)a.take(), std::logic_error);
  }
  {
    isa::Assembler a;
    a.label("twice");
    a.nop();
    EXPECT_THROW(a.label("twice"), std::logic_error);
  }
}

}  // namespace
}  // namespace subword
