// SPU kernel tests: the hand-written MMX+SPU variants must (a) verify
// bit-exactly, (b) remove permutation work, (c) run faster than baseline
// even with the longer pipeline, and (d) be realizable under configuration
// D (the paper's claim in §5.1.1).
#include <gtest/gtest.h>

#include "kernels/registry.h"
#include "kernels/runner.h"

using namespace subword::kernels;
using subword::core::kConfigA;
using subword::core::kConfigD;

namespace {

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : all_kernels()) names.push_back(k->name());
  return names;
}

}  // namespace

class SpuKernel : public ::testing::TestWithParam<std::string> {};

TEST_P(SpuKernel, ManualVariantVerifies) {
  const auto k = make_kernel(GetParam());
  const auto run = run_spu(*k, 1, kConfigA, SpuMode::Manual);
  EXPECT_TRUE(run.verified) << k->name();
  EXPECT_GT(run.stats.spu_routed_ops, 0u) << k->name();
  EXPECT_GT(run.stats.spu_mmio_stores, 0u) << k->name();
}

TEST_P(SpuKernel, RealizableUnderConfigD) {
  // "All the applications used in this paper can be realized with
  // configuration D" — the microprograms must validate and verify.
  const auto k = make_kernel(GetParam());
  const auto run = run_spu(*k, 1, kConfigD, SpuMode::Manual);
  EXPECT_TRUE(run.verified) << k->name();
}

TEST_P(SpuKernel, RemovesPermutationWork) {
  const auto k = make_kernel(GetParam());
  const auto base = run_baseline(*k, 2);
  const auto spu = run_spu(*k, 2, kConfigA, SpuMode::Manual);
  EXPECT_LT(spu.stats.mmx_permutation, base.stats.mmx_permutation)
      << k->name();
}

TEST_P(SpuKernel, SpeedsUpDespiteExtraPipelineStage) {
  const auto k = make_kernel(GetParam());
  const int repeats = 4;
  const auto base = run_baseline(*k, repeats);
  const auto spu = run_spu(*k, repeats, kConfigA, SpuMode::Manual);
  EXPECT_LT(spu.stats.cycles, base.stats.cycles) << k->name();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SpuKernel,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == ' ') ch = '_';
                           }
                           return n;
                         });

TEST(SpuSpeedups, Figure9ShapeHolds) {
  // The qualitative Figure 9 result: FFT/IIR benefit least, the matrix
  // kernels (inter-word bound) benefit most.
  const int repeats = 3;
  auto speedup = [&](const char* name) {
    const auto k = make_kernel(name);
    const auto base = run_baseline(*k, repeats);
    const auto spu = run_spu(*k, repeats, kConfigA, SpuMode::Manual);
    EXPECT_TRUE(spu.verified) << name;
    return static_cast<double>(base.stats.cycles) /
           static_cast<double>(spu.stats.cycles);
  };
  const double iir = speedup("IIR");
  const double transpose = speedup("Matrix Transpose");
  const double dct = speedup("DCT");
  EXPECT_GT(transpose, iir);
  EXPECT_GT(dct, iir);
  // All within the paper's plausible band (no slowdown, < ~40%).
  for (double s : {iir, transpose, dct}) {
    EXPECT_GE(s, 1.0);
    EXPECT_LT(s, 1.45);
  }
}
