// Adversarial program fuzzing: the randomized ISA differential harness.
//
// These tests pin the three layers of src/fuzz down: the generator only
// emits well-formed programs (the simulator reference always completes),
// the differential oracle finds no unexplained divergence between the
// simulator and the native tier across the orchestration matrix, and the
// minimizer shrinks a genuinely diverging program (via the test-only
// lowering fault) to an eyeball-sized reproducer without losing the
// divergence. LoweringError context (op index, disassembled instruction,
// crossbar config) is asserted here too, since the fuzz reports depend on
// it.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>

#include "backend/lowering.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/minimizer.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace subword {
namespace {

using fuzz::DiffResult;
using fuzz::FuzzProgram;
using fuzz::GeneratorOptions;

// Restores fault injection on every exit path.
struct FaultInjectionGuard {
  explicit FaultInjectionGuard(bool enabled) {
    backend::set_lowering_fault_injection(enabled);
  }
  ~FaultInjectionGuard() { backend::set_lowering_fault_injection(false); }
};

GeneratorOptions corpus_options(uint64_t seed) {
  GeneratorOptions g;
  g.seed = seed;
  g.cfg = core::kAllConfigs[seed % core::kAllConfigs.size()];
  g.reject_rate = 0.15;
  return g;
}

TEST(FuzzGenerator, DeterministicInTheSeed) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const FuzzProgram a = fuzz::generate(corpus_options(seed));
    const FuzzProgram b = fuzz::generate(corpus_options(seed));
    EXPECT_EQ(isa::disassemble(a.program), isa::disassemble(b.program));
    EXPECT_EQ(a.input_bytes, b.input_bytes);
    EXPECT_EQ(a.use_spu, b.use_spu);
    EXPECT_EQ(a.expects_reject, b.expects_reject);
  }
}

TEST(FuzzGenerator, ProgramsAreWellFormed) {
  // Every generated program must halt cleanly on the simulator — the
  // reference run is the anchor everything else is compared against.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    const FuzzProgram fp = fuzz::generate(corpus_options(seed));
    ASSERT_FALSE(fp.program.empty());
    const DiffResult r = fuzz::run_differential(fp);
    EXPECT_TRUE(r.reference_ok)
        << "seed " << seed << ": " << r.reference_error;
  }
}

// The headline property: a bounded seeded corpus through the whole
// orchestration matrix with zero unexplained divergences. CI runs a larger
// corpus through the fuzz_driver binary; this keeps the property pinned in
// the default test suite.
TEST(FuzzDifferential, SeededCorpusHasNoDivergences) {
  int rejections = 0;
  int runs = 0;
  for (uint64_t seed = 1; seed <= 150; ++seed) {
    const FuzzProgram fp = fuzz::generate(corpus_options(seed));
    const DiffResult r = fuzz::run_differential(fp);
    ASSERT_TRUE(r.reference_ok)
        << "seed " << seed << ": " << r.reference_error;
    runs += r.runs;
    rejections += static_cast<int>(r.rejections.size());
    for (const auto& d : r.divergences) {
      ADD_FAILURE() << "seed " << seed << " [" << fuzz::to_string(d.label)
                    << "]: " << d.detail;
    }
    if (fp.expects_reject) {
      EXPECT_FALSE(r.rejections.empty())
          << "seed " << seed
          << ": planted data-dependent branch was not rejected";
    }
  }
  // The matrix actually ran (reference + native + 4 configs x 2 tiers for
  // non-SPU programs), and the reject-plant corpus produced typed
  // rejections rather than silence.
  EXPECT_GT(runs, 150 * 2);
  EXPECT_GT(rejections, 0);
}

TEST(FuzzDifferential, SpuProgramsAreCovered) {
  // Force the SPU path: manual MMIO prologues with routed operand fetches
  // must agree between the simulator and the native lowering.
  int spu_programs = 0;
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    GeneratorOptions g = corpus_options(seed);
    g.spu_rate = 1.0;
    const FuzzProgram fp = fuzz::generate(g);
    ASSERT_TRUE(fp.use_spu);
    ++spu_programs;
    const DiffResult r = fuzz::run_differential(fp);
    ASSERT_TRUE(r.reference_ok)
        << "seed " << seed << ": " << r.reference_error;
    for (const auto& d : r.divergences) {
      ADD_FAILURE() << "seed " << seed << " [" << fuzz::to_string(d.label)
                    << "]: " << d.detail;
    }
  }
  EXPECT_EQ(spu_programs, 60);
}

TEST(FuzzDifferential, PlantedRejectionsAreTypedAndContextual) {
  // A planted data-dependent branch must surface as a typed LoweringError
  // rejection carrying the bail site, never as a divergence or a crash.
  bool saw_planted = false;
  for (uint64_t seed = 1; seed <= 200 && !saw_planted; ++seed) {
    GeneratorOptions g = corpus_options(seed);
    g.reject_rate = 1.0;
    g.spu_rate = 0.0;
    const FuzzProgram fp = fuzz::generate(g);
    ASSERT_TRUE(fp.expects_reject);
    const DiffResult r = fuzz::run_differential(fp);
    ASSERT_TRUE(r.reference_ok);
    EXPECT_TRUE(r.divergences.empty());
    ASSERT_FALSE(r.rejections.empty());
    for (const auto& rej : r.rejections) {
      if (rej.label.backend != fuzz::Backend::kNative ||
          rej.label.mode != fuzz::Mode::kBaseline) {
        continue;
      }
      saw_planted = true;
      EXPECT_GE(rej.op_index, 0);
      EXPECT_FALSE(rej.instruction.empty());
      EXPECT_NE(rej.reason.find("depends on data"), std::string::npos)
          << rej.reason;
    }
  }
  EXPECT_TRUE(saw_planted);
}

TEST(LoweringError, CarriesOpIndexInstructionAndConfig) {
  // Hand-built data-dependent branch: the rejection must name the exact
  // static instruction, its disassembly, and the crossbar configuration.
  isa::Assembler a;
  a.li(isa::R2, 0x1000);               // 0
  a.movq_load(isa::MM0, isa::R2, 0);   // 1  (input region -> data)
  a.movd_from_mmx(isa::R5, isa::MM0);  // 2
  a.jnz(isa::R5, "join");              // 3  <- bail site
  a.nop();                             // 4
  a.label("join");
  a.halt();                            // 5
  const isa::Program p = a.take();

  backend::LoweringSpec spec;
  spec.cfg = core::kConfigB;
  spec.mem_bytes = 1u << 16;
  spec.data_regions.push_back({0x1000, 64});

  try {
    (void)backend::lower(p, spec);
    FAIL() << "expected LoweringError";
  } catch (const backend::LoweringError& e) {
    EXPECT_EQ(e.op_index(), 3);
    EXPECT_EQ(e.instruction(), isa::disassemble(p.at(3)));
    EXPECT_EQ(e.config(), "B");
    const std::string msg = e.what();
    EXPECT_NE(msg.find("op 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find(isa::disassemble(p.at(3))), std::string::npos) << msg;
    EXPECT_NE(msg.find("config B"), std::string::npos) << msg;
  }
}

// The acceptance demo: with the test-only lowering fault enabled (Paddsw
// mis-lowered as wrapping Paddw), the harness finds a divergence and the
// minimizer shrinks it to <= 10 instructions with the divergence preserved.
TEST(FuzzMinimizer, ShrinksInjectedLoweringFault) {
  FaultInjectionGuard guard(true);
  ASSERT_TRUE(backend::lowering_fault_injection());

  FuzzProgram diverging;
  bool found = false;
  for (uint64_t seed = 1; seed <= 300 && !found; ++seed) {
    GeneratorOptions g = corpus_options(seed);
    g.reject_rate = 0.0;
    const FuzzProgram fp = fuzz::generate(g);
    const DiffResult r = fuzz::run_differential(fp);
    if (r.reference_ok && !r.divergences.empty()) {
      diverging = fp;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "fault injection produced no divergence in 300 "
                        "seeded programs";

  fuzz::MinimizeStats stats;
  const FuzzProgram small =
      fuzz::minimize(diverging, fuzz::divergence_oracle(), &stats);

  EXPECT_LE(stats.minimized_size, 10)
      << isa::disassemble(small.program);
  EXPECT_LT(stats.minimized_size, stats.original_size);
  EXPECT_GT(stats.oracle_calls, 0);

  // Divergence preserved on the minimized program...
  EXPECT_TRUE(fuzz::divergence_oracle()(small));

  // ...and caused by the injected fault, not by the minimizer: with the
  // fault off the same program is clean.
  backend::set_lowering_fault_injection(false);
  const DiffResult clean = fuzz::run_differential(small);
  ASSERT_TRUE(clean.reference_ok);
  EXPECT_TRUE(clean.divergences.empty());
}

TEST(FuzzMinimizer, RefusesNonReproducingInput) {
  const FuzzProgram fp = fuzz::generate(corpus_options(1));
  // No fault injected: nothing diverges, so the oracle is false and the
  // minimizer must refuse rather than silently "minimize".
  EXPECT_THROW((void)fuzz::minimize(fp, fuzz::divergence_oracle()),
               std::invalid_argument);
}

TEST(FuzzReproducer, RoundTripsThroughDisk) {
  const FuzzProgram fp = fuzz::generate(corpus_options(7));
  const std::string path =
      testing::TempDir() + "/subword-fuzz-reproducer.txt";
  fuzz::write_reproducer(fp, path);
  const FuzzProgram back = fuzz::load_reproducer(path);

  EXPECT_EQ(back.seed, fp.seed);
  EXPECT_EQ(std::string(back.cfg.name), std::string(fp.cfg.name));
  EXPECT_EQ(back.use_spu, fp.use_spu);
  EXPECT_EQ(back.num_contexts, fp.num_contexts);
  EXPECT_EQ(back.mmio_base, fp.mmio_base);
  EXPECT_EQ(back.mem_bytes, fp.mem_bytes);
  EXPECT_EQ(back.expects_reject, fp.expects_reject);
  EXPECT_EQ(back.input.addr, fp.input.addr);
  EXPECT_EQ(back.input.len, fp.input.len);
  EXPECT_EQ(back.input_bytes, fp.input_bytes);
  EXPECT_EQ(isa::disassemble(back.program), isa::disassemble(fp.program));

  // The reloaded entry behaves identically under the harness.
  const DiffResult a = fuzz::run_differential(fp);
  const DiffResult b = fuzz::run_differential(back);
  ASSERT_TRUE(a.reference_ok);
  ASSERT_TRUE(b.reference_ok);
  EXPECT_EQ(a.divergences.size(), b.divergences.size());
  EXPECT_EQ(a.rejections.size(), b.rejections.size());
}

TEST(FuzzReproducer, LoadRejectsMalformedFiles) {
  const std::string dir = testing::TempDir();
  {
    const std::string path = dir + "/subword-fuzz-bad1.txt";
    std::ofstream os(path);
    os << "seed: 1\n";  // no program section
  }
  EXPECT_THROW((void)fuzz::load_reproducer(dir + "/subword-fuzz-bad1.txt"),
               std::runtime_error);
  EXPECT_THROW((void)fuzz::load_reproducer(dir + "/does-not-exist.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace subword
