// Structural regression tests for the kernel programs.
//
// The Figure 9 / Table 3 reproduction rests on the *shape* of the kernel
// code: how much of the baseline is permutation work and how much of it
// the SPU variant deletes. These tests lock the static structure so an
// innocent-looking kernel edit cannot silently change the experiments.
#include <gtest/gtest.h>

#include "core/crossbar.h"
#include "kernels/registry.h"
#include "sim/pairing.h"

using namespace subword;
using kernels::all_kernels;
using kernels::make_kernel;

namespace {

struct Shape {
  const char* name;
  int base_total, base_mmx, base_perm, base_branches;
  int spu_total, spu_mmx, spu_perm;
};

// Static instruction counts at repeats=1 (SPU totals include the MMIO
// programming prologue; SPU permutation counts include only PACKs that
// must stay because they saturate).
constexpr Shape kShapes[] = {
    {"FIR12", 36, 26, 4, 2, 105, 23, 1},
    {"FIR22", 69, 59, 9, 2, 209, 53, 3},
    {"IIR", 48, 14, 3, 2, 128, 12, 1},
    {"FFT1024", 350, 185, 51, 23, 508, 151, 18},
    {"FFT128", 251, 128, 36, 17, 400, 103, 12},
    {"DCT", 214, 172, 52, 8, 436, 132, 12},
    {"Matrix Multiply", 51, 38, 5, 3, 176, 33, 0},
    {"Matrix Transpose", 33, 20, 12, 3, 97, 12, 4},
    {"Motion Estimation", 67, 53, 18, 3, 259, 41, 8},
    {"Color Convert", 77, 63, 17, 2, 184, 42, 3},
    {"2D Convolution", 77, 64, 12, 3, 197, 40, 6},
};

}  // namespace

TEST(KernelStructure, StaticCountsAreLocked) {
  for (const auto& s : kShapes) {
    const auto k = make_kernel(s.name);
    const auto base = k->build_mmx(1).static_counts();
    EXPECT_EQ(base.total, s.base_total) << s.name;
    EXPECT_EQ(base.mmx, s.base_mmx) << s.name;
    EXPECT_EQ(base.permutation, s.base_perm) << s.name;
    EXPECT_EQ(base.branches, s.base_branches) << s.name;

    const auto spu_prog = k->build_spu(core::kConfigA, 1);
    ASSERT_TRUE(spu_prog.has_value()) << s.name;
    const auto spu = spu_prog->static_counts();
    EXPECT_EQ(spu.total, s.spu_total) << s.name;
    EXPECT_EQ(spu.mmx, s.spu_mmx) << s.name;
    EXPECT_EQ(spu.permutation, s.spu_perm) << s.name;
  }
}

TEST(KernelStructure, SpuVariantAlwaysRemovesPermutations) {
  for (const auto& k : all_kernels()) {
    const auto base = k->build_mmx(1).static_counts();
    const auto spu = k->build_spu(core::kConfigA, 1)->static_counts();
    EXPECT_LT(spu.permutation, base.permutation) << k->name();
    // MMX instruction count shrinks too — the SPU deletes, it never adds
    // MMX work.
    EXPECT_LT(spu.mmx, base.mmx) << k->name();
  }
}

TEST(KernelStructure, TransposeMatchesPaperArithmetic) {
  // Figure 3's claim: 12 permutation instructions (8 merges + 4 copies)
  // per 4x4 block on the MMX, 4 gathers with the SPU.
  const auto k = make_kernel("Matrix Transpose");
  const auto base = k->build_mmx(1).static_counts();
  EXPECT_EQ(base.permutation, 12);
  // SPU variant keeps only the 4 MOVQ gathers (counted as permutation
  // class — they are register moves — but now carrying routed operands).
  const auto spu = k->build_spu(core::kConfigA, 1)->static_counts();
  EXPECT_EQ(spu.permutation, 4);
}

TEST(KernelStructure, MatMulBroadcastsFullyAbsorbed) {
  // Every alignment instruction of the broadcast matmul disappears into
  // crossbar replication routes (Table 3's 100% off-load row).
  const auto k = make_kernel("Matrix Multiply");
  const auto spu = k->build_spu(core::kConfigA, 1)->static_counts();
  EXPECT_EQ(spu.permutation, 0);
}

TEST(KernelStructure, SaturatingPacksAreNeverRemoved) {
  // PACKSSDW/PACKSSWB saturate — they are not pure permutations and must
  // survive in every SPU variant that uses them.
  for (const char* name : {"FIR12", "FIR22", "IIR", "FFT128", "DCT"}) {
    const auto k = make_kernel(name);
    const auto spu = k->build_spu(core::kConfigA, 1);
    int packs = 0;
    for (const auto& in : spu->insts()) {
      if (in.op == isa::Op::Packssdw || in.op == isa::Op::Packsswb ||
          in.op == isa::Op::Packuswb) {
        ++packs;
      }
    }
    EXPECT_GT(packs, 0) << name;
  }
}

TEST(KernelStructure, RepeatsScaleOnlyTheLoopCount) {
  // build(N) differs from build(1) only in the repeat-counter immediate —
  // the static structure is repeat-invariant.
  for (const auto& k : all_kernels()) {
    const auto a = k->build_mmx(1).static_counts();
    const auto b = k->build_mmx(7).static_counts();
    EXPECT_EQ(a.total, b.total) << k->name();
    EXPECT_EQ(a.permutation, b.permutation) << k->name();
  }
}

TEST(KernelStructure, BaselinesNeverTouchTheSpuWindow) {
  // "Optimized without knowledge of an existing SPU" (§5.2.1): baseline
  // programs must not reference the reserved setup registers.
  for (const auto& k : all_kernels()) {
    const auto prog = k->build_mmx(2);
    for (const auto& in : prog.insts()) {
      const auto rd = sim::regs_read(in);
      const auto wr = sim::regs_written(in);
      const auto r14 = static_cast<uint8_t>(isa::kNumMmxRegs + isa::R14);
      const auto r15 = static_cast<uint8_t>(isa::kNumMmxRegs + isa::R15);
      EXPECT_FALSE(rd.contains(r14) || wr.contains(r14)) << k->name();
      EXPECT_FALSE(rd.contains(r15) || wr.contains(r15)) << k->name();
    }
  }
}
