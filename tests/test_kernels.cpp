// Baseline kernel tests: every MMX kernel must verify bit-exactly against
// its scalar reference, across repeat counts, and report sane statistics.
#include <gtest/gtest.h>

#include "kernels/registry.h"
#include "kernels/runner.h"

using namespace subword::kernels;

namespace {

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : all_kernels()) names.push_back(k->name());
  return names;
}

}  // namespace

class BaselineKernel : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineKernel, VerifiesAgainstReference) {
  const auto k = make_kernel(GetParam());
  const auto run = run_baseline(*k, /*repeats=*/1);
  EXPECT_TRUE(run.verified) << k->name();
  EXPECT_GT(run.stats.cycles, 0u);
  EXPECT_GT(run.stats.mmx_instructions, 0u);
}

TEST_P(BaselineKernel, RepeatsAreIdempotentAndLinear) {
  const auto k = make_kernel(GetParam());
  const auto once = run_baseline(*k, 1);
  const auto thrice = run_baseline(*k, 3);
  EXPECT_TRUE(thrice.verified) << k->name();
  // Cycles scale close to linearly with repeats (loop-dominated code).
  const double ratio = static_cast<double>(thrice.stats.cycles) /
                       static_cast<double>(once.stats.cycles);
  EXPECT_GT(ratio, 2.5) << k->name();
  EXPECT_LT(ratio, 3.5) << k->name();
}

TEST_P(BaselineKernel, ContainsPermutationWork) {
  // Every paper kernel suffers some alignment overhead — that is the
  // premise of the study.
  const auto k = make_kernel(GetParam());
  const auto run = run_baseline(*k, 1);
  EXPECT_GT(run.stats.mmx_permutation, 0u) << k->name();
}

TEST_P(BaselineKernel, BranchRateIsMediaLike) {
  // Table 2: media kernels mispredict well under 1% of branches at scale.
  // Enough repeats to amortize the predictor's cold start — the paper's
  // runs covered ~1e10 cycles, where warmup is invisible.
  const auto k = make_kernel(GetParam());
  const auto run = run_baseline(*k, 60);
  EXPECT_GT(run.stats.branches, 0u);
  EXPECT_LT(run.stats.mispredict_rate(), 0.03) << k->name();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, BaselineKernel,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == ' ') ch = '_';
                           }
                           return n;
                         });

TEST(Registry, HasPaperSuite) {
  // The paper's Figure-9 suite must stay first and in paper order; the
  // extended media workloads follow it.
  const auto names = kernel_names();
  ASSERT_EQ(names.size(), 11u);
  ASSERT_EQ(kPaperSuiteSize, 8u);
  EXPECT_EQ(names[0], "FIR12");
  EXPECT_EQ(names[1], "FIR22");
  EXPECT_EQ(names[2], "IIR");
  EXPECT_EQ(names[3], "FFT1024");
  EXPECT_EQ(names[4], "FFT128");
  EXPECT_EQ(names[5], "DCT");
  EXPECT_EQ(names[6], "Matrix Multiply");
  EXPECT_EQ(names[7], "Matrix Transpose");
  EXPECT_EQ(names[8], "Motion Estimation");
  EXPECT_EQ(names[9], "Color Convert");
  EXPECT_EQ(names[10], "2D Convolution");
}

TEST(Registry, UnknownKernelThrows) {
  EXPECT_THROW((void)make_kernel("NoSuchKernel"), std::out_of_range);
}

TEST(KernelShape, IirIsScalarBound) {
  // Figure 9's premise: IIR uses the MMX inefficiently.
  const auto k = make_kernel("IIR");
  const auto run = run_baseline(*k, 1);
  EXPECT_LT(run.stats.mmx_busy_fraction(), 0.55);
}

TEST(KernelShape, FirIsMmxBound) {
  const auto k = make_kernel("FIR12");
  const auto run = run_baseline(*k, 1);
  EXPECT_GT(run.stats.mmx_busy_fraction(), 0.5);
}
