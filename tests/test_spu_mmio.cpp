// Memory-mapped programming interface tests: register layout, write/read
// round trips, GO/stop semantics, and programming through simulated stores.
#include <gtest/gtest.h>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "sim/machine.h"

using namespace subword::core;
using namespace subword::isa;

TEST(SpuMmio, CounterRegisters) {
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  mmio.write32(SpuMmio::kCntr0, 123);
  mmio.write32(SpuMmio::kCntr1, 456);
  EXPECT_EQ(spu.context(0).reload[0], 123u);
  EXPECT_EQ(spu.context(0).reload[1], 456u);
  EXPECT_EQ(mmio.read32(SpuMmio::kCntr0), 123u);
  EXPECT_EQ(mmio.read32(SpuMmio::kCntr1), 456u);
}

TEST(SpuMmio, StateControlWordRoundTrip) {
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  const uint32_t base = SpuMmio::kStateBase + 3 * SpuMmio::kStateStride;
  const uint32_t word = 1u | (42u << 8) | (17u << 16);
  mmio.write32(base, word);
  const auto& st = spu.context(0).states[3];
  EXPECT_EQ(st.cntr_sel, 1);
  EXPECT_EQ(st.next0, 42);
  EXPECT_EQ(st.next1, 17);
  EXPECT_EQ(mmio.read32(base), word);
}

TEST(SpuMmio, RouteWordsAddressBusBytes) {
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  const uint32_t base = SpuMmio::kStateBase + 0 * SpuMmio::kStateStride;
  // Route word 2 covers bus bytes 8..11 (U pipe src1 low half).
  mmio.write32(base + 4 + 4 * 2, 0x0B0A0908u);
  const auto& r = spu.context(0).states[0].route;
  EXPECT_EQ(r.sel[8], 0x08);
  EXPECT_EQ(r.sel[9], 0x09);
  EXPECT_EQ(r.sel[10], 0x0A);
  EXPECT_EQ(r.sel[11], 0x0B);
  EXPECT_EQ(mmio.read32(base + 4 + 4 * 2), 0x0B0A0908u);
}

TEST(SpuMmio, ConfigRegisterSelectsContextAndGo) {
  Spu spu(kConfigA, 4);
  SpuMmio mmio(&spu);
  // Program context 2 with a 1-state loop so GO succeeds.
  spu.select_context(2);
  spu.context(2).states[0].next1 = 0;
  spu.context(2).reload[0] = 5;
  spu.select_context(0);

  mmio.write32(SpuMmio::kConfigReg, (2u << 1) | 1u);  // select 2 + GO
  EXPECT_EQ(spu.selected_context(), 2);
  EXPECT_TRUE(spu.active());
  EXPECT_TRUE(mmio.read32(SpuMmio::kConfigReg) & 1u);

  mmio.write32(SpuMmio::kConfigReg, 2u << 1);  // GO clear = stop
  EXPECT_FALSE(spu.active());
}

TEST(SpuMmio, OutOfWindowAccessThrows) {
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  EXPECT_THROW(mmio.write32(SpuMmio::kWindowSize + 4, 0), std::out_of_range);
  EXPECT_THROW(mmio.write32(SpuMmio::kStateBase + 2, 0), std::out_of_range);
}

TEST(SpuMmio, ProgrammingThroughSimulatedStores) {
  // The full path the kernels use: MicroBuilder -> emit_spu_words ->
  // machine stores -> MMIO -> controller state.
  MicroBuilder mb(kConfigA);
  Route r;
  std::array<uint8_t, 8> srcs{{8, 9, 10, 11, 12, 13, 14, 15}};  // MM1
  r.set_operand_both_pipes(1, srcs);
  mb.add_state(r);
  mb.add_straight_state();
  mb.seal_simple_loop(7);

  Assembler a;
  emit_spu_base(a, SpuMmio::kDefaultBase);
  emit_spu_stop(a, 0);
  emit_spu_words(a, mb.mmio_words());
  a.halt();

  subword::sim::Machine m(a.take(), 1 << 12);
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  m.memory().map_device(SpuMmio::kDefaultBase, SpuMmio::kWindowSize, &mmio);
  m.run();

  EXPECT_GT(m.stats().spu_mmio_stores, 0u);
  const auto& prog = spu.context(0);
  EXPECT_EQ(prog.reload[0], 14u);
  EXPECT_EQ(prog.states[0].next1, 1);
  EXPECT_EQ(prog.states[1].next1, 0);
  EXPECT_EQ(prog.states[0].route.sel[8 + 3], 11);
  EXPECT_TRUE(prog.states[1].route.is_straight());
  EXPECT_FALSE(spu.active());
}

TEST(SpuMmio, GoStoreDoesNotConsumeAState) {
  // After a GO store retires, the controller must still be in state 0.
  MicroBuilder mb(kConfigA);
  mb.add_straight_state();
  mb.add_straight_state();
  mb.seal_simple_loop(10);

  Assembler a;
  emit_spu_base(a, SpuMmio::kDefaultBase);
  emit_spu_stop(a, 0);
  emit_spu_words(a, mb.mmio_words());
  emit_spu_go(a, 0);
  a.halt();  // halt retires while active -> consumes exactly one state

  subword::sim::Machine m(a.take(), 1 << 12);
  Spu spu(kConfigA);
  SpuMmio mmio(&spu);
  m.memory().map_device(SpuMmio::kDefaultBase, SpuMmio::kWindowSize, &mmio);
  m.set_router(&spu);
  m.run();

  EXPECT_TRUE(spu.active());
  EXPECT_EQ(spu.current_state(), 1);  // one step (halt), not two
  EXPECT_EQ(spu.counter(0), 19u);
}
