// Machine execution tests: semantics of small programs, cycle accounting,
// dual-issue, multiply latency, branch penalties, the SPU pipeline stage.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "sim/machine.h"

using namespace subword::isa;
using subword::sim::Machine;
using subword::sim::PipelineConfig;
using subword::swar::Vec64;

namespace {

Machine run(Assembler& a, PipelineConfig cfg = {}) {
  Machine m(a.take(), 1 << 16, cfg);
  m.run();
  return m;
}

}  // namespace

TEST(Machine, ScalarArithmetic) {
  Assembler a;
  a.li(R1, 40);
  a.li(R2, 2);
  a.sadd(R1, R2);
  a.smul(R1, R1);  // 42 * 42
  a.halt();
  auto m = run(a);
  EXPECT_EQ(m.gp().read(R1), 42u * 42u);
}

TEST(Machine, MmxLoadComputeStore) {
  Assembler a;
  a.li(R2, 0x100);
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.paddw(MM0, MM1);
  a.movq_store(R2, 16, MM0);
  a.halt();
  Machine m(a.take(), 1 << 16);
  m.memory().write64(0x100, 0x0004000300020001ull);
  m.memory().write64(0x108, 0x0040003000200010ull);
  m.run();
  EXPECT_EQ(m.memory().read64(0x110), 0x0044003300220011ull);
}

TEST(Machine, LoopExecutesExactTripCount) {
  Assembler a;
  a.li(R1, 10);
  a.li(R2, 0);
  a.label("l");
  a.saddi(R2, 1);
  a.loopnz(R1, "l");
  a.halt();
  auto m = run(a);
  EXPECT_EQ(m.gp().read(R2), 10u);
}

TEST(Machine, JnzAndJz) {
  Assembler a;
  a.li(R1, 0);
  a.jz(R1, "zero");
  a.li(R3, 111);  // skipped
  a.label("zero");
  a.li(R2, 5);
  a.jnz(R2, "end");
  a.li(R3, 222);  // skipped
  a.label("end");
  a.halt();
  auto m = run(a);
  EXPECT_EQ(m.gp().read(R3), 0u);
}

TEST(Machine, MovdTransfersLow32) {
  Assembler a;
  a.li(R1, -2);  // 0xFFFF_FFFF_FFFF_FFFE
  a.movd_to_mmx(MM0, R1);
  a.movd_from_mmx(R2, MM0);
  a.halt();
  auto m = run(a);
  EXPECT_EQ(m.mmx().read(MM0).bits(), 0x00000000FFFFFFFEull);
  EXPECT_EQ(m.gp().read(R2), 0xFFFFFFFEull);  // zero-extended
}

TEST(Machine, ScalarLoadsSignExtend) {
  Assembler a;
  a.li(R2, 0x200);
  a.ld16(R3, R2, 0);
  a.ld32(R4, R2, 4);
  a.halt();
  Machine m(a.take(), 1 << 16);
  m.memory().write16(0x200, 0x8000);
  m.memory().write32(0x204, 0x80000000u);
  m.run();
  EXPECT_EQ(static_cast<int64_t>(m.gp().read(R3)), -32768);
  EXPECT_EQ(static_cast<int64_t>(m.gp().read(R4)), -2147483648LL);
}

TEST(Machine, DualIssuePairsIndependentOps) {
  Assembler a;
  // 4 independent MMX ALU ops -> 2 cycles issue.
  a.paddw(MM0, MM1);
  a.psubw(MM2, MM3);
  a.paddb(MM4, MM5);
  a.psubb(MM6, MM7);
  a.halt();
  auto m = run(a);
  EXPECT_EQ(m.stats().dual_issue_cycles, 2u);
}

TEST(Machine, DisablingDualIssueSlowsDown) {
  auto build = [] {
    Assembler a;
    a.paddw(MM0, MM1);
    a.psubw(MM2, MM3);
    a.paddb(MM4, MM5);
    a.psubb(MM6, MM7);
    a.halt();
    return a;
  };
  auto a1 = build();
  auto a2 = build();
  auto fast = run(a1);
  PipelineConfig scalar_cfg;
  scalar_cfg.dual_issue = false;
  auto slow = run(a2, scalar_cfg);
  EXPECT_LT(fast.stats().cycles, slow.stats().cycles);
  EXPECT_EQ(slow.stats().dual_issue_cycles, 0u);
}

TEST(Machine, MultiplyLatencyStallsDependent) {
  // Dependent chain: pmullw (3 cycles) then paddw reading the result.
  Assembler a1;
  a1.pmullw(MM0, MM1);
  a1.paddw(MM2, MM0);
  a1.halt();
  auto dep = run(a1);
  // Independent pair for comparison.
  Assembler a2;
  a2.pmullw(MM0, MM1);
  a2.paddw(MM2, MM3);
  a2.halt();
  auto indep = run(a2);
  EXPECT_GT(dep.stats().cycles, indep.stats().cycles);
  EXPECT_GE(dep.stats().stall_cycles, 2u);
}

TEST(Machine, MispredictPenaltyCharged) {
  Assembler a;
  a.li(R1, 50);
  a.label("l");
  a.loopnz(R1, "l");  // taken 49x, then exit
  a.halt();
  auto m = run(a);
  EXPECT_GE(m.stats().branches, 50u);
  // The exit mispredicts; the local-history predictor also pays a cold
  // start while its per-pattern counters warm (one per history pattern).
  EXPECT_GE(m.stats().branch_mispredicts, 1u);
  EXPECT_LE(m.stats().branch_mispredicts, 12u);
}

TEST(Machine, SpuStageAddsMispredictCost) {
  auto build = [] {
    Assembler a;
    a.li(R1, 8);
    a.label("l");
    a.loopnz(R1, "l");
    a.halt();
    return a;
  };
  auto a1 = build();
  auto a2 = build();
  auto base = run(a1);
  PipelineConfig cfg;
  cfg.extra_spu_stage = true;
  auto spu = run(a2, cfg);
  // Same mispredicts, each one cycle dearer, plus one fill cycle.
  EXPECT_EQ(base.stats().branch_mispredicts, spu.stats().branch_mispredicts);
  EXPECT_EQ(spu.stats().cycles,
            base.stats().cycles + 1 + base.stats().branch_mispredicts);
}

TEST(Machine, StatsCategoriesAdd) {
  Assembler a;
  a.li(R2, 0x100);
  a.movq_load(MM0, R2, 0);
  a.punpcklwd(MM0, MM1);
  a.pmaddwd(MM0, MM2);
  a.movq_store(R2, 8, MM0);
  a.halt();
  auto m = run(a);
  const auto& s = m.stats();
  EXPECT_EQ(s.instructions, 6u);
  EXPECT_EQ(s.mmx_instructions, 4u);
  EXPECT_EQ(s.mmx_permutation, 1u);
  EXPECT_EQ(s.mmx_memory, 2u);
  EXPECT_EQ(s.mmx_compute, 1u);
  EXPECT_EQ(s.scalar_instructions, 2u);
  EXPECT_GT(s.mmx_busy_cycles, 0u);
}

TEST(Machine, RunForInstructionsIsResumable) {
  Assembler a;
  a.li(R1, 5);
  a.li(R2, 0);
  a.label("l");
  a.saddi(R2, 1);
  a.loopnz(R1, "l");
  a.halt();
  Machine m(a.take(), 1 << 12);
  m.run_for_instructions(4);  // li, li, addi, loopnz
  EXPECT_FALSE(m.halted());
  const auto mid = m.gp().read(R2);
  EXPECT_GE(mid, 1u);
  m.run();
  EXPECT_TRUE(m.halted());
  EXPECT_EQ(m.gp().read(R2), 5u);
}

TEST(Machine, TraceHookSeesEveryInstruction) {
  Assembler a;
  a.li(R1, 2);
  a.label("l");
  a.nop();
  a.loopnz(R1, "l");
  a.halt();
  Machine m(a.take(), 1 << 12);
  uint64_t events = 0;
  m.set_trace([&](const subword::sim::TraceEvent& ev) {
    ++events;
    EXPECT_NE(ev.inst, nullptr);
  });
  m.run();
  EXPECT_EQ(events, m.stats().instructions);
}

TEST(Machine, CycleLimitGuards) {
  Assembler a;
  a.label("spin");
  a.jmp("spin");
  a.halt();
  PipelineConfig cfg;
  cfg.max_cycles = 1000;
  Machine m(a.take(), 1 << 12, cfg);
  EXPECT_THROW(m.run(), std::runtime_error);
}

TEST(Machine, EmptyProgramRejected) {
  EXPECT_THROW(Machine(subword::isa::Program{}, 64), std::invalid_argument);
}
