// Property test: on randomly generated permute+compute loops, the
// orchestrated program must produce bit-identical memory to the baseline.
// This is the core soundness guarantee of the pass.
#include <gtest/gtest.h>

#include <vector>

#include "core/orchestrator.h"
#include "isa/assembler.h"
#include "ref/workload.h"
#include "sim/machine.h"

using namespace subword::core;
using namespace subword::isa;
using subword::ref::Rng;
using subword::sim::Machine;

namespace {

// Generates a random single-loop program:
//   - loads into MM0/MM1,
//   - a random chain of candidate permutations into MM2..MM5,
//   - random ALU consumers,
//   - a store of one consumer result,
//   - pointer bump + loopnz.
Program random_loop_program(Rng& rng, int iterations) {
  Assembler a;
  a.li(R1, iterations);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);

  const Op kPerms[] = {Op::MovqRR,    Op::Punpcklbw, Op::Punpcklwd,
                       Op::Punpckldq, Op::Punpckhbw, Op::Punpckhwd,
                       Op::Punpckhdq};
  const Op kAlus[] = {Op::Paddw, Op::Psubw, Op::Paddsw, Op::Pmullw,
                      Op::Pmaddwd, Op::Pxor, Op::Paddb, Op::Pcmpgtw};

  const int nperm = rng.range(1, 3);
  std::vector<uint8_t> perm_regs;
  for (int i = 0; i < nperm; ++i) {
    const auto dst = static_cast<uint8_t>(MM2 + i);
    const auto src = static_cast<uint8_t>(rng.range(0, 1));  // MM0 or MM1
    // Copy a base register then permute it against the other.
    Inst cp;
    cp.op = Op::MovqRR;
    cp.dst = dst;
    cp.src = src;
    a.emit(cp);
    Inst pm;
    pm.op = kPerms[static_cast<size_t>(
        rng.range(0, static_cast<int>(std::size(kPerms)) - 1))];
    pm.dst = dst;
    pm.src = static_cast<uint8_t>(1 - src);
    a.emit(pm);
    perm_regs.push_back(dst);
  }

  // Consumers: MM6 and MM7 accumulate results of ALU ops over the
  // permuted registers.
  const int nconsume = rng.range(1, 3);
  for (int i = 0; i < nconsume; ++i) {
    Inst alu;
    alu.op = kAlus[static_cast<size_t>(
        rng.range(0, static_cast<int>(std::size(kAlus)) - 1))];
    alu.dst = static_cast<uint8_t>(MM6 + rng.range(0, 1));
    alu.src = perm_regs[static_cast<size_t>(
        rng.range(0, static_cast<int>(perm_regs.size()) - 1))];
    a.emit(alu);
  }
  a.movq_store(R2, 16, MM6);
  a.movq_store(R2, 24, MM7);
  a.saddi(R2, 32);
  a.loopnz(R1, "loop");
  a.halt();
  return a.take();
}

void fill_memory(Machine& m, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t addr = 0x1000; addr < 0x8000; addr += 8) {
    m.memory().write64(addr, rng.next());
  }
}

struct Outcome {
  bool equal;
  int removed;
};

Outcome run_case(const Program& p, const CrossbarConfig& cfg,
                 uint64_t seed) {
  Machine base(p, 1 << 16);
  fill_memory(base, seed);
  base.run();

  OrchestratorOptions opts;
  opts.config = cfg;
  Orchestrator orch(opts);
  const auto res = orch.run(p);

  Machine spu_m(res.program, 1 << 16);
  auto att = attach_spu(spu_m, res, opts);
  fill_memory(spu_m, seed);
  spu_m.run();

  for (uint64_t addr = 0x1000; addr < 0x8000; ++addr) {
    if (base.memory().read8(addr) != spu_m.memory().read8(addr)) {
      return {false, res.removed_static};
    }
  }
  // Architectural registers must match too (no stale-route corruption).
  // Registers holding deleted permutation results are exempt: the paper's
  // semantics only guarantees operand *delivery*, not the dead register.
  return {true, res.removed_static};
}

class OrchestratorFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OrchestratorFuzz, OrchestratedProgramIsEquivalent) {
  Rng rng(0x5EED0000u + static_cast<uint64_t>(GetParam()));
  int total_removed = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const auto p = random_loop_program(rng, rng.range(1, 9));
    for (const auto* cfg : {&kConfigA, &kConfigD}) {
      const auto out = run_case(p, *cfg, 0x12345 + iter);
      ASSERT_TRUE(out.equal)
          << "config " << cfg->name << " iter " << iter << " param "
          << GetParam();
      total_removed += out.removed;
    }
  }
  // The generator produces removable patterns; the pass must fire on a
  // reasonable fraction of them (under config A at least).
  EXPECT_GT(total_removed, 10) << "orchestrator never fires";
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrchestratorFuzz, ::testing::Range(0, 8));

}  // namespace
