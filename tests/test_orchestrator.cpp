// Orchestrator tests: loop discovery, byte-provenance routing, permutation
// removal on the paper's own examples, and end-to-end equivalence.
#include <gtest/gtest.h>

#include "core/orchestrator.h"
#include "core/mmio.h"
#include "isa/assembler.h"
#include "ref/workload.h"
#include "sim/machine.h"

using namespace subword::core;
using namespace subword::isa;
using subword::sim::Machine;

namespace {

// The paper's Figure 5 dot-product loop: unpack both operand orders, then
// multiply high/low — the two unpacks are removable.
Program figure5_program(int iterations) {
  Assembler a;
  a.li(R1, iterations);
  a.li(R2, 0x1000);  // x pairs
  a.li(R3, 0x2000);  // y pairs
  a.li(R4, 0x3000);  // outputs
  a.label("loop");
  a.movq_load(MM0, R2, 0);   // [a b c d]
  a.movq_load(MM1, R3, 0);   // [e f g h]
  a.movq(MM2, MM0);
  a.punpckhwd(MM2, MM1);     // [a e b f] from the high halves
  a.movq(MM3, MM0);
  a.punpcklwd(MM3, MM1);     // [c g d h] from the low halves
  a.pmulhw(MM2, MM3);
  a.movq_store(R4, 0, MM2);
  a.saddi(R2, 8);
  a.saddi(R3, 8);
  a.saddi(R4, 8);
  a.loopnz(R1, "loop");
  a.halt();
  return a.take();
}

// Runs a program bare and orchestrated; returns true if all 64 output
// bytes match.
struct EquivalenceResult {
  bool equal = true;
  OrchestrationResult orch;
  subword::sim::RunStats base_stats, spu_stats;
};

EquivalenceResult check_equivalence(const Program& p,
                                    const OrchestratorOptions& opts,
                                    uint64_t out_addr, size_t out_bytes,
                                    uint64_t in_seed) {
  EquivalenceResult res;
  Orchestrator orch(opts);
  res.orch = orch.run(p);

  // Identical random memory images.
  auto fill = [&](Machine& m) {
    subword::ref::Rng rng(in_seed);
    for (uint64_t addr = 0x1000; addr < 0x4000; addr += 8) {
      m.memory().write64(addr, rng.next());
    }
  };

  Machine base(p, 1 << 16);
  fill(base);
  res.base_stats = base.run();

  Machine spu_m(res.orch.program, 1 << 16);
  auto att = attach_spu(spu_m, res.orch, opts);
  fill(spu_m);
  res.spu_stats = spu_m.run();

  for (uint64_t i = 0; i < out_bytes; ++i) {
    if (base.memory().read8(out_addr + i) !=
        spu_m.memory().read8(out_addr + i)) {
      res.equal = false;
      break;
    }
  }
  return res;
}

}  // namespace

TEST(LoopDiscovery, FindsSimpleInnerLoop) {
  const auto p = figure5_program(10);
  const auto loops = find_inner_loops(p);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].head, 4u);  // after the four li's
  EXPECT_EQ(p.at(loops[0].branch).op, Op::Loopnz);
}

TEST(LoopDiscovery, RejectsJumpIntoBody) {
  Assembler a;
  a.li(R1, 3);
  a.jmp("mid");
  a.label("loop");
  a.nop();
  a.label("mid");
  a.nop();
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  EXPECT_TRUE(find_inner_loops(p).empty());
}

TEST(Analysis, Figure5UnpacksAreRemovable) {
  const auto p = figure5_program(10);
  const auto loops = find_inner_loops(p);
  ASSERT_EQ(loops.size(), 1u);
  const auto la = analyze_loop(p, loops[0], kConfigA);
  EXPECT_TRUE(la.reject_reason.empty());
  EXPECT_EQ(la.trip_count, 10);
  EXPECT_EQ(la.candidate_count, 4);  // 2 movq + 2 punpck
  EXPECT_EQ(la.removable_count, 4);
  // The pmulhw consumer has both operands routed.
  // Body index of pmulhw = 6 (loads at 0,1; permutes 2..5).
  EXPECT_TRUE(la.routing[6].a.routable);
  EXPECT_TRUE(la.routing[6].b.routable);
}

TEST(Analysis, LiveOutPermutationIsKept) {
  // The unpack result is stored to memory -> not removable.
  Assembler a;
  a.li(R1, 4);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.punpcklwd(MM0, MM1);
  a.movq_store(R2, 16, MM0);
  a.saddi(R2, 8);
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto loops = find_inner_loops(p);
  ASSERT_EQ(loops.size(), 1u);
  const auto la = analyze_loop(p, loops[0], kConfigA);
  EXPECT_EQ(la.removable_count, 0);
}

TEST(Analysis, LoopCarriedPermutationIsKept) {
  // MM2 is read at the top of the next iteration before being rewritten:
  // removing its producer would change semantics.
  Assembler a;
  a.li(R1, 4);
  a.li(R2, 0x1000);
  a.label("loop");
  a.paddw(MM4, MM2);       // upward-exposed read of MM2
  a.movq_load(MM0, R2, 0);
  a.movq(MM2, MM0);        // candidate, but loop-carried
  a.punpcklwd(MM2, MM0);
  a.paddw(MM5, MM2);
  a.saddi(R2, 8);
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto la = analyze_loop(p, find_inner_loops(p)[0], kConfigA);
  EXPECT_EQ(la.removable_count, 0);
}

TEST(Analysis, SourceOverwriteBlocksRouting) {
  // MM0 is reloaded between the unpack and its consumer: the unpacked
  // values no longer exist in the register file at consume time.
  Assembler a;
  a.li(R1, 4);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq(MM2, MM0);          // copy of MM0's bytes
  a.movq_load(MM0, R2, 8);   // MM0 overwritten!
  a.paddw(MM3, MM2);         // consumer: must read the copy, not new MM0
  a.saddi(R2, 8);
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto la = analyze_loop(p, find_inner_loops(p)[0], kConfigA);
  EXPECT_EQ(la.removable_count, 0);
}

TEST(Analysis, ConfigGranularityLimitsRemoval) {
  // Byte-level interleave is routable on A (8-bit ports) but not on D
  // (16-bit ports).
  Assembler a;
  a.li(R1, 4);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.movq(MM2, MM0);
  a.punpcklbw(MM2, MM1);  // byte interleave
  a.paddb(MM3, MM2);
  a.movq_store(R2, 16, MM3);
  a.saddi(R2, 8);
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto loop = find_inner_loops(p)[0];
  EXPECT_EQ(analyze_loop(p, loop, kConfigA).removable_count, 2);
  EXPECT_EQ(analyze_loop(p, loop, kConfigD).removable_count, 0);
}

TEST(Orchestrator, Figure5EndToEnd) {
  OrchestratorOptions opts;
  const auto res = check_equivalence(figure5_program(16), opts, 0x3000,
                                     16 * 8, 0xAB);
  EXPECT_TRUE(res.equal);
  EXPECT_EQ(res.orch.removed_static, 4);
  // The transformed stream executes fewer instructions in steady state
  // (prologue amortizes over iterations).
  EXPECT_LT(res.spu_stats.mmx_permutation, res.base_stats.mmx_permutation);
}

TEST(Orchestrator, ReservedRegistersEnforced) {
  Assembler a;
  a.li(R14, 1);
  a.halt();
  Orchestrator orch;
  EXPECT_THROW((void)orch.run(a.take()), std::logic_error);
}

TEST(Orchestrator, UntouchedProgramWhenNothingRemovable) {
  Assembler a;
  a.li(R1, 4);
  a.label("loop");
  a.paddw(MM0, MM1);
  a.loopnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  Orchestrator orch;
  const auto res = orch.run(p);
  EXPECT_FALSE(res.any_orchestrated());
  EXPECT_EQ(res.program.size(), p.size());
}

TEST(Orchestrator, JnzCounterIdiomSupported) {
  // The explicit ssubi/jnz loop form must orchestrate like loopnz: the
  // decrement is part of the body (and of the dynamic state count).
  Assembler a;
  a.li(R1, 9);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq(MM2, MM0);
  a.punpcklwd(MM2, MM0);
  a.paddw(MM3, MM2);
  a.movq_store(R2, 8, MM3);
  a.saddi(R2, 16);
  a.ssubi(R1, 1);
  a.jnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto loops = find_inner_loops(p);
  ASSERT_EQ(loops.size(), 1u);
  const auto la = analyze_loop(p, loops[0], kConfigA);
  EXPECT_TRUE(la.reject_reason.empty()) << la.reject_reason;
  EXPECT_EQ(la.trip_count, 9);
  EXPECT_EQ(la.removable_count, 2);

  OrchestratorOptions opts;
  const auto res = check_equivalence(p, opts, 0x1008, 8, 0x31);
  EXPECT_TRUE(res.equal);
  EXPECT_EQ(res.orch.removed_static, 2);
}

TEST(Orchestrator, JnzWithIrregularDecrementRejected) {
  Assembler a;
  a.li(R1, 8);
  a.li(R2, 0x1000);
  a.label("loop");
  a.movq_load(MM0, R2, 0);
  a.movq(MM2, MM0);
  a.punpcklwd(MM2, MM0);
  a.paddw(MM3, MM2);
  a.ssubi(R1, 2);  // strides by two: dynamic count is not trips x length
  a.jnz(R1, "loop");
  a.halt();
  const auto p = a.take();
  const auto la = analyze_loop(p, find_inner_loops(p)[0], kConfigA);
  EXPECT_FALSE(la.reject_reason.empty());
}

TEST(Orchestrator, MultipleLoopsGetSeparateContexts) {
  // Two orchestratable inner loops in one program: each gets its own SPU
  // context, both programmed by one shared prologue, and the whole
  // program still computes the same memory image.
  Assembler a;
  // Loop 1: Figure-5 style multiply.
  a.li(R1, 6);
  a.li(R2, 0x1000);
  a.label("l1");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.movq(MM2, MM0);
  a.punpckhwd(MM2, MM1);
  a.pmulhw(MM2, MM1);
  a.movq_store(R2, 16, MM2);
  a.saddi(R2, 32);
  a.loopnz(R1, "l1");
  // Loop 2: byte interleave + add.
  a.li(R1, 5);
  a.li(R3, 0x2000);
  a.label("l2");
  a.movq_load(MM0, R3, 0);
  a.movq_load(MM1, R3, 8);
  a.movq(MM3, MM1);
  a.punpcklbw(MM3, MM0);
  a.paddb(MM4, MM3);
  a.movq_store(R3, 16, MM4);
  a.saddi(R3, 32);
  a.loopnz(R1, "l2");
  a.halt();
  const auto p = a.take();

  OrchestratorOptions opts;
  Orchestrator orch(opts);
  const auto res = orch.run(p);
  EXPECT_EQ(res.contexts.size(), 2u);
  int orchestrated = 0;
  for (const auto& l : res.loops) {
    if (l.context >= 0) ++orchestrated;
  }
  EXPECT_EQ(orchestrated, 2);
  EXPECT_EQ(res.removed_static, 4);  // two movq + two punpck

  // Semantics preserved end to end.
  auto fill = [&](Machine& m) {
    subword::ref::Rng rng(0x99);
    for (uint64_t addr = 0x1000; addr < 0x3000; addr += 8) {
      m.memory().write64(addr, rng.next());
    }
  };
  Machine base(p, 1 << 16);
  fill(base);
  base.run();
  Machine spu_m(res.program, 1 << 16);
  auto att = attach_spu(spu_m, res, opts);
  fill(spu_m);
  spu_m.run();
  for (uint64_t addr = 0x1000; addr < 0x3000; ++addr) {
    ASSERT_EQ(base.memory().read8(addr), spu_m.memory().read8(addr));
  }
}

TEST(Orchestrator, ContextLimitRespected) {
  // With max_contexts = 1, only the first loop is orchestrated; the
  // second is reported as out of contexts and left untouched.
  Assembler a;
  for (int l = 0; l < 2; ++l) {
    const std::string lbl = "loop" + std::to_string(l);
    a.li(R1, 4);
    a.li(R2, 0x1000 + 0x800 * l);
    a.label(lbl);
    a.movq_load(MM0, R2, 0);
    a.movq(MM2, MM0);
    a.punpcklwd(MM2, MM0);
    a.paddw(MM3, MM2);
    a.movq_store(R2, 8, MM3);
    a.saddi(R2, 16);
    a.loopnz(R1, lbl);
  }
  a.halt();
  OrchestratorOptions opts;
  opts.max_contexts = 1;
  Orchestrator orch(opts);
  const auto res = orch.run(a.take());
  ASSERT_EQ(res.loops.size(), 2u);
  EXPECT_GE(res.loops[0].context, 0);
  EXPECT_EQ(res.loops[1].context, -1);
  EXPECT_EQ(res.loops[1].note, "out of SPU contexts");
}

TEST(Orchestrator, BranchTargetsRepatchedAfterRemoval) {
  // Loop head is itself a removed permutation: the back-branch must
  // re-target the next kept instruction.
  Assembler a;
  a.li(R1, 4);
  a.li(R2, 0x1000);
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.label("loop");
  a.movq(MM2, MM0);          // head, removable
  a.punpcklwd(MM2, MM1);
  a.paddw(MM3, MM2);
  a.movq_store(R2, 16, MM3);
  a.loopnz(R1, "loop");
  a.halt();
  OrchestratorOptions opts;
  const auto res = check_equivalence(a.take(), opts, 0x1010, 8, 0x17);
  EXPECT_TRUE(res.equal);
  EXPECT_EQ(res.orch.removed_static, 2);
}
