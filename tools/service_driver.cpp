// service_driver — the serving layer's command-line front end: a server, a
// one-shot client, a concurrent soak harness and a wire-level fuzzer, all
// over the same protocol the library exports.
//
// Modes:
//   serve  [--port P] [--workers N]
//       Boot a server (port 0: ephemeral), print the bound port, then run
//       until stdin reaches EOF — `service_driver serve < /dev/null` style
//       lifetime management for CI, no signal games.
//   client --port P --kernel K [--repeats N] [--mode M] [--config A..D]
//          [--backend sim|native|auto] [--tenant T] [--with-input]
//       One blocking round trip; prints the typed outcome and stats.
//   soak   [--connections N] [--requests R] [--probes M] [--json]
//       In-process server, two phases. "soak": N concurrent connections
//       each issuing R bound-buffer requests, every response checked
//       bit-exact against a host-side reference — deterministic counts
//       (ok/shed/divergent/transport) plus wall-clock latency percentiles.
//       "reject": a single-slot tenant is saturated by one slow occupier,
//       then M probes — every one must come back kOverloaded, giving the
//       admission path a deterministic, gateable count.
//   fuzz   [--iters N] [--seed S]
//       Malformed-frame robustness against a live server: seeded
//       adversarial frames (bit flips, lying length prefixes, truncations,
//       garbage, oversized declarations); every iteration must end in a
//       typed response or a clean close — never a hang, never a crash —
//       and the server must still answer a valid request afterwards.
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "fuzz/generator.h"
#include "kernels/registry.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"

namespace {

using namespace subword;
using Clock = std::chrono::steady_clock;

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
}

// Lift the fd ceiling to the hard limit: a 1000-connection soak holds
// ~2000 descriptors in one process (both ends are ours).
void raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &lim);
  }
}

bool parse_mode(const std::string& s, service::WireMode* out) {
  if (s == "baseline") *out = service::WireMode::kBaseline;
  else if (s == "manual") *out = service::WireMode::kManualSpu;
  else if (s == "auto") *out = service::WireMode::kAutoOrchestrate;
  else if (s == "plan") *out = service::WireMode::kPlan;
  else return false;
  return true;
}

bool parse_backend(const std::string& s, service::WireBackend* out) {
  if (s == "sim") *out = service::WireBackend::kSimulator;
  else if (s == "native") *out = service::WireBackend::kNativeSwar;
  else if (s == "auto") *out = service::WireBackend::kAuto;
  else return false;
  return true;
}

// Deterministic input payload for a kernel's primary input region: i16
// lanes patterned within the kernels' pixel data contract [0, 255] (a
// high byte would overflow the 16-bit products against the scalar
// reference).
std::vector<uint8_t> make_input(size_t bytes) {
  std::vector<uint8_t> v(bytes, 0);
  for (size_t i = 0; i + 1 < bytes; i += 2) {
    v[i] = static_cast<uint8_t>((i / 2 * 31 + 7) & 0xFF);
  }
  return v;
}

uint64_t percentile_ns(const std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

std::string json_escape(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

// BENCH_<name>.json in the bench binaries' record format, so
// scripts/check_bench_regression.py consumes it unchanged.
struct BenchJson {
  std::string name;
  std::vector<std::vector<std::pair<std::string, std::string>>> records;

  std::string write() const {
    const std::string path = "BENCH_" + name + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n",
                 name.c_str());
    for (size_t r = 0; r < records.size(); ++r) {
      std::fprintf(f, "    {");
      for (size_t i = 0; i < records[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     records[r][i].first.c_str(), records[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < records.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return path;
  }
};

std::string num(uint64_t v) { return std::to_string(v); }
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

int arg_int(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  return std::atoi(argv[++*i]);
}

std::string arg_str(int argc, char** argv, int* i, const char* flag) {
  if (*i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a value\n", flag);
    std::exit(2);
  }
  return argv[++*i];
}

void usage() {
  std::fprintf(
      stderr,
      "usage: service_driver serve  [--port P] [--workers N]\n"
      "       service_driver client --port P --kernel K [--repeats N]\n"
      "                             [--mode baseline|manual|auto|plan]\n"
      "                             [--config A|B|C|D]\n"
      "                             [--backend sim|native|auto]\n"
      "                             [--tenant T] [--with-input]\n"
      "       service_driver soak   [--connections N] [--requests R]\n"
      "                             [--probes M] [--json]\n"
      "       service_driver fuzz   [--iters N] [--seed S]\n");
}

// -- serve --------------------------------------------------------------------

int run_serve(int argc, char** argv) {
  uint16_t port = 0;
  int workers = 2;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port") port = static_cast<uint16_t>(arg_int(argc, argv, &i, "--port"));
    else if (a == "--workers") workers = arg_int(argc, argv, &i, "--workers");
    else { usage(); return 2; }
  }
  raise_fd_limit();

  service::ServerOptions opts;
  opts.port = port;
  service::TenantOptions tenant;
  tenant.workers = workers;
  opts.tenants.push_back(tenant);

  service::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "start failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("service_driver: listening on port %u\n", server.port());
  std::fflush(stdout);

  // Lifetime = stdin: EOF (or a parent closing the pipe) drains us.
  while (std::fgetc(stdin) != EOF) {
  }
  server.shutdown();
  const auto s = server.stats();
  std::printf(
      "service_driver: drained — %llu connections, %llu ok, %llu api "
      "errors, %llu shed, %llu protocol errors\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.requests_ok),
      static_cast<unsigned long long>(s.requests_api_error),
      static_cast<unsigned long long>(s.requests_shed),
      static_cast<unsigned long long>(s.protocol_errors));
  return 0;
}

// -- client -------------------------------------------------------------------

int run_client(int argc, char** argv) {
  uint16_t port = 0;
  service::WireRequest req;
  req.request_id = 1;
  bool with_input = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port") port = static_cast<uint16_t>(arg_int(argc, argv, &i, "--port"));
    else if (a == "--kernel") req.kernel = arg_str(argc, argv, &i, "--kernel");
    else if (a == "--repeats") req.repeats = static_cast<uint32_t>(arg_int(argc, argv, &i, "--repeats"));
    else if (a == "--tenant") req.tenant = arg_str(argc, argv, &i, "--tenant");
    else if (a == "--with-input") with_input = true;
    else if (a == "--mode") {
      if (!parse_mode(arg_str(argc, argv, &i, "--mode"), &req.mode)) { usage(); return 2; }
    } else if (a == "--config") {
      const std::string c = arg_str(argc, argv, &i, "--config");
      if (c.size() != 1 || c[0] < 'A' || c[0] > 'D') { usage(); return 2; }
      req.config = static_cast<uint8_t>(c[0] - 'A');
    } else if (a == "--backend") {
      if (!parse_backend(arg_str(argc, argv, &i, "--backend"), &req.backend)) { usage(); return 2; }
    } else { usage(); return 2; }
  }
  if (port == 0 || req.kernel.empty()) {
    usage();
    return 2;
  }
  if (with_input) {
    const auto* info = kernels::find_kernel_info(req.kernel);
    if (info == nullptr || !info->buffers.supported()) {
      std::fprintf(stderr, "--with-input: kernel has no buffer contract\n");
      return 2;
    }
    req.input = make_input(info->buffers.input_bytes);
  }

  service::ServiceClient client;
  std::string err;
  if (!client.connect(port, &err)) {
    std::fprintf(stderr, "connect failed: %s\n", err.c_str());
    return 1;
  }
  const auto r = client.call(req);
  if (!r.transport_ok) {
    std::fprintf(stderr, "transport failed: %s\n", r.transport_error.c_str());
    return 1;
  }
  const auto& resp = r.response;
  if (resp.status != service::WireStatus::kOk) {
    std::printf("error response (%s %u): %s\n",
                resp.status == service::WireStatus::kApiError ? "api" : "proto",
                resp.error_code, resp.message.c_str());
    return 1;
  }
  std::printf("ok: id=%llu cache_hit=%d instructions=%llu",
              static_cast<unsigned long long>(resp.request_id),
              resp.stats.cache_hit ? 1 : 0,
              static_cast<unsigned long long>(resp.stats.instructions));
  if (resp.stats.has_cycles) {
    std::printf(" cycles=%llu",
                static_cast<unsigned long long>(resp.stats.cycles));
  }
  std::printf(" prepare=%.2fms execute=%.2fms output=%zuB",
              static_cast<double>(resp.stats.prepare_ns) / 1e6,
              static_cast<double>(resp.stats.execute_ns) / 1e6,
              resp.output.size());
  if (resp.has_plan) {
    std::printf(" plan={mode=%u config=%c backend=%s}",
                static_cast<unsigned>(resp.plan.mode),
                'A' + resp.plan.config,
                resp.plan.backend == service::WireBackend::kNativeSwar
                    ? "native"
                    : "sim");
  }
  std::printf("\n");
  return 0;
}

// -- soak ---------------------------------------------------------------------

int run_soak(int argc, char** argv) {
  int connections = 1000;
  int requests = 2;
  int probes = 200;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--connections") connections = arg_int(argc, argv, &i, "--connections");
    else if (a == "--requests") requests = arg_int(argc, argv, &i, "--requests");
    else if (a == "--probes") probes = arg_int(argc, argv, &i, "--probes");
    else if (a == "--json") json = true;
    else { usage(); return 2; }
  }
  raise_fd_limit();

  const std::string kKernel = "Color Convert";
  const auto* info = kernels::find_kernel_info(kKernel);
  if (info == nullptr || !info->buffers.supported()) {
    std::fprintf(stderr, "soak kernel missing its buffer contract\n");
    return 1;
  }
  const bool native = info->native_backend();
  const std::vector<uint8_t> input = make_input(info->buffers.input_bytes);

  // Host-side reference: the same knobs through a local Session. The wire
  // responses must reproduce these bytes exactly, every time.
  std::vector<uint8_t> expected(info->buffers.output_bytes);
  {
    api::Session local;
    auto r = local.request(kKernel)
                 .baseline()
                 .backend(native ? api::ExecBackend::kNativeSwar
                                 : api::ExecBackend::kSimulator)
                 .input(std::span<const uint8_t>(input))
                 .output(std::span<uint8_t>(expected))
                 .run();
    if (!r.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n",
                   r.error().to_string().c_str());
      return 1;
    }
  }

  service::ServerOptions opts;
  {
    service::TenantOptions def;
    def.name = "default";
    def.workers = 2;
    opts.tenants.push_back(def);
    service::TenantOptions cap;
    cap.name = "cap1";
    cap.workers = 1;
    cap.max_inflight = 1;
    opts.tenants.push_back(cap);
    opts.max_repeats = 1 << 16;
    opts.accept_backlog = 1024;
  }
  service::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "start failed: %s\n", err.c_str());
    return 1;
  }
  const uint16_t port = server.port();
  std::printf("soak: %d connections x %d requests against 127.0.0.1:%u "
              "(%s backend)\n",
              connections, requests, port, native ? "native" : "sim");

  // -- Phase 1: accept-all ----------------------------------------------------
  std::atomic<uint64_t> ok{0}, divergent{0}, api_errors{0}, transport{0};
  std::vector<std::vector<uint64_t>> lat(
      static_cast<size_t>(connections));
  const uint64_t t0 = now_ns();
  {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      clients.emplace_back([&, c] {
        auto& lats = lat[static_cast<size_t>(c)];
        lats.reserve(static_cast<size_t>(requests));
        service::ServiceClient client;
        if (!client.connect(port)) {
          transport.fetch_add(static_cast<uint64_t>(requests));
          return;
        }
        service::WireRequest req;
        req.kernel = kKernel;
        req.mode = service::WireMode::kBaseline;
        req.backend = native ? service::WireBackend::kNativeSwar
                             : service::WireBackend::kSimulator;
        req.input = input;
        for (int i = 0; i < requests; ++i) {
          req.request_id =
              static_cast<uint64_t>(c) * 1000000ull + static_cast<uint64_t>(i);
          const uint64_t start = now_ns();
          const auto r = client.call(req);
          lats.push_back(now_ns() - start);
          if (!r.transport_ok) {
            transport.fetch_add(1);
            return;  // connection is gone
          }
          if (r.response.status != service::WireStatus::kOk) {
            api_errors.fetch_add(1);
            continue;
          }
          if (r.response.request_id != req.request_id ||
              r.response.output != expected) {
            divergent.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_ms = static_cast<double>(now_ns() - t0) / 1e6;

  std::vector<uint64_t> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const double p50 = static_cast<double>(percentile_ns(all, 0.50)) / 1e3;
  const double p90 = static_cast<double>(percentile_ns(all, 0.90)) / 1e3;
  const double p99 = static_cast<double>(percentile_ns(all, 0.99)) / 1e3;
  const double pmax = all.empty() ? 0 : static_cast<double>(all.back()) / 1e3;
  const double rps = wall_ms > 0
                         ? static_cast<double>(all.size()) / (wall_ms / 1e3)
                         : 0;

  std::printf("  phase soak:   ok=%llu divergent=%llu api_errors=%llu "
              "transport=%llu\n",
              static_cast<unsigned long long>(ok.load()),
              static_cast<unsigned long long>(divergent.load()),
              static_cast<unsigned long long>(api_errors.load()),
              static_cast<unsigned long long>(transport.load()));
  std::printf("                p50=%.0fus p90=%.0fus p99=%.0fus max=%.0fus "
              "wall=%.0fms (%.0f req/s)\n",
              p50, p90, p99, pmax, wall_ms, rps);

  // -- Phase 2: deterministic reject-all --------------------------------------
  // One slow occupier fills tenant cap1's single in-flight slot; while it
  // runs, every probe must shed with kOverloaded — no timing in the
  // *decision*, only in how long the window stays open (the occupier's
  // simulator run is ~1e3x slower than the probes need).
  std::atomic<bool> occupier_ok{false};
  std::thread occupier([&] {
    service::ServiceClient occ;
    if (!occ.connect(port)) return;
    service::WireRequest slow;
    slow.request_id = 1;
    slow.tenant = "cap1";
    slow.kernel = "FIR12";
    slow.repeats = 1 << 15;
    slow.mode = service::WireMode::kBaseline;
    slow.backend = service::WireBackend::kSimulator;
    const auto r = occ.call(slow);
    occupier_ok.store(r.ok());
  });
  // The slot is held from before the engine submit to after completion;
  // once the cap1 session has seen the job, the window is open.
  api::Session* cap_session = server.tenant_session("cap1");
  for (int spin = 0; spin < 20000; ++spin) {
    if (cap_session->stats().jobs_submitted >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  uint64_t shed = 0, not_shed = 0;
  {
    service::ServiceClient prober;
    if (prober.connect(port)) {
      service::WireRequest probe;
      probe.tenant = "cap1";
      probe.kernel = "FIR12";
      probe.repeats = 1;
      probe.mode = service::WireMode::kBaseline;
      for (int i = 0; i < probes; ++i) {
        probe.request_id = 1000000000ull + static_cast<uint64_t>(i);
        const auto r = prober.call(probe);
        const bool is_shed =
            r.transport_ok &&
            r.response.status == service::WireStatus::kApiError &&
            r.response.error_code ==
                service::error_code_to_wire(api::ErrorCode::kOverloaded);
        if (is_shed) ++shed;
        else ++not_shed;
      }
    } else {
      not_shed = static_cast<uint64_t>(probes);
    }
  }
  occupier.join();

  std::printf("  phase reject: shed=%llu not_shed=%llu occupier_ok=%d\n",
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(not_shed),
              occupier_ok.load() ? 1 : 0);

  const auto stats = server.stats();
  server.shutdown();
  std::printf("  server: %llu connections, %llu shed total\n",
              static_cast<unsigned long long>(stats.connections_accepted),
              static_cast<unsigned long long>(stats.requests_shed));

  if (json) {
    BenchJson bj{"service", {}};
    bj.records.push_back({
        {"phase", json_escape("soak")},
        {"connections", num(static_cast<uint64_t>(connections))},
        {"requests_per_connection", num(static_cast<uint64_t>(requests))},
        {"ok_responses", num(ok.load())},
        {"divergent_responses", num(divergent.load())},
        {"shed_responses", num(static_cast<uint64_t>(0))},
        {"transport_failures", num(transport.load())},
        {"latency_p50_us", num(p50)},
        {"latency_p90_us", num(p90)},
        {"latency_p99_us", num(p99)},
        {"latency_max_us", num(pmax)},
        {"wall_ms", num(wall_ms)},
        {"throughput_rps", num(rps)},
    });
    bj.records.push_back({
        {"phase", json_escape("reject")},
        {"probes", num(static_cast<uint64_t>(probes))},
        {"shed_responses", num(shed)},
        {"not_shed_responses", num(not_shed)},
        {"occupier_completed", num(static_cast<uint64_t>(occupier_ok ? 1 : 0))},
    });
    const std::string path = bj.write();
    if (path.empty()) {
      std::fprintf(stderr, "failed to write BENCH_service.json\n");
      return 1;
    }
    std::printf("  wrote %s\n", path.c_str());
  }

  const bool green = divergent.load() == 0 && transport.load() == 0 &&
                     api_errors.load() == 0 &&
                     ok.load() == static_cast<uint64_t>(connections) *
                                      static_cast<uint64_t>(requests) &&
                     shed == static_cast<uint64_t>(probes) && not_shed == 0 &&
                     occupier_ok.load();
  std::printf("soak: %s\n", green ? "GREEN" : "RED");
  return green ? 0 : 1;
}

// -- fuzz ---------------------------------------------------------------------

int run_fuzz(int argc, char** argv) {
  int iters = 300;
  uint64_t seed = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--iters") iters = arg_int(argc, argv, &i, "--iters");
    else if (a == "--seed") seed = static_cast<uint64_t>(std::atoll(arg_str(argc, argv, &i, "--seed").c_str()));
    else { usage(); return 2; }
  }
  raise_fd_limit();

  service::ServerOptions opts;
  opts.max_payload_bytes = 1 << 16;
  service::Server server(opts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "start failed: %s\n", err.c_str());
    return 1;
  }
  const uint16_t port = server.port();

  fuzz::Rng rng(seed);
  uint64_t typed = 0, closed = 0, valid_ok = 0;
  int failures = 0;

  for (int i = 0; i < iters; ++i) {
    // A syntactically valid request with randomized knobs as the base.
    service::WireRequest req;
    req.request_id = rng.next();
    req.kernel = rng.chance(0.5) ? "FIR12" : "no_such_kernel";
    req.repeats = static_cast<uint32_t>(1 + rng.below(4));
    req.mode = static_cast<service::WireMode>(rng.below(4));
    req.config = static_cast<uint8_t>(rng.below(4));
    req.backend = service::WireBackend::kSimulator;
    if (rng.chance(0.3)) {
      req.input.resize(static_cast<size_t>(rng.below(256)));
      for (auto& b : req.input) b = static_cast<uint8_t>(rng.next());
    }
    std::vector<uint8_t> frame;
    service::encode_request(req, &frame);

    const int strategy = rng.below(6);
    switch (strategy) {
      case 0:  // valid as-is
        break;
      case 1: {  // flip 1..8 bytes anywhere, length prefix included
        const int flips = 1 + rng.below(8);
        for (int f = 0; f < flips; ++f) {
          frame[static_cast<size_t>(rng.below(
              static_cast<int>(frame.size())))] ^=
              static_cast<uint8_t>(1 + rng.below(255));
        }
        break;
      }
      case 2: {  // garbage body with an honest prefix
        const uint32_t len = static_cast<uint32_t>(rng.below(128));
        frame.assign(4, 0);
        for (int b = 0; b < 4; ++b) {
          frame[static_cast<size_t>(b)] =
              static_cast<uint8_t>(len >> (8 * b));
        }
        for (uint32_t b = 0; b < len; ++b) {
          frame.push_back(static_cast<uint8_t>(rng.next()));
        }
        break;
      }
      case 3:  // truncate: cut the tail off a valid frame
        frame.resize(static_cast<size_t>(
            rng.below(static_cast<int>(frame.size()))));
        break;
      case 4: {  // lying prefix: declares more bytes than follow
        const uint32_t lie = static_cast<uint32_t>(frame.size()) +
                             static_cast<uint32_t>(1 + rng.below(1024));
        for (int b = 0; b < 4; ++b) {
          frame[static_cast<size_t>(b)] =
              static_cast<uint8_t>(lie >> (8 * b));
        }
        break;
      }
      case 5: {  // oversized declaration: beyond the hard frame cap
        const uint32_t huge = service::kMaxFrameBytes +
                              1 + static_cast<uint32_t>(rng.next() % 1000000);
        for (int b = 0; b < 4; ++b) {
          frame[static_cast<size_t>(b)] =
              static_cast<uint8_t>(huge >> (8 * b));
        }
        break;
      }
    }

    std::string cerr_;
    service::Socket sock = service::connect_loopback(port, &cerr_);
    if (!sock.valid()) {
      std::fprintf(stderr, "iter %d: connect failed: %s\n", i, cerr_.c_str());
      ++failures;
      continue;
    }
    // Hang detection: a server that neither answers nor closes within the
    // deadline is a bug this harness exists to catch.
    timeval tv{};
    tv.tv_sec = 10;
    setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    if (!service::write_all(sock.fd(), frame)) {
      // The server may close mid-send on poisoned framing; that is a
      // clean, typed outcome at its end.
      ++closed;
      continue;
    }
    // No more bytes are coming: a server waiting out a lying prefix gets
    // EOF now instead of stalling both sides.
    sock.shutdown_write();

    const auto fr = service::read_frame(sock.fd());
    if (fr.status == service::IoStatus::kOk) {
      auto resp = service::decode_response(fr.body);
      if (!resp.ok()) {
        std::fprintf(stderr, "iter %d (strategy %d): undecodable response: %s\n",
                     i, strategy, resp.error().to_string().c_str());
        ++failures;
        continue;
      }
      ++typed;
      if (resp->status == service::WireStatus::kOk) ++valid_ok;
    } else if (fr.status == service::IoStatus::kEof) {
      ++closed;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      std::fprintf(stderr, "iter %d (strategy %d): HANG — no response, no "
                   "close within the deadline\n", i, strategy);
      ++failures;
    } else {
      // Reset while we held unread bytes — the close-side race of a clean
      // server-side close; not a hang, not a crash.
      ++closed;
    }
  }

  // The server must have survived all of it: a valid request still round
  // trips, bit for bit.
  {
    service::ServiceClient client;
    service::WireRequest req;
    req.request_id = 424242;
    req.kernel = "FIR12";
    req.repeats = 1;
    const bool healthy = client.connect(port) && [&] {
      const auto r = client.call(req);
      return r.ok() && r.response.request_id == 424242;
    }();
    if (!healthy) {
      std::fprintf(stderr, "post-fuzz health check FAILED\n");
      ++failures;
    }
  }

  const auto stats = server.stats();
  server.shutdown();
  std::printf(
      "fuzz: %d iters (seed %llu): %llu typed responses (%llu ok), %llu "
      "clean closes, %llu protocol errors server-side, %d failures\n",
      iters, static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(typed),
      static_cast<unsigned long long>(valid_ok),
      static_cast<unsigned long long>(closed),
      static_cast<unsigned long long>(stats.protocol_errors), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "serve") return run_serve(argc, argv);
  if (mode == "client") return run_client(argc, argv);
  if (mode == "soak") return run_soak(argc, argv);
  if (mode == "fuzz") return run_fuzz(argc, argv);
  usage();
  return 2;
}
