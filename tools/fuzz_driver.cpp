// fuzz_driver — randomized ISA differential fuzzing from the command line.
//
// Modes:
//   (default)          generate --count seeded programs, run each through
//                      the differential harness (sim reference, native
//                      tier, orchestrated runs under every crossbar
//                      configuration). Any unexplained divergence is
//                      minimized and dumped as a replayable reproducer
//                      into --artifacts; exit status 1.
//   --break-lowering   self-check: enable the test-only lowering fault
//                      (Paddsw mis-lowered as Paddw), find a diverging
//                      program, minimize it, and require the minimized
//                      reproducer to stay small with the divergence
//                      preserved. Proves the whole find-shrink-replay loop
//                      end to end; exit 0 on success.
//   --replay FILE      re-run a dumped reproducer; exit 2 if it still
//                      diverges, 0 otherwise.
//
// Everything is deterministic in --seed: corpus entry i uses seed+i and
// rotates the generator's crossbar configuration through A..D.
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "backend/lowering.h"
#include "fuzz/differential.h"
#include "fuzz/generator.h"
#include "fuzz/minimizer.h"

namespace {

using namespace subword;

struct DriverOptions {
  uint64_t seed = 1;
  int count = 500;
  std::string artifacts = "fuzz-artifacts";
  double spu_rate = 0.3;
  double defer_rate = 0.5;
  double reject_rate = 0.15;
  std::string pin_config;  // empty = rotate A..D
  bool break_lowering = false;
  std::string replay_path;
};

void usage() {
  std::cerr
      << "usage: fuzz_driver [--seed N] [--count N] [--artifacts DIR]\n"
         "                   [--spu-rate P] [--defer-rate P] [--reject-rate "
         "P]\n"
         "                   [--config A|B|C|D] [--break-lowering]\n"
         "                   [--replay FILE]\n";
}

DriverOptions parse_args(int argc, char** argv) {
  DriverOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        usage();
        std::exit(64);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      o.seed = std::stoull(value());
    } else if (arg == "--count") {
      o.count = std::stoi(value());
    } else if (arg == "--artifacts") {
      o.artifacts = value();
    } else if (arg == "--spu-rate") {
      o.spu_rate = std::stod(value());
    } else if (arg == "--defer-rate") {
      o.defer_rate = std::stod(value());
    } else if (arg == "--reject-rate") {
      o.reject_rate = std::stod(value());
    } else if (arg == "--config") {
      o.pin_config = value();
    } else if (arg == "--break-lowering") {
      o.break_lowering = true;
    } else if (arg == "--replay") {
      o.replay_path = value();
    } else {
      std::cerr << "unknown argument " << arg << "\n";
      usage();
      std::exit(64);
    }
  }
  return o;
}

const core::CrossbarConfig& config_for(const DriverOptions& o, int index) {
  if (!o.pin_config.empty()) {
    for (const auto& cfg : core::kAllConfigs) {
      if (o.pin_config == cfg.name) return cfg;
    }
    std::cerr << "unknown config '" << o.pin_config << "'\n";
    std::exit(64);
  }
  return core::kAllConfigs[static_cast<size_t>(index) %
                           core::kAllConfigs.size()];
}

fuzz::FuzzProgram make_program(const DriverOptions& o, int index) {
  fuzz::GeneratorOptions g;
  g.seed = o.seed + static_cast<uint64_t>(index);
  g.spu_rate = o.spu_rate;
  g.defer_rate = o.defer_rate;
  g.reject_rate = o.reject_rate;
  g.cfg = config_for(o, index);
  return fuzz::generate(g);
}

// Minimize a diverging program and dump original + minimized reproducers.
void dump_divergence(const fuzz::FuzzProgram& fp, const DriverOptions& o) {
  std::filesystem::create_directories(o.artifacts);
  const std::string base =
      o.artifacts + "/div-seed-" + std::to_string(fp.seed);
  fuzz::write_reproducer(fp, base + "-original.txt");

  fuzz::MinimizeStats stats;
  const fuzz::FuzzProgram small =
      fuzz::minimize(fp, fuzz::divergence_oracle(), &stats);
  fuzz::write_reproducer(small, base + "-min.txt");
  std::cerr << "  minimized " << stats.original_size << " -> "
            << stats.minimized_size << " instructions ("
            << stats.oracle_calls << " oracle calls); reproducers at "
            << base << "-{original,min}.txt\n";
}

int run_corpus(const DriverOptions& o) {
  int divergences = 0;
  int rejections = 0;
  int expected_rejects = 0;
  int missing_expected_rejects = 0;
  int total_runs = 0;

  for (int i = 0; i < o.count; ++i) {
    const fuzz::FuzzProgram fp = make_program(o, i);
    const fuzz::DiffResult r = fuzz::run_differential(fp);
    total_runs += r.runs;

    if (!r.reference_ok) {
      std::cerr << "seed " << fp.seed
                << ": generated program failed the reference run (generator "
                   "bug): "
                << r.reference_error << "\n";
      return 1;
    }
    rejections += static_cast<int>(r.rejections.size());
    if (fp.expects_reject) {
      ++expected_rejects;
      if (r.rejections.empty()) {
        ++missing_expected_rejects;
        std::cerr << "seed " << fp.seed
                  << ": planted data-dependent branch was not rejected\n";
      }
    }
    if (!r.divergences.empty()) {
      ++divergences;
      std::cerr << "seed " << fp.seed << ": DIVERGENCE\n";
      for (const auto& d : r.divergences) {
        std::cerr << "  [" << fuzz::to_string(d.label) << "] " << d.detail
                  << "\n";
      }
      dump_divergence(fp, o);
    }
  }

  std::cout << "fuzz: " << o.count << " programs, " << total_runs
            << " differential runs, " << rejections << " typed rejections ("
            << expected_rejects << " planted), " << divergences
            << " divergences\n";
  if (missing_expected_rejects > 0) return 1;
  return divergences == 0 ? 0 : 1;
}

int run_break_lowering(const DriverOptions& o) {
  backend::set_lowering_fault_injection(true);
  const int max_attempts = 500;
  for (int i = 0; i < max_attempts; ++i) {
    DriverOptions gen = o;
    gen.reject_rate = 0.0;  // chase the injected fault, not planted rejects
    const fuzz::FuzzProgram fp = make_program(gen, i);
    const fuzz::DiffResult r = fuzz::run_differential(fp);
    if (!r.reference_ok || r.divergences.empty()) continue;

    std::cerr << "break-lowering: seed " << fp.seed << " diverges ("
              << fuzz::to_string(r.divergences.front().label) << ")\n";
    fuzz::MinimizeStats stats;
    const fuzz::FuzzProgram small =
        fuzz::minimize(fp, fuzz::divergence_oracle(), &stats);

    // The minimized program must still diverge, and must be small enough
    // to eyeball (the whole point of the shrink loop).
    if (!fuzz::divergence_oracle()(small)) {
      std::cerr << "break-lowering: minimized program lost the divergence\n";
      backend::set_lowering_fault_injection(false);
      return 1;
    }
    std::filesystem::create_directories(o.artifacts);
    const std::string path = o.artifacts + "/break-lowering-min.txt";
    fuzz::write_reproducer(small, path);
    backend::set_lowering_fault_injection(false);

    std::cout << "break-lowering: minimized " << stats.original_size
              << " -> " << stats.minimized_size << " instructions ("
              << stats.oracle_calls << " oracle calls), reproducer at "
              << path << "\n";
    if (stats.minimized_size > 10) {
      std::cerr << "break-lowering: minimized program still has "
                << stats.minimized_size << " instructions (> 10)\n";
      return 1;
    }
    return 0;
  }
  backend::set_lowering_fault_injection(false);
  std::cerr << "break-lowering: no divergence found in " << max_attempts
            << " programs — fault injection is not reaching the corpus\n";
  return 1;
}

int run_replay(const DriverOptions& o) {
  const fuzz::FuzzProgram fp = fuzz::load_reproducer(o.replay_path);
  const fuzz::DiffResult r = fuzz::run_differential(fp);
  if (!r.reference_ok) {
    std::cerr << "replay: reference run failed: " << r.reference_error
              << "\n";
    return 1;
  }
  for (const auto& rej : r.rejections) {
    std::cout << "replay: [" << fuzz::to_string(rej.label) << "] rejected: "
              << rej.reason << "\n";
  }
  if (!r.divergences.empty()) {
    for (const auto& d : r.divergences) {
      std::cout << "replay: [" << fuzz::to_string(d.label)
                << "] DIVERGENCE: " << d.detail << "\n";
    }
    return 2;
  }
  std::cout << "replay: no divergence (" << r.runs << " runs)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const DriverOptions o = parse_args(argc, argv);
  try {
    if (!o.replay_path.empty()) return run_replay(o);
    if (o.break_lowering) return run_break_lowering(o);
    return run_corpus(o);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_driver: " << e.what() << "\n";
    return 1;
  }
}
