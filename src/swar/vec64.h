// vec64.h — 64-bit packed sub-word vector, the value type of the MMX model.
//
// A Vec64 is the contents of one MMX register: 8x8-bit, 4x16-bit, 2x32-bit
// or 1x64-bit lanes, little-endian lane order (lane 0 is the least
// significant), exactly as on x86.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace subword::swar {

// Lane type traits: lane count, bit width and masks for each sub-word type.
template <typename T>
struct LaneTraits {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                "lanes must be integral and at most 64 bits");
  static constexpr int kBits = 8 * static_cast<int>(sizeof(T));
  static constexpr int kCount = 64 / kBits;
  using Unsigned = std::make_unsigned_t<T>;
  using Signed = std::make_signed_t<T>;

  // Mask with every lane's MSB set (e.g. 0x8080...80 for 8-bit lanes).
  static constexpr uint64_t high_bits() {
    uint64_t m = 0;
    for (int i = 0; i < kCount; ++i) {
      m |= (uint64_t{1} << (kBits - 1)) << (i * kBits);
    }
    return m;
  }
  // Mask for a single lane (e.g. 0xFF for 8-bit lanes).
  static constexpr uint64_t lane_mask() {
    return kBits == 64 ? ~uint64_t{0} : ((uint64_t{1} << kBits) - 1);
  }
};

// One 64-bit packed register value.
class Vec64 {
 public:
  constexpr Vec64() = default;
  constexpr explicit Vec64(uint64_t bits) : bits_(bits) {}

  [[nodiscard]] constexpr uint64_t bits() const { return bits_; }
  constexpr void set_bits(uint64_t b) { bits_ = b; }

  // Lane accessors. T selects the sub-word interpretation.
  template <typename T>
  [[nodiscard]] constexpr T lane(int i) const {
    using LT = LaneTraits<T>;
    const auto raw = static_cast<typename LT::Unsigned>(
        (bits_ >> (i * LT::kBits)) & LT::lane_mask());
    return static_cast<T>(raw);
  }

  template <typename T>
  constexpr void set_lane(int i, T value) {
    using LT = LaneTraits<T>;
    const uint64_t m = LT::lane_mask() << (i * LT::kBits);
    const auto raw = static_cast<uint64_t>(
                         static_cast<typename LT::Unsigned>(value))
                     << (i * LT::kBits);
    bits_ = (bits_ & ~m) | (raw & m);
  }

  // Byte view (byte 0 = least significant), used by the SPU crossbar which
  // addresses the register file at byte granularity.
  [[nodiscard]] constexpr uint8_t byte(int i) const { return lane<uint8_t>(i); }
  constexpr void set_byte(int i, uint8_t v) { set_lane<uint8_t>(i, v); }

  template <typename T>
  [[nodiscard]] static constexpr Vec64 from_lanes(
      const std::array<T, LaneTraits<T>::kCount>& lanes) {
    Vec64 v;
    for (int i = 0; i < LaneTraits<T>::kCount; ++i) v.set_lane<T>(i, lanes[i]);
    return v;
  }

  template <typename T>
  [[nodiscard]] constexpr std::array<T, LaneTraits<T>::kCount> to_lanes()
      const {
    std::array<T, LaneTraits<T>::kCount> out{};
    for (int i = 0; i < LaneTraits<T>::kCount; ++i) out[i] = lane<T>(i);
    return out;
  }

  // Every lane set to `value`.
  template <typename T>
  [[nodiscard]] static constexpr Vec64 broadcast(T value) {
    Vec64 v;
    for (int i = 0; i < LaneTraits<T>::kCount; ++i) v.set_lane<T>(i, value);
    return v;
  }

  friend constexpr bool operator==(Vec64 a, Vec64 b) {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Vec64 a, Vec64 b) {
    return a.bits_ != b.bits_;
  }

 private:
  uint64_t bits_ = 0;
};

// Hex rendering for diagnostics ("0123456789abcdef" style, MSB first).
[[nodiscard]] inline std::string to_hex(Vec64 v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s = "0x";
  for (int nibble = 15; nibble >= 0; --nibble) {
    s.push_back(kDigits[(v.bits() >> (nibble * 4)) & 0xF]);
  }
  return s;
}

}  // namespace subword::swar
