// ops_portable.h — portable SWAR backend.
//
// Implements the semantics of every MMX data operation on Vec64 without
// intrinsics. Wrapping add/sub use the classic carry-chain-masking bit
// tricks — the software analogue of the hardware description in the paper
// ("adders ... need to have their carry chains optionally broken at
// sub-word boundaries"). Saturating, multiply, pack/unpack, compare and
// shift operations use per-lane loops that the optimizer vectorizes.
//
// Lane semantics follow the Intel SDM definitions for the MMX instruction
// set (PADD*, PSUB*, PMULLW, PMULHW, PMADDWD, PACK*, PUNPCK*, PCMP*,
// PAND/PANDN/POR/PXOR, PSLL/PSRL/PSRA). The SSE2 backend in ops_sse2.h is
// the cross-check.
#pragma once

#include <cstdint>

#include "swar/saturate.h"
#include "swar/vec64.h"

namespace subword::swar::portable {

// ---------------------------------------------------------------------------
// Wrapping add/sub (PADDB/W/D, PSUBB/W/D and the Q forms).
//
// add: split each lane into (low bits, MSB). Low bits are added with the
// lane MSB positions masked out so no carry crosses a lane boundary; the
// MSBs are then fixed up with XOR (addition without carry-in at the MSB is
// a ^ b, and the carry *into* the MSB is already present in `low`).
// ---------------------------------------------------------------------------
template <typename T>
[[nodiscard]] constexpr Vec64 add(Vec64 a, Vec64 b) {
  constexpr uint64_t kHi = LaneTraits<T>::high_bits();
  const uint64_t low = (a.bits() & ~kHi) + (b.bits() & ~kHi);
  return Vec64{low ^ ((a.bits() ^ b.bits()) & kHi)};
}

// sub: bias every lane of `a` with its MSB set so the borrow never leaves
// the lane, then repair the MSBs: the true MSB of a - b is
// a_msb ^ b_msb ^ borrow_in, and `low` holds NOT(borrow_out) in the MSB
// position after the biased subtract.
template <typename T>
[[nodiscard]] constexpr Vec64 sub(Vec64 a, Vec64 b) {
  constexpr uint64_t kHi = LaneTraits<T>::high_bits();
  const uint64_t low = (a.bits() | kHi) - (b.bits() & ~kHi);
  return Vec64{low ^ ((a.bits() ^ ~b.bits()) & kHi)};
}

// ---------------------------------------------------------------------------
// Saturating add/sub (PADDS*, PADDUS*, PSUBS*, PSUBUS*). T is the lane type
// whose numeric limits define the clamp bounds: int8_t for PADDSB,
// uint16_t for PADDUSW, etc.
// ---------------------------------------------------------------------------
template <typename T>
[[nodiscard]] constexpr Vec64 add_sat(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<T>(i, saturate<T, int64_t>(static_cast<int64_t>(a.lane<T>(i)) +
                                          static_cast<int64_t>(b.lane<T>(i))));
  }
  return r;
}

template <typename T>
[[nodiscard]] constexpr Vec64 sub_sat(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<T>(i, saturate<T, int64_t>(static_cast<int64_t>(a.lane<T>(i)) -
                                          static_cast<int64_t>(b.lane<T>(i))));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Multiplies.
// ---------------------------------------------------------------------------

// PMULLW: low 16 bits of the 16x16 product (identical for signed/unsigned).
[[nodiscard]] constexpr Vec64 mullo16(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 4; ++i) {
    const int32_t p = static_cast<int32_t>(a.lane<int16_t>(i)) *
                      static_cast<int32_t>(b.lane<int16_t>(i));
    r.set_lane<uint16_t>(i, static_cast<uint16_t>(p & 0xFFFF));
  }
  return r;
}

// PMULHW: high 16 bits of the signed 16x16 product.
[[nodiscard]] constexpr Vec64 mulhi16(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 4; ++i) {
    const int32_t p = static_cast<int32_t>(a.lane<int16_t>(i)) *
                      static_cast<int32_t>(b.lane<int16_t>(i));
    r.set_lane<uint16_t>(i, static_cast<uint16_t>((p >> 16) & 0xFFFF));
  }
  return r;
}

// PMADDWD: per 32-bit group, a0*b0 + a1*b1 of the two signed words, with
// wrap-around 32-bit addition (the only overflow case is
// (-32768 * -32768) * 2 which yields 0x80000000, as on hardware).
[[nodiscard]] constexpr Vec64 maddwd(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 2; ++i) {
    const int32_t p0 = static_cast<int32_t>(a.lane<int16_t>(2 * i)) *
                       static_cast<int32_t>(b.lane<int16_t>(2 * i));
    const int32_t p1 = static_cast<int32_t>(a.lane<int16_t>(2 * i + 1)) *
                       static_cast<int32_t>(b.lane<int16_t>(2 * i + 1));
    const uint32_t sum =
        static_cast<uint32_t>(p0) + static_cast<uint32_t>(p1);
    r.set_lane<uint32_t>(i, sum);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Compares (all-ones on true, zero on false).
// ---------------------------------------------------------------------------
template <typename T>
[[nodiscard]] constexpr Vec64 cmpeq(Vec64 a, Vec64 b) {
  Vec64 r;
  using U = typename LaneTraits<T>::Unsigned;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<U>(i, a.lane<T>(i) == b.lane<T>(i) ? static_cast<U>(~U{0})
                                                  : U{0});
  }
  return r;
}

template <typename T>
[[nodiscard]] constexpr Vec64 cmpgt(Vec64 a, Vec64 b) {
  Vec64 r;
  using S = typename LaneTraits<T>::Signed;
  using U = typename LaneTraits<T>::Unsigned;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<U>(i, a.lane<S>(i) > b.lane<S>(i) ? static_cast<U>(~U{0})
                                                 : U{0});
  }
  return r;
}

// ---------------------------------------------------------------------------
// Logical.
// ---------------------------------------------------------------------------
[[nodiscard]] constexpr Vec64 and_(Vec64 a, Vec64 b) {
  return Vec64{a.bits() & b.bits()};
}
// PANDN: NOT(dst) AND src.
[[nodiscard]] constexpr Vec64 andn(Vec64 a, Vec64 b) {
  return Vec64{~a.bits() & b.bits()};
}
[[nodiscard]] constexpr Vec64 or_(Vec64 a, Vec64 b) {
  return Vec64{a.bits() | b.bits()};
}
[[nodiscard]] constexpr Vec64 xor_(Vec64 a, Vec64 b) {
  return Vec64{a.bits() ^ b.bits()};
}

// ---------------------------------------------------------------------------
// Shifts. `count` is the full 64-bit shift count (MMX reads it from either
// an immediate or a whole register). Logical shifts with count >= lane width
// produce zero; arithmetic right shift saturates the count at width-1
// (sign fill), both per the SDM.
// ---------------------------------------------------------------------------
template <typename T>
[[nodiscard]] constexpr Vec64 shl(Vec64 a, uint64_t count) {
  using U = typename LaneTraits<T>::Unsigned;
  Vec64 r;
  if (count >= static_cast<uint64_t>(LaneTraits<T>::kBits)) return r;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<U>(i, static_cast<U>(a.lane<U>(i) << count));
  }
  return r;
}

template <typename T>
[[nodiscard]] constexpr Vec64 shr_logical(Vec64 a, uint64_t count) {
  using U = typename LaneTraits<T>::Unsigned;
  Vec64 r;
  if (count >= static_cast<uint64_t>(LaneTraits<T>::kBits)) return r;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<U>(i, static_cast<U>(a.lane<U>(i) >> count));
  }
  return r;
}

template <typename T>
[[nodiscard]] constexpr Vec64 shr_arith(Vec64 a, uint64_t count) {
  using S = typename LaneTraits<T>::Signed;
  const uint64_t c =
      count >= static_cast<uint64_t>(LaneTraits<T>::kBits)
          ? static_cast<uint64_t>(LaneTraits<T>::kBits - 1)
          : count;
  Vec64 r;
  for (int i = 0; i < LaneTraits<T>::kCount; ++i) {
    r.set_lane<S>(i, static_cast<S>(a.lane<S>(i) >> c));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Pack with saturation. Low half of the result comes from `a` (the
// destination register on MMX), high half from `b` (the source).
// ---------------------------------------------------------------------------

// PACKSSWB: 4+4 signed words -> 8 signed-saturated bytes.
[[nodiscard]] constexpr Vec64 pack_sswb(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 4; ++i) {
    r.set_lane<int8_t>(i, saturate<int8_t, int32_t>(a.lane<int16_t>(i)));
    r.set_lane<int8_t>(i + 4, saturate<int8_t, int32_t>(b.lane<int16_t>(i)));
  }
  return r;
}

// PACKSSDW: 2+2 signed dwords -> 4 signed-saturated words.
[[nodiscard]] constexpr Vec64 pack_ssdw(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 2; ++i) {
    r.set_lane<int16_t>(i, saturate<int16_t, int64_t>(a.lane<int32_t>(i)));
    r.set_lane<int16_t>(i + 2, saturate<int16_t, int64_t>(b.lane<int32_t>(i)));
  }
  return r;
}

// PACKUSWB: 4+4 signed words -> 8 unsigned-saturated bytes.
[[nodiscard]] constexpr Vec64 pack_uswb(Vec64 a, Vec64 b) {
  Vec64 r;
  for (int i = 0; i < 4; ++i) {
    r.set_lane<uint8_t>(i, saturate<uint8_t, int32_t>(a.lane<int16_t>(i)));
    r.set_lane<uint8_t>(i + 4, saturate<uint8_t, int32_t>(b.lane<int16_t>(i)));
  }
  return r;
}

// ---------------------------------------------------------------------------
// Unpack/interleave. "low" interleaves the low halves of the two registers,
// "high" the high halves; destination lane 0 comes from `a`.
// ---------------------------------------------------------------------------
template <typename T>
[[nodiscard]] constexpr Vec64 unpack_lo(Vec64 a, Vec64 b) {
  using U = typename LaneTraits<T>::Unsigned;
  constexpr int kHalf = LaneTraits<T>::kCount / 2;
  Vec64 r;
  for (int i = 0; i < kHalf; ++i) {
    r.set_lane<U>(2 * i, a.lane<U>(i));
    r.set_lane<U>(2 * i + 1, b.lane<U>(i));
  }
  return r;
}

template <typename T>
[[nodiscard]] constexpr Vec64 unpack_hi(Vec64 a, Vec64 b) {
  using U = typename LaneTraits<T>::Unsigned;
  constexpr int kHalf = LaneTraits<T>::kCount / 2;
  Vec64 r;
  for (int i = 0; i < kHalf; ++i) {
    r.set_lane<U>(2 * i, a.lane<U>(kHalf + i));
    r.set_lane<U>(2 * i + 1, b.lane<U>(kHalf + i));
  }
  return r;
}

}  // namespace subword::swar::portable
