// swar.h — public entry point of the sub-word arithmetic library.
//
// `subword::swar::active` aliases the backend the rest of the system uses:
// the SSE2 intrinsics backend when available, the portable bit-trick
// backend otherwise. Both are always compiled where possible so tests can
// cross-check them lane-for-lane.
#pragma once

#include "swar/ops_portable.h"
#include "swar/ops_sse2.h"
#include "swar/vec64.h"

namespace subword::swar {

#if defined(__SSE2__) && !defined(SUBWORD_FORCE_PORTABLE_SWAR)
namespace active = sse2;
inline constexpr bool kUsingIntrinsics = true;
#else
namespace active = portable;
inline constexpr bool kUsingIntrinsics = false;
#endif

}  // namespace subword::swar
