// ops_sse2.h — intrinsics SWAR backend.
//
// Every MMX data operation expressed through its SSE2 equivalent on the low
// 64 bits of an __m128i. This backend exists for two reasons: it is the
// fast path for the simulator's hot loop, and it is an *independent*
// implementation of the MMX semantics that the property tests drive against
// the portable backend (a disagreement means one of them mis-reads the SDM).
//
// Only compiled on x86-64 (SSE2 is architecturally guaranteed there).
#pragma once

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstdint>

#include "swar/vec64.h"

namespace subword::swar::sse2 {

inline __m128i load(Vec64 v) {
  return _mm_cvtsi64_si128(static_cast<int64_t>(v.bits()));
}

inline Vec64 store(__m128i x) {
  return Vec64{static_cast<uint64_t>(_mm_cvtsi128_si64(x))};
}

// -- wrapping add/sub --------------------------------------------------------
template <typename T>
Vec64 add(Vec64 a, Vec64 b) {
  if constexpr (sizeof(T) == 1) {
    return store(_mm_add_epi8(load(a), load(b)));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_add_epi16(load(a), load(b)));
  } else if constexpr (sizeof(T) == 4) {
    return store(_mm_add_epi32(load(a), load(b)));
  } else {
    return store(_mm_add_epi64(load(a), load(b)));
  }
}

template <typename T>
Vec64 sub(Vec64 a, Vec64 b) {
  if constexpr (sizeof(T) == 1) {
    return store(_mm_sub_epi8(load(a), load(b)));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_sub_epi16(load(a), load(b)));
  } else if constexpr (sizeof(T) == 4) {
    return store(_mm_sub_epi32(load(a), load(b)));
  } else {
    return store(_mm_sub_epi64(load(a), load(b)));
  }
}

// -- saturating add/sub ------------------------------------------------------
template <typename T>
Vec64 add_sat(Vec64 a, Vec64 b) {
  if constexpr (std::is_same_v<T, int8_t>) {
    return store(_mm_adds_epi8(load(a), load(b)));
  } else if constexpr (std::is_same_v<T, uint8_t>) {
    return store(_mm_adds_epu8(load(a), load(b)));
  } else if constexpr (std::is_same_v<T, int16_t>) {
    return store(_mm_adds_epi16(load(a), load(b)));
  } else {
    static_assert(std::is_same_v<T, uint16_t>, "MMX saturates 8/16-bit only");
    return store(_mm_adds_epu16(load(a), load(b)));
  }
}

template <typename T>
Vec64 sub_sat(Vec64 a, Vec64 b) {
  if constexpr (std::is_same_v<T, int8_t>) {
    return store(_mm_subs_epi8(load(a), load(b)));
  } else if constexpr (std::is_same_v<T, uint8_t>) {
    return store(_mm_subs_epu8(load(a), load(b)));
  } else if constexpr (std::is_same_v<T, int16_t>) {
    return store(_mm_subs_epi16(load(a), load(b)));
  } else {
    static_assert(std::is_same_v<T, uint16_t>, "MMX saturates 8/16-bit only");
    return store(_mm_subs_epu16(load(a), load(b)));
  }
}

// -- multiplies --------------------------------------------------------------
inline Vec64 mullo16(Vec64 a, Vec64 b) {
  return store(_mm_mullo_epi16(load(a), load(b)));
}
inline Vec64 mulhi16(Vec64 a, Vec64 b) {
  return store(_mm_mulhi_epi16(load(a), load(b)));
}
inline Vec64 maddwd(Vec64 a, Vec64 b) {
  return store(_mm_madd_epi16(load(a), load(b)));
}

// -- compares ----------------------------------------------------------------
template <typename T>
Vec64 cmpeq(Vec64 a, Vec64 b) {
  if constexpr (sizeof(T) == 1) {
    return store(_mm_cmpeq_epi8(load(a), load(b)));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_cmpeq_epi16(load(a), load(b)));
  } else {
    static_assert(sizeof(T) == 4, "MMX compares 8/16/32-bit lanes");
    return store(_mm_cmpeq_epi32(load(a), load(b)));
  }
}

template <typename T>
Vec64 cmpgt(Vec64 a, Vec64 b) {
  if constexpr (sizeof(T) == 1) {
    return store(_mm_cmpgt_epi8(load(a), load(b)));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_cmpgt_epi16(load(a), load(b)));
  } else {
    static_assert(sizeof(T) == 4, "MMX compares 8/16/32-bit lanes");
    return store(_mm_cmpgt_epi32(load(a), load(b)));
  }
}

// -- logical -----------------------------------------------------------------
inline Vec64 and_(Vec64 a, Vec64 b) {
  return store(_mm_and_si128(load(a), load(b)));
}
inline Vec64 andn(Vec64 a, Vec64 b) {
  return store(_mm_andnot_si128(load(a), load(b)));
}
inline Vec64 or_(Vec64 a, Vec64 b) {
  return store(_mm_or_si128(load(a), load(b)));
}
inline Vec64 xor_(Vec64 a, Vec64 b) {
  return store(_mm_xor_si128(load(a), load(b)));
}

// -- shifts ------------------------------------------------------------------
// The _mm_sll/_mm_srl/_mm_sra forms take the count in a vector register and
// implement exactly the MMX out-of-range behaviour (zero fill / sign fill).
template <typename T>
Vec64 shl(Vec64 a, uint64_t count) {
  const __m128i c = _mm_cvtsi64_si128(static_cast<int64_t>(count));
  if constexpr (sizeof(T) == 2) {
    return store(_mm_sll_epi16(load(a), c));
  } else if constexpr (sizeof(T) == 4) {
    return store(_mm_sll_epi32(load(a), c));
  } else {
    static_assert(sizeof(T) == 8, "MMX shifts 16/32/64-bit lanes");
    return store(_mm_sll_epi64(load(a), c));
  }
}

template <typename T>
Vec64 shr_logical(Vec64 a, uint64_t count) {
  const __m128i c = _mm_cvtsi64_si128(static_cast<int64_t>(count));
  if constexpr (sizeof(T) == 2) {
    return store(_mm_srl_epi16(load(a), c));
  } else if constexpr (sizeof(T) == 4) {
    return store(_mm_srl_epi32(load(a), c));
  } else {
    static_assert(sizeof(T) == 8, "MMX shifts 16/32/64-bit lanes");
    return store(_mm_srl_epi64(load(a), c));
  }
}

template <typename T>
Vec64 shr_arith(Vec64 a, uint64_t count) {
  const __m128i c = _mm_cvtsi64_si128(static_cast<int64_t>(count));
  if constexpr (sizeof(T) == 2) {
    return store(_mm_sra_epi16(load(a), c));
  } else {
    static_assert(sizeof(T) == 4, "MMX PSRA supports 16/32-bit lanes");
    return store(_mm_sra_epi32(load(a), c));
  }
}

// -- pack / unpack -----------------------------------------------------------
// The 128-bit pack instructions pack both qwords of their first operand into
// the low 8 bytes. Loading [a | b] as one __m128i makes the low 64 bits of
// the packed result exactly the MMX pack of (a, b).
inline __m128i load_pair(Vec64 a, Vec64 b) {
  return _mm_set_epi64x(static_cast<int64_t>(b.bits()),
                        static_cast<int64_t>(a.bits()));
}

inline Vec64 pack_sswb(Vec64 a, Vec64 b) {
  const __m128i v = load_pair(a, b);
  return store(_mm_packs_epi16(v, v));
}
inline Vec64 pack_ssdw(Vec64 a, Vec64 b) {
  const __m128i v = load_pair(a, b);
  return store(_mm_packs_epi32(v, v));
}
inline Vec64 pack_uswb(Vec64 a, Vec64 b) {
  const __m128i v = load_pair(a, b);
  return store(_mm_packus_epi16(v, v));
}

template <typename T>
Vec64 unpack_lo(Vec64 a, Vec64 b) {
  if constexpr (sizeof(T) == 1) {
    return store(_mm_unpacklo_epi8(load(a), load(b)));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_unpacklo_epi16(load(a), load(b)));
  } else {
    static_assert(sizeof(T) == 4, "MMX unpacks 8/16/32-bit lanes");
    return store(_mm_unpacklo_epi32(load(a), load(b)));
  }
}

// MMX PUNPCKH* reads the *high* 32 bits of each 64-bit register; shift them
// down first, then interleave as "low".
template <typename T>
Vec64 unpack_hi(Vec64 a, Vec64 b) {
  const __m128i ah = _mm_srli_epi64(load(a), 32);
  const __m128i bh = _mm_srli_epi64(load(b), 32);
  if constexpr (sizeof(T) == 1) {
    return store(_mm_unpacklo_epi8(ah, bh));
  } else if constexpr (sizeof(T) == 2) {
    return store(_mm_unpacklo_epi16(ah, bh));
  } else {
    static_assert(sizeof(T) == 4, "MMX unpacks 8/16/32-bit lanes");
    return store(_mm_unpacklo_epi32(ah, bh));
  }
}

}  // namespace subword::swar::sse2

#endif  // defined(__SSE2__)
