// saturate.h — saturation helpers shared by the portable SWAR backend and
// the golden references. MMX saturating instructions clamp to the natural
// bounds of the destination lane type instead of wrapping.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace subword::swar {

// Clamp a wide intermediate into the representable range of Narrow.
template <typename Narrow, typename Wide>
[[nodiscard]] constexpr Narrow saturate(Wide v) {
  constexpr Wide lo = static_cast<Wide>(std::numeric_limits<Narrow>::min());
  constexpr Wide hi = static_cast<Wide>(std::numeric_limits<Narrow>::max());
  return static_cast<Narrow>(std::clamp(v, lo, hi));
}

// Signed saturating add/sub on lane type T computed through a wider type.
template <typename T>
[[nodiscard]] constexpr T sat_add(T a, T b) {
  return saturate<T, int64_t>(static_cast<int64_t>(a) +
                              static_cast<int64_t>(b));
}

template <typename T>
[[nodiscard]] constexpr T sat_sub(T a, T b) {
  return saturate<T, int64_t>(static_cast<int64_t>(a) -
                              static_cast<int64_t>(b));
}

}  // namespace subword::swar
