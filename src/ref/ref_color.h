// ref_color.h — scalar golden RGB -> YCbCr color-space conversion.
//
// Semantics contract shared with the MMX kernel (kernels/color_convert.h),
// using the classic JPEG integer coefficients scaled by 256:
//   Y  = (77*R + 150*G +  29*B + 128) >> 8          (unsigned, rounded)
//   Cb = ((-43*R -  85*G + 128*B) >> 8) + 128       (signed, truncated)
//   Cr = ((128*R - 107*G -  21*B) >> 8) + 128       (signed, truncated)
// Inputs are 0..255 in 16-bit lanes; every product and partial sum fits a
// 16-bit lane (the kernel accumulates with wrapping PADDW and never wraps),
// and the chroma shift is arithmetic (PSRAW) while luma is logical (PSRLW).
// Chroma rounding is omitted because sum+128 could overflow the int16 lane
// at the negative extreme — the reference mirrors the kernel bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

struct YCbCrPlanes {
  std::vector<int16_t> y;
  std::vector<int16_t> cb;
  std::vector<int16_t> cr;
};

// `rgb` is pixel-interleaved (R0 G0 B0 R1 G1 B1 ...), 3*n entries for n
// pixels; returns three planar n-entry channels.
[[nodiscard]] YCbCrPlanes rgb_to_ycbcr(std::span<const int16_t> rgb);

}  // namespace subword::ref
