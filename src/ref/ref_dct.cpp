#include "ref/ref_dct.h"

#include "swar/saturate.h"

namespace subword::ref {

Block8x8 dct_rows(const Block8x8& in, std::span<const int16_t> basis) {
  Block8x8 out{};
  for (int r = 0; r < 8; ++r) {
    for (int u = 0; u < 8; ++u) {
      uint32_t acc = 0;  // wrapping, as the PADDD chain wraps
      for (int x = 0; x < 8; ++x) {
        const int32_t p =
            static_cast<int32_t>(in[static_cast<size_t>(r * 8 + x)]) *
            static_cast<int32_t>(basis[static_cast<size_t>(u * 8 + x)]);
        acc += static_cast<uint32_t>(p);
      }
      out[static_cast<size_t>(r * 8 + u)] =
          swar::saturate<int16_t, int32_t>(static_cast<int32_t>(acc) >> 13);
    }
  }
  return out;
}

Block8x8 transpose8(const Block8x8& in) {
  Block8x8 out{};
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      out[static_cast<size_t>(c * 8 + r)] = in[static_cast<size_t>(r * 8 + c)];
    }
  }
  return out;
}

Block8x8 dct2d(const Block8x8& in, std::span<const int16_t> basis) {
  const Block8x8 rows = dct_rows(in, basis);
  const Block8x8 t1 = transpose8(rows);
  const Block8x8 cols = dct_rows(t1, basis);
  return transpose8(cols);
}

}  // namespace subword::ref
