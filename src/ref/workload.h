// workload.h — deterministic synthetic workload generation.
//
// The paper ran the Intel IPP sample workloads; we have no access to those
// inputs, so every experiment uses seeded synthetic data (the kernels under
// study contain no data-dependent branches, so cycle counts are input-
// independent; numeric correctness is checked bit-exactly against the
// references either way).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subword::ref {

// SplitMix64 — tiny, high-quality, reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [lo, hi] inclusive.
  int32_t range(int32_t lo, int32_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int32_t>(next() % span);
  }

  int16_t sample_q15(int16_t amplitude = 16000) {
    return static_cast<int16_t>(range(-amplitude, amplitude));
  }

 private:
  uint64_t state_;
};

// A block of 16-bit samples (audio-like, bounded amplitude so FIR/IIR
// accumulators stay in comfortable fixed-point range).
[[nodiscard]] std::vector<int16_t> make_samples(size_t n, uint64_t seed,
                                                int16_t amplitude = 12000);

// FIR/IIR coefficients, Q15-ish but small enough that sums stay sane.
[[nodiscard]] std::vector<int16_t> make_coeffs(size_t taps, uint64_t seed);

// Row-major 16-bit matrix with small entries.
[[nodiscard]] std::vector<int16_t> make_matrix(size_t rows, size_t cols,
                                               uint64_t seed,
                                               int16_t amplitude = 1000);

// 8-bit pixels (video-like, full 0..255 range) — byte workloads such as
// SAD motion estimation.
[[nodiscard]] std::vector<uint8_t> make_bytes(size_t n, uint64_t seed);

// Pixels widened to 16-bit lanes (still 0..255) — the layout the 16-bit
// color-conversion and convolution kernels consume.
[[nodiscard]] std::vector<int16_t> make_pixels(size_t n, uint64_t seed);

// Q15 cosine table: cos(2*pi*k/n) for k in [0, n/2), used by the FFT
// kernel and its reference.
[[nodiscard]] std::vector<int16_t> make_twiddles(size_t n);

// Q15 DCT-II basis, 8x8: C[u][x] = s(u) * cos((2x+1)u*pi/16) in Q13
// (Q13 keeps the 1-D pass inside 16-bit after the pmaddwd/shift step).
[[nodiscard]] std::vector<int16_t> make_dct_basis();

}  // namespace subword::ref
