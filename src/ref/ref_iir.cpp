#include "ref/ref_iir.h"

#include "swar/saturate.h"

namespace subword::ref {

std::vector<int16_t> iir(std::span<const int16_t> x,
                         std::span<const int16_t> b,
                         std::span<const int16_t> a, int shift) {
  std::vector<int16_t> y(x.size());
  for (size_t n = 0; n < x.size(); ++n) {
    int64_t acc = 0;
    for (size_t k = 0; k < b.size(); ++k) {
      if (n < k) break;
      acc += static_cast<int64_t>(b[k]) * static_cast<int64_t>(x[n - k]);
    }
    for (size_t k = 1; k <= a.size(); ++k) {
      if (n < k) break;
      acc -= static_cast<int64_t>(a[k - 1]) * static_cast<int64_t>(y[n - k]);
    }
    // The kernel moves the shifted accumulator into MMX through MOVD
    // (32-bit) before PACKSSDW saturates it; mirror the truncation.
    const auto t = static_cast<int32_t>(acc >> shift);
    y[n] = swar::saturate<int16_t, int32_t>(t);
  }
  return y;
}

}  // namespace subword::ref
