#include "ref/ref_fir.h"

#include "swar/saturate.h"

namespace subword::ref {

std::vector<int16_t> fir(std::span<const int16_t> x,
                         std::span<const int16_t> coeffs, int shift) {
  std::vector<int16_t> y(x.size());
  for (size_t n = 0; n < x.size(); ++n) {
    uint32_t acc = 0;  // wrapping, as the PADDD accumulator chain wraps
    for (size_t k = 0; k < coeffs.size(); ++k) {
      if (n < k) break;
      const int32_t prod = static_cast<int32_t>(coeffs[k]) *
                           static_cast<int32_t>(x[n - k]);
      acc += static_cast<uint32_t>(prod);
    }
    const int32_t shifted = static_cast<int32_t>(acc) >> shift;
    y[n] = swar::saturate<int16_t, int32_t>(shifted);
  }
  return y;
}

}  // namespace subword::ref
