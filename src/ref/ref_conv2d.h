// ref_conv2d.h — scalar golden 2D convolution (3x3, valid region).
//
// Semantics contract shared with the MMX kernel (kernels/conv2d.h):
//   out[y][x] = ( sum_{dy,dx} k[dy][dx] * in[y+dy][x+dx] ) >> shift
// for y in [0, in_h-3], x in [0, out_w), with a truncating arithmetic
// shift. Accumulation is wrapping 16-bit (PMULLW/PADDW) — the workloads
// keep |coeff| <= 8 and pixels in 0..255 so no lane ever wraps, and the
// scalar int arithmetic below is bit-identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

// `in` is row-major in_w x in_h; `k` is a row-major 3x3 kernel. Produces
// out_w x (in_h-2) outputs where out_w <= in_w-2 (the kernel's vector
// width may not cover the whole valid region; the MMX kernel computes
// out_w = 16 from a 20-wide input).
[[nodiscard]] std::vector<int16_t> conv2d_3x3(std::span<const int16_t> in,
                                              size_t in_w, size_t in_h,
                                              std::span<const int16_t> k,
                                              size_t out_w, int shift);

}  // namespace subword::ref
