// ref_fft.h — scalar golden radix-2 fixed-point FFT (Q15).
//
// Semantics contract shared with the MMX kernel (kernels/fft.h):
//  * input: N complex samples, interleaved int16 (re, im), N a power of 2;
//  * bit-reversal permutation first (precomputed index table);
//  * stage 1 (W = 1):   a' = sat16(a + b) >> 1,  b' = sat16(a - b) >> 1
//    (PADDSW/PSUBSW then PSRAW 1);
//  * stages s >= 2: t = W * b with
//        t_re = sat16( (br*wr - bi*wi) >> 15 )
//        t_im = sat16( (br*wi + bi*wr) >> 15 )
//    computed exactly as PMADDWD -> PSRAD 15 -> PACKSSDW, then
//        a' = sat16(a + t) >> 1,   b' = sat16(a - t) >> 1.
//  * twiddles W = e^(-2*pi*i*k/N) stored Q15 in two pair tables laid out
//    linearly per stage, exactly as the kernel walks them:
//        tw_re[k] = (wr, -wi)   feeding the PMADDWD that produces t_re
//        tw_im[k] = (wi,  wr)   feeding the PMADDWD that produces t_im
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subword::ref {

struct FftTables {
  std::vector<int16_t> tw_re;   // interleaved pairs, one per butterfly col
  std::vector<int16_t> tw_im;
  std::vector<int32_t> bitrev;  // bit-reversed index per position
  size_t n = 0;
};

[[nodiscard]] FftTables make_fft_tables(size_t n);

// In-place transform of interleaved complex Q15 data (size 2n).
void fft(std::vector<int16_t>& data, const FftTables& tables);

}  // namespace subword::ref
