// ref_fir.h — scalar golden FIR filter.
//
// Semantics contract shared with the MMX kernel (kernels/fir.h):
//   y[n] = sat16( wrap32( sum_k c[k] * x[n-k] ) >> shift )
// with 32-bit wrapping accumulation (matching PMADDWD/PADDD chains) and
// zero-initialized history before the block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

[[nodiscard]] std::vector<int16_t> fir(std::span<const int16_t> x,
                                       std::span<const int16_t> coeffs,
                                       int shift);

}  // namespace subword::ref
