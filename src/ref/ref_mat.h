// ref_mat.h — scalar golden matrix kernels (16-bit, fixed point).
//
// Semantics contract shared with the MMX kernels:
//   matmul:   C[i][j] = sat16( wrap32( sum_k A[i][k]*B[k][j] ) >> shift )
//   transpose: T[j][i] = M[i][j]
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

[[nodiscard]] std::vector<int16_t> matmul(std::span<const int16_t> a,
                                          std::span<const int16_t> b,
                                          size_t n, int shift);

// Broadcast-style Q15 matmul, the semantics of the MMX kernel:
//   C[i][j] = saturating sum over k (ascending) of (a[i][k]*b[k][j]) >> 16
// i.e. PMULHW products accumulated with PADDSW in k order (saturating
// accumulation is order-sensitive; the kernel and this reference agree).
[[nodiscard]] std::vector<int16_t> matmul_q15(std::span<const int16_t> a,
                                              std::span<const int16_t> b,
                                              size_t n);

[[nodiscard]] std::vector<int16_t> transpose(std::span<const int16_t> m,
                                             size_t rows, size_t cols);

}  // namespace subword::ref
