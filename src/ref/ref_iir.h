// ref_iir.h — scalar golden direct-form-I IIR filter.
//
// Semantics contract shared with the MMX kernel (kernels/iir.h):
//   acc  = sum_k b[k] * x[n-k]          (exact 64-bit)
//   acc -= sum_k a[k] * y[n-k]          (k >= 1, exact 64-bit)
//   y[n] = sat16(acc >> shift)
// "10 TAP" in the paper's Table 2 = 5 feed-forward + 5 feedback taps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

[[nodiscard]] std::vector<int16_t> iir(std::span<const int16_t> x,
                                       std::span<const int16_t> b,
                                       std::span<const int16_t> a,
                                       int shift);

}  // namespace subword::ref
