#include "ref/ref_fft.h"

#include <cmath>
#include <stdexcept>

#include "swar/saturate.h"

namespace subword::ref {
namespace {

int log2_exact(size_t n) {
  int b = 0;
  while ((size_t{1} << b) < n) ++b;
  if ((size_t{1} << b) != n) {
    throw std::invalid_argument("fft: size must be a power of two");
  }
  return b;
}

int16_t sat16(int32_t v) { return swar::saturate<int16_t, int32_t>(v); }

}  // namespace

FftTables make_fft_tables(size_t n) {
  FftTables t;
  t.n = n;
  const int stages = log2_exact(n);
  constexpr double kPi = 3.14159265358979323846;

  // Bit-reversal index table.
  t.bitrev.resize(n);
  for (size_t i = 0; i < n; ++i) {
    size_t r = 0;
    for (int b = 0; b < stages; ++b) {
      if ((i >> b) & 1) r |= size_t{1} << (stages - 1 - b);
    }
    t.bitrev[i] = static_cast<int32_t>(r);
  }

  // Linear per-stage twiddle pair tables for stages >= 2.
  for (int s = 2; s <= stages; ++s) {
    const size_t m = size_t{1} << s;
    const size_t half = m / 2;
    for (size_t j = 0; j < half; ++j) {
      const double a = -2.0 * kPi * static_cast<double>(j) /
                       static_cast<double>(m);
      const auto wr = static_cast<int16_t>(std::lround(std::cos(a) * 32767.0));
      const auto wi = static_cast<int16_t>(std::lround(std::sin(a) * 32767.0));
      t.tw_re.push_back(wr);
      t.tw_re.push_back(static_cast<int16_t>(-wi));
      t.tw_im.push_back(wi);
      t.tw_im.push_back(wr);
    }
  }
  return t;
}

void fft(std::vector<int16_t>& data, const FftTables& tables) {
  const size_t n = tables.n;
  if (data.size() != 2 * n) {
    throw std::invalid_argument("fft: data size mismatch");
  }
  const int stages = log2_exact(n);

  // Bit-reversal permutation (swap once per pair).
  for (size_t i = 0; i < n; ++i) {
    const auto r = static_cast<size_t>(tables.bitrev[i]);
    if (r > i) {
      std::swap(data[2 * i], data[2 * r]);
      std::swap(data[2 * i + 1], data[2 * r + 1]);
    }
  }

  // Stage 1: W = 1 butterflies on adjacent elements.
  for (size_t i = 0; i < n; i += 2) {
    const int32_t ar = data[2 * i], ai = data[2 * i + 1];
    const int32_t br = data[2 * i + 2], bi = data[2 * i + 3];
    data[2 * i] = static_cast<int16_t>(sat16(ar + br) >> 1);
    data[2 * i + 1] = static_cast<int16_t>(sat16(ai + bi) >> 1);
    data[2 * i + 2] = static_cast<int16_t>(sat16(ar - br) >> 1);
    data[2 * i + 3] = static_cast<int16_t>(sat16(ai - bi) >> 1);
  }

  // Stages >= 2, twiddle pairs consumed linearly.
  size_t tw = 0;  // pair index
  for (int s = 2; s <= stages; ++s) {
    const size_t m = size_t{1} << s;
    const size_t half = m / 2;
    for (size_t j = 0; j < half; ++j) {
      const int32_t wr = tables.tw_re[2 * (tw + j)];
      const int32_t nwi = tables.tw_re[2 * (tw + j) + 1];  // = -wi
      const int32_t wi = tables.tw_im[2 * (tw + j)];
      const int32_t wr2 = tables.tw_im[2 * (tw + j) + 1];
      for (size_t base = 0; base < n; base += m) {
        const size_t ia = base + j;
        const size_t ib = ia + half;
        const int32_t ar = data[2 * ia], ai = data[2 * ia + 1];
        const int32_t br = data[2 * ib], bi = data[2 * ib + 1];
        // PMADDWD pairs: [br, bi] . [wr, -wi] and [br, bi] . [wi, wr].
        const int32_t tre = sat16((br * wr + bi * nwi) >> 15);
        const int32_t tim = sat16((br * wi + bi * wr2) >> 15);
        data[2 * ia] = static_cast<int16_t>(sat16(ar + tre) >> 1);
        data[2 * ia + 1] = static_cast<int16_t>(sat16(ai + tim) >> 1);
        data[2 * ib] = static_cast<int16_t>(sat16(ar - tre) >> 1);
        data[2 * ib + 1] = static_cast<int16_t>(sat16(ai - tim) >> 1);
      }
    }
    tw += half;
  }
}

}  // namespace subword::ref
