// ref_dct.h — scalar golden 8x8 forward DCT (row-column, fixed point).
//
// Semantics contract shared with the MMX kernel (kernels/dct.h):
//   1-D pass on a row vector v with Q13 basis C (ref/workload make_dct_basis):
//       out[u] = sat16( wrap32( sum_x v[x] * C[u][x] ) >> 13 )
//   2-D: pass over the 8 rows, transpose, pass over the 8 rows of the
//   result, transpose back — exactly the kernel's phase structure (the
//   transposes are the permutation-heavy part the SPU eliminates).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace subword::ref {

using Block8x8 = std::array<int16_t, 64>;

// One-dimensional 8-point DCT of each row of `in` (row-major).
[[nodiscard]] Block8x8 dct_rows(const Block8x8& in,
                                std::span<const int16_t> basis);

[[nodiscard]] Block8x8 transpose8(const Block8x8& in);

// Full 2-D DCT with the kernel's exact phase ordering.
[[nodiscard]] Block8x8 dct2d(const Block8x8& in,
                             std::span<const int16_t> basis);

}  // namespace subword::ref
