// ref_sad.h — scalar golden sum-of-absolute-differences (motion estimation).
//
// Semantics contract shared with the MMX kernel (kernels/motion_est.h):
//   sad[c] = satu16( sum_i |cur[i] - cand[c][i]| )
// accumulated with unsigned-saturating 16-bit adds (PADDUSW). For the
// 16x16 blocks the kernel uses the sum is at most 256*255 = 65280, so the
// saturation never engages — but the contract keeps the reference honest
// should a future kernel enlarge the block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::ref {

// `cur` holds block_elems pixels; `cands` holds num_cands consecutive
// candidate blocks of block_elems pixels each. Returns one 16-bit SAD per
// candidate (the raw uint16 bit pattern, stored as int16 like every other
// kernel output).
[[nodiscard]] std::vector<int16_t> sad_blocks(std::span<const uint8_t> cur,
                                              std::span<const uint8_t> cands,
                                              size_t block_elems,
                                              size_t num_cands);

}  // namespace subword::ref
