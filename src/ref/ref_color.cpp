#include "ref/ref_color.h"

namespace subword::ref {

YCbCrPlanes rgb_to_ycbcr(std::span<const int16_t> rgb) {
  const size_t n = rgb.size() / 3;
  YCbCrPlanes out;
  out.y.resize(n);
  out.cb.resize(n);
  out.cr.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const int r = rgb[3 * i + 0];
    const int g = rgb[3 * i + 1];
    const int b = rgb[3 * i + 2];
    // Luma: an unsigned 16-bit sum, rounded, logical shift.
    const int y = (77 * r + 150 * g + 29 * b + 128) >> 8;
    // Chroma: signed 16-bit sums, truncating arithmetic shift, +128 bias.
    const int cb = ((-43 * r - 85 * g + 128 * b) >> 8) + 128;
    const int cr = ((128 * r - 107 * g - 21 * b) >> 8) + 128;
    out.y[i] = static_cast<int16_t>(y);
    out.cb[i] = static_cast<int16_t>(cb);
    out.cr[i] = static_cast<int16_t>(cr);
  }
  return out;
}

}  // namespace subword::ref
