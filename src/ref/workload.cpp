#include "ref/workload.h"

#include <cmath>

namespace subword::ref {

std::vector<int16_t> make_samples(size_t n, uint64_t seed,
                                  int16_t amplitude) {
  Rng rng(seed);
  std::vector<int16_t> out(n);
  for (auto& s : out) s = rng.sample_q15(amplitude);
  return out;
}

std::vector<int16_t> make_coeffs(size_t taps, uint64_t seed) {
  Rng rng(seed);
  std::vector<int16_t> out(taps);
  for (auto& c : out) c = static_cast<int16_t>(rng.range(-2000, 2000));
  return out;
}

std::vector<int16_t> make_matrix(size_t rows, size_t cols, uint64_t seed,
                                 int16_t amplitude) {
  Rng rng(seed);
  std::vector<int16_t> out(rows * cols);
  for (auto& v : out) v = static_cast<int16_t>(rng.range(-amplitude, amplitude));
  return out;
}

std::vector<uint8_t> make_bytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> out(n);
  for (auto& v : out) v = static_cast<uint8_t>(rng.range(0, 255));
  return out;
}

std::vector<int16_t> make_pixels(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int16_t> out(n);
  for (auto& v : out) v = static_cast<int16_t>(rng.range(0, 255));
  return out;
}

std::vector<int16_t> make_twiddles(size_t n) {
  std::vector<int16_t> out(n / 2 * 2);  // interleaved (cos, -sin)
  constexpr double kPi = 3.14159265358979323846;
  for (size_t k = 0; k < n / 2; ++k) {
    const double a = 2.0 * kPi * static_cast<double>(k) /
                     static_cast<double>(n);
    const double c = std::cos(a) * 32767.0;
    const double s = -std::sin(a) * 32767.0;
    out[2 * k] = static_cast<int16_t>(std::lround(c));
    out[2 * k + 1] = static_cast<int16_t>(std::lround(s));
  }
  return out;
}

std::vector<int16_t> make_dct_basis() {
  std::vector<int16_t> out(64);
  constexpr double kPi = 3.14159265358979323846;
  const double s0 = std::sqrt(0.125);        // 1/sqrt(8)
  const double s = 0.5;                      // sqrt(2/8)
  for (int u = 0; u < 8; ++u) {
    for (int x = 0; x < 8; ++x) {
      const double scale = (u == 0) ? s0 : s;
      const double v = scale * std::cos((2 * x + 1) * u * kPi / 16.0);
      out[static_cast<size_t>(u * 8 + x)] =
          static_cast<int16_t>(std::lround(v * 8192.0));  // Q13
    }
  }
  return out;
}

}  // namespace subword::ref
