#include "ref/ref_conv2d.h"

namespace subword::ref {

std::vector<int16_t> conv2d_3x3(std::span<const int16_t> in, size_t in_w,
                                size_t in_h, std::span<const int16_t> k,
                                size_t out_w, int shift) {
  const size_t out_h = in_h - 2;
  std::vector<int16_t> out(out_w * out_h);
  for (size_t y = 0; y < out_h; ++y) {
    for (size_t x = 0; x < out_w; ++x) {
      int acc = 0;
      for (size_t dy = 0; dy < 3; ++dy) {
        for (size_t dx = 0; dx < 3; ++dx) {
          acc += static_cast<int>(k[3 * dy + dx]) *
                 static_cast<int>(in[(y + dy) * in_w + (x + dx)]);
        }
      }
      out[y * out_w + x] = static_cast<int16_t>(acc >> shift);
    }
  }
  return out;
}

}  // namespace subword::ref
