#include "ref/ref_sad.h"

#include <cstdlib>

namespace subword::ref {

std::vector<int16_t> sad_blocks(std::span<const uint8_t> cur,
                                std::span<const uint8_t> cands,
                                size_t block_elems, size_t num_cands) {
  std::vector<int16_t> out(num_cands);
  for (size_t c = 0; c < num_cands; ++c) {
    uint32_t acc = 0;
    for (size_t i = 0; i < block_elems; ++i) {
      const int d = static_cast<int>(cur[i]) -
                    static_cast<int>(cands[c * block_elems + i]);
      acc += static_cast<uint32_t>(std::abs(d));
      if (acc > 0xFFFFu) acc = 0xFFFFu;  // PADDUSW saturation point
    }
    out[c] = static_cast<int16_t>(static_cast<uint16_t>(acc));
  }
  return out;
}

}  // namespace subword::ref
