#include "ref/ref_mat.h"

#include "swar/saturate.h"

namespace subword::ref {

std::vector<int16_t> matmul(std::span<const int16_t> a,
                            std::span<const int16_t> b, size_t n,
                            int shift) {
  std::vector<int16_t> c(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      uint32_t acc = 0;  // wrapping, as the PADDD chain wraps
      for (size_t k = 0; k < n; ++k) {
        const int32_t p = static_cast<int32_t>(a[i * n + k]) *
                          static_cast<int32_t>(b[k * n + j]);
        acc += static_cast<uint32_t>(p);
      }
      c[i * n + j] =
          swar::saturate<int16_t, int32_t>(static_cast<int32_t>(acc) >> shift);
    }
  }
  return c;
}

std::vector<int16_t> matmul_q15(std::span<const int16_t> a,
                                std::span<const int16_t> b, size_t n) {
  std::vector<int16_t> c(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      int16_t acc = 0;
      for (size_t k = 0; k < n; ++k) {
        const int32_t p = static_cast<int32_t>(a[i * n + k]) *
                          static_cast<int32_t>(b[k * n + j]);
        const auto term = static_cast<int16_t>(p >> 16);  // PMULHW
        acc = swar::sat_add<int16_t>(acc, term);          // PADDSW
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

std::vector<int16_t> transpose(std::span<const int16_t> m, size_t rows,
                               size_t cols) {
  std::vector<int16_t> t(rows * cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      t[c * rows + r] = m[r * cols + c];
    }
  }
  return t;
}

}  // namespace subword::ref
