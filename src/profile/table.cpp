#include "profile/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace subword::prof {

std::string sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*E", digits, v);
  return buf;
}

std::string pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << " " << s << std::string(width[c] - s.size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace subword::prof
