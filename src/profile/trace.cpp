#include "profile/trace.h"

#include <sstream>

#include "isa/disasm.h"

namespace subword::prof {

sim::TraceFn Tracer::hook() {
  return [this](const sim::TraceEvent& ev) {
    if (records_.size() >= max_) {
      truncated_ = true;
      return;
    }
    TraceRecord r;
    r.cycle = ev.cycle;
    r.index = ev.index;
    r.pipe = ev.pipe;
    r.mispredicted = ev.mispredicted;
    r.text = isa::disassemble(*ev.inst);
    records_.push_back(std::move(r));
  };
}

std::string Tracer::render() const {
  std::ostringstream os;
  uint64_t prev_cycle = 0;
  bool first = true;
  for (size_t i = 0; i < records_.size();) {
    const auto& u = records_[i];
    if (!first && u.cycle > prev_cycle + 1) {
      os << "  (stall/bubble x" << (u.cycle - prev_cycle - 1) << ")\n";
    }
    first = false;
    prev_cycle = u.cycle;
    os << "cycle " << u.cycle << ": U= " << u.text;
    if (u.mispredicted) os << " [MISPREDICT]";
    // A V-pipe record in the same cycle pairs with this one.
    if (i + 1 < records_.size() && records_[i + 1].cycle == u.cycle &&
        records_[i + 1].pipe == sim::Pipe::V) {
      const auto& v = records_[i + 1];
      os << "\t| V= " << v.text;
      if (v.mispredicted) os << " [MISPREDICT]";
      i += 2;
    } else {
      ++i;
    }
    os << "\n";
  }
  if (truncated_) os << "  (trace truncated)\n";
  return os.str();
}

}  // namespace subword::prof
