// report.h — VTune-style run reports (the role VTune played in §5.2.1).
#pragma once

#include <string>

#include "sim/stats.h"

namespace subword::prof {

// Full category breakdown of one run.
[[nodiscard]] std::string run_report(const std::string& name,
                                     const sim::RunStats& s);

// Figure-9-style comparison numbers between a baseline and an SPU run.
struct SpeedupSummary {
  double speedup = 0;             // baseline cycles / spu cycles
  double cycles_saved = 0;        // baseline - spu
  double permute_offload = 0;     // fraction of permutation instrs removed
  double instr_savings = 0;       // fraction of all instrs removed
  double mmx_busy_baseline = 0;   // hashed bar of Figure 9
  double mmx_busy_spu = 0;
};
[[nodiscard]] SpeedupSummary summarize(const sim::RunStats& baseline,
                                       const sim::RunStats& spu);

}  // namespace subword::prof
