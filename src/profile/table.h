// table.h — fixed-width text tables for the benchmark harness (the benches
// print the same rows the paper's tables report).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace subword::prof {

// Engineering notation like the paper's tables: 1.51E+10.
[[nodiscard]] std::string sci(double v, int digits = 2);

// Percentage with fixed decimals: "0.094%".
[[nodiscard]] std::string pct(double fraction, int digits = 3);

// Fixed decimals.
[[nodiscard]] std::string fixed(double v, int digits = 2);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace subword::prof
