// trace.h — execution trace collection and rendering.
//
// Attaches to sim::Machine's trace hook and renders a cycle-by-cycle
// pipeline view (which instruction issued in U and V each cycle, where
// stalls and mispredict bubbles sit). Used by examples and debugging; the
// renderer is deterministic and unit-tested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace subword::prof {

struct TraceRecord {
  uint64_t cycle = 0;
  uint64_t index = 0;
  sim::Pipe pipe = sim::Pipe::U;
  bool mispredicted = false;
  std::string text;  // disassembly
};

class Tracer {
 public:
  // Collects up to `max_records` events (older events are kept; the tail
  // is dropped so the interesting warmup is visible by default).
  explicit Tracer(size_t max_records = 4096) : max_(max_records) {}

  // Returns the hook to install via Machine::set_trace.
  [[nodiscard]] sim::TraceFn hook();

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool truncated() const { return truncated_; }
  void clear() {
    records_.clear();
    truncated_ = false;
  }

  // Cycle-per-line pipeline rendering:
  //   cycle 12: U= paddw mm0, mm1      V= psubw mm2, mm3
  //   cycle 13: U= loopnz r1, @4 [MISPREDICT]
  // Gaps between issue cycles are rendered as "(stall/bubble xN)".
  [[nodiscard]] std::string render() const;

 private:
  size_t max_;
  std::vector<TraceRecord> records_;
  bool truncated_ = false;
};

}  // namespace subword::prof
