#include "profile/report.h"

#include <sstream>

#include "profile/table.h"

namespace subword::prof {

std::string run_report(const std::string& name, const sim::RunStats& s) {
  std::ostringstream os;
  os << "=== " << name << " ===\n";
  Table t({"event", "count", "share"});
  const auto total = static_cast<double>(s.instructions);
  auto row = [&](const char* ev, uint64_t v) {
    t.add_row({ev, sci(static_cast<double>(v)),
               total > 0 ? pct(static_cast<double>(v) / total, 2) : "-"});
  };
  row("instructions", s.instructions);
  row("  mmx total", s.mmx_instructions);
  row("  mmx compute", s.mmx_compute);
  row("  mmx permutation", s.mmx_permutation);
  row("  mmx memory", s.mmx_memory);
  row("  scalar", s.scalar_instructions);
  row("  branches", s.branches);
  row("  mispredicts", s.branch_mispredicts);
  os << t.render();
  os << "cycles            " << sci(static_cast<double>(s.cycles)) << "\n";
  os << "IPC               " << fixed(s.ipc(), 3) << "\n";
  os << "MMX busy cycles   " << pct(s.mmx_busy_fraction(), 1) << "\n";
  os << "mispredict rate   " << pct(s.mispredict_rate(), 3) << "\n";
  if (s.spu_routed_ops > 0 || s.spu_mmio_stores > 0) {
    os << "SPU routed ops    " << sci(static_cast<double>(s.spu_routed_ops))
       << "\n";
    os << "SPU MMIO stores   " << s.spu_mmio_stores << "\n";
  }
  return os.str();
}

SpeedupSummary summarize(const sim::RunStats& baseline,
                         const sim::RunStats& spu) {
  SpeedupSummary out;
  if (spu.cycles > 0) {
    out.speedup = static_cast<double>(baseline.cycles) /
                  static_cast<double>(spu.cycles);
  }
  out.cycles_saved = static_cast<double>(baseline.cycles) -
                     static_cast<double>(spu.cycles);
  if (baseline.mmx_permutation > 0) {
    out.permute_offload =
        static_cast<double>(baseline.mmx_permutation -
                            std::min(baseline.mmx_permutation,
                                     spu.mmx_permutation)) /
        static_cast<double>(baseline.mmx_permutation);
  }
  if (baseline.instructions > 0 && baseline.instructions > spu.instructions) {
    out.instr_savings =
        static_cast<double>(baseline.instructions - spu.instructions) /
        static_cast<double>(baseline.instructions);
  }
  out.mmx_busy_baseline = baseline.mmx_busy_fraction();
  out.mmx_busy_spu = spu.mmx_busy_fraction();
  return out;
}

}  // namespace subword::prof
