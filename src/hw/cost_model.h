// cost_model.h — area/delay estimation for SPU configurations (Table 1).
//
// The paper derives area and delay from the layout of the Princeton VSP
// folded-crossbar datapath (0.25um CMOS, 2 metal layers) and gives four
// calibration points (configurations A-D). We reproduce those numbers two
// ways:
//
//  * a *calibration table* holding the published values for A-D, and
//  * an *analytical model* fitted to them:
//      - crossbar area   = crosspoints x k(port_bits)
//        (k measured from the published points: the 8-bit crosspoint is
//         3.97e-3 mm^2, the 16-bit crosspoint 9.22e-3 mm^2 — both pairs of
//         published configs agree on these to three digits)
//      - control memory  = 128 x (15 + W) bits at ~4.97e-5 mm^2/bit, where
//        W is the interconnect field width (the paper's "128*(15+K)")
//      - crossbar delay  = 0.73 x log2(crosspoints) - 4.85 ns (published
//        points fit within ~12%; delay is layout-dominated, so the
//        calibrated values are preferred when available).
//
// Die-fraction arithmetic follows §5.1.1: scale 0.25um/2LM areas to a
// 0.18um/6LM Pentium III (106 mm^2): linear shrink squared x a metal-layer
// wiring factor of 1/2 for the wiring-dominated crossbar.
#pragma once

#include <optional>

#include "core/crossbar.h"

namespace subword::hw {

struct SpuCost {
  double crossbar_area_mm2 = 0;   // 0.25um, 2 metal layers
  double crossbar_delay_ns = 0;
  double control_mem_area_mm2 = 0;
  int control_mem_bits = 0;
  bool calibrated = false;  // true when taken from the published Table 1
};

// Published Table 1 values when `cfg` is one of A-D, else analytical.
[[nodiscard]] SpuCost estimate_cost(const core::CrossbarConfig& cfg);

// Pure analytical model (never consults the calibration table) — used to
// validate the fit against the published points and for arbitrary sizes.
[[nodiscard]] SpuCost model_cost(const core::CrossbarConfig& cfg);

// 0.25um/2LM -> 0.18um/6LM area scaling for wiring-dominated structures.
[[nodiscard]] double scale_to_018um(double area_mm2_025);

// Fraction of the 106 mm^2 0.18um Pentium III die.
[[nodiscard]] double pentium3_die_fraction(double area_mm2_018);

inline constexpr double kPentium3DieMm2 = 106.0;

}  // namespace subword::hw
