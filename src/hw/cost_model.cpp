#include "hw/cost_model.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "core/spu_program.h"

namespace subword::hw {
namespace {

// Published Table 1 calibration points (0.25um, 2 metal layers).
struct Calibration {
  std::string_view name;
  double area_mm2;
  double delay_ns;
  double control_mem_mm2;
};
constexpr Calibration kTable1[] = {
    {"A", 8.14, 3.14, 1.35},
    {"B", 4.07, 2.29, 1.10},
    {"C", 4.72, 1.95, 0.60},
    {"D", 2.36, 0.95, 0.50},
};

// Fitted constants (see header).
constexpr double kCrosspoint8 = 8.14 / (64.0 * 32.0);    // mm^2, 8-bit port
constexpr double kCrosspoint16 = 4.72 / (32.0 * 16.0);   // mm^2, 16-bit port
constexpr double kSramBitArea = 4.97e-5;                 // mm^2 per bit
// Delay fit: linear in log2(crosspoints) across the four published points
// (3.14/2.29/1.95/0.95 ns at 2048/1024/512/256 crosspoints); residuals are
// within ~12%, consistent with layout-level noise.
constexpr double kDelaySlope = 0.73;    // ns per doubling of crosspoints
constexpr double kDelayOffset = -4.85;  // ns
constexpr double kDelayFloor = 0.2;     // ns

}  // namespace

SpuCost model_cost(const core::CrossbarConfig& cfg) {
  SpuCost c;
  const double crosspoints = static_cast<double>(cfg.crosspoints());
  double k;
  if (cfg.port_bits == 8) {
    k = kCrosspoint8;
  } else if (cfg.port_bits == 16) {
    k = kCrosspoint16;
  } else {
    // Interpolate in log space between the measured 8- and 16-bit ports.
    const double exp = std::log2(kCrosspoint16 / kCrosspoint8);
    k = kCrosspoint8 * std::pow(cfg.port_bits / 8.0, exp);
  }
  c.crossbar_area_mm2 = crosspoints * k;
  c.control_mem_bits = core::kNumStates * cfg.control_word_bits();
  c.control_mem_area_mm2 = c.control_mem_bits * kSramBitArea;
  c.crossbar_delay_ns =
      std::max(kDelayFloor, kDelaySlope * std::log2(crosspoints) +
                                kDelayOffset);
  c.calibrated = false;
  return c;
}

SpuCost estimate_cost(const core::CrossbarConfig& cfg) {
  for (const auto& cal : kTable1) {
    bool match = false;
    if (cal.name == "A") {
      match = cfg.input_ports == 64 && cfg.output_ports == 32 &&
              cfg.port_bits == 8;
    } else if (cal.name == "B") {
      match = cfg.input_ports == 32 && cfg.output_ports == 32 &&
              cfg.port_bits == 8;
    } else if (cal.name == "C") {
      match = cfg.input_ports == 32 && cfg.output_ports == 16 &&
              cfg.port_bits == 16;
    } else {
      match = cfg.input_ports == 16 && cfg.output_ports == 16 &&
              cfg.port_bits == 16;
    }
    if (match) {
      SpuCost c = model_cost(cfg);
      c.crossbar_area_mm2 = cal.area_mm2;
      c.crossbar_delay_ns = cal.delay_ns;
      c.control_mem_area_mm2 = cal.control_mem_mm2;
      c.calibrated = true;
      return c;
    }
  }
  return model_cost(cfg);
}

double scale_to_018um(double area_mm2_025) {
  constexpr double kLinearShrink = 0.18 / 0.25;
  constexpr double kMetalLayerFactor = 0.5;  // 2 -> 6 routing layers
  return area_mm2_025 * kLinearShrink * kLinearShrink * kMetalLayerFactor;
}

double pentium3_die_fraction(double area_mm2_018) {
  return area_mm2_018 / kPentium3DieMm2;
}

}  // namespace subword::hw
