// crossbar.h — the SPU interconnect: configurations and routes.
//
// The interconnect is a (folded) crossbar between the SPU register — a
// byte-addressable view of the whole 8x64-bit MMX register file, 64 bytes —
// and the 32-byte MMX operand bus (U pipe src0/src1 and V pipe src0/src1,
// 8 bytes each). The paper's Table 1 evaluates four configurations that
// trade flexibility for area/delay:
//
//   A: 64x32 crossbar, 8-bit ports  — full byte-level flexibility
//   B: 32x32 crossbar, 8-bit ports  — byte routing from MM0..MM3 only
//   C: 32x16 crossbar, 16-bit ports — half-word routing from all registers
//   D: 16x16 crossbar, 16-bit ports — half-word routing from MM0..MM3
//
// A Route assigns each output byte either a source byte address in the SPU
// register or "straight" (the architecturally named operand byte).
//
// Paper correspondence: §3 (the folded crossbar and its operand-bus
// attachment), Table 1 (configurations A–D and their area/delay, modeled
// in src/hw/cost_model.*), Figure 6 (the per-state interconnect control
// word whose width route_field_bits() computes), §6 (the optional
// zero/sign-extension modes behind `modes`).
//
// Invariants:
//  * A Route is pure data; validity is relative to a configuration and is
//    checked by route_violation() — 16-bit-port configurations require
//    aligned half-word pairs on both sides, and source addresses must lie
//    inside the configuration's input window (B/D reach only MM0..MM3).
//  * apply_route() never writes the register file: routing substitutes
//    operand *fetches* only, which is why a routed program's
//    architectural results are bit-identical to the baseline's.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/regfile.h"
#include "sim/router.h"
#include "swar/vec64.h"

namespace subword::core {

struct CrossbarConfig {
  std::string_view name;
  int input_ports;   // addressable source chunks
  int output_ports;  // operand-bus chunks
  int port_bits;     // 8 or 16
  // §6 extension: "additional modes could be added to the SPU, like sign
  // extension, negation". When set, routes may inject constant-zero bytes
  // and sign-fill bytes (see Route::kZero / Route::kSignExtend).
  bool modes = false;

  [[nodiscard]] constexpr int port_bytes() const { return port_bits / 8; }
  [[nodiscard]] constexpr int input_bytes() const {
    return input_ports * port_bytes();
  }
  [[nodiscard]] constexpr int output_bytes() const {
    return output_ports * port_bytes();
  }
  // Bits to select one input port.
  [[nodiscard]] constexpr int sel_bits() const {
    int b = 0;
    while ((1 << b) < input_ports) ++b;
    return b;
  }
  // Width of the per-state interconnect field (Figure 6: 192 bits for A).
  [[nodiscard]] constexpr int route_field_bits() const {
    return output_ports * sel_bits();
  }
  // Control word: CNTRx (1) + NextState0 (7) + NextState1 (7) = 15 bits
  // plus the interconnect field (paper: "128*(15+K)").
  [[nodiscard]] constexpr int control_word_bits() const {
    return 15 + route_field_bits();
  }
  [[nodiscard]] constexpr int crosspoints() const {
    return input_ports * output_ports;
  }
};

inline constexpr CrossbarConfig kConfigA{"A", 64, 32, 8};
inline constexpr CrossbarConfig kConfigB{"B", 32, 32, 8};
inline constexpr CrossbarConfig kConfigC{"C", 32, 16, 16};
inline constexpr CrossbarConfig kConfigD{"D", 16, 16, 16};
inline constexpr std::array<CrossbarConfig, 4> kAllConfigs{
    kConfigA, kConfigB, kConfigC, kConfigD};

// The same geometry with the §6 byte-mode extension enabled.
[[nodiscard]] constexpr CrossbarConfig with_modes(CrossbarConfig cfg) {
  cfg.modes = true;
  return cfg;
}

// Operand-bus byte layout: [pipe U src0 | U src1 | V src0 | V src1].
inline constexpr int kBusBytes = 32;
inline constexpr int kOperandBytes = 8;

[[nodiscard]] constexpr int bus_offset(sim::Pipe pipe, int operand) {
  return (static_cast<int>(pipe) * 2 + operand) * kOperandBytes;
}

// A full operand-bus routing assignment. Besides source byte addresses
// (0..63) a selector can be one of the specials below; the mode selectors
// require a configuration with `modes` set.
struct Route {
  static constexpr uint8_t kStraight = 0xFF;
  // §6 extension modes:
  static constexpr uint8_t kZero = 0xFE;        // inject 0x00
  static constexpr uint8_t kSignExtend = 0xFD;  // fill with the sign of
                                                // the previous output byte
  std::array<uint8_t, kBusBytes> sel{};

  Route() { sel.fill(kStraight); }

  [[nodiscard]] bool is_straight() const {
    for (const auto s : sel) {
      if (s != kStraight) return false;
    }
    return true;
  }

  // True if the 8-byte slice for (pipe, operand) has any routed byte.
  [[nodiscard]] bool routes_operand(sim::Pipe pipe, int operand) const {
    const int off = bus_offset(pipe, operand);
    for (int i = 0; i < kOperandBytes; ++i) {
      if (sel[static_cast<size_t>(off + i)] != kStraight) return true;
    }
    return false;
  }

  // Set the routing for one operand of one pipe. `srcs[i]` is the SPU
  // register byte address feeding output byte i, or kStraight.
  void set_operand(sim::Pipe pipe, int operand,
                   const std::array<uint8_t, kOperandBytes>& srcs) {
    const int off = bus_offset(pipe, operand);
    for (int i = 0; i < kOperandBytes; ++i) {
      sel[static_cast<size_t>(off + i)] = srcs[static_cast<size_t>(i)];
    }
  }

  // Convenience: route one operand in both pipes (the issue pipe is not
  // known at SPU-programming time; the hardware muxes the field to the pipe
  // that executes the instruction).
  void set_operand_both_pipes(int operand,
                              const std::array<uint8_t, kOperandBytes>& srcs) {
    set_operand(sim::Pipe::U, operand, srcs);
    set_operand(sim::Pipe::V, operand, srcs);
  }

  friend bool operator==(const Route& a, const Route& b) {
    return a.sel == b.sel;
  }
};

// Route validity under a crossbar configuration:
//  * routed bytes must address within the configuration's input window,
//  * 16-bit-port configurations must route aligned half-word pairs on both
//    the input and output side.
// Returns empty string if valid, else a human-readable reason.
[[nodiscard]] std::string route_violation(const Route& r,
                                          const CrossbarConfig& cfg);

[[nodiscard]] inline bool route_valid(const Route& r,
                                      const CrossbarConfig& cfg) {
  return route_violation(r, cfg).empty();
}

// Gather one operand (8 bytes) through the crossbar. Straight bytes come
// from `fallback` (the architecturally named operand value).
[[nodiscard]] swar::Vec64 apply_route(const Route& r, sim::Pipe pipe,
                                      int operand,
                                      const sim::MmxRegFile& regs,
                                      swar::Vec64 fallback);

}  // namespace subword::core
