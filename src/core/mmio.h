// mmio.h — the memory-mapped programming interface of the SPU (paper §3:
// "the SPU has control registers that are memory-mapped").
//
// 32-bit register layout (offsets from the SPU window base):
//
//   0x0000  CONFIG   bit 0 = GO (write 1 activates the selected context,
//                    write 0 stops the SPU), bits 7..1 = context select
//   0x0004  CNTR0    counter 0 reload value (dynamic instruction count)
//   0x0008  CNTR1    counter 1 reload value
//   0x0010 + s*kStateStride + 0x00   state s control word:
//                    bits 0     CNTRx
//                    bits 14..8 NextState0
//                    bits 22..16 NextState1
//   0x0010 + s*kStateStride + 4+4*k  state s route bytes 4k..4k+3
//                    (byte j of the word = selector for bus byte 4k+j;
//                     0xFF = straight)
//
// Reads return the same encoding (plus live status in CONFIG bit 31).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/spu.h"
#include "sim/memory.h"

namespace subword::core {

class SpuMmio final : public sim::Device {
 public:
  static constexpr uint32_t kConfigReg = 0x0000;
  static constexpr uint32_t kCntr0 = 0x0004;
  static constexpr uint32_t kCntr1 = 0x0008;
  static constexpr uint32_t kStateBase = 0x0010;
  static constexpr uint32_t kStateStride = 64;
  static constexpr uint32_t kRouteWords = kBusBytes / 4;  // 8
  static constexpr uint64_t kWindowSize =
      kStateBase + static_cast<uint64_t>(kNumStates) * kStateStride;

  // Default window placement used by the orchestrator and kernels.
  static constexpr uint64_t kDefaultBase = 0xF0000000ull;

  explicit SpuMmio(Spu* spu) : spu_(spu) {}

  void write32(uint64_t offset, uint32_t value) override;
  uint32_t read32(uint64_t offset) override;

  // Encoding helpers shared with MicroBuilder.
  [[nodiscard]] static uint32_t encode_control(const SpuState& st) {
    return static_cast<uint32_t>(st.cntr_sel & 1) |
           (static_cast<uint32_t>(st.next0 & 0x7F) << 8) |
           (static_cast<uint32_t>(st.next1 & 0x7F) << 16);
  }
  [[nodiscard]] static uint32_t encode_route_word(const Route& r, int word) {
    uint32_t v = 0;
    for (int j = 0; j < 4; ++j) {
      v |= static_cast<uint32_t>(r.sel[static_cast<size_t>(4 * word + j)])
           << (8 * j);
    }
    return v;
  }

 private:
  Spu* spu_;
};

}  // namespace subword::core
