#include "core/provenance.h"

#include <stdexcept>

#include "sim/exec.h"
#include "sim/pairing.h"

namespace subword::core {

using isa::Inst;
using isa::Op;

bool is_candidate_permutation(Op op) {
  switch (op) {
    case Op::MovqRR:
    case Op::Punpcklbw:
    case Op::Punpcklwd:
    case Op::Punpckldq:
    case Op::Punpckhbw:
    case Op::Punpckhwd:
    case Op::Punpckhdq:
      return true;
    default:
      return false;
  }
}

ByteMap permutation_byte_map(Op op) {
  ByteMap m{};
  switch (op) {
    case Op::MovqRR:
      for (int i = 0; i < 8; ++i) m[static_cast<size_t>(i)] = {1, i};
      break;
    case Op::Punpcklbw:
      for (int i = 0; i < 4; ++i) {
        m[static_cast<size_t>(2 * i)] = {0, i};
        m[static_cast<size_t>(2 * i + 1)] = {1, i};
      }
      break;
    case Op::Punpckhbw:
      for (int i = 0; i < 4; ++i) {
        m[static_cast<size_t>(2 * i)] = {0, 4 + i};
        m[static_cast<size_t>(2 * i + 1)] = {1, 4 + i};
      }
      break;
    case Op::Punpcklwd:
      for (int w = 0; w < 2; ++w) {
        for (int b = 0; b < 2; ++b) {
          m[static_cast<size_t>(4 * w + b)] = {0, 2 * w + b};
          m[static_cast<size_t>(4 * w + 2 + b)] = {1, 2 * w + b};
        }
      }
      break;
    case Op::Punpckhwd:
      for (int w = 0; w < 2; ++w) {
        for (int b = 0; b < 2; ++b) {
          m[static_cast<size_t>(4 * w + b)] = {0, 4 + 2 * w + b};
          m[static_cast<size_t>(4 * w + 2 + b)] = {1, 4 + 2 * w + b};
        }
      }
      break;
    case Op::Punpckldq:
      for (int b = 0; b < 4; ++b) {
        m[static_cast<size_t>(b)] = {0, b};
        m[static_cast<size_t>(4 + b)] = {1, b};
      }
      break;
    case Op::Punpckhdq:
      for (int b = 0; b < 4; ++b) {
        m[static_cast<size_t>(b)] = {0, 4 + b};
        m[static_cast<size_t>(4 + b)] = {1, 4 + b};
      }
      break;
    default:
      throw std::logic_error("permutation_byte_map: not a candidate");
  }
  return m;
}

std::vector<Loop> find_inner_loops(const isa::Program& p) {
  std::vector<Loop> loops;
  const auto& insts = p.insts();
  for (size_t i = 0; i < insts.size(); ++i) {
    const Inst& in = insts[i];
    if (!isa::is_branch_op(in.op)) continue;
    if (in.op != Op::Loopnz && in.op != Op::Jnz) continue;
    if (in.target < 0 || static_cast<size_t>(in.target) >= i) continue;
    const auto head = static_cast<size_t>(in.target);
    // Straight-line body: no other branches inside.
    bool simple = true;
    for (size_t j = head; j < i && simple; ++j) {
      if (isa::is_branch_op(insts[j].op) || insts[j].op == Op::Halt) {
        simple = false;
      }
    }
    if (!simple) continue;
    // No jump from elsewhere into the body — including its head, so that
    // fall-through is the only entry (the orchestrator places the SPU GO
    // write immediately before the head).
    for (size_t j = 0; j < insts.size() && simple; ++j) {
      if (j == i || !isa::is_branch_op(insts[j].op)) continue;
      const auto t = insts[j].target;
      if (t >= static_cast<int32_t>(head) && t <= static_cast<int32_t>(i)) {
        simple = false;
      }
    }
    if (simple) loops.push_back(Loop{head, i});
  }
  return loops;
}

namespace {

// The location that produced the value currently held in a register byte.
struct Loc {
  int8_t reg = -1;   // architectural MMX register holding the value
  int8_t byte = 0;   // byte within that register
  int32_t def = -1;  // body-relative index of the defining write (-1: entry)
};

using RegLocs = std::array<Loc, 8>;

// Reads of MMX registers by a body instruction, for removability checks.
bool reads_mmx_reg(const Inst& in, uint8_t reg) {
  const auto rs = isa::mmx_reads(in);
  for (int i = 0; i < rs.count; ++i) {
    if (rs.regs[i] == reg) return true;
  }
  return false;
}

bool is_shift_op(Op op) {
  switch (op) {
    case Op::Psllw: case Op::Pslld: case Op::Psllq:
    case Op::Psrlw: case Op::Psrld: case Op::Psrlq:
    case Op::Psraw: case Op::Psrad:
      return true;
    default:
      return false;
  }
}

// Liveness of an MMX register after the loop: explore every control-flow
// path from `from`; a path that reads `reg` before writing it makes the
// value live. Paths are killed at writes; conditional branches explore
// both successors; running off the end counts as dead (Halt-equivalent).
bool live_after(const isa::Program& p, size_t from, uint8_t reg) {
  const auto& insts = p.insts();
  std::vector<bool> visited(insts.size(), false);
  std::vector<size_t> work{from};
  while (!work.empty()) {
    const size_t pc = work.back();
    work.pop_back();
    if (pc >= insts.size() || visited[pc]) continue;
    visited[pc] = true;
    const Inst& in = insts[pc];
    if (reads_mmx_reg(in, reg)) return true;
    uint8_t w = 0;
    if (isa::mmx_writes(in, &w) && w == reg) continue;  // path killed
    if (in.op == Op::Halt) continue;
    if (isa::is_branch_op(in.op)) {
      if (in.target >= 0) work.push_back(static_cast<size_t>(in.target));
      if (in.op != Op::Jmp) work.push_back(pc + 1);  // fall-through
      continue;
    }
    work.push_back(pc + 1);
  }
  return false;
}

}  // namespace

LoopAnalysis analyze_loop(const isa::Program& p, const Loop& loop,
                          const CrossbarConfig& cfg) {
  LoopAnalysis la;
  la.loop = loop;
  const auto& insts = p.insts();
  const size_t n = loop.body_len();
  la.routing.resize(n);
  la.removable.assign(n, false);

  // --- trip count. Two supported loop idioms:
  //   loopnz reg, head                      (fused decrement-and-branch)
  //   ...; ssubi reg, 1; ...; jnz reg, head (explicit decrement)
  // In both, `reg` must be initialized by a `li` preceding the loop with
  // no other write in between, and (for jnz) decremented exactly once in
  // the body.
  const Inst& br = insts[loop.branch];
  if (br.op == Op::Loopnz) {
    la.trip_reg = br.src;
  } else if (br.op == Op::Jnz) {
    la.trip_reg = br.src;
    const auto id = static_cast<uint8_t>(isa::kNumMmxRegs + la.trip_reg);
    int decrements = 0;
    bool other_write = false;
    for (size_t j = loop.head; j < loop.branch; ++j) {
      const Inst& in = insts[j];
      if (!sim::regs_written(in).contains(id)) continue;
      if (in.op == Op::SSubi && in.dst == la.trip_reg && in.disp == 1) {
        ++decrements;
      } else {
        other_write = true;
      }
    }
    if (decrements != 1 || other_write) {
      la.reject_reason = "jnz loop counter is not a simple decrement";
      return la;
    }
  } else {
    la.reject_reason = "loop closed by an unsupported branch form";
    return la;
  }
  for (size_t j = loop.head; j-- > 0;) {
    const Inst& in = insts[j];
    const auto ws = sim::regs_written(in);
    const auto id = static_cast<uint8_t>(isa::kNumMmxRegs + la.trip_reg);
    if (ws.contains(id)) {
      if (in.op == Op::Li) la.trip_count = in.disp;
      break;
    }
  }
  if (la.trip_count <= 0) {
    la.reject_reason = "loop trip count is not statically known";
    return la;
  }

  // --- forward dataflow over one iteration -------------------------------
  std::array<RegLocs, isa::kNumMmxRegs> locs;
  std::array<int32_t, isa::kNumMmxRegs> last_write;
  std::array<bool, isa::kNumMmxRegs> upward_exposed{};
  std::array<bool, isa::kNumMmxRegs> written{};
  for (int r = 0; r < isa::kNumMmxRegs; ++r) {
    last_write[static_cast<size_t>(r)] = -1;
    for (int b = 0; b < 8; ++b) {
      locs[static_cast<size_t>(r)][static_cast<size_t>(b)] =
          Loc{static_cast<int8_t>(r), static_cast<int8_t>(b), -1};
    }
  }

  auto try_route = [&](uint8_t reg, OperandRouting* out) {
    const int32_t def = last_write[reg];
    if (def < 0 || !is_candidate_permutation(insts[loop.head +
                                                   static_cast<size_t>(def)]
                                                 .op)) {
      return;  // operand is not the product of a removable permutation
    }
    out->attempted = true;
    out->def = def;
    std::array<uint8_t, 8> srcs{};
    for (int b = 0; b < 8; ++b) {
      const Loc& l = locs[reg][static_cast<size_t>(b)];
      if (l.reg < 0) {
        out->reject = "operand byte has unknown provenance";
        return;
      }
      // Value must still be present at its source register at consume time.
      if (last_write[static_cast<size_t>(l.reg)] != l.def) {
        out->reject = "source register overwritten before consumer";
        return;
      }
      srcs[static_cast<size_t>(b)] =
          static_cast<uint8_t>(l.reg * 8 + l.byte);
    }
    // Validate against the crossbar configuration on a scratch route.
    Route probe;
    probe.set_operand_both_pipes(0, srcs);
    const auto v = route_violation(probe, cfg);
    if (!v.empty()) {
      out->reject = v;
      return;
    }
    out->routable = true;
    out->srcs = srcs;
  };

  for (size_t k = 0; k < n; ++k) {
    const Inst& in = insts[loop.head + k];

    // Record upward-exposed reads.
    {
      const auto rs = isa::mmx_reads(in);
      for (int i = 0; i < rs.count; ++i) {
        if (!written[rs.regs[i]]) upward_exposed[rs.regs[i]] = true;
      }
    }

    // Attempt routing for two-operand ALU consumers. Candidate permutations
    // are themselves removal targets, not routing consumers; packs keep
    // executing (they saturate) but may receive routed operands. A shift's
    // register count operand is control, not data — never routed.
    if (sim::has_alu_semantics(in.op) && !is_candidate_permutation(in.op)) {
      try_route(in.dst, &la.routing[k].a);
      if (!is_shift_op(in.op)) {
        try_route(in.src, &la.routing[k].b);
      }
    }

    // Apply the instruction's effect on locations.
    uint8_t w = 0;
    if (isa::mmx_writes(in, &w)) {
      if (is_candidate_permutation(in.op)) {
        const ByteMap bm = permutation_byte_map(in.op);
        const RegLocs a = locs[in.dst];
        const RegLocs b = locs[in.src];
        RegLocs out;
        for (int i = 0; i < 8; ++i) {
          const auto [which, byte] = bm[static_cast<size_t>(i)];
          out[static_cast<size_t>(i)] =
              (which == 0) ? a[static_cast<size_t>(byte)]
                           : b[static_cast<size_t>(byte)];
        }
        locs[w] = out;
      } else {
        for (int b = 0; b < 8; ++b) {
          locs[w][static_cast<size_t>(b)] =
              Loc{static_cast<int8_t>(w), static_cast<int8_t>(b),
                  static_cast<int32_t>(k)};
        }
      }
      last_write[w] = static_cast<int32_t>(k);
      written[w] = true;
    }
  }

  // --- removability fixpoint ------------------------------------------------
  for (size_t k = 0; k < n; ++k) {
    const Inst& in = insts[loop.head + k];
    if (isa::op_info(in.op).is_permutation) ++la.permutation_count;
    if (!is_candidate_permutation(in.op)) continue;
    ++la.candidate_count;
    uint8_t w = 0;
    if (!isa::mmx_writes(in, &w)) continue;
    // A loop-carried use of the permuted value, or a use after the loop,
    // pins the instruction — but only when this write is the register's
    // last definition in the body (otherwise the value leaving the
    // iteration is someone else's).
    bool redefined_later = false;
    for (size_t j = k + 1; j < n && !redefined_later; ++j) {
      uint8_t uw = 0;
      if (isa::mmx_writes(insts[loop.head + j], &uw) && uw == w) {
        redefined_later = true;
      }
    }
    if (!redefined_later) {
      if (upward_exposed[w]) continue;
      if (live_after(p, loop.branch + 1, w)) continue;
    }
    la.removable[k] = true;
  }

  // Demote candidates whose result is still read by something that was not
  // rerouted (iterate to handle permute-of-permute chains).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t k = 0; k < n; ++k) {
      if (!la.removable[k]) continue;
      const Inst& perm = insts[loop.head + k];
      uint8_t w = 0;
      (void)isa::mmx_writes(perm, &w);
      for (size_t j = k + 1; j < n; ++j) {
        const Inst& use = insts[loop.head + j];
        const bool reads = reads_mmx_reg(use, w);
        if (reads) {
          bool covered = false;
          if (is_candidate_permutation(use.op) && la.removable[j]) {
            covered = true;  // consumed only by another deleted permutation
          } else if (sim::has_alu_semantics(use.op) &&
                     !is_candidate_permutation(use.op)) {
            // Every operand slot that reads `w` must be routed.
            bool ok = true;
            if (use.dst == w && !la.routing[j].a.routable) ok = false;
            if (is_shift_op(use.op)) {
              // Register-count shift: the count read is not routable.
              if (!use.src_is_imm && use.src == w) ok = false;
            } else if (use.src == w && !la.routing[j].b.routable) {
              ok = false;
            }
            covered = ok;
          }
          if (!covered) {
            la.removable[k] = false;
            changed = true;
            break;
          }
        }
        uint8_t uw = 0;
        if (isa::mmx_writes(use, &uw) && uw == w) break;  // redefined
      }
    }
  }

  for (size_t k = 0; k < n; ++k) {
    if (la.removable[k]) ++la.removable_count;
  }
  return la;
}

}  // namespace subword::core
