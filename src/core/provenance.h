// provenance.h — byte-level dataflow analysis of inner loops.
//
// The orchestrator's job (paper §4: "the generation of the code for the SPU
// is systematic and can be automated") is to find permutation instructions
// in tight loops whose only effect is to re-arrange sub-words that are
// already present in the register file, and to replace them with crossbar
// routes attached to their consumers.
//
// The analysis tracks, for every byte of every MMX register across one loop
// iteration, the *location* that produced its value: (register, byte,
// definition time). A consumer operand byte is routable when the producing
// location still holds that value at consume time (no intervening write to
// the source register). Pure byte-rearranging instructions — register
// moves and the six PUNPCK forms — propagate locations; everything else
// (arithmetic, packs with saturation, loads) defines fresh locations.
//
// Paper correspondence: §4's claim that SPU routes can replace the
// "overhead instructions" of §2/Figure 1; the crossbar window limits of
// Table 1 (a route is only legal if every source byte lies inside the
// configuration's input window, checked via route_violation).
//
// Invariants:
//  * The analysis is per-iteration: locations die at any intervening
//    write to their register, and a candidate whose source crosses the
//    loop back-edge is never routed (conservative, soundness first).
//  * PACK* are never candidates — they saturate, so they are value
//    transformations, not byte rearrangements (locked by
//    KernelStructure.SaturatingPacksAreNeverRemoved).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/crossbar.h"
#include "isa/program.h"

namespace subword::core {

// Candidate permutations the orchestrator may delete: pure byte
// rearrangements only. Pack instructions saturate and are therefore *not*
// pure permutations; they always remain explicit.
[[nodiscard]] bool is_candidate_permutation(isa::Op op);

// out_byte -> (input operand 0|1, input byte) for a candidate permutation.
using ByteMap = std::array<std::pair<int, int>, 8>;
[[nodiscard]] ByteMap permutation_byte_map(isa::Op op);

// A simple inner loop: straight-line body [head, branch] closed by a
// backward Loopnz/Jnz at `branch` targeting `head`.
struct Loop {
  size_t head = 0;
  size_t branch = 0;
  [[nodiscard]] size_t body_len() const { return branch - head + 1; }
};

// All innermost simple loops of a program (no internal control flow, no
// jumps from elsewhere into the middle of the body).
[[nodiscard]] std::vector<Loop> find_inner_loops(const isa::Program& p);

// Routing plan for one operand of one body instruction.
struct OperandRouting {
  bool attempted = false;  // operand produced by a candidate permutation
  bool routable = false;   // all 8 bytes traceable + valid under the config
  int32_t def = -1;        // body index of the producing permutation
  std::array<uint8_t, 8> srcs{};  // SPU register byte address per byte
  std::string reject;             // why routing failed (diagnostics)
};

struct InstRouting {
  OperandRouting a;  // first operand (the instruction's dst register)
  OperandRouting b;  // second operand (the instruction's src register)
};

struct LoopAnalysis {
  Loop loop;
  // One entry per body instruction (index relative to loop.head).
  std::vector<InstRouting> routing;
  std::vector<bool> removable;  // candidate permutations safe to delete
  int removable_count = 0;
  int candidate_count = 0;      // candidate permutations in the body
  int permutation_count = 0;    // all is_permutation ops in the body
  // Loop trip count, discovered from the `li` that initializes the Loopnz
  // counter register; -1 when not statically known.
  int64_t trip_count = -1;
  uint8_t trip_reg = 0xFF;
  std::string reject_reason;  // nonempty: loop cannot be orchestrated
};

// Full analysis of one loop under a crossbar configuration.
[[nodiscard]] LoopAnalysis analyze_loop(const isa::Program& p,
                                        const Loop& loop,
                                        const CrossbarConfig& cfg);

}  // namespace subword::core
