#include "core/micro_builder.h"

#include <stdexcept>

#include "core/mmio.h"

namespace subword::core {

MicroBuilder::MicroBuilder(CrossbarConfig cfg) : cfg_(cfg) {}

int MicroBuilder::add_state(const Route& route, uint8_t cntr_sel) {
  if (next_state_ >= kNumStates - 1) {
    throw std::logic_error("MicroBuilder: out of SPU states (127 max)");
  }
  const auto v = route_violation(route, cfg_);
  if (!v.empty()) {
    throw std::logic_error("MicroBuilder: invalid route: " + v);
  }
  auto& st = prog_.states[static_cast<size_t>(next_state_)];
  st.route = route;
  st.cntr_sel = cntr_sel & 1;
  st.next0 = kIdleState;
  st.next1 = kIdleState;
  return next_state_++;
}

int MicroBuilder::add_straight_state(uint8_t cntr_sel) {
  return add_state(Route{}, cntr_sel);
}

void MicroBuilder::chain_loop(int first, int last) {
  if (first < 0 || last < first || last >= next_state_) {
    throw std::logic_error("MicroBuilder: bad chain range");
  }
  for (int s = first; s <= last; ++s) {
    auto& st = prog_.states[static_cast<size_t>(s)];
    st.next0 = kIdleState;
    st.next1 = static_cast<uint8_t>(s == last ? first : s + 1);
  }
}

void MicroBuilder::set_next(int state, uint8_t next0, uint8_t next1) {
  if (state < 0 || state >= next_state_) {
    throw std::logic_error("MicroBuilder: bad state index");
  }
  prog_.states[static_cast<size_t>(state)].next0 = next0;
  prog_.states[static_cast<size_t>(state)].next1 = next1;
}

void MicroBuilder::set_cntr_reload(int counter, uint32_t value) {
  prog_.reload.at(static_cast<size_t>(counter)) = value;
}

void MicroBuilder::seal_simple_loop(uint32_t trip_count) {
  if (next_state_ == 0) {
    throw std::logic_error("MicroBuilder: no states to seal");
  }
  chain_loop(0, next_state_ - 1);
  set_cntr_reload(0, trip_count * static_cast<uint32_t>(next_state_));
}

std::vector<std::pair<uint32_t, uint32_t>> MicroBuilder::mmio_words(
    bool include_straight_words) const {
  std::vector<std::pair<uint32_t, uint32_t>> words;
  words.reserve(static_cast<size_t>(next_state_) *
                    (1 + SpuMmio::kRouteWords) +
                kNumCounters);
  words.emplace_back(SpuMmio::kCntr0, prog_.reload[0]);
  words.emplace_back(SpuMmio::kCntr1, prog_.reload[1]);
  for (int s = 0; s < next_state_; ++s) {
    const auto& st = prog_.states[static_cast<size_t>(s)];
    const uint32_t base = SpuMmio::kStateBase +
                          static_cast<uint32_t>(s) * SpuMmio::kStateStride;
    words.emplace_back(base, SpuMmio::encode_control(st));
    for (uint32_t w = 0; w < SpuMmio::kRouteWords; ++w) {
      // Straight words are the reset default; skip them to keep the
      // programming cost (and thus the SPU startup overhead we charge)
      // proportional to what is actually routed.
      const uint32_t v = SpuMmio::encode_route_word(st.route,
                                                    static_cast<int>(w));
      if (include_straight_words || v != 0xFFFFFFFFu) {
        words.emplace_back(base + 4 + 4 * w, v);
      }
    }
  }
  return words;
}

}  // namespace subword::core
