#include "core/crossbar.h"

#include <sstream>

namespace subword::core {

namespace {

bool is_mode(uint8_t s) {
  return s == Route::kZero || s == Route::kSignExtend;
}

}  // namespace

std::string route_violation(const Route& r, const CrossbarConfig& cfg) {
  const int in_bytes = cfg.input_bytes();
  for (int p = 0; p < kBusBytes; ++p) {
    const uint8_t s = r.sel[static_cast<size_t>(p)];
    if (s == Route::kStraight) continue;
    if (is_mode(s)) {
      if (!cfg.modes) {
        std::ostringstream os;
        os << "output byte " << p << " uses a mode selector but "
           << "configuration " << cfg.name << " has no mode support";
        return os.str();
      }
      if (s == Route::kSignExtend && p % kOperandBytes == 0) {
        std::ostringstream os;
        os << "output byte " << p
           << " sign-extends with no lower byte in its operand";
        return os.str();
      }
      continue;
    }
    if (s >= in_bytes) {
      std::ostringstream os;
      os << "output byte " << p << " sources SPU byte "
         << static_cast<int>(s) << " outside the " << in_bytes
         << "-byte input window of configuration " << cfg.name;
      return os.str();
    }
  }
  if (cfg.port_bits == 16) {
    // Output ports are 16-bit: bytes 2k and 2k+1 must either both be
    // straight, or form an aligned half-word route. With the mode
    // extension, the high byte may instead be a zero/sign fill (widening
    // routes), or both bytes may be zero.
    for (int p = 0; p < kBusBytes; p += 2) {
      const uint8_t lo = r.sel[static_cast<size_t>(p)];
      const uint8_t hi = r.sel[static_cast<size_t>(p + 1)];
      if (lo == Route::kStraight && hi == Route::kStraight) continue;
      if (cfg.modes) {
        const bool lo_data = !is_mode(lo) && lo != Route::kStraight;
        if ((lo_data || lo == Route::kZero) && is_mode(hi)) continue;
      }
      std::ostringstream os;
      if (lo == Route::kStraight || hi == Route::kStraight) {
        os << "output half-word at byte " << p
           << " mixes routed and straight bytes; configuration " << cfg.name
           << " routes 16-bit ports only";
        return os.str();
      }
      if (is_mode(lo) || is_mode(hi)) {
        os << "output half-word at byte " << p
           << " uses an unsupported mode combination on 16-bit ports";
        return os.str();
      }
      if (lo % 2 != 0 || hi != lo + 1) {
        os << "output half-word at byte " << p
           << " routes a misaligned source pair (" << static_cast<int>(lo)
           << "," << static_cast<int>(hi) << "); configuration " << cfg.name
           << " routes aligned 16-bit half-words only";
        return os.str();
      }
    }
  }
  return {};
}

swar::Vec64 apply_route(const Route& r, sim::Pipe pipe, int operand,
                        const sim::MmxRegFile& regs, swar::Vec64 fallback) {
  const int off = bus_offset(pipe, operand);
  swar::Vec64 out = fallback;
  uint8_t prev = 0;  // resolved value of the previous output byte
  for (int i = 0; i < kOperandBytes; ++i) {
    const uint8_t s = r.sel[static_cast<size_t>(off + i)];
    uint8_t v;
    if (s == Route::kStraight) {
      v = fallback.byte(i);
    } else if (s == Route::kZero) {
      v = 0;
    } else if (s == Route::kSignExtend) {
      v = (prev & 0x80) != 0 ? 0xFF : 0x00;
    } else {
      v = regs.byte(s);
    }
    out.set_byte(i, v);
    prev = v;
  }
  return out;
}

}  // namespace subword::core
