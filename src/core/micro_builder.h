// micro_builder.h — ergonomic construction of SPU microprograms.
//
// Used by the orchestrator and by hand-written SPU kernels. The common case
// is the paper's Figure 7 shape: one state per static instruction of a loop
// body, chained with NextState1, every NextState0 pointing at IDLE, and
// CNTR0 preloaded with trip_count x body_length.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/spu_program.h"

namespace subword::core {

class MicroBuilder {
 public:
  explicit MicroBuilder(CrossbarConfig cfg);

  // Appends a state (initially chained nowhere); returns its index.
  // Throws std::logic_error when the routes violate the configuration or
  // the 127 programmable states are exhausted.
  int add_state(const Route& route, uint8_t cntr_sel = 0);

  // Identity-route state (scalar instructions, unrouted MMX instructions).
  int add_straight_state(uint8_t cntr_sel = 0);

  // Chain states [first, last] sequentially with NextState1, wrapping from
  // `last` back to `first`; NextState0 of every state in the range is IDLE.
  void chain_loop(int first, int last);

  // Explicit successor control for nested-loop structures.
  void set_next(int state, uint8_t next0, uint8_t next1);
  void set_cntr_reload(int counter, uint32_t value);

  // Finish a single-loop program over all added states: chain them and set
  // CNTR0 = trip_count * state_count (the paper's "dynamic instruction
  // count" initialization).
  void seal_simple_loop(uint32_t trip_count);

  [[nodiscard]] const SpuProgram& program() const { return prog_; }
  [[nodiscard]] int state_count() const { return next_state_; }
  [[nodiscard]] const CrossbarConfig& config() const { return cfg_; }

  // The (offset, value) MMIO word stream that programs this microprogram
  // into the currently selected SPU context (see mmio.h for the layout).
  // Excludes the GO write. Only programmed states are emitted; straight
  // (all-0xFF) route words are skipped because they match the reset value —
  // pass include_straight_words=true when overwriting a dirty context.
  [[nodiscard]] std::vector<std::pair<uint32_t, uint32_t>> mmio_words(
      bool include_straight_words = false) const;

 private:
  CrossbarConfig cfg_;
  SpuProgram prog_;
  int next_state_ = 0;
};

}  // namespace subword::core
