// spu_program.h — the decoupled controller's microprogram (Figure 6).
//
// Each of the 128 states is a horizontal micro-word:
//   CNTRx        which of the two counters this state uses (1 bit)
//   route        the interconnect field (output-port source selects)
//   NextState0   successor when the selected counter reaches zero (7 bits)
//   NextState1   successor otherwise (7 bits)
//
// State 127 is the hard-wired IDLE state: reaching it disables the SPU and
// restores the counters to their programmed reload values. The counters are
// loaded with *dynamic instruction counts* (trip count x static loop
// length, Figure 7's CNTR0 = 10 * 3 = 30 example).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/crossbar.h"

namespace subword::core {

inline constexpr int kNumStates = 128;
inline constexpr uint8_t kIdleState = 127;
inline constexpr int kNumCounters = 2;  // the 1-bit CNTRx field of Figure 6

struct SpuState {
  uint8_t cntr_sel = 0;
  Route route;
  uint8_t next0 = kIdleState;
  uint8_t next1 = kIdleState;
};

struct SpuProgram {
  std::array<SpuState, kNumStates> states{};
  std::array<uint32_t, kNumCounters> reload{};

  SpuProgram();

  // Validity of every routed state under a crossbar configuration; returns
  // the first violation or empty string.
  [[nodiscard]] std::string violation(const CrossbarConfig& cfg) const;

  // States reachable from state 0 before IDLE (for programming-cost
  // accounting).
  [[nodiscard]] int reachable_states() const;
};

}  // namespace subword::core
