#include "core/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "sim/pairing.h"

namespace subword::core {

using isa::Inst;
using isa::Op;

namespace {

void check_reserved_regs_free(const isa::Program& p) {
  const auto base = static_cast<uint8_t>(isa::kNumMmxRegs);
  const uint8_t r14 = base + kSpuBaseReg;
  const uint8_t r15 = base + kSpuScratchReg;
  for (const auto& in : p.insts()) {
    const auto rd = sim::regs_read(in);
    const auto wr = sim::regs_written(in);
    if (rd.contains(r14) || rd.contains(r15) || wr.contains(r14) ||
        wr.contains(r15)) {
      throw std::logic_error(
          "Orchestrator: program uses reserved SPU setup registers R14/R15");
    }
  }
}

// Build a vector of instructions using the Assembler convenience API.
template <typename Fn>
std::vector<Inst> build(Fn&& fn) {
  isa::Assembler a;
  fn(a);
  return std::move(a.take().insts());
}

std::atomic<uint64_t> g_orchestrator_runs{0};

}  // namespace

uint64_t Orchestrator::total_runs() {
  return g_orchestrator_runs.load(std::memory_order_relaxed);
}

OrchestrationResult Orchestrator::run(const isa::Program& p) const {
  g_orchestrator_runs.fetch_add(1, std::memory_order_relaxed);
  check_reserved_regs_free(p);

  OrchestrationResult res;
  const auto loops = find_inner_loops(p);
  const size_t n = p.size();
  std::vector<bool> removed(n, false);
  std::vector<int> go_before(n, -1);  // old head index -> context id

  // --- analyze loops and build microprograms -------------------------------
  std::vector<LoopAnalysis> chosen;
  for (const auto& loop : loops) {
    LoopReport rep;
    rep.head = loop.head;
    rep.body_len_before = static_cast<int>(loop.body_len());

    LoopAnalysis la = analyze_loop(p, loop, opts_.config);
    rep.candidate_permutations = la.candidate_count;
    rep.total_permutations = la.permutation_count;
    rep.trip_count = la.trip_count;
    if (!la.reject_reason.empty()) {
      rep.note = la.reject_reason;
      res.loops.push_back(rep);
      continue;
    }
    if (la.removable_count == 0 && !opts_.orchestrate_empty_loops) {
      rep.note = "no removable permutations";
      res.loops.push_back(rep);
      continue;
    }
    if (static_cast<int>(res.contexts.size()) >= opts_.max_contexts) {
      rep.note = "out of SPU contexts";
      res.loops.push_back(rep);
      continue;
    }

    // One SPU state per *kept* body instruction, in order.
    MicroBuilder mb(opts_.config);
    int kept = 0;
    for (size_t k = 0; k < loop.body_len(); ++k) {
      if (la.removable[k]) {
        removed[loop.head + k] = true;
        continue;
      }
      Route r;
      const auto& ir = la.routing[k];
      if (ir.a.routable && ir.a.def >= 0 &&
          la.removable[static_cast<size_t>(ir.a.def)]) {
        r.set_operand_both_pipes(0, ir.a.srcs);
      }
      if (ir.b.routable && ir.b.def >= 0 &&
          la.removable[static_cast<size_t>(ir.b.def)]) {
        r.set_operand_both_pipes(1, ir.b.srcs);
      }
      mb.add_state(r);
      ++kept;
    }
    mb.seal_simple_loop(static_cast<uint32_t>(la.trip_count));

    const int ctx = static_cast<int>(res.contexts.size());
    res.contexts.push_back(mb.program());
    go_before[loop.head] = ctx;
    rep.context = ctx;
    rep.body_len_after = kept;
    rep.removed_permutations = la.removable_count;
    res.removed_static += la.removable_count;
    res.loops.push_back(rep);
    chosen.push_back(std::move(la));
  }

  if (res.contexts.empty()) {
    res.program = p;  // nothing to do
    return res;
  }

  // --- prologue: program every context through the MMIO window -------------
  std::vector<Inst> out = build([&](isa::Assembler& a) {
    emit_spu_base(a, opts_.mmio_base);
    for (size_t c = 0; c < res.contexts.size(); ++c) {
      // Select context c (GO clear), then stream its words.
      emit_spu_stop(a, static_cast<int>(c));
      MicroBuilder mb(opts_.config);
      // Re-derive the word stream from the stored program.
      // (MicroBuilder owns encoding; reconstruct states in order.)
      const auto& prog = res.contexts[c];
      int states = prog.reachable_states();
      for (int s = 0; s < states; ++s) {
        mb.add_state(prog.states[static_cast<size_t>(s)].route,
                     prog.states[static_cast<size_t>(s)].cntr_sel);
        mb.set_next(s, prog.states[static_cast<size_t>(s)].next0,
                    prog.states[static_cast<size_t>(s)].next1);
      }
      mb.set_cntr_reload(0, prog.reload[0]);
      mb.set_cntr_reload(1, prog.reload[1]);
      emit_spu_words(a, mb.mmio_words());
    }
  });
  res.prologue_instructions = static_cast<int>(out.size());

  // --- rewrite --------------------------------------------------------------
  std::vector<int32_t> new_index(n, -1);
  for (size_t i = 0; i < n; ++i) {
    if (go_before[i] >= 0) {
      const auto go = build([&](isa::Assembler& a) {
        emit_spu_go(a, go_before[i]);
      });
      res.go_instructions += static_cast<int>(go.size());
      out.insert(out.end(), go.begin(), go.end());
    }
    if (removed[i]) continue;
    new_index[i] = static_cast<int32_t>(out.size());
    out.push_back(p.at(i));
  }

  // Re-patch branch targets: a target that pointed at a removed instruction
  // moves to the next kept one.
  auto resolve = [&](int32_t old_target) -> int32_t {
    for (size_t j = static_cast<size_t>(old_target); j < n; ++j) {
      if (new_index[j] >= 0) return new_index[j];
    }
    throw std::logic_error("Orchestrator: branch target vanished");
  };
  for (size_t i = static_cast<size_t>(res.prologue_instructions);
       i < out.size(); ++i) {
    if (isa::is_branch_op(out[i].op) && out[i].target >= 0) {
      out[i].target = resolve(out[i].target);
    }
  }

  // Labels are dropped: indices moved and they are only used for listings.
  res.program = isa::Program(std::move(out), {});
  return res;
}

OrchestrationReport summarize(const OrchestrationResult& r) {
  OrchestrationReport rep;
  rep.removed_static = r.removed_static;
  rep.prologue_instructions = r.prologue_instructions;
  rep.go_instructions = r.go_instructions;
  rep.contexts_used = static_cast<int>(r.contexts.size());
  rep.loops_seen = static_cast<int>(r.loops.size());
  for (const auto& l : r.loops) {
    if (l.context < 0) continue;
    ++rep.loops_orchestrated;
    if (l.trip_count > 0) {
      rep.removed_dynamic +=
          static_cast<int64_t>(l.removed_permutations) * l.trip_count;
    }
  }
  return rep;
}

AttachedSpu attach_spu(sim::Machine& m, const OrchestrationResult& result,
                       const OrchestratorOptions& opts) {
  AttachedSpu att;
  const int contexts =
      std::max<int>(1, static_cast<int>(result.contexts.size()));
  att.spu = std::make_unique<Spu>(opts.config, contexts);
  att.mmio = std::make_unique<SpuMmio>(att.spu.get());
  m.memory().map_device(opts.mmio_base, SpuMmio::kWindowSize,
                        att.mmio.get());
  m.set_router(att.spu.get());
  return att;
}

}  // namespace subword::core
