// orchestrator.h — automatic sub-word orchestration (the paper's §4 claim
// that SPU code generation "is systematic and can be automated").
//
// The pass:
//   1. finds simple inner loops with statically known trip counts,
//   2. runs the byte-provenance analysis (provenance.h) under the chosen
//      crossbar configuration,
//   3. deletes the permutation instructions proven removable,
//   4. attaches crossbar routes to their consumers via a per-loop SPU
//      microprogram (one state per remaining body instruction, Figure 7),
//   5. rewrites the program: an MMIO programming prologue at entry, a
//      context-select + GO store immediately before each orchestrated loop,
//      with all branch targets re-patched.
//
// The transformed program must be run on a Machine with a Spu installed
// (attach_spu below); it produces bit-identical architectural results while
// the deleted permutations are performed by the SPU interconnect.
//
// Paper correspondence: §4 (automated SPU code generation, startup-cost
// accounting), Figure 7 (the one-state-per-instruction loop microprogram
// shape the rewriter emits), §5.2.1 (the manual variants this pass is
// measured against).
//
// Invariants:
//  * Soundness over speed: a permutation is deleted only when the
//    provenance analysis proves every consumed byte is still live at its
//    producing location under the chosen crossbar configuration; anything
//    unprovable stays in the instruction stream (see
//    AutoOrchestration.VerifiesOnEveryKernel).
//  * run() never mutates its input Program; the result owns a rewritten
//    copy plus the per-context microprograms, and an OrchestrationResult
//    is immutable afterwards — the runtime layer shares it across threads
//    by shared_ptr<const> without locking.
//  * R14/R15 are reserved for the injected MMIO prologue; programs that
//    touch them are rejected (throw), never silently corrupted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/mmio.h"
#include "core/provenance.h"
#include "core/spu.h"
#include "core/spu_program.h"
#include "isa/program.h"
#include "sim/machine.h"

namespace subword::core {

struct OrchestratorOptions {
  CrossbarConfig config = kConfigA;
  int max_contexts = 8;
  uint64_t mmio_base = 0xF0000000ull;
  // When false, loops whose analysis finds nothing removable are left
  // untouched (no GO, no states) — avoids pure overhead.
  bool orchestrate_empty_loops = false;
};

struct LoopReport {
  size_t head = 0;            // original instruction index of the loop head
  int context = -1;           // SPU context assigned (-1: not orchestrated)
  int body_len_before = 0;
  int body_len_after = 0;
  int removed_permutations = 0;   // static count
  int candidate_permutations = 0;
  int total_permutations = 0;     // static, incl. packs
  int64_t trip_count = 0;
  std::string note;           // reject reason / diagnostics
};

struct OrchestrationResult {
  isa::Program program;            // transformed program
  std::vector<SpuProgram> contexts;  // microprograms, indexed by context id
  std::vector<LoopReport> loops;
  int prologue_instructions = 0;   // MMIO programming cost (instructions)
  int go_instructions = 0;         // context-select + GO stores injected
                                   // before orchestrated loop heads
  int removed_static = 0;          // total removed permutations (static)

  [[nodiscard]] bool any_orchestrated() const {
    for (const auto& l : loops) {
      if (l.context >= 0) return true;
    }
    return false;
  }
};

// Flat scorecard of one orchestration — the quantities the paper's §4
// startup-cost accounting weighs against each other, extracted from an
// OrchestrationResult so the runtime planner (and reports) can price a
// candidate configuration without walking the loop list themselves.
struct OrchestrationReport {
  int removed_static = 0;        // permutations deleted (static count)
  // Σ removed × trip_count over orchestrated loops: permutation executions
  // deleted per entry into the orchestrated loops (one pass of the
  // program's workload; multiply by outer repeats for a dynamic estimate).
  int64_t removed_dynamic = 0;
  int prologue_instructions = 0; // MMIO programming cost at program entry
  int go_instructions = 0;       // per-loop context-select + GO cost
  int contexts_used = 0;         // SPU contexts consumed
  int loops_seen = 0;            // inner loops the analysis considered
  int loops_orchestrated = 0;    // loops that actually got a context

  // Total startup instructions the transformation injected.
  [[nodiscard]] int startup_instructions() const {
    return prologue_instructions + go_instructions;
  }
};

[[nodiscard]] OrchestrationReport summarize(const OrchestrationResult& r);

class Orchestrator {
 public:
  explicit Orchestrator(OrchestratorOptions opts = {}) : opts_(opts) {}

  // Transforms `p`. Throws std::logic_error if the program already uses the
  // reserved SPU setup registers (R14/R15).
  [[nodiscard]] OrchestrationResult run(const isa::Program& p) const;

  // Process-wide count of Orchestrator::run invocations. The analysis is
  // the expensive prepare-half step, so layers above promise laziness about
  // it (registry capability probes, Session construction); this counter is
  // what lets tests pin those promises down.
  [[nodiscard]] static uint64_t total_runs();

  [[nodiscard]] const OrchestratorOptions& options() const { return opts_; }

 private:
  OrchestratorOptions opts_;
};

// Creates a Spu matching `result`, maps its MMIO window into the machine's
// memory and installs it as the machine's operand router. The Spu object
// must outlive the machine run; the returned unique_ptrs own it.
struct AttachedSpu {
  std::unique_ptr<Spu> spu;
  std::unique_ptr<SpuMmio> mmio;
};
[[nodiscard]] AttachedSpu attach_spu(sim::Machine& m,
                                     const OrchestrationResult& result,
                                     const OrchestratorOptions& opts);

}  // namespace subword::core
