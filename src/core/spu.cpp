#include "core/spu.h"

#include <stdexcept>

namespace subword::core {

Spu::Spu(CrossbarConfig cfg, int num_contexts) : cfg_(cfg) {
  if (num_contexts < 1) {
    throw std::invalid_argument("Spu: need at least one context");
  }
  contexts_.resize(static_cast<size_t>(num_contexts));
}

void Spu::select_context(int i) {
  if (i < 0 || i >= num_contexts()) {
    throw std::out_of_range("Spu: context index out of range");
  }
  cur_context_ = i;
}

void Spu::go() {
  const auto& prog = contexts_[static_cast<size_t>(cur_context_)];
  const auto v = prog.violation(cfg_);
  if (!v.empty()) {
    throw std::logic_error("Spu::go: microprogram violates crossbar "
                           "configuration: " + v);
  }
  go_ = true;
  cur_state_ = 0;
  for (int i = 0; i < kNumCounters; ++i) {
    counter_[static_cast<size_t>(i)] = prog.reload[static_cast<size_t>(i)];
  }
  ++stats_.activations;
}

void Spu::stop() {
  go_ = false;
  cur_state_ = kIdleState;
  const auto& prog = contexts_[static_cast<size_t>(cur_context_)];
  for (int i = 0; i < kNumCounters; ++i) {
    counter_[static_cast<size_t>(i)] = prog.reload[static_cast<size_t>(i)];
  }
}

bool Spu::route(const isa::Inst& /*in*/, sim::Pipe pipe,
                const sim::MmxRegFile& regs, swar::Vec64* a,
                swar::Vec64* b) {
  if (!go_) return false;
  const auto& st =
      contexts_[static_cast<size_t>(cur_context_)].states[cur_state_];
  bool any = false;
  if (st.route.routes_operand(pipe, 0)) {
    *a = apply_route(st.route, pipe, 0, regs, *a);
    any = true;
    ++stats_.routed_operands;
  }
  if (st.route.routes_operand(pipe, 1)) {
    *b = apply_route(st.route, pipe, 1, regs, *b);
    any = true;
    ++stats_.routed_operands;
  }
  return any;
}

void Spu::retire(const isa::Inst& /*in*/) {
  if (!go_) return;
  if (skip_next_retire_) {
    // The store that set GO retires after activation; it is not part of
    // the loop the microprogram describes.
    skip_next_retire_ = false;
    return;
  }
  auto& prog = contexts_[static_cast<size_t>(cur_context_)];
  const auto& st = prog.states[cur_state_];
  ++stats_.steps;

  uint32_t& cnt = counter_[st.cntr_sel];
  if (cnt > 0) --cnt;
  const bool exhausted = (cnt == 0);
  if (exhausted) {
    // "The SPU automatically restores the CNTR value to its original
    // programmed state after reaching zero" — this is what makes nested
    // loops zero-overhead: the inner counter is ready again by the time
    // the outer loop re-enters the inner states.
    cnt = prog.reload[st.cntr_sel];
  }
  const uint8_t next = exhausted ? st.next0 : st.next1;
  if (next == kIdleState) {
    go_ = false;
    cur_state_ = kIdleState;
    for (int i = 0; i < kNumCounters; ++i) {
      counter_[static_cast<size_t>(i)] = prog.reload[static_cast<size_t>(i)];
    }
    ++stats_.idles;
  } else {
    cur_state_ = next;
  }
}

}  // namespace subword::core
