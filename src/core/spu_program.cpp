#include "core/spu_program.h"

namespace subword::core {

SpuProgram::SpuProgram() {
  // Idle state self-loops; all states start pointing at IDLE so an
  // unprogrammed SPU deactivates after one step.
  states[kIdleState].next0 = kIdleState;
  states[kIdleState].next1 = kIdleState;
}

std::string SpuProgram::violation(const CrossbarConfig& cfg) const {
  for (const auto& st : states) {
    auto v = route_violation(st.route, cfg);
    if (!v.empty()) return v;
  }
  return {};
}

int SpuProgram::reachable_states() const {
  std::array<bool, kNumStates> seen{};
  int count = 0;
  // Both successors are followed; bounded by the state count.
  std::array<uint8_t, kNumStates> stack;
  int top = 0;
  stack[top++] = 0;
  while (top > 0) {
    const uint8_t s = stack[--top];
    if (s == kIdleState || seen[s]) continue;
    seen[s] = true;
    ++count;
    stack[top++] = states[s].next0;
    stack[top++] = states[s].next1;
  }
  return count;
}

}  // namespace subword::core
