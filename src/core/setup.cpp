#include "core/setup.h"

#include "core/mmio.h"

namespace subword::core {

void emit_spu_base(isa::Assembler& a, uint64_t mmio_base) {
  // The window bases we use fit in the positive int32 immediate... except
  // the default 0xF0000000 which needs assembling from shifted parts.
  if (mmio_base <= 0x7FFFFFFFull) {
    a.li(kSpuBaseReg, static_cast<int32_t>(mmio_base));
    return;
  }
  a.li(kSpuBaseReg, static_cast<int32_t>(mmio_base >> 16));
  a.sshli(kSpuBaseReg, 16);
}

void emit_spu_words(isa::Assembler& a,
                    const std::vector<std::pair<uint32_t, uint32_t>>& words) {
  for (const auto& [offset, value] : words) {
    a.li(kSpuScratchReg, static_cast<int32_t>(value));
    a.st32(kSpuBaseReg, static_cast<int32_t>(offset), kSpuScratchReg);
  }
}

void emit_spu_go(isa::Assembler& a, int context) {
  const uint32_t word = (static_cast<uint32_t>(context) << 1) | 1u;
  a.li(kSpuScratchReg, static_cast<int32_t>(word));
  a.st32(kSpuBaseReg, static_cast<int32_t>(SpuMmio::kConfigReg),
         kSpuScratchReg);
}

void emit_spu_stop(isa::Assembler& a, int context) {
  const uint32_t word = static_cast<uint32_t>(context) << 1;
  a.li(kSpuScratchReg, static_cast<int32_t>(word));
  a.st32(kSpuBaseReg, static_cast<int32_t>(SpuMmio::kConfigReg),
         kSpuScratchReg);
}

}  // namespace subword::core
