// spu.h — the Sub-word Permutation Unit runtime.
//
// Implements sim::OperandRouter: while the GO bit is set, the controller
// walks its microprogram in lock-step with the retired instruction stream,
// applying each state's interconnect route to the operand fetch of the MMX
// instruction at that step. Reaching the IDLE state clears GO and reloads
// the counters, making tight loops fully self-managing ("zero-overhead").
//
// Multiple contexts hold independently programmed microprograms; a write to
// the configuration register selects the context and sets GO (paper §3:
// "several copies of the SPU control registers, allowing for fast context
// switching").
//
// Paper correspondence: §3 (the decoupled micro-programmed controller and
// its counters), Figure 7 (the loop-shaped state chain), §4 (GO/stop
// discipline around exceptions, exercised in test_integration).
//
// Invariants:
//  * Lock-step: the controller advances exactly once per retired
//    instruction while GO is set — microprograms are built one state per
//    loop-body instruction (scalar instructions included), and counters
//    exhaust exactly at the loop's last retirement.
//  * The activating MMIO store itself does not step the controller
//    (arm_activation_skip), so state 0 aligns with the first loop-body
//    instruction after GO.
//  * While idle/stopped the router passes operands through unrouted;
//    go() re-validates the selected context against the crossbar
//    configuration and throws rather than route an illegal program.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/spu_program.h"
#include "sim/router.h"

namespace subword::core {

struct SpuRunStats {
  uint64_t steps = 0;          // controller transitions while active
  uint64_t routed_operands = 0;  // operand fetches that used the crossbar
  uint64_t activations = 0;      // GO writes
  uint64_t idles = 0;            // transitions into IDLE
};

class Spu final : public sim::OperandRouter {
 public:
  explicit Spu(CrossbarConfig cfg, int num_contexts = 1);

  [[nodiscard]] const CrossbarConfig& config() const { return cfg_; }
  [[nodiscard]] int num_contexts() const {
    return static_cast<int>(contexts_.size());
  }

  // Direct programming interface (tests / builders). MMIO programming in
  // mmio.h writes through to these.
  [[nodiscard]] SpuProgram& context(int i) { return contexts_.at(i); }
  [[nodiscard]] const SpuProgram& context(int i) const {
    return contexts_.at(i);
  }
  [[nodiscard]] int selected_context() const { return cur_context_; }
  void select_context(int i);

  // Activate: validates the selected context against the crossbar
  // configuration (throws std::logic_error on violation), enters state 0
  // and loads the counters. The activating MMIO store itself does not step
  // the controller.
  void go();
  // Deactivate (exception handlers write this; paper §4).
  void stop();

  [[nodiscard]] bool active() const override { return go_; }
  [[nodiscard]] uint8_t current_state() const { return cur_state_; }
  [[nodiscard]] uint32_t counter(int i) const { return counter_.at(i); }

  bool route(const isa::Inst& in, sim::Pipe pipe,
             const sim::MmxRegFile& regs, swar::Vec64* a,
             swar::Vec64* b) override;
  void retire(const isa::Inst& in) override;

  [[nodiscard]] const SpuRunStats& run_stats() const { return stats_; }

  // Used by the MMIO device to suppress the controller step of the
  // activating store instruction.
  void arm_activation_skip() { skip_next_retire_ = true; }

 private:
  CrossbarConfig cfg_;
  std::vector<SpuProgram> contexts_;
  int cur_context_ = 0;
  uint8_t cur_state_ = kIdleState;
  std::array<uint32_t, kNumCounters> counter_{};
  bool go_ = false;
  bool skip_next_retire_ = false;
  SpuRunStats stats_;
};

}  // namespace subword::core
