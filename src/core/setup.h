// setup.h — emission of SPU programming code into simulated programs.
//
// The SPU is programmed through ordinary stores to its memory-mapped
// window, so the programming cost is real simulated work ("the startup
// cost of programming the SPU needs to be considered carefully", paper §4).
// By convention R14 holds the window base and R15 is the value scratch;
// programs that want orchestration must leave those registers free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "isa/assembler.h"

namespace subword::core {

inline constexpr uint8_t kSpuBaseReg = isa::R14;
inline constexpr uint8_t kSpuScratchReg = isa::R15;

// Loads the window base into R14 (once, at program start).
void emit_spu_base(isa::Assembler& a, uint64_t mmio_base);

// Emits li/st32 pairs for an MMIO word stream (from MicroBuilder).
void emit_spu_words(isa::Assembler& a,
                    const std::vector<std::pair<uint32_t, uint32_t>>& words);

// Emits the CONFIG write that selects `context` and sets GO. Must be the
// last instruction before the loop head: the controller starts stepping on
// the next retired instruction.
void emit_spu_go(isa::Assembler& a, int context);

// Emits the CONFIG write that stops the SPU (exception handlers, paper §4).
void emit_spu_stop(isa::Assembler& a, int context);

// Instruction cost of emit_spu_words for a given stream (2 per word).
[[nodiscard]] inline size_t setup_instruction_count(size_t words) {
  return 2 * words;
}

}  // namespace subword::core
