#include "core/mmio.h"

#include <stdexcept>

namespace subword::core {

void SpuMmio::write32(uint64_t offset, uint32_t value) {
  if (offset == kConfigReg) {
    const int ctx = static_cast<int>((value >> 1) & 0x7F);
    spu_->select_context(ctx);
    if ((value & 1u) != 0) {
      spu_->go();
      spu_->arm_activation_skip();
    } else {
      spu_->stop();
    }
    return;
  }
  if (offset == kCntr0 || offset == kCntr1) {
    auto& prog = spu_->context(spu_->selected_context());
    prog.reload[offset == kCntr0 ? 0 : 1] = value;
    return;
  }
  if (offset >= kStateBase && offset < kWindowSize) {
    const uint32_t rel = static_cast<uint32_t>(offset) - kStateBase;
    const uint32_t state = rel / kStateStride;
    const uint32_t field = rel % kStateStride;
    if (state >= kNumStates) {
      throw std::out_of_range("SpuMmio: state index out of range");
    }
    auto& st = spu_->context(spu_->selected_context()).states[state];
    if (field == 0) {
      st.cntr_sel = static_cast<uint8_t>(value & 1);
      st.next0 = static_cast<uint8_t>((value >> 8) & 0x7F);
      st.next1 = static_cast<uint8_t>((value >> 16) & 0x7F);
      return;
    }
    const uint32_t word = (field - 4) / 4;
    if (field % 4 != 0 || word >= kRouteWords) {
      throw std::out_of_range("SpuMmio: unaligned state field write");
    }
    for (int j = 0; j < 4; ++j) {
      st.route.sel[static_cast<size_t>(4 * word + static_cast<uint32_t>(j))] =
          static_cast<uint8_t>((value >> (8 * j)) & 0xFF);
    }
    return;
  }
  throw std::out_of_range("SpuMmio: write outside register window");
}

uint32_t SpuMmio::read32(uint64_t offset) {
  if (offset == kConfigReg) {
    uint32_t v = static_cast<uint32_t>(spu_->selected_context()) << 1;
    if (spu_->active()) v |= 1u | (1u << 31);
    return v;
  }
  if (offset == kCntr0 || offset == kCntr1) {
    const auto& prog = spu_->context(spu_->selected_context());
    return prog.reload[offset == kCntr0 ? 0 : 1];
  }
  if (offset >= kStateBase && offset < kWindowSize) {
    const uint32_t rel = static_cast<uint32_t>(offset) - kStateBase;
    const uint32_t state = rel / kStateStride;
    const uint32_t field = rel % kStateStride;
    if (state >= kNumStates) {
      throw std::out_of_range("SpuMmio: state index out of range");
    }
    const auto& st = spu_->context(spu_->selected_context()).states[state];
    if (field == 0) return encode_control(st);
    const uint32_t word = (field - 4) / 4;
    if (field % 4 != 0 || word >= kRouteWords) {
      throw std::out_of_range("SpuMmio: unaligned state field read");
    }
    return encode_route_word(st.route, static_cast<int>(word));
  }
  throw std::out_of_range("SpuMmio: read outside register window");
}

}  // namespace subword::core
