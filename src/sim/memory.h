// memory.h — byte-addressable simulated memory with device (MMIO) regions.
//
// The SPU control registers are memory-mapped (paper §3/§4); devices
// register an address window and receive the stores/loads that hit it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace subword::sim {

// A memory-mapped device. Addresses passed in are offsets from the device
// base. Only the access widths the device supports need be overridden.
class Device {
 public:
  virtual ~Device() = default;
  virtual void write32(uint64_t offset, uint32_t value) = 0;
  virtual uint32_t read32(uint64_t offset) = 0;
};

class Memory {
 public:
  explicit Memory(size_t size_bytes);

  [[nodiscard]] size_t size() const { return bytes_.size(); }

  [[nodiscard]] uint8_t read8(uint64_t addr) const;
  [[nodiscard]] uint16_t read16(uint64_t addr) const;
  [[nodiscard]] uint32_t read32(uint64_t addr);
  [[nodiscard]] uint64_t read64(uint64_t addr) const;

  void write8(uint64_t addr, uint8_t v);
  void write16(uint64_t addr, uint16_t v);
  void write32(uint64_t addr, uint32_t v);
  void write64(uint64_t addr, uint64_t v);

  // Bulk typed access for workload setup / verification (bounds checked).
  template <typename T>
  void write_span(uint64_t addr, std::span<const T> data) {
    for (size_t i = 0; i < data.size(); ++i) {
      if constexpr (sizeof(T) == 2) {
        write16(addr + 2 * i, static_cast<uint16_t>(data[i]));
      } else if constexpr (sizeof(T) == 4) {
        write32(addr + 4 * i, static_cast<uint32_t>(data[i]));
      } else if constexpr (sizeof(T) == 8) {
        write64(addr + 8 * i, static_cast<uint64_t>(data[i]));
      } else {
        write8(addr + i, static_cast<uint8_t>(data[i]));
      }
    }
  }

  template <typename T>
  [[nodiscard]] std::vector<T> read_vector(uint64_t addr, size_t count) const {
    std::vector<T> out(count);
    for (size_t i = 0; i < count; ++i) {
      if constexpr (sizeof(T) == 2) {
        out[i] = static_cast<T>(read16(addr + 2 * i));
      } else if constexpr (sizeof(T) == 4) {
        out[i] = static_cast<T>(
            const_cast<Memory*>(this)->read32(addr + 4 * i));
      } else if constexpr (sizeof(T) == 8) {
        out[i] = static_cast<T>(read64(addr + 8 * i));
      } else {
        out[i] = static_cast<T>(read8(addr + i));
      }
    }
    return out;
  }

  // Map a device at [base, base+window_size). 32-bit accesses inside the
  // window are forwarded; other widths inside the window are rejected.
  void map_device(uint64_t base, uint64_t window_size, Device* dev);

  // Remove the device mapping (Machine reuse between jobs).
  void unmap_device() {
    device_ = nullptr;
    device_base_ = 0;
    device_size_ = 0;
  }

  // Zero the whole arena in place, keeping the allocation.
  void clear();

  [[nodiscard]] bool in_device_window(uint64_t addr) const {
    return device_ != nullptr && addr >= device_base_ &&
           addr < device_base_ + device_size_;
  }

 private:
  void check_range(uint64_t addr, uint64_t len) const;

  std::vector<uint8_t> bytes_;
  Device* device_ = nullptr;
  uint64_t device_base_ = 0;
  uint64_t device_size_ = 0;
};

}  // namespace subword::sim
