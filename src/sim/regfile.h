// regfile.h — architectural register state: 8 MMX registers + 16 scalar GPs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "isa/inst.h"
#include "swar/vec64.h"

namespace subword::sim {

struct MmxRegFile {
  std::array<swar::Vec64, isa::kNumMmxRegs> mm{};

  [[nodiscard]] swar::Vec64 read(uint8_t r) const { return mm.at(r); }
  void write(uint8_t r, swar::Vec64 v) { mm.at(r) = v; }

  // Byte-granular view of the whole file — exactly the address space the
  // SPU register exposes to the crossbar (byte 0 of MM0 is address 0,
  // byte 0 of MM1 is address 8, ...).
  [[nodiscard]] uint8_t byte(int addr) const {
    return mm.at(static_cast<size_t>(addr / 8)).byte(addr % 8);
  }
};

struct GpRegFile {
  std::array<uint64_t, isa::kNumGpRegs> r{};

  [[nodiscard]] uint64_t read(uint8_t reg) const { return r.at(reg); }
  void write(uint8_t reg, uint64_t v) { r.at(reg) = v; }
};

}  // namespace subword::sim
