#include "sim/memory.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace subword::sim {

Memory::Memory(size_t size_bytes) : bytes_(size_bytes, 0) {}

void Memory::clear() { std::fill(bytes_.begin(), bytes_.end(), 0); }

void Memory::check_range(uint64_t addr, uint64_t len) const {
  if (addr + len > bytes_.size() || addr + len < addr) {
    throw std::out_of_range("Memory access out of range: addr=" +
                            std::to_string(addr) +
                            " len=" + std::to_string(len));
  }
}

uint8_t Memory::read8(uint64_t addr) const {
  check_range(addr, 1);
  return bytes_[addr];
}

uint16_t Memory::read16(uint64_t addr) const {
  check_range(addr, 2);
  uint16_t v;
  std::memcpy(&v, bytes_.data() + addr, 2);
  return v;
}

uint32_t Memory::read32(uint64_t addr) {
  if (in_device_window(addr)) {
    return device_->read32(addr - device_base_);
  }
  check_range(addr, 4);
  uint32_t v;
  std::memcpy(&v, bytes_.data() + addr, 4);
  return v;
}

uint64_t Memory::read64(uint64_t addr) const {
  check_range(addr, 8);
  uint64_t v;
  std::memcpy(&v, bytes_.data() + addr, 8);
  return v;
}

void Memory::write8(uint64_t addr, uint8_t v) {
  check_range(addr, 1);
  bytes_[addr] = v;
}

void Memory::write16(uint64_t addr, uint16_t v) {
  check_range(addr, 2);
  std::memcpy(bytes_.data() + addr, &v, 2);
}

void Memory::write32(uint64_t addr, uint32_t v) {
  if (in_device_window(addr)) {
    device_->write32(addr - device_base_, v);
    return;
  }
  check_range(addr, 4);
  std::memcpy(bytes_.data() + addr, &v, 4);
}

void Memory::write64(uint64_t addr, uint64_t v) {
  check_range(addr, 8);
  std::memcpy(bytes_.data() + addr, &v, 8);
}

void Memory::map_device(uint64_t base, uint64_t window_size, Device* dev) {
  if (device_ != nullptr && dev != nullptr) {
    throw std::logic_error("Memory: a device window is already mapped");
  }
  device_ = dev;
  device_base_ = base;
  device_size_ = window_size;
}

}  // namespace subword::sim
