// exec.h — pure functional semantics of the MMX data operations.
//
// The machine gathers operand values (possibly via the SPU crossbar) and
// calls mmx_alu; keeping the semantics free of machine state makes every
// opcode unit-testable in isolation and lets the SPU substitute operands
// without special cases.
#pragma once

#include <cstdint>

#include "isa/opcodes.h"
#include "swar/swar.h"

namespace subword::sim {

// Computes the result of a two-operand MMX data instruction.
//   a     first operand (the destination register's prior value)
//   b     second operand (source register / loaded memory value)
//   count shift count (for shift ops; pre-resolved from imm8 or register)
// Throws std::logic_error for ops with no ALU semantics (loads/stores/emms).
[[nodiscard]] swar::Vec64 mmx_alu(isa::Op op, swar::Vec64 a, swar::Vec64 b,
                                  uint64_t count = 0);

// True if the op is handled by mmx_alu (pure register->register dataflow).
[[nodiscard]] bool has_alu_semantics(isa::Op op);

}  // namespace subword::sim
