// stats.h — execution statistics collected by the machine.
//
// These are the quantities the paper extracted with VTune (§5.2.1):
// instruction-category counts, branch/mispredict counts, cycles, and the
// fraction of cycles the MMX engine is busy (the hashed bars of Figure 9).
#pragma once

#include <cstdint>
#include <optional>

namespace subword::sim {

struct RunStats {
  // Only the cycle-level simulator produces cycle-derived quantities; the
  // native-SWAR backend replays pre-decoded traces with no cycle model and
  // reports has_cycles=false (cycles stays 0, which is a *sentinel*, not a
  // measurement). Consumers aggregating across backends must consult
  // cycles_opt()/has_cycles — a zero folded into a mean or a regression
  // baseline silently poisons it.
  uint64_t cycles = 0;
  bool has_cycles = true;
  uint64_t instructions = 0;

  // The explicit view: nullopt when no cycle model ran.
  [[nodiscard]] std::optional<uint64_t> cycles_opt() const {
    return has_cycles ? std::optional<uint64_t>(cycles) : std::nullopt;
  }

  uint64_t mmx_instructions = 0;   // all ops executing in the MMX pipes
  uint64_t mmx_compute = 0;        // MMX arithmetic/logic/compare/shift
  uint64_t mmx_permutation = 0;    // pack/unpack/reg-reg moves (alignment)
  uint64_t mmx_memory = 0;         // movq/movd to or from memory

  uint64_t scalar_instructions = 0;
  uint64_t branches = 0;
  uint64_t branch_mispredicts = 0;

  uint64_t mmx_busy_cycles = 0;    // cycles with >=1 MMX instruction issued
  uint64_t dual_issue_cycles = 0;  // cycles issuing in both U and V
  uint64_t issue_cycles = 0;       // cycles issuing at least one instruction
  uint64_t stall_cycles = 0;       // cycles blocked on operands/mispredict

  uint64_t spu_routed_ops = 0;     // MMX ops whose operands came via the SPU
  uint64_t spu_mmio_stores = 0;    // stores that hit the SPU control window

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double mmx_busy_fraction() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(mmx_busy_cycles) /
                             static_cast<double>(cycles);
  }
  [[nodiscard]] double mispredict_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(branch_mispredicts) /
                               static_cast<double>(branches);
  }

  RunStats& operator+=(const RunStats& o) {
    // A sum that includes even one cycle-less run has no meaningful cycle
    // total: poison the flag rather than under-count.
    has_cycles = has_cycles && o.has_cycles;
    cycles += o.cycles;
    instructions += o.instructions;
    mmx_instructions += o.mmx_instructions;
    mmx_compute += o.mmx_compute;
    mmx_permutation += o.mmx_permutation;
    mmx_memory += o.mmx_memory;
    scalar_instructions += o.scalar_instructions;
    branches += o.branches;
    branch_mispredicts += o.branch_mispredicts;
    mmx_busy_cycles += o.mmx_busy_cycles;
    dual_issue_cycles += o.dual_issue_cycles;
    issue_cycles += o.issue_cycles;
    stall_cycles += o.stall_cycles;
    spu_routed_ops += o.spu_routed_ops;
    spu_mmio_stores += o.spu_mmio_stores;
    return *this;
  }
};

}  // namespace subword::sim
