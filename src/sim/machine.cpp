#include "sim/machine.h"

#include <stdexcept>

#include "sim/exec.h"

namespace subword::sim {

using isa::ExecClass;
using isa::Inst;
using isa::Op;
using swar::Vec64;

namespace {
constexpr uint8_t kGpBase = isa::kNumMmxRegs;
}

Machine::Machine(isa::Program program, size_t mem_bytes, PipelineConfig cfg)
    : Machine(std::make_shared<const isa::Program>(std::move(program)),
              mem_bytes, cfg) {}

Machine::Machine(std::shared_ptr<const isa::Program> program,
                 size_t mem_bytes, PipelineConfig cfg)
    : prog_(std::move(program)),
      mem_(mem_bytes),
      cfg_(cfg),
      bpred_(cfg.bht_entries, cfg.bpred) {
  if (prog_ == nullptr || prog_->empty()) {
    throw std::invalid_argument("Machine: empty program");
  }
}

void Machine::reset(isa::Program program, PipelineConfig cfg) {
  reset(std::make_shared<const isa::Program>(std::move(program)), cfg);
}

void Machine::reset(std::shared_ptr<const isa::Program> program,
                    PipelineConfig cfg) {
  if (program == nullptr || program->empty()) {
    throw std::invalid_argument("Machine: empty program");
  }
  prog_ = std::move(program);
  mem_.clear();
  mem_.unmap_device();
  if (cfg.bht_entries != cfg_.bht_entries || cfg.bpred != cfg_.bpred) {
    bpred_ = BranchPredictor(cfg.bht_entries, cfg.bpred);
  } else {
    bpred_.reset();
  }
  cfg_ = cfg;
  mmx_ = MmxRegFile{};
  gp_ = GpRegFile{};
  router_ = nullptr;
  trace_ = nullptr;
  stats_ = RunStats{};
  cycle_ = 0;
  pc_ = 0;
  halted_ = false;
  started_ = false;
  ready_.fill(0);
}

bool Machine::operands_ready(const Inst& in, uint64_t cycle) const {
  const RegSet rs = regs_read(in);
  for (int i = 0; i < rs.count; ++i) {
    if (ready_[rs.ids[i]] > cycle) return false;
  }
  return true;
}

void Machine::account_category(const Inst& in) {
  const auto& info = isa::op_info(in.op);
  ++stats_.instructions;
  if (info.is_mmx) {
    ++stats_.mmx_instructions;
    if (info.is_permutation) {
      ++stats_.mmx_permutation;
    } else if (info.cls == ExecClass::MmxLoad ||
               info.cls == ExecClass::MmxStore) {
      ++stats_.mmx_memory;
    } else {
      ++stats_.mmx_compute;
    }
  } else {
    ++stats_.scalar_instructions;
    if (info.cls == ExecClass::Branch) ++stats_.branches;
  }
}

uint64_t Machine::execute(const Inst& in, Pipe pipe, bool* was_branch,
                          bool* mispredicted) {
  *was_branch = false;
  *mispredicted = false;
  const auto& info = isa::op_info(in.op);
  uint64_t next = pc_ + (pipe == Pipe::U ? 1 : 2);
  // NOTE: `next` above is only a default — the caller advances pc; we return
  // the *target* pc for branches and pc+1 semantics otherwise via the
  // caller's bookkeeping. For non-branch ops the return value is ignored.

  if (info.is_mmx) {
    switch (in.op) {
      case Op::MovqLoad: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mmx_.write(in.dst, Vec64{mem_.read64(addr)});
        ready_[in.dst] = cycle_ + info.latency;
        break;
      }
      case Op::MovqStore: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mem_.write64(addr, mmx_.read(in.src).bits());
        break;
      }
      case Op::MovdLoad: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mmx_.write(in.dst, Vec64{static_cast<uint64_t>(mem_.read32(addr))});
        ready_[in.dst] = cycle_ + info.latency;
        break;
      }
      case Op::MovdStore: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mem_.write32(addr, static_cast<uint32_t>(mmx_.read(in.src).bits()));
        break;
      }
      case Op::MovdToMmx:
        mmx_.write(in.dst, Vec64{gp_.read(in.src) & 0xFFFFFFFFull});
        ready_[in.dst] = cycle_ + info.latency;
        break;
      case Op::MovdFromMmx:
        gp_.write(in.dst, mmx_.read(in.src).bits() & 0xFFFFFFFFull);
        ready_[kGpBase + in.dst] = cycle_ + info.latency;
        break;
      case Op::Emms:
        break;
      default: {
        // Two-operand data op; operands may be rerouted by the SPU.
        Vec64 a = mmx_.read(in.dst);
        Vec64 b = mmx_.read(in.src);
        if (router_ != nullptr && router_->active()) {
          if (router_->route(in, pipe, mmx_, &a, &b)) {
            ++stats_.spu_routed_ops;
          }
        }
        const uint64_t count = in.src_is_imm ? in.imm8 : b.bits();
        mmx_.write(in.dst, mmx_alu(in.op, a, b, count));
        ready_[in.dst] = cycle_ + info.latency;
        break;
      }
    }
  } else {
    switch (in.op) {
      case Op::Li:
        gp_.write(in.dst, static_cast<uint64_t>(static_cast<int64_t>(in.disp)));
        break;
      case Op::SMov:
        gp_.write(in.dst, gp_.read(in.src));
        break;
      case Op::SAdd:
        gp_.write(in.dst, gp_.read(in.dst) + gp_.read(in.src));
        break;
      case Op::SAddi:
        gp_.write(in.dst,
                  gp_.read(in.dst) + static_cast<int64_t>(in.disp));
        break;
      case Op::SSub:
        gp_.write(in.dst, gp_.read(in.dst) - gp_.read(in.src));
        break;
      case Op::SSubi:
        gp_.write(in.dst,
                  gp_.read(in.dst) - static_cast<int64_t>(in.disp));
        break;
      case Op::SMul:
        gp_.write(in.dst, gp_.read(in.dst) * gp_.read(in.src));
        break;
      case Op::SShli:
        gp_.write(in.dst, gp_.read(in.dst) << in.imm8);
        break;
      case Op::SShri:
        gp_.write(in.dst, gp_.read(in.dst) >> in.imm8);
        break;
      case Op::SSrai:
        gp_.write(in.dst, static_cast<uint64_t>(
                              static_cast<int64_t>(gp_.read(in.dst)) >>
                              in.imm8));
        break;
      case Op::SAnd:
        gp_.write(in.dst, gp_.read(in.dst) & gp_.read(in.src));
        break;
      case Op::SOr:
        gp_.write(in.dst, gp_.read(in.dst) | gp_.read(in.src));
        break;
      case Op::SXor:
        gp_.write(in.dst, gp_.read(in.dst) ^ gp_.read(in.src));
        break;
      case Op::SLoad16: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        gp_.write(in.dst, static_cast<uint64_t>(static_cast<int64_t>(
                              static_cast<int16_t>(mem_.read16(addr)))));
        break;
      }
      case Op::SLoad32: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        gp_.write(in.dst, static_cast<uint64_t>(static_cast<int64_t>(
                              static_cast<int32_t>(mem_.read32(addr)))));
        break;
      }
      case Op::SLoad64: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        gp_.write(in.dst, mem_.read64(addr));
        break;
      }
      case Op::SStore16: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mem_.write16(addr, static_cast<uint16_t>(gp_.read(in.src)));
        break;
      }
      case Op::SStore32: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        if (mem_.in_device_window(addr)) ++stats_.spu_mmio_stores;
        mem_.write32(addr, static_cast<uint32_t>(gp_.read(in.src)));
        break;
      }
      case Op::SStore64: {
        const uint64_t addr = gp_.read(in.base) + static_cast<int64_t>(in.disp);
        mem_.write64(addr, gp_.read(in.src));
        break;
      }
      case Op::Jmp:
      case Op::Jnz:
      case Op::Jz:
      case Op::Loopnz: {
        *was_branch = true;
        bool taken = false;
        switch (in.op) {
          case Op::Jmp:
            taken = true;
            break;
          case Op::Jnz:
            taken = gp_.read(in.src) != 0;
            break;
          case Op::Jz:
            taken = gp_.read(in.src) == 0;
            break;
          case Op::Loopnz: {
            const uint64_t v = gp_.read(in.src) - 1;
            gp_.write(in.src, v);
            taken = v != 0;
            break;
          }
          default:
            break;
        }
        // The pc of this instruction (not the pair slot) indexes the BHT.
        const uint64_t bpc = pc_ + (pipe == Pipe::V ? 1 : 0);
        const bool correct = bpred_.update(bpc, taken);
        *mispredicted = !correct;
        next = taken ? static_cast<uint64_t>(in.target)
                     : bpc + 1;
        break;
      }
      case Op::Nop:
        break;
      case Op::Halt:
        halted_ = true;
        break;
      default:
        throw std::logic_error("Machine: unhandled opcode");
    }
    // Scalar writers become ready next cycle (latency from the table).
    const RegSet ws = regs_written(in);
    for (int i = 0; i < ws.count; ++i) {
      if (ws.ids[i] >= kGpBase) {
        ready_[ws.ids[i]] = cycle_ + info.latency;
      }
    }
  }

  account_category(in);
  if (router_ != nullptr) router_->retire(in);
  if (trace_) {
    TraceEvent ev;
    ev.cycle = cycle_;
    ev.index = pc_ + (pipe == Pipe::V ? 1 : 0);
    ev.pipe = pipe;
    ev.mispredicted = *mispredicted;
    ev.inst = &in;
    trace_(ev);
  }
  return next;
}

const RunStats& Machine::run() {
  return run_for_instructions(~0ull);
}

const RunStats& Machine::run_for_instructions(uint64_t n) {
  if (!started_) {
    started_ = true;
    // Pipeline fill: one extra cycle when the SPU stage is present.
    cycle_ = cfg_.extra_spu_stage ? 1 : 0;
  }
  const int mispredict_penalty =
      cfg_.mispredict_penalty + (cfg_.extra_spu_stage ? 1 : 0);
  uint64_t retired = 0;

  while (!halted_ && retired < n) {
    if (cycle_ >= cfg_.max_cycles) {
      throw std::runtime_error("Machine: cycle limit exceeded");
    }
    if (pc_ >= prog_->size()) {
      throw std::runtime_error("Machine: pc ran off the program");
    }
    const Inst& u = prog_->at(pc_);
    if (!operands_ready(u, cycle_)) {
      ++stats_.stall_cycles;
      ++cycle_;
      continue;
    }

    bool u_branch = false, u_mispredict = false;
    const uint64_t u_next = execute(u, Pipe::U, &u_branch, &u_mispredict);
    ++retired;
    bool issued_mmx = isa::op_info(u.op).is_mmx;
    bool dual = false;
    bool v_branch = false, v_mispredict = false;
    uint64_t v_next = 0;

    const bool u_diverts = u_branch || halted_;
    if (cfg_.dual_issue && !u_diverts && pc_ + 1 < prog_->size() &&
        retired < n) {
      const Inst& v = prog_->at(pc_ + 1);
      if (can_pair(u, v) && operands_ready(v, cycle_)) {
        v_next = execute(v, Pipe::V, &v_branch, &v_mispredict);
        ++retired;
        dual = true;
        issued_mmx = issued_mmx || isa::op_info(v.op).is_mmx;
      }
    }

    ++stats_.issue_cycles;
    if (dual) ++stats_.dual_issue_cycles;
    if (issued_mmx) ++stats_.mmx_busy_cycles;
    ++cycle_;

    // Next pc and mispredict charge.
    if (u_branch) {
      pc_ = u_next;
      if (u_mispredict) {
        ++stats_.branch_mispredicts;
        cycle_ += static_cast<uint64_t>(mispredict_penalty);
      }
    } else if (dual && v_branch) {
      pc_ = v_next;
      if (v_mispredict) {
        ++stats_.branch_mispredicts;
        cycle_ += static_cast<uint64_t>(mispredict_penalty);
      }
    } else {
      pc_ += dual ? 2 : 1;
    }
    stats_.cycles = cycle_;
  }
  stats_.cycles = cycle_;
  return stats_;
}

}  // namespace subword::sim
