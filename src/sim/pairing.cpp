#include "sim/pairing.h"

namespace subword::sim {
namespace {

using isa::ExecClass;
using isa::Inst;
using isa::Op;

constexpr uint8_t kGpBase = isa::kNumMmxRegs;

bool is_mem(ExecClass c) {
  return c == ExecClass::MmxLoad || c == ExecClass::MmxStore ||
         c == ExecClass::ScalarLoad || c == ExecClass::ScalarStore;
}

}  // namespace

RegSet regs_read(const Inst& in) {
  RegSet rs;
  const auto& info = isa::op_info(in.op);
  if (info.is_mmx) {
    const auto mm = isa::mmx_reads(in);
    for (int i = 0; i < mm.count; ++i) rs.add(mm.regs[i]);
    // Memory-operand base register and GP source of movd.
    switch (in.op) {
      case Op::MovqLoad:
      case Op::MovqStore:
      case Op::MovdLoad:
      case Op::MovdStore:
        rs.add(static_cast<uint8_t>(kGpBase + in.base));
        break;
      case Op::MovdToMmx:
        rs.add(static_cast<uint8_t>(kGpBase + in.src));
        break;
      default:
        break;
    }
    return rs;
  }
  switch (in.op) {
    case Op::Li:
    case Op::Nop:
    case Op::Halt:
    case Op::Jmp:
      break;
    case Op::SMov:
      rs.add(static_cast<uint8_t>(kGpBase + in.src));
      break;
    case Op::SAdd:
    case Op::SSub:
    case Op::SMul:
    case Op::SAnd:
    case Op::SOr:
    case Op::SXor:
      rs.add(static_cast<uint8_t>(kGpBase + in.dst));
      rs.add(static_cast<uint8_t>(kGpBase + in.src));
      break;
    case Op::SAddi:
    case Op::SSubi:
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
      rs.add(static_cast<uint8_t>(kGpBase + in.dst));
      break;
    case Op::SLoad16:
    case Op::SLoad32:
    case Op::SLoad64:
      rs.add(static_cast<uint8_t>(kGpBase + in.base));
      break;
    case Op::SStore16:
    case Op::SStore32:
    case Op::SStore64:
      rs.add(static_cast<uint8_t>(kGpBase + in.base));
      rs.add(static_cast<uint8_t>(kGpBase + in.src));
      break;
    case Op::Jnz:
    case Op::Jz:
    case Op::Loopnz:
      rs.add(static_cast<uint8_t>(kGpBase + in.src));
      break;
    default:
      break;
  }
  return rs;
}

RegSet regs_written(const Inst& in) {
  RegSet rs;
  const auto& info = isa::op_info(in.op);
  if (info.is_mmx) {
    uint8_t reg = 0;
    if (isa::mmx_writes(in, &reg)) rs.add(reg);
    if (in.op == Op::MovdFromMmx) {
      rs.add(static_cast<uint8_t>(kGpBase + in.dst));
    }
    return rs;
  }
  switch (in.op) {
    case Op::Li:
    case Op::SMov:
    case Op::SAdd:
    case Op::SAddi:
    case Op::SSub:
    case Op::SSubi:
    case Op::SMul:
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
    case Op::SAnd:
    case Op::SOr:
    case Op::SXor:
    case Op::SLoad16:
    case Op::SLoad32:
    case Op::SLoad64:
      rs.add(static_cast<uint8_t>(kGpBase + in.dst));
      break;
    case Op::Loopnz:
      rs.add(static_cast<uint8_t>(kGpBase + in.src));  // decrements counter
      break;
    default:
      break;
  }
  return rs;
}

bool can_pair(const Inst& u, const Inst& v) {
  const auto& ui = isa::op_info(u.op);
  const auto& vi = isa::op_info(v.op);

  // Control ops (nop/halt/emms) issue alone; branches only in V.
  if (ui.cls == ExecClass::Control || vi.cls == ExecClass::Control) {
    return false;
  }
  if (ui.cls == ExecClass::Branch) return false;

  // Shared-unit conflicts: single multiplier, single shifter.
  const bool u_mul =
      ui.cls == ExecClass::MmxMul || ui.cls == ExecClass::ScalarMul;
  const bool v_mul =
      vi.cls == ExecClass::MmxMul || vi.cls == ExecClass::ScalarMul;
  if (u_mul && v_mul) return false;
  if (ui.cls == ExecClass::MmxShift && vi.cls == ExecClass::MmxShift) {
    return false;
  }

  // Memory accesses execute in U only.
  if (is_mem(vi.cls)) return false;

  // Same destination forbidden; no RAW/WAR between the pair.
  const RegSet uw = regs_written(u);
  const RegSet vw = regs_written(v);
  const RegSet ur = regs_read(u);
  const RegSet vr = regs_read(v);
  for (int i = 0; i < vw.count; ++i) {
    if (uw.contains(vw.ids[i])) return false;  // WAW / same dest
    if (ur.contains(vw.ids[i])) return false;  // WAR: v writes what u reads
  }
  for (int i = 0; i < vr.count; ++i) {
    if (uw.contains(vr.ids[i])) return false;  // RAW: v reads what u writes
  }
  return true;
}

}  // namespace subword::sim
