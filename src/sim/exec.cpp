#include "sim/exec.h"

#include <stdexcept>

namespace subword::sim {

namespace sw = swar::active;
using swar::Vec64;
using isa::Op;

bool has_alu_semantics(Op op) {
  switch (op) {
    case Op::MovqLoad:
    case Op::MovqStore:
    case Op::MovdLoad:
    case Op::MovdStore:
    case Op::MovdToMmx:
    case Op::MovdFromMmx:
    case Op::Emms:
      return false;
    default:
      return isa::op_info(op).is_mmx;
  }
}

Vec64 mmx_alu(Op op, Vec64 a, Vec64 b, uint64_t count) {
  switch (op) {
    case Op::MovqRR:
      return b;

    case Op::Paddb: return sw::add<uint8_t>(a, b);
    case Op::Paddw: return sw::add<uint16_t>(a, b);
    case Op::Paddd: return sw::add<uint32_t>(a, b);
    case Op::Psubb: return sw::sub<uint8_t>(a, b);
    case Op::Psubw: return sw::sub<uint16_t>(a, b);
    case Op::Psubd: return sw::sub<uint32_t>(a, b);

    case Op::Paddsb: return sw::add_sat<int8_t>(a, b);
    case Op::Paddsw: return sw::add_sat<int16_t>(a, b);
    case Op::Paddusb: return sw::add_sat<uint8_t>(a, b);
    case Op::Paddusw: return sw::add_sat<uint16_t>(a, b);
    case Op::Psubsb: return sw::sub_sat<int8_t>(a, b);
    case Op::Psubsw: return sw::sub_sat<int16_t>(a, b);
    case Op::Psubusb: return sw::sub_sat<uint8_t>(a, b);
    case Op::Psubusw: return sw::sub_sat<uint16_t>(a, b);

    case Op::Pmullw: return sw::mullo16(a, b);
    case Op::Pmulhw: return sw::mulhi16(a, b);
    case Op::Pmaddwd: return sw::maddwd(a, b);

    case Op::Pcmpeqb: return sw::cmpeq<uint8_t>(a, b);
    case Op::Pcmpeqw: return sw::cmpeq<uint16_t>(a, b);
    case Op::Pcmpeqd: return sw::cmpeq<uint32_t>(a, b);
    case Op::Pcmpgtb: return sw::cmpgt<int8_t>(a, b);
    case Op::Pcmpgtw: return sw::cmpgt<int16_t>(a, b);
    case Op::Pcmpgtd: return sw::cmpgt<int32_t>(a, b);

    case Op::Pand: return sw::and_(a, b);
    case Op::Pandn: return sw::andn(a, b);
    case Op::Por: return sw::or_(a, b);
    case Op::Pxor: return sw::xor_(a, b);

    case Op::Psllw: return sw::shl<uint16_t>(a, count);
    case Op::Pslld: return sw::shl<uint32_t>(a, count);
    case Op::Psllq: return sw::shl<uint64_t>(a, count);
    case Op::Psrlw: return sw::shr_logical<uint16_t>(a, count);
    case Op::Psrld: return sw::shr_logical<uint32_t>(a, count);
    case Op::Psrlq: return sw::shr_logical<uint64_t>(a, count);
    case Op::Psraw: return sw::shr_arith<int16_t>(a, count);
    case Op::Psrad: return sw::shr_arith<int32_t>(a, count);

    case Op::Packsswb: return sw::pack_sswb(a, b);
    case Op::Packssdw: return sw::pack_ssdw(a, b);
    case Op::Packuswb: return sw::pack_uswb(a, b);

    case Op::Punpcklbw: return sw::unpack_lo<uint8_t>(a, b);
    case Op::Punpcklwd: return sw::unpack_lo<uint16_t>(a, b);
    case Op::Punpckldq: return sw::unpack_lo<uint32_t>(a, b);
    case Op::Punpckhbw: return sw::unpack_hi<uint8_t>(a, b);
    case Op::Punpckhwd: return sw::unpack_hi<uint16_t>(a, b);
    case Op::Punpckhdq: return sw::unpack_hi<uint32_t>(a, b);

    default:
      throw std::logic_error("mmx_alu: opcode has no ALU semantics");
  }
}

}  // namespace subword::sim
