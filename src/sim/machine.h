// machine.h — the simulated Pentium-MMX-class machine.
//
// In-order dual-issue (U/V) core executing an isa::Program against a
// Memory, with:
//  * the pairing rules of pairing.h,
//  * 3-cycle pipelined MMX multiplies (scoreboard on destination registers),
//  * a 2-bit branch predictor and a configurable mispredict penalty,
//  * an optional extra pipeline stage modelling the SPU interconnect
//    (paper §5.1.1: +1 mispredict penalty, +1 fill cycle),
//  * an OperandRouter hook through which the SPU intercepts operand fetch.
//
// Code and data are assumed L1-resident (paper §5.2.1): loads are 1 cycle.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "isa/program.h"
#include "sim/bpred.h"
#include "sim/memory.h"
#include "sim/pairing.h"
#include "sim/regfile.h"
#include "sim/router.h"
#include "sim/stats.h"

namespace subword::sim {

struct PipelineConfig {
  int mispredict_penalty = 4;  // Pentium-class flush cost
  bool extra_spu_stage = false;  // lengthen pipe for the SPU interconnect
  int bht_entries = 1024;
  PredictorKind bpred = PredictorKind::LocalHistory;  // P6-class default
  bool dual_issue = true;        // ablation: scalar-issue machine
  uint64_t max_cycles = 1ull << 40;  // runaway guard
};

struct TraceEvent {
  uint64_t cycle = 0;
  uint64_t index = 0;   // instruction index in the program
  Pipe pipe = Pipe::U;
  bool mispredicted = false;
  const isa::Inst* inst = nullptr;
};
using TraceFn = std::function<void(const TraceEvent&)>;

class Machine {
 public:
  Machine(isa::Program program, size_t mem_bytes, PipelineConfig cfg = {});
  // Shared-program overload: the batch runtime executes one immutable
  // cached program from many machines without copying it per job.
  Machine(std::shared_ptr<const isa::Program> program, size_t mem_bytes,
          PipelineConfig cfg = {});

  [[nodiscard]] Memory& memory() { return mem_; }
  [[nodiscard]] const Memory& memory() const { return mem_; }
  [[nodiscard]] MmxRegFile& mmx() { return mmx_; }
  [[nodiscard]] GpRegFile& gp() { return gp_; }
  [[nodiscard]] const isa::Program& program() const { return *prog_; }
  [[nodiscard]] const PipelineConfig& config() const { return cfg_; }

  void set_router(OperandRouter* router) { router_ = router; }
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  // Reset for reuse between jobs: replaces the program and pipeline
  // configuration, zeroes memory and architectural state, detaches router,
  // trace and device mapping, and clears statistics. Keeps the memory
  // allocation — the batch runtime resets one Machine per worker instead of
  // reallocating the arena per job.
  void reset(isa::Program program, PipelineConfig cfg = {});
  void reset(std::shared_ptr<const isa::Program> program,
             PipelineConfig cfg = {});

  // Run until Halt (or cycle limit). Returns the accumulated statistics.
  const RunStats& run();

  // Run until `n` more instructions have retired or Halt. Leaves the
  // machine resumable — used by the exception/interrupt tests.
  const RunStats& run_for_instructions(uint64_t n);

  [[nodiscard]] const RunStats& stats() const { return stats_; }
  [[nodiscard]] bool halted() const { return halted_; }
  [[nodiscard]] uint64_t pc() const { return pc_; }

 private:
  // Executes one instruction architecturally; updates stats categories and
  // the register scoreboard. Returns the next pc.
  uint64_t execute(const isa::Inst& in, Pipe pipe, bool* was_branch,
                   bool* mispredicted);
  [[nodiscard]] bool operands_ready(const isa::Inst& in,
                                    uint64_t cycle) const;
  void account_category(const isa::Inst& in);

  std::shared_ptr<const isa::Program> prog_;
  Memory mem_;
  PipelineConfig cfg_;
  MmxRegFile mmx_;
  GpRegFile gp_;
  BranchPredictor bpred_;
  OperandRouter* router_ = nullptr;
  TraceFn trace_;

  RunStats stats_;
  uint64_t cycle_ = 0;
  uint64_t pc_ = 0;
  bool halted_ = false;
  bool started_ = false;
  // Result-ready cycle per unified register id.
  std::array<uint64_t, kUnifiedRegs> ready_{};
};

}  // namespace subword::sim
