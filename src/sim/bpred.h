// bpred.h — branch prediction models.
//
// Two predictors are provided:
//
//  * BranchPredictor — a direct-mapped table of 2-bit saturating counters.
//    Simple, but misses every loop exit, which overstates mispredicts for
//    the short fixed-trip loops media kernels are full of.
//
//  * LocalHistoryPredictor — a P6-class two-level predictor: per-branch
//    local history (8 outcomes) indexing a per-entry pattern table of
//    2-bit counters. This learns periodic taken/not-taken patterns up to
//    period ~8, i.e. it predicts the exits of short fixed-trip loops
//    perfectly once warm — which is what produces the paper's Table 2
//    observation (missed-branch rates well below 1%) on the Pentium III,
//    whose P6 core used exactly this structure.
//
// The machine uses the two-level predictor by default; the 2-bit model is
// kept selectable for the pipeline ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace subword::sim {

enum class PredictorKind : uint8_t {
  TwoBit,
  LocalHistory,  // default (P6-class)
};

class BranchPredictor {
 public:
  explicit BranchPredictor(int entries = 1024,
                           PredictorKind kind = PredictorKind::LocalHistory);

  // Predicted direction for the branch at instruction index `pc`.
  [[nodiscard]] bool predict(uint64_t pc) const;

  // Train with the resolved direction; returns true if the prediction was
  // correct.
  bool update(uint64_t pc, bool taken);

  void reset();

  [[nodiscard]] PredictorKind kind() const { return kind_; }

 private:
  struct Entry {
    uint8_t history = 0;             // last 8 outcomes, LSB = most recent
    std::vector<uint8_t> counters;   // 2-bit counters, one per pattern
  };

  [[nodiscard]] size_t index(uint64_t pc) const { return pc & mask_; }

  PredictorKind kind_;
  std::vector<uint8_t> counters_;  // TwoBit mode: 0..3; >=2 predicts taken
  std::vector<Entry> entries_;     // LocalHistory mode
  size_t mask_;
};

}  // namespace subword::sim
