// router.h — the hook through which the SPU intercepts operand fetch.
//
// The simulator is SPU-agnostic: it exposes this interface and src/core
// implements it. When no router is installed (or it is inactive), operands
// come from the architecturally named registers — the machine behaves as a
// plain Pentium MMX.
#pragma once

#include <cstdint>

#include "isa/inst.h"
#include "sim/regfile.h"
#include "swar/vec64.h"

namespace subword::sim {

enum class Pipe : uint8_t { U = 0, V = 1 };

class OperandRouter {
 public:
  virtual ~OperandRouter() = default;

  // Whether routing is currently enabled (GO bit set, not in IDLE state).
  [[nodiscard]] virtual bool active() const = 0;

  // Called for each MMX data instruction before execution, in program
  // order. May replace the operand values `a` (first input) and `b`
  // (second input) with sub-words gathered from the register file.
  // Returns true if it rerouted anything (for statistics).
  virtual bool route(const isa::Inst& in, Pipe pipe, const MmxRegFile& regs,
                     swar::Vec64* a, swar::Vec64* b) = 0;

  // Called after every retired instruction (MMX and scalar), in program
  // order — this is what keeps the decoupled controller in lock-step with
  // the instruction stream.
  virtual void retire(const isa::Inst& in) = 0;
};

}  // namespace subword::sim
