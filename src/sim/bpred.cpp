#include "sim/bpred.h"

#include <stdexcept>

namespace subword::sim {

namespace {
bool is_power_of_two(int v) { return v > 0 && (v & (v - 1)) == 0; }
constexpr int kHistoryBits = 8;
constexpr size_t kPatterns = size_t{1} << kHistoryBits;
}  // namespace

BranchPredictor::BranchPredictor(int entries, PredictorKind kind)
    : kind_(kind), mask_(static_cast<size_t>(entries) - 1) {
  if (!is_power_of_two(entries)) {
    throw std::invalid_argument("BranchPredictor: entries must be 2^k");
  }
  if (kind_ == PredictorKind::TwoBit) {
    counters_.assign(static_cast<size_t>(entries), 1);  // weakly not-taken
  } else {
    entries_.resize(static_cast<size_t>(entries));
    for (auto& e : entries_) e.counters.assign(kPatterns, 1);
  }
}

bool BranchPredictor::predict(uint64_t pc) const {
  if (kind_ == PredictorKind::TwoBit) {
    return counters_[index(pc)] >= 2;
  }
  const Entry& e = entries_[index(pc)];
  return e.counters[e.history] >= 2;
}

bool BranchPredictor::update(uint64_t pc, bool taken) {
  if (kind_ == PredictorKind::TwoBit) {
    uint8_t& c = counters_[index(pc)];
    const bool correct = (c >= 2) == taken;
    if (taken) {
      if (c < 3) ++c;
    } else {
      if (c > 0) --c;
    }
    return correct;
  }
  Entry& e = entries_[index(pc)];
  uint8_t& c = e.counters[e.history];
  const bool correct = (c >= 2) == taken;
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
  e.history = static_cast<uint8_t>((e.history << 1) | (taken ? 1 : 0));
  return correct;
}

void BranchPredictor::reset() {
  for (auto& c : counters_) c = 1;
  for (auto& e : entries_) {
    e.history = 0;
    for (auto& c : e.counters) c = 1;
  }
}

}  // namespace subword::sim
