// pairing.h — Pentium U/V dual-issue pairing rules for MMX code.
//
// From the paper's §2 (and the Kagan et al. MMX micro-architecture paper it
// cites):
//  * two MMX instructions can issue per cycle (U and V pipes),
//  * at most one may be a multiply (single shared multiplier),
//  * at most one may be a shift/pack/unpack (single shared shifter),
//  * instructions that access memory execute in the U pipe only,
//  * the two instructions must not write the same destination,
//  * no read-after-write or write-after-read dependence may exist between
//    the paired instructions,
//  * branches pair only in the V pipe.
#pragma once

#include <cstdint>

#include "isa/inst.h"

namespace subword::sim {

// Unified register ids for dependence checks: MMX 0..7, GP 8..23.
inline constexpr int kUnifiedRegs = isa::kNumMmxRegs + isa::kNumGpRegs;

struct RegSet {
  int count = 0;
  uint8_t ids[3] = {0, 0, 0};

  void add(uint8_t id) { ids[count++] = id; }
  [[nodiscard]] bool contains(uint8_t id) const {
    for (int i = 0; i < count; ++i) {
      if (ids[i] == id) return true;
    }
    return false;
  }
};

// Registers read / written by an instruction, in the unified id space.
[[nodiscard]] RegSet regs_read(const isa::Inst& in);
[[nodiscard]] RegSet regs_written(const isa::Inst& in);

// True when `v` may issue in the V pipe in the same cycle as `u` in U.
[[nodiscard]] bool can_pair(const isa::Inst& u, const isa::Inst& v);

}  // namespace subword::sim
