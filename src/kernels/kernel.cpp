#include "kernels/kernel.h"

#include <cstdio>
#include <cstring>

namespace subword::kernels {

void MediaKernel::bind_input(sim::Memory& mem,
                             std::span<const uint8_t> input) const {
  mem.write_span<uint8_t>(buffer_spec().input_addr, input);
}

bool MediaKernel::verify_bound(const sim::Memory& /*mem*/,
                               std::span<const uint8_t> /*input*/) const {
  // A kernel advertising a BufferSpec must pair it with the matching
  // reference; reaching this default means it did not.
  return false;
}

int compare_i16(const sim::Memory& mem, uint64_t addr,
                const std::vector<int16_t>& expected,
                const std::string& what, bool log_mismatches) {
  int mismatches = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto got = static_cast<int16_t>(mem.read16(addr + 2 * i));
    if (got != expected[i]) {
      if (log_mismatches && mismatches < 5) {
        std::fprintf(stderr, "%s: mismatch at %zu: got %d want %d\n",
                     what.c_str(), i, got, expected[i]);
      }
      ++mismatches;
    }
  }
  return mismatches;
}

std::vector<int16_t> bytes_as_i16(std::span<const uint8_t> bytes) {
  std::vector<int16_t> out(bytes.size() / 2);
  std::memcpy(out.data(), bytes.data(), out.size() * 2);
  return out;
}

}  // namespace subword::kernels
