#include "kernels/kernel.h"

#include <cstdio>

namespace subword::kernels {

int compare_i16(const sim::Memory& mem, uint64_t addr,
                const std::vector<int16_t>& expected,
                const std::string& what) {
  int mismatches = 0;
  for (size_t i = 0; i < expected.size(); ++i) {
    const auto got = static_cast<int16_t>(mem.read16(addr + 2 * i));
    if (got != expected[i]) {
      if (mismatches < 5) {
        std::fprintf(stderr, "%s: mismatch at %zu: got %d want %d\n",
                     what.c_str(), i, got, expected[i]);
      }
      ++mismatches;
    }
  }
  return mismatches;
}

}  // namespace subword::kernels
