#include "kernels/color_convert.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_color.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedRgb = 0x52474259;

// Coefficient table layout at kCoeffAddr: nine broadcast quadwords (four
// identical word lanes each) in matrix order, then the shared 128 quadword
// used both as luma rounding and chroma bias.
constexpr int16_t kCoef[9] = {77, 150, 29, -43, -85, 128, 128, -107, -21};
constexpr int32_t kBiasOff = 9 * 8;

// Register plan:
//   R0 repeat counter  R1 pixel-quad counter  R2 input pointer
//   R3/R5/R6 Y/Cb/Cr plane pointers  R4 coefficient base
//   MM0..MM2 the three interleaved quadwords; after deinterleave
//   Rv=MM5, Gv=MM6, Bv=MM0; MM1/MM2 arithmetic temps.

// One channel's dot product against broadcast coefficients: acc in MM1.
void emit_channel(Assembler& a, int coef_index, bool luma, uint8_t out_ptr) {
  a.movq_load(MM1, R4, coef_index * 8);
  a.pmullw(MM1, MM5);  // * Rv
  a.movq_load(MM2, R4, (coef_index + 1) * 8);
  a.pmullw(MM2, MM6);  // * Gv
  a.paddw(MM1, MM2);
  a.movq_load(MM2, R4, (coef_index + 2) * 8);
  a.pmullw(MM2, MM0);  // * Bv
  a.paddw(MM1, MM2);
  if (luma) {
    a.movq_load(MM2, R4, kBiasOff);  // +128 rounding before the shift
    a.paddw(MM1, MM2);
    a.psrlw(MM1, 8);
  } else {
    a.psraw(MM1, 8);                 // truncating signed shift
    a.movq_load(MM2, R4, kBiasOff);  // +128 bias after the shift
    a.paddw(MM1, MM2);
  }
  a.movq_store(out_ptr, 0, MM1);
}

// The shared arithmetic + pointer-advance tail (identical in both
// variants; only the deinterleave differs).
void emit_convert_tail(Assembler& a, const std::string& loop_label) {
  emit_channel(a, 0, /*luma=*/true, R3);
  emit_channel(a, 3, /*luma=*/false, R5);
  emit_channel(a, 6, /*luma=*/false, R6);
  a.saddi(R2, 24);
  a.saddi(R3, 8);
  a.saddi(R5, 8);
  a.saddi(R6, 8);
  a.loopnz(R1, loop_label);
}

void emit_pointer_reset(Assembler& a) {
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.li(R5, static_cast<int32_t>(kAuxAddr));
  a.li(R6, static_cast<int32_t>(kAux2Addr));
}

}  // namespace

std::string ColorConvertKernel::name() const { return "Color Convert"; }

std::string ColorConvertKernel::description() const {
  return "RGB to YCbCr 4:4:4, 256 Pixel blocks";
}

isa::Program ColorConvertKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  emit_pointer_reset(a);
  a.li(R1, kPixels / 4);
  a.label("quad");
  a.movq_load(MM0, R2, 0);   // [R0 G0 B0 R1]
  a.movq_load(MM1, R2, 8);   // [G1 B1 R2 G2]
  a.movq_load(MM2, R2, 16);  // [B2 R3 G3 B3]
  // Stride-3 deinterleave through the power-of-two unpack tree.
  a.movq(MM3, MM1);
  a.psrlq(MM3, 32);       // [R2 G2 .. ..]
  a.movq(MM4, MM2);
  a.psrlq(MM4, 16);       // [R3 G3 B3 ..]
  a.punpcklwd(MM3, MM4);  // [R2 R3 G2 G3]
  a.movq(MM4, MM0);
  a.psrlq(MM4, 48);       // [R1 .. .. ..]
  a.movq(MM5, MM0);
  a.punpcklwd(MM5, MM4);  // [R0 R1 G0 ..]
  a.movq(MM6, MM5);       // keep [.. .. G0 ..] for the G vector
  a.punpckldq(MM5, MM3);  // Rv = [R0 R1 R2 R3]
  a.movq(MM4, MM1);
  a.psllq(MM4, 32);       // [.. .. G1 B1]
  a.punpckhwd(MM6, MM4);  // [G0 G1 .. B1]
  a.movq(MM7, MM3);
  a.psrlq(MM7, 32);       // [G2 G3 .. ..]
  a.punpckldq(MM6, MM7);  // Gv = [G0 G1 G2 G3]
  a.movq(MM4, MM1);
  a.psllq(MM4, 16);       // [.. G1 B1 R2]
  a.punpckhwd(MM0, MM4);  // [B0 B1 R1 R2]
  a.movq(MM4, MM2);
  a.psrlq(MM4, 48);       // [B3 .. .. ..]
  a.punpcklwd(MM2, MM4);  // [B2 B3 R3 ..]
  a.punpckldq(MM0, MM2);  // Bv = [B0 B1 B2 B3]
  emit_convert_tail(a, "quad");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> ColorConvertKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  core::MicroBuilder mb(cfg);
  for (int i = 0; i < 3; ++i) mb.add_straight_state();  // the three loads
  // Three channel gathers; the named MOVQ source is immaterial.
  const std::array<std::array<std::pair<int, int>, 4>, 3> lanes = {{
      {{{MM0, 0}, {MM0, 3}, {MM1, 2}, {MM2, 1}}},  // R
      {{{MM0, 1}, {MM1, 0}, {MM1, 3}, {MM2, 2}}},  // G
      {{{MM0, 2}, {MM1, 1}, {MM2, 0}, {MM2, 3}}},  // B
  }};
  for (const auto& g : lanes) {
    core::Route r;
    r.set_operand_both_pipes(1, gather_words(g));
    mb.add_state(r);
  }
  // Arithmetic (3 x 12) + 4 pointer advances + loopnz, all unrouted.
  for (int i = 0; i < 3 * 12 + 5; ++i) mb.add_straight_state();
  mb.seal_simple_loop(kPixels / 4);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  emit_pointer_reset(a);
  a.li(R1, kPixels / 4);
  core::emit_spu_go(a, 0);
  a.label("quad");
  a.movq_load(MM0, R2, 0);
  a.movq_load(MM1, R2, 8);
  a.movq_load(MM2, R2, 16);
  a.movq(MM5, MM0);  // routed: Rv gather
  a.movq(MM6, MM0);  // routed: Gv gather
  a.movq(MM0, MM1);  // routed: Bv gather (overwrites MM0 last)
  emit_convert_tail(a, "quad");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void ColorConvertKernel::init_memory(sim::Memory& mem) const {
  const auto rgb = ref::make_pixels(3 * kPixels, kSeedRgb);
  mem.write_span<int16_t>(kInputAddr, rgb);
  std::vector<int16_t> table(9 * 4 + 4);
  for (int c = 0; c < 9; ++c) {
    for (int lane = 0; lane < 4; ++lane) table[c * 4 + lane] = kCoef[c];
  }
  for (int lane = 0; lane < 4; ++lane) table[9 * 4 + lane] = 128;
  mem.write_span<int16_t>(kCoeffAddr, table);
}

bool ColorConvertKernel::verify(const sim::Memory& mem) const {
  const auto rgb = ref::make_pixels(3 * kPixels, kSeedRgb);
  const auto want = ref::rgb_to_ycbcr(rgb);
  return compare_i16(mem, kOutputAddr, want.y, name() + "/Y") == 0 &&
         compare_i16(mem, kAuxAddr, want.cb, name() + "/Cb") == 0 &&
         compare_i16(mem, kAux2Addr, want.cr, name() + "/Cr") == 0;
}

BufferSpec ColorConvertKernel::buffer_spec() const {
  BufferSpec s;
  s.input_bytes = 3 * kPixels * 2;  // interleaved RGB, 16-bit lanes
  s.output_bytes = kPixels * 2;     // the Y plane (kOutputAddr)
  // Pointwise per pixel: tiles of a larger frame are independent, and a
  // trailing partial tile can be cut at any pixel (6 input bytes -> 2
  // output bytes) and zero-padded — zero is a valid RGB sample.
  s.tileable = true;
  s.tile_unit_input_bytes = 3 * 2;
  s.tile_unit_output_bytes = 2;
  return s;
}

bool ColorConvertKernel::verify_bound(const sim::Memory& mem,
                                      std::span<const uint8_t> input) const {
  const auto rgb = bytes_as_i16(input);
  const auto want = ref::rgb_to_ycbcr(rgb);
  return compare_i16(mem, kOutputAddr, want.y, name() + "/bound Y",
                     /*log_mismatches=*/false) == 0 &&
         compare_i16(mem, kAuxAddr, want.cb, name() + "/bound Cb",
                     /*log_mismatches=*/false) == 0 &&
         compare_i16(mem, kAux2Addr, want.cr, name() + "/bound Cr",
                     /*log_mismatches=*/false) == 0;
}

}  // namespace subword::kernels
