// kernel.h — the IPP-style media kernel interface.
//
// Each kernel provides a hand-optimized MMX program (written the way the
// Intel IPP routines were written — without SPU knowledge), a hand-written
// MMX+SPU variant (the paper re-coded each routine to replace permutation
// instructions with SPU routes, §5.2.1), a deterministic workload, and
// bit-exact verification against the scalar references in src/ref.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/crossbar.h"
#include "isa/program.h"
#include "sim/memory.h"

namespace subword::kernels {

// Shared memory map (1 MiB arena; the SPU window lives far above it and is
// reached through the device hook, not the arena).
inline constexpr uint64_t kInputAddr = 0x1000;
inline constexpr uint64_t kCoeffAddr = 0x20000;
inline constexpr uint64_t kOutputAddr = 0x40000;
inline constexpr uint64_t kAuxAddr = 0x60000;
inline constexpr uint64_t kAux2Addr = 0x80000;
inline constexpr size_t kMemBytes = 1u << 20;

// Where a kernel's primary input and output live in the arena, and how big
// they are — the contract behind the user-owned-buffer path. A kernel that
// advertises a non-empty spec accepts caller-supplied input bytes in place
// of its synthetic workload and exposes its primary output region for
// readback, which is what lets api::Pipeline chain one kernel's output
// into the next kernel's input. Auxiliary inputs (coefficient tables,
// candidate lists) keep their deterministic synthetic values.
struct BufferSpec {
  size_t input_bytes = 0;    // primary input region size (0: unsupported)
  size_t output_bytes = 0;   // primary output region size
  uint64_t input_addr = kInputAddr;
  uint64_t output_addr = kOutputAddr;

  // -- Tile geometry (the scatter/gather layer, runtime/tiling.h) -----------
  // A tileable kernel treats its fixed-size primary I/O as one *base tile*
  // of an arbitrarily large frame: input tile k starts at byte
  // k * (input_bytes - tile_input_halo_bytes) of the frame and contributes
  // output_bytes at byte k * output_bytes of the gathered output. A
  // nonzero halo means consecutive input tiles re-read the trailing halo
  // bytes (conv2d re-reads two image rows so its 3x3 window is seamless
  // across tiles); halo'd kernels cannot pad a partial tail tile — the
  // frame must tile exactly. Halo-free kernels may instead declare a unit
  // granularity: a frame remainder that is a whole number of units is
  // zero-padded up to a full tile and only the units' worth of output is
  // gathered back (zero is in-range for every tileable kernel's data
  // contract, so the padded tile still verifies bit-exactly).
  bool tileable = false;
  size_t tile_input_halo_bytes = 0;
  size_t tile_unit_input_bytes = 0;   // 0: partial tail tiles unsupported
  size_t tile_unit_output_bytes = 0;

  [[nodiscard]] bool supported() const {
    return input_bytes != 0 && output_bytes != 0;
  }
};

// Caller-owned views bound to one execution. Spans reference memory the
// caller keeps alive until the run completes (for batch jobs: until the
// job's future resolves). Empty spans mean "use the synthetic workload" /
// "skip output readback" respectively.
struct BufferBinding {
  std::span<const uint8_t> input;
  std::span<uint8_t> output;

  [[nodiscard]] bool empty() const { return input.empty() && output.empty(); }
};

class MediaKernel {
 public:
  virtual ~MediaKernel() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  // The workload description column of the paper's Table 2.
  [[nodiscard]] virtual std::string description() const = 0;

  // Hand-optimized MMX baseline processing the workload `repeats` times.
  [[nodiscard]] virtual isa::Program build_mmx(int repeats) const = 0;

  // Hand-written MMX+SPU variant (self-contained: the program itself
  // programs the SPU through its memory-mapped window). Returns nullopt if
  // the kernel relies on the automatic orchestrator instead.
  [[nodiscard]] virtual std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const = 0;

  virtual void init_memory(sim::Memory& mem) const = 0;

  // Bit-exact check of the outputs against the scalar reference.
  [[nodiscard]] virtual bool verify(const sim::Memory& mem) const = 0;

  // -- User-owned-buffer path (the api:: facade's data plane) ---------------
  // Kernels opt in by returning a non-empty spec and overriding
  // verify_bound; the base class implements the common placement.

  // Primary I/O regions; default: buffers unsupported.
  [[nodiscard]] virtual BufferSpec buffer_spec() const { return {}; }

  // Place caller-supplied bytes as the primary input. Called after
  // init_memory, so the synthetic primary input is overwritten while
  // auxiliary tables survive. Precondition (checked by the runner):
  // input.size() == buffer_spec().input_bytes.
  virtual void bind_input(sim::Memory& mem,
                          std::span<const uint8_t> input) const;

  // Bit-exact check of the outputs given that the primary input was
  // `input` rather than the synthetic workload. Default: fails — kernels
  // that advertise a spec must implement the matching reference.
  [[nodiscard]] virtual bool verify_bound(
      const sim::Memory& mem, std::span<const uint8_t> input) const;
};

// Compare a region of simulated memory against expected samples; returns
// number of mismatches (0 = verified) and logs the first few to stderr.
// Pass log_mismatches=false on caller-triggerable paths (verify_bound over
// user data, where out-of-contract values are a normal outcome reported
// through the facade's kVerificationFailed, not a simulator bug).
[[nodiscard]] int compare_i16(const sim::Memory& mem, uint64_t addr,
                              const std::vector<int16_t>& expected,
                              const std::string& what,
                              bool log_mismatches = true);

// Reinterpret caller-supplied bytes as 16-bit lanes (host byte order, the
// same order sim::Memory stores them). Requires bytes.size() % 2 == 0.
[[nodiscard]] std::vector<int16_t> bytes_as_i16(
    std::span<const uint8_t> bytes);

}  // namespace subword::kernels
