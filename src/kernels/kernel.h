// kernel.h — the IPP-style media kernel interface.
//
// Each kernel provides a hand-optimized MMX program (written the way the
// Intel IPP routines were written — without SPU knowledge), a hand-written
// MMX+SPU variant (the paper re-coded each routine to replace permutation
// instructions with SPU routes, §5.2.1), a deterministic workload, and
// bit-exact verification against the scalar references in src/ref.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/crossbar.h"
#include "isa/program.h"
#include "sim/memory.h"

namespace subword::kernels {

// Shared memory map (1 MiB arena; the SPU window lives far above it and is
// reached through the device hook, not the arena).
inline constexpr uint64_t kInputAddr = 0x1000;
inline constexpr uint64_t kCoeffAddr = 0x20000;
inline constexpr uint64_t kOutputAddr = 0x40000;
inline constexpr uint64_t kAuxAddr = 0x60000;
inline constexpr uint64_t kAux2Addr = 0x80000;
inline constexpr size_t kMemBytes = 1u << 20;

class MediaKernel {
 public:
  virtual ~MediaKernel() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  // The workload description column of the paper's Table 2.
  [[nodiscard]] virtual std::string description() const = 0;

  // Hand-optimized MMX baseline processing the workload `repeats` times.
  [[nodiscard]] virtual isa::Program build_mmx(int repeats) const = 0;

  // Hand-written MMX+SPU variant (self-contained: the program itself
  // programs the SPU through its memory-mapped window). Returns nullopt if
  // the kernel relies on the automatic orchestrator instead.
  [[nodiscard]] virtual std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const = 0;

  virtual void init_memory(sim::Memory& mem) const = 0;

  // Bit-exact check of the outputs against the scalar reference.
  [[nodiscard]] virtual bool verify(const sim::Memory& mem) const = 0;
};

// Compare a region of simulated memory against expected samples; returns
// number of mismatches (0 = verified) and logs the first few to stderr.
[[nodiscard]] int compare_i16(const sim::Memory& mem, uint64_t addr,
                              const std::vector<int16_t>& expected,
                              const std::string& what);

}  // namespace subword::kernels
