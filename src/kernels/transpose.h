// transpose.h — 16x16 16-bit matrix transpose (paper Table 2: "16x16 Matrix
// Transpose, 16-bits"; Figure 3 shows the 4x4 building block).
//
// Baseline: each 4x4 block of 16-bit elements is transposed with the
// Figure-3 cascade — four register copies plus eight PUNPCK merges (the
// inter-word restriction: a column's sub-words live in four different
// registers, reachable only two registers at a time).
//
// SPU variant: the crossbar gathers a whole column into an operand, so each
// block needs only four MOVQ gathers — the paper's "matrix transpose in
// four instructions (one instruction for each column)".
#pragma once

#include <optional>
#include <string>

#include "kernels/kernel.h"

namespace subword::kernels {

class TransposeKernel final : public MediaKernel {
 public:
  static constexpr int kN = 16;           // matrix dimension
  static constexpr int kRowBytes = kN * 2;

  [[nodiscard]] std::string name() const override { return "Matrix Transpose"; }
  [[nodiscard]] std::string description() const override {
    return "16x16 Matrix Transpose, 16-bits";
  }
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
};

}  // namespace subword::kernels
