// iir.h — direct-form-I IIR filter (paper Table 2: "10 TAP, 150 Sample
// blocks" — five feed-forward plus five feedback taps).
//
// The feed-forward half vectorizes like a short FIR (PMADDWD against two
// padded coefficient quadwords). The feedback half is a serial recurrence:
// y[n] needs y[n-1], so it runs on the scalar pipe with five long-latency
// multiplies per sample — which is why the IPP IIR "does not utilize the
// MMX efficiently" (Figure 9) and why the SPU barely moves this kernel.
// MMX also provides the final saturation (MOVD -> PACKSSDW -> MOVD).
//
// SPU variant: only the feed-forward horizontal reduction is routable
// (PACKSSDW saturates, so it must stay), mirroring the paper's observation
// that what little MMX work IIR does is dominated by data marshalling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

class IirKernel final : public MediaKernel {
 public:
  static constexpr int kSamples = 150;
  static constexpr int kFfTaps = 5;
  static constexpr int kFbTaps = 5;
  static constexpr int kHistoryBytes = 64;
  static constexpr int kShift = 14;

  [[nodiscard]] std::string name() const override { return "IIR"; }
  [[nodiscard]] std::string description() const override {
    return "10 TAP, 150 Sample blocks";
  }
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;

 private:
  [[nodiscard]] std::vector<int16_t> ff_coeffs() const;
  [[nodiscard]] std::vector<int16_t> fb_coeffs() const;
};

}  // namespace subword::kernels
