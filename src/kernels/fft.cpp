#include "kernels/fft.h"

#include <stdexcept>

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_fft.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedIn = 0x46465420;
constexpr uint64_t kWorkAddr = kOutputAddr;  // transformed in place here

// Byte offset of stage s's twiddle entries in the linear tables
// (entries for stages 2..s-1 precede it; each entry is two int16).
constexpr int32_t tw_stage_offset(int s) {
  return 4 * ((1 << (s - 1)) - 2);
}

int log2_exact(int n) {
  int b = 0;
  while ((1 << b) < n) ++b;
  if ((1 << b) != n) throw std::invalid_argument("FftKernel: n must be 2^k");
  return b;
}

}  // namespace

FftKernel::FftKernel(int n) : n_(n), stages_(log2_exact(n)) {
  if (n != 128 && n != 1024) {
    throw std::invalid_argument("FftKernel: supported sizes are 128/1024");
  }
}

std::string FftKernel::name() const { return "FFT" + std::to_string(n_); }

std::string FftKernel::description() const {
  return std::to_string(n_) + " Sample, Radix 2 Real FFT";
}

int FftKernel::num_bitrev_pairs() const {
  const auto t = ref::make_fft_tables(static_cast<size_t>(n_));
  int pairs = 0;
  for (int i = 0; i < n_; ++i) {
    if (t.bitrev[static_cast<size_t>(i)] > i) ++pairs;
  }
  return pairs;
}

isa::Program FftKernel::build(bool spu, int repeats,
                              const core::CrossbarConfig* cfg) const {
  // --- SPU microprograms -----------------------------------------------------
  core::MicroBuilder mb0(cfg ? *cfg : core::kConfigA);  // stage 1, 7 states
  core::MicroBuilder mb1(cfg ? *cfg : core::kConfigA);  // stages >= 2, 21
  if (spu) {
    mb0.add_straight_state();  // load
    {
      core::Route r;  // paddsw MM2, MM1 : a <- [c0,c0], b <- [c1,c1]
      r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM0, 0}}}));
      r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM0, 1}}}));
      mb0.add_state(r);
    }
    {
      core::Route r;  // psubsw MM3, MM1 : same gathers
      r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM0, 0}}}));
      r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM0, 1}}}));
      mb0.add_state(r);
    }
    {
      core::Route r;  // psraw MM2, 1 : a <- [a'.d0 | b'.d0]
      r.set_operand_both_pipes(0, gather_dwords({{{MM2, 0}, {MM3, 0}}}));
      mb0.add_state(r);
    }
    for (int i = 0; i < 3; ++i) mb0.add_straight_state();  // store/addi/loop
    mb0.seal_simple_loop(static_cast<uint32_t>(n_ / 2));

    // smov/sadd address compute, loads, multiplies, shifts, packs.
    for (int i = 0; i < 12; ++i) mb1.add_straight_state();
    {
      core::Route r;  // psubsw MM5, MM4 : a <- MM0, b <- t-gather
      r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM0, 1}}}));
      r.set_operand_both_pipes(
          1, gather_words({{{MM2, 0}, {MM3, 0}, {MM2, 1}, {MM3, 1}}}));
      mb1.add_state(r);
    }
    {
      core::Route r;  // paddsw MM0, MM4 : b <- t-gather
      r.set_operand_both_pipes(
          1, gather_words({{{MM2, 0}, {MM3, 0}, {MM2, 1}, {MM3, 1}}}));
      mb1.add_state(r);
    }
    for (int i = 0; i < 8; ++i) mb1.add_straight_state();  // shifts..loopnz
    mb1.seal_simple_loop(1);  // reload rewritten per stage
  }

  Assembler a;
  if (spu) {
    emit_spu_prologue(a, {{0, &mb0}, {1, &mb1}});
  }
  a.li(R0, repeats);
  a.label("repeat");

  // --- copy pristine input to the work area ---------------------------------
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kWorkAddr));
  a.li(R1, n_ / 2);
  a.label("copy");
  a.movq_load(MM0, R2, 0);
  a.movq_store(R3, 0, MM0);
  a.saddi(R2, 8);
  a.saddi(R3, 8);
  a.loopnz(R1, "copy");

  // --- scalar bit-reversal swaps ---------------------------------------------
  a.li(R4, static_cast<int32_t>(kWorkAddr));
  a.li(R2, static_cast<int32_t>(kAuxAddr));
  a.li(R1, num_bitrev_pairs());
  a.label("brev");
  a.ld32(R5, R2, 0);
  a.ld32(R6, R2, 4);
  a.smov(R7, R4);
  a.sadd(R7, R5);
  a.smov(R9, R4);
  a.sadd(R9, R6);
  a.ld32(R10, R7, 0);
  a.ld32(R11, R9, 0);
  a.st32(R7, 0, R11);
  a.st32(R9, 0, R10);
  a.saddi(R2, 8);
  a.loopnz(R1, "brev");

  // --- stage 1: W = 1, adjacent sub-word butterflies --------------------------
  a.li(R2, static_cast<int32_t>(kWorkAddr));
  a.li(R1, n_ / 2);
  if (spu) core::emit_spu_go(a, 0);
  a.label("s1");
  a.movq_load(MM0, R2, 0);
  if (spu) {
    a.paddsw(MM2, MM1);  // routed: [c0,c0] + [c1,c1]
    a.psubsw(MM3, MM1);  // routed: [c0,c0] - [c1,c1]
    a.psraw(MM2, 1);     // routed: [a'|b'] >> 1
  } else {
    a.movq(MM1, MM0);
    a.punpckhdq(MM1, MM0);  // [c1, c1]
    a.movq(MM2, MM0);
    a.punpckldq(MM2, MM0);  // [c0, c0]
    a.movq(MM3, MM2);
    a.paddsw(MM2, MM1);
    a.psubsw(MM3, MM1);
    a.psraw(MM2, 1);
    a.psraw(MM3, 1);
    a.punpckldq(MM2, MM3);  // [a', b']
  }
  a.movq_store(R2, 0, MM2);
  a.saddi(R2, 8);
  a.loopnz(R1, "s1");

  // --- stages 2..log2(n), unrolled -------------------------------------------
  for (int s = 2; s <= stages_; ++s) {
    const int m = 1 << s;
    const int half = m / 2;
    const int nblocks = n_ / m;
    const int inner = half / 2;
    const std::string tag = "st" + std::to_string(s);

    if (spu) {
      // Re-program context 1's counter for this stage's trip count.
      core::emit_spu_stop(a, 1);  // select context 1
      a.li(core::kSpuScratchReg, 22 * inner);
      a.st32(core::kSpuBaseReg,
             static_cast<int32_t>(core::SpuMmio::kCntr0),
             core::kSpuScratchReg);
    }
    a.li(R9, nblocks);
    a.li(R2, static_cast<int32_t>(kWorkAddr));
    a.li(R8, half * 4);  // b-half offset, recomputed per butterfly below
    a.label(tag + "_block");
    a.li(R5, static_cast<int32_t>(kCoeffAddr + tw_stage_offset(s)));
    a.li(R6, static_cast<int32_t>(kCoeffAddr + kTwImOffset +
                                  tw_stage_offset(s)));
    a.li(R1, inner);
    if (spu) core::emit_spu_go(a, 1);
    a.label(tag + "_inner");
    // Strided address generation on the scalar pipe (IPP's FFTs recompute
    // the partner address per butterfly group rather than carrying a
    // second induction pointer — part of why their MMX occupancy is low).
    a.smov(R3, R2);
    a.sadd(R3, R8);
    a.movq_load(MM0, R2, 0);  // two a-complexes
    a.movq_load(MM1, R3, 0);  // two b-complexes
    a.movq_load(MM2, R5, 0);  // twiddle (wr, -wi) pairs
    a.movq_load(MM3, R6, 0);  // twiddle (wi, wr) pairs
    a.pmaddwd(MM2, MM1);      // [tre0, tre1] (32-bit)
    a.pmaddwd(MM3, MM1);      // [tim0, tim1]
    a.psrad(MM2, kShiftTw);
    a.psrad(MM3, kShiftTw);
    a.packssdw(MM2, MM2);     // [tre0, tre1, *, *]
    a.packssdw(MM3, MM3);     // [tim0, tim1, *, *]
    if (spu) {
      a.psubsw(MM5, MM4);     // routed: MM0 - t
      a.paddsw(MM0, MM4);     // routed: MM0 + t
    } else {
      a.movq(MM4, MM2);
      a.punpcklwd(MM4, MM3);  // t = [tre0, tim0, tre1, tim1]
      a.movq(MM5, MM0);
      a.psubsw(MM5, MM4);
      a.paddsw(MM0, MM4);
    }
    a.psraw(MM0, 1);
    a.psraw(MM5, 1);
    a.movq_store(R2, 0, MM0);
    a.movq_store(R3, 0, MM5);
    a.saddi(R2, 8);
    a.saddi(R5, 8);
    a.saddi(R6, 8);
    a.loopnz(R1, tag + "_inner");
    a.saddi(R2, half * 4);  // skip the b half we just wrote
    a.loopnz(R9, tag + "_block");
  }

  // --- spectrum post-processing (scalar) --------------------------------------
  // Models the real-FFT unpack/scale pass that follows the complex core in
  // the IPP routine: p[k] = (re[k] + im[k]) >> 1, a pure scalar walk.
  a.li(R2, static_cast<int32_t>(kWorkAddr));
  a.li(R3, static_cast<int32_t>(kAux2Addr));
  a.li(R1, n_);
  a.label("post");
  a.ld16(R5, R2, 0);
  a.ld16(R6, R2, 2);
  a.sadd(R5, R6);
  a.ssrai(R5, 1);
  a.st16(R3, 0, R5);
  a.saddi(R2, 4);
  a.saddi(R3, 2);
  a.loopnz(R1, "post");

  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

isa::Program FftKernel::build_mmx(int repeats) const {
  return build(false, repeats, nullptr);
}

std::optional<isa::Program> FftKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  return build(true, repeats, &cfg);
}

void FftKernel::init_memory(sim::Memory& mem) const {
  const auto data =
      ref::make_samples(2 * static_cast<size_t>(n_), kSeedIn + n_, 8000);
  mem.write_span<int16_t>(kInputAddr, data);

  const auto t = ref::make_fft_tables(static_cast<size_t>(n_));
  mem.write_span<int16_t>(kCoeffAddr, t.tw_re);
  mem.write_span<int16_t>(kCoeffAddr + kTwImOffset, t.tw_im);

  std::vector<int32_t> pairs;
  for (int i = 0; i < n_; ++i) {
    const auto r = t.bitrev[static_cast<size_t>(i)];
    if (r > i) {
      pairs.push_back(4 * i);
      pairs.push_back(4 * r);
    }
  }
  mem.write_span<int32_t>(kAuxAddr, pairs);
}

bool FftKernel::verify(const sim::Memory& mem) const {
  auto data =
      ref::make_samples(2 * static_cast<size_t>(n_), kSeedIn + n_, 8000);
  const auto t = ref::make_fft_tables(static_cast<size_t>(n_));
  ref::fft(data, t);
  if (compare_i16(mem, kWorkAddr, data, name()) != 0) return false;
  // The scalar post-processing pass.
  std::vector<int16_t> post(static_cast<size_t>(n_));
  for (int k = 0; k < n_; ++k) {
    const int32_t re = data[static_cast<size_t>(2 * k)];
    const int32_t im = data[static_cast<size_t>(2 * k + 1)];
    post[static_cast<size_t>(k)] = static_cast<int16_t>((re + im) >> 1);
  }
  return compare_i16(mem, kAux2Addr, post, name() + " post") == 0;
}

}  // namespace subword::kernels
