#include "kernels/matmul.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_mat.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedA = 0x4d4d5841;
constexpr uint64_t kSeedB = 0x4d4d5842;

// Broadcast-style matmul (the classic MMX idiom): for each row i, walk B
// row-major, broadcasting a[i][k] across four lanes and accumulating
// C[i][0..15] in four saturating 16-bit accumulators:
//
//   C[i][j] = satsum_k (a[i][k] * b[k][j]) >> 16      (PMULHW + PADDSW)
//
// The broadcast is the intra-word restriction in its purest form — each
// a[i][k] needs PUNPCKLWD/PUNPCKLDQ/PUNPCKHDQ replication before it can
// meet B's lanes. The SPU crossbar replicates a source half-word directly
// into all four lanes of the multiplier's second operand, deleting the
// whole broadcast sequence.
//
// Register plan:
//   R0 repeat  R9 row counter  R1 k-pair counter
//   R2 A pointer  R3 C pointer  R4 B pointer (reset per row)
//   MM4..MM7 the four output accumulators
//   baseline: MM0 movd target, MM1/MM2 broadcasts of a_k / a_k+1,
//             MM3 and MM0 row temps (interleaved to hide PMULHW latency)
//   SPU:      MM1 movd target (bytes 8..11 — inside even configuration
//             D's window), MM3/MM0 row temps

void emit_kpair_body(Assembler& a, bool spu) {
  if (spu) {
    a.movd_load(MM1, R2, 0);  // [a_k, a_k+1, 0, 0]
    for (int q = 0; q < 4; ++q) {
      a.movq_load(MM3, R4, 8 * q);       // B[k][4q..4q+3]
      a.pmulhw(MM3, MM2);                // b routed <- replicate a_k
      a.movq_load(MM0, R4, MatMulKernel::kRowBytes + 8 * q);
      a.pmulhw(MM0, MM2);                // b routed <- replicate a_k+1
      a.paddsw(static_cast<uint8_t>(MM4 + q), MM3);
      a.paddsw(static_cast<uint8_t>(MM4 + q), MM0);
    }
  } else {
    a.movd_load(MM0, R2, 0);  // [a_k, a_k+1, 0, 0]
    a.movq(MM1, MM0);
    a.punpcklwd(MM1, MM1);  // [a_k, a_k, a_k+1, a_k+1]
    a.movq(MM2, MM1);
    a.punpckldq(MM1, MM1);  // [a_k x4]
    a.punpckhdq(MM2, MM2);  // [a_k+1 x4]
    for (int q = 0; q < 4; ++q) {
      a.movq_load(MM3, R4, 8 * q);
      a.pmulhw(MM3, MM1);
      a.movq_load(MM0, R4, MatMulKernel::kRowBytes + 8 * q);
      a.pmulhw(MM0, MM2);
      a.paddsw(static_cast<uint8_t>(MM4 + q), MM3);
      a.paddsw(static_cast<uint8_t>(MM4 + q), MM0);
    }
  }
  a.saddi(R2, 4);   // two A samples consumed
  a.saddi(R4, 2 * MatMulKernel::kRowBytes);  // two B rows consumed
}

void emit_row_structure(Assembler& a, bool spu) {
  a.li(R9, MatMulKernel::kN);
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.label("row");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.pxor(MM4, MM4);
  a.pxor(MM5, MM5);
  a.pxor(MM6, MM6);
  a.pxor(MM7, MM7);
  a.li(R1, MatMulKernel::kN / 2);
  if (spu) core::emit_spu_go(a, 0);
  a.label("kpair");
  emit_kpair_body(a, spu);
  a.loopnz(R1, "kpair");
  a.movq_store(R3, 0, MM4);
  a.movq_store(R3, 8, MM5);
  a.movq_store(R3, 16, MM6);
  a.movq_store(R3, 24, MM7);
  a.saddi(R3, MatMulKernel::kRowBytes);
  a.loopnz(R9, "row");
}

}  // namespace

isa::Program MatMulKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  emit_row_structure(a, /*spu=*/false);
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> MatMulKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  // One state per k-pair body instruction (28). The PMULHW states
  // replicate one half-word of MM1 into all lanes of operand b — a route
  // only the crossbar can express (Figure 4's "forward the appropriate
  // sub-words to the ALUs in the correct byte location").
  core::MicroBuilder mb(cfg);
  mb.add_straight_state();  // movd_load MM1
  for (int q = 0; q < 4; ++q) {
    mb.add_straight_state();  // load row k
    {
      core::Route r;
      r.set_operand_both_pipes(
          1, gather_words({{{MM1, 0}, {MM1, 0}, {MM1, 0}, {MM1, 0}}}));
      mb.add_state(r);  // pmulhw x replicate(a_k)
    }
    mb.add_straight_state();  // load row k+1
    {
      core::Route r;
      r.set_operand_both_pipes(
          1, gather_words({{{MM1, 1}, {MM1, 1}, {MM1, 1}, {MM1, 1}}}));
      mb.add_state(r);  // pmulhw x replicate(a_k+1)
    }
    mb.add_straight_state();  // paddsw
    mb.add_straight_state();  // paddsw
  }
  for (int i = 0; i < 3; ++i) mb.add_straight_state();  // addi/addi/loopnz
  mb.seal_simple_loop(kN / 2);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  emit_row_structure(a, /*spu=*/true);
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void MatMulKernel::init_memory(sim::Memory& mem) const {
  mem.write_span<int16_t>(kInputAddr,
                          ref::make_matrix(kN, kN, kSeedA, 16000));
  mem.write_span<int16_t>(kCoeffAddr,
                          ref::make_matrix(kN, kN, kSeedB, 16000));
}

bool MatMulKernel::verify(const sim::Memory& mem) const {
  const auto va = ref::make_matrix(kN, kN, kSeedA, 16000);
  const auto vb = ref::make_matrix(kN, kN, kSeedB, 16000);
  const auto want = ref::matmul_q15(va, vb, kN);
  return compare_i16(mem, kOutputAddr, want, name()) == 0;
}

}  // namespace subword::kernels
