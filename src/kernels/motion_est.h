// motion_est.h — block-matching motion estimation (16x16 SAD against a
// candidate list, the inner loop of every MPEG-era encoder's search).
//
// Baseline: the MMX has no PSADBW, so each 8-pixel group costs the classic
// IPP sequence — a MOVQ copy to keep both subtraction orders alive
// (|a-b| = PSUBUSB(a,b) | PSUBUSB(b,a)), then a second copy plus a
// PUNPCKLBW/PUNPCKHBW pair to zero-extend the difference bytes under the
// word accumulator. Four permutation instructions per group, plus two more
// MOVQ copies in the per-candidate horizontal reduction.
//
// SPU variant: the first subtraction takes its minuend through the
// crossbar (the copy disappears), the low-half widen gathers the
// difference register directly into the unpack (the second copy
// disappears), and the horizontal reduction becomes two PADDUSWs with
// fully routed operand pairs (both reduction copies and shifts disappear).
// The widening unpacks themselves must stay: without the §6 zero-inject
// mode the crossbar cannot fabricate the zero bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

class MotionEstKernel final : public MediaKernel {
 public:
  static constexpr int kBlockDim = 16;   // 16x16 pixels, 8-bit
  static constexpr int kCandidates = 16; // pre-gathered candidate blocks
  static constexpr int kBlockBytes = kBlockDim * kBlockDim;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
  // Primary input: the 16x16 current block (8-bit pixels). Primary output:
  // one 16-bit SAD per candidate. The candidate list stays synthetic.
  [[nodiscard]] BufferSpec buffer_spec() const override;
  [[nodiscard]] bool verify_bound(const sim::Memory& mem,
                                  std::span<const uint8_t> input)
      const override;

  // The deterministic candidate blocks (kCandidates x kBlockBytes pixels).
  // Public so pipeline consumers can compose the scalar reference.
  [[nodiscard]] static std::vector<uint8_t> candidate_blocks();
};

}  // namespace subword::kernels
