#include "kernels/conv2d.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_conv2d.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedImg = 0x434f4e32;
constexpr uint64_t kSeedK = 0x434f4e4b;
constexpr int kRowBytes = Conv2dKernel::kInW * 2;

// Register plan:
//   R0 repeat counter  R9 row counter  R1 quad counter
//   R2 window pointer (top-left input word of the current output quad)
//   R3 output pointer  R4 coefficient base
//   MM0/MM1 the row's two aligned quadwords, MM2/MM3 window temps,
//   MM6 product temp, MM7 accumulator.


// Multiply the current window (in `win`) by tap (dy,dx), accumulate.
void emit_mac(Assembler& a, int dy, int dx, uint8_t win, bool first) {
  const uint8_t acc_or_tmp = first ? MM7 : MM6;
  a.movq_load(acc_or_tmp, R4, (3 * dy + dx) * 8);
  a.pmullw(acc_or_tmp, win);
  if (!first) a.paddw(MM7, MM6);
}

// Baseline: materialize the window shifted by `dx` words from MM0/MM1
// into MM2 (dx = 1, 2), the copy/shift/or realignment idiom.
void emit_window_mmx(Assembler& a, int dx) {
  a.movq(MM2, MM0);
  a.psrlq(MM2, static_cast<uint8_t>(16 * dx));
  a.movq(MM3, MM1);
  a.psllq(MM3, static_cast<uint8_t>(64 - 16 * dx));
  a.por(MM2, MM3);
}

void emit_row_mmx(Assembler& a, int dy) {
  a.movq_load(MM0, R2, dy * kRowBytes);
  a.movq_load(MM1, R2, dy * kRowBytes + 8);
  emit_mac(a, dy, 0, MM0, /*first=*/dy == 0);
  emit_window_mmx(a, 1);
  emit_mac(a, dy, 1, MM2, false);
  emit_window_mmx(a, 2);
  emit_mac(a, dy, 2, MM2, false);
}

void emit_row_spu(Assembler& a, int dy) {
  a.movq_load(MM0, R2, dy * kRowBytes);
  a.movq_load(MM1, R2, dy * kRowBytes + 8);
  emit_mac(a, dy, 0, MM0, /*first=*/dy == 0);
  a.movq(MM2, MM0);  // routed: window shifted one word
  emit_mac(a, dy, 1, MM2, false);
  a.movq(MM2, MM0);  // routed: window shifted two words
  emit_mac(a, dy, 2, MM2, false);
}

void emit_quad_tail(Assembler& a, const std::string& loop_label) {
  a.psraw(MM7, Conv2dKernel::kShift);
  a.movq_store(R3, 0, MM7);
  a.saddi(R2, 8);
  a.saddi(R3, 8);
  a.loopnz(R1, loop_label);
}

}  // namespace

std::string Conv2dKernel::name() const { return "2D Convolution"; }

std::string Conv2dKernel::description() const {
  return "3x3 Taps, 16x8 Output tiles";
}

isa::Program Conv2dKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R9, kOutH);
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.label("row");
  a.li(R1, kOutW / 4);
  a.label("quad");
  emit_row_mmx(a, 0);
  emit_row_mmx(a, 1);
  emit_row_mmx(a, 2);
  emit_quad_tail(a, "quad");
  a.saddi(R2, kRowBytes - kOutW * 2);  // next input row start
  a.loopnz(R9, "row");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> Conv2dKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  core::MicroBuilder mb(cfg);
  for (int dy = 0; dy < 3; ++dy) {
    mb.add_straight_state();  // load MM0
    mb.add_straight_state();  // load MM1
    // tap dx=0: load coef, pmullw (+ paddw after the first row)
    for (int i = 0; i < (dy == 0 ? 2 : 3); ++i) mb.add_straight_state();
    for (int dx = 1; dx <= 2; ++dx) {
      core::Route r;  // movq MM2 <- window shifted dx words
      r.set_operand_both_pipes(
          1, dx == 1
                 ? gather_words({{{MM0, 1}, {MM0, 2}, {MM0, 3}, {MM1, 0}}})
                 : gather_words({{{MM0, 2}, {MM0, 3}, {MM1, 0}, {MM1, 1}}}));
      mb.add_state(r);
      for (int i = 0; i < 3; ++i) mb.add_straight_state();  // mac
    }
  }
  for (int i = 0; i < 5; ++i) mb.add_straight_state();  // shift/store/advance
  mb.seal_simple_loop(kOutW / 4);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R9, kOutH);
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.label("row");
  a.li(R1, kOutW / 4);
  core::emit_spu_go(a, 0);
  a.label("quad");
  emit_row_spu(a, 0);
  emit_row_spu(a, 1);
  emit_row_spu(a, 2);
  emit_quad_tail(a, "quad");
  a.saddi(R2, kRowBytes - kOutW * 2);
  a.loopnz(R9, "row");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void Conv2dKernel::init_memory(sim::Memory& mem) const {
  const auto img =
      ref::make_pixels(static_cast<size_t>(kInW) * kInH, kSeedImg);
  mem.write_span<int16_t>(kInputAddr, img);
  const auto k = Conv2dKernel::coefficients();
  std::vector<int16_t> bc(9 * 4);
  for (int c = 0; c < 9; ++c) {
    for (int lane = 0; lane < 4; ++lane) {
      bc[static_cast<size_t>(c * 4 + lane)] = k[static_cast<size_t>(c)];
    }
  }
  mem.write_span<int16_t>(kCoeffAddr, bc);
}

bool Conv2dKernel::verify(const sim::Memory& mem) const {
  const auto img =
      ref::make_pixels(static_cast<size_t>(kInW) * kInH, kSeedImg);
  const auto want = ref::conv2d_3x3(img, kInW, kInH, coefficients(), kOutW,
                                    kShift);
  return compare_i16(mem, kOutputAddr, want, name()) == 0;
}

BufferSpec Conv2dKernel::buffer_spec() const {
  BufferSpec s;
  s.input_bytes = static_cast<size_t>(kInW) * kInH * 2;
  s.output_bytes = static_cast<size_t>(kOutW) * kOutH * 2;
  // A taller image tiles vertically: each tile re-reads the previous
  // tile's last two rows (the 3x3 window's halo), so consecutive output
  // tiles are seamless — tile k covers input rows [8k, 8k + kInH). The
  // halo couples tiles, so partial tails cannot be zero-padded and the
  // frame must tile exactly (no unit granularity).
  s.tileable = true;
  s.tile_input_halo_bytes = 2 * kInW * 2;  // two overlap rows
  return s;
}

bool Conv2dKernel::verify_bound(const sim::Memory& mem,
                                std::span<const uint8_t> input) const {
  const auto img = bytes_as_i16(input);
  const auto want =
      ref::conv2d_3x3(img, kInW, kInH, coefficients(), kOutW, kShift);
  return compare_i16(mem, kOutputAddr, want, name() + "/bound",
                     /*log_mismatches=*/false) == 0;
}

std::vector<int16_t> Conv2dKernel::coefficients() {
  // Small signed taps: |k| <= 8 keeps every lane of the accumulation exact
  // in 16 bits (max |sum| = 9 * 8 * 255 = 18360).
  return ref::make_matrix(3, 3, kSeedK, /*amplitude=*/8);
}

}  // namespace subword::kernels
