#include "kernels/runner.h"

#include <stdexcept>

#include "core/mmio.h"

namespace subword::kernels {

KernelRun run_baseline(const MediaKernel& k, int repeats,
                       sim::PipelineConfig pc) {
  KernelRun out;
  sim::Machine m(k.build_mmx(repeats), kMemBytes, pc);
  k.init_memory(m.memory());
  out.stats = m.run();
  out.verified = k.verify(m.memory());
  return out;
}

KernelRun run_spu(const MediaKernel& k, int repeats,
                  const core::CrossbarConfig& cfg, SpuMode mode,
                  sim::PipelineConfig pc) {
  KernelRun out;
  pc.extra_spu_stage = true;

  isa::Program prog;
  if (mode == SpuMode::Manual) {
    auto manual = k.build_spu(cfg, repeats);
    if (!manual.has_value()) {
      throw std::logic_error("run_spu: kernel '" + k.name() +
                             "' has no manual SPU variant");
    }
    prog = std::move(*manual);
  } else {
    core::OrchestratorOptions opts;
    opts.config = cfg;
    core::Orchestrator orch(opts);
    auto result = orch.run(k.build_mmx(repeats));
    prog = result.program;
    out.orchestration = std::move(result);
  }

  sim::Machine m(std::move(prog), kMemBytes, pc);
  core::Spu spu(cfg, /*num_contexts=*/8);
  core::SpuMmio mmio(&spu);
  m.memory().map_device(core::SpuMmio::kDefaultBase, core::SpuMmio::kWindowSize,
                        &mmio);
  m.set_router(&spu);
  k.init_memory(m.memory());
  out.stats = m.run();
  out.verified = k.verify(m.memory());
  out.spu = spu.run_stats();
  return out;
}

}  // namespace subword::kernels
