#include "kernels/runner.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "backend/lowering.h"
#include "backend/native.h"
#include "core/mmio.h"

namespace subword::kernels {

PreparedProgram prepare_baseline(const MediaKernel& k, int repeats,
                                 sim::PipelineConfig pc) {
  PreparedProgram p;
  p.program = std::make_shared<const isa::Program>(k.build_mmx(repeats));
  p.pc = pc;
  p.use_spu = false;
  p.repeats = repeats;
  return p;
}

PreparedProgram prepare_spu(const MediaKernel& k, int repeats,
                            const core::CrossbarConfig& cfg, SpuMode mode,
                            sim::PipelineConfig pc,
                            const core::OrchestratorOptions* opts) {
  PreparedProgram p;
  p.cfg = cfg;
  p.pc = pc;
  p.pc.extra_spu_stage = true;
  p.use_spu = true;
  p.repeats = repeats;

  if (mode == SpuMode::Manual) {
    auto manual = k.build_spu(cfg, repeats);
    if (!manual.has_value()) {
      throw std::logic_error("prepare_spu: kernel '" + k.name() +
                             "' has no manual SPU variant");
    }
    p.program = std::make_shared<const isa::Program>(std::move(*manual));
  } else {
    core::OrchestratorOptions o;
    if (opts != nullptr) o = *opts;
    o.config = cfg;
    p.mmio_base = o.mmio_base;
    core::Orchestrator orch(o);
    auto result = std::make_shared<core::OrchestrationResult>(
        orch.run(k.build_mmx(repeats)));
    p.num_contexts =
        std::max<int>(1, static_cast<int>(result->contexts.size()));
    p.program = std::shared_ptr<const isa::Program>(result, &result->program);
    p.orchestration = std::move(result);
  }
  return p;
}

namespace {

// Validate a non-empty binding against the kernel's spec before touching
// the machine; the facade pre-validates, this is the layer's own guard.
void check_binding(const MediaKernel& k, const BufferSpec& spec,
                   const BufferBinding& b) {
  if (!spec.supported()) {
    throw std::invalid_argument("execute_prepared: kernel '" + k.name() +
                                "' does not support user-owned buffers");
  }
  if (!b.input.empty() && b.input.size() != spec.input_bytes) {
    throw std::invalid_argument(
        "execute_prepared: input buffer for '" + k.name() + "' is " +
        std::to_string(b.input.size()) + " bytes, spec wants " +
        std::to_string(spec.input_bytes));
  }
  if (!b.output.empty() && b.output.size() != spec.output_bytes) {
    throw std::invalid_argument(
        "execute_prepared: output buffer for '" + k.name() + "' is " +
        std::to_string(b.output.size()) + " bytes, spec wants " +
        std::to_string(spec.output_bytes));
  }
}

}  // namespace

KernelRun execute_prepared(const MediaKernel& k, const PreparedProgram& p,
                           sim::Machine* scratch,
                           const BufferBinding* buffers) {
  const bool bound = buffers != nullptr && !buffers->empty();
  BufferSpec spec;
  if (bound) {
    spec = k.buffer_spec();
    check_binding(k, spec, *buffers);
  }

  KernelRun out;
  out.orchestration = p.orchestration;

  std::optional<sim::Machine> local;
  sim::Machine* m;
  if (scratch != nullptr && scratch->memory().size() == kMemBytes) {
    scratch->reset(p.program, p.pc);
    m = scratch;
  } else {
    local.emplace(p.program, kMemBytes, p.pc);
    m = &*local;
  }

  // The Spu/SpuMmio live on this stack frame: a reused scratch machine
  // must never leave pointers to them behind, including on exception
  // unwind (e.g. a max_cycles overrun throwing out of run()).
  struct DetachGuard {
    sim::Machine* m;
    ~DetachGuard() {
      if (m != nullptr) {
        m->set_router(nullptr);
        m->memory().unmap_device();
      }
    }
  } guard{m == scratch ? m : nullptr};

  std::optional<core::Spu> spu;
  std::optional<core::SpuMmio> mmio;
  if (p.use_spu) {
    spu.emplace(p.cfg, p.num_contexts);
    mmio.emplace(&*spu);
    m->memory().map_device(p.mmio_base, core::SpuMmio::kWindowSize, &*mmio);
    m->set_router(&*spu);
  }
  k.init_memory(m->memory());
  const bool bound_input = bound && !buffers->input.empty();
  if (bound_input) k.bind_input(m->memory(), buffers->input);
  out.stats = m->run();
  out.verified = bound_input ? k.verify_bound(m->memory(), buffers->input)
                             : k.verify(m->memory());
  // Copy back only verified outputs: a failed verification must never
  // clobber the caller's buffer with divergent data.
  if (bound && out.verified && !buffers->output.empty()) {
    const auto bytes = m->memory().read_vector<uint8_t>(spec.output_addr,
                                                        spec.output_bytes);
    std::copy(bytes.begin(), bytes.end(), buffers->output.begin());
  }
  if (spu) out.spu = spu->run_stats();
  return out;
}

void lower_native(const MediaKernel& k, PreparedProgram& p) {
  backend::LoweringSpec spec;
  spec.cfg = p.cfg;
  spec.use_spu = p.use_spu;
  spec.num_contexts = p.num_contexts;
  spec.mmio_base = p.mmio_base;
  spec.mem_bytes = kMemBytes;
  spec.init = [&k](sim::Memory& mem) { k.init_memory(mem); };
  const BufferSpec bs = k.buffer_spec();
  if (bs.supported()) {
    // Only the primary input window varies per execution; auxiliary
    // tables keep their deterministic synthetic values (kernel.h).
    spec.data_regions.push_back({bs.input_addr, bs.input_bytes});
  }
  p.native = std::make_shared<const backend::NativeTrace>(
      backend::lower(*p.program, spec));
}

KernelRun execute_native(const MediaKernel& k, const PreparedProgram& p,
                         sim::Memory* scratch, const BufferBinding* buffers) {
  if (p.native == nullptr) {
    throw std::logic_error("execute_native: prepared program for '" +
                           k.name() + "' carries no native trace; prepare "
                           "with lower_native first");
  }
  const bool bound = buffers != nullptr && !buffers->empty();
  BufferSpec spec;
  if (bound) {
    spec = k.buffer_spec();
    check_binding(k, spec, *buffers);
  }

  KernelRun out;
  out.orchestration = p.orchestration;

  std::optional<sim::Memory> local;
  sim::Memory* mem;
  if (scratch != nullptr && scratch->size() == kMemBytes) {
    scratch->clear();
    scratch->unmap_device();
    mem = scratch;
  } else {
    local.emplace(kMemBytes);
    mem = &*local;
  }

  k.init_memory(*mem);
  const bool bound_input = bound && !buffers->input.empty();
  if (bound_input) k.bind_input(*mem, buffers->input);

  backend::NativeState st;
  st.mem = mem;
  backend::run_trace(*p.native, st);

  // No cycle model ran; report the dynamic instruction count the trace
  // replaced so throughput accounting stays meaningful, and mark the cycle
  // stats absent so mixed-backend aggregation cannot absorb the zero.
  out.stats.instructions = p.native->source_instructions;
  out.stats.has_cycles = false;
  out.verified = bound_input ? k.verify_bound(*mem, buffers->input)
                             : k.verify(*mem);
  if (bound && out.verified && !buffers->output.empty()) {
    const auto bytes =
        mem->read_vector<uint8_t>(spec.output_addr, spec.output_bytes);
    std::copy(bytes.begin(), bytes.end(), buffers->output.begin());
  }
  return out;
}

KernelRun run_baseline(const MediaKernel& k, int repeats,
                       sim::PipelineConfig pc) {
  return execute_prepared(k, prepare_baseline(k, repeats, pc));
}

KernelRun run_spu(const MediaKernel& k, int repeats,
                  const core::CrossbarConfig& cfg, SpuMode mode,
                  sim::PipelineConfig pc) {
  return execute_prepared(k, prepare_spu(k, repeats, cfg, mode, pc));
}

}  // namespace subword::kernels
