#include "kernels/motion_est.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_sad.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedCur = 0x53414443;   // current block pixels
constexpr uint64_t kSeedCand = 0x53414452;  // candidate window pixels

// Register plan:
//   R0 repeat counter  R1 candidate counter  R5 row counter / result scratch
//   R2 current-block pointer  R4 candidate pointer  R3 output pointer
//   MM7 zero (unpack operand), accumulator in MM6 (baseline) / MM3 (SPU —
//   the routed reduction must source it from the configuration-D window).

// Baseline absolute-difference + widen + accumulate for one 8-pixel group.
void emit_sad_group_mmx(Assembler& a, int32_t disp) {
  a.movq_load(MM0, R2, disp);  // a: current
  a.movq_load(MM1, R4, disp);  // b: candidate
  a.movq(MM2, MM0);            // copy keeps `a` alive for the second order
  a.psubusb(MM2, MM1);         // max(a-b, 0)
  a.psubusb(MM1, MM0);         // max(b-a, 0)
  a.por(MM2, MM1);             // |a-b|
  a.movq(MM0, MM2);            // copy feeds the high-half widen
  a.punpcklbw(MM2, MM7);       // low 4 bytes -> words
  a.paddusw(MM6, MM2);
  a.punpckhbw(MM0, MM7);       // high 4 bytes -> words
  a.paddusw(MM6, MM0);
}

// SPU form of the same group: both copies are absorbed by operand routes.
void emit_sad_group_spu(Assembler& a, int32_t disp) {
  a.movq_load(MM0, R2, disp);
  a.movq_load(MM1, R4, disp);
  a.psubusb(MM2, MM1);   // routed: minuend gathered from MM0
  a.psubusb(MM1, MM0);
  a.por(MM2, MM1);
  a.punpcklbw(MM0, MM7); // routed: source gathered from MM2
  a.paddusw(MM3, MM0);
  a.punpckhbw(MM2, MM7);
  a.paddusw(MM3, MM2);
}

}  // namespace

std::string MotionEstKernel::name() const { return "Motion Estimation"; }

std::string MotionEstKernel::description() const {
  return "16x16 SAD, 16 Candidate blocks";
}

isa::Program MotionEstKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R1, kCandidates);
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.pxor(MM7, MM7);
  a.label("cand");
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.pxor(MM6, MM6);
  // Two rows per iteration: the 8-trip loop stays within the local-history
  // predictor's period, as the paper's media loops do.
  a.li(R5, kBlockDim / 2);
  a.label("rows");
  emit_sad_group_mmx(a, 0);
  emit_sad_group_mmx(a, 8);
  emit_sad_group_mmx(a, 16);
  emit_sad_group_mmx(a, 24);
  a.saddi(R2, 2 * kBlockDim);
  a.saddi(R4, 2 * kBlockDim);
  a.loopnz(R5, "rows");
  // Horizontal reduction of the four word lanes: shift-align copies, the
  // permutation/shift cascade the SPU variant routes away.
  a.movq(MM5, MM6);
  a.psrlq(MM5, 32);
  a.paddusw(MM6, MM5);
  a.movq(MM5, MM6);
  a.psrlq(MM5, 16);
  a.paddusw(MM6, MM5);
  a.movd_from_mmx(R5, MM6);
  a.st16(R3, 0, R5);
  a.saddi(R3, 2);
  a.loopnz(R1, "cand");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> MotionEstKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  // Context 0: the row loop. One state per body instruction; the routed
  // states gather whole word-aligned registers, realizable under
  // configuration D (sources MM0/MM2 only).
  core::MicroBuilder mb0(cfg);
  const auto whole_reg = [](int r) {
    return gather_words({{{r, 0}, {r, 1}, {r, 2}, {r, 3}}});
  };
  for (int group = 0; group < 4; ++group) {
    mb0.add_straight_state();  // movq_load MM0
    mb0.add_straight_state();  // movq_load MM1
    {
      core::Route r;  // psubusb MM2, MM1 : minuend <- MM0
      r.set_operand_both_pipes(0, whole_reg(MM0));
      mb0.add_state(r);
    }
    mb0.add_straight_state();  // psubusb MM1, MM0
    mb0.add_straight_state();  // por MM2, MM1
    {
      core::Route r;  // punpcklbw MM0, MM7 : source <- MM2 (|a-b|)
      r.set_operand_both_pipes(0, whole_reg(MM2));
      mb0.add_state(r);
    }
    mb0.add_straight_state();  // paddusw MM3, MM0
    mb0.add_straight_state();  // punpckhbw MM2, MM7
    mb0.add_straight_state();  // paddusw MM3, MM2
  }
  for (int i = 0; i < 3; ++i) mb0.add_straight_state();  // addi, addi, loopnz
  mb0.seal_simple_loop(kBlockDim / 2);

  // Context 1: the per-candidate reduction, one pass. The two PADDUSWs
  // carry fully routed operand pairs: [s0+s1, s2+s3] then lane 0 + lane 1.
  core::MicroBuilder mb1(cfg);
  {
    core::Route r;
    r.set_operand_both_pipes(
        0, gather_words({{{MM3, 0}, {MM3, 2}, {MM3, 0}, {MM3, 0}}}));
    r.set_operand_both_pipes(
        1, gather_words({{{MM3, 1}, {MM3, 3}, {MM3, 1}, {MM3, 1}}}));
    mb1.add_state(r);
  }
  {
    core::Route r;
    r.set_operand_both_pipes(
        0, gather_words({{{MM0, 0}, {MM0, 0}, {MM0, 0}, {MM0, 0}}}));
    r.set_operand_both_pipes(
        1, gather_words({{{MM0, 1}, {MM0, 1}, {MM0, 1}, {MM0, 1}}}));
    mb1.add_state(r);
  }
  for (int i = 0; i < 4; ++i) mb1.add_straight_state();  // movd, st16, addi, loopnz
  mb1.seal_simple_loop(1);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb0}, {1, &mb1}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R1, kCandidates);
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.pxor(MM7, MM7);
  a.label("cand");
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.pxor(MM3, MM3);
  a.li(R5, kBlockDim / 2);
  core::emit_spu_go(a, 0);
  a.label("rows");
  emit_sad_group_spu(a, 0);
  emit_sad_group_spu(a, 8);
  emit_sad_group_spu(a, 16);
  emit_sad_group_spu(a, 24);
  a.saddi(R2, 2 * kBlockDim);
  a.saddi(R4, 2 * kBlockDim);
  a.loopnz(R5, "rows");
  core::emit_spu_go(a, 1);
  a.paddusw(MM0, MM3);  // routed: [s0+s1, s2+s3, ., .]
  a.paddusw(MM1, MM0);  // routed: lane 0 = total SAD
  a.movd_from_mmx(R5, MM1);
  a.st16(R3, 0, R5);
  a.saddi(R3, 2);
  a.loopnz(R1, "cand");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void MotionEstKernel::init_memory(sim::Memory& mem) const {
  const auto cur = ref::make_bytes(kBlockBytes, kSeedCur);
  mem.write_span<uint8_t>(kInputAddr, cur);
  mem.write_span<uint8_t>(kCoeffAddr, candidate_blocks());
}

bool MotionEstKernel::verify(const sim::Memory& mem) const {
  const auto cur = ref::make_bytes(kBlockBytes, kSeedCur);
  const auto want =
      ref::sad_blocks(cur, candidate_blocks(), kBlockBytes, kCandidates);
  return compare_i16(mem, kOutputAddr, want, name()) == 0;
}

BufferSpec MotionEstKernel::buffer_spec() const {
  BufferSpec s;
  s.input_bytes = kBlockBytes;
  s.output_bytes = kCandidates * 2;
  // A frame of current blocks scores block-by-block against the same
  // candidate list: tiles are independent whole blocks (no halo, and no
  // finer unit — a fractional 16x16 block is meaningless, so the frame
  // must be a whole number of blocks).
  s.tileable = true;
  return s;
}

bool MotionEstKernel::verify_bound(const sim::Memory& mem,
                                   std::span<const uint8_t> input) const {
  const auto want =
      ref::sad_blocks(input, candidate_blocks(), kBlockBytes, kCandidates);
  return compare_i16(mem, kOutputAddr, want, name() + "/bound",
                     /*log_mismatches=*/false) == 0;
}

std::vector<uint8_t> MotionEstKernel::candidate_blocks() {
  return ref::make_bytes(static_cast<size_t>(kCandidates) * kBlockBytes,
                         kSeedCand);
}

}  // namespace subword::kernels
