#include "kernels/fir.h"

#include <stdexcept>

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_fir.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedX = 0x46495258;   // input samples
constexpr uint64_t kSeedC = 0x46495243;   // coefficients

// Register plan:
//   R0 repeat counter  R1 sample-pair counter  R2 x pointer  R3 y pointer
//   FIR12: coefficient quadwords preloaded in MM3..MM5 (register-resident,
//   the IPP way); FIR22 streams them from memory through MM3.
constexpr uint64_t kXBase = kInputAddr + FirKernel::kHistoryBytes;

// The two accumulators: MM0 for output n, MM1 for output n+1.
// Memory layout of reversed coefficients: group g holds
// [c(4g+3), c(4g+2), c(4g+1), c(4g)] so that a PMADDWD against the x
// quadword at byte 2(n-4g-3) contributes taps 4g..4g+3 of output n.
void emit_macs_preloaded(Assembler& a, int groups) {
  // Latency-scheduled: all three multiplies issue before the dependent
  // adds consume them (temps MM2/MM6 resp. MM2/MM7).
  (void)groups;  // preloaded form exists for the 3-group FIR12 only
  a.movq_load(MM0, R2, -6);
  a.pmaddwd(MM0, MM3);
  a.movq_load(MM2, R2, -14);
  a.pmaddwd(MM2, MM4);
  a.movq_load(MM6, R2, -22);
  a.pmaddwd(MM6, MM5);
  a.paddd(MM0, MM2);
  a.paddd(MM0, MM6);
  a.movq_load(MM1, R2, -4);
  a.pmaddwd(MM1, MM3);
  a.movq_load(MM2, R2, -12);
  a.pmaddwd(MM2, MM4);
  a.movq_load(MM7, R2, -20);
  a.pmaddwd(MM7, MM5);
  a.paddd(MM1, MM2);
  a.paddd(MM1, MM7);
}

// Baseline FIR12 reduce: both outputs' pair-sums are merged with a single
// unpack cascade — [acc0.d0, acc1.d0] + [acc0.d1, acc1.d1] — the compact
// reduction IPP's hand-tuned FIR uses. This keeps the baseline's
// alignment overhead modest, which is why the paper's FIR gains from the
// SPU are small compared to the matrix kernels.
void emit_fir12_reduce(Assembler& a) {
  a.movq(MM6, MM0);
  a.punpckldq(MM6, MM1);  // [s00, s10]
  a.punpckhdq(MM0, MM1);  // [s01, s11]  (acc0 is dead afterwards)
  a.paddd(MM6, MM0);      // [r0, r1]
  a.psrad(MM6, FirKernel::kShift);
  a.packssdw(MM6, MM6);
  a.movd_store(R3, 0, MM6);
}

void emit_macs_streaming(Assembler& a, int groups) {
  for (int out = 0; out < 2; ++out) {
    const uint8_t acc = out == 0 ? MM0 : MM1;
    const int32_t base = out == 0 ? -6 : -4;
    for (int g = 0; g < groups; ++g) {
      a.movq_load(MM3, R4, 8 * g);  // coefficient group from memory
      a.movq_load(MM2, R2, base - 8 * g);
      a.pmaddwd(MM2, MM3);
      if (g == 0) {
        a.movq(acc, MM2);  // note: a permutation the SPU also absorbs
      } else {
        a.paddd(acc, MM2);
      }
    }
  }
}

}  // namespace

FirKernel::FirKernel(int taps) : taps_(taps) {
  if (taps != 12 && taps != 22) {
    throw std::invalid_argument("FirKernel: supported tap counts are 12/22");
  }
}

std::string FirKernel::name() const {
  return "FIR" + std::to_string(taps_);
}

std::string FirKernel::description() const {
  return std::to_string(taps_) + " TAP, 150 Sample blocks";
}

std::vector<int16_t> FirKernel::coeffs() const {
  return ref::make_coeffs(static_cast<size_t>(taps_), kSeedC + taps_);
}

isa::Program FirKernel::build_mmx(int repeats) const {
  const bool preload = taps_ == 12;
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  if (preload) {
    for (int g = 0; g < groups(); ++g) {
      a.movq_load(static_cast<uint8_t>(MM3 + g), R4, 8 * g);
    }
  }
  a.li(R2, static_cast<int32_t>(kXBase));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.li(R1, kSamples / 2);
  a.label("pair");
  if (preload) {
    emit_macs_preloaded(a, groups());
    emit_fir12_reduce(a);
  } else {
    emit_macs_streaming(a, groups());
    // Horizontal reductions: acc.d0 += acc.d1 (Figure-1 style sum of
    // products), then pair the two results, scale and saturate.
    a.movq(MM6, MM0);
    a.punpckhdq(MM6, MM0);  // [acc0.d1, acc0.d1]
    a.paddd(MM0, MM6);
    a.movq(MM7, MM1);
    a.punpckhdq(MM7, MM1);
    a.paddd(MM1, MM7);
    a.movq(MM6, MM0);
    a.punpckldq(MM6, MM1);  // [r0, r1]
    a.psrad(MM6, kShift);
    a.packssdw(MM6, MM6);
    a.movd_store(R3, 0, MM6);
  }
  a.saddi(R2, 4);
  a.saddi(R3, 4);
  a.loopnz(R1, "pair");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> FirKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  const bool preload = taps_ == 12;

  core::MicroBuilder mb(cfg);
  // States mirror the loop body instruction-for-instruction.
  const int mac_states = preload ? 16 : 2 * 4 * groups();
  for (int i = 0; i < mac_states; ++i) mb.add_straight_state();
  if (preload) {
    // Single routed reduce: paddd gathers [acc0.d0, acc1.d0] against
    // [acc0.d1, acc1.d1], replacing the whole unpack cascade.
    core::Route r;
    r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM1, 0}}}));
    r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM1, 1}}}));
    mb.add_state(r);
    // psrad, pack, store, 2x saddi, loopnz
    for (int i = 0; i < 6; ++i) mb.add_straight_state();
  } else {
    {
      core::Route r;  // paddd MM0, MM6 : b <- [acc0.d1, acc0.d1]
      r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM0, 1}}}));
      mb.add_state(r);
    }
    {
      core::Route r;  // paddd MM1, MM7 : b <- [acc1.d1, acc1.d1]
      r.set_operand_both_pipes(1, gather_dwords({{{MM1, 1}, {MM1, 1}}}));
      mb.add_state(r);
    }
    {
      core::Route r;  // psrad MM6 : a <- [r0, r1]
      r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM1, 0}}}));
      mb.add_state(r);
    }
    for (int i = 0; i < 5; ++i) mb.add_straight_state();  // pack..loopnz
  }
  mb.seal_simple_loop(kSamples / 2);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  if (preload) {
    for (int g = 0; g < groups(); ++g) {
      a.movq_load(static_cast<uint8_t>(MM3 + g), R4, 8 * g);
    }
  }
  a.li(R2, static_cast<int32_t>(kXBase));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
  a.li(R1, kSamples / 2);
  core::emit_spu_go(a, 0);
  a.label("pair");
  if (preload) {
    emit_macs_preloaded(a, groups());
    a.paddd(MM6, MM7);    // routed: [r0, r1] in one gather-add
    a.psrad(MM6, kShift);
  } else {
    emit_macs_streaming(a, groups());
    a.paddd(MM0, MM6);    // routed: acc0.d0 += acc0.d1
    a.paddd(MM1, MM7);    // routed: acc1.d0 += acc1.d1
    a.psrad(MM6, kShift);  // routed: MM6 = [r0, r1] >> shift
  }
  a.packssdw(MM6, MM6);
  a.movd_store(R3, 0, MM6);
  a.saddi(R2, 4);
  a.saddi(R3, 4);
  a.loopnz(R1, "pair");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void FirKernel::init_memory(sim::Memory& mem) const {
  const auto x = ref::make_samples(kSamples, kSeedX + taps_);
  mem.write_span<int16_t>(kXBase, x);
  // Reversed coefficient quadwords, zero-padded to a multiple of 4 taps.
  const auto c = coeffs();
  std::vector<int16_t> rev(static_cast<size_t>(groups()) * 4, 0);
  for (int k = 0; k < taps_; ++k) {
    const int g = k / 4;
    const int lane = 3 - (k % 4);
    rev[static_cast<size_t>(g * 4 + lane)] = c[static_cast<size_t>(k)];
  }
  mem.write_span<int16_t>(kCoeffAddr, rev);
}

bool FirKernel::verify(const sim::Memory& mem) const {
  const auto x = ref::make_samples(kSamples, kSeedX + taps_);
  const auto c = coeffs();
  const auto want = ref::fir(x, c, kShift);
  return compare_i16(mem, kOutputAddr, want, name()) == 0;
}

BufferSpec FirKernel::buffer_spec() const {
  // Primary input is the sample block after the zeroed history window; the
  // coefficient table stays synthetic.
  BufferSpec s;
  s.input_bytes = kSamples * 2;
  s.output_bytes = kSamples * 2;
  s.input_addr = kXBase;
  // Block-FIR semantics: every tile is an independent 150-sample block
  // starting from the zeroed history window, so a long signal tiles into
  // consecutive blocks with no halo. Partial tails cut at any sample
  // (2 bytes in -> 2 bytes out); the zero padding matches the kernel's
  // own zero-history convention, and a sample's output depends only on
  // samples at or before it, so the valid prefix is unaffected.
  s.tileable = true;
  s.tile_unit_input_bytes = 2;
  s.tile_unit_output_bytes = 2;
  return s;
}

bool FirKernel::verify_bound(const sim::Memory& mem,
                             std::span<const uint8_t> input) const {
  const auto x = bytes_as_i16(input);
  const auto want = ref::fir(x, coeffs(), kShift);
  return compare_i16(mem, kOutputAddr, want, name() + "/bound",
                     /*log_mismatches=*/false) == 0;
}

}  // namespace subword::kernels
