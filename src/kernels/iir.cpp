#include "kernels/iir.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_iir.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedX = 0x49495258;
constexpr uint64_t kSeedB = 0x49495242;
constexpr uint64_t kSeedA = 0x49495241;

constexpr uint64_t kXBase = kInputAddr + IirKernel::kHistoryBytes;
constexpr uint64_t kYBase = kOutputAddr + IirKernel::kHistoryBytes;

// Register plan:
//   R0 repeat  R1 sample counter  R2 x ptr  R3 y ptr
//   R4 accumulator  R5 multiply temp  R6..R10 feedback coeffs a1..a5
//   MM4, MM5 feed-forward coefficient quadwords (preloaded)

// Emits the common per-sample body; `spu` selects the routed variant.
void emit_sample_body(Assembler& a, bool spu) {
  // Feed-forward: two PMADDWD groups then horizontal reduction.
  a.movq_load(MM0, R2, -6);
  a.pmaddwd(MM0, MM4);
  a.movq_load(MM2, R2, -14);
  a.pmaddwd(MM2, MM5);
  a.paddd(MM0, MM2);
  if (spu) {
    a.paddd(MM0, MM6);  // routed: b <- [acc.d1, acc.d1]
  } else {
    a.movq(MM6, MM0);
    a.punpckhdq(MM6, MM0);
    a.paddd(MM0, MM6);
  }
  a.movd_from_mmx(R4, MM0);
  // MOVD zero-extends; sign-extend the 32-bit feed-forward sum.
  a.sshli(R4, 32);
  a.ssrai(R4, 32);
  // Feedback recurrence on the scalar pipe: five dependent long-latency
  // multiplies (y history read back from just-written output memory).
  for (int k = 1; k <= IirKernel::kFbTaps; ++k) {
    a.ld16(R5, R3, -2 * k);
    a.smul(R5, static_cast<uint8_t>(R6 + (k - 1)));
    a.ssub(R4, R5);
  }
  a.ssrai(R4, IirKernel::kShift);
  // Saturate through MMX (PACKSSDW is the only 16-bit saturator).
  a.movd_to_mmx(MM7, R4);
  a.packssdw(MM7, MM7);
  a.movd_from_mmx(R4, MM7);
  a.st16(R3, 0, R4);
  a.saddi(R2, 2);
  a.saddi(R3, 2);
}

}  // namespace

std::vector<int16_t> IirKernel::ff_coeffs() const {
  return ref::make_coeffs(kFfTaps, kSeedB);
}

std::vector<int16_t> IirKernel::fb_coeffs() const {
  // Small feedback coefficients keep the fixed-point filter stable.
  auto c = ref::make_coeffs(kFbTaps, kSeedA);
  for (auto& v : c) v = static_cast<int16_t>(v / 8);
  return c;
}

isa::Program IirKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.movq_load(MM4, R4, 0);
  a.movq_load(MM5, R4, 8);
  for (int k = 0; k < kFbTaps; ++k) {
    a.ld16(static_cast<uint8_t>(R6 + k), R4, 16 + 2 * k);
  }
  a.li(R2, static_cast<int32_t>(kXBase));
  a.li(R3, static_cast<int32_t>(kYBase));
  a.li(R1, kSamples);
  a.label("sample");
  emit_sample_body(a, /*spu=*/false);
  a.loopnz(R1, "sample");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> IirKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  core::MicroBuilder mb(cfg);
  for (int i = 0; i < 5; ++i) mb.add_straight_state();  // ff MACs
  {
    core::Route r;  // paddd MM0, MM6 : b <- [acc.d1, acc.d1]
    r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM0, 1}}}));
    mb.add_state(r);
  }
  // movd_from + 2 sign-extend + 5x3 feedback + ssrai + 3 saturate + st16
  // + 2 saddi + loopnz, all straight.
  for (int i = 0; i < 3 + 15 + 1 + 3 + 1 + 2 + 1; ++i) {
    mb.add_straight_state();
  }
  mb.seal_simple_loop(kSamples);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.movq_load(MM4, R4, 0);
  a.movq_load(MM5, R4, 8);
  for (int k = 0; k < kFbTaps; ++k) {
    a.ld16(static_cast<uint8_t>(R6 + k), R4, 16 + 2 * k);
  }
  a.li(R2, static_cast<int32_t>(kXBase));
  a.li(R3, static_cast<int32_t>(kYBase));
  a.li(R1, kSamples);
  core::emit_spu_go(a, 0);
  a.label("sample");
  emit_sample_body(a, /*spu=*/true);
  a.loopnz(R1, "sample");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void IirKernel::init_memory(sim::Memory& mem) const {
  const auto x = ref::make_samples(kSamples, kSeedX, 8000);
  mem.write_span<int16_t>(kXBase, x);
  // Reversed padded feed-forward quadwords: group 0 = [b3,b2,b1,b0],
  // group 1 = [0,0,0,b4]; then the feedback taps a1..a5.
  const auto b = ff_coeffs();
  std::vector<int16_t> packed(8, 0);
  for (int k = 0; k < kFfTaps; ++k) {
    const int g = k / 4;
    const int lane = 3 - (k % 4);
    packed[static_cast<size_t>(g * 4 + lane)] = b[static_cast<size_t>(k)];
  }
  mem.write_span<int16_t>(kCoeffAddr, packed);
  mem.write_span<int16_t>(kCoeffAddr + 16, fb_coeffs());
}

bool IirKernel::verify(const sim::Memory& mem) const {
  const auto x = ref::make_samples(kSamples, kSeedX, 8000);
  const auto want = ref::iir(x, ff_coeffs(), fb_coeffs(), kShift);
  return compare_i16(mem, kYBase, want, name()) == 0;
}

}  // namespace subword::kernels
