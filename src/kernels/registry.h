// registry.h — the kernel registry: the paper's Figure-9 benchmark suite
// plus the extended media workloads added on top of it.
//
// Every consumer (runner, batch engine, tests, benches, the README table)
// discovers kernels through this registry — adding a kernel here is the
// single registration step (see docs/ADDING_A_KERNEL.md).
#pragma once

#include <memory>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

// The paper's eight kernels in Figure 9 order — FIR12, FIR22, IIR,
// FFT1024, FFT128, DCT, Matrix Multiply, Matrix Transpose — followed by
// the extended suite: Motion Estimation (SAD), Color Convert (RGB->YCbCr),
// 2D Convolution.
[[nodiscard]] std::vector<std::unique_ptr<MediaKernel>> all_kernels();

// Number of leading entries of all_kernels() that reproduce the paper's
// Figure 9 (the paper-parity benches iterate only these).
inline constexpr size_t kPaperSuiteSize = 8;

// Lookup by name (throws std::out_of_range when unknown).
[[nodiscard]] std::unique_ptr<MediaKernel> make_kernel(
    const std::string& name);

}  // namespace subword::kernels
