// registry.h — the kernel registry: the paper's Figure-9 benchmark suite
// plus the extended media workloads added on top of it.
//
// Every consumer (runner, batch engine, the api:: facade, tests, benches,
// the README table) discovers kernels through this registry — adding a
// kernel here is the single registration step (see docs/ADDING_A_KERNEL.md).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

// The paper's eight kernels in Figure 9 order — FIR12, FIR22, IIR,
// FFT1024, FFT128, DCT, Matrix Multiply, Matrix Transpose — followed by
// the extended suite: Motion Estimation (SAD), Color Convert (RGB->YCbCr),
// 2D Convolution.
[[nodiscard]] std::vector<std::unique_ptr<MediaKernel>> all_kernels();

// Number of leading entries of all_kernels() that reproduce the paper's
// Figure 9 (the paper-parity benches iterate only these).
inline constexpr size_t kPaperSuiteSize = 8;

// Static description of one registered kernel — everything the api::
// facade's Request builder validates against without constructing programs
// per request: identity, suite membership, whether a hand-written SPU
// variant exists (SpuMode::Manual is only buildable then), and the
// user-owned-buffer contract.
struct KernelInfo {
  std::string name;
  std::string description;
  bool paper_suite = false;     // one of the Figure-9 rows
  bool has_manual_spu = false;  // build_spu returns a program
  // Executable on ExecBackend::kNativeSwar: probed at registry init by
  // actually lowering the kernel's baseline, manual (where realizable) and
  // auto-orchestrated programs under configs A and D. False means the
  // lowering proof failed somewhere (data-dependent control flow) and the
  // facade reports kBackendUnsupported for native requests.
  bool native_backend = false;
  BufferSpec buffers;           // zero sizes: synthetic workload only
};

// Descriptors for every registered kernel, registry order. Built once per
// process (probing each kernel's manual variant) and shared thereafter;
// safe to call from any thread.
[[nodiscard]] const std::vector<KernelInfo>& kernel_infos();

// Case-insensitive lookup ("fir12" finds FIR12); nullptr when unknown.
[[nodiscard]] const KernelInfo* find_kernel_info(std::string_view name);

// Lookup by exact registry name (throws std::out_of_range when unknown).
[[nodiscard]] std::unique_ptr<MediaKernel> make_kernel(
    const std::string& name);

}  // namespace subword::kernels
