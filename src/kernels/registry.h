// registry.h — the kernel registry: the paper's Figure-9 benchmark suite
// plus the extended media workloads added on top of it.
//
// Every consumer (runner, batch engine, the api:: facade, tests, benches,
// the README table) discovers kernels through this registry — adding a
// kernel here is the single registration step (see docs/ADDING_A_KERNEL.md).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/crossbar.h"
#include "kernels/kernel.h"
#include "kernels/runner.h"

namespace subword::kernels {

// The paper's eight kernels in Figure 9 order — FIR12, FIR22, IIR,
// FFT1024, FFT128, DCT, Matrix Multiply, Matrix Transpose — followed by
// the extended suite: Motion Estimation (SAD), Color Convert (RGB->YCbCr),
// 2D Convolution.
[[nodiscard]] std::vector<std::unique_ptr<MediaKernel>> all_kernels();

// Number of leading entries of all_kernels() that reproduce the paper's
// Figure 9 (the paper-parity benches iterate only these).
inline constexpr size_t kPaperSuiteSize = 8;

// Static description of one registered kernel — everything the api::
// facade's Request builder validates against without constructing programs
// per request: identity, suite membership, whether a hand-written SPU
// variant exists (SpuMode::Manual is only buildable then), and the
// user-owned-buffer contract.
//
// Capability probes (manual variant, native-backend lowerability) are
// expensive — they build programs and, for the native proofs, run the
// orchestrator — so they are *lazy*: the accessor methods below probe on
// first call per kernel and memoize the answer process-wide. Enumerating
// the registry (kernel_infos(), Session construction, `kernel_table
// --names`) therefore costs no orchestrator runs; only kernels whose
// capabilities are actually consulted ever pay for a probe. KernelInfo is
// freely copyable — copies share the registry-side memo table.
struct KernelInfo {
  std::string name;
  std::string description;
  bool paper_suite = false;     // one of the Figure-9 rows
  BufferSpec buffers;           // zero sizes: synthetic workload only
  // Position in all_kernels() order — the handle into the lazy memo table.
  size_t registry_index = 0;

  // build_spu returns a program under at least one registered config.
  // Lazy: probes every config on first call, memoized thereafter.
  [[nodiscard]] bool has_manual_spu() const;

  // Executable on ExecBackend::kNativeSwar: the kernel's baseline, manual
  // (where realizable) and auto-orchestrated programs under configs A and D
  // all pass the lowering proof. False means the proof failed somewhere
  // (data-dependent control flow) and the facade reports
  // kBackendUnsupported for native requests. Lazy + memoized; the probe
  // really lowers, so the flag can never drift from backend reality.
  [[nodiscard]] bool native_backend() const;

  // Fine-grained native support for one concrete preparation shape: can
  // (use_spu, mode, cfg) at repeats=1 be lowered onto the native backend?
  // This is what Request::build() consults so a native request whose exact
  // knob combination the lowering would reject fails at build time (typed
  // kBackendUnsupported naming kernel and config) instead of surfacing
  // from deep inside prepare. Lazy + memoized per combination.
  [[nodiscard]] bool native_supported(bool use_spu, SpuMode mode,
                                      const core::CrossbarConfig& cfg) const;
};

// Descriptors for every registered kernel, registry order. Built once per
// process and shared thereafter; safe to call from any thread. Cheap:
// capability probes are deferred to the KernelInfo accessors.
[[nodiscard]] const std::vector<KernelInfo>& kernel_infos();

// Case-insensitive lookup ("fir12" finds FIR12); nullptr when unknown.
[[nodiscard]] const KernelInfo* find_kernel_info(std::string_view name);

// Lookup by exact registry name (throws std::out_of_range when unknown).
[[nodiscard]] std::unique_ptr<MediaKernel> make_kernel(
    const std::string& name);

}  // namespace subword::kernels
