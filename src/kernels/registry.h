// registry.h — the paper's Figure-9 benchmark suite.
#pragma once

#include <memory>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

// All eight kernels in the paper's Figure 9 order:
// FIR12, FIR22, IIR, FFT1024, FFT128, DCT, Matrix Multiply, Matrix
// Transpose.
[[nodiscard]] std::vector<std::unique_ptr<MediaKernel>> all_kernels();

// Lookup by name (throws std::out_of_range when unknown).
[[nodiscard]] std::unique_ptr<MediaKernel> make_kernel(
    const std::string& name);

}  // namespace subword::kernels
