// fir.h — block FIR filter (paper Table 2: "12 TAP, 150 Sample blocks" and
// "22 TAP, 150 Sample blocks").
//
// Baseline: two outputs per iteration; each output accumulates tap pairs
// with PMADDWD against reversed coefficient quadwords (the IPP trick of
// keeping coefficient copies resident in registers — FIR12 holds all three
// coefficient quadwords in MM3..MM5, trading register pressure for
// permutations, exactly the effect §5.2.2 describes). The remaining
// permutations are the horizontal sum-of-pairs reductions and the result
// pairing before PACKSSDW.
//
// SPU variant: the reductions become single PADDDs with crossbar-routed
// operands ([acc.d1] aligned under [acc.d0]) and the result pairing becomes
// a routed PSRAD — six permutations per iteration disappear.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

class FirKernel final : public MediaKernel {
 public:
  explicit FirKernel(int taps);

  static constexpr int kSamples = 150;
  static constexpr int kHistoryBytes = 64;  // zero history before the block
  static constexpr int kShift = 15;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
  [[nodiscard]] BufferSpec buffer_spec() const override;
  [[nodiscard]] bool verify_bound(const sim::Memory& mem,
                                  std::span<const uint8_t> input)
      const override;

  [[nodiscard]] int taps() const { return taps_; }

 private:
  [[nodiscard]] int groups() const { return (taps_ + 3) / 4; }
  [[nodiscard]] std::vector<int16_t> coeffs() const;

  int taps_;
};

}  // namespace subword::kernels
