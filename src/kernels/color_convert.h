// color_convert.h — RGB -> YCbCr 4:4:4 color-space conversion, interleaved
// input to planar output (the IPP ippiRGBToYCbCr-style routine).
//
// Baseline: the three-channel deinterleave is the whole story. Pulling
// R/G/B vectors for four pixels out of three interleaved quadwords costs a
// 24-instruction unpack/shift/copy cascade (17 of them permutation class)
// per iteration — stride-3 data is the worst case for MMX's power-of-two
// unpack tree, exactly the "data reorganization dominates" premise of the
// paper. The arithmetic itself (three dot products against broadcast
// coefficient quadwords) has no permutation work at all.
//
// SPU variant: the entire cascade collapses into three MOVQ gathers whose
// source operands are routed word-by-word from the loaded quadwords
// (MM0..MM2, realizable under configuration D). 24 instructions become 3;
// the arithmetic is unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "kernels/kernel.h"

namespace subword::kernels {

class ColorConvertKernel final : public MediaKernel {
 public:
  static constexpr int kPixels = 256;  // per block, 4 per iteration

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
  // Primary input: interleaved RGB (3*kPixels 16-bit lanes, values 0..255
  // — the bit-exactness contract assumes pixel-range data). Primary
  // output: the Y plane; Cb/Cr stay at kAuxAddr/kAux2Addr.
  [[nodiscard]] BufferSpec buffer_spec() const override;
  [[nodiscard]] bool verify_bound(const sim::Memory& mem,
                                  std::span<const uint8_t> input)
      const override;
};

}  // namespace subword::kernels
