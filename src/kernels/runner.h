// runner.h — executes kernels on the simulated machine, baseline and SPU.
//
// The entry points are split into an expensive *prepare* half (program
// construction and, for SpuMode::Auto, the orchestrator's provenance
// analysis and rewriting) and a cheap *execute* half (simulate the prepared
// program on a fresh or reset Machine). A PreparedProgram is immutable and
// safe to replay concurrently from many threads; src/runtime caches them so
// the prepare cost is paid once per unique configuration — the paper's
// prologue-amortization economy lifted to service level.
//
// Thread-safety and ownership contracts (established in the batch-runtime
// PR, relied on by src/runtime):
//  * prepare_* are pure functions of their arguments: no shared state, so
//    any thread may prepare any kernel concurrently. Registry lookups
//    (kernels/registry.h) construct fresh MediaKernel instances per call
//    and are likewise safe from any thread; a MediaKernel itself is
//    stateless after construction and const-usable concurrently.
//  * PreparedProgram members are written once during prepare and never
//    mutated afterwards. `program` and `orchestration` are
//    shared_ptr<const ...>; for the Auto path `program` aliases into the
//    OrchestrationResult, so the analysis product lives exactly as long
//    as any executor still holds the program — KernelRun::orchestration
//    shares rather than copies it for the same reason.
//  * execute_prepared may be called concurrently for the same
//    PreparedProgram from many threads: it only reads the prepared state.
//    The optional `scratch` Machine is the *caller's* exclusive resource
//    (one per worker thread in the batch engine): Machine::reset is not
//    thread-safe and must never race with run(). execute_prepared
//    guarantees a borrowed scratch machine is returned with its router
//    and device window detached — even on exception unwind — so the next
//    job never sees a dangling Spu pointer.
#pragma once

#include <cstdint>
#include <memory>

#include "core/orchestrator.h"
#include "kernels/kernel.h"
#include "sim/machine.h"

namespace subword::backend {
struct NativeTrace;
}  // namespace subword::backend

namespace subword::kernels {

// Which executor replays a prepared program.
//  * kSimulator: the cycle-level machine in src/sim — full pairing, branch
//    prediction and stall modeling; the only backend that produces cycle
//    statistics.
//  * kNativeSwar: the pre-decoded host-SWAR trace executor in src/backend —
//    bit-identical outputs, no cycle model, one to two orders of magnitude
//    faster. Only available for programs the lowering can prove
//    data-independent (see backend/lowering.h); KernelInfo::native_backend
//    says which registry kernels qualify.
enum class ExecBackend : uint8_t {
  kSimulator,
  kNativeSwar,
};

[[nodiscard]] constexpr const char* to_string(ExecBackend b) {
  return b == ExecBackend::kNativeSwar ? "native" : "simulator";
}

struct KernelRun {
  sim::RunStats stats;
  bool verified = false;
  // Controller-side counters (activations, steps, routed operand fetches).
  core::SpuRunStats spu;
  // Present for the automatic-orchestrator path; shared so cached results
  // can be replayed without copying the analysis product per request.
  std::shared_ptr<const core::OrchestrationResult> orchestration;
};

enum class SpuMode {
  Manual,  // the kernel's hand-written SPU variant (paper methodology)
  Auto,    // orchestrator applied to the baseline program
};

// The immutable product of the prepare half. Shareable across threads: all
// members are const after construction and execution only reads them.
struct PreparedProgram {
  std::shared_ptr<const isa::Program> program;
  // Auto-orchestrated runs keep the full analysis result for reporting.
  std::shared_ptr<const core::OrchestrationResult> orchestration;
  core::CrossbarConfig cfg{};
  sim::PipelineConfig pc{};
  bool use_spu = false;
  int repeats = 1;
  // SPU attachment parameters — the single source of truth for execution,
  // recorded from the same options the program's MMIO prologue was
  // generated against (Auto), or the paper defaults the hand-written
  // variants hardcode (Manual).
  int num_contexts = 8;
  uint64_t mmio_base = core::SpuMmio::kDefaultBase;
  // The native backend's pre-decoded op trace, attached by lower_native
  // for ExecBackend::kNativeSwar preparations (null otherwise). Like the
  // other members it is written once during prepare and immutable
  // thereafter; the orchestration cache keys preparations by backend, so a
  // simulator entry never carries a trace and a native entry always does.
  std::shared_ptr<const backend::NativeTrace> native;
};

// Build the baseline MMX program (no SPU pipeline stage).
[[nodiscard]] PreparedProgram prepare_baseline(const MediaKernel& k,
                                               int repeats,
                                               sim::PipelineConfig pc = {});

// Build the MMX+SPU program. Manual uses the kernel's hand-written variant
// (throws std::logic_error if it has none); Auto runs the orchestrator over
// the baseline program. `opts`, when given, overrides the orchestrator
// options (its config field is forced to `cfg`).
[[nodiscard]] PreparedProgram prepare_spu(
    const MediaKernel& k, int repeats, const core::CrossbarConfig& cfg,
    SpuMode mode = SpuMode::Manual, sim::PipelineConfig pc = {},
    const core::OrchestratorOptions* opts = nullptr);

// Simulate a prepared program: fresh Machine, SPU attached when the
// program expects one, memory initialised and outputs verified. When
// `scratch` is non-null and holds a Machine of the right memory size it is
// reset and reused instead of reallocating (the batch runtime's per-worker
// Machine); otherwise a Machine is constructed per call.
//
// `buffers`, when non-null and non-empty, is the user-owned-buffer path:
// the binding's input bytes replace the kernel's synthetic primary input
// (verification switches to MediaKernel::verify_bound against them) and
// the primary output region is copied back into the binding's output span
// after the run — only if verification succeeded, so a failed run never
// overwrites caller memory. Sizes must match the BufferSpec exactly; throws
// std::invalid_argument otherwise, or if the kernel advertises no spec.
// Buffers are an execute-half concern only — they never affect preparation,
// which is what keeps PreparedPrograms cacheable across requests with
// different data.
[[nodiscard]] KernelRun execute_prepared(const MediaKernel& k,
                                         const PreparedProgram& p,
                                         sim::Machine* scratch = nullptr,
                                         const BufferBinding* buffers =
                                             nullptr);

// Lower `p` onto the native backend and attach the op trace (the second
// half of a kNativeSwar preparation). The kernel supplies the
// deterministic arena initialisation and the caller-data window the
// lowering proof is relative to (see backend/lowering.h). Throws
// backend::LoweringError when the program cannot be proven replayable;
// p is left unchanged then.
void lower_native(const MediaKernel& k, PreparedProgram& p);

// Replay a natively-lowered program (p.native must be set): arena
// initialised and verified exactly as execute_prepared does, but the
// program body runs as the pre-decoded host-SWAR trace — no cycle
// simulation, so the returned stats carry instruction counts only. When
// `scratch` is non-null and sized like the arena it is cleared and reused
// (the batch runtime's per-worker native arena); it is the caller's
// exclusive resource, exactly like execute_prepared's scratch Machine.
[[nodiscard]] KernelRun execute_native(const MediaKernel& k,
                                       const PreparedProgram& p,
                                       sim::Memory* scratch = nullptr,
                                       const BufferBinding* buffers =
                                           nullptr);

// Legacy wrappers (prepare + execute in one call). Kept for tests, benches
// and one-shot tooling; new consumers should go through the api:: facade
// (api/session.h), which routes through the prepare/execute split and the
// orchestration cache.
[[nodiscard]] KernelRun run_baseline(const MediaKernel& k, int repeats,
                                     sim::PipelineConfig pc = {});

// Legacy wrapper: MMX+SPU run, extra pipeline stage enabled, SPU attached,
// MMIO programming charged. Throws if mode==Manual and the kernel has no
// manual variant.
[[nodiscard]] KernelRun run_spu(const MediaKernel& k, int repeats,
                                const core::CrossbarConfig& cfg,
                                SpuMode mode = SpuMode::Manual,
                                sim::PipelineConfig pc = {});

}  // namespace subword::kernels
