// runner.h — executes kernels on the simulated machine, baseline and SPU.
#pragma once

#include "core/orchestrator.h"
#include "kernels/kernel.h"
#include "sim/machine.h"

namespace subword::kernels {

struct KernelRun {
  sim::RunStats stats;
  bool verified = false;
  // Controller-side counters (activations, steps, routed operand fetches).
  core::SpuRunStats spu;
  // Present for the automatic-orchestrator path.
  std::optional<core::OrchestrationResult> orchestration;
};

enum class SpuMode {
  Manual,  // the kernel's hand-written SPU variant (paper methodology)
  Auto,    // orchestrator applied to the baseline program
};

// Baseline MMX run (no SPU pipeline stage).
[[nodiscard]] KernelRun run_baseline(const MediaKernel& k, int repeats,
                                     sim::PipelineConfig pc = {});

// MMX+SPU run: extra pipeline stage enabled, SPU attached, MMIO programming
// charged. Throws if mode==Manual and the kernel has no manual variant.
[[nodiscard]] KernelRun run_spu(const MediaKernel& k, int repeats,
                                const core::CrossbarConfig& cfg,
                                SpuMode mode = SpuMode::Manual,
                                sim::PipelineConfig pc = {});

}  // namespace subword::kernels
