// video_pipeline_ref.h — host-side composition of the scalar references
// for the color -> conv2d -> SAD pipeline: the golden end-to-end answer
// that api::Pipeline's output must match bit-for-bit. Shared by
// examples/video_pipeline.cpp and tests/test_api.cpp so the tile-prefix
// rule and byte reinterpretation live in exactly one place.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "kernels/conv2d.h"
#include "kernels/motion_est.h"
#include "ref/ref_color.h"
#include "ref/ref_conv2d.h"
#include "ref/ref_sad.h"

namespace subword::kernels {

// `rgb` is one interleaved 256-pixel frame (3*256 16-bit lanes, 0..255).
// Returns the 16 SAD scores of ref_color ∘ ref_conv2d ∘ ref_sad.
[[nodiscard]] inline std::vector<int16_t> composed_video_pipeline_ref(
    std::span<const int16_t> rgb) {
  const auto planes = ref::rgb_to_ycbcr(rgb);
  // The conv stage consumes the leading kInW x kInH window of the Y plane
  // — the same prefix rule api::Pipeline applies between stages.
  const std::span<const int16_t> tile(
      planes.y.data(), static_cast<size_t>(Conv2dKernel::kInW) *
                           static_cast<size_t>(Conv2dKernel::kInH));
  const auto filtered =
      ref::conv2d_3x3(tile, Conv2dKernel::kInW, Conv2dKernel::kInH,
                      Conv2dKernel::coefficients(), Conv2dKernel::kOutW,
                      Conv2dKernel::kShift);
  // The SAD stage reads the filtered tile as raw bytes (its current block).
  std::vector<uint8_t> block(filtered.size() * 2);
  std::memcpy(block.data(), filtered.data(), block.size());
  return ref::sad_blocks(block, MotionEstKernel::candidate_blocks(),
                         MotionEstKernel::kBlockBytes,
                         MotionEstKernel::kCandidates);
}

}  // namespace subword::kernels
