#include "kernels/transpose.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_mat.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;  // register names and Assembler in kernel bodies

namespace {

constexpr uint64_t kSeed = 0x7453706f;  // deterministic workload id
constexpr int kBlocks = 4;              // 4x4 grid of 4x4 element blocks

// Register plan (both variants):
//   R0 repeat counter   R1 inner (bj) counter   R9 outer (bi) counter
//   R2 source pointer   R3 destination pointer
void emit_block_addressing_reset(Assembler& a) {
  a.li(R2, static_cast<int32_t>(kInputAddr));
  a.li(R3, static_cast<int32_t>(kOutputAddr));
}

void emit_block_loop_tail(Assembler& a, const std::string& inner_label,
                          const std::string& outer_label) {
  // Inner advance: next block column (source +8 bytes; dest +4 rows).
  a.saddi(R2, 8);
  a.saddi(R3, 4 * TransposeKernel::kRowBytes);
  a.loopnz(R1, inner_label);
  // Outer advance: next block row (source +4 rows -32 already consumed;
  // dest +8 bytes -4*4 rows already consumed).
  a.saddi(R2, 4 * TransposeKernel::kRowBytes - 32);
  a.saddi(R3, 8 - 4 * 4 * TransposeKernel::kRowBytes);
  a.loopnz(R9, outer_label);
}

}  // namespace

isa::Program TransposeKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R9, kBlocks);
  emit_block_addressing_reset(a);
  a.label("bi");
  a.li(R1, kBlocks);
  a.label("bj");
  // Load the 4x4 block: rows r..r+3, one qword each.
  a.movq_load(MM0, R2, 0 * kRowBytes);
  a.movq_load(MM1, R2, 1 * kRowBytes);
  a.movq_load(MM2, R2, 2 * kRowBytes);
  a.movq_load(MM3, R2, 3 * kRowBytes);
  // Figure 3: two levels of unpack merges (destructive, so copies first).
  // Copies and stores are interleaved with the merges so each shifter op
  // pairs with an ALU/memory op in the other pipe — the hand-scheduled
  // style of the IPP routines.
  a.movq(MM4, MM0);       // pairs with the last load
  a.punpcklwd(MM0, MM1);  // t0 = a0 b0 a1 b1
  a.movq(MM5, MM2);       //   | pairs
  a.punpckhwd(MM4, MM1);  // t2 = a2 b2 a3 b3
  a.movq(MM6, MM0);       //   | copy of t0, pairs
  a.punpcklwd(MM2, MM3);  // t1 = c0 d0 c1 d1
  a.movq(MM7, MM4);       //   | copy of t2, pairs
  a.punpckhwd(MM5, MM3);  // t3 = c2 d2 c3 d3
  a.punpckldq(MM0, MM2);  // out0 = a0 b0 c0 d0
  a.movq_store(R3, 0 * kRowBytes, MM0);
  a.punpckhdq(MM6, MM2);  // out1 = a1 b1 c1 d1 | pairs with the store
  a.movq_store(R3, 1 * kRowBytes, MM6);
  a.punpckldq(MM4, MM5);  // out2              | pairs
  a.movq_store(R3, 2 * kRowBytes, MM4);
  a.punpckhdq(MM7, MM5);  // out3              | pairs
  a.movq_store(R3, 3 * kRowBytes, MM7);
  emit_block_loop_tail(a, "bj", "bi");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> TransposeKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  // One state per inner-loop instruction; the four MOVQ gathers pull whole
  // columns out of MM0..MM3 (source window fits even configuration D).
  core::MicroBuilder mb(cfg);
  for (int i = 0; i < 4; ++i) mb.add_straight_state();  // the four loads
  for (int col = 0; col < 4; ++col) {
    core::Route r;
    r.set_operand_both_pipes(
        1, gather_words({{{0, col}, {1, col}, {2, col}, {3, col}}}));
    mb.add_state(r);
  }
  for (int i = 0; i < 4; ++i) mb.add_straight_state();  // the four stores
  for (int i = 0; i < 3; ++i) mb.add_straight_state();  // addi, addi, loopnz
  mb.seal_simple_loop(kBlocks);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R9, kBlocks);
  emit_block_addressing_reset(a);
  a.label("bi");
  a.li(R1, kBlocks);
  core::emit_spu_go(a, 0);  // last instruction before the loop head
  a.label("bj");
  a.movq_load(MM0, R2, 0 * kRowBytes);
  a.movq_load(MM1, R2, 1 * kRowBytes);
  a.movq_load(MM2, R2, 2 * kRowBytes);
  a.movq_load(MM3, R2, 3 * kRowBytes);
  // Column gathers through the crossbar; the named source is immaterial.
  a.movq(MM4, MM0);
  a.movq(MM5, MM0);
  a.movq(MM6, MM0);
  a.movq(MM7, MM0);
  a.movq_store(R3, 0 * kRowBytes, MM4);
  a.movq_store(R3, 1 * kRowBytes, MM5);
  a.movq_store(R3, 2 * kRowBytes, MM6);
  a.movq_store(R3, 3 * kRowBytes, MM7);
  emit_block_loop_tail(a, "bj", "bi");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void TransposeKernel::init_memory(sim::Memory& mem) const {
  const auto m = ref::make_matrix(kN, kN, kSeed);
  mem.write_span<int16_t>(kInputAddr, m);
}

bool TransposeKernel::verify(const sim::Memory& mem) const {
  const auto m = ref::make_matrix(kN, kN, kSeed);
  const auto want = ref::transpose(m, kN, kN);
  return compare_i16(mem, kOutputAddr, want, name()) == 0;
}

}  // namespace subword::kernels
