#include "kernels/registry.h"

#include <cctype>
#include <stdexcept>

#include "kernels/color_convert.h"
#include "kernels/conv2d.h"
#include "kernels/dct.h"
#include "kernels/fft.h"
#include "kernels/fir.h"
#include "kernels/iir.h"
#include "kernels/matmul.h"
#include "kernels/motion_est.h"
#include "kernels/runner.h"
#include "kernels/transpose.h"

namespace subword::kernels {

std::vector<std::unique_ptr<MediaKernel>> all_kernels() {
  std::vector<std::unique_ptr<MediaKernel>> v;
  v.push_back(std::make_unique<FirKernel>(12));
  v.push_back(std::make_unique<FirKernel>(22));
  v.push_back(std::make_unique<IirKernel>());
  v.push_back(std::make_unique<FftKernel>(1024));
  v.push_back(std::make_unique<FftKernel>(128));
  v.push_back(std::make_unique<DctKernel>());
  v.push_back(std::make_unique<MatMulKernel>());
  v.push_back(std::make_unique<TransposeKernel>());
  // Extended media suite (beyond the paper's Figure 9): the video-pipeline
  // workloads from the comparative SIMD-scheduling literature.
  v.push_back(std::make_unique<MotionEstKernel>());
  v.push_back(std::make_unique<ColorConvertKernel>());
  v.push_back(std::make_unique<Conv2dKernel>());
  return v;
}

namespace {

// A manual variant may be realizable under only some crossbar geometries
// (the paper kernels target A, the extended ones D); MicroBuilder throws
// std::logic_error for routes the geometry cannot carry, so probe every
// registered configuration. has_manual_spu therefore means "a manual
// variant exists under at least one config" — realizability under the
// specific config a request passes is still checked at prepare time.
bool probe_manual_spu(const MediaKernel& k) {
  for (const auto& cfg : core::kAllConfigs) {
    try {
      if (k.build_spu(cfg, 1).has_value()) return true;
    } catch (const std::logic_error&) {
      continue;
    }
  }
  return false;
}

// A kernel earns the native_backend flag only if every preparation the
// differential suite exercises lowers: the baseline, the manual variant
// under each config where it is realizable, and the auto-orchestrated
// program under configs A and D. Probing runs the real lowering walker, so
// the flag can never drift from what the backend actually supports.
bool probe_native_backend(const MediaKernel& k, bool has_manual) {
  try {
    auto base = prepare_baseline(k, 1);
    lower_native(k, base);
    for (const auto& cfg : {core::kConfigA, core::kConfigD}) {
      if (has_manual) {
        try {
          auto manual = prepare_spu(k, 1, cfg, SpuMode::Manual);
          lower_native(k, manual);
        } catch (const std::logic_error&) {
          // Variant not realizable under this geometry — the simulator
          // backend cannot run it either, so it does not count against
          // native support.
        }
      }
      auto autop = prepare_spu(k, 1, cfg, SpuMode::Auto);
      lower_native(k, autop);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<KernelInfo> build_infos() {
  std::vector<KernelInfo> infos;
  const auto kernels = all_kernels();
  infos.reserve(kernels.size());
  for (size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = *kernels[i];
    KernelInfo info;
    info.name = k.name();
    info.description = k.description();
    info.paper_suite = i < kPaperSuiteSize;
    info.has_manual_spu = probe_manual_spu(k);
    info.native_backend = probe_native_backend(k, info.has_manual_spu);
    info.buffers = k.buffer_spec();
    infos.push_back(std::move(info));
  }
  return infos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::vector<KernelInfo>& kernel_infos() {
  static const std::vector<KernelInfo> infos = build_infos();
  return infos;
}

const KernelInfo* find_kernel_info(std::string_view name) {
  for (const auto& info : kernel_infos()) {
    if (iequals(info.name, name)) return &info;
  }
  return nullptr;
}

std::unique_ptr<MediaKernel> make_kernel(const std::string& name) {
  for (auto& k : all_kernels()) {
    if (k->name() == name) return std::move(k);
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace subword::kernels
