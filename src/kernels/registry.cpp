#include "kernels/registry.h"

#include <stdexcept>

#include "kernels/dct.h"
#include "kernels/fft.h"
#include "kernels/fir.h"
#include "kernels/iir.h"
#include "kernels/matmul.h"
#include "kernels/transpose.h"

namespace subword::kernels {

std::vector<std::unique_ptr<MediaKernel>> all_kernels() {
  std::vector<std::unique_ptr<MediaKernel>> v;
  v.push_back(std::make_unique<FirKernel>(12));
  v.push_back(std::make_unique<FirKernel>(22));
  v.push_back(std::make_unique<IirKernel>());
  v.push_back(std::make_unique<FftKernel>(1024));
  v.push_back(std::make_unique<FftKernel>(128));
  v.push_back(std::make_unique<DctKernel>());
  v.push_back(std::make_unique<MatMulKernel>());
  v.push_back(std::make_unique<TransposeKernel>());
  return v;
}

std::unique_ptr<MediaKernel> make_kernel(const std::string& name) {
  for (auto& k : all_kernels()) {
    if (k->name() == name) return std::move(k);
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace subword::kernels
