#include "kernels/registry.h"

#include <stdexcept>

#include "kernels/color_convert.h"
#include "kernels/conv2d.h"
#include "kernels/dct.h"
#include "kernels/fft.h"
#include "kernels/fir.h"
#include "kernels/iir.h"
#include "kernels/matmul.h"
#include "kernels/motion_est.h"
#include "kernels/transpose.h"

namespace subword::kernels {

std::vector<std::unique_ptr<MediaKernel>> all_kernels() {
  std::vector<std::unique_ptr<MediaKernel>> v;
  v.push_back(std::make_unique<FirKernel>(12));
  v.push_back(std::make_unique<FirKernel>(22));
  v.push_back(std::make_unique<IirKernel>());
  v.push_back(std::make_unique<FftKernel>(1024));
  v.push_back(std::make_unique<FftKernel>(128));
  v.push_back(std::make_unique<DctKernel>());
  v.push_back(std::make_unique<MatMulKernel>());
  v.push_back(std::make_unique<TransposeKernel>());
  // Extended media suite (beyond the paper's Figure 9): the video-pipeline
  // workloads from the comparative SIMD-scheduling literature.
  v.push_back(std::make_unique<MotionEstKernel>());
  v.push_back(std::make_unique<ColorConvertKernel>());
  v.push_back(std::make_unique<Conv2dKernel>());
  return v;
}

std::unique_ptr<MediaKernel> make_kernel(const std::string& name) {
  for (auto& k : all_kernels()) {
    if (k->name() == name) return std::move(k);
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace subword::kernels
