#include "kernels/registry.h"

#include <cctype>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "kernels/color_convert.h"
#include "kernels/conv2d.h"
#include "kernels/dct.h"
#include "kernels/fft.h"
#include "kernels/fir.h"
#include "kernels/iir.h"
#include "kernels/matmul.h"
#include "kernels/motion_est.h"
#include "kernels/runner.h"
#include "kernels/transpose.h"

namespace subword::kernels {

std::vector<std::unique_ptr<MediaKernel>> all_kernels() {
  std::vector<std::unique_ptr<MediaKernel>> v;
  v.push_back(std::make_unique<FirKernel>(12));
  v.push_back(std::make_unique<FirKernel>(22));
  v.push_back(std::make_unique<IirKernel>());
  v.push_back(std::make_unique<FftKernel>(1024));
  v.push_back(std::make_unique<FftKernel>(128));
  v.push_back(std::make_unique<DctKernel>());
  v.push_back(std::make_unique<MatMulKernel>());
  v.push_back(std::make_unique<TransposeKernel>());
  // Extended media suite (beyond the paper's Figure 9): the video-pipeline
  // workloads from the comparative SIMD-scheduling literature.
  v.push_back(std::make_unique<MotionEstKernel>());
  v.push_back(std::make_unique<ColorConvertKernel>());
  v.push_back(std::make_unique<Conv2dKernel>());
  return v;
}

namespace {

// A manual variant may be realizable under only some crossbar geometries
// (the paper kernels target A, the extended ones D); MicroBuilder throws
// std::logic_error for routes the geometry cannot carry, so probe every
// registered configuration. has_manual_spu therefore means "a manual
// variant exists under at least one config" — realizability under the
// specific config a request passes is still checked at prepare time.
bool probe_manual_spu(const MediaKernel& k) {
  for (const auto& cfg : core::kAllConfigs) {
    try {
      if (k.build_spu(cfg, 1).has_value()) return true;
    } catch (const std::logic_error&) {
      continue;
    }
  }
  return false;
}

// A kernel earns the native_backend flag only if every preparation the
// differential suite exercises lowers: the baseline, the manual variant
// under each config where it is realizable, and the auto-orchestrated
// program under configs A and D. Probing runs the real lowering walker, so
// the flag can never drift from what the backend actually supports.
bool probe_native_backend(const MediaKernel& k, bool has_manual) {
  try {
    auto base = prepare_baseline(k, 1);
    lower_native(k, base);
    for (const auto& cfg : {core::kConfigA, core::kConfigD}) {
      if (has_manual) {
        try {
          auto manual = prepare_spu(k, 1, cfg, SpuMode::Manual);
          lower_native(k, manual);
        } catch (const std::logic_error&) {
          // Variant not realizable under this geometry — the simulator
          // backend cannot run it either, so it does not count against
          // native support.
        }
      }
      auto autop = prepare_spu(k, 1, cfg, SpuMode::Auto);
      lower_native(k, autop);
    }
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// Probing a concrete (use_spu, mode, cfg) shape: prepare it for real at
// repeats=1 and attempt the lowering. Any failure — manual variant not
// realizable under this geometry, orchestrator rejection, lowering proof
// failure — means the native backend cannot run this exact request.
bool probe_native_combo(const MediaKernel& k, bool use_spu, SpuMode mode,
                        const core::CrossbarConfig& cfg) {
  try {
    auto p = use_spu ? prepare_spu(k, 1, cfg, mode) : prepare_baseline(k, 1);
    lower_native(k, p);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// Lazy capability memo, one slot per registered kernel. The probes build
// programs and (for the native proofs) run the orchestrator — ~100ms for
// the whole registry — so nothing here runs until a capability is actually
// consulted, and then exactly once per kernel (or per combination).
struct KernelCaps {
  std::once_flag manual_once;
  bool has_manual = false;
  std::once_flag native_once;
  bool native_all = false;
  std::mutex combo_mu;
  std::unordered_map<uint32_t, bool> combos;  // packed combo key -> support
};

std::vector<KernelCaps>& caps_table() {
  static std::vector<KernelCaps> table(all_kernels().size());
  return table;
}

// Everything that distinguishes one preparation shape for the native
// backend: crossbar geometry + modes flag, SPU on/off, SPU mode.
uint32_t combo_key(bool use_spu, SpuMode mode,
                   const core::CrossbarConfig& cfg) {
  return static_cast<uint32_t>(cfg.input_ports) |
         (static_cast<uint32_t>(cfg.output_ports) << 8) |
         (static_cast<uint32_t>(cfg.port_bits) << 16) |
         (cfg.modes ? 1u << 24 : 0u) | (use_spu ? 1u << 25 : 0u) |
         (static_cast<uint32_t>(mode) << 26);
}

std::vector<KernelInfo> build_infos() {
  std::vector<KernelInfo> infos;
  const auto kernels = all_kernels();
  infos.reserve(kernels.size());
  for (size_t i = 0; i < kernels.size(); ++i) {
    const auto& k = *kernels[i];
    KernelInfo info;
    info.name = k.name();
    info.description = k.description();
    info.paper_suite = i < kPaperSuiteSize;
    info.buffers = k.buffer_spec();
    info.registry_index = i;
    infos.push_back(std::move(info));
  }
  return infos;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool KernelInfo::has_manual_spu() const {
  auto& caps = caps_table().at(registry_index);
  std::call_once(caps.manual_once, [&] {
    caps.has_manual = probe_manual_spu(*all_kernels().at(registry_index));
  });
  return caps.has_manual;
}

bool KernelInfo::native_backend() const {
  auto& caps = caps_table().at(registry_index);
  const bool has_manual = has_manual_spu();
  std::call_once(caps.native_once, [&] {
    caps.native_all =
        probe_native_backend(*all_kernels().at(registry_index), has_manual);
  });
  return caps.native_all;
}

bool KernelInfo::native_supported(bool use_spu, SpuMode mode,
                                  const core::CrossbarConfig& cfg) const {
  auto& caps = caps_table().at(registry_index);
  const uint32_t key = combo_key(use_spu, mode, cfg);
  {
    std::lock_guard lock(caps.combo_mu);
    if (const auto it = caps.combos.find(key); it != caps.combos.end()) {
      return it->second;
    }
  }
  // Probe outside the lock: probing is idempotent and may be slow, so a
  // racing duplicate probe beats serializing every combo behind one mutex.
  const bool supported = probe_native_combo(*all_kernels().at(registry_index),
                                            use_spu, mode, cfg);
  std::lock_guard lock(caps.combo_mu);
  return caps.combos.emplace(key, supported).first->second;
}

const std::vector<KernelInfo>& kernel_infos() {
  static const std::vector<KernelInfo> infos = build_infos();
  return infos;
}

const KernelInfo* find_kernel_info(std::string_view name) {
  for (const auto& info : kernel_infos()) {
    if (iequals(info.name, name)) return &info;
  }
  return nullptr;
}

std::unique_ptr<MediaKernel> make_kernel(const std::string& name) {
  for (auto& k : all_kernels()) {
    if (k->name() == name) return std::move(k);
  }
  throw std::out_of_range("unknown kernel: " + name);
}

}  // namespace subword::kernels
