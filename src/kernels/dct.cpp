#include "kernels/dct.h"

#include "isa/assembler.h"
#include "kernels/spu_util.h"
#include "ref/ref_dct.h"
#include "ref/workload.h"

namespace subword::kernels {

using namespace isa;

namespace {

constexpr uint64_t kSeedIn = 0x44435449;
constexpr uint64_t kTemp1 = kAuxAddr;           // row-pass 1 result
constexpr uint64_t kTemp1T = kAuxAddr + 0x800;  // transposed
constexpr uint64_t kTemp2 = kAuxAddr + 0x1000;  // row-pass 2 result
constexpr int kRowBytes = 16;                   // 8 x int16

// Register plan:
//   R0 repeat  R8 block counter  R10 input block ptr  R11 output block ptr
//   R1 inner counter  R9 transpose outer counter
//   R2 src ptr  R3 dst ptr  R4 basis base (constant within a pass)
//   MMX: MM0..MM3 pair accumulators (config-D window), MM4/MM5 temps and
//   combine registers, MM6/MM7 the current row.

// One 1-D pass over 8 rows, src in R2, dst in R3; `label` must be unique.
void emit_row_pass(Assembler& a, bool spu, const std::string& label) {
  a.li(R1, 8);
  if (spu) core::emit_spu_go(a, 0);
  a.label(label);
  a.movq_load(MM6, R2, 0);
  a.movq_load(MM7, R2, 8);
  for (int g = 0; g < 2; ++g) {
    for (int u = 0; u < 4; ++u) {
      const auto acc = static_cast<uint8_t>(MM0 + u);
      const int32_t cbase = (4 * g + u) * 16;
      a.movq_load(acc, R4, cbase);
      a.pmaddwd(acc, MM6);
      a.movq_load(MM4, R4, cbase + 8);
      a.pmaddwd(MM4, MM7);
      a.paddd(acc, MM4);
    }
    if (spu) {
      a.paddd(MM4, MM5);  // routed -> [r0, r1]
      a.paddd(MM5, MM4);  // routed -> [r2, r3]
    } else {
      a.movq(MM4, MM0);
      a.punpckldq(MM4, MM1);  // [acc0.d0, acc1.d0]
      a.punpckhdq(MM0, MM1);  // [acc0.d1, acc1.d1]
      a.paddd(MM4, MM0);      // [r0, r1]
      a.movq(MM5, MM2);
      a.punpckldq(MM5, MM3);
      a.punpckhdq(MM2, MM3);
      a.paddd(MM5, MM2);      // [r2, r3]
    }
    a.psrad(MM4, DctKernel::kShift);
    a.psrad(MM5, DctKernel::kShift);
    a.packssdw(MM4, MM5);
    a.movq_store(R3, g * 8, MM4);
  }
  a.saddi(R2, kRowBytes);
  a.saddi(R3, kRowBytes);
  a.loopnz(R1, label);
}

// 8x8 transpose src (R2) -> dst (R3) in four 4x4 blocks.
void emit_transpose8(Assembler& a, bool spu, const std::string& label) {
  a.li(R9, 2);
  a.label(label + "_bi");
  a.li(R1, 2);
  if (spu) core::emit_spu_go(a, 1);
  a.label(label + "_bj");
  a.movq_load(MM0, R2, 0 * kRowBytes);
  a.movq_load(MM1, R2, 1 * kRowBytes);
  a.movq_load(MM2, R2, 2 * kRowBytes);
  a.movq_load(MM3, R2, 3 * kRowBytes);
  if (spu) {
    a.movq(MM4, MM0);
    a.movq(MM5, MM0);
    a.movq(MM6, MM0);
    a.movq(MM7, MM0);
    a.movq_store(R3, 0 * kRowBytes, MM4);
    a.movq_store(R3, 1 * kRowBytes, MM5);
    a.movq_store(R3, 2 * kRowBytes, MM6);
    a.movq_store(R3, 3 * kRowBytes, MM7);
  } else {
    // Pairing-aware schedule (see kernels/transpose.cpp).
    a.movq(MM4, MM0);
    a.punpcklwd(MM0, MM1);
    a.movq(MM5, MM2);
    a.punpckhwd(MM4, MM1);
    a.movq(MM6, MM0);
    a.punpcklwd(MM2, MM3);
    a.movq(MM7, MM4);
    a.punpckhwd(MM5, MM3);
    a.punpckldq(MM0, MM2);
    a.movq_store(R3, 0 * kRowBytes, MM0);
    a.punpckhdq(MM6, MM2);
    a.movq_store(R3, 1 * kRowBytes, MM6);
    a.punpckldq(MM4, MM5);
    a.movq_store(R3, 2 * kRowBytes, MM4);
    a.punpckhdq(MM7, MM5);
    a.movq_store(R3, 3 * kRowBytes, MM7);
  }
  a.saddi(R2, 8);
  a.saddi(R3, 4 * kRowBytes);
  a.loopnz(R1, label + "_bj");
  a.saddi(R2, 4 * kRowBytes - 16);
  a.saddi(R3, 8 - 8 * kRowBytes);
  a.loopnz(R9, label + "_bi");
}

}  // namespace

isa::Program DctKernel::build_mmx(int repeats) const {
  Assembler a;
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R10, static_cast<int32_t>(kInputAddr));
  a.li(R11, static_cast<int32_t>(kOutputAddr));
  a.li(R8, kBlocks);
  a.label("block");
  // Pass 1: input rows -> temp1.
  a.smov(R2, R10);
  a.li(R3, static_cast<int32_t>(kTemp1));
  emit_row_pass(a, false, "rp1");
  // Transpose temp1 -> temp1T.
  a.li(R2, static_cast<int32_t>(kTemp1));
  a.li(R3, static_cast<int32_t>(kTemp1T));
  emit_transpose8(a, false, "t1");
  // Pass 2: temp1T rows -> temp2.
  a.li(R2, static_cast<int32_t>(kTemp1T));
  a.li(R3, static_cast<int32_t>(kTemp2));
  emit_row_pass(a, false, "rp2");
  // Transpose temp2 -> output block.
  a.li(R2, static_cast<int32_t>(kTemp2));
  a.smov(R3, R11);
  emit_transpose8(a, false, "t2");
  a.saddi(R10, kBlockBytes);
  a.saddi(R11, kBlockBytes);
  a.loopnz(R8, "block");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

std::optional<isa::Program> DctKernel::build_spu(
    const core::CrossbarConfig& cfg, int repeats) const {
  // Context 0: row pass (57 states). The body below must mirror
  // emit_row_pass(spu=true) instruction-for-instruction.
  core::MicroBuilder mb0(cfg);
  mb0.add_straight_state();  // movq_load MM6
  mb0.add_straight_state();  // movq_load MM7
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 4 * 5; ++i) mb0.add_straight_state();
    {
      core::Route r;
      r.set_operand_both_pipes(0, gather_dwords({{{MM0, 0}, {MM1, 0}}}));
      r.set_operand_both_pipes(1, gather_dwords({{{MM0, 1}, {MM1, 1}}}));
      mb0.add_state(r);
    }
    {
      core::Route r;
      r.set_operand_both_pipes(0, gather_dwords({{{MM2, 0}, {MM3, 0}}}));
      r.set_operand_both_pipes(1, gather_dwords({{{MM2, 1}, {MM3, 1}}}));
      mb0.add_state(r);
    }
    for (int i = 0; i < 4; ++i) mb0.add_straight_state();  // shifts/pack/store
  }
  for (int i = 0; i < 3; ++i) mb0.add_straight_state();  // addi/addi/loopnz
  mb0.seal_simple_loop(8);

  // Context 1: transpose column gathers (15 states).
  core::MicroBuilder mb1(cfg);
  for (int i = 0; i < 4; ++i) mb1.add_straight_state();
  for (int col = 0; col < 4; ++col) {
    core::Route r;
    r.set_operand_both_pipes(
        1, gather_words({{{0, col}, {1, col}, {2, col}, {3, col}}}));
    mb1.add_state(r);
  }
  for (int i = 0; i < 7; ++i) mb1.add_straight_state();
  mb1.seal_simple_loop(2);

  Assembler a;
  emit_spu_prologue(a, {{0, &mb0}, {1, &mb1}});
  a.li(R0, repeats);
  a.label("repeat");
  a.li(R4, static_cast<int32_t>(kCoeffAddr));
  a.li(R10, static_cast<int32_t>(kInputAddr));
  a.li(R11, static_cast<int32_t>(kOutputAddr));
  a.li(R8, kBlocks);
  a.label("block");
  a.smov(R2, R10);
  a.li(R3, static_cast<int32_t>(kTemp1));
  emit_row_pass(a, true, "rp1");
  a.li(R2, static_cast<int32_t>(kTemp1));
  a.li(R3, static_cast<int32_t>(kTemp1T));
  emit_transpose8(a, true, "t1");
  a.li(R2, static_cast<int32_t>(kTemp1T));
  a.li(R3, static_cast<int32_t>(kTemp2));
  emit_row_pass(a, true, "rp2");
  a.li(R2, static_cast<int32_t>(kTemp2));
  a.smov(R3, R11);
  emit_transpose8(a, true, "t2");
  a.saddi(R10, kBlockBytes);
  a.saddi(R11, kBlockBytes);
  a.loopnz(R8, "block");
  a.loopnz(R0, "repeat");
  a.halt();
  return a.take();
}

void DctKernel::init_memory(sim::Memory& mem) const {
  const auto in =
      ref::make_matrix(8 * kBlocks, 8, kSeedIn, /*amplitude=*/2047);
  mem.write_span<int16_t>(kInputAddr, in);
  mem.write_span<int16_t>(kCoeffAddr, ref::make_dct_basis());
}

bool DctKernel::verify(const sim::Memory& mem) const {
  const auto in =
      ref::make_matrix(8 * kBlocks, 8, kSeedIn, /*amplitude=*/2047);
  const auto basis = ref::make_dct_basis();
  for (int blk = 0; blk < kBlocks; ++blk) {
    ref::Block8x8 b{};
    for (int i = 0; i < 64; ++i) {
      b[static_cast<size_t>(i)] = in[static_cast<size_t>(blk * 64 + i)];
    }
    const auto want = ref::dct2d(b, basis);
    const std::vector<int16_t> wv(want.begin(), want.end());
    if (compare_i16(mem,
                    kOutputAddr + static_cast<uint64_t>(blk) * kBlockBytes,
                    wv, name() + " block " + std::to_string(blk)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace subword::kernels
