// dct.h — 8x8 forward DCT (paper Table 2: "8x8 Kernel"), row-column
// decomposition over a sequence of blocks.
//
// Per block: a 1-D pass over the 8 rows (PMADDWD against the Q13 basis,
// pair accumulators, horizontal reductions), a transpose, a second 1-D
// pass, and a final transpose. The transposes are pure inter-word
// permutation work and the reductions pure intra-word work — this is the
// paper's flagship example of both restriction classes, which is why DCT
// shows one of the largest SPU gains in Figure 9.
//
// SPU variant: context 0 carries the row-pass routes (reductions and
// result pairing folded into PADDD/PSRAD operands), context 1 the
// transpose column gathers.
#pragma once

#include <optional>
#include <string>

#include "kernels/kernel.h"

namespace subword::kernels {

class DctKernel final : public MediaKernel {
 public:
  static constexpr int kBlocks = 16;
  static constexpr int kShift = 13;  // Q13 basis
  static constexpr int kBlockBytes = 128;

  [[nodiscard]] std::string name() const override { return "DCT"; }
  [[nodiscard]] std::string description() const override {
    return "8x8 Kernel";
  }
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
};

}  // namespace subword::kernels
