// conv2d.h — 3x3 2D convolution over a 16-bit image tile (the filtering
// stage of every video pipeline: sharpen/blur/edge kernels).
//
// Baseline: four output pixels per iteration. For each of the three taps
// in a row the kernel needs the same eight loaded pixels shifted by 0, 1,
// 2 words — the classic MMX shifted-window sequence (copy, PSRLQ, copy,
// PSLLQ, POR) re-materializes each window from the two aligned loads, so
// two thirds of the window-building work is copies and shifts that exist
// only to realign data.
//
// SPU variant: the shifted windows are single MOVQ gathers routed across
// the two loaded quadwords (MM0/MM1 word-aligned — realizable under
// configuration D). Each 5-instruction realignment becomes 1 instruction;
// the multiply/accumulate dataflow is untouched (window *reuse*: the loads
// happen once per row regardless of tap count).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "kernels/kernel.h"

namespace subword::kernels {

class Conv2dKernel final : public MediaKernel {
 public:
  static constexpr int kInW = 20;    // input tile width (words)
  static constexpr int kInH = 10;    // input tile height
  static constexpr int kOutW = 16;   // output width (4 quads per row)
  static constexpr int kOutH = kInH - 2;
  static constexpr int kShift = 4;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
  // Primary input: the kInW x kInH 16-bit tile (pixel-range values, 0..255,
  // for the wrap-free bit-exactness contract). Primary output: the
  // kOutW x kOutH result tile.
  [[nodiscard]] BufferSpec buffer_spec() const override;
  [[nodiscard]] bool verify_bound(const sim::Memory& mem,
                                  std::span<const uint8_t> input)
      const override;

  // The deterministic 3x3 tap matrix (row-major). Public so pipeline
  // consumers can compose the scalar reference end-to-end.
  [[nodiscard]] static std::vector<int16_t> coefficients();
};

}  // namespace subword::kernels
