// matmul.h — 16x16 16-bit matrix multiply (paper Table 2: "16x16 16b
// Matrix Multiply").
//
// Broadcast-style MMX matmul: for each output row, every a[i][k] must be
// replicated across the four lanes before it can multiply a quadword of
// B's row k — a PUNPCKLWD/PUNPCKLDQ/PUNPCKHDQ sequence per scalar, the
// intra-word restriction in its purest form. Products (PMULHW) accumulate
// into four saturating 16-bit accumulators (PADDSW).
//
// The SPU variant deletes the entire broadcast sequence: the crossbar
// replicates the source half-word directly into all lanes of the
// multiplier's second operand. The broadcast source register sits inside
// configuration D's window, so the kernel is fully realizable on the
// cheapest crossbar.
#pragma once

#include <optional>
#include <string>

#include "kernels/kernel.h"

namespace subword::kernels {

class MatMulKernel final : public MediaKernel {
 public:
  static constexpr int kN = 16;
  static constexpr int kRowBytes = kN * 2;

  [[nodiscard]] std::string name() const override { return "Matrix Multiply"; }
  [[nodiscard]] std::string description() const override {
    return "16x16 16b Matrix Multiply";
  }
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;
};

}  // namespace subword::kernels
