// spu_util.h — helpers for hand-writing MMX+SPU kernel variants.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/micro_builder.h"
#include "core/mmio.h"
#include "core/setup.h"
#include "isa/assembler.h"

namespace subword::kernels {

// SPU register byte address of byte `b` of MMX register `r`.
[[nodiscard]] constexpr uint8_t spu_byte(int r, int b) {
  return static_cast<uint8_t>(r * 8 + b);
}

// Operand source array gathering four 16-bit words; each entry names
// (mmx register, word index 0..3).
[[nodiscard]] constexpr std::array<uint8_t, 8> gather_words(
    std::array<std::pair<int, int>, 4> words) {
  std::array<uint8_t, 8> srcs{};
  for (int i = 0; i < 4; ++i) {
    const auto [r, w] = words[static_cast<size_t>(i)];
    srcs[static_cast<size_t>(2 * i)] = spu_byte(r, 2 * w);
    srcs[static_cast<size_t>(2 * i + 1)] = spu_byte(r, 2 * w + 1);
  }
  return srcs;
}

// Operand source array gathering two 32-bit dwords ((register, dword 0..1)).
[[nodiscard]] constexpr std::array<uint8_t, 8> gather_dwords(
    std::array<std::pair<int, int>, 2> dwords) {
  std::array<uint8_t, 8> srcs{};
  for (int i = 0; i < 2; ++i) {
    const auto [r, d] = dwords[static_cast<size_t>(i)];
    for (int b = 0; b < 4; ++b) {
      srcs[static_cast<size_t>(4 * i + b)] =
          spu_byte(r, 4 * d + b);
    }
  }
  return srcs;
}

// Emits the one-time SPU programming prologue for one or more contexts:
// window base into R14, then per context: select + word stream.
inline void emit_spu_prologue(
    isa::Assembler& a,
    const std::vector<std::pair<int, const core::MicroBuilder*>>& contexts) {
  core::emit_spu_base(a, core::SpuMmio::kDefaultBase);
  for (const auto& [ctx, mb] : contexts) {
    core::emit_spu_stop(a, ctx);  // select context, GO clear
    core::emit_spu_words(a, mb->mmio_words());
  }
}

}  // namespace subword::kernels
