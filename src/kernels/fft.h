// fft.h — radix-2 fixed-point FFT, 128 and 1024 points (paper Table 2:
// "1024 Sample, Radix 2 Real FFT" / "128 Sample, Radix 2 Real FFT").
//
// Substitution note (see DESIGN.md): we transform complex Q15 data with
// the same radix-2 butterfly structure; the paper's real-valued wrapper
// changes only the pre/post passes, not the instruction mix the SPU
// affects. The kernel keeps the IPP shape: a scalar bit-reversal pass, a
// permutation-heavy first stage (adjacent sub-word butterflies — intra-word
// restrictions), and clean twiddled stages whose only permutations are the
// re-interleaving of PMADDWD results.
//
// Phases per repeat: copy pristine input to the work area, scalar
// bit-reversal swaps, stage 1 (W = 1), then stages 2..log2(N) unrolled in
// the program, each a block/inner loop nest over linear twiddle tables.
//
// SPU variant: context 0 carries stage-1 routes (6 of 13 body instructions
// disappear), context 1 the twiddled-stage routes (3 of 24); the counter
// reload is re-programmed per stage because the trip count changes — the
// paper's "startup costs easily scheduled" in action.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kernels/kernel.h"

namespace subword::kernels {

class FftKernel final : public MediaKernel {
 public:
  explicit FftKernel(int n);

  static constexpr int kShiftTw = 15;  // Q15 twiddles
  static constexpr uint64_t kTwImOffset = 0x4000;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] isa::Program build_mmx(int repeats) const override;
  [[nodiscard]] std::optional<isa::Program> build_spu(
      const core::CrossbarConfig& cfg, int repeats) const override;
  void init_memory(sim::Memory& mem) const override;
  [[nodiscard]] bool verify(const sim::Memory& mem) const override;

  [[nodiscard]] int n() const { return n_; }

 private:
  [[nodiscard]] isa::Program build(bool spu, int repeats,
                                   const core::CrossbarConfig* cfg) const;
  [[nodiscard]] int num_bitrev_pairs() const;

  int n_;
  int stages_;
};

}  // namespace subword::kernels
