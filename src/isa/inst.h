// inst.h — the decoded instruction format and register naming.
#pragma once

#include <cstdint>

#include "isa/opcodes.h"

namespace subword::isa {

// MMX register indices MM0..MM7.
inline constexpr uint8_t MM0 = 0, MM1 = 1, MM2 = 2, MM3 = 3, MM4 = 4,
                         MM5 = 5, MM6 = 6, MM7 = 7;
inline constexpr int kNumMmxRegs = 8;

// General-purpose scalar register indices R0..R15 (64-bit).
inline constexpr uint8_t R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5,
                         R6 = 6, R7 = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11,
                         R12 = 12, R13 = 13, R14 = 14, R15 = 15;
inline constexpr int kNumGpRegs = 16;

// A decoded instruction. Field use depends on the opcode:
//   dst      destination register (MMX or GP index)
//   src      source register (MMX or GP index), or shift-count register
//   base     GP base register for memory operands
//   disp     memory displacement, or scalar immediate (Li/SAddi/...)
//   imm8     shift count when src_is_imm
//   src_is_imm   MMX shift takes the count from imm8 rather than `src`
//   target   branch destination (instruction index; resolved by Assembler)
struct Inst {
  Op op = Op::Nop;
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t base = 0;
  uint8_t imm8 = 0;
  bool src_is_imm = false;
  int32_t disp = 0;
  int32_t target = -1;
};

// MMX two-operand instructions read `dst` as their first input; this helper
// tells the simulator/orchestrator which MMX registers an instruction reads.
struct MmxReadSet {
  // Register indices read; count in [0,2]. reads_dst marks ops where the
  // first input is the destination register itself (all packed arithmetic).
  int count = 0;
  uint8_t regs[2] = {0, 0};
};

[[nodiscard]] inline MmxReadSet mmx_reads(const Inst& in) {
  MmxReadSet rs;
  const auto& info = op_info(in.op);
  if (!info.is_mmx) return rs;
  switch (in.op) {
    case Op::MovqLoad:
    case Op::MovdLoad:
    case Op::MovdToMmx:
    case Op::Emms:
      return rs;  // no MMX register inputs
    case Op::MovqStore:
    case Op::MovdStore:
    case Op::MovdFromMmx:
    case Op::MovqRR:
      rs.count = 1;
      rs.regs[0] = in.src;
      return rs;
    case Op::Psllw: case Op::Pslld: case Op::Psllq:
    case Op::Psrlw: case Op::Psrld: case Op::Psrlq:
    case Op::Psraw: case Op::Psrad:
      rs.count = in.src_is_imm ? 1 : 2;
      rs.regs[0] = in.dst;  // shifted value
      rs.regs[1] = in.src;  // count register (when !src_is_imm)
      return rs;
    default:
      // Packed arithmetic/logic/compare/pack/unpack: dst op= src.
      rs.count = 2;
      rs.regs[0] = in.dst;
      rs.regs[1] = in.src;
      return rs;
  }
}

// Whether the instruction writes an MMX register (and which).
[[nodiscard]] inline bool mmx_writes(const Inst& in, uint8_t* reg) {
  const auto& info = op_info(in.op);
  if (!info.is_mmx) return false;
  switch (in.op) {
    case Op::MovqStore:
    case Op::MovdStore:
    case Op::MovdFromMmx:
    case Op::Emms:
      return false;
    default:
      *reg = in.dst;
      return true;
  }
}

}  // namespace subword::isa
