#include "isa/assembler.h"

#include <stdexcept>

namespace subword::isa {
namespace {

void check(bool cond, const char* msg) {
  if (!cond) throw std::logic_error(msg);
}

void check_mm(uint8_t r) { check(r < kNumMmxRegs, "MMX register out of range"); }
void check_gp(uint8_t r) { check(r < kNumGpRegs, "GP register out of range"); }

}  // namespace

void Assembler::label(const std::string& name) {
  check(!labels_.contains(name), "duplicate label");
  labels_[name] = static_cast<int32_t>(insts_.size());
}

// --- private emit helpers ----------------------------------------------------

void Assembler::mmx_rr(Op op, uint8_t d, uint8_t s) {
  check_mm(d);
  check_mm(s);
  Inst in;
  in.op = op;
  in.dst = d;
  in.src = s;
  insts_.push_back(in);
}

void Assembler::mmx_shift_imm(Op op, uint8_t d, uint8_t count) {
  check_mm(d);
  Inst in;
  in.op = op;
  in.dst = d;
  in.imm8 = count;
  in.src_is_imm = true;
  insts_.push_back(in);
}

void Assembler::mmx_shift_reg(Op op, uint8_t d, uint8_t count_mm) {
  check_mm(d);
  check_mm(count_mm);
  Inst in;
  in.op = op;
  in.dst = d;
  in.src = count_mm;
  in.src_is_imm = false;
  insts_.push_back(in);
}

void Assembler::scalar_rr(Op op, uint8_t d, uint8_t s) {
  check_gp(d);
  check_gp(s);
  Inst in;
  in.op = op;
  in.dst = d;
  in.src = s;
  insts_.push_back(in);
}

void Assembler::scalar_imm(Op op, uint8_t d, int32_t imm) {
  check_gp(d);
  Inst in;
  in.op = op;
  in.dst = d;
  in.disp = imm;
  insts_.push_back(in);
}

void Assembler::branch(Op op, uint8_t reg, const std::string& lbl) {
  if (op != Op::Jmp) check_gp(reg);
  Inst in;
  in.op = op;
  in.src = reg;
  auto it = labels_.find(lbl);
  if (it != labels_.end()) {
    in.target = it->second;
  } else {
    fixups_.emplace_back(insts_.size(), lbl);
  }
  insts_.push_back(in);
}

// --- MMX movement ------------------------------------------------------------

void Assembler::movq(uint8_t d, uint8_t s) { mmx_rr(Op::MovqRR, d, s); }

void Assembler::movq_load(uint8_t d, uint8_t base, int32_t disp) {
  check_mm(d);
  check_gp(base);
  Inst in;
  in.op = Op::MovqLoad;
  in.dst = d;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::movq_store(uint8_t base, int32_t disp, uint8_t s) {
  check_mm(s);
  check_gp(base);
  Inst in;
  in.op = Op::MovqStore;
  in.src = s;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::movd_load(uint8_t d, uint8_t base, int32_t disp) {
  check_mm(d);
  check_gp(base);
  Inst in;
  in.op = Op::MovdLoad;
  in.dst = d;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::movd_store(uint8_t base, int32_t disp, uint8_t s) {
  check_mm(s);
  check_gp(base);
  Inst in;
  in.op = Op::MovdStore;
  in.src = s;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::movd_to_mmx(uint8_t d, uint8_t s) {
  check_mm(d);
  check_gp(s);
  Inst in;
  in.op = Op::MovdToMmx;
  in.dst = d;
  in.src = s;
  insts_.push_back(in);
}

void Assembler::movd_from_mmx(uint8_t d, uint8_t s) {
  check_gp(d);
  check_mm(s);
  Inst in;
  in.op = Op::MovdFromMmx;
  in.dst = d;
  in.src = s;
  insts_.push_back(in);
}

// --- MMX packed arithmetic -----------------------------------------------------

void Assembler::paddb(uint8_t d, uint8_t s) { mmx_rr(Op::Paddb, d, s); }
void Assembler::paddw(uint8_t d, uint8_t s) { mmx_rr(Op::Paddw, d, s); }
void Assembler::paddd(uint8_t d, uint8_t s) { mmx_rr(Op::Paddd, d, s); }
void Assembler::psubb(uint8_t d, uint8_t s) { mmx_rr(Op::Psubb, d, s); }
void Assembler::psubw(uint8_t d, uint8_t s) { mmx_rr(Op::Psubw, d, s); }
void Assembler::psubd(uint8_t d, uint8_t s) { mmx_rr(Op::Psubd, d, s); }
void Assembler::paddsb(uint8_t d, uint8_t s) { mmx_rr(Op::Paddsb, d, s); }
void Assembler::paddsw(uint8_t d, uint8_t s) { mmx_rr(Op::Paddsw, d, s); }
void Assembler::paddusb(uint8_t d, uint8_t s) { mmx_rr(Op::Paddusb, d, s); }
void Assembler::paddusw(uint8_t d, uint8_t s) { mmx_rr(Op::Paddusw, d, s); }
void Assembler::psubsb(uint8_t d, uint8_t s) { mmx_rr(Op::Psubsb, d, s); }
void Assembler::psubsw(uint8_t d, uint8_t s) { mmx_rr(Op::Psubsw, d, s); }
void Assembler::psubusb(uint8_t d, uint8_t s) { mmx_rr(Op::Psubusb, d, s); }
void Assembler::psubusw(uint8_t d, uint8_t s) { mmx_rr(Op::Psubusw, d, s); }
void Assembler::pmullw(uint8_t d, uint8_t s) { mmx_rr(Op::Pmullw, d, s); }
void Assembler::pmulhw(uint8_t d, uint8_t s) { mmx_rr(Op::Pmulhw, d, s); }
void Assembler::pmaddwd(uint8_t d, uint8_t s) { mmx_rr(Op::Pmaddwd, d, s); }
void Assembler::pcmpeqb(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpeqb, d, s); }
void Assembler::pcmpeqw(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpeqw, d, s); }
void Assembler::pcmpeqd(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpeqd, d, s); }
void Assembler::pcmpgtb(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpgtb, d, s); }
void Assembler::pcmpgtw(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpgtw, d, s); }
void Assembler::pcmpgtd(uint8_t d, uint8_t s) { mmx_rr(Op::Pcmpgtd, d, s); }
void Assembler::pand(uint8_t d, uint8_t s) { mmx_rr(Op::Pand, d, s); }
void Assembler::pandn(uint8_t d, uint8_t s) { mmx_rr(Op::Pandn, d, s); }
void Assembler::por(uint8_t d, uint8_t s) { mmx_rr(Op::Por, d, s); }
void Assembler::pxor(uint8_t d, uint8_t s) { mmx_rr(Op::Pxor, d, s); }

// --- MMX shifts ----------------------------------------------------------------

void Assembler::psllw(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psllw, d, c); }
void Assembler::pslld(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Pslld, d, c); }
void Assembler::psllq(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psllq, d, c); }
void Assembler::psrlw(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psrlw, d, c); }
void Assembler::psrld(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psrld, d, c); }
void Assembler::psrlq(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psrlq, d, c); }
void Assembler::psraw(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psraw, d, c); }
void Assembler::psrad(uint8_t d, uint8_t c) { mmx_shift_imm(Op::Psrad, d, c); }
void Assembler::psllw_reg(uint8_t d, uint8_t c) {
  mmx_shift_reg(Op::Psllw, d, c);
}
void Assembler::psrlq_reg(uint8_t d, uint8_t c) {
  mmx_shift_reg(Op::Psrlq, d, c);
}

// --- MMX pack / unpack -----------------------------------------------------------

void Assembler::packsswb(uint8_t d, uint8_t s) { mmx_rr(Op::Packsswb, d, s); }
void Assembler::packssdw(uint8_t d, uint8_t s) { mmx_rr(Op::Packssdw, d, s); }
void Assembler::packuswb(uint8_t d, uint8_t s) { mmx_rr(Op::Packuswb, d, s); }
void Assembler::punpcklbw(uint8_t d, uint8_t s) { mmx_rr(Op::Punpcklbw, d, s); }
void Assembler::punpcklwd(uint8_t d, uint8_t s) { mmx_rr(Op::Punpcklwd, d, s); }
void Assembler::punpckldq(uint8_t d, uint8_t s) { mmx_rr(Op::Punpckldq, d, s); }
void Assembler::punpckhbw(uint8_t d, uint8_t s) { mmx_rr(Op::Punpckhbw, d, s); }
void Assembler::punpckhwd(uint8_t d, uint8_t s) { mmx_rr(Op::Punpckhwd, d, s); }
void Assembler::punpckhdq(uint8_t d, uint8_t s) { mmx_rr(Op::Punpckhdq, d, s); }

void Assembler::emms() {
  Inst in;
  in.op = Op::Emms;
  insts_.push_back(in);
}

// --- scalar ----------------------------------------------------------------------

void Assembler::li(uint8_t d, int32_t imm) { scalar_imm(Op::Li, d, imm); }
void Assembler::smov(uint8_t d, uint8_t s) { scalar_rr(Op::SMov, d, s); }
void Assembler::sadd(uint8_t d, uint8_t s) { scalar_rr(Op::SAdd, d, s); }
void Assembler::saddi(uint8_t d, int32_t imm) { scalar_imm(Op::SAddi, d, imm); }
void Assembler::ssub(uint8_t d, uint8_t s) { scalar_rr(Op::SSub, d, s); }
void Assembler::ssubi(uint8_t d, int32_t imm) { scalar_imm(Op::SSubi, d, imm); }
void Assembler::smul(uint8_t d, uint8_t s) { scalar_rr(Op::SMul, d, s); }

void Assembler::sshli(uint8_t d, uint8_t sh) {
  check_gp(d);
  Inst in;
  in.op = Op::SShli;
  in.dst = d;
  in.imm8 = sh;
  insts_.push_back(in);
}

void Assembler::sshri(uint8_t d, uint8_t sh) {
  check_gp(d);
  Inst in;
  in.op = Op::SShri;
  in.dst = d;
  in.imm8 = sh;
  insts_.push_back(in);
}

void Assembler::ssrai(uint8_t d, uint8_t sh) {
  check_gp(d);
  Inst in;
  in.op = Op::SSrai;
  in.dst = d;
  in.imm8 = sh;
  insts_.push_back(in);
}

void Assembler::sand(uint8_t d, uint8_t s) { scalar_rr(Op::SAnd, d, s); }
void Assembler::sor(uint8_t d, uint8_t s) { scalar_rr(Op::SOr, d, s); }
void Assembler::sxor(uint8_t d, uint8_t s) { scalar_rr(Op::SXor, d, s); }

void Assembler::ld16(uint8_t d, uint8_t base, int32_t disp) {
  check_gp(d);
  check_gp(base);
  Inst in;
  in.op = Op::SLoad16;
  in.dst = d;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::ld32(uint8_t d, uint8_t base, int32_t disp) {
  check_gp(d);
  check_gp(base);
  Inst in;
  in.op = Op::SLoad32;
  in.dst = d;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::ld64(uint8_t d, uint8_t base, int32_t disp) {
  check_gp(d);
  check_gp(base);
  Inst in;
  in.op = Op::SLoad64;
  in.dst = d;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::st16(uint8_t base, int32_t disp, uint8_t s) {
  check_gp(s);
  check_gp(base);
  Inst in;
  in.op = Op::SStore16;
  in.src = s;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::st32(uint8_t base, int32_t disp, uint8_t s) {
  check_gp(s);
  check_gp(base);
  Inst in;
  in.op = Op::SStore32;
  in.src = s;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

void Assembler::st64(uint8_t base, int32_t disp, uint8_t s) {
  check_gp(s);
  check_gp(base);
  Inst in;
  in.op = Op::SStore64;
  in.src = s;
  in.base = base;
  in.disp = disp;
  insts_.push_back(in);
}

// --- control ------------------------------------------------------------------------

void Assembler::jmp(const std::string& lbl) { branch(Op::Jmp, 0, lbl); }
void Assembler::jnz(uint8_t r, const std::string& lbl) {
  branch(Op::Jnz, r, lbl);
}
void Assembler::jz(uint8_t r, const std::string& lbl) {
  branch(Op::Jz, r, lbl);
}
void Assembler::loopnz(uint8_t r, const std::string& lbl) {
  branch(Op::Loopnz, r, lbl);
}

void Assembler::nop() {
  Inst in;
  in.op = Op::Nop;
  insts_.push_back(in);
}

void Assembler::halt() {
  Inst in;
  in.op = Op::Halt;
  insts_.push_back(in);
}

void Assembler::emit(const Inst& in) { insts_.push_back(in); }

Program Assembler::take() {
  for (const auto& [index, lbl] : fixups_) {
    auto it = labels_.find(lbl);
    if (it == labels_.end()) {
      throw std::logic_error("undefined label: " + lbl);
    }
    insts_[index].target = it->second;
  }
  fixups_.clear();
  Program p(std::move(insts_), std::move(labels_));
  insts_ = {};
  labels_ = {};
  return p;
}

}  // namespace subword::isa
