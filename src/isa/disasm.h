// disasm.h — textual rendering of instructions and programs for traces,
// examples and debugging.
#pragma once

#include <string>

#include "isa/program.h"

namespace subword::isa {

// "paddw mm0, mm1", "movq mm2, [r3+16]", "loopnz r1, @5" ...
[[nodiscard]] std::string disassemble(const Inst& in);

// Full listing with instruction indices and label annotations.
[[nodiscard]] std::string disassemble(const Program& p);

}  // namespace subword::isa
