#include "isa/parse.h"

#include <cctype>
#include <cstdint>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "isa/opcodes.h"

namespace subword::isa {
namespace {

// One parsed operand.
struct Operand {
  enum class Kind { kMmx, kGp, kMem, kImm, kTarget };
  Kind kind;
  uint8_t reg = 0;    // kMmx/kGp register index, kMem base register
  int64_t value = 0;  // kImm immediate, kMem displacement, kTarget index
};

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

int64_t parse_int(const std::string& s, int line) {
  if (s.empty()) throw ParseError("empty integer", line);
  size_t pos = 0;
  int64_t v = 0;
  try {
    v = std::stoll(s, &pos, 10);
  } catch (const std::exception&) {
    throw ParseError("bad integer '" + s + "'", line);
  }
  if (pos != s.size()) throw ParseError("bad integer '" + s + "'", line);
  return v;
}

uint8_t parse_reg_index(const std::string& s, size_t prefix_len, int limit,
                        const char* what, int line) {
  const int64_t idx = parse_int(s.substr(prefix_len), line);
  if (idx < 0 || idx >= limit) {
    throw ParseError(std::string(what) + " register out of range: " + s,
                     line);
  }
  return static_cast<uint8_t>(idx);
}

Operand parse_operand(const std::string& raw, int line) {
  const std::string s = trim(raw);
  if (s.empty()) throw ParseError("empty operand", line);
  Operand op{};
  if (s.size() > 2 && s.front() == '[' && s.back() == ']') {
    // [rN], [rN+d], [rN-d]
    const std::string inner = s.substr(1, s.size() - 2);
    if (inner.size() < 2 || inner[0] != 'r') {
      throw ParseError("bad memory operand '" + s + "'", line);
    }
    size_t split = inner.find_first_of("+-", 1);
    op.kind = Operand::Kind::kMem;
    op.reg = parse_reg_index(inner.substr(0, split), 1, kNumGpRegs, "base",
                             line);
    if (split != std::string::npos) {
      std::string disp = inner.substr(split);
      if (disp[0] == '+') disp.erase(0, 1);
      op.value = parse_int(disp, line);
    }
    return op;
  }
  if (s[0] == '@') {
    op.kind = Operand::Kind::kTarget;
    op.value = parse_int(s.substr(1), line);
    return op;
  }
  if (s.size() > 2 && s[0] == 'm' && s[1] == 'm' &&
      std::isdigit(static_cast<unsigned char>(s[2]))) {
    op.kind = Operand::Kind::kMmx;
    op.reg = parse_reg_index(s, 2, kNumMmxRegs, "mmx", line);
    return op;
  }
  if (s.size() > 1 && s[0] == 'r' &&
      std::isdigit(static_cast<unsigned char>(s[1]))) {
    op.kind = Operand::Kind::kGp;
    op.reg = parse_reg_index(s, 1, kNumGpRegs, "gp", line);
    return op;
  }
  op.kind = Operand::Kind::kImm;
  op.value = parse_int(s, line);
  return op;
}

// Mnemonic -> candidate opcodes (movq/movd/shifts are shape-overloaded).
const std::unordered_map<std::string, std::vector<Op>>& mnemonic_table() {
  static const auto* table = [] {
    auto* t = new std::unordered_map<std::string, std::vector<Op>>;
    for (int i = 0; i < kOpCount; ++i) {
      const auto op = static_cast<Op>(i);
      (*t)[std::string(op_name(op))].push_back(op);
    }
    return t;
  }();
  return *table;
}

bool is_shift(Op op) {
  switch (op) {
    case Op::Psllw: case Op::Pslld: case Op::Psllq:
    case Op::Psrlw: case Op::Psrld: case Op::Psrlq:
    case Op::Psraw: case Op::Psrad:
      return true;
    default:
      return false;
  }
}

using Shape = std::vector<Operand::Kind>;

Shape shape_of(const std::vector<Operand>& ops) {
  Shape s;
  s.reserve(ops.size());
  for (const auto& o : ops) s.push_back(o.kind);
  return s;
}

// The operand shape each opcode disassembles to (kImm doubles as the
// immediate-count shift form).
Shape expected_shape(Op op) {
  using K = Operand::Kind;
  switch (op) {
    case Op::MovqRR:
      return {K::kMmx, K::kMmx};
    case Op::MovqLoad:
    case Op::MovdLoad:
      return {K::kMmx, K::kMem};
    case Op::MovqStore:
    case Op::MovdStore:
      return {K::kMem, K::kMmx};
    case Op::MovdToMmx:
      return {K::kMmx, K::kGp};
    case Op::MovdFromMmx:
      return {K::kGp, K::kMmx};
    case Op::Emms:
    case Op::Nop:
    case Op::Halt:
      return {};
    case Op::Li:
    case Op::SAddi:
    case Op::SSubi:
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
      return {K::kGp, K::kImm};
    case Op::SMov: case Op::SAdd: case Op::SSub: case Op::SMul:
    case Op::SAnd: case Op::SOr: case Op::SXor:
      return {K::kGp, K::kGp};
    case Op::SLoad16: case Op::SLoad32: case Op::SLoad64:
      return {K::kGp, K::kMem};
    case Op::SStore16: case Op::SStore32: case Op::SStore64:
      return {K::kMem, K::kGp};
    case Op::Jmp:
      return {K::kTarget};
    case Op::Jnz: case Op::Jz: case Op::Loopnz:
      return {K::kGp, K::kTarget};
    default:
      // Two-operand MMX data op (shifts have a second, imm-count shape
      // handled by the caller).
      return {K::kMmx, K::kMmx};
  }
}

Inst build_inst(Op op, const std::vector<Operand>& ops, int line) {
  Inst in;
  in.op = op;
  using K = Operand::Kind;
  const Shape got = shape_of(ops);
  if (is_shift(op) && got == Shape{K::kMmx, K::kImm}) {
    // Immediate-count shift form.
    const int64_t count = ops[1].value;
    if (count < 0 || count > 255) {
      throw ParseError("shift count out of range", line);
    }
    in.dst = ops[0].reg;
    in.src_is_imm = true;
    in.imm8 = static_cast<uint8_t>(count);
    return in;
  }
  if (got != expected_shape(op)) {
    throw ParseError("operand shape does not match '" +
                         std::string(op_name(op)) + "'",
                     line);
  }
  auto imm32 = [&](int64_t v) {
    if (v < INT32_MIN || v > INT32_MAX) {
      throw ParseError("immediate out of range", line);
    }
    return static_cast<int32_t>(v);
  };
  switch (op) {
    case Op::MovqLoad:
    case Op::MovdLoad:
      in.dst = ops[0].reg;
      in.base = ops[1].reg;
      in.disp = imm32(ops[1].value);
      break;
    case Op::MovqStore:
    case Op::MovdStore:
      in.base = ops[0].reg;
      in.disp = imm32(ops[0].value);
      in.src = ops[1].reg;
      break;
    case Op::Emms:
    case Op::Nop:
    case Op::Halt:
      break;
    case Op::Li:
    case Op::SAddi:
    case Op::SSubi:
      in.dst = ops[0].reg;
      in.disp = imm32(ops[1].value);
      break;
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
      if (ops[1].value < 0 || ops[1].value > 255) {
        throw ParseError("shift count out of range", line);
      }
      in.dst = ops[0].reg;
      in.imm8 = static_cast<uint8_t>(ops[1].value);
      break;
    case Op::SLoad16: case Op::SLoad32: case Op::SLoad64:
      in.dst = ops[0].reg;
      in.base = ops[1].reg;
      in.disp = imm32(ops[1].value);
      break;
    case Op::SStore16: case Op::SStore32: case Op::SStore64:
      in.base = ops[0].reg;
      in.disp = imm32(ops[0].value);
      in.src = ops[1].reg;
      break;
    case Op::Jmp:
      in.target = imm32(ops[0].value);
      break;
    case Op::Jnz: case Op::Jz: case Op::Loopnz:
      in.src = ops[0].reg;
      in.target = imm32(ops[1].value);
      break;
    default:
      // MovqRR / MovdToMmx / MovdFromMmx / register-count shifts / the
      // two-operand MMX data ops all read (dst, src) in listing order.
      in.dst = ops[0].reg;
      in.src = ops[1].reg;
      break;
  }
  return in;
}

Inst parse_inst_line(const std::string& text, int line) {
  const std::string s = trim(text);
  if (s.empty()) throw ParseError("empty instruction", line);
  const size_t sp = s.find_first_of(" \t");
  const std::string mnemonic = s.substr(0, sp);
  std::vector<Operand> ops;
  if (sp != std::string::npos) {
    const std::string rest = s.substr(sp + 1);
    std::string field;
    std::istringstream is(rest);
    while (std::getline(is, field, ',')) {
      if (!trim(field).empty()) ops.push_back(parse_operand(field, line));
    }
  }
  const auto& table = mnemonic_table();
  const auto it = table.find(mnemonic);
  if (it == table.end()) {
    throw ParseError("unknown mnemonic '" + mnemonic + "'", line);
  }
  const Shape got = shape_of(ops);
  for (const Op op : it->second) {
    using K = Operand::Kind;
    if (got == expected_shape(op) ||
        (is_shift(op) && got == Shape{K::kMmx, K::kImm})) {
      return build_inst(op, ops, line);
    }
  }
  throw ParseError("no '" + mnemonic + "' form takes these operands", line);
}

}  // namespace

Inst parse_inst(const std::string& text) { return parse_inst_line(text, 1); }

Program parse_program(const std::string& listing) {
  std::vector<Inst> insts;
  std::unordered_map<std::string, int32_t> labels;
  std::istringstream is(listing);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    std::string s = trim(raw);
    if (s.empty()) continue;
    if (s.back() == ':') {
      // Either a "label:" line or a bare index prefix; an all-digit name
      // with nothing after the colon is treated as a label (the
      // disassembler never emits a bare index line).
      const std::string name = trim(s.substr(0, s.size() - 1));
      if (name.empty()) throw ParseError("empty label", lineno);
      if (!labels.emplace(name, static_cast<int32_t>(insts.size())).second) {
        throw ParseError("duplicate label '" + name + "'", lineno);
      }
      continue;
    }
    // Strip the "N:" index prefix the full-listing disassembler emits.
    const size_t colon = s.find(':');
    if (colon != std::string::npos) {
      const std::string head = trim(s.substr(0, colon));
      const bool all_digits =
          !head.empty() &&
          head.find_first_not_of("0123456789") == std::string::npos;
      if (all_digits) s = trim(s.substr(colon + 1));
    }
    if (s.empty()) throw ParseError("instruction expected", lineno);
    insts.push_back(parse_inst_line(s, lineno));
  }
  // Validate branch targets against the assembled length.
  for (size_t i = 0; i < insts.size(); ++i) {
    if (is_branch_op(insts[i].op)) {
      if (insts[i].target < 0 ||
          static_cast<size_t>(insts[i].target) >= insts.size()) {
        throw ParseError("branch target @" + std::to_string(insts[i].target) +
                             " out of range",
                         static_cast<int>(i) + 1);
      }
    }
  }
  return Program(std::move(insts), std::move(labels));
}

}  // namespace subword::isa
