#include "isa/disasm.h"

#include <sstream>

namespace subword::isa {
namespace {

std::string mm(uint8_t r) { return "mm" + std::to_string(r); }
std::string gp(uint8_t r) { return "r" + std::to_string(r); }

std::string mem(uint8_t base, int32_t disp) {
  std::ostringstream os;
  os << "[" << gp(base);
  if (disp > 0) os << "+" << disp;
  if (disp < 0) os << disp;
  os << "]";
  return os.str();
}

}  // namespace

std::string disassemble(const Inst& in) {
  const auto& info = op_info(in.op);
  std::ostringstream os;
  os << info.name << " ";
  switch (in.op) {
    case Op::MovqRR:
      os << mm(in.dst) << ", " << mm(in.src);
      break;
    case Op::MovqLoad:
    case Op::MovdLoad:
      os << mm(in.dst) << ", " << mem(in.base, in.disp);
      break;
    case Op::MovqStore:
    case Op::MovdStore:
      os << mem(in.base, in.disp) << ", " << mm(in.src);
      break;
    case Op::MovdToMmx:
      os << mm(in.dst) << ", " << gp(in.src);
      break;
    case Op::MovdFromMmx:
      os << gp(in.dst) << ", " << mm(in.src);
      break;
    case Op::Psllw: case Op::Pslld: case Op::Psllq:
    case Op::Psrlw: case Op::Psrld: case Op::Psrlq:
    case Op::Psraw: case Op::Psrad:
      os << mm(in.dst) << ", ";
      if (in.src_is_imm) {
        os << static_cast<int>(in.imm8);
      } else {
        os << mm(in.src);
      }
      break;
    case Op::Emms:
    case Op::Nop:
    case Op::Halt:
      break;
    case Op::Li:
    case Op::SAddi:
    case Op::SSubi:
      os << gp(in.dst) << ", " << in.disp;
      break;
    case Op::SShli:
    case Op::SShri:
    case Op::SSrai:
      os << gp(in.dst) << ", " << static_cast<int>(in.imm8);
      break;
    case Op::SMov: case Op::SAdd: case Op::SSub: case Op::SMul:
    case Op::SAnd: case Op::SOr: case Op::SXor:
      os << gp(in.dst) << ", " << gp(in.src);
      break;
    case Op::SLoad16: case Op::SLoad32: case Op::SLoad64:
      os << gp(in.dst) << ", " << mem(in.base, in.disp);
      break;
    case Op::SStore16: case Op::SStore32: case Op::SStore64:
      os << mem(in.base, in.disp) << ", " << gp(in.src);
      break;
    case Op::Jmp:
      os << "@" << in.target;
      break;
    case Op::Jnz: case Op::Jz: case Op::Loopnz:
      os << gp(in.src) << ", @" << in.target;
      break;
    default:
      // Two-operand MMX (arithmetic / logic / compare / pack / unpack).
      os << mm(in.dst) << ", " << mm(in.src);
      break;
  }
  auto s = os.str();
  while (!s.empty() && s.back() == ' ') s.pop_back();
  return s;
}

std::string disassemble(const Program& p) {
  std::ostringstream os;
  for (size_t i = 0; i < p.size(); ++i) {
    const auto lbl = p.label_at(static_cast<int32_t>(i));
    if (!lbl.empty()) os << lbl << ":\n";
    os << "  " << i << ":\t" << disassemble(p.at(i)) << "\n";
  }
  return os.str();
}

}  // namespace subword::isa
