// assembler.h — builder API for simulated programs.
//
// Kernels are written against this interface in the style of the paper's
// pseudo-assembly:
//
//   Assembler a;
//   a.li(R1, 150);
//   a.label("loop");
//   a.movq_load(MM0, R2, 0);
//   a.pmaddwd(MM0, MM1);
//   a.loopnz(R1, "loop");
//   a.halt();
//   Program p = a.take();
//
// Forward references to labels are allowed and patched at take().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/program.h"

namespace subword::isa {

class Assembler {
 public:
  // --- label handling -------------------------------------------------------
  void label(const std::string& name);

  // --- MMX data movement ----------------------------------------------------
  void movq(uint8_t dst_mm, uint8_t src_mm);               // register copy
  void movq_load(uint8_t dst_mm, uint8_t base_gp, int32_t disp);
  void movq_store(uint8_t base_gp, int32_t disp, uint8_t src_mm);
  void movd_load(uint8_t dst_mm, uint8_t base_gp, int32_t disp);
  void movd_store(uint8_t base_gp, int32_t disp, uint8_t src_mm);
  void movd_to_mmx(uint8_t dst_mm, uint8_t src_gp);
  void movd_from_mmx(uint8_t dst_gp, uint8_t src_mm);

  // --- MMX packed arithmetic (dst op= src) -----------------------------------
  void paddb(uint8_t d, uint8_t s);
  void paddw(uint8_t d, uint8_t s);
  void paddd(uint8_t d, uint8_t s);
  void psubb(uint8_t d, uint8_t s);
  void psubw(uint8_t d, uint8_t s);
  void psubd(uint8_t d, uint8_t s);
  void paddsb(uint8_t d, uint8_t s);
  void paddsw(uint8_t d, uint8_t s);
  void paddusb(uint8_t d, uint8_t s);
  void paddusw(uint8_t d, uint8_t s);
  void psubsb(uint8_t d, uint8_t s);
  void psubsw(uint8_t d, uint8_t s);
  void psubusb(uint8_t d, uint8_t s);
  void psubusw(uint8_t d, uint8_t s);
  void pmullw(uint8_t d, uint8_t s);
  void pmulhw(uint8_t d, uint8_t s);
  void pmaddwd(uint8_t d, uint8_t s);
  void pcmpeqb(uint8_t d, uint8_t s);
  void pcmpeqw(uint8_t d, uint8_t s);
  void pcmpeqd(uint8_t d, uint8_t s);
  void pcmpgtb(uint8_t d, uint8_t s);
  void pcmpgtw(uint8_t d, uint8_t s);
  void pcmpgtd(uint8_t d, uint8_t s);
  void pand(uint8_t d, uint8_t s);
  void pandn(uint8_t d, uint8_t s);
  void por(uint8_t d, uint8_t s);
  void pxor(uint8_t d, uint8_t s);

  // --- MMX shifts (immediate-count and register-count forms) ----------------
  void psllw(uint8_t d, uint8_t count_imm);
  void pslld(uint8_t d, uint8_t count_imm);
  void psllq(uint8_t d, uint8_t count_imm);
  void psrlw(uint8_t d, uint8_t count_imm);
  void psrld(uint8_t d, uint8_t count_imm);
  void psrlq(uint8_t d, uint8_t count_imm);
  void psraw(uint8_t d, uint8_t count_imm);
  void psrad(uint8_t d, uint8_t count_imm);
  void psllw_reg(uint8_t d, uint8_t count_mm);
  void psrlq_reg(uint8_t d, uint8_t count_mm);

  // --- MMX pack / unpack ------------------------------------------------------
  void packsswb(uint8_t d, uint8_t s);
  void packssdw(uint8_t d, uint8_t s);
  void packuswb(uint8_t d, uint8_t s);
  void punpcklbw(uint8_t d, uint8_t s);
  void punpcklwd(uint8_t d, uint8_t s);
  void punpckldq(uint8_t d, uint8_t s);
  void punpckhbw(uint8_t d, uint8_t s);
  void punpckhwd(uint8_t d, uint8_t s);
  void punpckhdq(uint8_t d, uint8_t s);

  void emms();

  // --- scalar -----------------------------------------------------------------
  void li(uint8_t d, int32_t imm);
  void smov(uint8_t d, uint8_t s);
  void sadd(uint8_t d, uint8_t s);
  void saddi(uint8_t d, int32_t imm);
  void ssub(uint8_t d, uint8_t s);
  void ssubi(uint8_t d, int32_t imm);
  void smul(uint8_t d, uint8_t s);
  void sshli(uint8_t d, uint8_t sh);
  void sshri(uint8_t d, uint8_t sh);
  void ssrai(uint8_t d, uint8_t sh);
  void sand(uint8_t d, uint8_t s);
  void sor(uint8_t d, uint8_t s);
  void sxor(uint8_t d, uint8_t s);

  void ld16(uint8_t d, uint8_t base, int32_t disp);
  void ld32(uint8_t d, uint8_t base, int32_t disp);
  void ld64(uint8_t d, uint8_t base, int32_t disp);
  void st16(uint8_t base, int32_t disp, uint8_t s);
  void st32(uint8_t base, int32_t disp, uint8_t s);
  void st64(uint8_t base, int32_t disp, uint8_t s);

  // --- control ------------------------------------------------------------------
  void jmp(const std::string& label);
  void jnz(uint8_t reg, const std::string& label);
  void jz(uint8_t reg, const std::string& label);
  void loopnz(uint8_t reg, const std::string& label);
  void nop();
  void halt();

  // Append a raw instruction (used by program transforms).
  void emit(const Inst& in);

  [[nodiscard]] size_t size() const { return insts_.size(); }

  // Finalize: patch label references; throws std::logic_error on undefined
  // labels. Leaves the assembler empty.
  [[nodiscard]] Program take();

 private:
  void mmx_rr(Op op, uint8_t d, uint8_t s);
  void mmx_shift_imm(Op op, uint8_t d, uint8_t count);
  void mmx_shift_reg(Op op, uint8_t d, uint8_t count_mm);
  void scalar_rr(Op op, uint8_t d, uint8_t s);
  void scalar_imm(Op op, uint8_t d, int32_t imm);
  void branch(Op op, uint8_t reg, const std::string& label);

  std::vector<Inst> insts_;
  std::unordered_map<std::string, int32_t> labels_;
  // Unresolved branch fixups: instruction index -> label name.
  std::vector<std::pair<size_t, std::string>> fixups_;
};

}  // namespace subword::isa
