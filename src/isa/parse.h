// parse.h — textual assembly parsing, the inverse of disasm.h.
//
// Accepts the exact listing format disassemble() emits — optional
// "label:" lines, optional "N:" index prefixes, mnemonic + comma-separated
// operands — so a disassembled program (or a fuzz reproducer dumped from
// one) can be re-assembled bit-identically: for every well-formed Program
// p, parse_program(disassemble(p)) reproduces p's instruction vector and
// label placement exactly (the round-trip property test_isa pins down over
// generated corpora).
#pragma once

#include <stdexcept>
#include <string>

#include "isa/program.h"

namespace subword::isa {

// A line that cannot be parsed. `line()` is 1-based within the input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, int line)
      : std::runtime_error("parse error at line " + std::to_string(line) +
                           ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_ = 0;
};

// Parse one instruction ("paddw mm0, mm1", "movq mm2, [r3+16]",
// "loopnz r1, @5", ...). Branch targets use the "@N" absolute-index form
// the disassembler emits. Throws ParseError on malformed input.
[[nodiscard]] Inst parse_inst(const std::string& text);

// Parse a full listing: instruction per line, blank lines skipped,
// "name:" label lines recorded, "N:" index prefixes (with optional
// leading whitespace and a tab after the colon) ignored. Throws
// ParseError on malformed input or a duplicate label name.
[[nodiscard]] Program parse_program(const std::string& listing);

}  // namespace subword::isa
