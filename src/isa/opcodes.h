// opcodes.h — instruction set of the simulated machine.
//
// The MMX side is the Pentium MMX data-processing subset described in the
// paper's §2 (Peleg & Weiser encoding names). The scalar side is a small
// RISC-like integer pipe: the paper's kernels only need loop control,
// address arithmetic and scalar multiply-accumulate, so we model those
// directly rather than full x86 decode (documented substitution; the cycle
// accounting follows Pentium U/V pairing rules either way).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace subword::isa {

enum class Op : uint8_t {
  // --- MMX data movement ---
  MovqRR,    // movq mm, mm          (register copy; classified permutation)
  MovqLoad,  // movq mm, [base+disp]
  MovqStore, // movq [base+disp], mm
  MovdLoad,  // movd mm, [base+disp]   (low 32 bits, upper zeroed)
  MovdStore, // movd [base+disp], mm   (low 32 bits)
  MovdToMmx, // movd mm, gp            (low 32 bits, upper zeroed)
  MovdFromMmx, // movd gp, mm          (low 32 bits, zero-extended)

  // --- MMX wrapping add/sub ---
  Paddb, Paddw, Paddd,
  Psubb, Psubw, Psubd,
  // --- MMX saturating add/sub ---
  Paddsb, Paddsw, Paddusb, Paddusw,
  Psubsb, Psubsw, Psubusb, Psubusw,

  // --- MMX multiply ---
  Pmullw, Pmulhw, Pmaddwd,

  // --- MMX compare ---
  Pcmpeqb, Pcmpeqw, Pcmpeqd,
  Pcmpgtb, Pcmpgtw, Pcmpgtd,

  // --- MMX logical ---
  Pand, Pandn, Por, Pxor,

  // --- MMX shift (by immediate or by register count) ---
  Psllw, Pslld, Psllq,
  Psrlw, Psrld, Psrlq,
  Psraw, Psrad,

  // --- MMX pack / unpack ---
  Packsswb, Packssdw, Packuswb,
  Punpcklbw, Punpcklwd, Punpckldq,
  Punpckhbw, Punpckhwd, Punpckhdq,

  Emms,

  // --- scalar integer pipe ---
  Li,     // gp <- sign-extended imm32
  SMov,   // gp <- gp
  SAdd,   // gp += gp
  SAddi,  // gp += imm32
  SSub,   // gp -= gp
  SSubi,  // gp -= imm32
  SMul,   // gp *= gp  (long latency)
  SShli,  // gp <<= imm8
  SShri,  // gp >>= imm8 (logical)
  SSrai,  // gp >>= imm8 (arithmetic)
  SAnd, SOr, SXor,

  // --- scalar memory ---
  SLoad16,  // gp <- sign-extended 16-bit [base+disp]
  SLoad32,  // gp <- sign-extended 32-bit [base+disp]
  SLoad64,  // gp <- 64-bit [base+disp]
  SStore16, SStore32, SStore64,

  // --- control ---
  Jmp,     // unconditional
  Jnz,     // jump if gp != 0
  Jz,      // jump if gp == 0
  Loopnz,  // gp -= 1; jump if gp != 0   (x86 LOOP-style fused loop branch)
  Nop,
  Halt,
};

inline constexpr int kOpCount = static_cast<int>(Op::Halt) + 1;

// Which execution resource an instruction occupies. The Pentium MMX has a
// single multiplier and a single shift/pack unit shared between the U and V
// pipes; memory accesses go through the U pipe only (paper §2).
enum class ExecClass : uint8_t {
  MmxAlu,      // packed add/sub/logic/compare — both pipes have one
  MmxMul,      // packed multiply — single shared multiplier
  MmxShift,    // shift/pack/unpack — single shared shifter
  MmxLoad,
  MmxStore,
  ScalarAlu,
  ScalarMul,
  ScalarLoad,
  ScalarStore,
  Branch,
  Control,     // nop/halt/emms
};

struct OpInfo {
  Op op;                  // for table self-validation
  std::string_view name;  // assembly mnemonic
  ExecClass cls;
  uint8_t latency;        // result-ready latency in cycles
  bool is_mmx;            // executes in the MMX pipes
  bool is_permutation;    // pack/unpack/reg-to-reg move: data alignment work
};

// Information lookup; total over all Op values.
[[nodiscard]] const OpInfo& op_info(Op op);

[[nodiscard]] inline std::string_view op_name(Op op) { return op_info(op).name; }

[[nodiscard]] inline bool is_mmx_op(Op op) { return op_info(op).is_mmx; }
[[nodiscard]] inline bool is_permutation_op(Op op) {
  return op_info(op).is_permutation;
}
[[nodiscard]] inline bool is_branch_op(Op op) {
  return op_info(op).cls == ExecClass::Branch;
}
[[nodiscard]] inline bool is_memory_op(Op op) {
  const auto c = op_info(op).cls;
  return c == ExecClass::MmxLoad || c == ExecClass::MmxStore ||
         c == ExecClass::ScalarLoad || c == ExecClass::ScalarStore;
}

}  // namespace subword::isa
