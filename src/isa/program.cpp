#include "isa/program.h"

namespace subword::isa {

std::string Program::label_at(int32_t index) const {
  for (const auto& [name, idx] : labels_) {
    if (idx == index) return name;
  }
  return {};
}

Program::StaticCounts Program::static_counts() const {
  StaticCounts c;
  for (const auto& in : insts_) {
    const auto& info = op_info(in.op);
    ++c.total;
    if (info.is_mmx) ++c.mmx;
    if (info.is_permutation) ++c.permutation;
    if (info.cls == ExecClass::Branch) ++c.branches;
  }
  return c;
}

}  // namespace subword::isa
