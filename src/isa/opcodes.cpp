#include "isa/opcodes.h"

#include <stdexcept>

namespace subword::isa {
namespace {

// Latencies (cycles): all MMX instructions execute in a single cycle except
// multiplies, which take three (paper §2). Scalar multiply is modeled at 10
// cycles (Pentium IMUL class); loads hit L1 in 1 cycle because the paper
// assumes code and data resident in L1.
constexpr uint8_t kMmx1 = 1;
constexpr uint8_t kMmxMul = 3;
constexpr uint8_t kScalarMul = 10;

constexpr std::array<OpInfo, kOpCount> kTable = {{
    // op, name, class, latency, is_mmx, is_permutation
    {Op::MovqRR, "movq", ExecClass::MmxAlu, kMmx1, true, true},
    {Op::MovqLoad, "movq", ExecClass::MmxLoad, kMmx1, true, false},
    {Op::MovqStore, "movq", ExecClass::MmxStore, kMmx1, true, false},
    {Op::MovdLoad, "movd", ExecClass::MmxLoad, kMmx1, true, false},
    {Op::MovdStore, "movd", ExecClass::MmxStore, kMmx1, true, false},
    {Op::MovdToMmx, "movd", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::MovdFromMmx, "movd", ExecClass::MmxAlu, kMmx1, true, false},

    {Op::Paddb, "paddb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddw, "paddw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddd, "paddd", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubb, "psubb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubw, "psubw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubd, "psubd", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddsb, "paddsb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddsw, "paddsw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddusb, "paddusb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Paddusw, "paddusw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubsb, "psubsb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubsw, "psubsw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubusb, "psubusb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Psubusw, "psubusw", ExecClass::MmxAlu, kMmx1, true, false},

    {Op::Pmullw, "pmullw", ExecClass::MmxMul, kMmxMul, true, false},
    {Op::Pmulhw, "pmulhw", ExecClass::MmxMul, kMmxMul, true, false},
    {Op::Pmaddwd, "pmaddwd", ExecClass::MmxMul, kMmxMul, true, false},

    {Op::Pcmpeqb, "pcmpeqb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pcmpeqw, "pcmpeqw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pcmpeqd, "pcmpeqd", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pcmpgtb, "pcmpgtb", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pcmpgtw, "pcmpgtw", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pcmpgtd, "pcmpgtd", ExecClass::MmxAlu, kMmx1, true, false},

    {Op::Pand, "pand", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pandn, "pandn", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Por, "por", ExecClass::MmxAlu, kMmx1, true, false},
    {Op::Pxor, "pxor", ExecClass::MmxAlu, kMmx1, true, false},

    {Op::Psllw, "psllw", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Pslld, "pslld", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psllq, "psllq", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psrlw, "psrlw", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psrld, "psrld", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psrlq, "psrlq", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psraw, "psraw", ExecClass::MmxShift, kMmx1, true, false},
    {Op::Psrad, "psrad", ExecClass::MmxShift, kMmx1, true, false},

    {Op::Packsswb, "packsswb", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Packssdw, "packssdw", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Packuswb, "packuswb", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpcklbw, "punpcklbw", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpcklwd, "punpcklwd", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpckldq, "punpckldq", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpckhbw, "punpckhbw", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpckhwd, "punpckhwd", ExecClass::MmxShift, kMmx1, true, true},
    {Op::Punpckhdq, "punpckhdq", ExecClass::MmxShift, kMmx1, true, true},

    {Op::Emms, "emms", ExecClass::Control, kMmx1, true, false},

    {Op::Li, "li", ExecClass::ScalarAlu, 1, false, false},
    {Op::SMov, "mov", ExecClass::ScalarAlu, 1, false, false},
    {Op::SAdd, "add", ExecClass::ScalarAlu, 1, false, false},
    {Op::SAddi, "addi", ExecClass::ScalarAlu, 1, false, false},
    {Op::SSub, "sub", ExecClass::ScalarAlu, 1, false, false},
    {Op::SSubi, "subi", ExecClass::ScalarAlu, 1, false, false},
    {Op::SMul, "mul", ExecClass::ScalarMul, kScalarMul, false, false},
    {Op::SShli, "shli", ExecClass::ScalarAlu, 1, false, false},
    {Op::SShri, "shri", ExecClass::ScalarAlu, 1, false, false},
    {Op::SSrai, "srai", ExecClass::ScalarAlu, 1, false, false},
    {Op::SAnd, "and", ExecClass::ScalarAlu, 1, false, false},
    {Op::SOr, "or", ExecClass::ScalarAlu, 1, false, false},
    {Op::SXor, "xor", ExecClass::ScalarAlu, 1, false, false},

    {Op::SLoad16, "ld16", ExecClass::ScalarLoad, 1, false, false},
    {Op::SLoad32, "ld32", ExecClass::ScalarLoad, 1, false, false},
    {Op::SLoad64, "ld64", ExecClass::ScalarLoad, 1, false, false},
    {Op::SStore16, "st16", ExecClass::ScalarStore, 1, false, false},
    {Op::SStore32, "st32", ExecClass::ScalarStore, 1, false, false},
    {Op::SStore64, "st64", ExecClass::ScalarStore, 1, false, false},

    {Op::Jmp, "jmp", ExecClass::Branch, 1, false, false},
    {Op::Jnz, "jnz", ExecClass::Branch, 1, false, false},
    {Op::Jz, "jz", ExecClass::Branch, 1, false, false},
    {Op::Loopnz, "loopnz", ExecClass::Branch, 1, false, false},
    {Op::Nop, "nop", ExecClass::Control, 1, false, false},
    {Op::Halt, "halt", ExecClass::Control, 1, false, false},
}};

constexpr bool table_is_consistent() {
  for (int i = 0; i < kOpCount; ++i) {
    if (kTable[static_cast<size_t>(i)].op != static_cast<Op>(i)) return false;
  }
  return true;
}
static_assert(table_is_consistent(),
              "kTable entries must appear in Op declaration order");

}  // namespace

const OpInfo& op_info(Op op) {
  const auto idx = static_cast<size_t>(op);
  if (idx >= kTable.size()) throw std::out_of_range("op_info: bad opcode");
  return kTable[idx];
}

}  // namespace subword::isa
