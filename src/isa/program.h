// program.h — an assembled program: instruction vector plus label metadata.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/inst.h"

namespace subword::isa {

class Program {
 public:
  Program() = default;
  Program(std::vector<Inst> insts,
          std::unordered_map<std::string, int32_t> labels)
      : insts_(std::move(insts)), labels_(std::move(labels)) {}

  [[nodiscard]] const std::vector<Inst>& insts() const { return insts_; }
  [[nodiscard]] std::vector<Inst>& insts() { return insts_; }
  [[nodiscard]] size_t size() const { return insts_.size(); }
  [[nodiscard]] bool empty() const { return insts_.empty(); }
  [[nodiscard]] const Inst& at(size_t i) const { return insts_.at(i); }

  [[nodiscard]] const std::unordered_map<std::string, int32_t>& labels()
      const {
    return labels_;
  }

  // Label at instruction index i, empty string if none (for disassembly).
  [[nodiscard]] std::string label_at(int32_t index) const;

  // Static instruction counts by category (used by reports and tests).
  struct StaticCounts {
    int total = 0;
    int mmx = 0;
    int permutation = 0;
    int branches = 0;
  };
  [[nodiscard]] StaticCounts static_counts() const;

 private:
  std::vector<Inst> insts_;
  std::unordered_map<std::string, int32_t> labels_;
};

}  // namespace subword::isa
