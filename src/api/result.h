// result.h — the facade's error convention: every fallible api:: call
// returns Result<T>, an expected-style value-or-ApiError sum type.
//
// The layers below keep their idioms (exceptions in kernels/sim for
// programmer errors, kind-tagged JobResults in runtime); the facade is
// where both are converted into one typed, non-throwing surface. The only
// throw left at this level is Result::value() on an error Result — a
// caller bug, reported via std::logic_error with the error's own message.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace subword::api {

enum class ErrorCode {
  kUnknownKernel,        // name not in the registry
  kInvalidArgument,      // bad knob value (repeats < 1, stage from another
                         // session, ...)
  kNoManualSpuVariant,   // SpuMode::Manual requested, kernel has none
  kBuffersUnsupported,   // kernel advertises no BufferSpec
  kBufferSizeMismatch,   // bound span size != the kernel's BufferSpec
  kTilingUnsupported,    // tile() requested but the kernel declares no tile
                         // geometry, or the bound frame does not tile
                         // (halo'd kernels need an exact fit; remainders
                         // must be whole units)
  kPipelineMismatch,     // stage N's output cannot feed stage N+1's input
  kBackendUnsupported,   // the requested execution backend cannot run this
                         // kernel (native lowering rejected the program)
  kSessionShutdown,      // submitted after Session::shutdown
  kOverloaded,           // shed by admission control: the engine queue is
                         // past its shed threshold (or blocked too long on
                         // a full bounded queue) — retry later, the
                         // request itself was well-formed
  kCancelled,            // dropped by a cancel while queued
  kExecutionFailed,      // preparation or simulation failed
  kVerificationFailed,   // outputs did not match the scalar reference
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnknownKernel: return "UnknownKernel";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kNoManualSpuVariant: return "NoManualSpuVariant";
    case ErrorCode::kBuffersUnsupported: return "BuffersUnsupported";
    case ErrorCode::kBufferSizeMismatch: return "BufferSizeMismatch";
    case ErrorCode::kTilingUnsupported: return "TilingUnsupported";
    case ErrorCode::kPipelineMismatch: return "PipelineMismatch";
    case ErrorCode::kBackendUnsupported: return "BackendUnsupported";
    case ErrorCode::kSessionShutdown: return "SessionShutdown";
    case ErrorCode::kOverloaded: return "Overloaded";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kExecutionFailed: return "ExecutionFailed";
    case ErrorCode::kVerificationFailed: return "VerificationFailed";
  }
  return "UnknownError";
}

struct ApiError {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;  // human-readable cause
  std::string context;  // what was being done (kernel name, stage, ...)

  [[nodiscard]] std::string to_string() const {
    std::string s = api::to_string(code);
    s += ": ";
    s += message;
    if (!context.empty()) {
      s += " (";
      s += context;
      s += ")";
    }
    return s;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(ApiError error) : v_(std::move(error)) {}     // NOLINT(runtime/explicit)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  // Precondition: ok(). Violations throw std::logic_error carrying the
  // ApiError's rendered message — the one deliberate throw in the facade.
  [[nodiscard]] T& value() & { check(); return std::get<T>(v_); }
  [[nodiscard]] const T& value() const& { check(); return std::get<T>(v_); }
  [[nodiscard]] T&& value() && { check(); return std::get<T>(std::move(v_)); }

  // Precondition: !ok().
  [[nodiscard]] const ApiError& error() const {
    return std::get<ApiError>(v_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T&& operator*() && { return std::move(*this).value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!ok()) {
      throw std::logic_error("Result::value() on error: " +
                             std::get<ApiError>(v_).to_string());
    }
  }

  std::variant<T, ApiError> v_;
};

// For calls with no payload.
using Status = Result<std::monostate>;
inline Status ok_status() { return Status(std::monostate{}); }

}  // namespace subword::api
