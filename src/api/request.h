// request.h — the facade's fluent request builder.
//
//   Session session;
//   auto r = session.request("fir12").repeats(8)
//                   .spu(core::kConfigD).auto_orchestrate().run();
//
// A Request is cheap to copy and carries typed knobs only; every check —
// kernel name against the registry's KernelInfo descriptors, mode against
// the kernel's capabilities, buffer spans against its BufferSpec — happens
// at build()/submit() time and is reported through Result<T> instead of
// exceptions. The Request borrows its Session: it must not outlive it.
#pragma once

#include <cstdint>
#include <future>
#include <span>
#include <string>
#include <utility>

#include "api/result.h"
#include "runtime/batch_engine.h"

namespace subword::api {

class Session;

// Re-exported so facade users need not reach into kernels:: for the knob.
using ExecBackend = kernels::ExecBackend;

// What a finished request yields: the KernelRun (simulation stats,
// bit-exact verification flag, SPU counters, orchestration report when
// auto-orchestrated) plus the service-side economics of this execution.
struct Response {
  kernels::KernelRun run;
  bool cache_hit = false;   // preparation came from the orchestration cache
  uint64_t prepare_ns = 0;
  uint64_t execute_ns = 0;
  int worker = -1;
};

// A validated request in flight. Move-only; wait() resolves exactly once.
class Submitted {
 public:
  [[nodiscard]] Result<Response> wait();

 private:
  friend class Request;
  Submitted(std::future<runtime::JobResult> fut, std::string context)
      : fut_(std::move(fut)), context_(std::move(context)) {}

  std::future<runtime::JobResult> fut_;
  std::string context_;
};

class Request {
 public:
  // -- Knobs (fluent, each returns *this) ----------------------------------
  Request& repeats(int n);                       // problem-size knob, >= 1
  Request& baseline();                           // plain MMX, no SPU (default)
  Request& spu(const core::CrossbarConfig& cfg); // SPU on; mode stays Manual
                                                 // until auto_orchestrate()
  Request& manual_spu();                         // hand-written SPU variant
  Request& auto_orchestrate();                   // orchestrator over baseline
  Request& orchestrator(const core::OrchestratorOptions& opts);  // implies auto
  Request& pipeline_config(const sim::PipelineConfig& pc);

  // Execution backend: the cycle-level simulator (default — the only
  // backend with cycle statistics) or the native-SWAR trace executor
  // (bit-identical outputs, order-of-magnitude faster, cycle stats zero).
  // Kernels whose programs the lowering cannot prove data-independent
  // report kBackendUnsupported at build() time (KernelInfo::native_backend
  // enumerates support).
  Request& backend(ExecBackend b);

  // User-owned buffers (kernels advertising a BufferSpec only). The spans
  // view caller memory that must stay alive until the response arrives.
  Request& input(std::span<const uint8_t> bytes);
  Request& input(std::span<const int16_t> samples);
  Request& output(std::span<uint8_t> bytes);
  Request& output(std::span<int16_t> samples);

  // -- Terminal operations -------------------------------------------------
  // Validate every knob against the registry and assemble the runtime job.
  // This is where unknown kernels, repeats < 1, Manual mode without a
  // manual variant, and buffer-size mismatches are caught.
  [[nodiscard]] Result<runtime::KernelJob> build() const;

  // Validate, then enqueue on the Session's engine (async).
  [[nodiscard]] Result<Submitted> submit();

  // Validate, enqueue, and wait (sync convenience).
  [[nodiscard]] Result<Response> run();

  [[nodiscard]] const std::string& kernel_name() const { return kernel_; }

 private:
  friend class Session;
  friend class Pipeline;

  Request(Session* session, std::string kernel)
      : session_(session), kernel_(std::move(kernel)) {}

  Session* session_;
  std::string kernel_;
  int repeats_ = 1;
  bool use_spu_ = false;
  ExecBackend backend_ = ExecBackend::kSimulator;
  kernels::SpuMode mode_ = kernels::SpuMode::Manual;
  core::CrossbarConfig cfg_ = core::kConfigA;
  core::OrchestratorOptions opts_{};
  bool has_opts_ = false;
  sim::PipelineConfig pc_{};
  kernels::BufferBinding buffers_{};
};

namespace detail {
// Shared JobResult -> Result<Response> conversion (Submitted and Pipeline).
[[nodiscard]] Result<Response> to_response(runtime::JobResult r,
                                           const std::string& context);

// 16-bit lane spans reinterpreted as the byte spans BufferBinding carries.
[[nodiscard]] inline std::span<const uint8_t> as_byte_span(
    std::span<const int16_t> s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size_bytes()};
}
[[nodiscard]] inline std::span<uint8_t> as_writable_byte_span(
    std::span<int16_t> s) {
  return {reinterpret_cast<uint8_t*>(s.data()), s.size_bytes()};
}
}  // namespace detail

}  // namespace subword::api
