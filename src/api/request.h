// request.h — the facade's fluent request builder.
//
//   Session session;
//   auto r = session.request("fir12").repeats(8)
//                   .spu(core::kConfigD).auto_orchestrate().run();
//
// A Request is cheap to copy and carries typed knobs only; every check —
// kernel name against the registry's KernelInfo descriptors, mode against
// the kernel's capabilities, buffer spans against its BufferSpec — happens
// at build()/submit() time and is reported through Result<T> instead of
// exceptions. The Request borrows its Session: it must not outlive it.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "api/result.h"
#include "runtime/batch_engine.h"
#include "runtime/tiling.h"

namespace subword::api {

class Session;

// Re-exported so facade users need not reach into kernels:: for the knob.
using ExecBackend = kernels::ExecBackend;

// The planner's audit trail (runtime/planner.h): what was chosen and why.
using PlanSummary = runtime::PlanSummary;

// What a finished request yields: the KernelRun (simulation stats,
// bit-exact verification flag, SPU counters, orchestration report when
// auto-orchestrated) plus the service-side economics of this execution.
struct Response {
  kernels::KernelRun run;
  bool cache_hit = false;   // preparation came from the orchestration cache
  uint64_t prepare_ns = 0;
  uint64_t execute_ns = 0;
  int worker = -1;
  // For auto_plan() requests: the planner's decision and scoring (config,
  // mode, backend, blended score with its provenance — model, blended or
  // measured — the winner's observed history, full candidate field). Null
  // for explicitly-configured requests.
  std::shared_ptr<const PlanSummary> plan;
  // This request was sampled for exploration (Session::Options::
  // explore_rate): it executed the plan's runner-up shape to refresh its
  // measurement history. Outputs are still bit-exact; the stats fields
  // describe the runner-up execution while `plan` describes the winner.
  bool explored = false;

  // -- Fan-out economics (tile() requests; degenerate 1/1 otherwise) -------
  // How many engine jobs this one request became, how many of them
  // replayed the shared cached preparation (tiles - 1 when the shape was
  // cold, tiles when warm), and how many distinct workers the tiles
  // actually spread across. For tiled requests the scalar fields above
  // aggregate over the fan-out: prepare_ns/execute_ns are sums, cache_hit
  // is the conjunction, worker is -1 when tiles landed on more than one.
  size_t jobs_fanned_out = 1;
  size_t tile_cache_hits = 0;
  int workers_used = 1;

  // Simulator cycles, or nullopt when the execution backend has no cycle
  // model (native-SWAR). Prefer this over run.stats.cycles when mixing
  // backends: the raw field reads 0 there and poisons averages.
  [[nodiscard]] std::optional<uint64_t> cycles() const {
    return run.stats.cycles_opt();
  }
};

// A validated request in flight — one engine job, or a tiled fan-out of
// them. Move-only; wait() resolves exactly once. The caller's buffer spans
// must stay alive until wait() returns.
class Submitted {
 public:
  [[nodiscard]] Result<Response> wait();

 private:
  friend class Request;
  Submitted(std::future<runtime::JobResult> fut, std::string context)
      : fut_(std::move(fut)), context_(std::move(context)) {}
  Submitted(runtime::TiledSubmission sub, std::string context)
      : tiled_(std::move(sub)), context_(std::move(context)) {}

  std::future<runtime::JobResult> fut_;
  std::optional<runtime::TiledSubmission> tiled_;
  std::string context_;
};

class Request {
 public:
  // -- Knobs (fluent, each returns *this) ----------------------------------
  Request& repeats(int n);                       // problem-size knob, >= 1
  Request& baseline();                           // plain MMX, no SPU (default)
  Request& spu(const core::CrossbarConfig& cfg); // SPU on; mode stays Manual
                                                 // until auto_orchestrate()
  Request& manual_spu();                         // hand-written SPU variant
  Request& auto_orchestrate();                   // orchestrator over baseline
  Request& orchestrator(const core::OrchestratorOptions& opts);  // implies auto
  Request& pipeline_config(const sim::PipelineConfig& pc);

  // Let the cost-model planner (runtime/planner.h, docs/PLANNER.md) choose
  // the crossbar config, execution mode (baseline/manual/auto) and backend
  // for this kernel and repeat count. Mutually exclusive with the explicit
  // mode knobs above (baseline/spu/manual_spu/auto_orchestrate/
  // orchestrator) — combining them is a build()-time kInvalidArgument. An
  // explicit backend() call pins the backend and the planner decides only
  // config and mode. The decision arrives in Response::plan.
  Request& auto_plan();

  // Hardware budgets for the planner, in the paper's Table-1 units
  // (0.25um). Each implies auto_plan(); configurations that bust a budget
  // are excluded from the search.
  Request& area_budget_mm2(double mm2);  // crossbar + control memory area
  Request& max_delay_ns(double ns);      // crossbar delay ceiling

  // Execution backend: the cycle-level simulator (default — the only
  // backend with cycle statistics) or the native-SWAR trace executor
  // (bit-identical outputs, order-of-magnitude faster, cycle stats zero).
  // Kernels whose programs the lowering cannot prove data-independent
  // report kBackendUnsupported at build() time (KernelInfo::native_backend
  // enumerates support).
  Request& backend(ExecBackend b);

  // Tile the bound input frame across the engine: the request fans out as
  // one KernelJob per base tile (per the kernel's BufferSpec tile
  // geometry — stride, halo, unit granularity), every tile sharing the
  // same cached PreparedProgram, and the Response aggregates the fan-out
  // (see the economics fields). Requires a tileable kernel and a bound
  // input whose size plan_tiles accepts: any frame >= one base tile for
  // halo-free kernels (a trailing remainder must be a whole number of
  // units; it runs as a zero-padded tail tile), an exact `base + k*stride`
  // fit for halo'd ones. Violations are kTilingUnsupported at build().
  // The output, when bound, must be exactly the gathered frame-output
  // size. Note build()'s KernelJob then carries the *frame* spans — it
  // documents the request but is not directly engine-executable when the
  // frame is larger than one tile; submit() performs the fan-out.
  Request& tile();

  // User-owned buffers (kernels advertising a BufferSpec only). The spans
  // view caller memory that must stay alive until the response arrives.
  Request& input(std::span<const uint8_t> bytes);
  Request& input(std::span<const int16_t> samples);
  Request& output(std::span<uint8_t> bytes);
  Request& output(std::span<int16_t> samples);

  // -- Terminal operations -------------------------------------------------
  // Validate every knob against the registry and assemble the runtime job.
  // This is where unknown kernels, repeats < 1, Manual mode without a
  // manual variant, and buffer-size mismatches are caught.
  [[nodiscard]] Result<runtime::KernelJob> build() const;

  // Validate, then enqueue on the Session's engine (async).
  [[nodiscard]] Result<Submitted> submit();

  // Validate, enqueue, and wait (sync convenience).
  [[nodiscard]] Result<Response> run();

  [[nodiscard]] const std::string& kernel_name() const { return kernel_; }

 private:
  friend class Session;
  friend class Pipeline;

  Request(Session* session, std::string kernel)
      : session_(session), kernel_(std::move(kernel)) {}

  Session* session_;
  std::string kernel_;
  int repeats_ = 1;
  bool use_spu_ = false;
  ExecBackend backend_ = ExecBackend::kSimulator;
  kernels::SpuMode mode_ = kernels::SpuMode::Manual;
  core::CrossbarConfig cfg_ = core::kConfigA;
  core::OrchestratorOptions opts_{};
  bool has_opts_ = false;
  sim::PipelineConfig pc_{};
  kernels::BufferBinding buffers_{};
  bool tile_ = false;          // tile() called: submit() fans out per tile
  bool plan_ = false;          // auto_plan() / budgets called
  bool mode_set_ = false;      // an explicit mode knob was called
  bool backend_set_ = false;   // backend() was called (pins it under plan)
  double area_budget_mm2_ = 0;
  double max_delay_ns_ = 0;
};

namespace detail {
// Shared JobResult -> Result<Response> conversion (Submitted and Pipeline).
[[nodiscard]] Result<Response> to_response(runtime::JobResult r,
                                           const std::string& context);

// 16-bit lane spans reinterpreted as the byte spans BufferBinding carries.
[[nodiscard]] inline std::span<const uint8_t> as_byte_span(
    std::span<const int16_t> s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size_bytes()};
}
[[nodiscard]] inline std::span<uint8_t> as_writable_byte_span(
    std::span<int16_t> s) {
  return {reinterpret_cast<uint8_t*>(s.data()), s.size_bytes()};
}
}  // namespace detail

}  // namespace subword::api
