#include "api/session.h"

#include <utility>

namespace subword::api {

Session::Session(SessionOptions opts)
    : engine_(runtime::BatchEngineOptions{
          .workers = opts.workers,
          .queue_capacity = opts.queue_capacity,
          .cache = std::move(opts.cache),
          .shed_queue_depth = opts.shed_queue_depth,
          .shed_max_block_ns = opts.shed_max_block_ns,
          .explore_rate = opts.explore_rate}) {}

Session::~Session() = default;  // ~BatchEngine drains

Request Session::request(std::string kernel) {
  return Request(this, std::move(kernel));
}

Pipeline Session::pipeline() { return Pipeline(this); }

const std::vector<kernels::KernelInfo>& Session::kernels() const {
  return kernels::kernel_infos();
}

Result<kernels::KernelInfo> Session::kernel(std::string_view name) const {
  if (const auto* info = kernels::find_kernel_info(name)) {
    return *info;
  }
  return ApiError{ErrorCode::kUnknownKernel,
                  "no registered kernel named '" + std::string(name) + "'",
                  "Session::kernel"};
}

runtime::EngineStats Session::stats() const { return engine_.stats(); }

size_t Session::queue_depth() const { return engine_.queue_depth(); }

std::shared_ptr<runtime::OrchestrationCache> Session::shared_cache() const {
  return engine_.shared_cache();
}

int Session::workers() const { return engine_.workers(); }

void Session::shutdown() { engine_.shutdown(); }

}  // namespace subword::api
