#include "api/request.h"

#include <utility>

#include "api/session.h"
#include "kernels/registry.h"

namespace subword::api {

Request& Request::repeats(int n) {
  repeats_ = n;
  return *this;
}

Request& Request::baseline() {
  use_spu_ = false;
  mode_set_ = true;
  return *this;
}

Request& Request::spu(const core::CrossbarConfig& cfg) {
  use_spu_ = true;
  cfg_ = cfg;
  mode_set_ = true;
  return *this;
}

Request& Request::manual_spu() {
  use_spu_ = true;
  mode_ = kernels::SpuMode::Manual;
  mode_set_ = true;
  return *this;
}

Request& Request::auto_orchestrate() {
  use_spu_ = true;
  mode_ = kernels::SpuMode::Auto;
  mode_set_ = true;
  return *this;
}

Request& Request::orchestrator(const core::OrchestratorOptions& opts) {
  use_spu_ = true;
  mode_ = kernels::SpuMode::Auto;
  opts_ = opts;
  has_opts_ = true;
  mode_set_ = true;
  return *this;
}

Request& Request::auto_plan() {
  plan_ = true;
  return *this;
}

Request& Request::area_budget_mm2(double mm2) {
  plan_ = true;
  area_budget_mm2_ = mm2;
  return *this;
}

Request& Request::max_delay_ns(double ns) {
  plan_ = true;
  max_delay_ns_ = ns;
  return *this;
}

Request& Request::pipeline_config(const sim::PipelineConfig& pc) {
  pc_ = pc;
  return *this;
}

Request& Request::backend(ExecBackend b) {
  backend_ = b;
  backend_set_ = true;
  return *this;
}

Request& Request::tile() {
  tile_ = true;
  return *this;
}

Request& Request::input(std::span<const uint8_t> bytes) {
  buffers_.input = bytes;
  return *this;
}

Request& Request::input(std::span<const int16_t> samples) {
  buffers_.input = detail::as_byte_span(samples);
  return *this;
}

Request& Request::output(std::span<uint8_t> bytes) {
  buffers_.output = bytes;
  return *this;
}

Request& Request::output(std::span<int16_t> samples) {
  buffers_.output = detail::as_writable_byte_span(samples);
  return *this;
}

Result<runtime::KernelJob> Request::build() const {
  const std::string context = "request(" + kernel_ + ")";
  const auto* info = kernels::find_kernel_info(kernel_);
  if (info == nullptr) {
    return ApiError{ErrorCode::kUnknownKernel,
                    "no registered kernel named '" + kernel_ + "'", context};
  }
  if (repeats_ < 1) {
    return ApiError{ErrorCode::kInvalidArgument,
                    "repeats must be >= 1, got " + std::to_string(repeats_),
                    context};
  }
  if (plan_ && mode_set_) {
    return ApiError{ErrorCode::kInvalidArgument,
                    "auto_plan() replaces the explicit mode knobs "
                    "(baseline/spu/manual_spu/auto_orchestrate/"
                    "orchestrator); use one or the other",
                    context};
  }
  if (plan_) {
    if (area_budget_mm2_ < 0 || max_delay_ns_ < 0) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "planner budgets must be >= 0 (0 = unconstrained)",
                      context};
    }
    // A pinned backend is validated per *shape* by the planner itself
    // (executable_on restricts the search; plan_kernel throws a
    // LoweringError — surfaced as kBackendUnsupported — when no feasible
    // candidate can execute there). The coarse KernelInfo::native_backend
    // flag is deliberately not consulted here: it ANDs several shapes and
    // would reject kernels the planner could still plan natively.
  }
  if (!plan_ && use_spu_ && mode_ == kernels::SpuMode::Manual &&
      !info->has_manual_spu()) {
    return ApiError{ErrorCode::kNoManualSpuVariant,
                    "kernel has no hand-written SPU variant; use "
                    "auto_orchestrate()",
                    context};
  }
  // Native-backend support is validated for the *exact* knob combination,
  // not just the kernel: a config/mode whose lowering proof fails must be a
  // typed build-time error, never a surprise from deep inside prepare.
  if (!plan_ && backend_ == ExecBackend::kNativeSwar &&
      !info->native_supported(use_spu_, mode_, cfg_)) {
    std::string what = "kernel '" + info->name + "' cannot run ";
    what += use_spu_ ? (mode_ == kernels::SpuMode::Manual
                            ? "its manual SPU variant under config "
                            : "auto-orchestrated under config ")
                     : "as baseline under config ";
    what += cfg_.name;
    what += " on the native-SWAR backend; use the simulator backend";
    return ApiError{ErrorCode::kBackendUnsupported, std::move(what), context};
  }
  if (tile_) {
    if (!info->buffers.supported()) {
      return ApiError{ErrorCode::kBuffersUnsupported,
                      "kernel does not accept user-owned buffers", context};
    }
    if (buffers_.input.empty()) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "tile() needs a bound input frame to derive the tile "
                      "geometry from",
                      context};
    }
    std::string terr;
    const auto geom =
        runtime::plan_tiles(info->buffers, buffers_.input.size(), &terr);
    if (!geom) {
      return ApiError{ErrorCode::kTilingUnsupported, std::move(terr),
                      context};
    }
    if (!buffers_.output.empty() &&
        buffers_.output.size() != geom->frame_output_bytes) {
      return ApiError{
          ErrorCode::kBufferSizeMismatch,
          "output buffer is " + std::to_string(buffers_.output.size()) +
              " bytes, the gathered frame output is " +
              std::to_string(geom->frame_output_bytes),
          context};
    }
  } else if (!buffers_.empty()) {
    if (!info->buffers.supported()) {
      return ApiError{ErrorCode::kBuffersUnsupported,
                      "kernel does not accept user-owned buffers", context};
    }
    if (!buffers_.input.empty() &&
        buffers_.input.size() != info->buffers.input_bytes) {
      return ApiError{
          ErrorCode::kBufferSizeMismatch,
          "input buffer is " + std::to_string(buffers_.input.size()) +
              " bytes, kernel wants " +
              std::to_string(info->buffers.input_bytes),
          context};
    }
    if (!buffers_.output.empty() &&
        buffers_.output.size() != info->buffers.output_bytes) {
      return ApiError{
          ErrorCode::kBufferSizeMismatch,
          "output buffer is " + std::to_string(buffers_.output.size()) +
              " bytes, kernel produces " +
              std::to_string(info->buffers.output_bytes),
          context};
    }
  }

  runtime::KernelJob job;
  job.kernel = info->name;  // canonical registry spelling
  job.repeats = repeats_;
  job.use_spu = use_spu_;
  job.backend = backend_;
  job.mode = mode_;
  job.cfg = cfg_;
  if (has_opts_) job.opts = opts_;
  job.pc = pc_;
  job.buffers = buffers_;
  job.plan = plan_;
  job.area_budget_mm2 = area_budget_mm2_;
  job.max_delay_ns = max_delay_ns_;
  job.backend_pinned = plan_ && backend_set_;
  return job;
}

Result<Submitted> Request::submit() {
  auto job = build();
  if (!job.ok()) return job.error();
  const std::string context = "request(" + job->kernel + ")";
  if (tile_) {
    // build() validated the geometry; re-derive it and fan the frame out.
    // The prototype job sheds the frame spans — every tile binds its own
    // window inside submit_tiled.
    const auto* info = kernels::find_kernel_info(job->kernel);
    const auto geom =
        runtime::plan_tiles(info->buffers, job->buffers.input.size());
    const std::span<const uint8_t> input = job->buffers.input;
    const std::span<uint8_t> output = job->buffers.output;
    job->buffers = {};
    return Submitted(
        runtime::submit_tiled(session_->engine_, *job, *geom, input, output),
        context);
  }
  return Submitted(session_->engine_.submit(*std::move(job)), context);
}

Result<Response> Request::run() {
  auto submitted = submit();
  if (!submitted.ok()) return submitted.error();
  return submitted->wait();
}

Result<Response> Submitted::wait() {
  if (tiled_.has_value()) {
    auto gathered = runtime::gather_tiled(*std::move(tiled_));
    tiled_.reset();
    auto resp = detail::to_response(std::move(gathered.result), context_);
    if (!resp.ok()) return resp.error();
    resp->jobs_fanned_out = gathered.jobs;
    resp->tile_cache_hits = gathered.cache_hits;
    resp->workers_used = gathered.workers_used;
    return resp;
  }
  if (!fut_.valid()) {
    return ApiError{ErrorCode::kInvalidArgument,
                    "wait() already consumed this Submitted", context_};
  }
  return detail::to_response(fut_.get(), context_);
}

namespace detail {

Result<Response> to_response(runtime::JobResult r,
                             const std::string& context) {
  if (!r.ok) {
    ErrorCode code = ErrorCode::kExecutionFailed;
    switch (r.kind) {
      case runtime::JobErrorKind::kRejected:
        code = ErrorCode::kSessionShutdown;
        break;
      case runtime::JobErrorKind::kCancelled:
        code = ErrorCode::kCancelled;
        break;
      case runtime::JobErrorKind::kOverloaded:
        code = ErrorCode::kOverloaded;
        break;
      case runtime::JobErrorKind::kBackendUnsupported:
        code = ErrorCode::kBackendUnsupported;
        break;
      case runtime::JobErrorKind::kFailed:
      case runtime::JobErrorKind::kNone:
        code = ErrorCode::kExecutionFailed;
        break;
    }
    return ApiError{code, r.error, context};
  }
  if (!r.run.verified) {
    // Verification is part of the facade's correctness contract: a caller
    // must never consume outputs that diverged from the scalar reference
    // (reachable with user-owned buffers whose values break the kernel's
    // documented range contract).
    return ApiError{ErrorCode::kVerificationFailed,
                    "outputs did not match the scalar reference for the "
                    "data the kernel received",
                    context};
  }
  Response resp;
  resp.run = std::move(r.run);
  resp.cache_hit = r.cache_hit;
  resp.prepare_ns = r.prepare_ns;
  resp.execute_ns = r.execute_ns;
  resp.worker = r.worker;
  resp.plan = std::move(r.plan);
  resp.explored = r.explored;
  resp.tile_cache_hits = r.cache_hit ? 1 : 0;
  return resp;
}

}  // namespace detail

}  // namespace subword::api
