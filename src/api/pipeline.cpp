#include "api/pipeline.h"

#include <algorithm>
#include <utility>

#include "api/session.h"
#include "kernels/registry.h"

namespace subword::api {

Pipeline& Pipeline::then(Request stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::input(std::span<const uint8_t> bytes) {
  input_ = bytes;
  return *this;
}

Pipeline& Pipeline::input(std::span<const int16_t> samples) {
  input_ = detail::as_byte_span(samples);
  return *this;
}

Pipeline& Pipeline::output(std::span<uint8_t> bytes) {
  output_ = bytes;
  return *this;
}

Pipeline& Pipeline::output(std::span<int16_t> samples) {
  output_ = detail::as_writable_byte_span(samples);
  return *this;
}

Result<PipelineRun> Pipeline::run() {
  if (stages_.empty()) {
    return ApiError{ErrorCode::kInvalidArgument, "pipeline has no stages",
                    "pipeline"};
  }

  // -- Validate the whole chain before running anything ---------------------
  std::vector<runtime::KernelJob> jobs;
  std::vector<kernels::BufferSpec> specs;
  jobs.reserve(stages_.size());
  specs.reserve(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Request& st = stages_[i];
    const std::string context =
        "pipeline stage " + std::to_string(i) + " (" + st.kernel_name() + ")";
    if (st.session_ != session_) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "stage was built on a different Session", context};
    }
    if (!st.buffers_.empty()) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "stages must not bind buffers directly; the pipeline "
                      "owns the inter-stage buffers (use Pipeline::input/"
                      "output for the endpoints)",
                      context};
    }
    auto job = st.build();
    if (!job.ok()) return job.error();
    const auto* info = kernels::find_kernel_info(job->kernel);
    if (info == nullptr) {  // unreachable: build() canonicalized the name
      return ApiError{ErrorCode::kUnknownKernel,
                      "kernel vanished from the registry", context};
    }
    if (!info->buffers.supported()) {
      return ApiError{ErrorCode::kBuffersUnsupported,
                      "kernel does not accept user-owned buffers, so it "
                      "cannot be a pipeline stage",
                      context};
    }
    specs.push_back(info->buffers);
    jobs.push_back(*std::move(job));
  }

  if (input_.size() != specs.front().input_bytes) {
    return ApiError{
        ErrorCode::kBufferSizeMismatch,
        "pipeline input is " + std::to_string(input_.size()) +
            " bytes, first stage wants " +
            std::to_string(specs.front().input_bytes),
        "pipeline stage 0 (" + jobs.front().kernel + ")"};
  }
  for (size_t i = 1; i < specs.size(); ++i) {
    // A downstream stage may consume a prefix of the upstream output, but
    // never more than the upstream produced.
    if (specs[i - 1].output_bytes < specs[i].input_bytes) {
      return ApiError{
          ErrorCode::kPipelineMismatch,
          jobs[i - 1].kernel + " produces " +
              std::to_string(specs[i - 1].output_bytes) + " bytes but " +
              jobs[i].kernel + " needs " +
              std::to_string(specs[i].input_bytes),
          "pipeline stage " + std::to_string(i)};
    }
  }
  if (!output_.empty() && output_.size() != specs.back().output_bytes) {
    return ApiError{
        ErrorCode::kBufferSizeMismatch,
        "pipeline output is " + std::to_string(output_.size()) +
            " bytes, last stage produces " +
            std::to_string(specs.back().output_bytes),
        "pipeline stage " + std::to_string(specs.size() - 1)};
  }

  // -- Execute stage by stage (each stage depends on its predecessor) -------
  PipelineRun out;
  out.stages.reserve(jobs.size());
  out.all_cache_hits = true;
  out.total_cycles = 0;
  std::vector<uint8_t> upstream;              // previous stage's output
  std::span<const uint8_t> feed = input_;     // what the next stage reads
  for (size_t i = 0; i < jobs.size(); ++i) {
    const std::string kernel = jobs[i].kernel;
    const std::string context =
        "pipeline stage " + std::to_string(i) + " (" + kernel + ")";
    std::vector<uint8_t> stage_out(specs[i].output_bytes);
    jobs[i].buffers.input = feed.first(specs[i].input_bytes);
    jobs[i].buffers.output = stage_out;
    auto fut = session_->engine_.submit(std::move(jobs[i]));
    // to_response maps a failed stage verification to kVerificationFailed,
    // so an ok() response here is bit-exact for the data the stage saw.
    auto resp = detail::to_response(fut.get(), context);
    if (!resp.ok()) return resp.error();
    if (const auto c = resp->run.stats.cycles_opt(); c && out.total_cycles) {
      *out.total_cycles += *c;
    } else {
      out.total_cycles.reset();  // a cycle-less stage voids the total
    }
    out.total_routed_operands += resp->run.stats.spu_routed_ops;
    out.all_cache_hits = out.all_cache_hits && resp->cache_hit;
    StageRun sr;
    sr.kernel = kernel;
    sr.response = *std::move(resp);
    sr.input_bytes = specs[i].input_bytes;
    sr.output_bytes = specs[i].output_bytes;
    out.stages.push_back(std::move(sr));
    upstream = std::move(stage_out);
    feed = upstream;
  }
  if (!output_.empty()) {
    std::copy(upstream.begin(), upstream.end(), output_.begin());
  }
  out.output = std::move(upstream);
  return out;
}

}  // namespace subword::api
