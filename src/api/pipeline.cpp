#include "api/pipeline.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "api/session.h"
#include "kernels/registry.h"
#include "runtime/tiling.h"

namespace subword::api {

namespace {

std::string stage_context(size_t i, const std::string& kernel) {
  return "pipeline stage " + std::to_string(i) + " (" + kernel + ")";
}

}  // namespace

Pipeline& Pipeline::then(Request stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::input(std::span<const uint8_t> bytes) {
  input_ = bytes;
  return *this;
}

Pipeline& Pipeline::input(std::span<const int16_t> samples) {
  input_ = detail::as_byte_span(samples);
  return *this;
}

Pipeline& Pipeline::output(std::span<uint8_t> bytes) {
  output_ = bytes;
  return *this;
}

Pipeline& Pipeline::output(std::span<int16_t> samples) {
  output_ = detail::as_writable_byte_span(samples);
  return *this;
}

Pipeline& Pipeline::tile() {
  tile_ = true;
  return *this;
}

Result<Pipeline::Validated> Pipeline::validate() const {
  if (stages_.empty()) {
    return ApiError{ErrorCode::kInvalidArgument, "pipeline has no stages",
                    "pipeline"};
  }

  Validated v;
  v.jobs.reserve(stages_.size());
  v.specs.reserve(stages_.size());
  for (size_t i = 0; i < stages_.size(); ++i) {
    const Request& st = stages_[i];
    const std::string context = stage_context(i, st.kernel_name());
    if (st.session_ != session_) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "stage was built on a different Session", context};
    }
    if (!st.buffers_.empty()) {
      return ApiError{ErrorCode::kInvalidArgument,
                      "stages must not bind buffers directly; the pipeline "
                      "owns the inter-stage buffers (use Pipeline::input/"
                      "output for the endpoints)",
                      context};
    }
    auto job = st.build();
    if (!job.ok()) return job.error();
    const auto* info = kernels::find_kernel_info(job->kernel);
    if (info == nullptr) {  // unreachable: build() canonicalized the name
      return ApiError{ErrorCode::kUnknownKernel,
                      "kernel vanished from the registry", context};
    }
    if (!info->buffers.supported()) {
      return ApiError{ErrorCode::kBuffersUnsupported,
                      "kernel does not accept user-owned buffers, so it "
                      "cannot be a pipeline stage",
                      context};
    }
    v.specs.push_back(info->buffers);
    v.jobs.push_back(*std::move(job));
  }

  for (size_t i = 1; i < v.specs.size(); ++i) {
    // A downstream stage may consume a prefix of the upstream output, but
    // never more than the upstream produced. In a tiled run the rule is
    // the same, applied per tile.
    if (v.specs[i - 1].output_bytes < v.specs[i].input_bytes) {
      return ApiError{
          ErrorCode::kPipelineMismatch,
          v.jobs[i - 1].kernel + " produces " +
              std::to_string(v.specs[i - 1].output_bytes) + " bytes but " +
              v.jobs[i].kernel + " needs " +
              std::to_string(v.specs[i].input_bytes),
          "pipeline stage " + std::to_string(i)};
    }
  }

  if (tile_) {
    const std::string context = stage_context(0, v.jobs.front().kernel);
    std::string terr;
    const auto geom =
        runtime::plan_tiles(v.specs.front(), input_.size(), &terr);
    if (!geom) {
      return ApiError{ErrorCode::kTilingUnsupported, std::move(terr),
                      context};
    }
    if (geom->tail_units != 0) {
      // A padded tail tile's valid output is a fragment of a tile, which
      // cannot feed a downstream stage expecting a full upstream tile.
      return ApiError{ErrorCode::kTilingUnsupported,
                      "frame leaves a partial tail tile; a streamed "
                      "pipeline needs the frame to tile exactly",
                      context};
    }
    v.geom = *geom;
    const size_t want = geom->tiles * v.specs.back().output_bytes;
    if (!output_.empty() && output_.size() != want) {
      return ApiError{
          ErrorCode::kBufferSizeMismatch,
          "pipeline output is " + std::to_string(output_.size()) +
              " bytes, the gathered tiled output is " + std::to_string(want),
          stage_context(v.specs.size() - 1, v.jobs.back().kernel)};
    }
    return v;
  }

  if (input_.size() != v.specs.front().input_bytes) {
    return ApiError{
        ErrorCode::kBufferSizeMismatch,
        "pipeline input is " + std::to_string(input_.size()) +
            " bytes, first stage wants " +
            std::to_string(v.specs.front().input_bytes),
        stage_context(0, v.jobs.front().kernel)};
  }
  if (!output_.empty() && output_.size() != v.specs.back().output_bytes) {
    return ApiError{
        ErrorCode::kBufferSizeMismatch,
        "pipeline output is " + std::to_string(output_.size()) +
            " bytes, last stage produces " +
            std::to_string(v.specs.back().output_bytes),
        stage_context(v.specs.size() - 1, v.jobs.back().kernel)};
  }
  return v;
}

Result<PipelineRun> Pipeline::run() {
  auto v = validate();
  if (!v.ok()) return v.error();
  return tile_ ? run_tiled(*std::move(v)) : run_untiled(*std::move(v));
}

Result<SubmittedPipeline> Pipeline::submit() {
  auto v = validate();
  if (!v.ok()) return v.error();
  // The driver thread owns a moved-in copy of this Pipeline (stages,
  // spans, tiling flag); the spans still view caller memory, which must
  // outlive wait(). run() revalidates — cheap, and it keeps one code path.
  auto state = std::make_shared<Pipeline>(std::move(*this));
  std::promise<Result<PipelineRun>> promise;
  auto fut = promise.get_future();
  std::thread driver([state, promise = std::move(promise)]() mutable {
    promise.set_value(state->run());
  });
  return SubmittedPipeline(std::move(driver), std::move(fut));
}

SubmittedPipeline::~SubmittedPipeline() {
  if (driver_.joinable()) driver_.join();
}

Result<PipelineRun> SubmittedPipeline::wait() {
  if (driver_.joinable()) driver_.join();
  if (!fut_.valid()) {
    return ApiError{ErrorCode::kInvalidArgument,
                    "wait() already consumed this SubmittedPipeline",
                    "pipeline"};
  }
  return fut_.get();
}

Result<PipelineRun> Pipeline::run_untiled(Validated v) {
  // -- Execute stage by stage (each stage depends on its predecessor) -------
  PipelineRun out;
  out.stages.reserve(v.jobs.size());
  out.all_cache_hits = true;
  out.total_cycles = 0;
  std::vector<uint8_t> upstream;              // previous stage's output
  std::span<const uint8_t> feed = input_;     // what the next stage reads
  for (size_t i = 0; i < v.jobs.size(); ++i) {
    const std::string kernel = v.jobs[i].kernel;
    const std::string context = stage_context(i, kernel);
    std::vector<uint8_t> stage_out(v.specs[i].output_bytes);
    v.jobs[i].buffers.input = feed.first(v.specs[i].input_bytes);
    v.jobs[i].buffers.output = stage_out;
    auto fut = session_->engine_.submit(std::move(v.jobs[i]));
    // to_response maps a failed stage verification to kVerificationFailed,
    // so an ok() response here is bit-exact for the data the stage saw.
    auto resp = detail::to_response(fut.get(), context);
    if (!resp.ok()) return resp.error();
    if (const auto c = resp->run.stats.cycles_opt(); c && out.total_cycles) {
      *out.total_cycles += *c;
    } else {
      out.total_cycles.reset();  // a cycle-less stage voids the total
    }
    out.total_routed_operands += resp->run.stats.spu_routed_ops;
    out.all_cache_hits = out.all_cache_hits && resp->cache_hit;
    StageRun sr;
    sr.kernel = kernel;
    sr.response = *std::move(resp);
    sr.input_bytes = v.specs[i].input_bytes;
    sr.output_bytes = v.specs[i].output_bytes;
    out.stages.push_back(std::move(sr));
    upstream = std::move(stage_out);
    feed = upstream;
  }
  if (!output_.empty()) {
    std::copy(upstream.begin(), upstream.end(), output_.begin());
  }
  out.output = std::move(upstream);
  return out;
}

Result<PipelineRun> Pipeline::run_tiled(Validated v) {
  const size_t S = v.jobs.size();       // stages
  const size_t K = v.geom.tiles;        // tiles (exact fit; no tail)
  const size_t out_bytes = v.specs.back().output_bytes;

  // Per-(stage, tile) output buffers and futures. Tile k's stage-s input
  // aliases a prefix of bufs[s-1][k], so a job is submitted only after its
  // predecessor tile settled — the wavefront order below enforces that.
  std::vector<std::vector<std::vector<uint8_t>>> bufs(S);
  std::vector<std::vector<std::future<runtime::JobResult>>> futs(S);
  for (size_t s = 0; s < S; ++s) {
    bufs[s].assign(K, std::vector<uint8_t>(v.specs[s].output_bytes));
    futs[s].resize(K);
  }
  std::vector<runtime::JobResultAccumulator> acc(S);
  std::optional<ApiError> failure;

  PipelineRun out;
  out.tiles = K;
  out.output.resize(K * out_bytes);

  const auto submit_job = [&](size_t s, size_t k) {
    runtime::KernelJob job = v.jobs[s];  // shared knobs, per-tile buffers
    job.buffers.input =
        s == 0 ? input_.subspan(k * v.geom.input_stride,
                                v.geom.tile_input_bytes)
               : std::span<const uint8_t>(bufs[s - 1][k])
                     .first(v.specs[s].input_bytes);
    job.buffers.output = bufs[s][k];
    futs[s][k] = session_->engine_.submit(std::move(job));
  };
  // Wait for (s, k), fold it into the stage aggregate; on the first
  // failure record the typed error and stop the wavefront.
  const auto settle = [&](size_t s, size_t k) {
    runtime::JobResult r = futs[s][k].get();
    if (!r.ok || !r.run.verified) {
      if (!failure) {
        auto resp =
            detail::to_response(std::move(r), stage_context(s, v.jobs[s].kernel));
        failure = resp.error();
      }
      return;
    }
    acc[s].add(std::move(r));
  };

  // Stage 0 has no dependencies: every tile goes to the engine up front
  // (a bounded queue turns this into backpressure), so the workers can
  // spread the whole frame immediately.
  for (size_t k = 0; k < K; ++k) submit_job(0, k);

  // Then a wavefront over the (stage, tile) grid in diagonal order
  // d = s + k: processing (s, k) first settles its predecessor (s-1, k) —
  // submitted one diagonal earlier — then submits (s, k) itself, so stage
  // s starts tile k as soon as stage s-1 finished it while stage s-1 is
  // still working on tile k+1. The virtual row s == S settles the final
  // stage and gathers its tile into place.
  for (size_t d = 1; d < S + K && !failure; ++d) {
    const size_t s_hi = std::min(d, S);
    const size_t s_lo = std::max<size_t>(1, d >= K - 1 ? d - (K - 1) : 1);
    for (size_t s = s_hi + 1; s-- > s_lo;) {
      const size_t k = d - s;
      settle(s - 1, k);
      if (failure) break;
      if (s == S) {
        std::copy(bufs[S - 1][k].begin(), bufs[S - 1][k].end(),
                  out.output.begin() + static_cast<ptrdiff_t>(k * out_bytes));
      } else {
        submit_job(s, k);
      }
    }
  }
  if (failure) {
    // Drain every in-flight tile before the buffers they reference die.
    for (auto& stage : futs) {
      for (auto& f : stage) {
        if (f.valid()) f.get();
      }
    }
    return *failure;
  }

  out.all_cache_hits = true;
  out.total_cycles = 0;
  for (size_t s = 0; s < S; ++s) {
    const size_t jobs = acc[s].jobs();
    const size_t hits = acc[s].cache_hits();
    const int workers = acc[s].workers_used();
    auto resp = detail::to_response(std::move(acc[s]).take(),
                                    stage_context(s, v.jobs[s].kernel));
    if (!resp.ok()) return resp.error();  // unreachable: every tile settled ok
    resp->jobs_fanned_out = jobs;
    resp->tile_cache_hits = hits;
    resp->workers_used = workers;
    if (const auto c = resp->run.stats.cycles_opt(); c && out.total_cycles) {
      *out.total_cycles += *c;
    } else {
      out.total_cycles.reset();
    }
    out.total_routed_operands += resp->run.stats.spu_routed_ops;
    out.all_cache_hits = out.all_cache_hits && resp->cache_hit;
    StageRun sr;
    sr.kernel = v.jobs[s].kernel;
    sr.response = *std::move(resp);
    sr.input_bytes = v.specs[s].input_bytes;
    sr.output_bytes = v.specs[s].output_bytes;
    out.stages.push_back(std::move(sr));
  }
  if (!output_.empty()) {
    std::copy(out.output.begin(), out.output.end(), output_.begin());
  }
  return out;
}

}  // namespace subword::api
