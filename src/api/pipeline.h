// pipeline.h — ordered composition of kernel stages over user-owned
// buffers: stage N's primary output feeds stage N+1's primary input
// through one Session.
//
//   Session session;
//   auto run = session.pipeline()
//                  .then(session.request("Color Convert").spu(core::kConfigD))
//                  .then(session.request("2D Convolution").spu(core::kConfigD))
//                  .then(session.request("Motion Estimation").spu(core::kConfigD))
//                  .input(frame_bytes)
//                  .run();
//
// Data flow: the pipeline owns the intermediate buffers. A downstream
// stage consumes a *prefix* of the upstream output when its input is
// smaller (a 512-byte Y plane feeding a 400-byte convolution tile); an
// upstream output smaller than the next input is a kPipelineMismatch.
// Every stage is verified bit-exactly against its scalar reference *given
// the data it actually received* (MediaKernel::verify_bound), so a
// passing pipeline is end-to-end bit-exact against the composed scalar
// references by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/request.h"
#include "api/result.h"

namespace subword::api {

class Session;

// Per-stage outcome: which kernel ran, the full Response (KernelRun stats,
// cache economics), and how many upstream bytes it consumed. In a tiled
// run the Response aggregates the stage's whole tile fan-out (see its
// economics fields) and the byte counts stay per-tile.
struct StageRun {
  std::string kernel;
  Response response;
  size_t input_bytes = 0;   // bytes fed into this stage (per tile)
  size_t output_bytes = 0;  // bytes this stage produced (per tile)
};

struct PipelineRun {
  std::vector<StageRun> stages;
  std::vector<uint8_t> output;      // final stage's primary output
  // Simulator cycles summed over stages. nullopt when any stage ran on a
  // backend without a cycle model (native-SWAR): a partial sum would
  // silently under-report, so the total is withheld instead.
  std::optional<uint64_t> total_cycles;
  uint64_t total_routed_operands = 0;
  bool all_cache_hits = false;      // every stage replayed a cached program
  // How many tiles the frame was cut into (1: untiled). A tiled run
  // executed stages.size() * tiles engine jobs; `output` concatenates the
  // final stage's per-tile outputs in tile order.
  size_t tiles = 1;
};

// A pipeline in flight on a driver thread. Move-only; wait() joins the
// driver and yields the run's result exactly once. Must not outlive the
// Session the pipeline was built on, and the input/output spans must stay
// alive until wait() returns.
class SubmittedPipeline {
 public:
  SubmittedPipeline(SubmittedPipeline&&) = default;
  SubmittedPipeline& operator=(SubmittedPipeline&&) = default;
  ~SubmittedPipeline();  // joins the driver if wait() was never called

  [[nodiscard]] Result<PipelineRun> wait();

 private:
  friend class Pipeline;
  SubmittedPipeline(std::thread driver, std::future<Result<PipelineRun>> fut)
      : driver_(std::move(driver)), fut_(std::move(fut)) {}

  std::thread driver_;
  std::future<Result<PipelineRun>> fut_;
};

class Pipeline {
 public:
  // Append a configured stage (a Request from the same Session; its
  // terminal operations are never called — the pipeline drives it).
  Pipeline& then(Request stage);

  // The first stage's input. Must match its BufferSpec exactly.
  Pipeline& input(std::span<const uint8_t> bytes);
  Pipeline& input(std::span<const int16_t> samples);

  // Optional: also copy the final output into caller memory (must match
  // the last stage's output_bytes exactly; for tiled runs, tiles * that).
  Pipeline& output(std::span<uint8_t> bytes);
  Pipeline& output(std::span<int16_t> samples);

  // Stream the pipeline tile by tile: the input frame is cut per the
  // *first* stage's tile geometry, and each tile then flows through the
  // whole chain independently (the prefix rule applies per tile), so
  // stage N+1 starts tile k as soon as stage N finishes it — stages
  // overlap across tiles instead of running frame-at-a-time. Requires the
  // first stage's kernel to be tileable and the frame to tile *exactly*
  // (a partial tail tile cannot feed a downstream stage expecting a full
  // upstream tile); violations are kTilingUnsupported. Later stages need
  // no tile geometry — each runs its ordinary base shape once per tile.
  Pipeline& tile();

  // Validate the whole chain (every stage known, buffer-capable, sizes
  // compatible), then execute the stages in order through the Session's
  // engine. Any stage failure aborts the run with that stage's error.
  [[nodiscard]] Result<PipelineRun> run();

  // Validate here (errors surface synchronously), then run the pipeline
  // on a driver thread and return immediately. Consumes the Pipeline.
  [[nodiscard]] Result<SubmittedPipeline> submit();

 private:
  friend class Session;
  explicit Pipeline(Session* session) : session_(session) {}

  // The validated chain, ready to execute.
  struct Validated {
    std::vector<runtime::KernelJob> jobs;          // per-stage prototypes
    std::vector<kernels::BufferSpec> specs;
    runtime::TileGeometry geom;                    // meaningful when tiled
  };
  [[nodiscard]] Result<Validated> validate() const;
  [[nodiscard]] Result<PipelineRun> run_untiled(Validated v);
  [[nodiscard]] Result<PipelineRun> run_tiled(Validated v);

  Session* session_;
  std::vector<Request> stages_;
  std::span<const uint8_t> input_{};
  std::span<uint8_t> output_{};
  bool tile_ = false;
};

}  // namespace subword::api
