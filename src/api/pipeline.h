// pipeline.h — ordered composition of kernel stages over user-owned
// buffers: stage N's primary output feeds stage N+1's primary input
// through one Session.
//
//   Session session;
//   auto run = session.pipeline()
//                  .then(session.request("Color Convert").spu(core::kConfigD))
//                  .then(session.request("2D Convolution").spu(core::kConfigD))
//                  .then(session.request("Motion Estimation").spu(core::kConfigD))
//                  .input(frame_bytes)
//                  .run();
//
// Data flow: the pipeline owns the intermediate buffers. A downstream
// stage consumes a *prefix* of the upstream output when its input is
// smaller (a 512-byte Y plane feeding a 400-byte convolution tile); an
// upstream output smaller than the next input is a kPipelineMismatch.
// Every stage is verified bit-exactly against its scalar reference *given
// the data it actually received* (MediaKernel::verify_bound), so a
// passing pipeline is end-to-end bit-exact against the composed scalar
// references by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/request.h"
#include "api/result.h"

namespace subword::api {

class Session;

// Per-stage outcome: which kernel ran, the full Response (KernelRun stats,
// cache economics), and how many upstream bytes it consumed.
struct StageRun {
  std::string kernel;
  Response response;
  size_t input_bytes = 0;   // bytes fed into this stage
  size_t output_bytes = 0;  // bytes this stage produced
};

struct PipelineRun {
  std::vector<StageRun> stages;
  std::vector<uint8_t> output;      // final stage's primary output
  // Simulator cycles summed over stages. nullopt when any stage ran on a
  // backend without a cycle model (native-SWAR): a partial sum would
  // silently under-report, so the total is withheld instead.
  std::optional<uint64_t> total_cycles;
  uint64_t total_routed_operands = 0;
  bool all_cache_hits = false;      // every stage replayed a cached program
};

class Pipeline {
 public:
  // Append a configured stage (a Request from the same Session; its
  // terminal operations are never called — the pipeline drives it).
  Pipeline& then(Request stage);

  // The first stage's input. Must match its BufferSpec exactly.
  Pipeline& input(std::span<const uint8_t> bytes);
  Pipeline& input(std::span<const int16_t> samples);

  // Optional: also copy the final output into caller memory (must match
  // the last stage's output_bytes exactly).
  Pipeline& output(std::span<uint8_t> bytes);
  Pipeline& output(std::span<int16_t> samples);

  // Validate the whole chain (every stage known, buffer-capable, sizes
  // compatible), then execute the stages in order through the Session's
  // engine. Any stage failure aborts the run with that stage's error.
  [[nodiscard]] Result<PipelineRun> run();

 private:
  friend class Session;
  explicit Pipeline(Session* session) : session_(session) {}

  Session* session_;
  std::vector<Request> stages_;
  std::span<const uint8_t> input_{};
  std::span<uint8_t> output_{};
};

}  // namespace subword::api
