// session.h — the facade's entry point and the one supported way to use
// the system.
//
// A Session owns the execution substrate — a runtime::BatchEngine worker
// pool plus the shared OrchestrationCache — and hands out typed handles:
// Request builders for single kernel executions and Pipeline builders for
// buffer-chained stage graphs. Several Sessions may share one cache
// (SessionOptions::cache), modelling service replicas amortizing the same
// orchestrations; the cache is thread-safe and prepares each unique
// configuration exactly once across all of them.
//
// Everything fallible returns Result<T> (api/result.h). The lower layers'
// exceptions stop at the engine boundary; Session itself never throws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/pipeline.h"
#include "api/request.h"
#include "api/result.h"
#include "kernels/registry.h"
#include "runtime/batch_engine.h"

namespace subword::api {

struct SessionOptions {
  int workers = 0;  // 0: hardware_concurrency (at least 1)
  // Bounds the engine's job queue: submissions (including tiled fan-outs)
  // block while this many jobs are already waiting, instead of growing
  // the queue without limit. 0: unbounded. Blocked time is visible as
  // EngineStats::submit_block_ns.
  int queue_capacity = 0;
  // -- Admission control (load shedding) ------------------------------------
  // When nonzero, submissions finding this many jobs already queued resolve
  // immediately with ErrorCode::kOverloaded instead of queueing (or
  // blocking on a full bounded queue). A serving layer sets this so
  // overload fails fast at the submitter instead of stalling its sockets.
  int shed_queue_depth = 0;
  // With a bounded queue: the longest one submission may block on
  // backpressure before resolving with kOverloaded. 0: block indefinitely.
  uint64_t shed_max_block_ns = 0;
  // Fraction (0..1) of auto_plan() requests that execute the plan's
  // runner-up shape instead of the winner, feeding its measurement into
  // the shared history table so blended plan scores track reality (see
  // docs/PLANNER.md). Outputs stay bit-exact either way;
  // Response::explored marks the sampled requests. 0 (default): never
  // deviate from the planned path.
  double explore_rate = 0;
  // Shared orchestration cache; null means the Session owns a private one.
  std::shared_ptr<runtime::OrchestrationCache> cache;
};

class Session {
 public:
  using Options = SessionOptions;

  explicit Session(SessionOptions opts = {});
  ~Session();  // drains in-flight work (BatchEngine::shutdown)

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // Start building a request for a registry kernel. Name matching is
  // case-insensitive; validation happens at the Request's build()/submit().
  [[nodiscard]] Request request(std::string kernel);

  // Start building a buffer-chained stage pipeline.
  [[nodiscard]] Pipeline pipeline();

  // Enumerate the registry: every kernel's identity, suite membership,
  // manual-SPU capability, and buffer contract.
  [[nodiscard]] const std::vector<kernels::KernelInfo>& kernels() const;

  // Descriptor lookup (case-insensitive).
  [[nodiscard]] Result<kernels::KernelInfo> kernel(
      std::string_view name) const;

  [[nodiscard]] runtime::EngineStats stats() const;

  // Live engine queue depth — a lock-free atomic snapshot, cheap enough to
  // poll per request (stats() takes the queue mutex; this does not).
  [[nodiscard]] size_t queue_depth() const;
  [[nodiscard]] std::shared_ptr<runtime::OrchestrationCache> shared_cache()
      const;
  [[nodiscard]] int workers() const;

  // Stop accepting requests and drain. Idempotent; later submits resolve
  // with ErrorCode::kSessionShutdown.
  void shutdown();

 private:
  friend class Request;
  friend class Pipeline;

  runtime::BatchEngine engine_;
};

}  // namespace subword::api
