// differential.h — the sim-vs-native differential execution oracle.
//
// One generated program is executed through every meaningful point of the
// backend × orchestration matrix:
//
//   reference      sim, baseline (the program exactly as generated)
//   native         native-SWAR lowering of the same program under its own
//                  crossbar configuration
//   auto × config  orchestrator-transformed program under each crossbar
//                  configuration, on both the simulator and the native tier
//                  (skipped for programs carrying their own SPU prologue —
//                  the orchestrator owns R14/R15)
//
// Each comparison checks the precise contract of the layer under test:
// native runs must match the simulator *exactly* (memory arena and MMX
// register file — native.h's byte-identical-replay claim) on the same
// program; orchestrated programs must preserve the reference's memory
// image (a deleted permutation's destination register legitimately goes
// stale — the regfile is excluded from that comparison, exactly as the
// orchestrator's own verification tests do). A run may instead reject the
// program with a *typed* error (backend::LoweringError, std::logic_error
// from orchestration/SPU validation). Anything else — a mismatch, a crash,
// an untyped exception — is a Divergence, the thing the fuzzer exists to
// find.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/crossbar.h"
#include "fuzz/generator.h"

namespace subword::fuzz {

enum class Mode : uint8_t { kBaseline, kAuto };
enum class Backend : uint8_t { kSim, kNative };

// Which cell of the execution matrix a record refers to.
struct RunLabel {
  Mode mode = Mode::kBaseline;
  Backend backend = Backend::kSim;
  std::string config;  // crossbar configuration name ("A".."D")
};

[[nodiscard]] std::string to_string(const RunLabel& label);

// A run that disagreed with the reference (or died on an untyped error).
struct Divergence {
  RunLabel label;
  std::string detail;  // first mismatching byte / register, or the error
};

// A typed, well-formed refusal to run the program — an acceptable outcome
// (the native tier is allowed to be partial), recorded so the harness can
// tell explained rejections from silent coverage loss.
struct Rejection {
  RunLabel label;
  std::string reason;
  int64_t op_index = -1;    // LoweringError context, when present
  std::string instruction;  // disassembled bail site, when present
};

struct DiffOptions {
  // Crossbar configurations the auto (orchestrated) runs sweep.
  std::vector<core::CrossbarConfig> auto_configs{core::kAllConfigs.begin(),
                                                 core::kAllConfigs.end()};
  uint64_t sim_max_cycles = 1ull << 22;  // candidate-program runaway guard
  uint64_t lower_max_ops = 1ull << 20;
};

struct DiffResult {
  // True when the reference run itself completed. When false the program
  // is ill-formed (minimizer candidates routinely are) and the divergence
  // list is meaningless.
  bool reference_ok = false;
  std::string reference_error;

  std::vector<Divergence> divergences;
  std::vector<Rejection> rejections;
  int runs = 0;  // executions compared against the reference

  [[nodiscard]] bool ok() const { return reference_ok && divergences.empty(); }
};

[[nodiscard]] DiffResult run_differential(const FuzzProgram& fp,
                                          const DiffOptions& opts = {});

}  // namespace subword::fuzz
