// generator.h — seeded, reproducible random ISA programs shaped like the
// media workloads.
//
// The generator is the adversarial half of the trust layer: it emits
// programs the registry kernels never hand-shaped — arbitrary instruction
// mixes over the MMX subset, bounded-trip inner loops (≤8 trips, so the
// local-history predictor still sees media-like branches), U/V-pipe-
// symmetric crossbar routes programmed through the ordinary MMIO prologue,
// data-dependent scalar segments that exercise the lowering walker's defer
// machinery, and bound input/output buffer regions — while guaranteeing the
// structural well-formedness the differential harness needs: every program
// halts, every access stays inside its region across all loop trips, loop
// counters are concrete, and the reserved SPU setup registers R14/R15 are
// untouched (so the orchestrator may be applied).
//
// Everything is a pure function of the seed: the instruction stream, the
// microprogram routes, and the per-execution input payload all derive from
// one mt19937_64, which is what makes a corpus entry a single integer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/crossbar.h"
#include "core/mmio.h"
#include "isa/program.h"
#include "sim/memory.h"

namespace subword::fuzz {

// Deterministic PRNG facade shared by the fuzz layers (program generation
// here, wire-frame mutation in the service fuzz). Deliberately avoids
// <random> distributions: their output is implementation-defined, and a
// corpus entry must mean the same program on every toolchain. splitmix64
// is fully specified.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform-ish int in [0, n). Modulo bias is irrelevant here.
  int below(int n) {
    return static_cast<int>(next() % static_cast<uint64_t>(n));
  }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t state_;
};

struct Region {
  uint64_t addr = 0;
  size_t len = 0;
};

struct GeneratorOptions {
  uint64_t seed = 1;
  // Straight-line MMX ops budget outside loops (loops add their own).
  int max_straight_ops = 16;
  int max_loops = 2;  // loop segments (one level of nesting max)
  int max_trip = 8;   // media-like bounded inner loops
  // Probability a program carries a hand-programmed SPU microprogram with
  // crossbar-routed operands (via the MMIO prologue).
  double spu_rate = 0.3;
  // Probability of a data-dependent scalar segment (MovdFromMmx → GP
  // arithmetic → store), the lowering walker's defer path.
  double defer_rate = 0.5;
  // Probability of planting a data-dependent branch: the program stays
  // well-formed for the simulator but the native tier must reject it with
  // a typed LoweringError (the well-formed-rejection corpus).
  double reject_rate = 0.0;
  core::CrossbarConfig cfg = core::kConfigA;
  size_t mem_bytes = 1u << 16;
};

// A generated program plus everything needed to execute and replay it.
struct FuzzProgram {
  isa::Program program;
  core::CrossbarConfig cfg{};
  uint64_t seed = 0;
  size_t mem_bytes = 1u << 16;
  // Set when the program carries its own SPU MMIO prologue (manual
  // microprogram). Such programs are never auto-orchestrated on top.
  bool use_spu = false;
  int num_contexts = 1;
  uint64_t mmio_base = core::SpuMmio::kDefaultBase;
  // The generator planted a data-dependent branch: the native tier is
  // expected to bail with a typed LoweringError.
  bool expects_reject = false;

  Region input;    // per-execution caller data (the lowering data region)
  Region output;   // where results land
  Region scratch;  // deterministic init; loads from here constant-fold
  std::vector<uint8_t> input_bytes;  // this corpus entry's input payload

  // Deterministic arena initialisation shared by every executor: scratch
  // coefficients derived from the seed, the input payload, zeroed output.
  // Matches the LoweringSpec::init / data_regions contract.
  void init_arena(sim::Memory& mem) const;
};

// Generate one program. Deterministic in opts (same options -> same
// program, instruction for instruction).
[[nodiscard]] FuzzProgram generate(const GeneratorOptions& opts);

}  // namespace subword::fuzz
