#include "fuzz/differential.h"

#include <array>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "backend/lowering.h"
#include "backend/native.h"
#include "core/mmio.h"
#include "core/orchestrator.h"
#include "core/spu.h"
#include "isa/disasm.h"
#include "sim/machine.h"

namespace subword::fuzz {
namespace {

// Architectural outcome of one run: the full arena plus the MMX register
// file. This is exactly the byte-identical-replay contract of native.h.
struct Snapshot {
  std::vector<uint8_t> arena;
  std::array<uint64_t, isa::kNumMmxRegs> mmx{};
};

Snapshot snapshot(const sim::Memory& mem, const sim::MmxRegFile& regs,
                  size_t mem_bytes) {
  Snapshot s;
  s.arena = mem.read_vector<uint8_t>(0, mem_bytes);
  for (int i = 0; i < isa::kNumMmxRegs; ++i) {
    s.mmx[static_cast<size_t>(i)] =
        regs.read(static_cast<uint8_t>(i)).bits();
  }
  return s;
}

// First point of disagreement, or empty when identical. `regs` selects
// whether the MMX register files take part: the native tier promises full
// architectural identity with the simulator on the same program, while the
// orchestrator's preservation contract covers the memory image only (a
// deleted permutation's destination register legitimately goes stale).
std::string compare(const Snapshot& ref, const Snapshot& got, bool regs) {
  if (regs) {
    for (int i = 0; i < isa::kNumMmxRegs; ++i) {
      const auto idx = static_cast<size_t>(i);
      if (ref.mmx[idx] != got.mmx[idx]) {
        std::ostringstream os;
        os << "mm" << i << ": reference 0x" << std::hex << ref.mmx[idx]
           << ", got 0x" << got.mmx[idx];
        return os.str();
      }
    }
  }
  if (ref.arena.size() != got.arena.size()) {
    return "arena size mismatch";
  }
  for (size_t i = 0; i < ref.arena.size(); ++i) {
    if (ref.arena[i] != got.arena[i]) {
      std::ostringstream os;
      os << "arena[0x" << std::hex << i << "]: reference 0x"
         << static_cast<int>(ref.arena[i]) << ", got 0x"
         << static_cast<int>(got.arena[i]);
      return os.str();
    }
  }
  return {};
}

// Simulator execution of `program` (the program's own SPU prologue drives
// a manually attached Spu when `manual_spu` is set).
Snapshot run_sim(const isa::Program& program, const FuzzProgram& fp,
                 bool manual_spu, uint64_t max_cycles,
                 const core::OrchestrationResult* orchestrated,
                 const core::OrchestratorOptions* orch_opts) {
  sim::PipelineConfig pcfg;
  pcfg.max_cycles = max_cycles;
  sim::Machine m(program, fp.mem_bytes, pcfg);

  std::unique_ptr<core::Spu> spu;
  std::unique_ptr<core::SpuMmio> mmio;
  core::AttachedSpu attached;
  if (orchestrated != nullptr) {
    attached = core::attach_spu(m, *orchestrated, *orch_opts);
  } else if (manual_spu) {
    spu = std::make_unique<core::Spu>(fp.cfg, fp.num_contexts);
    mmio = std::make_unique<core::SpuMmio>(spu.get());
    m.memory().map_device(fp.mmio_base, core::SpuMmio::kWindowSize,
                          mmio.get());
    m.set_router(spu.get());
  }
  fp.init_arena(m.memory());
  m.run();
  return snapshot(m.memory(), m.mmx(), fp.mem_bytes);
}

// Native-SWAR execution: lower, then replay against a fresh arena.
// Throws backend::LoweringError for programs the tier legitimately
// refuses.
Snapshot run_native(const isa::Program& program, const FuzzProgram& fp,
                    const core::CrossbarConfig& cfg, bool use_spu,
                    int num_contexts, uint64_t max_ops) {
  backend::LoweringSpec spec;
  spec.cfg = cfg;
  spec.use_spu = use_spu;
  spec.num_contexts = num_contexts;
  spec.mmio_base = fp.mmio_base;
  spec.mem_bytes = fp.mem_bytes;
  spec.max_ops = max_ops;
  spec.init = [&fp](sim::Memory& mem) { fp.init_arena(mem); };
  spec.data_regions.push_back({fp.input.addr, fp.input.len});

  const backend::NativeTrace trace = backend::lower(program, spec);

  sim::Memory mem(fp.mem_bytes);
  fp.init_arena(mem);
  backend::NativeState st;
  st.mem = &mem;
  backend::run_trace(trace, st);
  return snapshot(mem, st.regs, fp.mem_bytes);
}

// Run one cell of the matrix, compare it against `ref`, and classify the
// outcome. Returns the snapshot when the run completed (so a later cell can
// compare against it). `regs` as in compare().
std::optional<Snapshot> record_outcome(DiffResult& out, const Snapshot& ref,
                                       const RunLabel& label, bool regs,
                                       const std::function<Snapshot()>& run) {
  ++out.runs;
  try {
    Snapshot got = run();
    const std::string diff = compare(ref, got, regs);
    if (!diff.empty()) {
      out.divergences.push_back({label, diff});
    }
    return got;
  } catch (const backend::LoweringError& e) {
    out.rejections.push_back(
        {label, e.what(), e.op_index(), e.instruction()});
  } catch (const std::logic_error& e) {
    // Orchestrator / SPU-validation refusals are typed and acceptable.
    out.rejections.push_back({label, e.what(), -1, {}});
  } catch (const std::exception& e) {
    out.divergences.push_back(
        {label, std::string("untyped failure: ") + e.what()});
  }
  return std::nullopt;
}

}  // namespace

std::string to_string(const RunLabel& label) {
  std::string s = label.mode == Mode::kAuto ? "auto" : "baseline";
  s += label.backend == Backend::kNative ? "/native" : "/sim";
  if (!label.config.empty()) s += "/" + label.config;
  return s;
}

DiffResult run_differential(const FuzzProgram& fp, const DiffOptions& opts) {
  DiffResult out;

  // Reference: the simulator running the program exactly as generated.
  Snapshot ref;
  try {
    ref = run_sim(fp.program, fp, fp.use_spu, opts.sim_max_cycles, nullptr,
                  nullptr);
    out.reference_ok = true;
  } catch (const std::exception& e) {
    out.reference_error = e.what();
    return out;
  }

  // Native tier under the program's own configuration: full architectural
  // identity with the reference (native.h's byte-identical-replay claim).
  record_outcome(out, ref,
                 {Mode::kBaseline, Backend::kNative,
                  std::string(fp.cfg.name)},
                 /*regs=*/true, [&] {
                   return run_native(fp.program, fp, fp.cfg, fp.use_spu,
                                     fp.num_contexts, opts.lower_max_ops);
                 });

  // Orchestrated runs: the transformed program must preserve the original's
  // architectural results under every configuration, on both tiers.
  // Programs carrying their own SPU prologue are skipped (they use the
  // reserved R14/R15 themselves and the orchestrator rejects them).
  if (!fp.use_spu) {
    for (const auto& cfg : opts.auto_configs) {
      core::OrchestratorOptions oo;
      oo.config = cfg;
      oo.mmio_base = fp.mmio_base;
      core::Orchestrator orch(oo);

      core::OrchestrationResult result;
      try {
        result = orch.run(fp.program);
      } catch (const std::logic_error& e) {
        Rejection rej;
        rej.label = {Mode::kAuto, Backend::kSim, std::string(cfg.name)};
        rej.reason = e.what();
        out.rejections.push_back(std::move(rej));
        continue;
      }

      // The orchestrator preserves the memory image (a deleted
      // permutation's destination register legitimately goes stale), so
      // the transformed program's sim run compares arena-only against the
      // reference. The native lowering of that same transformed program,
      // however, must match its sim run *exactly* — that pair exercises
      // native.h's contract on SPU-routed programs.
      const auto auto_sim = record_outcome(
          out, ref, {Mode::kAuto, Backend::kSim, std::string(cfg.name)},
          /*regs=*/false, [&] {
            return run_sim(result.program, fp, false, opts.sim_max_cycles,
                           &result, &oo);
          });
      if (auto_sim.has_value()) {
        record_outcome(
            out, *auto_sim,
            {Mode::kAuto, Backend::kNative, std::string(cfg.name)},
            /*regs=*/true, [&] {
              return run_native(result.program, fp, cfg, true,
                                oo.max_contexts, opts.lower_max_ops);
            });
      }
    }
  }
  return out;
}

}  // namespace subword::fuzz
