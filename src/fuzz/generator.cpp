#include "fuzz/generator.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/micro_builder.h"
#include "core/setup.h"
#include "isa/assembler.h"
#include "isa/inst.h"

namespace subword::fuzz {
namespace {

using isa::Assembler;
using isa::Op;

// Register discipline (what keeps every generated program lowerable unless
// we *intend* a rejection):
//   R2 input base, R3 output base, R4 scratch base — fed only by Li/SAddi
//   with generator-chosen constants, so addresses always fold.
//   R0/R1 loop counters — fed only by Li, consumed only by Loopnz.
//   R5..R8 data scalars — may become data-dependent (MovdFromMmx, input
//   loads); used only in arithmetic and stores, never addresses/branches.
//   R14/R15 untouched except by the SPU prologue of use_spu programs.
constexpr uint8_t kInBase = isa::R2;
constexpr uint8_t kOutBase = isa::R3;
constexpr uint8_t kScratchBase = isa::R4;
constexpr std::array<uint8_t, 4> kDataRegs{isa::R5, isa::R6, isa::R7,
                                           isa::R8};

constexpr uint64_t kInputAddr = 0x1000;
constexpr uint64_t kOutputAddr = 0x2000;
constexpr uint64_t kScratchAddr = 0x3000;
constexpr size_t kRegionLen = 0x400;

// Two-operand MMX data ops eligible for random emission (and, in SPU
// programs, for crossbar-routed operand fetches).
constexpr std::array<Op, 26> kAluOps{
    Op::Paddb,   Op::Paddw,   Op::Paddd,   Op::Psubb,   Op::Psubw,
    Op::Psubd,   Op::Paddsb,  Op::Paddsw,  Op::Paddusb, Op::Paddusw,
    Op::Psubsb,  Op::Psubsw,  Op::Psubusb, Op::Psubusw, Op::Pmullw,
    Op::Pmulhw,  Op::Pmaddwd, Op::Pcmpeqb, Op::Pcmpeqw, Op::Pcmpeqd,
    Op::Pcmpgtb, Op::Pcmpgtw, Op::Pcmpgtd, Op::Pand,    Op::Pandn,
    Op::Por};

constexpr std::array<Op, 9> kPermOps{
    Op::Packsswb,  Op::Packssdw,  Op::Packuswb,
    Op::Punpcklbw, Op::Punpcklwd, Op::Punpckldq,
    Op::Punpckhbw, Op::Punpckhwd, Op::Punpckhdq};

constexpr std::array<Op, 8> kShiftOps{Op::Psllw, Op::Pslld, Op::Psllq,
                                      Op::Psrlw, Op::Psrld, Op::Psrlq,
                                      Op::Psraw, Op::Psrad};

// Per-base displacement headroom: inside a loop the base advances by
// stride bytes per trip, so in-bounds-for-all-trips shrinks the usable
// displacement range.
struct Bounds {
  int32_t in_max;  // largest 8-byte-aligned disp for an 8-byte access
  int32_t out_max;
  int32_t scratch_max;

  [[nodiscard]] int32_t max_for(uint8_t base) const {
    if (base == kInBase) return in_max;
    if (base == kOutBase) return out_max;
    return scratch_max;
  }
};

constexpr Bounds kStraightBounds{kRegionLen - 8, kRegionLen - 8,
                                 kRegionLen - 8};

int32_t aligned_disp(Rng& rng, int32_t max_disp, int align) {
  const int slots = max_disp / align + 1;
  return static_cast<int32_t>(rng.below(slots)) * align;
}

void emit_inst(Assembler& a, Op op, uint8_t dst, uint8_t src) {
  isa::Inst in;
  in.op = op;
  in.dst = dst;
  in.src = src;
  a.emit(in);
}

void emit_shift_imm(Assembler& a, Op op, uint8_t dst, uint8_t count) {
  isa::Inst in;
  in.op = op;
  in.dst = dst;
  in.src_is_imm = true;
  in.imm8 = count;
  a.emit(in);
}

uint8_t rand_mm(Rng& rng) { return static_cast<uint8_t>(rng.below(8)); }
uint8_t rand_data_reg(Rng& rng) {
  return kDataRegs[static_cast<size_t>(rng.below(4))];
}

// Emit one random instruction under the register discipline. `bounds`
// gives the base-relative displacement headroom; `allow_mmx_bridge`
// enables the MovdFromMmx path that makes scalars data-dependent.
void emit_random_op(Assembler& a, Rng& rng, const Bounds& bounds,
                    bool allow_mmx_bridge) {
  const int kind = rng.below(20);
  switch (kind) {
    case 0: case 1: case 2:  // movq load (input or scratch)
    {
      const uint8_t base = rng.chance(0.6) ? kInBase : kScratchBase;
      a.movq_load(rand_mm(rng), base, aligned_disp(rng, bounds.max_for(base), 8));
      break;
    }
    case 3: case 4:  // movq store to output
      a.movq_store(kOutBase, aligned_disp(rng, bounds.out_max, 8),
                   rand_mm(rng));
      break;
    case 5:  // movd load / store
      if (rng.chance(0.5)) {
        const uint8_t base = rng.chance(0.6) ? kInBase : kScratchBase;
        a.movd_load(rand_mm(rng), base,
                    aligned_disp(rng, bounds.max_for(base), 4));
      } else {
        a.movd_store(kOutBase, aligned_disp(rng, bounds.out_max, 4),
                     rand_mm(rng));
      }
      break;
    case 6: case 7: case 8: case 9: case 10: case 11:  // packed ALU
      emit_inst(a, kAluOps[static_cast<size_t>(rng.below(kAluOps.size()))],
                rand_mm(rng), rand_mm(rng));
      break;
    case 12:  // pxor (common zeroing idiom, kept frequent)
      emit_inst(a, Op::Pxor, rand_mm(rng), rand_mm(rng));
      break;
    case 13: case 14:  // pack / unpack
      emit_inst(a, kPermOps[static_cast<size_t>(rng.below(kPermOps.size()))],
                rand_mm(rng), rand_mm(rng));
      break;
    case 15:  // shift by immediate
      emit_shift_imm(a,
                     kShiftOps[static_cast<size_t>(rng.below(kShiftOps.size()))],
                     rand_mm(rng), static_cast<uint8_t>(rng.below(17)));
      break;
    case 16:  // register copy
      a.movq(rand_mm(rng), rand_mm(rng));
      break;
    case 17:  // scalar constant pipeline: load coefficients / immediates
      if (rng.chance(0.5)) {
        a.ld32(rand_data_reg(rng), kScratchBase,
               aligned_disp(rng, bounds.scratch_max, 4));
      } else {
        a.li(rand_data_reg(rng), static_cast<int32_t>(rng.below(1 << 16)));
      }
      break;
    case 18:  // scalar arithmetic over data regs
      switch (rng.below(6)) {
        case 0: a.sadd(rand_data_reg(rng), rand_data_reg(rng)); break;
        case 1: a.ssub(rand_data_reg(rng), rand_data_reg(rng)); break;
        case 2: a.sxor(rand_data_reg(rng), rand_data_reg(rng)); break;
        case 3: a.smul(rand_data_reg(rng), rand_data_reg(rng)); break;
        case 4: a.saddi(rand_data_reg(rng),
                        static_cast<int32_t>(rng.below(256))); break;
        default: a.sshri(rand_data_reg(rng),
                         static_cast<uint8_t>(rng.below(16))); break;
      }
      break;
    default:  // 19: the MMX<->scalar bridges and scalar stores
      if (allow_mmx_bridge && rng.chance(0.5)) {
        if (rng.chance(0.5)) {
          a.movd_from_mmx(rand_data_reg(rng), rand_mm(rng));
        } else {
          a.movd_to_mmx(rand_mm(rng), rand_data_reg(rng));
        }
      } else {
        a.st32(kOutBase, aligned_disp(rng, bounds.out_max, 4),
               rand_data_reg(rng));
      }
      break;
  }
}

void emit_bases(Assembler& a) {
  a.li(kInBase, static_cast<int32_t>(kInputAddr));
  a.li(kOutBase, static_cast<int32_t>(kOutputAddr));
  a.li(kScratchBase, static_cast<int32_t>(kScratchAddr));
}

// A plain (non-SPU) bounded loop segment: li counter; body; base advances;
// loopnz. Bases are re-materialized afterwards so later segments see the
// region starts again.
void emit_loop_segment(Assembler& a, Rng& rng, int loop_index, int max_trip,
                       bool allow_mmx_bridge) {
  const uint8_t counter = (loop_index % 2 == 0) ? isa::R0 : isa::R1;
  const int trips = 1 + rng.below(max_trip);
  const int32_t in_stride = 8 * rng.below(3);    // 0, 8, 16
  const int32_t out_stride = 8 * rng.below(3);
  const Bounds bounds{
      static_cast<int32_t>(kRegionLen) - 8 - in_stride * (trips - 1),
      static_cast<int32_t>(kRegionLen) - 8 - out_stride * (trips - 1),
      static_cast<int32_t>(kRegionLen) - 8};
  const std::string head = "loop" + std::to_string(loop_index);

  a.li(counter, trips);
  a.label(head);
  const int body_ops = 2 + rng.below(6);
  for (int i = 0; i < body_ops; ++i) {
    emit_random_op(a, rng, bounds, allow_mmx_bridge);
  }
  if (in_stride != 0) a.saddi(kInBase, in_stride);
  if (out_stride != 0) a.saddi(kOutBase, out_stride);
  a.loopnz(counter, head);
  emit_bases(a);
}

// Random crossbar route for one operand fetch, valid under `cfg`:
// 8-bit-port configurations route individual bytes anywhere in the input
// window; 16-bit-port configurations route aligned half-word pairs.
core::Route random_route(Rng& rng, const core::CrossbarConfig& cfg) {
  std::array<uint8_t, core::kOperandBytes> srcs{};
  if (cfg.port_bits == 8) {
    for (auto& s : srcs) {
      s = rng.chance(0.25)
              ? core::Route::kStraight
              : static_cast<uint8_t>(rng.below(cfg.input_bytes()));
    }
  } else {
    for (int h = 0; h < core::kOperandBytes / 2; ++h) {
      if (rng.chance(0.25)) {
        srcs[static_cast<size_t>(2 * h)] = core::Route::kStraight;
        srcs[static_cast<size_t>(2 * h + 1)] = core::Route::kStraight;
      } else {
        const int src_half = rng.below(cfg.input_ports);
        srcs[static_cast<size_t>(2 * h)] = static_cast<uint8_t>(2 * src_half);
        srcs[static_cast<size_t>(2 * h + 1)] =
            static_cast<uint8_t>(2 * src_half + 1);
      }
    }
  }
  core::Route r;
  // Route both pipes identically: the executing pipe is a timing property,
  // and the native lowering rejects U/V-asymmetric routes by design.
  r.set_operand_both_pipes(rng.below(2), srcs);
  return r;
}

// A hand-programmed SPU loop in the paper's Figure 7 shape: MMIO prologue,
// one microprogram state per loop-body instruction (loopnz included),
// GO immediately before the loop head. Routed states sit only on
// two-operand ALU positions, mirroring what the orchestrator emits.
void emit_spu_segment(Assembler& a, core::MicroBuilder& mb, Rng& rng,
                      const core::CrossbarConfig& cfg, uint64_t mmio_base,
                      int max_trip) {
  const int trips = 1 + rng.below(max_trip);
  const int32_t stride = 8;
  const int alu_count = 1 + rng.below(3);

  // Body plan first (the microprogram must know every position's kind).
  struct BodyOp {
    enum Kind { kLoadIn, kLoadScratch, kAlu, kStore, kAdvanceIn, kAdvanceOut,
                kLoop } kind;
    Op op = Op::Nop;
    uint8_t dst = 0, src = 0;
    int32_t disp = 0;
    bool routed = false;
  };
  std::vector<BodyOp> body;
  const int32_t max_disp =
      static_cast<int32_t>(kRegionLen) - 8 - stride * (trips - 1);
  body.push_back({BodyOp::kLoadIn, Op::MovqLoad, 0, 0,
                  aligned_disp(rng, max_disp, 8), false});
  body.push_back({BodyOp::kLoadScratch, Op::MovqLoad, 1, 0,
                  aligned_disp(rng, static_cast<int32_t>(kRegionLen) - 8, 8),
                  false});
  for (int i = 0; i < alu_count; ++i) {
    BodyOp op{BodyOp::kAlu,
              kAluOps[static_cast<size_t>(rng.below(kAluOps.size()))],
              static_cast<uint8_t>(rng.below(4)),
              static_cast<uint8_t>(rng.below(4)), 0, rng.chance(0.8)};
    body.push_back(op);
  }
  body.push_back({BodyOp::kStore, Op::MovqStore, 0,
                  static_cast<uint8_t>(rng.below(4)),
                  aligned_disp(rng, max_disp, 8), false});
  body.push_back({BodyOp::kAdvanceIn, Op::SAddi, 0, 0, stride, false});
  body.push_back({BodyOp::kAdvanceOut, Op::SAddi, 0, 0, stride, false});
  body.push_back({BodyOp::kLoop, Op::Loopnz, 0, 0, 0, false});

  // Microprogram: one state per body position.
  for (const auto& op : body) {
    if (op.kind == BodyOp::kAlu && op.routed) {
      mb.add_state(random_route(rng, cfg));
    } else {
      mb.add_straight_state();
    }
  }
  mb.seal_simple_loop(static_cast<uint32_t>(trips));

  // Programming prologue (context 0), bases, counter, GO, loop.
  core::emit_spu_base(a, mmio_base);
  core::emit_spu_stop(a, 0);
  core::emit_spu_words(a, mb.mmio_words());
  emit_bases(a);
  a.li(isa::R0, trips);
  core::emit_spu_go(a, 0);
  a.label("spu_loop");
  for (const auto& op : body) {
    switch (op.kind) {
      case BodyOp::kLoadIn:
        a.movq_load(op.dst, kInBase, op.disp);
        break;
      case BodyOp::kLoadScratch:
        a.movq_load(op.dst, kScratchBase, op.disp);
        break;
      case BodyOp::kAlu:
        emit_inst(a, op.op, op.dst, op.src);
        break;
      case BodyOp::kStore:
        a.movq_store(kOutBase, op.disp, op.src);
        break;
      case BodyOp::kAdvanceIn:
        a.saddi(kInBase, op.disp);
        break;
      case BodyOp::kAdvanceOut:
        a.saddi(kOutBase, op.disp);
        break;
      case BodyOp::kLoop:
        a.loopnz(isa::R0, "spu_loop");
        break;
    }
  }
  emit_bases(a);
}

// Plant a data-dependent branch: well-formed for the simulator (both paths
// reach the same join), unlowerable by design for the native tier.
void emit_reject_plant(Assembler& a, Rng& rng) {
  a.movq_load(isa::MM6, kInBase, 0);
  const uint8_t reg = rand_data_reg(rng);
  a.movd_from_mmx(reg, isa::MM6);
  a.jnz(reg, "reject_join");
  a.paddw(isa::MM6, isa::MM6);
  a.label("reject_join");
  a.movq_store(kOutBase, static_cast<int32_t>(kRegionLen) - 8, isa::MM6);
}

}  // namespace

void FuzzProgram::init_arena(sim::Memory& mem) const {
  mem.clear();
  // Scratch coefficients: deterministic in the seed (they constant-fold).
  uint64_t x = seed ^ 0xc0ffee123456789ull;
  for (size_t i = 0; i < scratch.len; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    mem.write8(scratch.addr + i, static_cast<uint8_t>(x >> 33));
  }
  for (size_t i = 0; i < input_bytes.size() && i < input.len; ++i) {
    mem.write8(input.addr + i, input_bytes[i]);
  }
}

FuzzProgram generate(const GeneratorOptions& opts) {
  Rng rng(opts.seed);
  FuzzProgram fp;
  fp.seed = opts.seed;
  fp.cfg = opts.cfg;
  fp.mem_bytes = opts.mem_bytes;
  fp.input = {kInputAddr, kRegionLen};
  fp.output = {kOutputAddr, kRegionLen};
  fp.scratch = {kScratchAddr, kRegionLen};
  fp.use_spu = rng.chance(opts.spu_rate);
  fp.expects_reject = !fp.use_spu && rng.chance(opts.reject_rate);

  Assembler a;
  if (fp.use_spu) {
    core::MicroBuilder mb(opts.cfg);
    emit_spu_segment(a, mb, rng, opts.cfg, fp.mmio_base, opts.max_trip);
    // A straight tail keeps SPU programs from being loop-only.
    const int tail = rng.below(1 + opts.max_straight_ops / 2);
    for (int i = 0; i < tail; ++i) {
      emit_random_op(a, rng, kStraightBounds, /*allow_mmx_bridge=*/true);
    }
  } else {
    emit_bases(a);
    const bool bridge = rng.chance(opts.defer_rate);
    const int loops = rng.below(opts.max_loops + 1);
    const int straight = 1 + rng.below(opts.max_straight_ops);
    for (int i = 0; i < straight; ++i) {
      emit_random_op(a, rng, kStraightBounds, bridge);
    }
    for (int l = 0; l < loops; ++l) {
      emit_loop_segment(a, rng, l, opts.max_trip, bridge);
      const int mid = rng.below(1 + opts.max_straight_ops / 2);
      for (int i = 0; i < mid; ++i) {
        emit_random_op(a, rng, kStraightBounds, bridge);
      }
    }
    if (fp.expects_reject) emit_reject_plant(a, rng);
  }
  a.halt();
  fp.program = a.take();

  fp.input_bytes.resize(fp.input.len);
  for (auto& b : fp.input_bytes) {
    b = static_cast<uint8_t>(rng.next());
  }
  return fp;
}

}  // namespace subword::fuzz
