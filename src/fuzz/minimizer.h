// minimizer.h — corpus minimization: shrink a diverging program while
// preserving the divergence, then dump a replayable reproducer.
//
// ddmin-style chunk removal over the instruction vector (branch targets are
// retargeted across the cut; a candidate that would orphan a target is
// simply not proposed), followed by operand reduction (loop trip counts
// toward 1, displacements toward 0, shift counts toward 1). Every candidate
// is validated by re-running the oracle — typically "run_differential still
// reports a divergence" — so an ill-formed candidate (one the simulator
// itself rejects) can never be accepted.
#pragma once

#include <functional>
#include <string>

#include "fuzz/differential.h"
#include "fuzz/generator.h"

namespace subword::fuzz {

// True when the candidate still exhibits the behavior being chased.
using Oracle = std::function<bool(const FuzzProgram&)>;

// The standard oracle: the differential harness reports at least one
// divergence (and the reference run itself still completes).
[[nodiscard]] Oracle divergence_oracle(const DiffOptions& opts = {});

struct MinimizeStats {
  int original_size = 0;
  int minimized_size = 0;
  int oracle_calls = 0;
  int rounds = 0;
};

// Shrink `fp` under `oracle`. Requires oracle(fp) to be true on entry
// (throws std::invalid_argument otherwise: minimizing a non-reproducing
// input silently would hide a harness bug).
[[nodiscard]] FuzzProgram minimize(const FuzzProgram& fp, const Oracle& oracle,
                                   MinimizeStats* stats = nullptr);

// Replayable reproducer: a self-contained text file holding the execution
// parameters, the input payload and the disassembled program (parseable by
// isa::parse_program, so the reproducer is also human-editable).
void write_reproducer(const FuzzProgram& fp, const std::string& path);
[[nodiscard]] FuzzProgram load_reproducer(const std::string& path);

}  // namespace subword::fuzz
