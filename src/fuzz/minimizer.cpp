#include "fuzz/minimizer.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "isa/disasm.h"
#include "isa/parse.h"

namespace subword::fuzz {
namespace {

// Rebuild a program with the instruction range [begin, end) removed,
// retargeting every surviving branch. Returns nullopt when a surviving
// branch targets into the removed range (the cut would orphan it).
std::optional<isa::Program> remove_range(const isa::Program& p, size_t begin,
                                         size_t end) {
  const auto& insts = p.insts();
  std::vector<int32_t> new_index(insts.size(), -1);
  int32_t next = 0;
  for (size_t i = 0; i < insts.size(); ++i) {
    if (i < begin || i >= end) new_index[i] = next++;
  }

  std::vector<isa::Inst> out;
  out.reserve(insts.size() - (end - begin));
  for (size_t i = 0; i < insts.size(); ++i) {
    if (i >= begin && i < end) continue;
    isa::Inst in = insts[i];
    if (isa::is_branch_op(in.op)) {
      const auto t = static_cast<size_t>(in.target);
      if (t >= insts.size() || new_index[t] < 0) return std::nullopt;
      in.target = new_index[t];
    }
    out.push_back(in);
  }

  std::unordered_map<std::string, int32_t> labels;
  for (const auto& [name, idx] : p.labels()) {
    const auto i = static_cast<size_t>(idx);
    if (i < new_index.size() && new_index[i] >= 0) {
      labels.emplace(name, new_index[i]);
    }
  }
  return isa::Program(std::move(out), std::move(labels));
}

FuzzProgram with_program(const FuzzProgram& fp, isa::Program p) {
  FuzzProgram out = fp;
  out.program = std::move(p);
  return out;
}

bool check(const Oracle& oracle, const FuzzProgram& candidate,
           MinimizeStats& stats) {
  ++stats.oracle_calls;
  return oracle(candidate);
}

// One ddmin sweep at the given chunk size; returns true when any cut was
// accepted. The final instruction (the halt) is never proposed for
// removal — a program that runs off its end is rejected by the oracle
// anyway, so proposing it only wastes oracle calls.
bool chunk_pass(FuzzProgram& fp, const Oracle& oracle, size_t chunk,
                MinimizeStats& stats) {
  bool changed = false;
  size_t i = 0;
  while (i + 1 < fp.program.size()) {
    const size_t end = std::min(i + chunk, fp.program.size() - 1);
    if (end <= i) break;
    auto candidate_program = remove_range(fp.program, i, end);
    if (candidate_program.has_value()) {
      FuzzProgram candidate =
          with_program(fp, std::move(*candidate_program));
      if (check(oracle, candidate, stats)) {
        fp = std::move(candidate);
        changed = true;
        continue;  // same index now names the next chunk
      }
    }
    i = end;
  }
  return changed;
}

// Operand reduction: loop trips toward 1 (Li feeding a Loopnz), memory
// displacements toward 0, immediates/shift counts toward small values.
bool reduce_pass(FuzzProgram& fp, const Oracle& oracle,
                 MinimizeStats& stats) {
  bool changed = false;
  for (size_t i = 0; i < fp.program.size(); ++i) {
    const isa::Inst& cur = fp.program.at(i);
    std::vector<isa::Inst> variants;
    if (cur.disp != 0) {
      isa::Inst v = cur;
      v.disp = (cur.op == isa::Op::Li) ? 1 : 0;
      variants.push_back(v);
    }
    if (cur.imm8 > 1) {
      isa::Inst v = cur;
      v.imm8 = 1;
      variants.push_back(v);
    }
    for (const auto& v : variants) {
      FuzzProgram candidate = fp;
      candidate.program.insts()[i] = v;
      if (check(oracle, candidate, stats)) {
        fp = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return changed;
}

std::string hex_encode(const std::vector<uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string s;
  s.reserve(bytes.size() * 2);
  for (const uint8_t b : bytes) {
    s.push_back(digits[b >> 4]);
    s.push_back(digits[b & 0xF]);
  }
  return s;
}

std::vector<uint8_t> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) {
    throw std::runtime_error("reproducer: odd-length hex payload");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw std::runtime_error("reproducer: bad hex digit");
  };
  std::vector<uint8_t> out(s.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((nibble(s[2 * i]) << 4) |
                                  nibble(s[2 * i + 1]));
  }
  return out;
}

const core::CrossbarConfig& config_by_name(const std::string& name) {
  for (const auto& cfg : core::kAllConfigs) {
    if (name == cfg.name) return cfg;
  }
  throw std::runtime_error("reproducer: unknown crossbar config '" + name +
                           "'");
}

}  // namespace

Oracle divergence_oracle(const DiffOptions& opts) {
  return [opts](const FuzzProgram& fp) {
    const DiffResult r = run_differential(fp, opts);
    return r.reference_ok && !r.divergences.empty();
  };
}

FuzzProgram minimize(const FuzzProgram& fp, const Oracle& oracle,
                     MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st.original_size = static_cast<int>(fp.program.size());

  FuzzProgram cur = fp;
  if (!check(oracle, cur, st)) {
    throw std::invalid_argument(
        "minimize: input does not reproduce under the oracle");
  }

  bool changed = true;
  while (changed) {
    ++st.rounds;
    changed = false;
    for (size_t chunk = std::max<size_t>(1, cur.program.size() / 2);
         chunk >= 1; chunk /= 2) {
      if (chunk_pass(cur, oracle, chunk, st)) changed = true;
      if (chunk == 1) break;
    }
    if (reduce_pass(cur, oracle, st)) changed = true;
  }
  st.minimized_size = static_cast<int>(cur.program.size());
  return cur;
}

void write_reproducer(const FuzzProgram& fp, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("cannot open reproducer file '" + path + "'");
  }
  os << "# subword fuzz reproducer\n";
  os << "seed: " << fp.seed << "\n";
  os << "config: " << fp.cfg.name << "\n";
  os << "use_spu: " << (fp.use_spu ? 1 : 0) << "\n";
  os << "num_contexts: " << fp.num_contexts << "\n";
  os << "mmio_base: " << fp.mmio_base << "\n";
  os << "mem_bytes: " << fp.mem_bytes << "\n";
  os << "expects_reject: " << (fp.expects_reject ? 1 : 0) << "\n";
  os << "input: " << fp.input.addr << " " << fp.input.len << "\n";
  os << "output: " << fp.output.addr << " " << fp.output.len << "\n";
  os << "scratch: " << fp.scratch.addr << " " << fp.scratch.len << "\n";
  os << "input_bytes: " << hex_encode(fp.input_bytes) << "\n";
  os << "program:\n";
  os << isa::disassemble(fp.program);
  os << "end\n";
}

FuzzProgram load_reproducer(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot read reproducer file '" + path + "'");
  }
  FuzzProgram fp;
  std::string line;
  std::ostringstream listing;
  bool in_program = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    if (in_program) {
      if (line == "end") {
        saw_end = true;
        break;
      }
      listing << line << "\n";
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("reproducer: malformed line '" + line + "'");
    }
    const std::string key = line.substr(0, colon);
    std::istringstream value(line.substr(colon + 1));
    if (key == "seed") {
      value >> fp.seed;
    } else if (key == "config") {
      std::string name;
      value >> name;
      fp.cfg = config_by_name(name);
    } else if (key == "use_spu") {
      int v = 0;
      value >> v;
      fp.use_spu = v != 0;
    } else if (key == "num_contexts") {
      value >> fp.num_contexts;
    } else if (key == "mmio_base") {
      value >> fp.mmio_base;
    } else if (key == "mem_bytes") {
      value >> fp.mem_bytes;
    } else if (key == "expects_reject") {
      int v = 0;
      value >> v;
      fp.expects_reject = v != 0;
    } else if (key == "input") {
      value >> fp.input.addr >> fp.input.len;
    } else if (key == "output") {
      value >> fp.output.addr >> fp.output.len;
    } else if (key == "scratch") {
      value >> fp.scratch.addr >> fp.scratch.len;
    } else if (key == "input_bytes") {
      std::string hex;
      value >> hex;
      fp.input_bytes = hex_decode(hex);
    } else if (key == "program") {
      in_program = true;
    } else {
      throw std::runtime_error("reproducer: unknown key '" + key + "'");
    }
  }
  if (!in_program || !saw_end) {
    throw std::runtime_error("reproducer: missing program section");
  }
  fp.program = isa::parse_program(listing.str());
  return fp;
}

}  // namespace subword::fuzz
