#include "backend/lowering.h"

#include <array>
#include <atomic>
#include <map>
#include <optional>
#include <utility>

#include "core/spu.h"
#include "isa/disasm.h"
#include "isa/opcodes.h"

namespace subword::backend {

using isa::Inst;
using isa::Op;

namespace {

std::atomic<bool> g_fault_injection{false};

// Scalar register state during the walk. A register is either *concrete*
// (the walker knows its value; control flow and addresses may depend on
// it) or *deferred* (the value is data-dependent and lives in
// NativeState::gp at replay time). `materialized` marks concrete
// registers whose current value has also been written into the native GP
// bank, so deferred ops can read them without re-emitting a set.
struct GpSlot {
  uint64_t val = 0;
  bool deferred = false;
  bool materialized = false;
};

class Walker {
 public:
  Walker(const isa::Program& prog, const LoweringSpec& spec)
      : prog_(prog), spec_(spec), mem_(spec.mem_bytes),
        known_(spec.mem_bytes, true) {
    if (spec_.init) spec_.init(mem_);
    for (const auto& r : spec_.data_regions) {
      if (r.addr + r.len > mem_.size() || r.addr + r.len < r.addr) {
        throw LoweringError("data region outside the arena");
      }
      mark_known(r.addr, r.len, false);
    }
    if (spec_.use_spu) {
      spu_.emplace(spec_.cfg, spec_.num_contexts);
      mmio_.emplace(&*spu_);
      mem_.map_device(spec_.mmio_base, core::SpuMmio::kWindowSize, &*mmio_);
    }
  }

  NativeTrace run() {
    uint64_t pc = 0;
    for (;;) {
      cur_pc_ = pc;
      if (trace_.source_instructions >= spec_.max_ops) {
        bail("dynamic stream exceeds " + std::to_string(spec_.max_ops) +
             " instructions (max_ops)");
      }
      if (pc >= prog_.size()) {
        bail("pc ran off the program");
      }
      const Inst& in = prog_.at(pc);
      uint64_t next = pc + 1;
      bool halt = false;
      step(in, &next, &halt);
      ++trace_.source_instructions;
      // The decoupled controller steps once per retired instruction —
      // scalar instructions included — exactly as sim::Machine drives
      // sim::OperandRouter::retire.
      if (spu_) spu_->retire(in);
      if (halt) break;
      pc = next;
    }
    return std::move(trace_);
  }

 private:
  // Every in-walk rejection funnels through here so the error carries the
  // bail site: static op index, disassembly, crossbar config.
  [[noreturn]] void bail(const std::string& what) const {
    const std::string inst = cur_pc_ < prog_.size()
                                 ? isa::disassemble(prog_.at(cur_pc_))
                                 : std::string("<end of program>");
    const std::string cfg =
        spec_.cfg.name.empty() ? "-" : std::string(spec_.cfg.name);
    throw LoweringError(what, static_cast<int64_t>(cur_pc_), inst, cfg);
  }

  // -- scalar-plane helpers --------------------------------------------------

  [[nodiscard]] uint64_t concrete(uint8_t reg, const char* what) const {
    if (gp_[reg].deferred) {
      bail(std::string(what) + " depends on data (R" + std::to_string(reg) +
           ")");
    }
    return gp_[reg].val;
  }

  void write_concrete(uint8_t reg, uint64_t v) {
    gp_[reg] = GpSlot{v, /*deferred=*/false, /*materialized=*/false};
  }

  // Ensure the native GP bank holds this register's value at this point of
  // the trace, emitting a set for concrete values on first use.
  void materialize(uint8_t reg) {
    GpSlot& s = gp_[reg];
    if (s.deferred || s.materialized) return;
    append_gp_set(trace_, reg, s.val);
    s.materialized = true;
  }

  void defer(uint8_t reg) {
    gp_[reg].deferred = true;
    gp_[reg].materialized = true;
  }

  [[nodiscard]] uint64_t addr_of(const Inst& in, const char* what) const {
    const uint64_t base = concrete(in.base, what);
    return base + static_cast<uint64_t>(static_cast<int64_t>(in.disp));
  }

  [[nodiscard]] uint32_t arena_addr(uint64_t addr, uint64_t len,
                                    const char* what) const {
    if (addr + len > mem_.size() || addr + len < addr) {
      bail(std::string(what) + ": address " + std::to_string(addr) +
           " outside the arena");
    }
    return static_cast<uint32_t>(addr);
  }

  // Replay-invariant bytes: init state and recorded constant stores. MMX
  // stores and deferred GP stores flip bytes to data.
  [[nodiscard]] bool known(uint64_t addr, uint64_t len) const {
    for (uint64_t i = 0; i < len; ++i) {
      if (!known_[addr + i]) return false;
    }
    return true;
  }

  void mark_known(uint64_t addr, uint64_t len, bool k) {
    for (uint64_t i = 0; i < len; ++i) known_[addr + i] = k;
  }

  // Intern the current controller state's route for this instruction, or
  // -1 when the operands pass through unrouted. Verifies pipe symmetry:
  // the backend replays through the U slice, which is only sound when the
  // V slice gathers identically.
  int32_t resolve_route(uint8_t* flags) {
    *flags = 0;
    if (!spu_ || !spu_->active()) return -1;
    const core::SpuProgram& ctx = spu_->context(spu_->selected_context());
    const core::Route& r = ctx.states[spu_->current_state()].route;
    bool any = false;
    for (int operand = 0; operand < 2; ++operand) {
      const int u_off = core::bus_offset(sim::Pipe::U, operand);
      const int v_off = core::bus_offset(sim::Pipe::V, operand);
      bool routed = false;
      for (int i = 0; i < core::kOperandBytes; ++i) {
        const uint8_t u = r.sel[static_cast<size_t>(u_off + i)];
        const uint8_t v = r.sel[static_cast<size_t>(v_off + i)];
        if (u != v) {
          bail("route differs between the U and V pipe slices; the executing "
               "pipe is a timing property the native backend does not model");
        }
        routed = routed || u != core::Route::kStraight;
      }
      if (routed) {
        *flags |= operand == 0 ? NativeOp::kRouteA : NativeOp::kRouteB;
        any = true;
      }
    }
    if (!any) return -1;
    auto [it, fresh] = route_ids_.try_emplace(
        r.sel, static_cast<int32_t>(trace_.routes.size()));
    if (fresh) trace_.routes.push_back(r);
    return it->second;
  }

  // -- scalar instruction classes --------------------------------------------

  // dst op= src. Folds when both sides are concrete, defers otherwise.
  template <typename Fold>
  void binop(const Inst& in, Fold fold) {
    GpSlot& dst = gp_[in.dst];
    const GpSlot& src = gp_[in.src];
    if (!dst.deferred && !src.deferred) {
      write_concrete(in.dst, fold(dst.val, src.val));
      return;
    }
    materialize(in.dst);
    materialize(in.src);
    append_gp_binop(trace_, in.op, in.dst, in.src);
    defer(in.dst);
  }

  // dst op= imm (SAddi/SSubi and the shifts).
  template <typename Fold>
  void immop(const Inst& in, Fold fold) {
    GpSlot& dst = gp_[in.dst];
    if (!dst.deferred) {
      write_concrete(in.dst, fold(dst.val));
      return;
    }
    switch (in.op) {
      case Op::SAddi:
      case Op::SSubi:
        append_gp_immop(trace_, in.op, in.dst,
                        static_cast<int64_t>(in.disp));
        break;
      default:
        append_gp_shift(trace_, in.op, in.dst, in.imm8);
        break;
    }
  }

  void step_scalar_load(const Inst& in) {
    const uint64_t addr = addr_of(in, "scalar load address");
    const uint64_t len = in.op == Op::SLoad16 ? 2
                         : in.op == Op::SLoad32 ? 4
                                                : 8;
    if (mem_.in_device_window(addr)) {
      if (len != 4) {
        bail("non-32-bit access inside the MMIO window");
      }
      // Controller state is modeled exactly, so an MMIO read folds to the
      // value the simulator would see at this point of the stream.
      uint32_t v = 0;
      try {
        v = mem_.read32(addr);
      } catch (const std::exception& e) {
        bail(std::string("SPU register read rejected: ") + e.what());
      }
      write_concrete(in.dst, static_cast<uint64_t>(static_cast<int64_t>(
                                 static_cast<int32_t>(v))));
      return;
    }
    const uint32_t a32 = arena_addr(addr, len, "scalar load");
    if (!known(addr, len)) {
      append_gp_load(trace_, in.op, in.dst, a32);
      defer(in.dst);
      return;
    }
    uint64_t v = 0;
    switch (in.op) {
      case Op::SLoad16:
        v = static_cast<uint64_t>(static_cast<int64_t>(
            static_cast<int16_t>(mem_.read16(addr))));
        break;
      case Op::SLoad32:
        v = static_cast<uint64_t>(static_cast<int64_t>(
            static_cast<int32_t>(mem_.read32(addr))));
        break;
      default:
        v = mem_.read64(addr);
        break;
    }
    write_concrete(in.dst, v);
  }

  void step_scalar_store(const Inst& in) {
    const uint64_t addr = addr_of(in, "scalar store address");
    const uint64_t len = in.op == Op::SStore16 ? 2
                         : in.op == Op::SStore32 ? 4
                                                 : 8;
    if (mem_.in_device_window(addr)) {
      if (len != 4) {
        bail("non-32-bit access inside the MMIO window");
      }
      // Program the modeled controller; the store needs no replay — the
      // backend resolves its effect (routes, GO, counters) right here. The
      // controller validates on GO, so an illegal microprogram surfaces as
      // a typed rejection, never as an escaped logic_error.
      const auto v = static_cast<uint32_t>(
          concrete(in.src, "SPU programming (MMIO store)"));
      try {
        mem_.write32(addr, v);
      } catch (const std::exception& e) {
        bail(std::string("SPU programming rejected: ") + e.what());
      }
      return;
    }
    const uint32_t a32 = arena_addr(addr, len, "scalar store");
    if (gp_[in.src].deferred) {
      append_gp_store(trace_, in.op, in.src, a32);
      mark_known(addr, len, false);
      return;
    }
    const uint64_t v = gp_[in.src].val;
    switch (in.op) {
      case Op::SStore16:
        mem_.write16(addr, static_cast<uint16_t>(v));
        break;
      case Op::SStore32:
        mem_.write32(addr, static_cast<uint32_t>(v));
        break;
      default:
        mem_.write64(addr, v);
        break;
    }
    mark_known(addr, len, true);
    append_scalar_store(trace_, static_cast<int>(len), a32, v);
  }

  void step_mmx(const Inst& in) {
    switch (in.op) {
      case Op::MovqLoad: {
        const uint64_t addr = addr_of(in, "movq load address");
        append_load64(trace_, in.dst, arena_addr(addr, 8, "movq load"));
        break;
      }
      case Op::MovqStore: {
        const uint64_t addr = addr_of(in, "movq store address");
        append_store64(trace_, in.src, arena_addr(addr, 8, "movq store"));
        mark_known(addr, 8, false);  // MMX output: data from here on
        break;
      }
      case Op::MovdLoad: {
        const uint64_t addr = addr_of(in, "movd load address");
        if (mem_.in_device_window(addr)) {
          // MMIO state is fully resolved during the walk; freeze the value.
          uint32_t v = 0;
          try {
            v = mem_.read32(addr);
          } catch (const std::exception& e) {
            bail(std::string("SPU register read rejected: ") + e.what());
          }
          append_set_imm(trace_, in.dst, static_cast<uint64_t>(v));
          break;
        }
        append_load32(trace_, in.dst, arena_addr(addr, 4, "movd load"));
        break;
      }
      case Op::MovdStore: {
        const uint64_t addr = addr_of(in, "movd store address");
        if (mem_.in_device_window(addr)) {
          bail("MMX store into the MMIO window is data-dependent SPU "
               "programming");
        }
        append_store32(trace_, in.src, arena_addr(addr, 4, "movd store"));
        mark_known(addr, 4, false);
        break;
      }
      case Op::MovdToMmx:
        if (gp_[in.src].deferred) {
          append_mmx_from_gp(trace_, in.dst, in.src);
        } else {
          append_set_imm(trace_, in.dst, gp_[in.src].val & 0xFFFFFFFFull);
        }
        break;
      case Op::MovdFromMmx:
        // MMX data enters the scalar plane: defer the register.
        append_gp_from_mmx(trace_, in.dst, in.src);
        defer(in.dst);
        break;
      case Op::Emms:
        break;
      default: {
        // Two-operand MMX data op, possibly crossbar-routed.
        uint8_t flags = 0;
        const int32_t route = resolve_route(&flags);
        Inst lowered = in;
        if (in.op == Op::Paddsw &&
            g_fault_injection.load(std::memory_order_relaxed)) {
          // Test-only planted bug: saturating add lowered as wrapping add
          // (see set_lowering_fault_injection in lowering.h).
          lowered.op = Op::Paddw;
        }
        append_alu(trace_, lowered, route, flags);
        break;
      }
    }
  }

  // -- one architectural step ------------------------------------------------

  void step(const Inst& in, uint64_t* next, bool* halt) {
    const auto& info = isa::op_info(in.op);
    if (info.is_mmx) {
      step_mmx(in);
      return;
    }
    switch (in.op) {
      case Op::Li:
        write_concrete(in.dst,
                       static_cast<uint64_t>(static_cast<int64_t>(in.disp)));
        break;
      case Op::SMov:
        if (gp_[in.src].deferred) {
          materialize(in.src);
          append_gp_mov(trace_, in.dst, in.src);
          defer(in.dst);
        } else {
          write_concrete(in.dst, gp_[in.src].val);
        }
        break;
      case Op::SAdd:
        binop(in, [](uint64_t a, uint64_t b) { return a + b; });
        break;
      case Op::SSub:
        binop(in, [](uint64_t a, uint64_t b) { return a - b; });
        break;
      case Op::SMul:
        binop(in, [](uint64_t a, uint64_t b) { return a * b; });
        break;
      case Op::SAnd:
        binop(in, [](uint64_t a, uint64_t b) { return a & b; });
        break;
      case Op::SOr:
        binop(in, [](uint64_t a, uint64_t b) { return a | b; });
        break;
      case Op::SXor:
        binop(in, [](uint64_t a, uint64_t b) { return a ^ b; });
        break;
      case Op::SAddi:
        immop(in, [&](uint64_t a) {
          return a + static_cast<uint64_t>(static_cast<int64_t>(in.disp));
        });
        break;
      case Op::SSubi:
        immop(in, [&](uint64_t a) {
          return a - static_cast<uint64_t>(static_cast<int64_t>(in.disp));
        });
        break;
      case Op::SShli:
        immop(in, [&](uint64_t a) { return a << in.imm8; });
        break;
      case Op::SShri:
        immop(in, [&](uint64_t a) { return a >> in.imm8; });
        break;
      case Op::SSrai:
        immop(in, [&](uint64_t a) {
          return static_cast<uint64_t>(static_cast<int64_t>(a) >> in.imm8);
        });
        break;

      case Op::SLoad16:
      case Op::SLoad32:
      case Op::SLoad64:
        step_scalar_load(in);
        break;
      case Op::SStore16:
      case Op::SStore32:
      case Op::SStore64:
        step_scalar_store(in);
        break;

      case Op::Jmp:
        *next = static_cast<uint64_t>(in.target);
        break;
      case Op::Jnz:
      case Op::Jz: {
        const bool nz = concrete(in.src, "branch condition") != 0;
        if (in.op == Op::Jnz ? nz : !nz) {
          *next = static_cast<uint64_t>(in.target);
        }
        break;
      }
      case Op::Loopnz: {
        const uint64_t v = concrete(in.src, "loop counter") - 1;
        gp_[in.src].val = v;
        gp_[in.src].materialized = false;
        if (v != 0) *next = static_cast<uint64_t>(in.target);
        break;
      }
      case Op::Nop:
        break;
      case Op::Halt:
        *halt = true;
        break;
      default:
        bail("unhandled scalar opcode");
    }
  }

  const isa::Program& prog_;
  const LoweringSpec& spec_;
  uint64_t cur_pc_ = 0;
  sim::Memory mem_;
  std::vector<bool> known_;
  std::array<GpSlot, isa::kNumGpRegs> gp_{};
  std::optional<core::Spu> spu_;
  std::optional<core::SpuMmio> mmio_;
  NativeTrace trace_;
  std::map<std::array<uint8_t, core::kBusBytes>, int32_t> route_ids_;
};

}  // namespace

NativeTrace lower(const isa::Program& program, const LoweringSpec& spec) {
  if (program.empty()) throw LoweringError("empty program");
  Walker w(program, spec);
  return w.run();
}

void set_lowering_fault_injection(bool enabled) {
  g_fault_injection.store(enabled, std::memory_order_relaxed);
}

bool lowering_fault_injection() {
  return g_fault_injection.load(std::memory_order_relaxed);
}

}  // namespace subword::backend
