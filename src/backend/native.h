// native.h — the native-SWAR execution backend's op trace and replay loop.
//
// The cycle-level simulator in src/sim answers "how fast would this run on
// the modeled hardware"; this backend answers "what bytes does the kernel
// produce" as fast as the *host* allows. A NativeTrace is the product of
// src/backend/lowering.h: the prepared program's full dynamic instruction
// stream, pre-decoded into host SWAR operations (src/swar — SSE2 where
// available, the portable bit-trick backend otherwise) with every address,
// shift count, crossbar route and scalar side effect resolved at prepare
// time. Execution (run_trace) is therefore a tight loop over
// function-pointer ops against a flat MMX register file and the memory
// arena — no decode, no pairing, no branch-predictor modeling, no stats
// bookkeeping.
//
// Invariants:
//  * A NativeTrace is immutable after lowering and safe to replay
//    concurrently from many threads (each replay owns its NativeState).
//  * Replaying a trace produces a memory arena and MMX register file
//    byte-identical to simulating the program it was lowered from, for
//    any input data (the lowering walker rejects programs for which this
//    cannot be proven — see lowering.h).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/crossbar.h"
#include "isa/inst.h"
#include "sim/memory.h"
#include "sim/regfile.h"
#include "swar/vec64.h"

namespace subword::backend {

struct NativeOp;
struct NativeTrace;

// Mutable execution state of one replay: the flat register files and the
// arena the ops read and write. `routes` aliases the owning trace's route
// table for the duration of run_trace. The GP bank exists for the *data*
// slice of the scalar plane only — control-flow scalar work (loop
// counters, addresses, SPU programming) is resolved away at lowering time
// and never replays.
struct NativeState {
  sim::MmxRegFile regs;
  std::array<uint64_t, isa::kNumGpRegs> gp{};
  sim::Memory* mem = nullptr;
  const core::Route* routes = nullptr;
};

// One pre-decoded operation. `fn` encodes the kind (load/store/alu/...);
// the remaining fields are its pre-resolved operands. Kept compact — a
// trace holds the whole unrolled dynamic stream.
struct NativeOp {
  using Fn = void (*)(const NativeOp&, NativeState&);
  using AluFn = swar::Vec64 (*)(swar::Vec64, swar::Vec64, uint64_t);

  // Operand-routing flags (crossbar-routed ALU ops) and the shift-count
  // source for shift ops.
  static constexpr uint8_t kRouteA = 1;      // operand a gathered via route
  static constexpr uint8_t kRouteB = 2;      // operand b gathered via route
  static constexpr uint8_t kCountImm = 4;    // shift count from imm8

  Fn fn = nullptr;
  union {
    AluFn alu;      // ALU ops: the resolved host SWAR operation
    uint64_t imm;   // set-immediate / recorded scalar-store value
  } u{};
  uint32_t addr = 0;      // resolved arena address (loads/stores)
  int32_t route = -1;     // index into NativeTrace::routes, -1 = unrouted
  uint8_t dst = 0;
  uint8_t src = 0;
  uint8_t imm8 = 0;       // shift count when kCountImm
  uint8_t flags = 0;
};

// The immutable lowering product cached alongside a PreparedProgram.
struct NativeTrace {
  std::vector<NativeOp> ops;
  // Deduplicated crossbar routes referenced by NativeOp::route. Routes are
  // control state (SPU microprogram words), never data, which is why they
  // can be resolved at prepare time.
  std::vector<core::Route> routes;
  // Dynamic instructions of the source program this trace replaces
  // (reported as KernelRun::stats.instructions for parity with the
  // simulator's accounting).
  uint64_t source_instructions = 0;
};

// Replay the trace. st.mem must be the arena the kernel's init_memory /
// bind_input populated; st.regs should start zeroed (architectural reset
// state, matching a fresh sim::Machine).
void run_trace(const NativeTrace& t, NativeState& st);

// -- Lowering building blocks (used by lowering.cpp; exposed for tests) ------

// The host SWAR function implementing an MMX data op (nullptr when the op
// has no ALU semantics).
[[nodiscard]] NativeOp::AluFn resolve_alu(isa::Op op);

// Trace-builder helpers: each appends one pre-resolved op.
//
// MMX plane:
void append_load64(NativeTrace& t, uint8_t dst, uint32_t addr);
void append_load32(NativeTrace& t, uint8_t dst, uint32_t addr);
void append_store64(NativeTrace& t, uint8_t src, uint32_t addr);
void append_store32(NativeTrace& t, uint8_t src, uint32_t addr);
void append_set_imm(NativeTrace& t, uint8_t dst, uint64_t value);
void append_scalar_store(NativeTrace& t, int width_bytes, uint32_t addr,
                         uint64_t value);
void append_alu(NativeTrace& t, const isa::Inst& in, int32_t route,
                uint8_t route_flags);
// Deferred scalar (GP) plane — data-dependent scalar computation the
// lowering walker could not fold away:
void append_gp_set(NativeTrace& t, uint8_t dst, uint64_t value);
void append_gp_mov(NativeTrace& t, uint8_t dst, uint8_t src);
// SAdd/SSub/SMul/SAnd/SOr/SXor:
void append_gp_binop(NativeTrace& t, isa::Op op, uint8_t dst, uint8_t src);
// SAddi/SSubi:
void append_gp_immop(NativeTrace& t, isa::Op op, uint8_t dst, int64_t imm);
// SShli/SShri/SSrai:
void append_gp_shift(NativeTrace& t, isa::Op op, uint8_t dst, uint8_t imm8);
// SLoad16/32/64 / SStore16/32/64 at a resolved address:
void append_gp_load(NativeTrace& t, isa::Op op, uint8_t dst, uint32_t addr);
void append_gp_store(NativeTrace& t, isa::Op op, uint8_t src, uint32_t addr);
// The MovdFromMmx / MovdToMmx bridges between the planes:
void append_gp_from_mmx(NativeTrace& t, uint8_t gp_dst, uint8_t mm_src);
void append_mmx_from_gp(NativeTrace& t, uint8_t mm_dst, uint8_t gp_src);

}  // namespace subword::backend
