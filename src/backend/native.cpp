#include "backend/native.h"

#include <stdexcept>

#include "swar/swar.h"

namespace subword::backend {

namespace sw = swar::active;
using isa::Op;
using swar::Vec64;

namespace {

// -- Op bodies ---------------------------------------------------------------
// Each is a stateless function the trace points at; the replay loop calls
// them back to back with no decode in between.

void fn_load64(const NativeOp& op, NativeState& st) {
  st.regs.write(op.dst, Vec64{st.mem->read64(op.addr)});
}

void fn_load32(const NativeOp& op, NativeState& st) {
  st.regs.write(op.dst,
                Vec64{static_cast<uint64_t>(st.mem->read32(op.addr))});
}

void fn_store64(const NativeOp& op, NativeState& st) {
  st.mem->write64(op.addr, st.regs.read(op.src).bits());
}

void fn_store32(const NativeOp& op, NativeState& st) {
  st.mem->write32(op.addr,
                  static_cast<uint32_t>(st.regs.read(op.src).bits()));
}

void fn_set_imm(const NativeOp& op, NativeState& st) {
  st.regs.write(op.dst, Vec64{op.u.imm});
}

void fn_sstore16(const NativeOp& op, NativeState& st) {
  st.mem->write16(op.addr, static_cast<uint16_t>(op.u.imm));
}

void fn_sstore32(const NativeOp& op, NativeState& st) {
  st.mem->write32(op.addr, static_cast<uint32_t>(op.u.imm));
}

void fn_sstore64(const NativeOp& op, NativeState& st) {
  st.mem->write64(op.addr, op.u.imm);
}

void fn_alu(const NativeOp& op, NativeState& st) {
  const Vec64 a = st.regs.read(op.dst);
  const Vec64 b = st.regs.read(op.src);
  const uint64_t count =
      (op.flags & NativeOp::kCountImm) != 0 ? op.imm8 : b.bits();
  st.regs.write(op.dst, op.u.alu(a, b, count));
}

// Deferred scalar plane: exact replicas of the simulator's GP semantics
// (sim/machine.cpp) for the data-dependent slice of the scalar stream.

void fn_gp_set(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = op.u.imm;
}

void fn_gp_mov(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = st.gp[op.src];
}

void fn_gp_add(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] += st.gp[op.src];
}

void fn_gp_sub(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] -= st.gp[op.src];
}

void fn_gp_mul(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] *= st.gp[op.src];
}

void fn_gp_and(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] &= st.gp[op.src];
}

void fn_gp_or(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] |= st.gp[op.src];
}

void fn_gp_xor(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] ^= st.gp[op.src];
}

void fn_gp_addi(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] += op.u.imm;
}

void fn_gp_subi(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] -= op.u.imm;
}

void fn_gp_shli(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] <<= op.imm8;
}

void fn_gp_shri(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] >>= op.imm8;
}

void fn_gp_srai(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = static_cast<uint64_t>(
      static_cast<int64_t>(st.gp[op.dst]) >> op.imm8);
}

void fn_gp_load16(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = static_cast<uint64_t>(static_cast<int64_t>(
      static_cast<int16_t>(st.mem->read16(op.addr))));
}

void fn_gp_load32(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = static_cast<uint64_t>(static_cast<int64_t>(
      static_cast<int32_t>(st.mem->read32(op.addr))));
}

void fn_gp_load64(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = st.mem->read64(op.addr);
}

void fn_gp_store16(const NativeOp& op, NativeState& st) {
  st.mem->write16(op.addr, static_cast<uint16_t>(st.gp[op.src]));
}

void fn_gp_store32(const NativeOp& op, NativeState& st) {
  st.mem->write32(op.addr, static_cast<uint32_t>(st.gp[op.src]));
}

void fn_gp_store64(const NativeOp& op, NativeState& st) {
  st.mem->write64(op.addr, st.gp[op.src]);
}

void fn_gp_from_mmx(const NativeOp& op, NativeState& st) {
  st.gp[op.dst] = st.regs.read(op.src).bits() & 0xFFFFFFFFull;
}

void fn_mmx_from_gp(const NativeOp& op, NativeState& st) {
  st.regs.write(op.dst, Vec64{st.gp[op.src] & 0xFFFFFFFFull});
}

void fn_alu_routed(const NativeOp& op, NativeState& st) {
  Vec64 a = st.regs.read(op.dst);
  Vec64 b = st.regs.read(op.src);
  const core::Route& r = st.routes[op.route];
  // The route's U and V slices are verified identical at lowering time, so
  // gathering through the U slice is pipe-exact.
  if ((op.flags & NativeOp::kRouteA) != 0) {
    a = core::apply_route(r, sim::Pipe::U, 0, st.regs, a);
  }
  if ((op.flags & NativeOp::kRouteB) != 0) {
    b = core::apply_route(r, sim::Pipe::U, 1, st.regs, b);
  }
  // Shift counts come from the post-route operand, exactly as the
  // simulator computes them (sim/machine.cpp).
  const uint64_t count =
      (op.flags & NativeOp::kCountImm) != 0 ? op.imm8 : b.bits();
  st.regs.write(op.dst, op.u.alu(a, b, count));
}

}  // namespace

void run_trace(const NativeTrace& t, NativeState& st) {
  st.routes = t.routes.data();
  for (const NativeOp& op : t.ops) op.fn(op, st);
}

NativeOp::AluFn resolve_alu(isa::Op op) {
  // Mirrors sim::mmx_alu (sim/exec.cpp) case for case, but resolves the
  // host SWAR function once at lowering time instead of per execution.
  switch (op) {
    case Op::MovqRR:
      return +[](Vec64, Vec64 b, uint64_t) { return b; };

    case Op::Paddb:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::add<uint8_t>(a, b); };
    case Op::Paddw:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::add<uint16_t>(a, b); };
    case Op::Paddd:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::add<uint32_t>(a, b); };
    case Op::Psubb:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::sub<uint8_t>(a, b); };
    case Op::Psubw:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::sub<uint16_t>(a, b); };
    case Op::Psubd:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::sub<uint32_t>(a, b); };

    case Op::Paddsb:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::add_sat<int8_t>(a, b); };
    case Op::Paddsw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::add_sat<int16_t>(a, b);
      };
    case Op::Paddusb:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::add_sat<uint8_t>(a, b);
      };
    case Op::Paddusw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::add_sat<uint16_t>(a, b);
      };
    case Op::Psubsb:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::sub_sat<int8_t>(a, b); };
    case Op::Psubsw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::sub_sat<int16_t>(a, b);
      };
    case Op::Psubusb:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::sub_sat<uint8_t>(a, b);
      };
    case Op::Psubusw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::sub_sat<uint16_t>(a, b);
      };

    case Op::Pmullw:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::mullo16(a, b); };
    case Op::Pmulhw:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::mulhi16(a, b); };
    case Op::Pmaddwd:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::maddwd(a, b); };

    case Op::Pcmpeqb:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpeq<uint8_t>(a, b); };
    case Op::Pcmpeqw:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpeq<uint16_t>(a, b); };
    case Op::Pcmpeqd:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpeq<uint32_t>(a, b); };
    case Op::Pcmpgtb:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpgt<int8_t>(a, b); };
    case Op::Pcmpgtw:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpgt<int16_t>(a, b); };
    case Op::Pcmpgtd:
      return
          +[](Vec64 a, Vec64 b, uint64_t) { return sw::cmpgt<int32_t>(a, b); };

    case Op::Pand:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::and_(a, b); };
    case Op::Pandn:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::andn(a, b); };
    case Op::Por:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::or_(a, b); };
    case Op::Pxor:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::xor_(a, b); };

    case Op::Psllw:
      return +[](Vec64 a, Vec64, uint64_t c) { return sw::shl<uint16_t>(a, c); };
    case Op::Pslld:
      return +[](Vec64 a, Vec64, uint64_t c) { return sw::shl<uint32_t>(a, c); };
    case Op::Psllq:
      return +[](Vec64 a, Vec64, uint64_t c) { return sw::shl<uint64_t>(a, c); };
    case Op::Psrlw:
      return +[](Vec64 a, Vec64, uint64_t c) {
        return sw::shr_logical<uint16_t>(a, c);
      };
    case Op::Psrld:
      return +[](Vec64 a, Vec64, uint64_t c) {
        return sw::shr_logical<uint32_t>(a, c);
      };
    case Op::Psrlq:
      return +[](Vec64 a, Vec64, uint64_t c) {
        return sw::shr_logical<uint64_t>(a, c);
      };
    case Op::Psraw:
      return +[](Vec64 a, Vec64, uint64_t c) {
        return sw::shr_arith<int16_t>(a, c);
      };
    case Op::Psrad:
      return +[](Vec64 a, Vec64, uint64_t c) {
        return sw::shr_arith<int32_t>(a, c);
      };

    case Op::Packsswb:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::pack_sswb(a, b); };
    case Op::Packssdw:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::pack_ssdw(a, b); };
    case Op::Packuswb:
      return +[](Vec64 a, Vec64 b, uint64_t) { return sw::pack_uswb(a, b); };

    case Op::Punpcklbw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_lo<uint8_t>(a, b);
      };
    case Op::Punpcklwd:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_lo<uint16_t>(a, b);
      };
    case Op::Punpckldq:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_lo<uint32_t>(a, b);
      };
    case Op::Punpckhbw:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_hi<uint8_t>(a, b);
      };
    case Op::Punpckhwd:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_hi<uint16_t>(a, b);
      };
    case Op::Punpckhdq:
      return +[](Vec64 a, Vec64 b, uint64_t) {
        return sw::unpack_hi<uint32_t>(a, b);
      };

    default:
      return nullptr;
  }
}

void append_load64(NativeTrace& t, uint8_t dst, uint32_t addr) {
  NativeOp op;
  op.fn = fn_load64;
  op.dst = dst;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_load32(NativeTrace& t, uint8_t dst, uint32_t addr) {
  NativeOp op;
  op.fn = fn_load32;
  op.dst = dst;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_store64(NativeTrace& t, uint8_t src, uint32_t addr) {
  NativeOp op;
  op.fn = fn_store64;
  op.src = src;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_store32(NativeTrace& t, uint8_t src, uint32_t addr) {
  NativeOp op;
  op.fn = fn_store32;
  op.src = src;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_set_imm(NativeTrace& t, uint8_t dst, uint64_t value) {
  NativeOp op;
  op.fn = fn_set_imm;
  op.dst = dst;
  op.u.imm = value;
  t.ops.push_back(op);
}

void append_scalar_store(NativeTrace& t, int width_bytes, uint32_t addr,
                         uint64_t value) {
  NativeOp op;
  switch (width_bytes) {
    case 2: op.fn = fn_sstore16; break;
    case 4: op.fn = fn_sstore32; break;
    case 8: op.fn = fn_sstore64; break;
    default:
      throw std::logic_error("append_scalar_store: bad width");
  }
  op.addr = addr;
  op.u.imm = value;
  t.ops.push_back(op);
}

void append_gp_set(NativeTrace& t, uint8_t dst, uint64_t value) {
  NativeOp op;
  op.fn = fn_gp_set;
  op.dst = dst;
  op.u.imm = value;
  t.ops.push_back(op);
}

void append_gp_mov(NativeTrace& t, uint8_t dst, uint8_t src) {
  NativeOp op;
  op.fn = fn_gp_mov;
  op.dst = dst;
  op.src = src;
  t.ops.push_back(op);
}

void append_gp_binop(NativeTrace& t, isa::Op o, uint8_t dst, uint8_t src) {
  NativeOp op;
  switch (o) {
    case Op::SAdd: op.fn = fn_gp_add; break;
    case Op::SSub: op.fn = fn_gp_sub; break;
    case Op::SMul: op.fn = fn_gp_mul; break;
    case Op::SAnd: op.fn = fn_gp_and; break;
    case Op::SOr: op.fn = fn_gp_or; break;
    case Op::SXor: op.fn = fn_gp_xor; break;
    default:
      throw std::logic_error("append_gp_binop: not a GP binary op");
  }
  op.dst = dst;
  op.src = src;
  t.ops.push_back(op);
}

void append_gp_immop(NativeTrace& t, isa::Op o, uint8_t dst, int64_t imm) {
  NativeOp op;
  switch (o) {
    case Op::SAddi: op.fn = fn_gp_addi; break;
    case Op::SSubi: op.fn = fn_gp_subi; break;
    default:
      throw std::logic_error("append_gp_immop: not a GP immediate op");
  }
  op.dst = dst;
  op.u.imm = static_cast<uint64_t>(imm);
  t.ops.push_back(op);
}

void append_gp_shift(NativeTrace& t, isa::Op o, uint8_t dst, uint8_t imm8) {
  NativeOp op;
  switch (o) {
    case Op::SShli: op.fn = fn_gp_shli; break;
    case Op::SShri: op.fn = fn_gp_shri; break;
    case Op::SSrai: op.fn = fn_gp_srai; break;
    default:
      throw std::logic_error("append_gp_shift: not a GP shift op");
  }
  op.dst = dst;
  op.imm8 = imm8;
  t.ops.push_back(op);
}

void append_gp_load(NativeTrace& t, isa::Op o, uint8_t dst, uint32_t addr) {
  NativeOp op;
  switch (o) {
    case Op::SLoad16: op.fn = fn_gp_load16; break;
    case Op::SLoad32: op.fn = fn_gp_load32; break;
    case Op::SLoad64: op.fn = fn_gp_load64; break;
    default:
      throw std::logic_error("append_gp_load: not a GP load op");
  }
  op.dst = dst;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_gp_store(NativeTrace& t, isa::Op o, uint8_t src, uint32_t addr) {
  NativeOp op;
  switch (o) {
    case Op::SStore16: op.fn = fn_gp_store16; break;
    case Op::SStore32: op.fn = fn_gp_store32; break;
    case Op::SStore64: op.fn = fn_gp_store64; break;
    default:
      throw std::logic_error("append_gp_store: not a GP store op");
  }
  op.src = src;
  op.addr = addr;
  t.ops.push_back(op);
}

void append_gp_from_mmx(NativeTrace& t, uint8_t gp_dst, uint8_t mm_src) {
  NativeOp op;
  op.fn = fn_gp_from_mmx;
  op.dst = gp_dst;
  op.src = mm_src;
  t.ops.push_back(op);
}

void append_mmx_from_gp(NativeTrace& t, uint8_t mm_dst, uint8_t gp_src) {
  NativeOp op;
  op.fn = fn_mmx_from_gp;
  op.dst = mm_dst;
  op.src = gp_src;
  t.ops.push_back(op);
}

void append_alu(NativeTrace& t, const isa::Inst& in, int32_t route,
                uint8_t route_flags) {
  NativeOp op;
  op.fn = route >= 0 ? fn_alu_routed : fn_alu;
  op.u.alu = resolve_alu(in.op);
  if (op.u.alu == nullptr) {
    throw std::logic_error("append_alu: opcode has no ALU semantics");
  }
  op.dst = in.dst;
  op.src = in.src;
  op.route = route;
  op.flags = route_flags;
  if (in.src_is_imm) {
    op.flags |= NativeOp::kCountImm;
    op.imm8 = in.imm8;
  }
  t.ops.push_back(op);
}

}  // namespace subword::backend
