// lowering.h — prepare-time lowering of a prepared program onto the
// native-SWAR backend.
//
// The walker symbolically executes the program once. Control flow, address
// arithmetic and SPU programming are computed concretely: GP registers are
// tracked as constants, branches are followed, and the SPU's decoupled
// controller is modeled in lock-step with the retired instruction stream
// (a real core::Spu + core::SpuMmio consume the program's own MMIO
// prologue), so every MMX instruction lands in the NativeTrace with its
// address, shift count and crossbar route pre-resolved.
//
// Data may flow through the scalar pipe too (IIR's feedback recurrence,
// motion estimation's SAD spill): when a GP value becomes data-dependent —
// it derives from MovdFromMmx or from a load of bytes that vary per
// execution — the walker cannot fold it, so it *defers* the computation:
// the affected scalar instructions are emitted into the trace as native GP
// ops and replay against NativeState::gp. Only three uses of a
// data-dependent value are unlowerable, because they would change what the
// walker already resolved: branch conditions, address bases, and MMIO
// (SPU-programming) stores.
//
// Which bytes "vary per execution"? The kernel contract (kernel.h): the
// BufferSpec input window holds caller data; everything else init_memory
// writes is deterministic. LoweringSpec::init replays the kernel's
// init_memory into the walker's arena and LoweringSpec::data_regions
// names the varying window, so loads of coefficient tables fold to
// constants while loads of input bytes defer. Bytes the program itself
// writes are tracked precisely (constant stores stay foldable, MMX/GP-
// deferred stores make the bytes data).
//
// What bails out (LoweringError), by design:
//  * branches or loop counters whose condition is data-dependent,
//  * loads/stores whose address base is data-dependent,
//  * SPU programming (MMIO stores) with data-dependent values,
//  * crossbar routes that differ between the U and V pipe slices (the
//    executing pipe is a timing property the backend does not model;
//    every route in the tree routes both pipes identically),
//  * dynamic streams longer than LoweringSpec::max_ops (runaway guard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "backend/native.h"
#include "core/crossbar.h"
#include "core/mmio.h"
#include "isa/program.h"
#include "sim/memory.h"

namespace subword::backend {

// A program the native backend cannot execute (data-dependent control
// flow, unsupported SPU usage, ...). The api:: facade maps this to
// ErrorCode::kBackendUnsupported.
//
// Rejections raised while walking the program carry actionable context —
// the static index of the offending instruction, its disassembly and the
// crossbar configuration the walk ran under — so a fuzz report (or a log
// line) identifies the exact bail site without re-running the lowering.
class LoweringError : public std::runtime_error {
 public:
  explicit LoweringError(const std::string& what)
      : std::runtime_error("native lowering: " + what) {}
  LoweringError(const std::string& what, int64_t op_index,
                std::string instruction, std::string config)
      : std::runtime_error(
            "native lowering: " + what + " [op " + std::to_string(op_index) +
            ": " + instruction + "; config " + config + "]"),
        op_index_(op_index),
        instruction_(std::move(instruction)),
        config_(std::move(config)) {}

  // Static instruction index of the bail site, -1 when the rejection
  // happened outside the walk (spec validation, empty program).
  [[nodiscard]] int64_t op_index() const { return op_index_; }
  // Disassembly of the offending instruction (empty outside the walk).
  [[nodiscard]] const std::string& instruction() const { return instruction_; }
  // Crossbar configuration name the walk ran under (empty outside the walk).
  [[nodiscard]] const std::string& config() const { return config_; }

 private:
  int64_t op_index_ = -1;
  std::string instruction_;
  std::string config_;
};

// Execution parameters of the program being lowered — the same fields a
// kernels::PreparedProgram records for the simulator's SPU attachment,
// plus the data/constant split of the arena (see above).
struct LoweringSpec {
  core::CrossbarConfig cfg{};
  bool use_spu = false;
  int num_contexts = 8;
  uint64_t mmio_base = core::SpuMmio::kDefaultBase;
  size_t mem_bytes = 1u << 20;        // arena size the trace replays against
  uint64_t max_ops = 1ull << 23;      // dynamic-stream runaway guard

  // Deterministic arena initialisation (the kernel's init_memory). The
  // trace is only valid for replays whose arena was initialised the same
  // way; execute_native guarantees this by re-running init_memory.
  std::function<void(sim::Memory&)> init;

  // Byte ranges whose contents vary per execution (the BufferSpec input
  // window). Loads from these defer instead of folding.
  struct Region {
    uint64_t addr = 0;
    size_t len = 0;
  };
  std::vector<Region> data_regions;
};

// Walk the full dynamic instruction stream and pre-decode it into a
// NativeTrace. Throws LoweringError when the program cannot be proven
// replayable (see above).
[[nodiscard]] NativeTrace lower(const isa::Program& program,
                                const LoweringSpec& spec);

// Test-only fault injection: while enabled, the walker deliberately
// mis-lowers Paddsw as wrapping Paddw. Exists solely so the fuzz
// minimizer's divergence-shrinking loop has a reproducible lowering bug to
// chase (tests/test_fuzz_differential.cpp, fuzz_driver --break-lowering);
// never enable outside tests. Process-global, read at lower() time.
void set_lowering_fault_injection(bool enabled);
[[nodiscard]] bool lowering_fault_injection();

}  // namespace subword::backend
