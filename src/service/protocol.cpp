#include "service/protocol.h"

#include <cstdio>
#include <cstring>

namespace subword::service {

namespace {

// -- Little-endian append helpers ---------------------------------------------

void put_u8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void put_u16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::vector<uint8_t>* out, const std::string& s) {
  // Length-prefixed u16: kernel/tenant names are short identifiers; the
  // encoder truncating would corrupt meaning, so oversize is clamped to
  // the prefix range and decode-side length checks do the policing.
  const uint16_t len =
      static_cast<uint16_t>(s.size() > 0xFFFF ? 0xFFFF : s.size());
  put_u16(out, len);
  out->insert(out->end(), s.begin(), s.begin() + len);
}

void put_bytes(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  put_u32(out, static_cast<uint32_t>(b.size()));
  out->insert(out->end(), b.begin(), b.end());
}

// -- Bounds-checked cursor ----------------------------------------------------

// Every read reports underrun as a typed error through `err`; after the
// first error all further reads return zero values and the decoder's final
// error check surfaces the first failure. That keeps the field-by-field
// decode linear instead of a pyramid of early returns.
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> body) : body_(body) {}

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const ProtocolError& error() const { return err_; }
  [[nodiscard]] size_t remaining() const { return body_.size() - pos_; }

  void fail(ProtoCode code, std::string detail) {
    if (failed_) return;  // keep the first error
    failed_ = true;
    err_ = ProtocolError{code, std::move(detail)};
  }

  uint8_t u8(const char* what) {
    if (!need(1, what)) return 0;
    return body_[pos_++];
  }

  uint16_t u16(const char* what) {
    if (!need(2, what)) return 0;
    uint16_t v = static_cast<uint16_t>(body_[pos_]) |
                 static_cast<uint16_t>(body_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
  }

  uint32_t u32(const char* what) {
    if (!need(4, what)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(body_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  uint64_t u64(const char* what) {
    if (!need(8, what)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(body_[pos_ + static_cast<size_t>(i)])
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  double f64(const char* what) {
    const uint64_t bits = u64(what);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string string(const char* what) {
    const uint16_t len = u16(what);
    if (failed_) return {};
    if (remaining() < len) {
      fail(ProtoCode::kBadString,
           std::string(what) + " length " + std::to_string(len) +
               " runs past the body (" + std::to_string(remaining()) +
               " bytes left)");
      return {};
    }
    std::string s(reinterpret_cast<const char*>(body_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  std::vector<uint8_t> bytes(const char* what) {
    const uint32_t len = u32(what);
    if (failed_) return {};
    if (remaining() < len) {
      fail(ProtoCode::kTruncated,
           std::string(what) + " payload length " + std::to_string(len) +
               " runs past the body (" + std::to_string(remaining()) +
               " bytes left)");
      return {};
    }
    std::vector<uint8_t> b(body_.begin() + static_cast<ptrdiff_t>(pos_),
                           body_.begin() + static_cast<ptrdiff_t>(pos_ + len));
    pos_ += len;
    return b;
  }

  // The decoder consumed every declared field; anything left is garbage
  // (or a newer protocol this build does not speak).
  void expect_end() {
    if (failed_) return;
    if (remaining() != 0) {
      fail(ProtoCode::kTrailingBytes,
           std::to_string(remaining()) + " trailing bytes after the last "
           "declared field");
    }
  }

 private:
  bool need(size_t n, const char* what) {
    if (failed_) return false;
    if (remaining() < n) {
      fail(ProtoCode::kTruncated, std::string("body ended inside ") + what);
      return false;
    }
    return true;
  }

  std::span<const uint8_t> body_;
  size_t pos_ = 0;
  bool failed_ = false;
  ProtocolError err_;
};

// Shared header check; on success the reader is positioned after the
// header and the frame type is returned.
FrameType read_header(Reader* r) {
  const uint32_t magic = r->u32("magic");
  if (!r->failed() && magic != kMagic) {
    r->fail(ProtoCode::kBadMagic, "got 0x" + [magic] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08X", magic);
      return std::string(buf);
    }());
    return FrameType::kRequest;
  }
  const uint16_t version = r->u16("version");
  if (!r->failed() && version != kVersion) {
    r->fail(ProtoCode::kBadVersion,
            "got " + std::to_string(version) + ", this build speaks " +
                std::to_string(kVersion));
    return FrameType::kRequest;
  }
  const uint8_t type = r->u8("frame type");
  if (!r->failed() && type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    r->fail(ProtoCode::kBadType, "got " + std::to_string(type));
    return FrameType::kRequest;
  }
  return static_cast<FrameType>(type);
}

void put_header(std::vector<uint8_t>* out, FrameType type) {
  put_u32(out, kMagic);
  put_u16(out, kVersion);
  put_u8(out, static_cast<uint8_t>(type));
}

// Request flag bits; anything else set is kBadFlags.
constexpr uint8_t kFlagAreaBudget = 1u << 0;
constexpr uint8_t kFlagDelayBudget = 1u << 1;
constexpr uint8_t kKnownFlags = kFlagAreaBudget | kFlagDelayBudget;

// Response flag bits (the byte that was has_plan before PR 9 — bit 0
// keeps its old meaning, so a plain plan response is byte-identical).
// Optional plan provenance fields ride behind the remaining bits.
constexpr uint8_t kRespFlagPlan = 1u << 0;
constexpr uint8_t kRespFlagObserved = 1u << 1;  // plan observed stats follow
constexpr uint8_t kRespFlagExplored = 1u << 2;  // runner-up was executed
constexpr uint8_t kKnownRespFlags =
    kRespFlagPlan | kRespFlagObserved | kRespFlagExplored;

}  // namespace

uint8_t error_code_to_wire(api::ErrorCode code) {
  switch (code) {
    case api::ErrorCode::kUnknownKernel: return 1;
    case api::ErrorCode::kInvalidArgument: return 2;
    case api::ErrorCode::kNoManualSpuVariant: return 3;
    case api::ErrorCode::kBuffersUnsupported: return 4;
    case api::ErrorCode::kBufferSizeMismatch: return 5;
    case api::ErrorCode::kTilingUnsupported: return 6;
    case api::ErrorCode::kPipelineMismatch: return 7;
    case api::ErrorCode::kBackendUnsupported: return 8;
    case api::ErrorCode::kSessionShutdown: return 9;
    case api::ErrorCode::kCancelled: return 10;
    case api::ErrorCode::kExecutionFailed: return 11;
    case api::ErrorCode::kVerificationFailed: return 12;
    case api::ErrorCode::kOverloaded: return 13;
  }
  return 255;
}

bool error_code_from_wire(uint8_t wire, api::ErrorCode* out) {
  switch (wire) {
    case 1: *out = api::ErrorCode::kUnknownKernel; return true;
    case 2: *out = api::ErrorCode::kInvalidArgument; return true;
    case 3: *out = api::ErrorCode::kNoManualSpuVariant; return true;
    case 4: *out = api::ErrorCode::kBuffersUnsupported; return true;
    case 5: *out = api::ErrorCode::kBufferSizeMismatch; return true;
    case 6: *out = api::ErrorCode::kTilingUnsupported; return true;
    case 7: *out = api::ErrorCode::kPipelineMismatch; return true;
    case 8: *out = api::ErrorCode::kBackendUnsupported; return true;
    case 9: *out = api::ErrorCode::kSessionShutdown; return true;
    case 10: *out = api::ErrorCode::kCancelled; return true;
    case 11: *out = api::ErrorCode::kExecutionFailed; return true;
    case 12: *out = api::ErrorCode::kVerificationFailed; return true;
    case 13: *out = api::ErrorCode::kOverloaded; return true;
    default: return false;
  }
}

void encode_request(const WireRequest& req, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  put_header(&body, FrameType::kRequest);
  put_u64(&body, req.request_id);
  put_string(&body, req.tenant);
  put_string(&body, req.kernel);
  put_u32(&body, req.repeats);
  put_u8(&body, static_cast<uint8_t>(req.mode));
  put_u8(&body, req.config);
  put_u8(&body, static_cast<uint8_t>(req.backend));
  uint8_t flags = 0;
  if (req.has_area_budget) flags |= kFlagAreaBudget;
  if (req.has_delay_budget) flags |= kFlagDelayBudget;
  put_u8(&body, flags);
  if (req.has_area_budget) put_f64(&body, req.area_budget_mm2);
  if (req.has_delay_budget) put_f64(&body, req.max_delay_ns);
  put_bytes(&body, req.input);

  put_u32(out, static_cast<uint32_t>(body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

void encode_response(const WireResponse& resp, std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  put_header(&body, FrameType::kResponse);
  put_u64(&body, resp.request_id);
  put_u8(&body, static_cast<uint8_t>(resp.status));
  if (resp.status == WireStatus::kOk) {
    put_u8(&body, resp.stats.cache_hit ? 1 : 0);
    put_u8(&body, resp.stats.has_cycles ? 1 : 0);
    put_u64(&body, resp.stats.cycles);
    put_u64(&body, resp.stats.instructions);
    put_u64(&body, resp.stats.prepare_ns);
    put_u64(&body, resp.stats.execute_ns);
    uint8_t flags = 0;
    const bool observed = resp.has_plan && resp.plan.has_observed;
    if (resp.has_plan) flags |= kRespFlagPlan;
    if (observed) flags |= kRespFlagObserved;
    if (resp.explored) flags |= kRespFlagExplored;
    put_u8(&body, flags);
    if (resp.has_plan) {
      put_u8(&body, static_cast<uint8_t>(resp.plan.mode));
      put_u8(&body, resp.plan.config);
      put_u8(&body, static_cast<uint8_t>(resp.plan.backend));
      put_u8(&body, resp.plan.score_source);
    }
    if (observed) {
      put_u64(&body, resp.plan.observed_count);
      put_f64(&body, resp.plan.observed_mean);
      put_f64(&body, resp.plan.observed_variance);
    }
    put_bytes(&body, resp.output);
  } else {
    put_u8(&body, resp.error_code);
    put_string(&body, resp.message);
  }

  put_u32(out, static_cast<uint32_t>(body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

ProtoResult<FrameType> peek_frame_type(std::span<const uint8_t> body) {
  Reader r(body);
  const FrameType type = read_header(&r);
  if (r.failed()) return r.error();
  return type;
}

ProtoResult<WireRequest> decode_request(std::span<const uint8_t> body,
                                        size_t max_payload_bytes) {
  Reader r(body);
  const FrameType type = read_header(&r);
  if (!r.failed() && type != FrameType::kRequest) {
    r.fail(ProtoCode::kBadType, "expected a request frame, got a response");
  }

  WireRequest req;
  req.request_id = r.u64("request id");
  req.tenant = r.string("tenant name");
  req.kernel = r.string("kernel name");
  req.repeats = r.u32("repeats");

  const uint8_t mode = r.u8("mode");
  if (!r.failed() && mode > static_cast<uint8_t>(WireMode::kPlan)) {
    r.fail(ProtoCode::kBadEnum, "mode byte " + std::to_string(mode));
  }
  req.mode = static_cast<WireMode>(mode);

  req.config = r.u8("crossbar config");
  if (!r.failed() && req.config > 3) {
    r.fail(ProtoCode::kBadEnum,
           "crossbar config byte " + std::to_string(req.config) +
               " (valid: 0..3 = A..D)");
  }

  const uint8_t backend = r.u8("backend");
  if (!r.failed() && backend > static_cast<uint8_t>(WireBackend::kAuto)) {
    r.fail(ProtoCode::kBadEnum, "backend byte " + std::to_string(backend));
  }
  req.backend = static_cast<WireBackend>(backend);
  if (!r.failed() && req.backend == WireBackend::kAuto &&
      req.mode != WireMode::kPlan) {
    r.fail(ProtoCode::kBadEnum,
           "backend=auto is only valid with the planner mode");
  }

  const uint8_t flags = r.u8("flags");
  if (!r.failed() && (flags & ~kKnownFlags) != 0) {
    r.fail(ProtoCode::kBadFlags,
           "unknown flag bits 0x" + std::to_string(flags & ~kKnownFlags));
  }
  req.has_area_budget = (flags & kFlagAreaBudget) != 0;
  req.has_delay_budget = (flags & kFlagDelayBudget) != 0;
  if (req.has_area_budget) req.area_budget_mm2 = r.f64("area budget");
  if (req.has_delay_budget) req.max_delay_ns = r.f64("delay budget");

  // Check the declared payload length against the server's limit *before*
  // materializing the bytes: the typed error must not cost the allocation
  // it exists to prevent.
  if (!r.failed() && max_payload_bytes != 0 && r.remaining() >= 4) {
    // Peek at the length field without consuming it.
    std::span<const uint8_t> rest = body.subspan(body.size() - r.remaining());
    uint32_t declared = 0;
    for (int i = 0; i < 4; ++i) {
      declared |= static_cast<uint32_t>(rest[static_cast<size_t>(i)])
                  << (8 * i);
    }
    if (declared > max_payload_bytes) {
      r.fail(ProtoCode::kPayloadTooLarge,
             "input payload " + std::to_string(declared) +
                 " bytes exceeds the server limit of " +
                 std::to_string(max_payload_bytes));
    }
  }
  req.input = r.bytes("input");
  r.expect_end();

  if (r.failed()) return r.error();
  return req;
}

ProtoResult<WireResponse> decode_response(std::span<const uint8_t> body) {
  Reader r(body);
  const FrameType type = read_header(&r);
  if (!r.failed() && type != FrameType::kResponse) {
    r.fail(ProtoCode::kBadType, "expected a response frame, got a request");
  }

  WireResponse resp;
  resp.request_id = r.u64("request id");
  const uint8_t status = r.u8("status");
  if (!r.failed() && status > static_cast<uint8_t>(WireStatus::kProtoError)) {
    r.fail(ProtoCode::kBadEnum, "status byte " + std::to_string(status));
  }
  resp.status = static_cast<WireStatus>(status);

  if (!r.failed() && resp.status == WireStatus::kOk) {
    resp.stats.cache_hit = r.u8("cache_hit") != 0;
    resp.stats.has_cycles = r.u8("has_cycles") != 0;
    resp.stats.cycles = r.u64("cycles");
    resp.stats.instructions = r.u64("instructions");
    resp.stats.prepare_ns = r.u64("prepare_ns");
    resp.stats.execute_ns = r.u64("execute_ns");
    const uint8_t flags = r.u8("response flags");
    if (!r.failed() && (flags & ~kKnownRespFlags) != 0) {
      r.fail(ProtoCode::kBadFlags,
             "unknown response flag bits 0x" +
                 std::to_string(flags & ~kKnownRespFlags));
    }
    resp.has_plan = (flags & kRespFlagPlan) != 0;
    resp.explored = (flags & kRespFlagExplored) != 0;
    if (!r.failed() && (flags & kRespFlagObserved) != 0 && !resp.has_plan) {
      r.fail(ProtoCode::kBadFlags,
             "observed-stats flag without a plan decision");
    }
    if (resp.has_plan) {
      const uint8_t pm = r.u8("plan mode");
      if (!r.failed() && pm >= static_cast<uint8_t>(WireMode::kPlan)) {
        r.fail(ProtoCode::kBadEnum,
               "plan decision mode byte " + std::to_string(pm));
      }
      resp.plan.mode = static_cast<WireMode>(pm);
      resp.plan.config = r.u8("plan config");
      if (!r.failed() && resp.plan.config > 3) {
        r.fail(ProtoCode::kBadEnum, "plan config byte out of range");
      }
      const uint8_t pb = r.u8("plan backend");
      if (!r.failed() && pb >= static_cast<uint8_t>(WireBackend::kAuto)) {
        r.fail(ProtoCode::kBadEnum,
               "plan decision backend byte " + std::to_string(pb));
      }
      resp.plan.backend = static_cast<WireBackend>(pb);
      resp.plan.score_source = r.u8("plan score source");
      if (!r.failed() && resp.plan.score_source > kWireScoreSourceMax) {
        r.fail(ProtoCode::kBadEnum,
               "plan score source byte " +
                   std::to_string(resp.plan.score_source));
      }
      resp.plan.has_observed = (flags & kRespFlagObserved) != 0;
      if (resp.plan.has_observed) {
        resp.plan.observed_count = r.u64("observed count");
        resp.plan.observed_mean = r.f64("observed mean");
        resp.plan.observed_variance = r.f64("observed variance");
      }
    }
    resp.output = r.bytes("output");
  } else if (!r.failed()) {
    resp.error_code = r.u8("error code");
    resp.message = r.string("error message");
  }
  r.expect_end();

  if (r.failed()) return r.error();
  return resp;
}

}  // namespace subword::service
