// socket.h — the thin POSIX layer under the service: an RAII socket
// handle, loopback listen/connect helpers, and blocking frame I/O over the
// protocol's length-prefix framing.
//
// Kept deliberately small and boring: everything protocol-shaped lives in
// protocol.h as pure byte-vector functions; this file only moves those
// bytes through file descriptors. All reads/writes loop over partial
// transfers; writes suppress SIGPIPE so a peer hanging up mid-response is
// an error return, never a process signal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace subword::service {

// Move-only owner of a socket fd. Closing twice, moving-from and
// destroying an invalid handle are all safe no-ops.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  void close();
  // Half-close the read side: a peer (or our own reader thread) blocked in
  // recv wakes with EOF while in-flight writes may still complete — the
  // graceful-drain primitive.
  void shutdown_read();
  // Half-close the write side: the peer's recv sees EOF once it drains
  // what we sent, while our own reads still work — how a fuzz client says
  // "no more bytes are coming" to a server waiting out a lying length
  // prefix, without giving up on the response.
  void shutdown_write();
  // Full shutdown: wakes accept()/recv() on this fd (listen sockets).
  void shutdown_both();

 private:
  int fd_ = -1;
};

// -- Frame I/O ----------------------------------------------------------------

enum class IoStatus : uint8_t {
  kOk,
  kEof,        // orderly close at a frame boundary
  kError,      // recv/send failure, or EOF mid-frame
  kOversized,  // length prefix beyond the cap: the stream is poisoned —
               // respond once, then close (framing cannot be trusted)
};

struct FrameRead {
  IoStatus status = IoStatus::kOk;
  std::vector<uint8_t> body;  // the frame body (length prefix stripped)
  std::string error;
};

// Read one length-prefixed frame. Blocks until a full frame, EOF, or an
// error. `max_body_bytes` caps the declared body length (the oversized
// frame's bytes are never read, let alone allocated).
[[nodiscard]] FrameRead read_frame(int fd,
                                   uint32_t max_body_bytes = kMaxFrameBytes);

// Write pre-encoded frame bytes (length prefix included, as produced by
// encode_request/encode_response). False on any send failure.
[[nodiscard]] bool write_all(int fd, const std::vector<uint8_t>& bytes);

// -- Connection establishment (loopback service) ------------------------------

// Bind + listen on 127.0.0.1:`port` (0 = ephemeral). On success returns a
// valid Socket and stores the actually-bound port in `*bound_port`; on
// failure returns an invalid Socket and explains in `*err`.
[[nodiscard]] Socket listen_loopback(uint16_t port, int backlog,
                                     uint16_t* bound_port, std::string* err);

// Blocking connect to 127.0.0.1:`port`.
[[nodiscard]] Socket connect_loopback(uint16_t port, std::string* err);

}  // namespace subword::service
