// client.h — the blocking service client: one TCP connection, one request
// in flight at a time (matching the server's per-connection contract; open
// more clients for parallelism — the soak driver opens thousands).
//
// call() is a full round trip: encode, send, read one frame, decode. Both
// transport failures and the server's typed protocol-error responses come
// back as CallResult so callers distinguish "the network broke" from "the
// server said my frame was malformed" from "the server answered".
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.h"
#include "service/socket.h"

namespace subword::service {

struct CallResult {
  bool transport_ok = false;  // a response frame arrived and decoded
  std::string transport_error;
  WireResponse response;  // valid only when transport_ok

  [[nodiscard]] bool ok() const {
    return transport_ok && response.status == WireStatus::kOk;
  }
};

class ServiceClient {
 public:
  ServiceClient() = default;

  // Connect to the loopback server. False (with *err) on failure.
  [[nodiscard]] bool connect(uint16_t port, std::string* err = nullptr);
  [[nodiscard]] bool connected() const { return sock_.valid(); }
  void close() { sock_.close(); }

  // One blocking round trip. The connection survives typed error
  // responses (protocol errors included); it is closed by this client
  // only on transport failure.
  [[nodiscard]] CallResult call(const WireRequest& req);

  // Send raw pre-framed bytes and read one response frame — the wire-fuzz
  // path, where the bytes are deliberately NOT a valid request.
  [[nodiscard]] CallResult call_raw(const std::vector<uint8_t>& frame);

 private:
  [[nodiscard]] CallResult round_trip(const std::vector<uint8_t>& frame);

  Socket sock_;
};

}  // namespace subword::service
