#include "service/client.h"

namespace subword::service {

bool ServiceClient::connect(uint16_t port, std::string* err) {
  sock_ = connect_loopback(port, err);
  return sock_.valid();
}

CallResult ServiceClient::call(const WireRequest& req) {
  std::vector<uint8_t> frame;
  encode_request(req, &frame);
  return round_trip(frame);
}

CallResult ServiceClient::call_raw(const std::vector<uint8_t>& frame) {
  return round_trip(frame);
}

CallResult ServiceClient::round_trip(const std::vector<uint8_t>& frame) {
  CallResult r;
  if (!sock_.valid()) {
    r.transport_error = "not connected";
    return r;
  }
  if (!write_all(sock_.fd(), frame)) {
    r.transport_error = "send failed";
    sock_.close();
    return r;
  }
  FrameRead in = read_frame(sock_.fd());
  if (in.status != IoStatus::kOk) {
    r.transport_error = in.status == IoStatus::kEof
                            ? "server closed the connection"
                            : in.error;
    sock_.close();
    return r;
  }
  auto decoded = decode_response(in.body);
  if (!decoded.ok()) {
    r.transport_error = "undecodable response: " + decoded.error().to_string();
    sock_.close();
    return r;
  }
  r.transport_ok = true;
  r.response = std::move(*decoded);
  return r;
}

}  // namespace subword::service
