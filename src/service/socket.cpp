#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace subword::service {

namespace {

std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// recv exactly `len` bytes. Returns kOk, kEof (clean close before any
// byte), or kError (failure or close mid-read).
IoStatus recv_exact(int fd, uint8_t* buf, size_t len, std::string* err) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return IoStatus::kEof;
      *err = "connection closed mid-frame";
      return IoStatus::kError;
    }
    if (errno == EINTR) continue;
    *err = errno_string("recv");
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

FrameRead read_frame(int fd, uint32_t max_body_bytes) {
  FrameRead r;
  uint8_t prefix[4];
  r.status = recv_exact(fd, prefix, sizeof prefix, &r.error);
  if (r.status != IoStatus::kOk) return r;

  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (len > max_body_bytes || len > kMaxFrameBytes) {
    r.status = IoStatus::kOversized;
    r.error = "frame body of " + std::to_string(len) +
              " bytes exceeds the cap of " +
              std::to_string(std::min(max_body_bytes, kMaxFrameBytes));
    return r;
  }
  r.body.resize(len);
  if (len != 0) {
    r.status = recv_exact(fd, r.body.data(), len, &r.error);
    if (r.status == IoStatus::kEof) {
      // EOF exactly between prefix and body is still mid-frame.
      r.status = IoStatus::kError;
      r.error = "connection closed mid-frame";
    }
  }
  return r;
}

bool write_all(int fd, const std::vector<uint8_t>& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

Socket listen_loopback(uint16_t port, int backlog, uint16_t* bound_port,
                       std::string* err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (err != nullptr) *err = errno_string("socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (err != nullptr) *err = errno_string("bind");
    return {};
  }
  if (::listen(sock.fd(), backlog) != 0) {
    if (err != nullptr) *err = errno_string("listen");
    return {};
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      if (err != nullptr) *err = errno_string("getsockname");
      return {};
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket connect_loopback(uint16_t port, std::string* err) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    if (err != nullptr) *err = errno_string("socket");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0) {
      // Requests are small and latency-bound: coalescing them behind
      // Nagle only inflates the soak percentiles.
      const int one = 1;
      ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return sock;
    }
    if (errno == EINTR) continue;
    if (err != nullptr) *err = errno_string("connect");
    return {};
  }
}

}  // namespace subword::service
