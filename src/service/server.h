// server.h — the TCP front-end over api::Session: accept loop,
// per-connection reader threads, tenant-scoped sessions, and admission
// control.
//
// Topology: one Server owns one listening socket, one accept thread, and
// one api::Session *per configured tenant*. Every tenant session has its
// own BatchEngine (worker pool, queue, shed thresholds) so cache statistics
// and planner budgets are tenant-scoped, while all sessions share ONE
// OrchestrationCache — tenants amortize each other's preparations exactly
// like the service replicas the runtime layer was designed around.
//
// Each accepted connection gets a reader thread that decodes
// length-prefixed request frames (protocol.h), admits or sheds them, runs
// admitted ones synchronously through the tenant's Session, and writes the
// response frame. One request is in flight per connection by design — a
// client wanting parallelism opens more connections (the soak driver opens
// thousands), which keeps per-connection state trivially small.
//
// Admission control, in check order — every rejection is a *typed
// response*, never a dropped connection:
//   1. draining (Server::shutdown began)      -> kSessionShutdown
//   2. unknown tenant / repeats over the cap  -> kInvalidArgument
//   3. tenant in-flight cap                   -> kOverloaded
//   4. engine shed thresholds (queue depth /
//      bounded blocking, see SessionOptions)  -> kOverloaded
// Payload limits are enforced below all of these, at the frame layer
// (oversized frame: connection closes — framing is poisoned) and the
// decode layer (declared payload over max_payload_bytes: typed
// kPayloadTooLarge, connection stays usable).
//
// Shutdown contract (pinned by test_service's drain race): stop accepting,
// let every request already submitted complete and get its response,
// answer every late request with kSessionShutdown, then close.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/session.h"
#include "service/protocol.h"
#include "service/socket.h"

namespace subword::service {

struct TenantOptions {
  std::string name = "default";
  // Engine shape — forwarded to this tenant's api::SessionOptions.
  int workers = 1;
  int queue_capacity = 0;
  int shed_queue_depth = 0;
  uint64_t shed_max_block_ns = 0;
  // Fraction (0..1) of this tenant's planned requests that execute the
  // plan's runner-up shape to refresh its measurement history
  // (api::SessionOptions::explore_rate; explored responses carry the
  // wire's explored flag).
  double explore_rate = 0;
  // Service-side cap on requests of this tenant simultaneously in flight
  // across all connections (0: unlimited). Excess is shed with
  // kOverloaded before touching the engine.
  int max_inflight = 0;
};

struct ServerOptions {
  uint16_t port = 0;  // 0: ephemeral — read the bound port from port()
  int accept_backlog = 128;
  // Per-request input payload cap (typed kPayloadTooLarge above it) and
  // the frame-layer body cap (connection closes above it — the stream's
  // framing can no longer be trusted).
  size_t max_payload_bytes = 1u << 20;
  uint32_t max_frame_bytes = kMaxFrameBytes;
  // Cap on the repeats knob a request may ask for (0: unlimited). A u32 of
  // repeats is otherwise an amplification attack: bytes in are constant,
  // simulated work is linear in it.
  uint32_t max_repeats = 4096;
  std::vector<TenantOptions> tenants;  // empty: one default tenant
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t requests_ok = 0;
  uint64_t requests_api_error = 0;  // typed api errors other than shed
  uint64_t requests_shed = 0;       // kOverloaded responses
  uint64_t protocol_errors = 0;     // malformed frames answered typed
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();  // shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind, listen and start the accept loop. False (with *err explained)
  // when the socket setup fails; calling twice is an error.
  [[nodiscard]] bool start(std::string* err = nullptr);

  // The actually-bound port (after start(); ephemeral binds resolve here).
  [[nodiscard]] uint16_t port() const { return port_; }

  // Graceful drain: stop accepting connections, complete every request
  // already submitted to an engine (their responses still go out), answer
  // requests arriving during the drain with kSessionShutdown, then close
  // every connection and join every thread. Idempotent; also run by the
  // destructor.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;

  // The tenant's Session (null for unknown names) — cache stats, queue
  // depth and worker counts per tenant for tests, tools and diagnostics.
  [[nodiscard]] api::Session* tenant_session(std::string_view name);

  [[nodiscard]] const std::vector<std::string>& tenant_names() const {
    return tenant_names_;
  }

 private:
  struct Tenant {
    TenantOptions opts;
    std::unique_ptr<api::Session> session;
    std::atomic<int> inflight{0};
  };

  struct Connection {
    Socket sock;
    std::thread reader;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void connection_loop(Connection* conn);
  // Decode + admit + execute one frame body; always produces a response.
  [[nodiscard]] WireResponse handle_frame(std::span<const uint8_t> body);
  [[nodiscard]] WireResponse execute(const WireRequest& req, Tenant* tenant);
  void reap_finished_locked();

  ServerOptions opts_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<std::string> tenant_names_;

  Socket listen_sock_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::mutex conns_mu_;
  std::list<Connection> conns_;

  // Aggregate counters (relaxed atomics: monotonic event counts).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_api_error_{0};
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace subword::service
