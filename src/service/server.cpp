#include "service/server.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "kernels/registry.h"
#include "runtime/orchestration_cache.h"

namespace subword::service {

namespace {

// Crossbar config <-> wire index. kAllConfigs is ordered A..D and the wire
// byte is defined as that index; the name match keeps the mapping honest
// even if a config were ever inserted.
const core::CrossbarConfig& config_at(uint8_t index) {
  return core::kAllConfigs[index % core::kAllConfigs.size()];
}

uint8_t config_index(const core::CrossbarConfig& cfg) {
  for (size_t i = 0; i < core::kAllConfigs.size(); ++i) {
    if (core::kAllConfigs[i].name == cfg.name) {
      return static_cast<uint8_t>(i);
    }
  }
  return 0;
}

WireResponse api_error_response(uint64_t request_id, const api::ApiError& e) {
  WireResponse resp;
  resp.request_id = request_id;
  resp.status = WireStatus::kApiError;
  resp.error_code = error_code_to_wire(e.code);
  resp.message = e.to_string();
  return resp;
}

WireResponse api_error_response(uint64_t request_id, api::ErrorCode code,
                                std::string message) {
  return api_error_response(
      request_id, api::ApiError{code, std::move(message), "service"});
}

}  // namespace

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.tenants.empty()) opts_.tenants.push_back(TenantOptions{});
  // All tenants share one orchestration cache: tenant A's preparation of a
  // (kernel, repeats, config) shape is tenant B's cache hit, while
  // per-tenant Sessions keep queues, shed thresholds and planner budgets
  // isolated.
  auto cache = std::make_shared<runtime::OrchestrationCache>();
  for (const auto& t : opts_.tenants) {
    auto tenant = std::make_unique<Tenant>();
    tenant->opts = t;
    api::SessionOptions so;
    so.workers = t.workers;
    so.queue_capacity = t.queue_capacity;
    so.shed_queue_depth = t.shed_queue_depth;
    so.shed_max_block_ns = t.shed_max_block_ns;
    so.explore_rate = t.explore_rate;
    so.cache = cache;
    tenant->session = std::make_unique<api::Session>(so);
    tenant_names_.push_back(t.name);
    tenants_.push_back(std::move(tenant));
  }
}

Server::~Server() { shutdown(); }

bool Server::start(std::string* err) {
  if (started_.exchange(true)) {
    if (err != nullptr) *err = "start() called twice";
    return false;
  }
  std::string local_err;
  listen_sock_ = listen_loopback(opts_.port, opts_.accept_backlog, &port_,
                                 &local_err);
  if (!listen_sock_.valid()) {
    if (err != nullptr) *err = local_err;
    return false;
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::shutdown() {
  if (!started_.load() || stopped_.exchange(true)) return;

  // 1. Stop accepting: wake accept() and join the accept thread so no new
  //    connection can appear below.
  listen_sock_.shutdown_both();
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Drain: requests decoded from here on answer kSessionShutdown.
  draining_.store(true, std::memory_order_release);

  // 3. Tenant sessions stop accepting and complete everything already
  //    submitted — readers blocked in wait() get real results and still
  //    write them out (write sides stay open through step 4).
  for (auto& tenant : tenants_) tenant->session->shutdown();

  // 4. Wake readers blocked in recv: half-close the read sides. A reader
  //    mid-request finishes its response first; one waiting for the next
  //    frame sees EOF and exits.
  {
    std::lock_guard lock(conns_mu_);
    for (auto& conn : conns_) conn.sock.shutdown_read();
  }

  // 5. Join and close everything.
  std::list<Connection> conns;
  {
    std::lock_guard lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn.reader.joinable()) conn.reader.join();
  }
  listen_sock_.close();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.requests_ok = requests_ok_.load();
  s.requests_api_error = requests_api_error_.load();
  s.requests_shed = requests_shed_.load();
  s.protocol_errors = protocol_errors_.load();
  return s;
}

api::Session* Server::tenant_session(std::string_view name) {
  for (auto& tenant : tenants_) {
    if (tenant->opts.name == name) return tenant->session.get();
  }
  return nullptr;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: shed at the OS level; keep serving the
        // connections we already have instead of dying.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      // shutdown() poisoned the listen socket (or it broke): stop.
      return;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(conns_mu_);
    reap_finished_locked();
    conns_.emplace_back();
    Connection* conn = &conns_.back();
    conn->sock = Socket(fd);
    conn->reader = std::thread([this, conn] { connection_loop(conn); });
  }
}

void Server::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->done.load(std::memory_order_acquire)) {
      if (it->reader.joinable()) it->reader.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::connection_loop(Connection* conn) {
  const int fd = conn->sock.fd();
  for (;;) {
    FrameRead frame = read_frame(fd, opts_.max_frame_bytes);
    if (frame.status == IoStatus::kOversized) {
      // The framing itself is poisoned: answer once, typed, then close —
      // there is no trustworthy next frame boundary to resume at.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      WireResponse resp;
      resp.status = WireStatus::kProtoError;
      resp.error_code = static_cast<uint8_t>(ProtoCode::kOversizedFrame);
      resp.message = frame.error;
      std::vector<uint8_t> out;
      encode_response(resp, &out);
      (void)write_all(fd, out);
      break;
    }
    if (frame.status != IoStatus::kOk) break;  // EOF or transport error

    const WireResponse resp = handle_frame(frame.body);
    std::vector<uint8_t> out;
    encode_response(resp, &out);
    if (!write_all(fd, out)) break;
  }
  // Say goodbye at the TCP level now: the Socket itself is owned by the
  // conns_ list and stays allocated until reap/shutdown joins this thread,
  // so without the FIN here a peer that poisoned its stream would wait on
  // a dead-but-open connection. shutdown (not close) keeps the fd number
  // reserved, so the concurrent shutdown_read() sweep in shutdown() can
  // never hit a recycled descriptor.
  conn->sock.shutdown_both();
  conn->done.store(true, std::memory_order_release);
}

WireResponse Server::handle_frame(std::span<const uint8_t> body) {
  auto decoded = decode_request(body, opts_.max_payload_bytes);
  if (!decoded.ok()) {
    // Malformed inside a well-delimited frame: typed response, connection
    // stays usable (the next length prefix is still trustworthy).
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    WireResponse resp;
    resp.status = WireStatus::kProtoError;
    resp.error_code = static_cast<uint8_t>(decoded.error().code);
    resp.message = decoded.error().to_string();
    return resp;
  }
  const WireRequest& req = *decoded;

  if (draining_.load(std::memory_order_acquire)) {
    return api_error_response(req.request_id, api::ErrorCode::kSessionShutdown,
                              "server is draining");
  }

  Tenant* tenant = nullptr;
  if (req.tenant.empty()) {
    tenant = tenants_.front().get();
  } else {
    for (auto& t : tenants_) {
      if (t->opts.name == req.tenant) {
        tenant = t.get();
        break;
      }
    }
  }
  if (tenant == nullptr) {
    requests_api_error_.fetch_add(1, std::memory_order_relaxed);
    return api_error_response(req.request_id, api::ErrorCode::kInvalidArgument,
                              "unknown tenant '" + req.tenant + "'");
  }
  if (opts_.max_repeats != 0 && req.repeats > opts_.max_repeats) {
    requests_api_error_.fetch_add(1, std::memory_order_relaxed);
    return api_error_response(
        req.request_id, api::ErrorCode::kInvalidArgument,
        "repeats " + std::to_string(req.repeats) + " exceeds the server cap " +
            std::to_string(opts_.max_repeats));
  }

  // Per-tenant in-flight cap: reserve a slot before touching the engine;
  // exchange-style increment-then-check keeps the cap exact under races.
  if (tenant->opts.max_inflight > 0) {
    if (tenant->inflight.fetch_add(1, std::memory_order_acq_rel) >=
        tenant->opts.max_inflight) {
      tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      return api_error_response(
          req.request_id, api::ErrorCode::kOverloaded,
          "tenant '" + tenant->opts.name + "' is at its in-flight cap of " +
              std::to_string(tenant->opts.max_inflight));
    }
  }
  WireResponse resp = execute(req, tenant);
  if (tenant->opts.max_inflight > 0) {
    tenant->inflight.fetch_sub(1, std::memory_order_acq_rel);
  }

  if (resp.status == WireStatus::kOk) {
    requests_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (resp.error_code ==
             error_code_to_wire(api::ErrorCode::kOverloaded)) {
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    requests_api_error_.fetch_add(1, std::memory_order_relaxed);
  }
  return resp;
}

WireResponse Server::execute(const WireRequest& req, Tenant* tenant) {
  api::Request r = tenant->session->request(req.kernel);
  r.repeats(static_cast<int>(req.repeats));
  switch (req.mode) {
    case WireMode::kBaseline:
      r.baseline();
      break;
    case WireMode::kManualSpu:
      r.spu(config_at(req.config));  // spu() leaves the mode Manual
      break;
    case WireMode::kAutoOrchestrate:
      r.spu(config_at(req.config)).auto_orchestrate();
      break;
    case WireMode::kPlan:
      r.auto_plan();
      if (req.has_area_budget) r.area_budget_mm2(req.area_budget_mm2);
      if (req.has_delay_budget) r.max_delay_ns(req.max_delay_ns);
      break;
  }
  if (req.backend != WireBackend::kAuto) {
    r.backend(req.backend == WireBackend::kNativeSwar
                  ? api::ExecBackend::kNativeSwar
                  : api::ExecBackend::kSimulator);
  }

  // Output readback: bind a buffer whenever the kernel has a spec, so the
  // response always carries the bytes a buffer-capable kernel produced.
  std::vector<uint8_t> output;
  const auto* info = kernels::find_kernel_info(req.kernel);
  if (info != nullptr && info->buffers.supported()) {
    output.resize(info->buffers.output_bytes);
    r.output(std::span<uint8_t>(output));
  }
  if (!req.input.empty()) {
    r.input(std::span<const uint8_t>(req.input));
  }

  auto result = r.run();
  if (!result.ok()) {
    return api_error_response(req.request_id, result.error());
  }

  WireResponse resp;
  resp.request_id = req.request_id;
  resp.status = WireStatus::kOk;
  resp.stats.cache_hit = result->cache_hit;
  const auto cycles = result->cycles();
  resp.stats.has_cycles = cycles.has_value();
  resp.stats.cycles = cycles.value_or(0);
  resp.stats.instructions = result->run.stats.instructions;
  resp.stats.prepare_ns = result->prepare_ns;
  resp.stats.execute_ns = result->execute_ns;
  if (result->plan != nullptr) {
    resp.has_plan = true;
    const auto& plan = *result->plan;
    resp.plan.mode = !plan.use_spu ? WireMode::kBaseline
                     : plan.mode == kernels::SpuMode::Manual
                         ? WireMode::kManualSpu
                         : WireMode::kAutoOrchestrate;
    resp.plan.config = config_index(plan.cfg);
    resp.plan.backend = plan.backend == kernels::ExecBackend::kNativeSwar
                            ? WireBackend::kNativeSwar
                            : WireBackend::kSimulator;
    resp.plan.score_source = static_cast<uint8_t>(plan.score_source);
    if (plan.observed_count > 0) {
      resp.plan.has_observed = true;
      resp.plan.observed_count = plan.observed_count;
      resp.plan.observed_mean = plan.observed_mean;
      resp.plan.observed_variance = plan.observed_variance;
    }
  }
  resp.explored = result->explored;
  resp.output = std::move(output);
  return resp;
}

}  // namespace subword::service
