// protocol.h — the service's versioned, length-prefixed binary wire format.
//
// Every frame on the wire is a little-endian u32 body length followed by
// the body; every body starts with a magic word, a protocol version and a
// frame type, so a desynchronized or foreign stream is detected at the
// first frame, not by misparsing payload bytes. Requests carry the same
// knobs api::Request exposes (kernel, repeats, mode, crossbar config,
// backend, planner budgets) plus an optional input payload; responses
// carry a status, a typed error code, the execution stats and the output
// payload.
//
// Decoding NEVER throws and never crashes on hostile bytes: every malformed
// input — truncated field, bad magic, unknown enum value, string running
// past the body, oversized payload, trailing garbage — yields a typed
// ProtocolError through ProtoResult. Encoding is infallible. Both are pure
// functions over byte vectors, independent of sockets, which is what makes
// the format unit-testable and fuzzable without a live server (and the
// wire fuzz in test_service does exactly that, plus live-server runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "api/result.h"

namespace subword::service {

// -- Frame layer --------------------------------------------------------------

inline constexpr uint32_t kMagic = 0x53575331;  // "SWS1"
inline constexpr uint16_t kVersion = 1;
// Hard ceiling on one frame's body, independent of server configuration:
// a length prefix beyond this is rejected before any allocation, so a
// hostile 4-byte header cannot make the reader reserve gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 1u << 24;  // 16 MiB

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

// -- Typed decode errors ------------------------------------------------------

enum class ProtoCode : uint8_t {
  kTruncated = 1,       // body ended inside a fixed-width field
  kBadMagic = 2,        // first word is not kMagic (desync / foreign client)
  kBadVersion = 3,      // version word this build does not speak
  kBadType = 4,         // frame type is neither request nor response
  kOversizedFrame = 5,  // length prefix beyond kMaxFrameBytes / server cap
  kBadString = 6,       // string length runs past the body
  kBadEnum = 7,         // mode/config/backend/status byte out of range
  kBadFlags = 8,        // reserved flag bits set (newer client?)
  kTrailingBytes = 9,   // body longer than the fields it declares
  kPayloadTooLarge = 10,  // input payload exceeds the server's limit
};

[[nodiscard]] constexpr const char* to_string(ProtoCode c) {
  switch (c) {
    case ProtoCode::kTruncated: return "Truncated";
    case ProtoCode::kBadMagic: return "BadMagic";
    case ProtoCode::kBadVersion: return "BadVersion";
    case ProtoCode::kBadType: return "BadType";
    case ProtoCode::kOversizedFrame: return "OversizedFrame";
    case ProtoCode::kBadString: return "BadString";
    case ProtoCode::kBadEnum: return "BadEnum";
    case ProtoCode::kBadFlags: return "BadFlags";
    case ProtoCode::kTrailingBytes: return "TrailingBytes";
    case ProtoCode::kPayloadTooLarge: return "PayloadTooLarge";
  }
  return "UnknownProtoCode";
}

struct ProtocolError {
  ProtoCode code = ProtoCode::kTruncated;
  std::string detail;  // human-readable cause (field, offset, limit)

  [[nodiscard]] std::string to_string() const {
    std::string s = service::to_string(code);
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }
};

// Value-or-ProtocolError, the same shape as api::Result but for the wire
// layer (which sits above api:: and must not widen ApiError's meaning).
template <typename T>
class [[nodiscard]] ProtoResult {
 public:
  ProtoResult(T value) : v_(std::move(value)) {}          // NOLINT
  ProtoResult(ProtocolError error) : v_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] T& value() { return std::get<T>(v_); }
  [[nodiscard]] const T& value() const { return std::get<T>(v_); }
  [[nodiscard]] const ProtocolError& error() const {
    return std::get<ProtocolError>(v_);
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, ProtocolError> v_;
};

// -- Request ------------------------------------------------------------------

// Execution mode on the wire. Mirrors the api::Request knobs: kPlan is
// auto_plan() (the cost-model planner resolves config/mode/backend).
enum class WireMode : uint8_t {
  kBaseline = 0,
  kManualSpu = 1,
  kAutoOrchestrate = 2,
  kPlan = 3,
};

enum class WireBackend : uint8_t {
  kSimulator = 0,
  kNativeSwar = 1,
  // Planner decides (kPlan mode only; kBadEnum with any other mode).
  kAuto = 2,
};

struct WireRequest {
  uint64_t request_id = 0;  // client-chosen, echoed verbatim in the response
  std::string tenant;       // empty: the server's default tenant
  std::string kernel;       // registry name (case-insensitive, like the api)
  uint32_t repeats = 1;
  WireMode mode = WireMode::kBaseline;
  uint8_t config = 0;  // crossbar config index: 0..3 = A..D
  WireBackend backend = WireBackend::kSimulator;
  bool has_area_budget = false;  // planner budget knobs (imply nothing on
  double area_budget_mm2 = 0;    // their own; the server validates kPlan)
  bool has_delay_budget = false;
  double max_delay_ns = 0;
  std::vector<uint8_t> input;  // empty: the kernel's synthetic workload
};

// -- Response -----------------------------------------------------------------

enum class WireStatus : uint8_t {
  kOk = 0,
  kApiError = 1,    // typed api::ErrorCode + message
  kProtoError = 2,  // the request frame itself was malformed
};

// Execution stats mirrored from api::Response (cycle stats are optional —
// the native backend has no cycle model, mirrored as has_cycles=false, not
// a poisonous zero).
struct WireStats {
  bool cache_hit = false;
  bool has_cycles = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t prepare_ns = 0;
  uint64_t execute_ns = 0;
};

// Where a plan's decision variable came from, on the wire: 0 model,
// 1 blended, 2 measured (mirrors runtime::ScoreSource; kBadEnum above 2).
inline constexpr uint8_t kWireScoreSourceMax = 2;

// The planner's decision for kPlan requests (mirrors Response::plan).
struct WirePlan {
  WireMode mode = WireMode::kBaseline;  // never kPlan in a decision
  uint8_t config = 0;
  WireBackend backend = WireBackend::kSimulator;  // never kAuto
  uint8_t score_source = 0;  // 0 model / 1 blended / 2 measured
  // Observed history of the chosen shape, present only once it has been
  // measured (kRespFlagObserved in the response flags byte).
  bool has_observed = false;
  uint64_t observed_count = 0;
  double observed_mean = 0;      // cycles (sim) or wall-ns (native)
  double observed_variance = 0;
};

struct WireResponse {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  // status == kApiError: the api::ErrorCode, carried with a stable wire
  // mapping (error_code_to_wire) so enum reordering can never change the
  // protocol. status == kProtoError: the ProtoCode.
  uint8_t error_code = 0;
  std::string message;
  WireStats stats;
  bool has_plan = false;
  WirePlan plan;
  // This execution was sampled for exploration (the server ran the plan's
  // runner-up shape to refresh its measurement history).
  bool explored = false;
  std::vector<uint8_t> output;
};

// -- Stable api::ErrorCode <-> wire byte mapping ------------------------------

// Explicit switch, not static_cast: the wire value is a contract, the enum
// order is not. Returns 255 only for codes this build does not know.
[[nodiscard]] uint8_t error_code_to_wire(api::ErrorCode code);
// Inverse; false when the byte maps to no known code (`out` untouched).
[[nodiscard]] bool error_code_from_wire(uint8_t wire, api::ErrorCode* out);

// -- Encode / decode ----------------------------------------------------------

// Append one full frame (length prefix + body) to `out`.
void encode_request(const WireRequest& req, std::vector<uint8_t>* out);
void encode_response(const WireResponse& resp, std::vector<uint8_t>* out);

// Decode one frame *body* (the bytes after the length prefix). The frame
// layer (read_frame in socket.h) has already bounded the body size;
// `max_payload_bytes` additionally caps the request's input payload
// (0: no extra cap) so a server can enforce a per-request data limit with
// a typed kPayloadTooLarge instead of an allocation.
[[nodiscard]] ProtoResult<WireRequest> decode_request(
    std::span<const uint8_t> body, size_t max_payload_bytes = 0);
[[nodiscard]] ProtoResult<WireResponse> decode_response(
    std::span<const uint8_t> body);

// Validate a frame header found at the start of `body` and report its
// type. Shared by both decoders; exposed so the server can classify a
// frame before dispatching (and tests can probe header errors directly).
[[nodiscard]] ProtoResult<FrameType> peek_frame_type(
    std::span<const uint8_t> body);

}  // namespace subword::service
