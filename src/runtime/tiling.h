// tiling.h — scatter/gather frame tiling over the batch engine.
//
// One user request over a large frame becomes many independent KernelJobs:
// the splitter cuts the bound input buffer into base-tile windows (per the
// kernel's BufferSpec tile geometry — stride, halo, unit granularity),
// fans them out through BatchEngine::submit, and the gather half
// reassembles the outputs in tile order. This is the paper's fine-grain
// orchestration question lifted to the job level: the expensive half (one
// PreparedProgram) is shared by every tile through the orchestration
// cache, and the cheap half (per-tile execution) is what actually spreads
// across workers.
//
// Data-plane contract: every tile's input span aliases the caller's frame
// (no copies) and every tile's output span aliases a disjoint window of
// the caller's output buffer, so workers write their tiles concurrently
// without coordination. The one exception is a partial tail tile: its
// input is staged into a zero-padded full-tile buffer and its output into
// a full-size scratch, from which gather_tiled copies back only the valid
// prefix. Both stagings live inside the TiledSubmission, which must
// therefore outlive every future it holds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runtime/batch_engine.h"

namespace subword::runtime {

// The scatter geometry for one frame: how many jobs, where each reads and
// writes, and how the trailing partial tile (if any) is handled.
struct TileGeometry {
  size_t tiles = 0;              // total jobs, including the padded tail
  size_t full_tiles = 0;         // tiles fed directly from the frame
  size_t tail_units = 0;         // valid units in the padded tail (0: none)
  size_t input_stride = 0;       // frame bytes between tile starts
  size_t tile_input_bytes = 0;   // == spec.input_bytes
  size_t tile_output_bytes = 0;  // == spec.output_bytes
  size_t frame_input_bytes = 0;
  size_t frame_output_bytes = 0;  // gathered output size
  size_t tail_valid_output = 0;   // bytes gathered from the tail tile
};

// Compute the tile geometry for a frame of `frame_input` bytes over
// `spec`. Fails (nullopt, *error explains) when the spec is not tileable,
// the frame is smaller than one base tile, a halo'd kernel's frame does
// not tile exactly, or a remainder is not a whole number of units.
[[nodiscard]] std::optional<TileGeometry> plan_tiles(
    const kernels::BufferSpec& spec, size_t frame_input,
    std::string* error = nullptr);

// A tiled fan-out in flight. Move-only (futures); keep it alive until
// gather_tiled consumes it — the tail stagings and the caller's spans are
// referenced by jobs still executing.
struct TiledSubmission {
  TileGeometry geom;
  std::vector<std::future<JobResult>> futures;  // tile order
  // Tail-tile stagings (null when the frame tiles exactly).
  std::unique_ptr<std::vector<uint8_t>> tail_input;
  std::unique_ptr<std::vector<uint8_t>> tail_output;
  std::span<uint8_t> tail_dest;  // where the valid tail prefix lands
};

// Scatter: fan `proto` out as one KernelJob per tile of `input`, each
// binding its window of `input`/`output` (output may be empty: stats-only,
// no readback). `proto`'s own buffer binding is ignored; every other knob
// — kernel, repeats, mode, config, backend, planner fields — is shared by
// all tiles, which is exactly why they share one cache entry and one
// PreparedProgram. Preconditions: geom came from plan_tiles over the same
// spec, input.size() == geom.frame_input_bytes, and output is empty or
// exactly geom.frame_output_bytes.
[[nodiscard]] TiledSubmission submit_tiled(BatchEngine& engine,
                                           const KernelJob& proto,
                                           const TileGeometry& geom,
                                           std::span<const uint8_t> input,
                                           std::span<uint8_t> output);

// Order-preserving aggregation of many per-tile JobResults into one. The
// sum keeps the cycle-poisoning rule: stats.has_cycles survives only if
// every added result carried a cycle model. The first failed tile (in add
// order) wins result.ok/kind/error; cache_hit is the conjunction.
class JobResultAccumulator {
 public:
  void add(JobResult&& r);

  [[nodiscard]] JobResult take() && { return std::move(result_); }
  [[nodiscard]] const JobResult& peek() const { return result_; }
  [[nodiscard]] size_t jobs() const { return jobs_; }
  [[nodiscard]] size_t cache_hits() const { return cache_hits_; }
  // Distinct engine workers that executed at least one of the jobs.
  [[nodiscard]] int workers_used() const;
  [[nodiscard]] bool all_ok() const { return result_.ok || jobs_ == 0; }

 private:
  JobResult result_;
  size_t jobs_ = 0;
  size_t cache_hits_ = 0;
  std::vector<int> workers_;  // sorted-unique worker ids
};

// The gathered view of a finished fan-out.
struct TiledResult {
  JobResult result;       // aggregated (see JobResultAccumulator)
  size_t jobs = 0;        // == geom.tiles
  size_t cache_hits = 0;  // tiles whose preparation replayed the cache
  int workers_used = 0;   // distinct workers across the fan-out
};

// Gather: wait for every tile in order, copy the tail tile's valid prefix
// into place (only if that tile verified), and aggregate. Never throws;
// per-tile failures surface through the aggregated JobResult.
[[nodiscard]] TiledResult gather_tiled(TiledSubmission&& sub);

}  // namespace subword::runtime
