#include "runtime/tiling.h"

#include <algorithm>
#include <utility>

namespace subword::runtime {

namespace {

std::optional<TileGeometry> fail(std::string* error, std::string msg) {
  if (error != nullptr) *error = std::move(msg);
  return std::nullopt;
}

}  // namespace

std::optional<TileGeometry> plan_tiles(const kernels::BufferSpec& spec,
                                       size_t frame_input,
                                       std::string* error) {
  if (!spec.supported() || !spec.tileable) {
    return fail(error, "kernel's buffer contract is not tileable");
  }
  if (spec.tile_input_halo_bytes >= spec.input_bytes) {
    return fail(error, "kernel declares a halo as large as its base tile");
  }
  const size_t stride = spec.input_bytes - spec.tile_input_halo_bytes;
  if (frame_input < spec.input_bytes) {
    return fail(error, "frame is " + std::to_string(frame_input) +
                           " bytes but one base tile needs " +
                           std::to_string(spec.input_bytes));
  }

  TileGeometry g;
  g.input_stride = stride;
  g.tile_input_bytes = spec.input_bytes;
  g.tile_output_bytes = spec.output_bytes;
  g.frame_input_bytes = frame_input;
  g.full_tiles = 1 + (frame_input - spec.input_bytes) / stride;
  g.tiles = g.full_tiles;
  g.frame_output_bytes = g.full_tiles * spec.output_bytes;

  const size_t consumed = spec.input_bytes + (g.full_tiles - 1) * stride;
  const size_t rem = frame_input - consumed;
  if (rem != 0) {
    if (spec.tile_input_halo_bytes != 0) {
      // The halo couples tiles, so a padded tail would convolve real data
      // against fabricated zeros mid-frame; only exact fits are seamless.
      return fail(error,
                  "frame of " + std::to_string(frame_input) +
                      " bytes does not tile exactly: a halo'd kernel needs " +
                      std::to_string(spec.input_bytes) + " + k*" +
                      std::to_string(stride) + " bytes");
    }
    if (spec.tile_unit_input_bytes == 0 ||
        rem % spec.tile_unit_input_bytes != 0) {
      return fail(error,
                  "frame remainder of " + std::to_string(rem) +
                      " bytes is not a whole number of " +
                      std::to_string(spec.tile_unit_input_bytes) +
                      "-byte units");
    }
    g.tail_units = rem / spec.tile_unit_input_bytes;
    g.tail_valid_output = g.tail_units * spec.tile_unit_output_bytes;
    g.tiles += 1;
    g.frame_output_bytes += g.tail_valid_output;
  }
  return g;
}

TiledSubmission submit_tiled(BatchEngine& engine, const KernelJob& proto,
                             const TileGeometry& geom,
                             std::span<const uint8_t> input,
                             std::span<uint8_t> output) {
  TiledSubmission sub;
  sub.geom = geom;
  sub.futures.reserve(geom.tiles);

  KernelJob job = proto;
  for (size_t k = 0; k < geom.full_tiles; ++k) {
    job.buffers.input =
        input.subspan(k * geom.input_stride, geom.tile_input_bytes);
    job.buffers.output =
        output.empty()
            ? std::span<uint8_t>{}
            : output.subspan(k * geom.tile_output_bytes,
                             geom.tile_output_bytes);
    sub.futures.push_back(engine.submit(job));
  }

  if (geom.tail_units != 0) {
    // A partial tail only exists for halo-free kernels, where the stride
    // equals the tile size — the remainder starts right after the last
    // full tile's input.
    const size_t tail_off = geom.full_tiles * geom.input_stride;
    sub.tail_input = std::make_unique<std::vector<uint8_t>>(
        geom.tile_input_bytes, uint8_t{0});
    const auto rem = input.subspan(tail_off);
    std::copy(rem.begin(), rem.end(), sub.tail_input->begin());
    job.buffers.input = *sub.tail_input;
    job.buffers.output = {};
    if (!output.empty()) {
      sub.tail_output = std::make_unique<std::vector<uint8_t>>(
          geom.tile_output_bytes, uint8_t{0});
      job.buffers.output = *sub.tail_output;
      sub.tail_dest = output.subspan(geom.full_tiles * geom.tile_output_bytes,
                                     geom.tail_valid_output);
    }
    sub.futures.push_back(engine.submit(job));
  }
  return sub;
}

void JobResultAccumulator::add(JobResult&& r) {
  ++jobs_;
  if (r.cache_hit) ++cache_hits_;
  if (r.worker >= 0) {
    auto it = std::lower_bound(workers_.begin(), workers_.end(), r.worker);
    if (it == workers_.end() || *it != r.worker) workers_.insert(it, r.worker);
  }
  if (jobs_ == 1) {
    result_ = std::move(r);
    return;
  }
  if (!r.ok && result_.ok) {
    // First failed tile (in add order) wins the error fields.
    result_.ok = false;
    result_.kind = r.kind;
    result_.error = std::move(r.error);
  }
  result_.run.stats += r.run.stats;  // keeps the cycle-poisoning rule
  result_.run.verified = result_.run.verified && r.run.verified;
  result_.run.spu.steps += r.run.spu.steps;
  result_.run.spu.routed_operands += r.run.spu.routed_operands;
  result_.run.spu.activations += r.run.spu.activations;
  result_.run.spu.idles += r.run.spu.idles;
  if (result_.run.orchestration == nullptr) {
    result_.run.orchestration = std::move(r.run.orchestration);
  }
  result_.cache_hit = result_.cache_hit && r.cache_hit;
  result_.prepare_ns += r.prepare_ns;
  result_.execute_ns += r.execute_ns;
  if (result_.worker != r.worker) result_.worker = -1;
  if (result_.plan == nullptr) result_.plan = std::move(r.plan);
}

int JobResultAccumulator::workers_used() const {
  return static_cast<int>(workers_.size());
}

TiledResult gather_tiled(TiledSubmission&& sub) {
  JobResultAccumulator acc;
  const size_t n = sub.futures.size();
  for (size_t k = 0; k < n; ++k) {
    JobResult r = sub.futures[k].get();
    const bool is_tail = sub.geom.tail_units != 0 && k == n - 1;
    if (is_tail && r.ok && r.run.verified && sub.tail_output != nullptr &&
        !sub.tail_dest.empty()) {
      // The runner only copies outputs back after verification; mirror
      // that contract for the staged tail so a failed tile never
      // overwrites caller memory.
      std::copy_n(sub.tail_output->begin(), sub.tail_dest.size(),
                  sub.tail_dest.begin());
    }
    acc.add(std::move(r));
  }
  TiledResult out;
  out.jobs = acc.jobs();
  out.cache_hits = acc.cache_hits();
  out.workers_used = acc.workers_used();
  out.result = std::move(acc).take();
  return out;
}

}  // namespace subword::runtime
