// history.h — observed-execution history: the measurement half of the
// feedback planner (docs/PLANNER.md).
//
// The PR-5 planner prices candidates with the paper's static Table-1 cost
// model and is deliberately optimistic — the manual-variant estimate is a
// static-fraction heuristic and mispredict costs are ignored entirely.
// This table closes the loop: BatchEngine::run_job records what each
// executed shape actually cost — simulator cycles, or wall-ns on the
// cycle-less native backend — keyed by
// (kernel, repeats, use_spu, mode, crossbar config, backend), and the
// planner blends those observations into its scores once enough samples
// accumulate (model-only below kHistoryMinSamples, measured-dominant at
// kHistoryFullSamples, linearly blended between).
//
// Concurrency contract: record() takes a per-key writer mutex (recordings
// of *different* keys never contend); lookup() is lock-free — each cell is
// a seqlock whose payload fields are individually atomic (relaxed) under
// an acquire/release sequence counter, so readers on the planning path
// never block a recording worker and TSan sees no race. The aggregate is
// Welford's (count, mean, M2), numerically stable at any sample count.
//
// Drift: every sample also enters a rolling window of kHistoryDriftWindow
// recent samples. When the window fills, its mean is compared against the
// full aggregate's; a relative deviation beyond kHistoryDriftTolerance
// means the workload's cost regime moved (e.g. a pipeline-config change
// upstream), so the aggregate is *reset to the window* — stale history
// must not outvote fresh measurements — and the table's epoch advances.
// The epoch also advances when a key crosses a sample threshold, which is
// what lets OrchestrationCache re-run memoized planning decisions exactly
// when new history could change them (see get_or_plan).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "core/crossbar.h"
#include "kernels/runner.h"

namespace subword::runtime {

// How much of a plan's decision variable came from measurement. Ordered:
// a comparison is only as measured as its least-measured side.
enum class ScoreSource : uint8_t {
  kModel = 0,     // pure Table-1 estimate (cold history)
  kBlended = 1,   // estimate + partial history (>= kHistoryMinSamples)
  kMeasured = 2,  // observed means dominate (>= kHistoryFullSamples)
};

[[nodiscard]] constexpr const char* to_string(ScoreSource s) {
  switch (s) {
    case ScoreSource::kModel: return "model";
    case ScoreSource::kBlended: return "blended";
    case ScoreSource::kMeasured: return "measured";
  }
  return "unknown";
}

// Sample thresholds for the blend weight w = n / kHistoryFullSamples
// (clamped to [0,1]; w forced to 0 below kHistoryMinSamples): one or two
// samples are too noisy to move a decision, eight of a deterministic
// simulator are definitive.
inline constexpr uint64_t kHistoryMinSamples = 3;
inline constexpr uint64_t kHistoryFullSamples = 8;
// Drift detection: recent-window length and the relative deviation of the
// window mean from the aggregate mean that invalidates the aggregate.
inline constexpr uint64_t kHistoryDriftWindow = 8;
inline constexpr double kHistoryDriftTolerance = 0.25;

// Identity of one observed execution shape. Normalized like
// OrchestrationKey: baseline shapes ignore mode and crossbar entirely, so
// equivalent executions aggregate into one entry.
struct HistoryKey {
  std::string kernel;
  int repeats = 1;
  bool use_spu = false;
  kernels::SpuMode mode = kernels::SpuMode::Auto;
  // Unit discipline: a kSimulator entry aggregates cycle counts, a
  // kNativeSwar entry aggregates wall-ns. Keying by backend keeps the two
  // from ever mixing in one mean.
  kernels::ExecBackend backend = kernels::ExecBackend::kSimulator;
  // CrossbarConfig identity (zeroed for baseline).
  int input_ports = 0;
  int output_ports = 0;
  int port_bits = 0;
  bool modes = false;

  friend bool operator==(const HistoryKey&, const HistoryKey&) = default;

  [[nodiscard]] static HistoryKey from_shape(const std::string& kernel,
                                             int repeats, bool use_spu,
                                             kernels::SpuMode mode,
                                             const core::CrossbarConfig& cfg,
                                             kernels::ExecBackend backend);
};

struct HistoryKeyHash {
  size_t operator()(const HistoryKey& k) const {
    size_t h = std::hash<std::string>{}(k.kernel);
    auto mix = [&h](uint64_t v) {
      h ^= std::hash<uint64_t>{}(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    };
    mix(static_cast<uint64_t>(k.repeats));
    mix((k.use_spu ? 1u : 0u) | (k.modes ? 2u : 0u) |
        (static_cast<uint64_t>(k.mode) << 2) |
        (static_cast<uint64_t>(k.backend) << 4));
    mix(static_cast<uint64_t>(k.input_ports) |
        (static_cast<uint64_t>(k.output_ports) << 8) |
        (static_cast<uint64_t>(k.port_bits) << 16));
    return h;
  }
};

// One key's aggregate, as lookup() snapshots it.
struct HistoryStats {
  uint64_t count = 0;
  double mean = 0;      // cycles (sim) or wall-ns (native) per execution
  double variance = 0;  // sample variance (Welford M2 / (count - 1))
  // Largest relative |window mean - aggregate mean| ever seen for this
  // key, including deviations below the invalidation tolerance: how close
  // this key has come to drifting.
  double drift_watermark = 0;
  uint64_t invalidations = 0;  // drift resets this key has suffered

  [[nodiscard]] ScoreSource regime() const {
    if (count >= kHistoryFullSamples) return ScoreSource::kMeasured;
    if (count >= kHistoryMinSamples) return ScoreSource::kBlended;
    return ScoreSource::kModel;
  }
};

class HistoryTable {
 public:
  // Fold one observation into `key`'s aggregate (creating the entry on
  // first use). Serializes only with concurrent record()s of the same key.
  void record(const HistoryKey& key, double value);

  // Lock-free consistent snapshot; nullopt for a never-recorded key.
  [[nodiscard]] std::optional<HistoryStats> lookup(
      const HistoryKey& key) const;

  // Monotonic counter advanced whenever new history could change a plan:
  // a key crossing kHistoryMinSamples or kHistoryFullSamples, or a drift
  // invalidation. Cached planning decisions stamp the epoch they were
  // computed at and recompute when it moves.
  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] size_t size() const;
  [[nodiscard]] uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

  void clear();

 private:
  // Seqlock cell. Payload fields are individually atomic so a racing read
  // is data-race-free even mid-write; the sequence counter (odd while a
  // write is in flight) makes the snapshot *consistent*. The writer mutex
  // serializes recorders of one key; the drift window is only ever touched
  // under it, so its storage is plain.
  struct Cell {
    std::mutex writer;
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> count{0};
    std::atomic<double> mean{0};
    std::atomic<double> m2{0};
    std::atomic<double> drift_watermark{0};
    std::atomic<uint64_t> invalidations{0};
    // Rolling recent-sample window (writer-mutex-only state).
    double window[kHistoryDriftWindow] = {};
    uint64_t window_fill = 0;
  };

  [[nodiscard]] std::shared_ptr<Cell> cell_for(const HistoryKey& key);

  mutable std::shared_mutex map_mu_;  // guards the map, never the cells
  std::unordered_map<HistoryKey, std::shared_ptr<Cell>, HistoryKeyHash> map_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace subword::runtime
