#include "runtime/planner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "backend/lowering.h"
#include "kernels/registry.h"

namespace subword::runtime {

namespace {

// Table-1 price of one configuration: interconnect plus control memory.
void price_config(const core::CrossbarConfig& cfg, PlanCandidate& c) {
  const hw::SpuCost cost = hw::estimate_cost(cfg);
  c.area_mm2 = cost.crossbar_area_mm2 + cost.control_mem_area_mm2;
  c.delay_ns = cost.crossbar_delay_ns;
}

bool within_budget(const PlanCandidate& c, const PlanBudget& b,
                   std::string* note) {
  if (b.area_mm2 > 0 && c.area_mm2 > b.area_mm2) {
    *note = "config " + std::string(c.cfg.name) + " needs " +
            std::to_string(c.area_mm2) + " mm^2, budget is " +
            std::to_string(b.area_mm2);
    return false;
  }
  if (b.delay_ns > 0 && c.delay_ns > b.delay_ns) {
    *note = "config " + std::string(c.cfg.name) + " crossbar delay " +
            std::to_string(c.delay_ns) + " ns exceeds budget " +
            std::to_string(b.delay_ns);
    return false;
  }
  return true;
}

// When the caller pinned the native backend, a candidate the lowering
// cannot execute is not a choice at all.
bool executable_on(const PlanOptions& opts, const kernels::MediaKernel& k,
                   bool use_spu, kernels::SpuMode mode,
                   const core::CrossbarConfig& cfg, std::string* note) {
  if (!opts.backend || *opts.backend != kernels::ExecBackend::kNativeSwar) {
    return true;
  }
  const auto* info = kernels::find_kernel_info(k.name());
  if (info != nullptr && info->native_supported(use_spu, mode, cfg)) {
    return true;
  }
  *note = "pinned native backend cannot execute this shape";
  return false;
}

}  // namespace

std::string PlanCandidate::label() const {
  if (!use_spu) return "baseline";
  return std::string(mode == kernels::SpuMode::Manual ? "manual/" : "auto/") +
         std::string(cfg.name);
}

std::string PlanSummary::choice_label() const {
  if (!use_spu) return "baseline";
  return std::string(mode == kernels::SpuMode::Manual ? "manual/" : "auto/") +
         std::string(cfg.name);
}

std::vector<PlanCandidate> score_candidates(const kernels::MediaKernel& k,
                                            int repeats,
                                            const PlanOptions& opts) {
  std::vector<PlanCandidate> out;

  // -- Baseline: the yardstick every SPU candidate must beat ----------------
  {
    PlanCandidate base;
    base.use_spu = false;
    base.est_benefit = 0;
    base.score = 0;
    if (!executable_on(opts, k, false, kernels::SpuMode::Auto, core::kConfigA,
                       &base.note)) {
      base.feasible = false;
    }
    out.push_back(std::move(base));
  }

  const isa::Program base_prog = k.build_mmx(1);
  const auto base_counts = base_prog.static_counts();

  // Dynamic permutation traffic per workload pass, measured once from a
  // provenance dry-run's loop inventory (the loop structure and trip
  // counts do not depend on the crossbar configuration). This is the pool
  // the manual variant's static removal fraction is scaled by.
  int64_t dyn_permutations = 0;
  bool have_dyn = false;
  auto collect_dyn = [&](const core::OrchestrationResult& dry) {
    for (const auto& l : dry.loops) {
      if (l.trip_count > 0) {
        dyn_permutations +=
            static_cast<int64_t>(l.total_permutations) * l.trip_count;
      }
    }
    have_dyn = true;
  };

  // -- Auto candidates: one provenance dry-run per configuration ------------
  for (const auto& cfg : core::kAllConfigs) {
    PlanCandidate c;
    c.use_spu = true;
    c.mode = kernels::SpuMode::Auto;
    c.cfg = cfg;
    price_config(cfg, c);
    if (!within_budget(c, opts.budget, &c.note) ||
        !executable_on(opts, k, true, c.mode, cfg, &c.note)) {
      c.feasible = false;
      out.push_back(std::move(c));
      continue;
    }
    core::OrchestratorOptions oo;
    oo.config = cfg;
    const core::OrchestrationResult dry =
        core::Orchestrator(oo).run(base_prog);
    c.report = core::summarize(dry);
    if (!have_dyn) collect_dyn(dry);
    c.removed_static = c.report.removed_static;
    c.startup_instructions = c.report.startup_instructions();
    // Removed executions scale with the outer repeat count; the injected
    // MMIO prologue runs once (the paper's amortization argument).
    c.est_benefit = c.report.removed_dynamic * repeats -
                    c.startup_instructions;
    c.score = c.est_benefit;
    if (c.removed_static == 0) {
      c.note = "analysis removes no permutation under this config";
    }
    out.push_back(std::move(c));
  }

  // -- Manual candidates: the paper's hand-recoded variants (§5.2.1) --------
  if (opts.allow_manual) {
    if (!have_dyn) {
      // Every auto candidate was infeasible (budget starvation, pinned
      // backend), so no dry-run ran above. The manual scoring still needs
      // the baseline's dynamic permutation pool — a zero pool would score
      // every manual variant to est_benefit <= 0 and silently plan a
      // pessimal baseline. The loop inventory is config-independent, so
      // one dry-run under A serves.
      core::OrchestratorOptions oo;
      oo.config = core::kConfigA;
      collect_dyn(core::Orchestrator(oo).run(base_prog));
    }
    for (const auto& cfg : core::kAllConfigs) {
      PlanCandidate c;
      c.use_spu = true;
      c.mode = kernels::SpuMode::Manual;
      c.cfg = cfg;
      price_config(cfg, c);
      if (!within_budget(c, opts.budget, &c.note) ||
          !executable_on(opts, k, true, c.mode, cfg, &c.note)) {
        c.feasible = false;
        out.push_back(std::move(c));
        continue;
      }
      std::optional<isa::Program> manual;
      try {
        manual = k.build_spu(cfg, 1);
      } catch (const std::logic_error&) {
        manual.reset();
      }
      if (!manual.has_value()) {
        c.feasible = false;
        c.note = "no manual SPU variant realizable under config " +
                 std::string(cfg.name);
        out.push_back(std::move(c));
        continue;
      }
      const auto man_counts = manual->static_counts();
      c.removed_static =
          std::max(0, base_counts.permutation - man_counts.permutation);
      // The manual program is the baseline minus the permutations it routes
      // plus its in-program MMIO prologue and GO stores — so the static
      // size delta (plus what was removed) is exactly the injected startup.
      c.startup_instructions = std::max<int64_t>(
          0, static_cast<int64_t>(man_counts.total) - base_counts.total +
                 c.removed_static);
      // Estimate the dynamic executions removed as the baseline's dynamic
      // permutation traffic scaled by the fraction of static permutations
      // the manual variant eliminated.
      const double fraction =
          base_counts.permutation > 0
              ? static_cast<double>(c.removed_static) /
                    static_cast<double>(base_counts.permutation)
              : 0.0;
      c.est_benefit = static_cast<int64_t>(std::llround(
                          fraction * static_cast<double>(dyn_permutations))) *
                          repeats -
                      c.startup_instructions;
      c.score = c.est_benefit;
      if (c.removed_static == 0) {
        c.note = "manual variant removes no permutation";
      }
      out.push_back(std::move(c));
    }
  }
  return out;
}

void blend_with_history(const std::string& kernel, int repeats,
                        const HistoryTable* history,
                        std::vector<PlanCandidate>* candidates) {
  for (auto& c : *candidates) {
    c.score = c.est_benefit;
    c.score_source = ScoreSource::kModel;
    c.observed_count = 0;
    c.observed_mean = 0;
    c.observed_variance = 0;
  }
  if (history == nullptr) return;

  // The baseline aggregate anchors every comparison: a candidate's
  // measured benefit is mean(baseline) - mean(candidate), so the blend
  // weight is bounded by the *less*-sampled side. Only simulator-cycle
  // history participates — it shares the Table-1 model's unit; native
  // wall-ns entries are keyed separately and never enter a cycle score.
  const auto base = history->lookup(HistoryKey::from_shape(
      kernel, repeats, false, kernels::SpuMode::Auto, core::kConfigA,
      kernels::ExecBackend::kSimulator));
  const uint64_t base_n = base ? base->count : 0;

  for (auto& c : *candidates) {
    const auto obs = history->lookup(HistoryKey::from_shape(
        kernel, repeats, c.use_spu, c.mode, c.cfg,
        kernels::ExecBackend::kSimulator));
    if (obs) {
      c.observed_count = obs->count;
      c.observed_mean = obs->mean;
      c.observed_variance = obs->variance;
    }
    if (!c.use_spu) {
      // The baseline's benefit over itself is identically zero; only its
      // regime (how well-measured the yardstick is) is informative.
      c.score = 0;
      c.score_source =
          base ? base->regime() : ScoreSource::kModel;
      continue;
    }
    const uint64_t n = std::min(base_n, c.observed_count);
    if (n < kHistoryMinSamples) continue;  // model-only
    const double w = std::min(
        1.0, static_cast<double>(n) /
                 static_cast<double>(kHistoryFullSamples));
    const double measured = base->mean - c.observed_mean;
    c.score = static_cast<int64_t>(std::llround(
        (1.0 - w) * static_cast<double>(c.est_benefit) + w * measured));
    c.score_source = n >= kHistoryFullSamples ? ScoreSource::kMeasured
                                              : ScoreSource::kBlended;
  }
}

Plan pick_plan(const std::string& kernel, int repeats,
               std::vector<PlanCandidate> candidates) {
  // Baseline is the incumbent: a SPU candidate must show a strictly
  // positive net score to unseat it. Among winners, prefer cheaper
  // silicon (area, then delay) — the paper's config-D economy.
  size_t best = 0;  // candidates[0] is baseline by construction
  for (size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (!c.feasible || !c.use_spu || c.score <= 0) continue;
    const auto& b = candidates[best];
    const bool beats =
        (!b.use_spu) ||  // incumbent is still baseline
        c.score > b.score ||
        (c.score == b.score &&
         (c.area_mm2 < b.area_mm2 ||
          (c.area_mm2 == b.area_mm2 && c.delay_ns < b.delay_ns)));
    if (beats) best = i;
  }

  // The runner-up: who exploration should keep measuring. A still-cold
  // baseline comes first (it anchors every blend), then the best distinct
  // SPU shape that removes anything — including shapes the model scored
  // negative: those are exactly the estimates worth falsifying.
  std::optional<size_t> runner;
  const PlanCandidate& winc = candidates[best];
  if (winc.use_spu && candidates[0].feasible &&
      candidates[0].observed_count < kHistoryFullSamples) {
    runner = 0;
  } else {
    for (size_t i = 1; i < candidates.size(); ++i) {
      const auto& c = candidates[i];
      if (i == best || !c.feasible || !c.use_spu || c.removed_static <= 0) {
        continue;
      }
      if (!runner.has_value()) {
        runner = i;
        continue;
      }
      const auto& r = candidates[*runner];
      if (c.score > r.score ||
          (c.score == r.score &&
           (c.area_mm2 < r.area_mm2 ||
            (c.area_mm2 == r.area_mm2 && c.delay_ns < r.delay_ns)))) {
        runner = i;
      }
    }
  }

  Plan plan;
  const PlanCandidate& win = candidates[best];
  plan.use_spu = win.use_spu;
  plan.mode = win.mode;
  plan.cfg = win.use_spu ? win.cfg : core::kConfigA;
  if (runner.has_value()) {
    const auto& r = candidates[*runner];
    plan.runner_up = PlanShape{r.use_spu, r.mode,
                               r.use_spu ? r.cfg : core::kConfigA,
                               kernels::ExecBackend::kSimulator};
  }

  PlanSummary s;
  s.kernel = kernel;
  s.repeats = repeats;
  s.use_spu = plan.use_spu;
  s.mode = plan.mode;
  s.cfg = plan.cfg;
  s.removed_static = win.removed_static;
  s.est_benefit = win.est_benefit;
  s.startup_instructions = win.startup_instructions;
  s.area_mm2 = win.area_mm2;
  s.delay_ns = win.delay_ns;
  s.observed_count = win.observed_count;
  s.observed_mean = win.observed_mean;
  s.observed_variance = win.observed_variance;
  // The decision is only as measured as its least-measured comparison:
  // one cold feasible candidate means part of the field was still judged
  // by the model alone.
  s.score_source = ScoreSource::kMeasured;
  for (const auto& c : candidates) {
    if (!c.feasible) continue;
    if (static_cast<uint8_t>(c.score_source) <
        static_cast<uint8_t>(s.score_source)) {
      s.score_source = c.score_source;
    }
  }
  if (!plan.use_spu) {
    bool any_removal = false;
    for (const auto& c : candidates) {
      if (c.use_spu && c.feasible && c.removed_static > 0) any_removal = true;
    }
    s.reason = any_removal
                   ? "baseline: no SPU candidate's removed permutations "
                     "outweigh its startup cost at repeats=" +
                         std::to_string(repeats)
                   : "baseline: no configuration removes any permutation";
  } else {
    s.reason = win.label() + ": " + to_string(win.score_source) + " score " +
               std::to_string(win.score) + " cycles saved at repeats=" +
               std::to_string(repeats) + " (est " +
               std::to_string(win.est_benefit) + ", " +
               std::to_string(win.removed_static) +
               " static permutations removed, " +
               std::to_string(win.startup_instructions) +
               " startup instructions) at " + std::to_string(win.area_mm2) +
               " mm^2 — cheapest winning config";
  }
  s.candidates = std::move(candidates);
  plan.summary = std::move(s);
  return plan;
}

Plan plan_kernel(const kernels::MediaKernel& k, int repeats,
                 const PlanOptions& opts) {
  std::vector<PlanCandidate> candidates = score_candidates(k, repeats, opts);
  blend_with_history(k.name(), repeats, opts.history, &candidates);
  Plan plan = pick_plan(k.name(), repeats, std::move(candidates));
  if (opts.backend.has_value()) {
    if (*opts.backend == kernels::ExecBackend::kNativeSwar) {
      // pick_plan falls back to baseline even when the baseline candidate
      // was marked infeasible (a pinned backend that cannot execute it).
      // Handing that plan to the engine would surface a LoweringError from
      // deep inside prepare — the exact failure mode planning exists to
      // turn into a typed error — so reject it here instead.
      const auto* info = kernels::find_kernel_info(k.name());
      if (info == nullptr ||
          !info->native_supported(plan.use_spu, plan.mode, plan.cfg)) {
        throw backend::LoweringError(
            "planner: no native-executable plan for kernel '" + k.name() +
            "' (pinned backend rejects every feasible candidate)");
      }
    }
    plan.backend = *opts.backend;
  } else {
    // Prefer the native-SWAR executor whenever the chosen shape passes the
    // lowering proof: bit-identical outputs, order-of-magnitude faster.
    // Callers that need cycle statistics pin the simulator instead.
    const auto* info = kernels::find_kernel_info(k.name());
    if (info != nullptr &&
        info->native_supported(plan.use_spu, plan.mode, plan.cfg)) {
      plan.backend = kernels::ExecBackend::kNativeSwar;
    }
  }
  plan.summary.backend = plan.backend;
  // The runner-up keeps the simulator backend on purpose: exploration
  // exists to feed *cycle* history — the only unit that blends into the
  // model — so an explored execution must produce cycle stats. A pinned
  // backend overrides that (the caller's pin is a contract); a pinned
  // native backend that cannot execute the runner-up leaves nothing to
  // explore.
  if (plan.runner_up.has_value() && opts.backend.has_value()) {
    auto& ru = *plan.runner_up;
    if (*opts.backend == kernels::ExecBackend::kNativeSwar) {
      const auto* info = kernels::find_kernel_info(k.name());
      if (info != nullptr &&
          info->native_supported(ru.use_spu, ru.mode, ru.cfg)) {
        ru.backend = kernels::ExecBackend::kNativeSwar;
      } else {
        plan.runner_up.reset();
      }
    }
  }
  return plan;
}

Plan plan_kernel(const std::string& kernel, int repeats,
                 const PlanOptions& opts) {
  const auto k = kernels::make_kernel(kernel);
  return plan_kernel(*k, repeats, opts);
}

}  // namespace subword::runtime
