#include "runtime/batch_engine.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "backend/lowering.h"
#include "kernels/registry.h"

namespace subword::runtime {

namespace {

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Deterministic exploration sampling: hash the per-engine sequence number
// to a uniform [0,1) double. Reproducible across runs, unlike rand().
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double unit_hash(uint64_t seq) {
  return static_cast<double>(splitmix64(seq) >> 11) * 0x1.0p-53;
}

}  // namespace

BatchEngine::BatchEngine(Options opts) {
  cache_ = opts.cache ? std::move(opts.cache)
                      : std::make_shared<OrchestrationCache>();
  queue_capacity_ =
      opts.queue_capacity > 0 ? static_cast<size_t>(opts.queue_capacity) : 0;
  shed_queue_depth_ =
      opts.shed_queue_depth > 0 ? static_cast<size_t>(opts.shed_queue_depth)
                                : 0;
  shed_max_block_ns_ = opts.shed_max_block_ns;
  explore_rate_ = opts.explore_rate < 0   ? 0
                  : opts.explore_rate > 1 ? 1
                                          : opts.explore_rate;
  int n = opts.workers;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
  }
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

BatchEngine::~BatchEngine() { shutdown(); }

std::future<JobResult> BatchEngine::submit(KernelJob job) {
  Task task;
  task.job = std::move(job);
  std::future<JobResult> fut = task.promise.get_future();
  {
    std::unique_lock lock(mu_);
    // Admission control: shed instead of queueing once the depth threshold
    // is crossed. Decided under the queue mutex, so the depth read cannot
    // race a concurrent push — the policy is exact, not advisory.
    if (accepting_ && shed_queue_depth_ != 0 &&
        queue_.size() >= shed_queue_depth_) {
      ++agg_.jobs_shed;
      JobResult r;
      r.ok = false;
      r.kind = JobErrorKind::kOverloaded;
      r.error = "shed: engine queue depth " + std::to_string(queue_.size()) +
                " >= shed threshold " + std::to_string(shed_queue_depth_);
      task.promise.set_value(std::move(r));
      return fut;
    }
    if (queue_capacity_ != 0 && accepting_ &&
        queue_.size() >= queue_capacity_) {
      // Bounded queue: block the submitter (backpressure) until a worker
      // makes room or shutdown begins. Workers never wait on submitters,
      // so this cannot deadlock a pipeline driver feeding the engine.
      // With shed_max_block_ns the wait is bounded: a submission that
      // would block longer is shed with kOverloaded instead.
      const uint64_t b0 = now_ns();
      const auto have_room = [this] {
        return !accepting_ || queue_.size() < queue_capacity_;
      };
      bool room = true;
      if (shed_max_block_ns_ != 0) {
        room = cv_space_.wait_for(
            lock, std::chrono::nanoseconds(shed_max_block_ns_), have_room);
      } else {
        cv_space_.wait(lock, have_room);
      }
      agg_.submit_block_ns += now_ns() - b0;
      if (!room) {
        ++agg_.jobs_shed;
        JobResult r;
        r.ok = false;
        r.kind = JobErrorKind::kOverloaded;
        r.error = "shed: blocked on a full queue (capacity " +
                  std::to_string(queue_capacity_) + ") longer than " +
                  std::to_string(shed_max_block_ns_) + " ns";
        task.promise.set_value(std::move(r));
        return fut;
      }
    }
    if (!accepting_) {
      ++agg_.jobs_rejected;
      JobResult r;
      r.ok = false;
      r.kind = JobErrorKind::kRejected;
      r.error = "submit after shutdown: engine is not accepting jobs";
      task.promise.set_value(std::move(r));
      return fut;
    }
    ++agg_.jobs_submitted;
    task.enqueue_ns = now_ns();
    queue_.push_back(std::move(task));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    agg_.queue_peak_depth =
        std::max(agg_.queue_peak_depth, static_cast<uint64_t>(queue_.size()));
  }
  cv_.notify_one();
  return fut;
}

std::vector<JobResult> BatchEngine::run_batch(std::vector<KernelJob> jobs) {
  std::vector<std::future<JobResult>> futures;
  futures.reserve(jobs.size());
  for (auto& j : jobs) futures.push_back(submit(std::move(j)));
  std::vector<JobResult> out;
  out.reserve(futures.size());
  for (auto& f : futures) out.push_back(f.get());
  return out;
}

void BatchEngine::shutdown() {
  bool join_here = false;
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    draining_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  cv_.notify_all();
  cv_space_.notify_all();
  if (join_here) {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
}

void BatchEngine::cancel() {
  std::deque<Task> dropped;
  {
    std::lock_guard lock(mu_);
    accepting_ = false;
    draining_ = true;
    dropped.swap(queue_);
    queue_depth_.store(0, std::memory_order_relaxed);
  }
  cv_.notify_all();
  cv_space_.notify_all();
  for (auto& task : dropped) {
    JobResult r;
    r.ok = false;
    r.kind = JobErrorKind::kCancelled;
    r.error = "cancelled";
    {
      std::lock_guard lock(mu_);
      ++agg_.jobs_completed;
      ++agg_.jobs_failed;
    }
    task.promise.set_value(std::move(r));
  }
  shutdown();
}

EngineStats BatchEngine::stats() const {
  EngineStats s;
  {
    std::lock_guard lock(mu_);
    s = agg_;
  }
  s.scratch_machine_allocs =
      scratch_machine_allocs_.load(std::memory_order_relaxed);
  s.scratch_arena_allocs =
      scratch_arena_allocs_.load(std::memory_order_relaxed);
  s.cache = cache_->stats();
  return s;
}

void BatchEngine::worker_loop(int worker_id) {
  WorkerScratch scratch;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
      agg_.queue_wait_ns += now_ns() - task.enqueue_ns;
    }
    if (queue_capacity_ != 0) cv_space_.notify_one();
    JobResult result = run_job(task.job, worker_id, scratch);
    finish(std::move(task), std::move(result));
  }
}

JobResult BatchEngine::run_job(const KernelJob& job, int worker_id,
                               WorkerScratch& scratch) {
  JobResult r;
  r.worker = worker_id;
  try {
    const auto kernel = kernels::make_kernel(job.kernel);
    const uint64_t t0 = now_ns();

    // Planner-driven jobs resolve their execution shape first; the
    // decision is cached under PlanKey so concurrent sessions sharing this
    // cache plan each unique request shape exactly once.
    bool use_spu = job.use_spu;
    kernels::SpuMode mode = job.mode;
    core::CrossbarConfig cfg = job.cfg;
    kernels::ExecBackend backend = job.backend;
    if (job.plan) {
      PlanKey pk;
      pk.kernel = job.kernel;
      pk.repeats = job.repeats;
      pk.area_budget_mm2 = job.area_budget_mm2;
      pk.max_delay_ns = job.max_delay_ns;
      pk.pinned_backend =
          job.backend_pinned ? static_cast<int>(job.backend) : -1;
      const auto plan = cache_->get_or_plan(pk, [&] {
        PlanOptions po;
        po.budget.area_mm2 = job.area_budget_mm2;
        po.budget.delay_ns = job.max_delay_ns;
        if (job.backend_pinned) po.backend = job.backend;
        po.history = &cache_->history();
        return plan_kernel(*kernel, job.repeats, po);
      });
      use_spu = plan->use_spu;
      mode = plan->mode;
      cfg = plan->cfg;
      backend = plan->backend;
      r.plan = std::shared_ptr<const PlanSummary>(plan, &plan->summary);
      // Exploration: occasionally run the runner-up instead of the winner
      // so its history keeps accumulating (a shape nobody measures can
      // never unseat a model mistake). Deterministic hash sampling —
      // explore_rate == 0 provably never deviates from the planned path.
      if (explore_rate_ > 0 && plan->runner_up.has_value() &&
          unit_hash(explore_seq_.fetch_add(1, std::memory_order_relaxed)) <
              explore_rate_) {
        const PlanShape& ru = *plan->runner_up;
        use_spu = ru.use_spu;
        mode = ru.mode;
        cfg = ru.cfg;
        backend = ru.backend;
        r.explored = true;
      }
    }
    const bool native = backend == kernels::ExecBackend::kNativeSwar;

    const OrchestrationKey key = make_key(job.kernel, job.repeats, mode,
                                          use_spu, cfg, job.opts, job.pc,
                                          backend);
    bool prepared_here = false;
    const auto prepared = cache_->get_or_prepare(key, [&] {
      prepared_here = true;
      auto p = use_spu
                   ? kernels::prepare_spu(*kernel, job.repeats, cfg,
                                          mode, job.pc, &job.opts)
                   : kernels::prepare_baseline(*kernel, job.repeats, job.pc);
      // Lowering is part of the prepare half: the trace is cached with the
      // program and replayed decode-free ever after.
      if (native) kernels::lower_native(*kernel, p);
      return p;
    });
    const uint64_t t1 = now_ns();
    r.cache_hit = !prepared_here;
    r.prepare_ns = t1 - t0;

    if (native) {
      if (!scratch.arena) {
        scratch.arena = std::make_unique<sim::Memory>(kernels::kMemBytes);
        scratch_arena_allocs_.fetch_add(1, std::memory_order_relaxed);
      }
      r.run = kernels::execute_native(*kernel, *prepared,
                                      scratch.arena.get(), &job.buffers);
    } else {
      if (!scratch.machine) {
        scratch.machine = std::make_unique<sim::Machine>(
            prepared->program, kernels::kMemBytes, prepared->pc);
        scratch_machine_allocs_.fetch_add(1, std::memory_order_relaxed);
      }
      r.run = kernels::execute_prepared(*kernel, *prepared,
                                        scratch.machine.get(), &job.buffers);
    }
    r.execute_ns = now_ns() - t1;
    r.ok = true;

    // Close the measure->plan loop: every successful execution feeds the
    // history table keyed by the shape that actually ran (for explored
    // jobs, the runner-up). Simulator runs record cycles — the unit the
    // planner can blend with its Table-1 estimates; native runs record
    // wall-ns, kept in separate entries so the units never mix.
    cache_->history().record(
        HistoryKey::from_shape(job.kernel, job.repeats, use_spu, mode, cfg,
                               backend),
        r.run.stats.has_cycles ? static_cast<double>(r.run.stats.cycles)
                               : static_cast<double>(r.execute_ns));
  } catch (const backend::LoweringError& e) {
    r.ok = false;
    r.kind = JobErrorKind::kBackendUnsupported;
    r.error = e.what();
  } catch (const std::exception& e) {
    r.ok = false;
    r.kind = JobErrorKind::kFailed;
    r.error = e.what();
  }
  return r;
}

void BatchEngine::finish(Task&& task, JobResult&& result) {
  {
    std::lock_guard lock(mu_);
    ++agg_.jobs_completed;
    if (!result.ok) ++agg_.jobs_failed;
    // Native-backend runs carry no cycle model (has_cycles=false); only
    // genuine simulator cycles may enter the aggregate.
    if (result.run.stats.has_cycles) {
      agg_.cycles_simulated += result.run.stats.cycles;
    }
    agg_.instructions_retired += result.run.stats.instructions;
  }
  task.promise.set_value(std::move(result));
}

}  // namespace subword::runtime
